// Package partition implements the rectangle-partitioning algorithms
// behind the paper's Heterogeneous Blocks strategy (Section 4.1.2).
//
// The problem, introduced by Beaumont, Boudet, Rastello and Robert
// ("Partitioning a square into rectangles: NP-completeness and
// approximation algorithms", Algorithmica 34(3), 2002 — the paper's
// reference [41]): partition the unit square into p non-overlapping
// rectangles of prescribed areas a₁…a_p (Σaᵢ = 1), minimizing either the
// sum of the half-perimeters (PERI-SUM) or their maximum (PERI-MAX).
//
// In the outer-product/matrix-multiplication setting, rectangle i's area
// is worker i's normalized speed xᵢ (perfect load balance) and its
// half-perimeter is the amount of vector data the worker must receive, so
// PERI-SUM is exactly the total communication volume. The trivial lower
// bound is LB = 2Σ√aᵢ (every rectangle is at best a square); the
// column-based algorithm reproduced here guarantees Ĉ ≤ 1 + (5/4)·LB,
// hence Ĉ ≤ (7/4)·LB since LB ≥ 2, and is asymptotically within 5/4.
//
// # API
//
// [PeriSum] is the column-based approximation; [PeriMax] its minimax
// sibling, [SqrtHeuristic] and [RecursiveBisection] the baselines, and
// [GuillotineOptimal] an exact dynamic program for small p.
// [LowerBound] scores any of them against 2Σ√aᵢ. The resulting unit
// [Partition] is scaled onto an N×N integer domain by
// internal/core.SnapPlan before real execution (see docs/PERFORMANCE.md).
package partition
