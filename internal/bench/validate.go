package bench

import (
	"errors"
	"fmt"
	"math"

	"nlfl/internal/results"
)

// ErrInvalidBench marks a bench artifact that fails the schema gate.
var ErrInvalidBench = errors.New("bench: invalid artifact")

func invalid(path, format string, args ...interface{}) error {
	return fmt.Errorf("%w: %s: %s", ErrInvalidBench, path, fmt.Sprintf(format, args...))
}

func finite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

// Kernel throughput gates enforced on top of the schema check. They are
// deliberately slack multiples (timing noise, shared CI machines), not
// tight equalities — but slack enough only to absorb jitter, not a
// performance regression.
const (
	// parallelVsTiledFloor: at every n ≥ parallelGateMinN, the best
	// parallel-tiled entry must reach at least this fraction of the
	// single-threaded tiled throughput. On a single-CPU machine the
	// serial fallback makes the two the same code path, so a parallel
	// entry losing badly to tiled means the band split itself regressed.
	parallelVsTiledFloor = 0.95
	parallelGateMinN     = 256
	// parallelVsNaiveFloor: when the sweep includes n=1024 (the full,
	// non-quick configuration), the best parallel-tiled entry there must
	// beat the naive reference by at least this factor — the packed
	// register-blocked kernel's reason to exist.
	parallelVsNaiveFloor = 2.0
	gateN                = 1024
)

// ValidateKernels is the schema check for a BENCH_kernels payload: right
// schema id, a non-empty entry list, finite positive timings and
// throughputs, every entry equivalence-checked against the reference
// kernel — plus the throughput gates: parallel-tiled within
// parallelVsTiledFloor of tiled at every n ≥ parallelGateMinN, and (when
// the sweep includes n=1024) parallel-tiled at least parallelVsNaiveFloor
// times the naive throughput there.
func ValidateKernels(f results.KernelBenchFile) error {
	const path = KernelsFileName
	if f.Schema != results.BenchKernelsSchema {
		return invalid(path, "schema %q, want %q", f.Schema, results.BenchKernelsSchema)
	}
	if len(f.Entries) == 0 {
		return invalid(path, "no entries")
	}
	if f.AutotunedTile <= 0 {
		return invalid(path, "non-positive autotuned tile %d", f.AutotunedTile)
	}
	naive := map[int]float64{}        // n → naive GFLOPS
	tiled := map[int]float64{}        // n → tiled GFLOPS
	bestParallel := map[int]float64{} // n → best parallel-tiled GFLOPS
	for i, e := range f.Entries {
		id := fmt.Sprintf("entry %d (%s n=%d)", i, e.Kernel, e.N)
		if e.Kernel == "" || e.N <= 0 {
			return invalid(path, "%s: missing kernel name or size", id)
		}
		if !finite(e.Seconds) || e.Seconds <= 0 {
			return invalid(path, "%s: non-positive or non-finite seconds %v", id, e.Seconds)
		}
		if !finite(e.GFLOPS) || e.GFLOPS <= 0 {
			return invalid(path, "%s: zero or non-finite throughput %v GFLOPS", id, e.GFLOPS)
		}
		if !finite(e.MaxAbsErr) || e.MaxAbsErr > 1e-12 {
			return invalid(path, "%s: kernel deviates from reference by %v", id, e.MaxAbsErr)
		}
		if !e.Checked {
			return invalid(path, "%s: equivalence check did not run", id)
		}
		switch e.Kernel {
		case "naive":
			naive[e.N] = e.GFLOPS
		case "tiled":
			tiled[e.N] = e.GFLOPS
		case "parallel-tiled":
			if e.GFLOPS > bestParallel[e.N] {
				bestParallel[e.N] = e.GFLOPS
			}
		}
	}
	for n, t := range tiled {
		if n < parallelGateMinN {
			continue
		}
		p, ok := bestParallel[n]
		if !ok {
			return invalid(path, "no parallel-tiled entry at n=%d to gate against tiled", n)
		}
		if p < parallelVsTiledFloor*t {
			return invalid(path, "best parallel-tiled at n=%d reaches %.3f GFLOPS, below %.0f%% of tiled's %.3f",
				n, p, 100*parallelVsTiledFloor, t)
		}
	}
	if nv, ok := naive[gateN]; ok {
		p := bestParallel[gateN]
		if p < parallelVsNaiveFloor*nv {
			return invalid(path, "best parallel-tiled at n=%d reaches %.3f GFLOPS, below %.1fx the naive %.3f — the packed kernel regressed",
				gateN, p, parallelVsNaiveFloor, nv)
		}
	}
	return nil
}

// ValidateRuntime is the schema check for a BENCH_runtime payload: right
// schema id, non-empty entries, finite fields, positive throughput, zero
// invariant violations, and the hom / hom-k measured volumes within 1% of
// their closed forms (het within its grid-rounding tolerance).
func ValidateRuntime(f results.RuntimeBenchFile) error {
	const path = RuntimeFileName
	if f.Schema != results.BenchRuntimeSchema {
		return invalid(path, "schema %q, want %q", f.Schema, results.BenchRuntimeSchema)
	}
	if len(f.Entries) == 0 {
		return invalid(path, "no entries")
	}
	if !finite(f.WorkPerSecond) || f.WorkPerSecond <= 0 {
		return invalid(path, "non-positive work rate %v", f.WorkPerSecond)
	}
	for i, e := range f.Entries {
		id := fmt.Sprintf("entry %d (%s/%s n=%d)", i, e.Platform, e.Strategy, e.N)
		if e.Platform == "" || e.Strategy == "" || e.N <= 0 || e.Workers <= 0 || e.Chunks <= 0 {
			return invalid(path, "%s: missing identity fields", id)
		}
		if len(e.Speeds) != e.Workers {
			return invalid(path, "%s: %d speeds for %d workers", id, len(e.Speeds), e.Workers)
		}
		for _, v := range []struct {
			name  string
			value float64
		}{
			{"measuredVolume", e.MeasuredVolume},
			{"predictedVolume", e.PredictedVolume},
			{"relError", e.RelError},
			{"bytesMoved", e.BytesMoved},
			{"makespan", e.Makespan},
			{"cellsPerSec", e.CellsPerSec},
			{"utilization", e.Utilization},
		} {
			if !finite(v.value) {
				return invalid(path, "%s: non-finite %s %v", id, v.name, v.value)
			}
		}
		if e.MeasuredVolume <= 0 || e.PredictedVolume <= 0 {
			return invalid(path, "%s: zero communication volume", id)
		}
		if e.Makespan <= 0 || e.CellsPerSec <= 0 {
			return invalid(path, "%s: zero throughput (makespan %v, cells/s %v)", id, e.Makespan, e.CellsPerSec)
		}
		tol := homTolerance
		if e.Strategy == "het" {
			tol = hetTolerance
		}
		if e.RelError > tol {
			return invalid(path, "%s: measured volume off the closed form by %.4f (> %.2f)", id, e.RelError, tol)
		}
		if e.Violations != 0 {
			return invalid(path, "%s: %d invariant violations", id, e.Violations)
		}
	}
	return nil
}

// ValidateFiles loads and validates all eight artifacts under dir —
// the CI bench-smoke gate.
func ValidateFiles(dir string) error {
	paths := Paths(dir)
	kf, err := results.LoadBenchKernels(paths.Kernels)
	if err != nil {
		return err
	}
	if err := ValidateKernels(kf); err != nil {
		return err
	}
	rf, err := results.LoadBenchRuntime(paths.Runtime)
	if err != nil {
		return err
	}
	if err := ValidateRuntime(rf); err != nil {
		return err
	}
	lf, err := results.LoadBenchLink(paths.Link)
	if err != nil {
		return err
	}
	if err := ValidateLink(lf); err != nil {
		return err
	}
	cf, err := results.LoadBenchChaos(paths.Chaos)
	if err != nil {
		return err
	}
	if err := ValidateChaos(cf); err != nil {
		return err
	}
	sf, err := results.LoadBenchService(paths.Service)
	if err != nil {
		return err
	}
	if err := ValidateService(sf); err != nil {
		return err
	}
	tf, err := results.LoadBenchTopology(paths.Topology)
	if err != nil {
		return err
	}
	if err := ValidateTopology(tf); err != nil {
		return err
	}
	capf, err := results.LoadBenchCapacity(paths.Capacity)
	if err != nil {
		return err
	}
	if err := ValidateCapacity(capf); err != nil {
		return err
	}
	itf, err := results.LoadBenchIterative(paths.Iterative)
	if err != nil {
		return err
	}
	return ValidateIterative(itf)
}
