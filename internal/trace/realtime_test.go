package trace

import (
	"sync"
	"testing"
)

func TestLiveConcurrentRecording(t *testing.T) {
	const p = 8
	l := NewLive(p)
	var wg sync.WaitGroup
	for w := 0; w < p; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			last := l.Now()
			for i := 0; i < 50; i++ {
				now := l.Now()
				if now < last {
					t.Errorf("worker %d: clock went backwards (%v after %v)", w, now, last)
				}
				l.Add(w, Span{Kind: Compute, Start: last, End: now, Work: 1, Task: i})
				last = now
			}
			l.Mark(Marker{Kind: MarkRecover, Worker: w, Time: last})
		}(w)
	}
	wg.Wait()
	tl := l.Timeline()
	if got := tl.UsefulWork(); got != p*50 {
		t.Fatalf("recorded work %v, want %v", got, p*50)
	}
	if len(tl.Marks) != p {
		t.Fatalf("recorded %d marks, want %d", len(tl.Marks), p)
	}
	if vs := Check(tl, nil); len(vs) != 0 {
		t.Fatalf("live recording breaks invariants: %v", vs)
	}
}
