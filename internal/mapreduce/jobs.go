package mapreduce

import (
	"fmt"
	"sort"
	"strings"

	"nlfl/internal/matmul"
)

// CellKey identifies one output cell (i, j) of a matrix product.
type CellKey struct{ I, J int }

// PairRecord is one record of the replicated matrix-multiplication
// dataset of Section 1.1: a compatible pair (aᵢₖ, bₖⱼ) for one (i, k, j).
// The dataset holds n³ such records for an n×n product — the data
// expansion ("the initial N² size data is transformed into a N³ size
// data") that makes the non-linear workload MapReduce-able.
type PairRecord struct {
	I, K, J int
	A, B    float64
}

// BuildPairDataset materializes the full n³ replicated dataset for A·B.
// It is only meant for small n; the closed forms in volumes.go cover the
// asymptotics.
func BuildPairDataset(a, b *matmul.Matrix) []PairRecord {
	n := a.Rows
	recs := make([]PairRecord, 0, n*n*n)
	for i := 0; i < a.Rows; i++ {
		for k := 0; k < a.Cols; k++ {
			for j := 0; j < b.Cols; j++ {
				recs = append(recs, PairRecord{I: i, K: k, J: j, A: a.At(i, k), B: b.At(k, j)})
			}
		}
	}
	return recs
}

// MatMulPairJob is the Section 1.1 MapReduce matrix multiplication: Map
// turns each (aᵢₖ, bₖⱼ) pair into (key (i,j), value aᵢₖ·bₖⱼ) and Reduce
// sums the n partial products per key. The combiner performs the local
// pre-summation a real deployment would use.
func MatMulPairJob(mappers, reducers int, combine bool) *Job[PairRecord, CellKey, float64, float64] {
	j := &Job[PairRecord, CellKey, float64, float64]{
		Name:     "matmul-pairs",
		Mappers:  mappers,
		Reducers: reducers,
		Map: func(r PairRecord, emit Emit[CellKey, float64]) {
			emit(CellKey{r.I, r.J}, r.A*r.B)
		},
		Reduce: func(_ CellKey, vs []float64) float64 {
			s := 0.0
			for _, v := range vs {
				s += v
			}
			return s
		},
	}
	if combine {
		j.Combine = func(_ CellKey, vs []float64) float64 {
			s := 0.0
			for _, v := range vs {
				s += v
			}
			return s
		}
	}
	return j
}

// RunMatMulPairs multiplies A·B through the replicated-pair MapReduce job
// and reassembles the dense result.
func RunMatMulPairs(a, b *matmul.Matrix, mappers, reducers int, combine bool) (*matmul.Matrix, Counters, error) {
	job := MatMulPairJob(mappers, reducers, combine)
	out, ctr, err := job.Run(BuildPairDataset(a, b))
	if err != nil {
		return nil, ctr, err
	}
	c := matmul.New(a.Rows, b.Cols)
	for k, v := range out {
		c.Set(k.I, k.J, v)
	}
	return c, ctr, nil
}

// OuterRecord is one index of the outer-product input vectors.
type OuterRecord struct {
	I int
	A float64
	B []float64 // the full b vector, replicated to every mapper record
}

// RunVectorOuter computes a̅ᵀ×b̅ with a row-per-record MapReduce job: the
// map for index i emits the whole row i of the result keyed by i. The
// replication of b̅ into every record is exactly the data redundancy the
// paper attributes to MapReduce outer products.
func RunVectorOuter(a, b []float64, mappers, reducers int) (*matmul.Matrix, Counters, error) {
	recs := make([]OuterRecord, len(a))
	for i := range a {
		recs[i] = OuterRecord{I: i, A: a[i], B: b}
	}
	job := &Job[OuterRecord, int, []float64, []float64]{
		Name:     "vector-outer",
		Mappers:  mappers,
		Reducers: reducers,
		Map: func(r OuterRecord, emit Emit[int, []float64]) {
			row := make([]float64, len(r.B))
			for j, bv := range r.B {
				row[j] = r.A * bv
			}
			emit(r.I, row)
		},
		Reduce: func(_ int, vs [][]float64) []float64 { return vs[0] },
	}
	out, ctr, err := job.Run(recs)
	if err != nil {
		return nil, ctr, err
	}
	m := matmul.New(len(a), len(b))
	for i, row := range out {
		for j, v := range row {
			m.Set(i, j, v)
		}
	}
	return m, ctr, nil
}

// WordCount is the canonical linear-complexity MapReduce job ("standard
// text processing operations", Section 1.1) — the workload class the
// paper argues MapReduce is actually suited to.
func WordCount(lines []string, mappers, reducers int) (map[string]int, Counters, error) {
	job := &Job[string, string, int, int]{
		Name:     "wordcount",
		Mappers:  mappers,
		Reducers: reducers,
		Map: func(line string, emit Emit[string, int]) {
			for _, w := range strings.Fields(line) {
				emit(strings.ToLower(w), 1)
			}
		},
		Combine: func(_ string, vs []int) int {
			s := 0
			for _, v := range vs {
				s += v
			}
			return s
		},
		Reduce: func(_ string, vs []int) int {
			s := 0
			for _, v := range vs {
				s += v
			}
			return s
		},
	}
	return job.Run(lines)
}

// SortJob realizes Section 3 inside the MapReduce engine (the TeraSort
// pattern): map routes each key to its bucket via binary search over the
// splitters — exactly sample sort's Step 2 — and each reducer sorts one
// bucket (Step 3). With splitters from an oversampled sample (Step 1,
// samplesort.Sort's selection logic) the buckets are balanced with high
// probability, making sorting "almost divisible" in MapReduce form too.
func SortJob(keys []float64, splitters []float64, mappers int) ([]float64, Counters, error) {
	for i := 1; i < len(splitters); i++ {
		if splitters[i] < splitters[i-1] {
			return nil, Counters{}, fmt.Errorf("mapreduce: splitters not sorted at %d", i)
		}
	}
	reducers := len(splitters) + 1
	job := &Job[float64, int, float64, []float64]{
		Name:     "terasort",
		Mappers:  mappers,
		Reducers: reducers,
		Map: func(k float64, emit Emit[int, float64]) {
			emit(sort.SearchFloat64s(splitters, k), k)
		},
		Reduce: func(_ int, vs []float64) []float64 {
			out := append([]float64(nil), vs...)
			sort.Float64s(out)
			return out
		},
	}
	// Bucket b must land on reducer b for ordered concatenation: override
	// the default hash partitioner semantics by using the bucket id as
	// the key and reassembling in key order.
	grouped, ctr, err := job.Run(keys)
	if err != nil {
		return nil, ctr, err
	}
	out := make([]float64, 0, len(keys))
	for b := 0; b < reducers; b++ {
		out = append(out, grouped[b]...)
	}
	return out, ctr, nil
}

// InvertedIndex builds term → sorted document ids — with WordCount, the
// other canonical linear text-processing job of Section 1.1. Documents
// are supplied as raw strings; their slice index is the document id.
func InvertedIndex(docs []string, mappers, reducers int) (map[string][]int, Counters, error) {
	type doc struct {
		id   int
		text string
	}
	records := make([]doc, len(docs))
	for i, d := range docs {
		records[i] = doc{id: i, text: d}
	}
	job := &Job[doc, string, int, []int]{
		Name:     "inverted-index",
		Mappers:  mappers,
		Reducers: reducers,
		Map: func(d doc, emit Emit[string, int]) {
			seen := map[string]bool{}
			for _, w := range strings.Fields(d.text) {
				w = strings.ToLower(w)
				if !seen[w] {
					seen[w] = true
					emit(w, d.id)
				}
			}
		},
		Reduce: func(_ string, ids []int) []int {
			out := append([]int(nil), ids...)
			sort.Ints(out)
			return out
		},
	}
	return job.Run(records)
}
