package results

// BenchTopologySchema identifies the BENCH_topology.json payload; bumped
// on breaking field changes.
const BenchTopologySchema = "nlfl/bench-topology/v1"

// TopologyEdge is one network edge's measured row within a topology
// bench entry.
type TopologyEdge struct {
	// Name labels the edge ("master-port", "hop-2", "source-1", ...).
	Name string `json:"name"`
	// Capacity is the edge's modeled rate in elements/second.
	Capacity float64 `json:"capacity"`
	// Volume is the elements that crossed the edge — deliveries plus
	// hop-forwarded relay traffic.
	Volume float64 `json:"volume"`
	// Utilization is the edge's busy fraction of the makespan.
	Utilization float64 `json:"utilization"`
}

// TopologyBenchEntry is one strategy execution over one topology at one
// swept bandwidth.
type TopologyBenchEntry struct {
	// Platform names the speed profile, Speeds lists it.
	Platform string    `json:"platform"`
	Speeds   []float64 `json:"speeds"`
	// Topology is "star", "chain" or "two-source".
	Topology string `json:"topology"`
	// Strategy is "hom", "hom/k" or "het"; N the vector length.
	Strategy string `json:"strategy"`
	N        int    `json:"n"`
	// Bandwidth is the per-edge rate the topology was built from: the
	// star's aggregate, each chain hop's rate, each source link's rate.
	Bandwidth float64 `json:"bandwidth"`
	// MeasuredVolume is the elements delivered to workers, PredictedVolume
	// the strategy's closed form, RelError their relative disagreement.
	MeasuredVolume  float64 `json:"measuredVolume"`
	PredictedVolume float64 `json:"predictedVolume"`
	RelError        float64 `json:"relError"`
	// RelayVolume is the extra traffic hop-forwarding puts on interior
	// edges — zero for single-hop topologies, the chain's hidden cost.
	RelayVolume float64 `json:"relayVolume"`
	// Makespan is the measured wall-clock seconds; CommTime the summed
	// modeled delivery seconds across workers.
	Makespan float64 `json:"makespan"`
	CommTime float64 `json:"commTime"`
	// OverlapFraction is the share of comm time hidden under compute.
	OverlapFraction float64 `json:"overlapFraction"`
	// Edges are the per-edge measured rows.
	Edges []TopologyEdge `json:"edges"`
	// Violations counts invariant-oracle findings — the per-edge capacity
	// sweep and volume ledger included; 0 in any valid file.
	Violations int `json:"violations"`
}

// TopologyBenchFile is the BENCH_topology.json payload: the same
// strategy set swept across star, daisy-chain and two-source networks,
// locating how hop-limited bandwidth shifts the het-vs-hom crossover.
type TopologyBenchFile struct {
	Schema string `json:"schema"`
	Seed   int64  `json:"seed"`
	Quick  bool   `json:"quick"`
	// WorkPerSecond is the token-bucket rate scale of every run.
	WorkPerSecond float64 `json:"workPerSecond"`
	GoVersion     string  `json:"goVersion"`
	GOMAXPROCS    int     `json:"gomaxprocs"`
	// CrossoverThreshold is the het/hom makespan ratio θ defining a win.
	CrossoverThreshold float64 `json:"crossoverThreshold"`
	// Crossovers maps each topology to the largest swept bandwidth where
	// het's makespan stayed below θ·hom (0 when het never won): the
	// measured het-vs-hom crossover point, which hop-limited bandwidth
	// shifts.
	Crossovers map[string]float64   `json:"crossovers"`
	Entries    []TopologyBenchEntry `json:"entries"`
}

// SaveBenchTopology writes the topology sweep file as indented JSON.
func SaveBenchTopology(path string, f TopologyBenchFile) error {
	return saveJSON(path, f)
}

// LoadBenchTopology reads a topology sweep file.
func LoadBenchTopology(path string) (TopologyBenchFile, error) {
	var f TopologyBenchFile
	err := loadJSON(path, &f)
	return f, err
}
