package samplesort

import (
	"math"

	"nlfl/internal/stats"
)

// NonDivisibleFraction returns (W - W_partial)/W = log p / log N for
// sorting: the share of the N·log N total work that the p-way parallel
// phase cannot claim (Section 3.1). It vanishes as N grows — sorting is
// "almost divisible", in sharp contrast with the α-power loads of
// Section 2.
func NonDivisibleFraction(n, p int) float64 {
	if n < 2 || p < 1 {
		return 0
	}
	f := math.Log2(float64(p)) / math.Log2(float64(n))
	if f > 1 {
		return 1
	}
	return f
}

// TheoremB4Threshold returns the high-probability bucket-size bound of
// Theorem B.4 (Blelloch et al., ref [40]) with the paper's parameters
// α = 1 + (1/log N)^(1/3): MaxSize ≤ (N/p)·(1 + (1/log N)^(1/3)) with
// probability at least 1 - N^(-1/3) when s = log²N.
func TheoremB4Threshold(n, p int) float64 {
	if n < 2 {
		return float64(n)
	}
	return float64(n) / float64(p) * (1 + math.Pow(1/math.Log2(float64(n)), 1.0/3.0))
}

// TheoremB4FailureBound returns the stated tail probability N^(-1/3).
func TheoremB4FailureBound(n int) float64 {
	if n < 1 {
		return 1
	}
	return math.Pow(float64(n), -1.0/3.0)
}

// CostModel is the Section 3.1 execution-time model of one sample sort run
// on p identical unit-speed workers, in comparison units. N is a float64
// so the asymptotic regime (the paper's claims hold for log N ≫ p·log p,
// i.e. astronomically large N) can be evaluated analytically.
type CostModel struct {
	N    float64
	P, S int
	// Step1 is the master-side sample sort: s·p·log(s·p).
	Step1 float64
	// Step2 is the master-side routing: N·log p.
	Step2 float64
	// Step3 is the parallel bucket sort: MaxBucket·log MaxBucket.
	Step3 float64
	// Sequential is the single-machine reference N·log N.
	Sequential float64
}

// Total returns Step1 + Step2 + Step3 (the steps are sequential phases).
func (c CostModel) Total() float64 { return c.Step1 + c.Step2 + c.Step3 }

// Speedup returns Sequential / Total — close to p for large N, the
// Section 3.1 optimality claim.
func (c CostModel) Speedup() float64 {
	t := c.Total()
	if t == 0 {
		return 0
	}
	return c.Sequential / t
}

// PreprocessingShare returns (Step1+Step2)/Total, the fraction of time
// spent in the non-parallel pre-processing; it must vanish as N grows for
// the DLT framing to pay off.
func (c CostModel) PreprocessingShare() float64 {
	t := c.Total()
	if t == 0 {
		return 0
	}
	return (c.Step1 + c.Step2) / t
}

// Cost evaluates the model for N keys on p workers with oversampling s
// (0 → ⌈log²N⌉), assuming the ideal largest bucket
// (N/p)·(1+(1/log N)^(1/3)).
func Cost(n float64, p, s int) CostModel {
	if s == 0 && n >= 2 {
		l := math.Log2(n)
		s = int(math.Ceil(l * l))
	}
	if s < 1 {
		s = 1
	}
	c := CostModel{N: n, P: p, S: s}
	sp := float64(s * p)
	if sp > 1 {
		c.Step1 = sp * math.Log2(sp)
	}
	if p > 1 && n > 0 {
		c.Step2 = n * math.Log2(float64(p))
	}
	if n >= 2 {
		mb := n / float64(p) * (1 + math.Pow(1/math.Log2(n), 1.0/3.0))
		if mb > 1 {
			c.Step3 = mb * math.Log2(mb)
		}
		c.Sequential = n * math.Log2(n)
	}
	return c
}

// ConcentrationResult summarizes a Monte-Carlo check of Theorem B.4.
type ConcentrationResult struct {
	N, P, S int
	Trials  int
	// Exceed counts trials whose max bucket exceeded the threshold.
	Exceed int
	// MeanRatio is the average MaxBucket/(N/p) over trials.
	MeanRatio float64
	// Threshold and FailureBound echo the theorem's constants.
	Threshold    float64
	FailureBound float64
}

// EmpiricalFailureRate returns Exceed/Trials.
func (c ConcentrationResult) EmpiricalFailureRate() float64 {
	if c.Trials == 0 {
		return 0
	}
	return float64(c.Exceed) / float64(c.Trials)
}

// CheckConcentration runs `trials` independent sample sorts of N uniform
// random keys on p workers with oversampling s (0 → log²N) and measures
// how often the largest bucket exceeds the Theorem B.4 threshold. The
// empirical failure rate should be at most about N^(-1/3).
func CheckConcentration(n, p, s, trials int, seed int64) (ConcentrationResult, error) {
	if s == 0 {
		s = DefaultOversampling(n)
	}
	res := ConcentrationResult{
		N: n, P: p, S: s, Trials: trials,
		Threshold:    TheoremB4Threshold(n, p),
		FailureBound: TheoremB4FailureBound(n),
	}
	r := stats.NewRNG(seed)
	var ratios stats.Welford
	for trial := 0; trial < trials; trial++ {
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = r.Float64()
		}
		_, tr, err := Sort(xs, Config{Workers: p, Oversampling: s, Seed: r.Int63(), Sequential: true})
		if err != nil {
			return res, err
		}
		ratios.Add(tr.MaxBucketRatio())
		if float64(tr.MaxBucket) > res.Threshold {
			res.Exceed++
		}
	}
	res.MeanRatio = ratios.Mean()
	return res, nil
}
