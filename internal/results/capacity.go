package results

// BenchCapacitySchema identifies the BENCH_capacity.json payload,
// bumped on breaking field changes so consumers (CI's capacity-smoke
// gate) can reject files they do not understand.
const BenchCapacitySchema = "nlfl/bench-capacity/v1"

// CapacityBenchEntry is one slice size of the capacity-model validation
// sweep: the model's forecast next to what the discrete-event simulator
// and the real worker-pool runtime actually did. The predicted columns
// and SimMakespan are deterministic given the envelope; MeasuredMakespan
// is wall-clock (best-of-reps) and carries scheduler noise, which is why
// its tolerance is stated separately.
type CapacityBenchEntry struct {
	// Workers is the slice size p (the p fastest of the envelope speeds).
	Workers int `json:"workers"`
	// PredictedVolume is the model's continuous PERI-SUM input volume;
	// PredictedMakespan its T(p) = V/B + N^α/(R·Σs) forecast, seconds.
	PredictedVolume   float64 `json:"predictedVolume"`
	PredictedMakespan float64 `json:"predictedMakespan"`
	// SimMakespan is the discrete-event simulator's makespan over the
	// snapped plan; SimRelErr its relative disagreement with the
	// prediction (integer-grid snapping is the only modeled difference).
	SimMakespan float64 `json:"simMakespan"`
	SimRelErr   float64 `json:"simRelErr"`
	// MeasuredMakespan is the real worker pool's wall-clock makespan
	// (best of Reps runs); MeasuredRelErr its relative disagreement.
	MeasuredMakespan float64 `json:"measuredMakespan"`
	MeasuredRelErr   float64 `json:"measuredRelErr"`
	// Speedup is the predicted T(1)/T(p); MarginalGain the relative
	// speedup step S(p)/S(p−1) − 1 (0 for p=1) the knee scan reads.
	Speedup      float64 `json:"speedup"`
	MarginalGain float64 `json:"marginalGain"`
	// UnprocessedIfChunked is the Section 2 trap at this worker count:
	// the work fraction input chunking would leave undone.
	UnprocessedIfChunked float64 `json:"unprocessedIfChunked"`
}

// CapacityBenchFile is the BENCH_capacity.json payload: the capacity
// model validated against both the simulator and the measured runtime
// on a fixed fleet envelope, with the knee the autoscaler and `nlfl
// recommend` would report for it.
type CapacityBenchFile struct {
	Schema string `json:"schema"`
	Seed   int64  `json:"seed"`
	Quick  bool   `json:"quick"`
	// Alpha, N, Speeds, WorkPerSecond and Bandwidth are the model
	// envelope; Theta the knee threshold.
	Alpha         float64   `json:"alpha"`
	N             int       `json:"n"`
	Speeds        []float64 `json:"speeds"`
	WorkPerSecond float64   `json:"workPerSecond"`
	Bandwidth     float64   `json:"bandwidth"`
	Theta         float64   `json:"theta"`
	// SimTolerance and MeasuredTolerance are the stated agreement gates
	// the entries were checked against (simulator: snapping error;
	// measured: scheduler noise on top).
	SimTolerance      float64 `json:"simTolerance"`
	MeasuredTolerance float64 `json:"measuredTolerance"`
	// Reps is the best-of count behind MeasuredMakespan.
	Reps int `json:"reps"`
	// Knee is the recommended slice size at Theta; Best the speedup
	// argmax; SpeedupBound the closed-form ceiling no slice can beat.
	Knee         int     `json:"knee"`
	Best         int     `json:"best"`
	SpeedupBound float64 `json:"speedupBound"`
	GoVersion    string  `json:"goVersion"`
	GOMAXPROCS   int     `json:"gomaxprocs"`
	// Entries covers every slice size 1..len(Speeds).
	Entries []CapacityBenchEntry `json:"entries"`
}

// SaveBenchCapacity writes the capacity sweep file as indented JSON.
func SaveBenchCapacity(path string, f CapacityBenchFile) error {
	return saveJSON(path, f)
}

// LoadBenchCapacity reads a capacity sweep file.
func LoadBenchCapacity(path string) (CapacityBenchFile, error) {
	var f CapacityBenchFile
	err := loadJSON(path, &f)
	return f, err
}
