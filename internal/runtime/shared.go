package runtime

import (
	"context"
	"time"

	"nlfl/internal/matmul"
)

// This file exports the pool's building blocks — the token-bucket
// throttle, the one-port bandwidth-modeled link, the rectangle kernels
// and the survivor re-planner — for layers that own workers across many
// runs (internal/service's long-lived fleet) instead of spinning a pool
// per job. One implementation serves both: a fleet worker is paced,
// booked and re-planned by exactly the code a single Run uses.

// Throttle is the exported token-bucket pacer: it stretches compute to
// the duration a speed-s processor would need (see tokenBucket). One
// Throttle belongs to exactly one goroutine.
type Throttle struct {
	tb *tokenBucket
}

// NewThrottle builds a throttle refilling at rate cells/second; a
// non-positive burst defaults to 5 ms of credit.
func NewThrottle(rate, burst float64) *Throttle {
	return &Throttle{tb: newTokenBucket(rate, burst)}
}

// Acquire blocks until n cells of credit are available and consumes them.
func (t *Throttle) Acquire(n float64) { t.tb.acquire(n) }

// AcquireWithin is Acquire with a sleep budget: false means the budget
// elapsed first and the payment is forfeited (the chunk was cut short).
// A negative budget means no deadline.
func (t *Throttle) AcquireWithin(n float64, budget time.Duration) bool {
	return t.tb.acquireWithin(n, budget)
}

// SharedLink is the exported one-port master link: transfers book
// non-overlapping windows on the shared port (and on per-worker links
// when capped) exactly as Run's internal model does.
type SharedLink struct {
	ml    *masterLink
	clock func() float64
}

// NewSharedLink builds the booking state for cfg over `workers` links.
// now supplies the live clock in seconds. An unconstrained cfg yields a
// link whose Enabled reports false and whose Book windows are instant.
func NewSharedLink(cfg Link, workers int, now func() float64) *SharedLink {
	l := &SharedLink{ml: newMasterLink(cfg, workers, now), clock: now}
	if l.ml != nil {
		l.ml.now = now
	}
	return l
}

// Enabled reports whether any bandwidth constraint is configured.
func (l *SharedLink) Enabled() bool { return l.ml != nil }

// Capacity returns the aggregate shared-port rate (0 when unconstrained).
func (l *SharedLink) Capacity() float64 {
	if l.ml == nil || l.ml.agg <= 0 {
		return 0
	}
	return l.ml.agg
}

// Book reserves the next window of elems elements for worker w and
// returns it in live-clock seconds; it never sleeps. On an unconstrained
// link the window is [now, now].
func (l *SharedLink) Book(w int, elems float64) (start, end float64) {
	if l.ml == nil {
		t := l.clock()
		return t, t
	}
	return l.ml.book(w, elems)
}

// Wait sleeps until the booked window's end has passed, or until ctx is
// cancelled — false means cancelled.
func (l *SharedLink) Wait(ctx context.Context, end float64) bool {
	if l.ml == nil {
		return ctx.Err() == nil
	}
	return l.ml.wait(ctx, end)
}

// FillRect computes the chunk's rectangle of the outer product a̅×b̅ into
// dst (row-major, width ColHi−ColLo) from the worker-local copies aBuf
// (the chunk's row interval) and bBuf (its column interval), tiled like
// the in-pool kernel.
func FillRect(dst []float64, aBuf, bBuf []float64, c Chunk) {
	fillChunkInto(dst, aBuf, bBuf, c)
}

// CommitRect copies a finished rectangle into the output matrix. Callers
// must guarantee winning rectangles are disjoint (first-writer-wins at
// commit time), which is what makes the copy lock-free.
func CommitRect(out *matmul.Matrix, scratch []float64, c Chunk) {
	commitChunk(out, scratch, c)
}

// ReplanOwned maps a dead worker's owned rectangle onto the surviving
// workers via the PERI-SUM partition (see replanOwnedChunk): pieces tile
// the lost rectangle exactly, carry Task −1 for the caller to re-number,
// and are owned by owners[i]. With no survivors the whole rectangle is
// returned ownerless.
func ReplanOwned(c Chunk, owners []int, speeds []float64) []Chunk {
	return replanOwnedChunk(c, owners, speeds)
}
