// Polynomial demonstrates that divisibility is a property of the
// *algorithm*, not the application: polynomial multiplication (the
// workload of the paper's refuted reference [20]) is a non-divisible
// quadratic load under the schoolbook method, still non-divisible under
// Karatsuba, and an almost-divisible N·log N load under FFT convolution.
package main

import (
	"fmt"
	"log"
	"math"

	"nlfl/internal/polymul"
	"nlfl/internal/stats"
)

func main() {
	const n = 1024
	r := stats.NewRNG(7)
	a := stats.SampleN(stats.Uniform{Lo: -1, Hi: 1}, r, n)
	b := stats.SampleN(stats.Uniform{Lo: -1, Hi: 1}, r, n)

	ref, err := polymul.Naive(a, b)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("multiplying two degree-%d polynomials three ways:\n\n", n-1)
	for _, algo := range []polymul.Algorithm{polymul.AlgoNaive, polymul.AlgoKaratsuba, polymul.AlgoFFT} {
		got, err := polymul.Multiply(a, b, algo)
		if err != nil {
			log.Fatal(err)
		}
		worst := 0.0
		for i := range ref {
			if d := math.Abs(got[i] - ref[i]); d > worst {
				worst = d
			}
		}
		v, err := polymul.Verdict(algo, 1<<22, 128)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-11s agree within %.1e — verdict on 128 workers: %s (undone %.3f)\n",
			algo, worst, v.Class, v.UndoneFraction)
	}

	fmt.Println()
	fmt.Println("The schoolbook route leaves >99% of the work on the table no matter how")
	fmt.Println("the input is chunked (Section 2); switching to FFT convolution turns the")
	fmt.Println("same product into a sorting-like load that parallelizes almost perfectly.")
}
