package dlt

import (
	"math"
	"testing"
	"testing/quick"

	"nlfl/internal/platform"
	"nlfl/internal/stats"
)

func TestAffineZeroLatencyMatchesPlainModel(t *testing.T) {
	p := randomPlatform(t, 20, 7)
	const n = 500
	plain, err := OptimalParallel(p, n)
	if err != nil {
		t.Fatal(err)
	}
	affine, err := OptimalParallelAffine(p, AffineCosts{Latency: make([]float64, p.P())}, n)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(plain.Makespan-affine.Makespan) > 1e-6*plain.Makespan {
		t.Errorf("zero-latency affine %v != plain %v", affine.Makespan, plain.Makespan)
	}
	for i := range plain.Fractions {
		if math.Abs(plain.Fractions[i]-affine.Fractions[i]) > 1e-6 {
			t.Errorf("fraction %d: %v vs %v", i, plain.Fractions[i], affine.Fractions[i])
		}
	}
}

func TestAffineEqualFinishAmongParticipants(t *testing.T) {
	p := randomPlatform(t, 21, 6)
	lat := []float64{0, 1, 2, 0.5, 3, 10}
	const n = 100
	a, err := OptimalParallelAffine(p, AffineCosts{Latency: lat}, n)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	for i, f := range a.Fractions {
		if f <= 1e-12 {
			continue
		}
		w := p.Worker(i)
		finish := lat[i] + f*n*(1/w.Bandwidth+1/w.Speed)
		if math.Abs(finish-a.Makespan) > 1e-6*a.Makespan {
			t.Errorf("worker %d finish %v vs makespan %v", i, finish, a.Makespan)
		}
	}
}

func TestAffineExcludesHighLatencyWorkers(t *testing.T) {
	// Two fast workers with zero latency and one whose latency dwarfs the
	// problem: the slow-to-reach worker must receive nothing.
	p, err := platform.FromSpeeds([]float64{10, 10, 10})
	if err != nil {
		t.Fatal(err)
	}
	a, err := OptimalParallelAffine(p, AffineCosts{Latency: []float64{0, 0, 1e6}}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if a.Fractions[2] > 1e-12 {
		t.Errorf("unreachable worker got %v", a.Fractions[2])
	}
	if ParticipantCount(a) != 2 {
		t.Errorf("participants = %d, want 2", ParticipantCount(a))
	}
}

func TestAffineLatencyHurtsMonotonically(t *testing.T) {
	p := randomPlatform(t, 22, 5)
	const n = 200
	prev := 0.0
	for _, scale := range []float64{0, 0.5, 2, 10} {
		lat := make([]float64, p.P())
		for i := range lat {
			lat[i] = scale
		}
		a, err := OptimalParallelAffine(p, AffineCosts{Latency: lat}, n)
		if err != nil {
			t.Fatal(err)
		}
		if a.Makespan < prev-1e-9 {
			t.Errorf("makespan decreased with latency: %v after %v", a.Makespan, prev)
		}
		prev = a.Makespan
	}
}

func TestAffineValidation(t *testing.T) {
	p := randomPlatform(t, 23, 3)
	if _, err := OptimalParallelAffine(p, AffineCosts{Latency: []float64{0}}, 10); err == nil {
		t.Error("wrong latency length should fail")
	}
	if _, err := OptimalParallelAffine(p, AffineCosts{Latency: []float64{0, -1, 0}}, 10); err == nil {
		t.Error("negative latency should fail")
	}
	if _, err := OptimalParallelAffine(p, AffineCosts{Latency: []float64{0, 0, 0}}, -1); err == nil {
		t.Error("negative load should fail")
	}
}

// Property: the affine solution is feasible and its makespan never beats
// the zero-latency optimum.
func TestAffineProperty(t *testing.T) {
	f := func(seed int64, np uint8) bool {
		p := int(np%8) + 1
		r := stats.NewRNG(seed)
		ws := make([]platform.Worker, p)
		lat := make([]float64, p)
		for i := range ws {
			ws[i] = platform.Worker{Speed: 0.2 + 5*r.Float64(), Bandwidth: 0.2 + 5*r.Float64()}
			lat[i] = r.Float64() * 3
		}
		pl, err := platform.New(ws)
		if err != nil {
			return false
		}
		const n = 50
		affine, err := OptimalParallelAffine(pl, AffineCosts{Latency: lat}, n)
		if err != nil || affine.Validate() != nil {
			return false
		}
		plain, err := OptimalParallel(pl, n)
		if err != nil {
			return false
		}
		return affine.Makespan >= plain.Makespan-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
