package capacity

import (
	"fmt"
	"math"

	"nlfl/internal/outer"
	"nlfl/internal/platform"
)

// Recommendation is the planner's answer: the full speedup curve, the
// knee (the last worker count still worth paying for at threshold
// Theta), the curve's argmax, and the closed-form speedup ceiling no
// fleet size can beat.
type Recommendation struct {
	// Theta is the marginal-gain threshold the knee was computed with:
	// worker p+1 is admitted while S(p+1)/S(p) − 1 ≥ Theta.
	Theta float64 `json:"theta"`
	// Knee is the recommended slice size: the scan from p=1 stops at the
	// first step whose relative speedup gain falls below Theta.
	Knee int `json:"knee"`
	// Best is the argmax of the raw speedup curve — the slice size past
	// which extra workers *hurt* (shipping outweighs compute) rather
	// than merely paying back below threshold.
	Best int `json:"best"`
	// SpeedupBound is the closed-form ceiling T(1)/min_p T_LB(p), where
	// T_LB(p) = max(V_LB(p)/B, N^α/(R·Σᵢ≤ₚsᵢ)) uses the partition
	// lower-bound volume 2·N^(α/2)·Σ√xᵢ: no plan on any slice of this
	// fleet, however laid out, beats it.
	SpeedupBound float64 `json:"speedupBound"`
	// Curve is the per-slice-size forecast, index p-1 for p workers.
	Curve []Prediction `json:"curve"`
}

// AtKnee returns the prediction at the recommended slice size.
func (r Recommendation) AtKnee() Prediction { return r.Curve[r.Knee-1] }

// Recommend computes the speedup curve and its knee: starting from one
// worker, the next-fastest worker is added while it still buys at least
// theta relative speedup; the scan stops at the first step below theta.
// Workers past the knee are waste — the fleet-service autoscaler caps
// admission slices here, and `nlfl recommend` prints it for operators.
func (m Model) Recommend(theta float64) (Recommendation, error) {
	if theta <= 0 || math.IsNaN(theta) || math.IsInf(theta, 0) {
		return Recommendation{}, fmt.Errorf("capacity: marginal-gain threshold %v must be positive", theta)
	}
	curve, err := m.Curve()
	if err != nil {
		return Recommendation{}, err
	}
	knee := 1
	for knee < len(curve) {
		gain := curve[knee].Speedup/curve[knee-1].Speedup - 1
		if gain < theta {
			break
		}
		knee++
	}
	best := 1
	for p := 2; p <= len(curve); p++ {
		if curve[p-1].Speedup > curve[best-1].Speedup {
			best = p
		}
	}
	bound, err := m.SpeedupBound()
	if err != nil {
		return Recommendation{}, err
	}
	return Recommendation{
		Theta:        theta,
		Knee:         knee,
		Best:         best,
		SpeedupBound: bound,
		Curve:        curve,
	}, nil
}

// SpeedupBound returns the closed-form speedup ceiling for this fleet:
// T(1) over the smallest lower-bound makespan any slice size admits.
// T_LB(p) keeps both resources honest — the link must carry at least the
// partition lower-bound volume 2·N^(α/2)·Σ√xᵢ serially, and the compute
// phase cannot beat perfect balance N^α/(R·Σsᵢ) — so every real plan's
// makespan is ≥ T_LB(p) and every speedup is ≤ this bound.
func (m Model) SpeedupBound() (float64, error) {
	if err := m.Validate(); err != nil {
		return 0, err
	}
	base, err := m.predict(1)
	if err != nil {
		return 0, err
	}
	minLB := math.Inf(1)
	for p := 1; p <= len(m.Speeds); p++ {
		pl, err := platform.FromSpeeds(m.fastest(p))
		if err != nil {
			return 0, fmt.Errorf("capacity: %w", err)
		}
		lb := m.work() / (m.WorkPerSecond * pl.TotalSpeed())
		if m.Bandwidth > 0 {
			if comm := outer.LowerBound(pl, m.side()) / m.Bandwidth; comm > lb {
				lb = comm
			}
		}
		if lb < minLB {
			minLB = lb
		}
	}
	return base.Makespan / minLB, nil
}
