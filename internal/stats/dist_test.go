package stats

import (
	"math"
	"testing"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(7), NewRNG(7)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same-seed RNGs diverged")
		}
	}
	c := NewRNG(8)
	same := true
	a2 := NewRNG(7)
	for i := 0; i < 10; i++ {
		if a2.Float64() != c.Float64() {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical streams")
	}
}

func TestRNGSplitIndependence(t *testing.T) {
	r := NewRNG(1)
	s1, s2 := r.Split(), r.Split()
	equal := 0
	for i := 0; i < 100; i++ {
		if s1.Float64() == s2.Float64() {
			equal++
		}
	}
	if equal > 5 {
		t.Errorf("split streams look correlated: %d equal draws", equal)
	}
}

// empiricalMoments draws n samples and returns mean and stddev.
func empiricalMoments(d Distribution, seed int64, n int) (float64, float64) {
	r := NewRNG(seed)
	var w Welford
	for i := 0; i < n; i++ {
		w.Add(d.Sample(r))
	}
	return w.Mean(), w.StdDev()
}

func TestConstant(t *testing.T) {
	d := Constant{Value: 3.5}
	r := NewRNG(0)
	for i := 0; i < 10; i++ {
		if d.Sample(r) != 3.5 {
			t.Fatal("constant distribution must always return Value")
		}
	}
	if d.Mean() != 3.5 {
		t.Error("constant mean mismatch")
	}
}

func TestUniformMoments(t *testing.T) {
	d := Uniform{Lo: 1, Hi: 100}
	mean, sd := empiricalMoments(d, 11, 200000)
	if math.Abs(mean-d.Mean()) > 0.5 {
		t.Errorf("uniform mean = %v, want ≈ %v", mean, d.Mean())
	}
	wantSD := (100.0 - 1.0) / math.Sqrt(12)
	if math.Abs(sd-wantSD) > 0.5 {
		t.Errorf("uniform sd = %v, want ≈ %v", sd, wantSD)
	}
}

func TestUniformRange(t *testing.T) {
	d := Uniform{Lo: 2, Hi: 5}
	r := NewRNG(3)
	for i := 0; i < 10000; i++ {
		x := d.Sample(r)
		if x < 2 || x >= 5 {
			t.Fatalf("uniform sample %v out of [2,5)", x)
		}
	}
}

func TestLogNormalMoments(t *testing.T) {
	d := LogNormal{Mu: 0, Sigma: 1}
	mean, _ := empiricalMoments(d, 12, 400000)
	// E[X] = exp(0.5) ≈ 1.6487; the heavy tail needs loose tolerance.
	if math.Abs(mean-d.Mean()) > 0.05 {
		t.Errorf("lognormal mean = %v, want ≈ %v", mean, d.Mean())
	}
}

func TestLogNormalPositive(t *testing.T) {
	d := LogNormal{Mu: 0, Sigma: 1}
	r := NewRNG(4)
	for i := 0; i < 10000; i++ {
		if d.Sample(r) <= 0 {
			t.Fatal("lognormal samples must be positive")
		}
	}
}

func TestExponentialMoments(t *testing.T) {
	d := Exponential{Rate: 2}
	mean, sd := empiricalMoments(d, 13, 200000)
	if math.Abs(mean-0.5) > 0.01 {
		t.Errorf("exponential mean = %v, want ≈ 0.5", mean)
	}
	if math.Abs(sd-0.5) > 0.01 {
		t.Errorf("exponential sd = %v, want ≈ 0.5", sd)
	}
}

func TestBimodal(t *testing.T) {
	d := Bimodal{Slow: 1, Factor: 9, FastFraction: 0.5}
	r := NewRNG(5)
	slow, fast := 0, 0
	for i := 0; i < 100000; i++ {
		switch d.Sample(r) {
		case 1:
			slow++
		case 9:
			fast++
		default:
			t.Fatal("bimodal must return Slow or Slow*Factor")
		}
	}
	frac := float64(fast) / float64(slow+fast)
	if math.Abs(frac-0.5) > 0.01 {
		t.Errorf("fast fraction = %v, want ≈ 0.5", frac)
	}
	if got, want := d.Mean(), 5.0; math.Abs(got-want) > 1e-12 {
		t.Errorf("bimodal mean = %v, want %v", got, want)
	}
}

func TestParetoMomentsAndSupport(t *testing.T) {
	d := Pareto{Xm: 1, Alpha: 3}
	r := NewRNG(6)
	var w Welford
	for i := 0; i < 200000; i++ {
		x := d.Sample(r)
		if x < 1 {
			t.Fatalf("pareto sample %v below scale", x)
		}
		w.Add(x)
	}
	if math.Abs(w.Mean()-1.5) > 0.02 {
		t.Errorf("pareto mean = %v, want ≈ 1.5", w.Mean())
	}
	if !math.IsInf((Pareto{Xm: 1, Alpha: 0.5}).Mean(), 1) {
		t.Error("pareto mean must be +Inf for alpha <= 1")
	}
}

func TestSampleN(t *testing.T) {
	xs := SampleN(Constant{Value: 2}, NewRNG(0), 17)
	if len(xs) != 17 {
		t.Fatalf("len = %d, want 17", len(xs))
	}
	for _, x := range xs {
		if x != 2 {
			t.Fatal("SampleN must fill from the distribution")
		}
	}
}

func TestDistributionStrings(t *testing.T) {
	ds := []Distribution{
		Constant{1}, Uniform{1, 100}, LogNormal{0, 1},
		Exponential{1}, Bimodal{1, 4, 0.5}, Pareto{1, 2},
	}
	seen := map[string]bool{}
	for _, d := range ds {
		s := d.String()
		if s == "" {
			t.Errorf("%T has empty String()", d)
		}
		if seen[s] {
			t.Errorf("duplicate String() %q", s)
		}
		seen[s] = true
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, x := range []float64{-1, 0, 1.9, 2, 5, 9.99, 10, 11} {
		h.Add(x)
	}
	if h.Total() != 8 {
		t.Fatalf("total = %d, want 8", h.Total())
	}
	// Bucket widths are 2: [-1,0,1.9]→bucket0, [2]→bucket1, [5]→bucket2,
	// [9.99,10,11]→bucket4 (clamped).
	want := []int{3, 1, 1, 0, 3}
	for i, c := range h.Counts {
		if c != want[i] {
			t.Errorf("bucket %d = %d, want %d", i, c, want[i])
		}
	}
	lo, hi := h.BucketBounds(1)
	if lo != 2 || hi != 4 {
		t.Errorf("BucketBounds(1) = (%v,%v), want (2,4)", lo, hi)
	}
	if h.String() == "" {
		t.Error("histogram rendering should be non-empty")
	}
}

func TestHistogramPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("zero bins", func() { NewHistogram(0, 1, 0) })
	mustPanic("empty range", func() { NewHistogram(1, 1, 4) })
}
