package dessim

import (
	"fmt"
	"math"
	"strings"
)

// IntervalKind distinguishes what a worker was doing during an interval.
type IntervalKind int

// Interval kinds.
const (
	// Receive marks the transfer of a chunk from the master.
	Receive IntervalKind = iota
	// Compute marks processing of a received chunk.
	Compute
)

// String implements fmt.Stringer.
func (k IntervalKind) String() string {
	switch k {
	case Receive:
		return "recv"
	case Compute:
		return "comp"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Interval is one booked activity on a worker's timeline.
type Interval struct {
	Kind       IntervalKind
	Start, End float64
	// Data is the chunk size in data units (meaningful for Receive).
	Data float64
	// Work is the amount of useful work units (meaningful for Compute).
	Work float64
	// Task identifies the chunk/task this interval belongs to (-1 if n/a).
	Task int
}

// Duration returns End - Start.
func (iv Interval) Duration() float64 { return iv.End - iv.Start }

// Timeline is the full execution record of one simulation run.
type Timeline struct {
	// PerWorker[i] lists worker i's intervals in start order.
	PerWorker [][]Interval
	// Makespan is the completion time of the last interval.
	Makespan float64
}

// NewTimeline creates a timeline for p workers.
func NewTimeline(p int) *Timeline {
	return &Timeline{PerWorker: make([][]Interval, p)}
}

// Add records an interval for worker i and updates the makespan.
func (tl *Timeline) Add(i int, iv Interval) {
	tl.PerWorker[i] = append(tl.PerWorker[i], iv)
	if iv.End > tl.Makespan {
		tl.Makespan = iv.End
	}
}

// CommVolume returns the total data units transferred across all workers.
func (tl *Timeline) CommVolume() float64 {
	v := 0.0
	for _, ivs := range tl.PerWorker {
		for _, iv := range ivs {
			if iv.Kind == Receive {
				v += iv.Data
			}
		}
	}
	return v
}

// WorkDone returns the total useful work units completed.
func (tl *Timeline) WorkDone() float64 {
	v := 0.0
	for _, ivs := range tl.PerWorker {
		for _, iv := range ivs {
			if iv.Kind == Compute {
				v += iv.Work
			}
		}
	}
	return v
}

// FinishTimes returns each worker's last-interval end time (0 if idle the
// whole run).
func (tl *Timeline) FinishTimes() []float64 {
	out := make([]float64, len(tl.PerWorker))
	for i, ivs := range tl.PerWorker {
		for _, iv := range ivs {
			if iv.End > out[i] {
				out[i] = iv.End
			}
		}
	}
	return out
}

// ComputeTimes returns each worker's total Compute duration.
func (tl *Timeline) ComputeTimes() []float64 {
	out := make([]float64, len(tl.PerWorker))
	for i, ivs := range tl.PerWorker {
		for _, iv := range ivs {
			if iv.Kind == Compute {
				out[i] += iv.Duration()
			}
		}
	}
	return out
}

// LoadImbalance returns e = (t_max - t_min)/t_min over the workers'
// compute times, the imbalance metric of Section 4.3 that drives the
// Comm_hom/k refinement. Workers with zero compute time make the
// imbalance +Inf (the strategy left someone idle); a run with no compute
// anywhere returns 0.
func (tl *Timeline) LoadImbalance() float64 {
	times := tl.ComputeTimes()
	tmin, tmax := math.Inf(1), 0.0
	for _, t := range times {
		if t < tmin {
			tmin = t
		}
		if t > tmax {
			tmax = t
		}
	}
	if tmax == 0 {
		return 0
	}
	if tmin == 0 {
		return math.Inf(1)
	}
	return (tmax - tmin) / tmin
}

// Utilization returns the fraction of worker-time spent computing between
// 0 and the makespan (0 for an empty run).
func (tl *Timeline) Utilization() float64 {
	if tl.Makespan == 0 || len(tl.PerWorker) == 0 {
		return 0
	}
	busy := 0.0
	for _, t := range tl.ComputeTimes() {
		busy += t
	}
	return busy / (tl.Makespan * float64(len(tl.PerWorker)))
}

// Validate checks causal consistency: every interval has non-negative
// duration, and intervals of the same kind on one worker do not overlap
// (the link and the CPU are distinct resources, so a Receive may overlap a
// Compute — that is exactly the multi-round pipelining of Section 1.2 —
// but two Receives or two Computes may not). It returns the first
// violation found.
func (tl *Timeline) Validate() error {
	for i, ivs := range tl.PerWorker {
		prevEnd := map[IntervalKind]float64{}
		for j, iv := range ivs {
			if iv.End < iv.Start {
				return fmt.Errorf("worker %d interval %d has negative duration [%v,%v]", i, j, iv.Start, iv.End)
			}
			if end, ok := prevEnd[iv.Kind]; ok && iv.Start < end-1e-9 {
				return fmt.Errorf("worker %d %s interval %d starts at %v before previous end %v", i, iv.Kind, j, iv.Start, end)
			}
			prevEnd[iv.Kind] = iv.End
		}
	}
	return nil
}

// Gantt renders an ASCII Gantt chart of the timeline, width columns wide.
// Receive intervals render as '-', compute as '#'.
func (tl *Timeline) Gantt(width int) string {
	if width <= 0 {
		width = 72
	}
	if tl.Makespan == 0 {
		return "(empty timeline)\n"
	}
	var b strings.Builder
	scale := float64(width) / tl.Makespan
	for i, ivs := range tl.PerWorker {
		row := []byte(strings.Repeat(".", width))
		for _, iv := range ivs {
			lo := int(iv.Start * scale)
			hi := int(iv.End * scale)
			if hi >= width {
				hi = width - 1
			}
			ch := byte('-')
			if iv.Kind == Compute {
				ch = '#'
			}
			for c := lo; c <= hi; c++ {
				row[c] = ch
			}
		}
		fmt.Fprintf(&b, "P%-3d |%s|\n", i+1, string(row))
	}
	fmt.Fprintf(&b, "      0%*s%.4g\n", width-1, "t=", tl.Makespan)
	return b.String()
}

// Summary renders a per-worker utilization report: busy compute time,
// receive time, idle share relative to the makespan.
func (tl *Timeline) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "makespan %.4g, %d workers, volume %.4g, work %.4g, utilization %.1f%%\n",
		tl.Makespan, len(tl.PerWorker), tl.CommVolume(), tl.WorkDone(), 100*tl.Utilization())
	for i, ivs := range tl.PerWorker {
		var comp, recv float64
		for _, iv := range ivs {
			switch iv.Kind {
			case Compute:
				comp += iv.Duration()
			case Receive:
				recv += iv.Duration()
			}
		}
		idle := 0.0
		if tl.Makespan > 0 {
			idle = 100 * (tl.Makespan - comp) / tl.Makespan
		}
		fmt.Fprintf(&b, "  P%-3d compute %.4g  recv %.4g  idle %.1f%%\n", i+1, comp, recv, idle)
	}
	return b.String()
}
