package matmul

import (
	"math"
	"testing"
	"testing/quick"

	"nlfl/internal/partition"
	"nlfl/internal/stats"
)

func TestKernelAgreement(t *testing.T) {
	shapes := []struct{ m, k, n int }{
		{1, 1, 1}, {3, 4, 5}, {16, 16, 16}, {33, 17, 21}, {64, 64, 64},
	}
	for _, s := range shapes {
		a := Random(s.m, s.k, 1)
		b := Random(s.k, s.n, 2)
		ref, err := Naive(a, b)
		if err != nil {
			t.Fatal(err)
		}
		blocked, err := Blocked(a, b, 8)
		if err != nil {
			t.Fatal(err)
		}
		par, err := Parallel(a, b, 4)
		if err != nil {
			t.Fatal(err)
		}
		op, err := OuterProduct(a, b)
		if err != nil {
			t.Fatal(err)
		}
		for name, m := range map[string]*Matrix{"blocked": blocked, "parallel": par, "outer": op} {
			if !ref.Equal(m, 1e-9) {
				t.Errorf("%v shape %+v disagrees with naive", name, s)
			}
		}
	}
}

func TestIdentityMultiplication(t *testing.T) {
	a := Random(12, 12, 3)
	id := Identity(12)
	c, err := Naive(a, id)
	if err != nil {
		t.Fatal(err)
	}
	if !c.Equal(a, 1e-12) {
		t.Error("A·I != A")
	}
	c2, err := Naive(id, a)
	if err != nil {
		t.Fatal(err)
	}
	if !c2.Equal(a, 1e-12) {
		t.Error("I·A != A")
	}
}

func TestShapeValidation(t *testing.T) {
	a, b := New(2, 3), New(4, 2)
	if _, err := Naive(a, b); err == nil {
		t.Error("mismatched shapes should fail")
	}
	if _, err := Blocked(New(2, 2), New(2, 2), 0); err == nil {
		t.Error("zero block size should fail")
	}
	if _, err := Parallel(New(2, 2), New(2, 2), 0); err == nil {
		t.Error("zero workers should fail")
	}
	defer func() {
		if recover() == nil {
			t.Error("New with bad shape should panic")
		}
	}()
	New(0, 3)
}

func TestParallelMoreWorkersThanRows(t *testing.T) {
	a, b := Random(3, 3, 4), Random(3, 3, 5)
	ref, _ := Naive(a, b)
	par, err := Parallel(a, b, 64)
	if err != nil {
		t.Fatal(err)
	}
	if !ref.Equal(par, 1e-9) {
		t.Error("excess workers broke the result")
	}
}

func TestVectorOuter(t *testing.T) {
	m := VectorOuter([]float64{1, 2}, []float64{3, 4, 5})
	want := [][]float64{{3, 4, 5}, {6, 8, 10}}
	for i := range want {
		for j := range want[i] {
			if m.At(i, j) != want[i][j] {
				t.Errorf("outer[%d][%d] = %v, want %v", i, j, m.At(i, j), want[i][j])
			}
		}
	}
}

func TestBlockCyclicOwnership(t *testing.T) {
	l, err := NewBlockCyclic(8, 2, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Block (0,0) → proc 0, block (0,1) → proc 1, block (1,0) → proc 2,
	// cycling with period 4 in each dimension.
	cases := []struct{ i, j, want int }{
		{0, 0, 0}, {0, 2, 1}, {2, 0, 2}, {2, 2, 3},
		{4, 4, 0}, {1, 1, 0}, {3, 3, 3}, {0, 4, 0}, {0, 6, 1},
	}
	for _, c := range cases {
		if got := l.OwnerOf(c.i, c.j); got != c.want {
			t.Errorf("OwnerOf(%d,%d) = %d, want %d", c.i, c.j, got, c.want)
		}
	}
	if l.P() != 4 || l.N() != 8 || l.Name() == "" {
		t.Error("metadata wrong")
	}
	if _, err := NewBlockCyclic(0, 2, 2, 2); err == nil {
		t.Error("invalid dims should fail")
	}
}

func TestBlockCyclicCommMatchesClosedForm(t *testing.T) {
	for _, c := range []struct{ n, r, cc, b int }{
		{16, 2, 2, 2}, {24, 2, 3, 4}, {32, 4, 2, 8}, {30, 3, 5, 2},
	} {
		l, err := NewBlockCyclic(c.n, c.r, c.cc, c.b)
		if err != nil {
			t.Fatal(err)
		}
		rep := CommVolume(l)
		want := GridCommClosedForm(c.r, c.cc, c.n)
		if math.Abs(rep.Total-want) > 1e-9 {
			t.Errorf("%v: simulated %v vs closed form %v", l.Name(), rep.Total, want)
		}
		// Cells are dealt evenly when the grid divides the blocks evenly.
		if c.n%(c.b*c.r) == 0 && c.n%(c.b*c.cc) == 0 {
			if e := rep.Imbalance(nil); e != 0 {
				t.Errorf("%v: grid imbalance %v, want 0", l.Name(), e)
			}
		}
	}
}

func TestRectLayoutCommMatchesClosedForm(t *testing.T) {
	r := stats.NewRNG(11)
	for _, p := range []int{2, 5, 9} {
		areas := stats.SampleN(stats.Uniform{Lo: 1, Hi: 5}, r, p)
		part, err := partition.PeriSum(areas)
		if err != nil {
			t.Fatal(err)
		}
		const n = 120
		l, err := NewRectLayout(n, part)
		if err != nil {
			t.Fatal(err)
		}
		rep := CommVolume(l)
		want := RectCommClosedForm(part, n)
		// Integer-grid rounding perturbs effective widths/heights by
		// ≈ 1/n, i.e. O(p·n) elements out of O(n²).
		if math.Abs(rep.Total-want) > 4*float64(p*n) {
			t.Errorf("p=%d: simulated %v vs closed form %v", p, rep.Total, want)
		}
		// Work shares must track prescribed areas within grid rounding.
		for q, cells := range rep.CellsPerProc {
			wantCells := part.Areas[q] * n * n
			if math.Abs(float64(cells)-wantCells) > 4*n {
				t.Errorf("p=%d proc %d: %d cells, want ≈ %v", p, q, cells, wantCells)
			}
		}
	}
}

func TestRectLayoutValidation(t *testing.T) {
	part, _ := partition.PeriSum([]float64{1, 1})
	if _, err := NewRectLayout(0, part); err == nil {
		t.Error("n=0 should fail")
	}
	bad := &partition.Partition{Areas: []float64{1}, Rects: nil}
	if _, err := NewRectLayout(8, bad); err == nil {
		t.Error("invalid partition should fail")
	}
}

func TestHeterogeneousBeatsBlockCyclicOnSkewedSpeeds(t *testing.T) {
	// 4 processors, speeds {1, 1, 1, 13}: block-cyclic can balance load
	// only by over-decomposing, and even then each step broadcasts to the
	// whole grid; the rectangle layout assigns areas ∝ speed directly.
	speeds := []float64{1, 1, 1, 13}
	part, err := partition.PeriSum(speeds)
	if err != nil {
		t.Fatal(err)
	}
	const n = 64
	rect, err := NewRectLayout(n, part)
	if err != nil {
		t.Fatal(err)
	}
	rectRep := CommVolume(rect)
	grid, err := NewBlockCyclic(n, 2, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	gridRep := CommVolume(grid)
	// The grid ignores speeds: its work imbalance is huge.
	if gi := gridRep.Imbalance(speeds); gi < 5 {
		t.Errorf("grid speed-weighted imbalance = %v, expected large", gi)
	}
	if ri := rectRep.Imbalance(speeds); ri > 0.15 {
		t.Errorf("rect speed-weighted imbalance = %v, want small", ri)
	}
	if rectRep.Total >= gridRep.Total {
		t.Errorf("rect comm %v not below grid comm %v", rectRep.Total, gridRep.Total)
	}
}

func TestCommReportAccounting(t *testing.T) {
	l, _ := NewBlockCyclic(12, 2, 2, 3)
	rep := CommVolume(l)
	sum := 0.0
	for _, v := range rep.PerProc {
		sum += v
	}
	if math.Abs(sum-rep.Total) > 1e-9 {
		t.Errorf("per-proc %v doesn't sum to total %v", sum, rep.Total)
	}
	cells := 0
	for _, c := range rep.CellsPerProc {
		cells += c
	}
	if cells != 12*12 {
		t.Errorf("cells sum to %d, want 144", cells)
	}
}

func TestImbalanceEdgeCases(t *testing.T) {
	rep := CommReport{CellsPerProc: []int{0, 0}}
	if rep.Imbalance(nil) != 0 {
		t.Error("all-idle should be 0")
	}
	rep = CommReport{CellsPerProc: []int{0, 5}}
	if !math.IsInf(rep.Imbalance(nil), 1) {
		t.Error("one idle should be +Inf")
	}
}

// Property: (A·B)·C == A·(B·C) across kernels on small random matrices.
func TestAssociativityProperty(t *testing.T) {
	f := func(seed int64, dims [3]uint8) bool {
		m := int(dims[0]%6) + 1
		k := int(dims[1]%6) + 1
		n := int(dims[2]%6) + 1
		a := Random(m, k, seed)
		b := Random(k, n, seed+1)
		c := Random(n, m, seed+2)
		ab, err := Blocked(a, b, 4)
		if err != nil {
			return false
		}
		abc1, err := Naive(ab, c)
		if err != nil {
			return false
		}
		bc, err := OuterProduct(b, c)
		if err != nil {
			return false
		}
		abc2, err := Parallel(a, bc, 3)
		if err != nil {
			return false
		}
		return abc1.Equal(abc2, 1e-8)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// Property: every cell has exactly one owner and comm accounting is
// internally consistent for random rectangle layouts.
func TestRectLayoutOwnershipProperty(t *testing.T) {
	f := func(seed int64, np uint8) bool {
		p := int(np%8) + 1
		r := stats.NewRNG(seed)
		areas := make([]float64, p)
		for i := range areas {
			areas[i] = 0.2 + 3*r.Float64()
		}
		part, err := partition.PeriSum(areas)
		if err != nil {
			return false
		}
		const n = 20
		l, err := NewRectLayout(n, part)
		if err != nil {
			return false
		}
		counts := make([]int, p)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				q := l.OwnerOf(i, j)
				if q < 0 || q >= p {
					return false
				}
				counts[q]++
			}
		}
		total := 0
		for _, c := range counts {
			total += c
		}
		return total == n*n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestMultiplyWithLayoutMatchesKernels(t *testing.T) {
	const n = 24
	a := matRandom(t, n, 21)
	b := matRandom(t, n, 22)
	ref, err := Naive(a, b)
	if err != nil {
		t.Fatal(err)
	}
	grid, err := NewBlockCyclic(n, 2, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	got, err := MultiplyWithLayout(a, b, grid)
	if err != nil {
		t.Fatal(err)
	}
	if !ref.Equal(got, 1e-9) {
		t.Error("block-cyclic layout execution disagrees with kernel")
	}
	part, err := partition.PeriSum([]float64{1, 2, 5})
	if err != nil {
		t.Fatal(err)
	}
	rect, err := NewRectLayout(n, part)
	if err != nil {
		t.Fatal(err)
	}
	got2, err := MultiplyWithLayout(a, b, rect)
	if err != nil {
		t.Fatal(err)
	}
	if !ref.Equal(got2, 1e-9) {
		t.Error("rect layout execution disagrees with kernel")
	}
}

func matRandom(t *testing.T, n int, seed int64) *Matrix {
	t.Helper()
	return Random(n, n, seed)
}

func TestMultiplyWithLayoutValidation(t *testing.T) {
	a, b := Random(4, 4, 1), Random(4, 4, 2)
	grid, _ := NewBlockCyclic(8, 2, 2, 2) // wrong dimension
	if _, err := MultiplyWithLayout(a, b, grid); err == nil {
		t.Error("dimension mismatch should fail")
	}
	bad, _ := NewBlockCyclic(4, 2, 2, 1)
	if _, err := MultiplyWithLayout(Random(4, 3, 1), b, bad); err == nil {
		t.Error("non-square shapes should fail")
	}
}
