package bench

import (
	"errors"
	"strings"
	"testing"

	"nlfl/internal/results"
)

// kernelEntry builds a checked, reference-equal entry for gate tests.
func kernelEntry(kernel string, n, workers int, gflops float64) results.KernelBenchEntry {
	flops := 2 * float64(n) * float64(n) * float64(n)
	return results.KernelBenchEntry{
		Kernel: kernel, N: n, Workers: workers,
		Seconds: flops / (gflops * 1e9), GFLOPS: gflops, Checked: true,
	}
}

func kernelFile(entries ...results.KernelBenchEntry) results.KernelBenchFile {
	return results.KernelBenchFile{
		Schema: results.BenchKernelsSchema, AutotunedTile: 64, Entries: entries,
	}
}

// TestValidateKernelsThroughputGates pins the two performance floors: the
// best parallel-tiled entry must stay within 95% of tiled at every
// n ≥ 256, and — when the sweep includes n=1024 — beat naive there by 2×.
func TestValidateKernelsThroughputGates(t *testing.T) {
	good := kernelFile(
		kernelEntry("naive", 256, 0, 3.0),
		kernelEntry("tiled", 256, 0, 18.0),
		kernelEntry("parallel-tiled", 256, 2, 18.0),
		kernelEntry("naive", 1024, 0, 2.5),
		kernelEntry("tiled", 1024, 0, 20.0),
		kernelEntry("parallel-tiled", 1024, 4, 20.0),
	)
	if err := ValidateKernels(good); err != nil {
		t.Fatalf("healthy file rejected: %v", err)
	}

	slowParallel := kernelFile(
		kernelEntry("naive", 256, 0, 3.0),
		kernelEntry("tiled", 256, 0, 18.0),
		kernelEntry("parallel-tiled", 256, 2, 12.0), // 67% of tiled: the old inversion
	)
	if err := ValidateKernels(slowParallel); !errors.Is(err, ErrInvalidBench) {
		t.Errorf("parallel-tiled losing to tiled at n=256 accepted: %v", err)
	}

	slowKernel := kernelFile(
		kernelEntry("naive", 1024, 0, 2.5),
		kernelEntry("tiled", 1024, 0, 4.0),
		kernelEntry("parallel-tiled", 1024, 4, 4.0), // only 1.6x naive
	)
	if err := ValidateKernels(slowKernel); !errors.Is(err, ErrInvalidBench) {
		t.Errorf("parallel-tiled below 2x naive at n=1024 accepted: %v", err)
	}

	missingParallel := kernelFile(
		kernelEntry("naive", 256, 0, 3.0),
		kernelEntry("tiled", 256, 0, 18.0),
	)
	if err := ValidateKernels(missingParallel); !errors.Is(err, ErrInvalidBench) {
		t.Errorf("missing parallel-tiled at a gated size accepted: %v", err)
	}

	// A quick sweep (no sizes ≥ 256) carries nothing to gate.
	quick := kernelFile(
		kernelEntry("naive", 128, 0, 3.0),
		kernelEntry("tiled", 128, 0, 18.0),
		kernelEntry("parallel-tiled", 128, 2, 10.0),
	)
	if err := ValidateKernels(quick); err != nil {
		t.Errorf("quick-style file without gated sizes rejected: %v", err)
	}
}

// TestCompareKernels pins the matching and the speedup arithmetic of the
// before/after table, including one-sided (added/removed) rows.
func TestCompareKernels(t *testing.T) {
	before := kernelFile(
		kernelEntry("naive", 256, 0, 2.0),
		kernelEntry("tiled", 256, 0, 3.0),
		kernelEntry("old-kernel", 256, 0, 1.0),
	)
	after := kernelFile(
		kernelEntry("naive", 256, 0, 2.0),
		kernelEntry("tiled", 256, 0, 18.0),
		kernelEntry("new-kernel", 256, 0, 9.0),
	)
	deltas := CompareKernels(before, after)
	if len(deltas) != 4 {
		t.Fatalf("got %d rows, want 4 (union of configurations)", len(deltas))
	}
	byName := map[string]KernelDelta{}
	for _, d := range deltas {
		byName[d.Kernel] = d
	}
	if d := byName["tiled"]; d.Speedup < 5.9 || d.Speedup > 6.1 {
		t.Errorf("tiled speedup %v, want 6.0 (3 → 18 GFLOPS)", d.Speedup)
	}
	if d := byName["naive"]; d.Speedup < 0.99 || d.Speedup > 1.01 {
		t.Errorf("naive speedup %v, want 1.0", d.Speedup)
	}
	if d := byName["old-kernel"]; d.NewSeconds != 0 || d.Speedup != 0 {
		t.Errorf("removed configuration not zero-sided: %+v", d)
	}
	if d := byName["new-kernel"]; d.OldSeconds != 0 || d.Speedup != 0 {
		t.Errorf("added configuration not zero-sided: %+v", d)
	}

	table := FormatKernelDeltas(deltas)
	for _, want := range []string{"added", "removed", "6.00x"} {
		if !strings.Contains(table, want) {
			t.Errorf("rendered table missing %q:\n%s", want, table)
		}
	}
}
