package runtime

import (
	"fmt"
	"math"
	"sync"

	"nlfl/internal/matmul"
	"nlfl/internal/trace"
)

// Options configures the worker pool.
type Options struct {
	// Speeds are the workers' relative speeds (one entry per worker, all
	// positive). Required.
	Speeds []float64
	// WorkPerSecond is the cell-update rate of a speed-1 worker — the
	// token-bucket refill scale. 0 selects 2e6 cells/s, fast enough for
	// sub-second benches yet slow enough that the throttle (not the real
	// CPU) sets the pace, so relative speeds are honored even on one core.
	WorkPerSecond float64
	// Shards is the shared-queue stripe count; 0 selects min(workers, 8).
	Shards int
	// Burst is the token-bucket capacity in cells; 0 selects 5 ms of
	// credit at the worker's rate.
	Burst float64
	// VerifyEvery, when positive, spot-checks every VerifyEvery-th output
	// cell against a[i]·b[j] after the run and fails the run on mismatch.
	VerifyEvery int
	// Link models the master's outgoing bandwidth (see Link); the zero
	// value ships chunk inputs at memcpy speed.
	Link Link
	// Prefetch enables double-buffered prefetch: while a worker computes
	// one chunk it claims and transfers the next, overlapping the
	// transfer with the current chunk's compute. The overlapped fraction
	// is reported in Report.OverlapFraction.
	Prefetch bool
}

// Report is the outcome of one measured run.
type Report struct {
	// Strategy, N, Grid and K echo the executed plan.
	Strategy string
	N        int
	Grid     int
	K        int
	// Workers is the pool size, Chunks the number of chunks executed.
	Workers int
	Chunks  int
	// Predicted is the plan's closed-form communication volume.
	Predicted float64
	// DataVolume is the measured volume: vector elements actually copied
	// into worker-local buffers, summed over chunks.
	DataVolume float64
	// WorkCells is the total output cells computed (= N² for a full run).
	WorkCells float64
	// Makespan is the wall-clock run time in seconds.
	Makespan float64
	// PerWorkerData and PerWorkerCells split DataVolume and WorkCells by
	// worker — the measured footprint behind the paper's Figure 2.
	PerWorkerData  []float64
	PerWorkerCells []float64
	// CommTime is the total measured communication seconds summed over
	// workers; PerWorkerCommTime splits it by worker. Under the link
	// model these are the modeled transfer windows, so CommTime ≈
	// DataVolume/bandwidth when the shared port is the bottleneck.
	CommTime          float64
	PerWorkerCommTime []float64
	// OverlapFraction is the fraction of communication time hidden under
	// the same worker's compute spans — ~0 without prefetch, approaching
	// 1 when transfers are fully pipelined behind compute.
	OverlapFraction float64
	// LinkUtilization is each worker's comm-busy fraction of the
	// makespan — how long its incoming link was occupied.
	LinkUtilization []float64
	// LinkCapacity echoes Options.Link.ElemsPerSecond (0 when the shared
	// port was unconstrained); Expect threads it to the trace oracle's
	// link-capacity invariant.
	LinkCapacity float64
	// Out is the computed product.
	Out *matmul.Matrix
	// Trace is the run's audited timeline (wall-clock seconds).
	Trace *trace.Timeline
}

// Expect returns the invariant-oracle expectations for the run: exact
// work conservation (every cell computed once), the exact shipping ledger,
// the strategy's analytic volume as an exact bound within relTol, and —
// when the run modeled a shared master link — the link-capacity
// invariant at that bandwidth.
func (r *Report) Expect(relTol float64) *trace.Expect {
	nn := float64(r.N) * float64(r.N)
	return &trace.Expect{
		HasWork:       true,
		TotalWork:     nn,
		ProcessedWork: nn,
		HasComm:       true,
		ShippedData:   r.DataVolume,
		Bound:         r.Predicted,
		BoundKind:     trace.BoundExact,
		BoundName:     "Comm_" + r.Strategy,
		LinkCapacity:  r.LinkCapacity,
		Tol:           relTol,
	}
}

// staged is one chunk whose inputs have been shipped into worker-local
// buffers (its Comm span is recorded by fetch at shipping time).
type staged struct {
	c          Chunk
	aBuf, bBuf []float64
}

// Run executes the plan on real vectors: len(Speeds) goroutine workers
// pull chunks from the sharded queue, ship each chunk's a̅/b̅ intervals
// into worker-local buffers (the Comm span — paced by the bandwidth
// model when Options.Link is set, raw memcpy otherwise), pay the chunk's
// area to their token bucket and fill the output rectangle through the
// tiled kernel (the Compute span). With Options.Prefetch each worker
// double-buffers: the next chunk's transfer runs while the current chunk
// computes. The returned report carries the product, the measured
// per-worker traffic and comm time, the comm/compute overlap fraction,
// and the trace.Live timeline of the run.
func Run(plan *StrategyPlan, a, b []float64, opts Options) (*Report, error) {
	n := plan.N
	if len(a) != n || len(b) != n {
		return nil, fmt.Errorf("runtime: plan is for N=%d, got vectors of %d and %d", n, len(a), len(b))
	}
	if n == 0 {
		return nil, fmt.Errorf("runtime: empty vectors")
	}
	p := len(opts.Speeds)
	if p == 0 {
		return nil, fmt.Errorf("runtime: need at least one worker speed")
	}
	for i, s := range opts.Speeds {
		if s <= 0 {
			return nil, fmt.Errorf("runtime: worker %d has non-positive speed %v", i, s)
		}
	}
	if lp := len(opts.Link.PerWorker); lp != 0 && lp != p {
		return nil, fmt.Errorf("runtime: %d per-worker link rates for %d workers", lp, p)
	}
	for _, c := range plan.Chunks {
		if c.RowLo < 0 || c.ColLo < 0 || c.RowHi > n || c.ColHi > n || c.Cells() <= 0 {
			return nil, fmt.Errorf("runtime: chunk %d has invalid bounds rows[%d,%d) cols[%d,%d)", c.Task, c.RowLo, c.RowHi, c.ColLo, c.ColHi)
		}
		if c.Owner >= p {
			return nil, fmt.Errorf("runtime: chunk %d owned by worker %d of %d", c.Task, c.Owner, p)
		}
	}
	// Σcells == n² alone is satisfiable by overlaps plus a gap of the
	// same area; require an exact tiling.
	if err := checkTiling(n, plan.Chunks); err != nil {
		return nil, err
	}
	totalCells := n * n
	rate := opts.WorkPerSecond
	if rate <= 0 {
		rate = 2e6
	}
	shards := opts.Shards
	if shards <= 0 {
		shards = min(p, 8)
	}

	out := matmul.New(n, n)
	queue := newWorkQueue(plan.Chunks, p, shards)
	live := trace.NewLive(p)
	link := newMasterLink(opts.Link, p, live.Now)
	perData := make([]float64, p)
	perCells := make([]float64, p)

	var wg sync.WaitGroup
	for w := 0; w < p; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			bucket := newTokenBucket(opts.Speeds[w]*rate, opts.Burst)
			var bufs [2]struct{ a, b []float64 }

			// fetch ships the chunk's inputs into buffer slot `slot`:
			// the only elements this worker may read are the copies it
			// just received. Under the link model the Comm span is the
			// booked transfer window; otherwise it is the measured
			// memcpy. Calls for one worker are strictly sequential
			// (double-buffering keeps at most one in flight), so the
			// per-worker ledgers need no locking.
			fetch := func(c Chunk, slot int) staged {
				bb := &bufs[slot]
				var t0, t1 float64
				if link != nil && !math.IsInf(link.rateFor(w), 1) {
					t0, t1 = link.book(w, float64(c.Data()))
					bb.a = append(bb.a[:0], a[c.RowLo:c.RowHi]...)
					bb.b = append(bb.b[:0], b[c.ColLo:c.ColHi]...)
					link.wait(t1)
				} else {
					t0 = live.Now()
					bb.a = append(bb.a[:0], a[c.RowLo:c.RowHi]...)
					bb.b = append(bb.b[:0], b[c.ColLo:c.ColHi]...)
					t1 = live.Now()
				}
				live.Add(w, trace.Span{Kind: trace.Comm, Start: t0, End: t1,
					Data: float64(c.Data()), Task: c.Task})
				perData[w] += float64(c.Data())
				return staged{c: c, aBuf: bb.a, bBuf: bb.b}
			}

			c, ok := queue.pop(w)
			if !ok {
				return
			}
			cur := 0
			s := fetch(c, cur)
			for {
				// Claim and start shipping the next chunk before
				// computing the current one, so the transfer hides
				// under the compute span.
				var pre chan staged
				var next Chunk
				var more bool
				if opts.Prefetch {
					if next, more = queue.pop(w); more {
						pre = make(chan staged, 1)
						go func(c Chunk, slot int) { pre <- fetch(c, slot) }(next, 1-cur)
					}
				}

				// Compute: the token bucket stretches the span to the
				// duration a speed-sᵢ processor would need.
				cells := float64(s.c.Cells())
				t0 := live.Now()
				bucket.acquire(cells)
				fillChunk(out, s.aBuf, s.bBuf, s.c)
				t1 := live.Now()
				live.Add(w, trace.Span{Kind: trace.Compute, Start: t0, End: t1,
					Work: cells, Task: s.c.Task})
				perCells[w] += cells

				if opts.Prefetch {
					if !more {
						return
					}
					s = <-pre
					cur = 1 - cur
				} else {
					if c, ok = queue.pop(w); !ok {
						return
					}
					s = fetch(c, cur)
				}
			}
		}(w)
	}
	wg.Wait()

	tl := live.Timeline()
	rep := &Report{
		Strategy:          plan.Strategy,
		N:                 n,
		Grid:              plan.Grid,
		K:                 plan.K,
		Workers:           p,
		Chunks:            len(plan.Chunks),
		Predicted:         plan.Predicted,
		WorkCells:         float64(totalCells),
		Makespan:          tl.Makespan,
		PerWorkerData:     perData,
		PerWorkerCells:    perCells,
		PerWorkerCommTime: tl.CommTimes(),
		LinkUtilization:   make([]float64, p),
		LinkCapacity:      math.Max(opts.Link.ElemsPerSecond, 0),
		Out:               out,
		Trace:             tl,
	}
	for _, d := range perData {
		rep.DataVolume += d
	}
	overlap := 0.0
	for w, ct := range rep.PerWorkerCommTime {
		rep.CommTime += ct
		if tl.Makespan > 0 {
			rep.LinkUtilization[w] = ct / tl.Makespan
		}
	}
	for _, ov := range tl.OverlapTimes() {
		overlap += ov
	}
	if rep.CommTime > 0 {
		rep.OverlapFraction = overlap / rep.CommTime
	}
	if opts.VerifyEvery > 0 {
		for idx := 0; idx < n*n; idx += opts.VerifyEvery {
			i, j := idx/n, idx%n
			if want := a[i] * b[j]; out.Data[idx] != want {
				return nil, fmt.Errorf("runtime: output cell (%d,%d) = %v, want %v", i, j, out.Data[idx], want)
			}
		}
	}
	return rep, nil
}

// fillChunk writes the chunk's rectangle of the outer product from the
// worker-local copies, tiling the column range like matmul.OuterInto.
func fillChunk(out *matmul.Matrix, aBuf, bBuf []float64, c Chunk) {
	bs := matmul.AutotuneTile()
	n := out.Cols
	for jj := 0; jj < len(bBuf); jj += bs {
		jMax := min(jj+bs, len(bBuf))
		bTile := bBuf[jj:jMax]
		for i, av := range aBuf {
			base := (c.RowLo+i)*n + c.ColLo
			row := out.Data[base+jj : base+jMax]
			for j, bv := range bTile {
				row[j] = av * bv
			}
		}
	}
}
