// Allocation regression guards for the worker pool's hot path: transfer
// buffers are sized once from the plan's largest chunk, span recording is
// reserved up front, and prefetch runs on a persistent fetcher goroutine —
// so the steady-state per-chunk loop must not allocate. These tests pin
// that property by differencing: two runs that differ only in chunk count
// must cost (nearly) the same number of heap allocations.
package runtime

import (
	"testing"
)

// runAllocs is the average mallocs of one full Run of the plan.
func runAllocs(t *testing.T, plan *StrategyPlan, a, b []float64, opts Options) float64 {
	t.Helper()
	return testing.AllocsPerRun(3, func() {
		if _, err := Run(plan, a, b, opts); err != nil {
			t.Fatal(err)
		}
	})
}

// TestFastPathPerChunkAllocations pins the fault-free pool's per-chunk
// allocation count at (essentially) zero: growing a run from 16 to 256
// chunks — same domain, same workers, prefetch on — must not grow its
// allocation count by more than a small fraction of an allocation per
// extra chunk. The pre-fix hot path allocated at least two objects per
// chunk (a fresh prefetch goroutine plus its result channel) and more via
// unreserved span appends, which this bound rejects by an order of
// magnitude.
func TestFastPathPerChunkAllocations(t *testing.T) {
	const n = 256
	a, b := linkVectors(n)
	opts := Options{
		Speeds:        []float64{1, 1},
		WorkPerSecond: 1e12, // throttle off: measure the loop, not the sleep
		Prefetch:      true,
	}
	small := gridPlan(t, n, 4) // 16 chunks
	big := gridPlan(t, n, 16)  // 256 chunks

	// One throwaway run to warm the autotune probe and lazy runtime state.
	if _, err := Run(small, a, b, opts); err != nil {
		t.Fatal(err)
	}
	base := runAllocs(t, small, a, b, opts)
	grown := runAllocs(t, big, a, b, opts)

	extraChunks := float64(len(big.Chunks) - len(small.Chunks))
	perChunk := (grown - base) / extraChunks
	if perChunk > 0.5 {
		t.Errorf("hot path allocates %.2f objects per chunk (16-chunk run: %.0f allocs, 256-chunk run: %.0f), want ≈ 0",
			perChunk, base, grown)
	}
}

// TestChaosPathPerChunkAllocations is the same differencing bound for the
// resilient loop on a fault-free scenario (speculation armed but never
// firing): leases churn through the queue, yet the per-chunk ledger and
// scratch reuse must keep the steady state allocation-free apart from the
// one committed-chunk record each commit appends.
func TestChaosPathPerChunkAllocations(t *testing.T) {
	const n = 256
	a, b := linkVectors(n)
	opts := Options{
		Speeds:        []float64{1, 1},
		WorkPerSecond: 1e12,
		Chaos:         Chaos{SpeculateAfter: 3600}, // resilient path, no faults fire
	}
	small := gridPlan(t, n, 4)
	big := gridPlan(t, n, 16)
	if _, err := Run(small, a, b, opts); err != nil {
		t.Fatal(err)
	}
	base := runAllocs(t, small, a, b, opts)
	grown := runAllocs(t, big, a, b, opts)

	extraChunks := float64(len(big.Chunks) - len(small.Chunks))
	perChunk := (grown - base) / extraChunks
	// The committed-chunk ledger legitimately appends one Chunk per commit
	// (amortized < 1 alloc per chunk); everything else must be free.
	if perChunk > 1.5 {
		t.Errorf("chaos path allocates %.2f objects per chunk (16-chunk run: %.0f allocs, 256-chunk run: %.0f), want ≲ 1",
			perChunk, base, grown)
	}
}
