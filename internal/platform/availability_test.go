package platform

import (
	"math"
	"testing"
)

func TestAvailabilityFactors(t *testing.T) {
	a := NewAvailability(2)
	if err := a.AddSpeedWindow(0, Window{Start: 1, End: 3, Factor: 0.5}); err != nil {
		t.Fatal(err)
	}
	if err := a.AddSpeedWindow(0, Window{Start: 2, End: 4, Factor: 0.5}); err != nil {
		t.Fatal(err)
	}
	if err := a.AddBandwidthWindow(1, Window{Start: 0, End: 2, Factor: 0.25}); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		w    int
		t    float64
		want float64
	}{
		{0, 0.5, 1},    // before any window
		{0, 1.5, 0.5},  // first window only
		{0, 2.5, 0.25}, // overlap multiplies
		{0, 3.5, 0.5},  // second window only
		{0, 4.0, 1},    // End is exclusive
	}
	for _, c := range cases {
		if got := a.SpeedFactor(c.w, c.t); got != c.want {
			t.Errorf("SpeedFactor(%d, %v) = %v, want %v", c.w, c.t, got, c.want)
		}
	}
	if got := a.BandwidthFactor(1, 1); got != 0.25 {
		t.Errorf("BandwidthFactor = %v, want 0.25", got)
	}
	if got := a.BandwidthFactor(0, 1); got != 1 {
		t.Errorf("unaffected worker's bandwidth factor = %v, want 1", got)
	}
}

func TestAvailabilityValidation(t *testing.T) {
	a := NewAvailability(1)
	bad := []Window{
		{Start: -1, End: 2, Factor: 1},
		{Start: 2, End: 2, Factor: 1},
		{Start: 3, End: 2, Factor: 1},
		{Start: 0, End: 1, Factor: -0.5},
		{Start: math.NaN(), End: 1, Factor: 1},
	}
	for _, w := range bad {
		if err := a.AddSpeedWindow(0, w); err == nil {
			t.Errorf("window %+v should be rejected", w)
		}
	}
	if err := a.AddSpeedWindow(5, Window{Start: 0, End: 1, Factor: 1}); err == nil {
		t.Error("unknown worker should be rejected")
	}
}

func TestAvailabilitySurvivors(t *testing.T) {
	a := NewAvailability(3)
	// Worker 1: permanent crash at t=5. Worker 2: transient outage [2,4).
	if err := a.AddSpeedWindow(1, Window{Start: 5, End: math.Inf(1), Factor: 0}); err != nil {
		t.Fatal(err)
	}
	if err := a.AddSpeedWindow(2, Window{Start: 2, End: 4, Factor: 0}); err != nil {
		t.Fatal(err)
	}
	if !a.Alive(1, 4.9) || a.Alive(1, 5) || a.Alive(2, 3) || !a.Alive(2, 4) {
		t.Error("aliveness windows wrong")
	}
	if a.PermanentlyDownBy(2, 3) {
		t.Error("transient outage misreported as permanent")
	}
	if !a.PermanentlyDownBy(1, 6) {
		t.Error("permanent crash not detected")
	}
	got := a.Survivors(6)
	if len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Errorf("Survivors(6) = %v, want [0 2]", got)
	}
}

func TestAvailabilityIntegrateWork(t *testing.T) {
	p, err := FromSpeeds([]float64{2, 1})
	if err != nil {
		t.Fatal(err)
	}
	a := NewAvailability(2)
	// Worker 0 at speed 2, halved on [1,3): 4 units starting at 0 run
	// 1s at rate 2 (2 units), then need 2 more units at rate 1 → t=3.
	if err := a.AddSpeedWindow(0, Window{Start: 1, End: 3, Factor: 0.5}); err != nil {
		t.Fatal(err)
	}
	if got := a.IntegrateWork(p, 0, 0, 4); math.Abs(got-3) > 1e-12 {
		t.Errorf("IntegrateWork = %v, want 3", got)
	}
	// Zero work completes instantly; nominal worker is linear.
	if got := a.IntegrateWork(p, 1, 7, 0); got != 7 {
		t.Errorf("zero work finish = %v, want 7", got)
	}
	if got := a.IntegrateWork(p, 1, 2, 5); math.Abs(got-7) > 1e-12 {
		t.Errorf("nominal finish = %v, want 7", got)
	}
	// Frozen forever: starvation returns +Inf.
	if err := a.AddSpeedWindow(1, Window{Start: 10, End: math.Inf(1), Factor: 0}); err != nil {
		t.Fatal(err)
	}
	if got := a.IntegrateWork(p, 1, 9, 100); !math.IsInf(got, 1) {
		t.Errorf("starved finish = %v, want +Inf", got)
	}
	// But work that fits before the freeze completes.
	if got := a.IntegrateWork(p, 1, 9, 1); math.Abs(got-10) > 1e-12 {
		t.Errorf("finish before freeze = %v, want 10", got)
	}
}

func TestSurvivorPlatform(t *testing.T) {
	p, err := FromSpeeds([]float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	a := NewAvailability(3)
	if err := a.AddSpeedWindow(1, Window{Start: 0, End: math.Inf(1), Factor: 0}); err != nil {
		t.Fatal(err)
	}
	sub, idx, err := a.SurvivorPlatform(p, 1)
	if err != nil {
		t.Fatal(err)
	}
	if sub.P() != 2 || idx[0] != 0 || idx[1] != 2 {
		t.Errorf("survivors = %v (p=%d), want [0 2]", idx, sub.P())
	}
	if sub.Worker(1).Speed != 3 {
		t.Errorf("survivor speed = %v, want 3", sub.Worker(1).Speed)
	}
	// All dead → error.
	if err := a.AddSpeedWindow(0, Window{Start: 0, End: math.Inf(1), Factor: 0}); err != nil {
		t.Fatal(err)
	}
	if err := a.AddSpeedWindow(2, Window{Start: 0, End: math.Inf(1), Factor: 0}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := a.SurvivorPlatform(p, 1); err == nil {
		t.Error("no survivors should error")
	}
	// Mismatched platform size.
	small, _ := FromSpeeds([]float64{1})
	if _, _, err := a.SurvivorPlatform(small, 0); err == nil {
		t.Error("size mismatch should error")
	}
}
