package outer

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"nlfl/internal/partition"
	"nlfl/internal/platform"
)

// Result reports one strategy's outcome on one platform.
type Result struct {
	// Strategy names the policy ("hom", "hom/k", "het").
	Strategy string
	// Volume is the total data shipped, in vector elements (for an N×N
	// computational domain, i.e. vectors of length N).
	Volume float64
	// Ratio is Volume / LowerBound — the quantity plotted in Figure 4.
	Ratio float64
	// Imbalance is the achieved load imbalance e = (t_max - t_min)/t_min
	// (0 for strategies that balance perfectly by construction).
	Imbalance float64
	// K is the block-refinement factor used (Comm_hom/k only; 1 otherwise).
	K int
	// Blocks is the number of chunks distributed.
	Blocks int
	// PerWorker[i] is the data volume received by worker i (the memory
	// footprint of Figure 2).
	PerWorker []float64
}

// String renders the result on one line.
func (r Result) String() string {
	return fmt.Sprintf("%s: volume=%.4g ratio=%.4f e=%.4g k=%d blocks=%d",
		r.Strategy, r.Volume, r.Ratio, r.Imbalance, r.K, r.Blocks)
}

// LowerBound returns LB_comm = 2N·Σ√xᵢ: every worker is handed an ideal
// square of area xᵢ·N², paying 2·√xᵢ·N of data — no valid load-balanced
// layout can pay less.
func LowerBound(p *platform.Platform, n float64) float64 {
	s := 0.0
	for _, x := range p.NormalizedSpeeds() {
		s += math.Sqrt(x)
	}
	return 2 * n * s
}

// Commhom returns the idealized Homogeneous Blocks analysis of
// Section 4.1.1: blocks of side D = √x₁·N, exactly nᵢ = xᵢ/x₁ of them per
// worker (fractional nᵢ allowed — this is the paper's closed form), for a
// total volume 2N·√(Σsᵢ/s₁). Imbalance is 0 by construction.
func Commhom(p *platform.Platform, n float64) Result {
	xs := p.NormalizedSpeeds()
	x1 := 1.0
	for _, x := range xs {
		if x < x1 {
			x1 = x
		}
	}
	d := math.Sqrt(x1) * n
	blocks := 1 / x1
	volume := blocks * 2 * d // = 2N/√x₁ = 2N·√(Σs/s₁)
	per := make([]float64, len(xs))
	for i, x := range xs {
		per[i] = x / x1 * 2 * d
	}
	return Result{
		Strategy:  "hom",
		Volume:    volume,
		Ratio:     volume / LowerBound(p, n),
		K:         1,
		Blocks:    int(math.Round(blocks)),
		PerWorker: per,
	}
}

// demandCounts computes the block counts a demand-driven distribution of b
// identical blocks produces on workers with the given speeds: every worker
// claims a new block the moment it finishes one (first claim at time 0),
// the m-th claim of worker i landing at time m/sᵢ; blocks go to the
// earliest claims, ties to the lowest worker index. The computation is
// O(p·(log + p)) via bisection on the claim-time threshold rather than a
// heap, so the Comm_hom/k refinement loop stays cheap even for millions of
// blocks.
func demandCounts(speeds []float64, b int) []int {
	p := len(speeds)
	counts := make([]int, p)
	if b <= 0 {
		return counts
	}
	// countAt returns the number of claims with time ≤ t.
	countAt := func(t float64) int {
		total := 0
		for _, s := range speeds {
			total += int(math.Floor(t*s)) + 1
		}
		return total
	}
	lo, hi := 0.0, 1.0
	for countAt(hi) < b {
		hi *= 2
	}
	for i := 0; i < 100 && hi-lo > 1e-15*(1+hi); i++ {
		mid := (lo + hi) / 2
		if countAt(mid) >= b {
			hi = mid
		} else {
			lo = mid
		}
	}
	total := 0
	for i, s := range speeds {
		counts[i] = int(math.Floor(hi*s)) + 1
		total += counts[i]
	}
	// Remove the excess claims: latest claim time first, ties resolved by
	// dropping the highest worker index (demand-driven favors low indices
	// at equal times). The excess is at most p (one boundary claim per
	// worker), so the quadratic loop is negligible.
	for total > b {
		worst, worstTime := -1, -1.0
		for i := range counts {
			if counts[i] == 0 {
				continue
			}
			last := float64(counts[i]-1) / speeds[i]
			if last > worstTime || (last == worstTime && i > worst) {
				worst, worstTime = i, last
			}
		}
		counts[worst]--
		total--
	}
	return counts
}

// imbalanceOf returns e = (t_max - t_min)/t_min for per-worker times
// tᵢ = countsᵢ/sᵢ (block work cancels). A worker with zero blocks makes
// the imbalance +Inf.
func imbalanceOf(speeds []float64, counts []int) float64 {
	tmin, tmax := math.Inf(1), 0.0
	for i, c := range counts {
		t := float64(c) / speeds[i]
		if t < tmin {
			tmin = t
		}
		if t > tmax {
			tmax = t
		}
	}
	if tmax == 0 {
		return 0
	}
	if tmin == 0 {
		return math.Inf(1)
	}
	return (tmax - tmin) / tmin
}

// CommhomK runs the realistic Comm_hom/k strategy of Section 4.3: starting
// from the Comm_hom block size, the block side is divided by successive
// integers k until the demand-driven assignment's load imbalance is at
// most eps (the paper uses eps = 0.01). maxK caps the search; the paper's
// platforms converge within a few dozen refinements.
func CommhomK(p *platform.Platform, n float64, eps float64, maxK int) (Result, error) {
	if eps <= 0 {
		return Result{}, errors.New("outer: imbalance target must be positive")
	}
	if maxK <= 0 {
		maxK = 10000
	}
	xs := p.NormalizedSpeeds()
	speeds := p.Speeds()
	x1 := 1.0
	for _, x := range xs {
		if x < x1 {
			x1 = x
		}
	}
	for k := 1; k <= maxK; k++ {
		// Block side D/k with D = √x₁·N ⇒ ⌈k²/x₁⌉ blocks cover the domain.
		blocks := int(math.Ceil(float64(k*k)/x1 - 1e-9))
		counts := demandCounts(speeds, blocks)
		e := imbalanceOf(speeds, counts)
		if e <= eps || k == maxK {
			if e > eps {
				return Result{}, fmt.Errorf("outer: imbalance %v still above %v at k=%d", e, eps, k)
			}
			blockData := 2 * math.Sqrt(x1) * n / float64(k)
			per := make([]float64, len(counts))
			volume := 0.0
			for i, c := range counts {
				per[i] = float64(c) * blockData
				volume += per[i]
			}
			return Result{
				Strategy:  "hom/k",
				Volume:    volume,
				Ratio:     volume / LowerBound(p, n),
				Imbalance: e,
				K:         k,
				Blocks:    blocks,
				PerWorker: per,
			}, nil
		}
	}
	return Result{}, errors.New("outer: unreachable")
}

// roundedCounts assigns b blocks statically: nᵢ = ⌊xᵢ·b⌋ plus one extra
// for the largest fractional remainders (largest-remainder rounding).
// Compared to the demand-driven claim process this halves the worst-case
// per-worker rounding error, so the Comm_hom/k refinement converges at a
// smaller k.
func roundedCounts(xs []float64, b int) []int {
	counts := make([]int, len(xs))
	type frac struct {
		idx int
		rem float64
	}
	rems := make([]frac, len(xs))
	total := 0
	for i, x := range xs {
		exact := x * float64(b)
		counts[i] = int(math.Floor(exact))
		rems[i] = frac{idx: i, rem: exact - math.Floor(exact)}
		total += counts[i]
	}
	sort.Slice(rems, func(a, c int) bool {
		if rems[a].rem != rems[c].rem {
			return rems[a].rem > rems[c].rem
		}
		return rems[a].idx < rems[c].idx
	})
	for k := 0; total < b; k++ {
		counts[rems[k%len(rems)].idx]++
		total++
	}
	return counts
}

// CommhomKRounded is the Comm_hom/k refinement with static largest-
// remainder rounding in place of the demand-driven claim process — the
// other natural reading of the paper's "these numbers have to be rounded
// to integers". It reaches the 1% imbalance target at smaller k, landing
// the p=100 ratios inside the paper's reported 15–30× band (see
// EXPERIMENTS.md).
func CommhomKRounded(p *platform.Platform, n float64, eps float64, maxK int) (Result, error) {
	if eps <= 0 {
		return Result{}, errors.New("outer: imbalance target must be positive")
	}
	if maxK <= 0 {
		maxK = 10000
	}
	xs := p.NormalizedSpeeds()
	speeds := p.Speeds()
	x1 := 1.0
	for _, x := range xs {
		if x < x1 {
			x1 = x
		}
	}
	for k := 1; k <= maxK; k++ {
		blocks := int(math.Ceil(float64(k*k)/x1 - 1e-9))
		counts := roundedCounts(xs, blocks)
		e := imbalanceOf(speeds, counts)
		if e <= eps {
			blockData := 2 * math.Sqrt(x1) * n / float64(k)
			per := make([]float64, len(counts))
			volume := 0.0
			for i, c := range counts {
				per[i] = float64(c) * blockData
				volume += per[i]
			}
			return Result{
				Strategy:  "hom/k-rounded",
				Volume:    volume,
				Ratio:     volume / LowerBound(p, n),
				Imbalance: e,
				K:         k,
				Blocks:    blocks,
				PerWorker: per,
			}, nil
		}
	}
	return Result{}, fmt.Errorf("outer: imbalance target unreached within k ≤ %d", maxK)
}

// Commhet runs the Heterogeneous Blocks strategy of Section 4.1.2: one
// rectangle per worker with area proportional to its speed, laid out by
// the PERI-SUM column-based partitioner; worker i pays (wᵢ+hᵢ)·N of data.
// Load balance is perfect by construction (areas match speeds exactly).
func Commhet(p *platform.Platform, n float64) (Result, error) {
	part, err := partition.PeriSum(p.Speeds())
	if err != nil {
		return Result{}, err
	}
	if err := part.Validate(); err != nil {
		return Result{}, fmt.Errorf("outer: invalid partition: %w", err)
	}
	per := make([]float64, p.P())
	volume := 0.0
	for i := range per {
		per[i] = part.HalfPerimeterOf(i) * n
		volume += per[i]
	}
	return Result{
		Strategy:  "het",
		Volume:    volume,
		Ratio:     volume / LowerBound(p, n),
		K:         1,
		Blocks:    p.P(),
		PerWorker: per,
	}, nil
}

// BlockAssignment replays the demand-driven distribution of the g×g
// homogeneous blocks in scan order and returns the worker owning each
// block — the data behind the paper's Figure 2(b): a fast processor's
// footprint is scattered over the whole domain instead of forming one
// compact rectangle.
func BlockAssignment(p *platform.Platform, g int) ([][]int, error) {
	if g <= 0 {
		return nil, errors.New("outer: grid must be positive")
	}
	speeds := p.Speeds()
	grid := make([][]int, g)
	for i := range grid {
		grid[i] = make([]int, g)
	}
	counts := make([]int, p.P())
	for b := 0; b < g*g; b++ {
		best, bestTime := -1, math.Inf(1)
		for w, s := range speeds {
			claim := float64(counts[w]) / s
			if claim < bestTime {
				best, bestTime = w, claim
			}
		}
		counts[best]++
		grid[b/g][b%g] = best
	}
	return grid, nil
}

// RenderBlockAssignment draws the assignment as ASCII, one glyph per
// block, matching the glyph set of partition.(*Partition).ASCII.
func RenderBlockAssignment(grid [][]int) string {
	const glyphs = "0123456789abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ"
	var b []byte
	b = append(b, '+')
	for range grid {
		b = append(b, '-')
	}
	b = append(b, '+', '\n')
	for _, row := range grid {
		b = append(b, '|')
		for _, w := range row {
			b = append(b, glyphs[w%len(glyphs)])
		}
		b = append(b, '|', '\n')
	}
	b = append(b, '+')
	for range grid {
		b = append(b, '-')
	}
	b = append(b, '+', '\n')
	return string(b)
}

// RhoLowerBound returns the paper's Section 4.1.3 bound on
// ρ = Comm_hom/Comm_het for the half-slow/half-k×-fast platform:
// ρ ≥ (1+k)/(1+√k) ≥ √k - 1.
func RhoLowerBound(k float64) float64 {
	return (1 + k) / (1 + math.Sqrt(k))
}

// RhoAnalytic returns the general analytic bound
// ρ ≥ (4/7)·Σsᵢ/(√s₁·Σ√sᵢ) from Section 4.1.3.
func RhoAnalytic(p *platform.Platform) float64 {
	speeds := p.Speeds()
	s1 := math.Inf(1)
	sum, sqsum := 0.0, 0.0
	for _, s := range speeds {
		if s < s1 {
			s1 = s
		}
		sum += s
		sqsum += math.Sqrt(s)
	}
	return 4.0 / 7.0 * sum / (math.Sqrt(s1) * sqsum)
}

// WeightedCommTime returns Σ cᵢ·Dᵢ — the aggregate communication *time*
// (rather than volume) of a strategy's per-worker footprints when link
// capacities differ (the fully heterogeneous platform of Section 1.2,
// which the Figure 4 volume metric deliberately sets aside). Under the
// parallel-links model the makespan contribution is max cᵢ·Dᵢ, also
// returned.
func WeightedCommTime(p *platform.Platform, r Result) (total, worst float64) {
	for i, d := range r.PerWorker {
		t := p.Worker(i).CommTime(d)
		total += t
		if t > worst {
			worst = t
		}
	}
	return total, worst
}
