package iterative

import (
	"fmt"
	"math"

	"nlfl/internal/trace"
)

// EstimatorConfig tunes the online rate estimator. The zero value selects
// the defaults noted per field.
type EstimatorConfig struct {
	// Alpha is the EWMA gain for in-tolerance samples; 0 selects 0.5.
	Alpha float64
	// DriftTol is the relative departure |sample−estimate|/estimate beyond
	// which a sample is *not* folded into the EWMA — it is either a
	// one-round outlier (ignored) or the start of genuine drift; 0
	// selects 0.25.
	DriftTol float64
	// DriftRounds is how many consecutive beyond-tolerance rounds promote
	// an outlier streak into detected drift, re-anchoring the estimate to
	// the streak mean; 0 selects 2. A streak shorter than this leaves the
	// estimate untouched — the "single chaotic round" protection.
	DriftRounds int
	// MinRounds is the per-worker sample count before the estimator is
	// trusted for planning; 0 selects 1.
	MinRounds int
}

func (c EstimatorConfig) withDefaults() EstimatorConfig {
	if c.Alpha <= 0 {
		c.Alpha = 0.5
	}
	if c.DriftTol <= 0 {
		c.DriftTol = 0.25
	}
	if c.DriftRounds <= 0 {
		c.DriftRounds = 2
	}
	if c.MinRounds <= 0 {
		c.MinRounds = 1
	}
	return c
}

// Estimator tracks per-worker compute rates (cells/s) and per-round
// communication seconds from measured trace spans. It is the sensor of
// the feedback loop: EWMA smoothing over in-tolerance samples, outright
// rejection of isolated outliers, re-anchoring after a persistent drift
// streak, and explicit trust gating so a controller never plans from
// measurements that are too thin. Not safe for concurrent use.
type Estimator struct {
	cfg EstimatorConfig

	rate     []float64 // EWMA compute rate, cells/s
	rateVar  []float64 // EWMA of squared rate deviation
	commSec  []float64 // EWMA per-round comm seconds
	samples  []int     // rounds this worker produced any sample
	streak   []int     // consecutive beyond-DriftTol rounds
	streakMu []float64 // running sum of the streak's rate samples
	dead     []bool
	degraded []bool // drift re-anchored the rate downward at least once

	reanchors int
	frozen    bool
}

// NewEstimator builds an estimator seeded with prior per-worker rates in
// cells/s (typically speedᵢ·WorkPerSecond — the assumption the measured
// loop exists to correct).
func NewEstimator(cfg EstimatorConfig, prior []float64) (*Estimator, error) {
	if len(prior) == 0 {
		return nil, fmt.Errorf("iterative: estimator needs at least one prior rate")
	}
	for i, r := range prior {
		if r <= 0 || math.IsNaN(r) || math.IsInf(r, 0) {
			return nil, fmt.Errorf("iterative: worker %d prior rate %v", i, r)
		}
	}
	p := len(prior)
	return &Estimator{
		cfg:      cfg.withDefaults(),
		rate:     append([]float64(nil), prior...),
		rateVar:  make([]float64, p),
		commSec:  make([]float64, p),
		samples:  make([]int, p),
		streak:   make([]int, p),
		streakMu: make([]float64, p),
		dead:     make([]bool, p),
		degraded: make([]bool, p),
	}, nil
}

// Workers returns the tracked pool size.
func (e *Estimator) Workers() int { return len(e.rate) }

// ObserveRound folds one round's timeline into the estimates: each
// worker's rate sample is its OK compute work divided by OK compute
// seconds, its comm sample the OK transfer seconds. Returns the workers
// whose estimates were re-anchored by drift detection this round — the
// controller's cue to re-plan immediately. A frozen estimator still
// counts samples (the rounds happened) but never updates an estimate.
func (e *Estimator) ObserveRound(tl *trace.Timeline) []int {
	if tl == nil {
		return nil
	}
	var drifted []int
	for w := 0; w < len(e.rate) && w < len(tl.Spans); w++ {
		if e.dead[w] {
			continue
		}
		var work, computeSec, commSec float64
		for _, s := range tl.Spans[w] {
			if s.Outcome != trace.OK {
				continue
			}
			switch s.Kind {
			case trace.Compute:
				work += s.Work
				computeSec += s.Duration()
			case trace.Comm:
				commSec += s.Duration()
			}
		}
		if work <= 0 || computeSec <= 0 {
			continue // no usable sample this round
		}
		if e.observe(w, work/computeSec, commSec) {
			drifted = append(drifted, w)
		}
	}
	return drifted
}

// observe folds one worker's round sample; true means drift re-anchored
// the estimate.
func (e *Estimator) observe(w int, rate, commSec float64) bool {
	e.samples[w]++
	if e.frozen {
		return false
	}
	alpha := e.cfg.Alpha
	if d := math.Abs(rate-e.rate[w]) / e.rate[w]; d > e.cfg.DriftTol {
		// Beyond tolerance: never folded directly. One such round is an
		// outlier and changes nothing; DriftRounds consecutive ones are
		// drift, and the estimate snaps to the streak mean — the measured
		// regime, not a blend with the stale one.
		e.streak[w]++
		e.streakMu[w] += rate
		if e.streak[w] < e.cfg.DriftRounds {
			return false
		}
		anchored := e.streakMu[w] / float64(e.streak[w])
		if anchored < e.rate[w] {
			e.degraded[w] = true
		}
		e.rate[w] = anchored
		e.rateVar[w] = 0
		e.streak[w], e.streakMu[w] = 0, 0
		e.commSec[w] = (1-alpha)*e.commSec[w] + alpha*commSec
		e.reanchors++
		return true
	}
	e.streak[w], e.streakMu[w] = 0, 0
	dev := rate - e.rate[w]
	e.rate[w] = (1-alpha)*e.rate[w] + alpha*rate
	e.rateVar[w] = (1-alpha)*e.rateVar[w] + alpha*dev*dev
	e.commSec[w] = (1-alpha)*e.commSec[w] + alpha*commSec
	return false
}

// Freeze stops all estimate updates while still counting samples — the
// "lying estimates" injection: the controller believes it has fresh
// measurements, but they never track reality again.
func (e *Estimator) Freeze() { e.frozen = true }

// MarkDead excludes a worker from observation and trust accounting.
func (e *Estimator) MarkDead(w int) {
	if w >= 0 && w < len(e.dead) {
		e.dead[w] = true
	}
}

// Dead reports whether w has been marked dead.
func (e *Estimator) Dead(w int) bool { return w >= 0 && w < len(e.dead) && e.dead[w] }

// Degraded reports whether drift detection ever re-anchored w's rate
// downward.
func (e *Estimator) Degraded(w int) bool { return w >= 0 && w < len(e.degraded) && e.degraded[w] }

// Reanchors returns the total drift re-anchor events.
func (e *Estimator) Reanchors() int { return e.reanchors }

// Trusted reports whether every listed worker has produced at least
// MinRounds samples — the confidence gate: planning over an untrusted
// estimator falls back to the last trusted plan instead.
func (e *Estimator) Trusted(workers []int) bool {
	for _, w := range workers {
		if w < 0 || w >= len(e.samples) {
			return false
		}
		if !e.dead[w] && e.samples[w] < e.cfg.MinRounds {
			return false
		}
	}
	return true
}

// Rates returns a copy of the current per-worker rate estimates (cells/s).
func (e *Estimator) Rates() []float64 { return append([]float64(nil), e.rate...) }

// CommSeconds returns a copy of the per-round communication-seconds
// estimates.
func (e *Estimator) CommSeconds() []float64 { return append([]float64(nil), e.commSec...) }

// UnitStds returns the per-worker standard deviation of the *unit time*
// 1/rate in seconds — the σᵢ the nonlinear water-filling penalty wants —
// propagated from the rate variance as std(rate)/rate².
func (e *Estimator) UnitStds() []float64 {
	out := make([]float64, len(e.rate))
	for w := range out {
		out[w] = math.Sqrt(e.rateVar[w]) / (e.rate[w] * e.rate[w])
	}
	return out
}
