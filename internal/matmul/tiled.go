package matmul

import (
	"errors"
	"math"
	"runtime"
	"sync"
	"time"

	"nlfl/internal/stats"
)

// tileCandidates are the column-tile sides the autotune probe races for
// the outer-product fill kernels (OuterInto and the runtime's chunk
// fills): the tile bounds the b̅ slice each pass streams against a row
// strip, so the candidates bracket L1-to-L2-resident working sets.
var tileCandidates = []int{32, 64, 128, 256}

// probeN is the outer-product side the autotune probe fills. Large enough
// that the fastest candidate wins by cache behaviour rather than loop
// overhead, small enough that the one-off probe stays in the tens of
// milliseconds.
const probeN = 1024

var (
	tileOnce sync.Once
	tileSize int
)

// pickTile races the candidates through sample (seconds for one run at
// the given tile side) and returns the fastest. Each candidate gets one
// discarded warm-up run — the first touch of the probe buffers pays page
// faults and cache fills that have nothing to do with the tile size, and
// used to penalize whichever candidate ran first — and is then scored by
// the best of three timed runs, so a single noisy sample cannot flip the
// winner.
func pickTile(cands []int, sample func(bs int) float64) int {
	best, bestT := cands[0], math.Inf(1)
	for _, bs := range cands {
		sample(bs) // warm-up, discarded
		t := math.Inf(1)
		for rep := 0; rep < 3; rep++ {
			if s := sample(bs); s < t {
				t = s
			}
		}
		if t < bestT {
			best, bestT = bs, t
		}
	}
	return best
}

// AutotuneTile returns the column-tile side the outer-product fill kernels
// use, measuring it once per process: each candidate fills the same seeded
// probeN×probeN outer product and the fastest side wins (warm-up plus
// best-of-three per candidate, see pickTile). The result is cached — every
// later call is a plain load.
func AutotuneTile() int {
	tileOnce.Do(func() {
		r := stats.NewRNG(7)
		av := make([]float64, probeN)
		bv := make([]float64, probeN)
		for i := range av {
			av[i] = 2*r.Float64() - 1
			bv[i] = 2*r.Float64() - 1
		}
		c := New(probeN, probeN)
		tileSize = pickTile(tileCandidates, func(bs int) float64 {
			start := time.Now()
			outerIntoTile(c, av, bv, 0, probeN, 0, probeN, bs)
			return time.Since(start).Seconds()
		})
	})
	return tileSize
}

// smallMulWork is the m·k·n product below which the packed path falls
// back to the naive reference: at that scale the whole problem is
// cache-resident and packing overhead is pure loss. 48³ ≈ the point where
// packing starts paying for itself on the bench machine.
const smallMulWork = 48 * 48 * 48

// parallelMinWork is the m·k·n product below which ParallelTiled runs the
// serial packed kernel instead of spawning band goroutines. The committed
// BENCH_kernels artifacts showed parallel-tiled losing to single-threaded
// at n=128 — goroutine spawn plus band-boundary cache traffic outweigh
// the split until roughly 2·128³ flops — so sizes up to 128 stay serial.
const parallelMinWork = 128 * 128 * 128

// mulWork is the classical operation-count scale m·k·n of A·B.
func mulWork(a, b *Matrix) int { return a.Rows * a.Cols * b.Cols }

// Tiled computes C = A·B with the packed register-blocked kernel: B is
// repacked into microN-column panels, A into microM-row panels, and a
// 4×8 micro-kernel (AVX2 assembly where available, portable Go
// otherwise) accumulates each output tile entirely in registers. Inputs
// below smallMulWork fall back to the naive reference kernel. The result
// is bit-identical to Naive on every path — see microKernel.
func Tiled(a, b *Matrix) (*Matrix, error) {
	if err := checkMul(a, b); err != nil {
		return nil, err
	}
	if mulWork(a, b) < smallMulWork {
		return Naive(a, b)
	}
	c := New(a.Rows, b.Cols)
	packedMulRows(c, a, b, 0, a.Rows, packB(b))
	return c, nil
}

// rowBands splits rows into `workers` contiguous bands with interior
// boundaries aligned down to microM multiples, so no micro-tile straddles
// two bands (which would make two goroutines write the same cache lines
// of C) and band sizes stay even to within one micro-tile. Returned
// boundaries are strictly increasing; empty bands are dropped.
func rowBands(rows, workers int) []int {
	if workers > rows {
		workers = rows
	}
	cuts := make([]int, 0, workers+1)
	cuts = append(cuts, 0)
	for w := 1; w < workers; w++ {
		cut := (w * rows / workers) / microM * microM
		if cut > cuts[len(cuts)-1] {
			cuts = append(cuts, cut)
		}
	}
	if rows > cuts[len(cuts)-1] {
		cuts = append(cuts, rows)
	}
	return cuts
}

// ParallelTiled computes C = A·B splitting microM-aligned row bands
// across `workers` goroutines, each band running the packed
// register-blocked kernel against a shared read-only packed copy of B.
// It falls back to the serial packed kernel when splitting cannot help:
// one worker, a single available CPU (GOMAXPROCS=1 — goroutines would
// only add scheduling overhead), or total work below parallelMinWork.
func ParallelTiled(a, b *Matrix, workers int) (*Matrix, error) {
	if err := checkMul(a, b); err != nil {
		return nil, err
	}
	if workers <= 0 {
		return nil, errors.New("matmul: need at least one worker")
	}
	if mulWork(a, b) < smallMulWork {
		return Naive(a, b)
	}
	serial := workers == 1 ||
		runtime.GOMAXPROCS(0) == 1 ||
		mulWork(a, b) <= parallelMinWork
	cuts := rowBands(a.Rows, workers)
	c := New(a.Rows, b.Cols)
	pb := packB(b)
	if serial || len(cuts) < 3 {
		packedMulRows(c, a, b, 0, a.Rows, pb)
		return c, nil
	}
	var wg sync.WaitGroup
	for i := 0; i+1 < len(cuts); i++ {
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			packedMulRows(c, a, b, lo, hi, pb)
		}(cuts[i], cuts[i+1])
	}
	wg.Wait()
	return c, nil
}

// OuterInto fills the [rowLo,rowHi)×[colLo,colHi) rectangle of c with the
// outer product a̅ᵀ×b̅, tiling the column range so the touched b̅ slice and
// output rows stream tile by tile. It is the kernel the plan executors
// (internal/core, internal/runtime) run on each worker's assigned
// sub-domain; bounds are the caller's responsibility, like a slice
// expression. The work performed is (rowHi-rowLo)·(colHi-colLo) cell
// updates on (rowHi-rowLo)+(colHi-colLo) input elements — the non-linear
// ratio the paper's communication analysis is about.
func OuterInto(c *Matrix, a, b []float64, rowLo, rowHi, colLo, colHi int) {
	outerIntoTile(c, a, b, rowLo, rowHi, colLo, colHi, AutotuneTile())
}

// outerIntoTile is OuterInto at an explicit tile side — the autotune
// probe races it directly.
func outerIntoTile(c *Matrix, a, b []float64, rowLo, rowHi, colLo, colHi, bs int) {
	for jj := colLo; jj < colHi; jj += bs {
		jMax := min(jj+bs, colHi)
		bTile := b[jj:jMax]
		for i := rowLo; i < rowHi; i++ {
			av := a[i]
			cRow := c.Data[i*c.Cols+jj : i*c.Cols+jMax]
			for j, bv := range bTile {
				cRow[j] = av * bv
			}
		}
	}
}
