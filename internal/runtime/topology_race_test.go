package runtime

import (
	"math"
	"sort"
	"sync"
	"testing"
	"time"

	"nlfl/internal/matmul"
	"nlfl/internal/platform"
	"nlfl/internal/trace"
)

// TestChainPrefetchRelayRace drives prefetch over a daisy-chain so
// several workers book hop windows and append relay records into
// trace.Live concurrently. Run under -race; the oracle then confirms
// the concurrent bookings still never oversubscribed any hop.
func TestChainPrefetchRelayRace(t *testing.T) {
	pl, err := platform.FromSpeeds([]float64{1, 1, 2, 2})
	if err != nil {
		t.Fatal(err)
	}
	const n = 48
	a, b := chaosVectors(t, n, 41)
	want := matmul.VectorOuter(a, b)
	plan, err := PlanHet(pl, n)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(plan, a, b, Options{
		Speeds:        pl.Speeds(),
		WorkPerSecond: 5e5,
		Topology:      UniformChain(len(pl.Speeds()), 5e5),
		Prefetch:      true,
		VerifyEvery:   101,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !want.Equal(rep.Out, 0) {
		t.Fatal("wrong product")
	}
	if rep.RelayVolume <= 0 {
		t.Fatal("no relay traffic recorded")
	}
	if vs := trace.Check(rep.Trace, rep.Expect(1e-9)); len(vs) != 0 {
		t.Fatalf("trace violations: %v", vs)
	}
}

// TestTwoSourceConcurrentBookingRace hammers Network.Book from one
// goroutine per worker and then replays every booked window against the
// source capacities: windows on one edge must never overlap (each source
// is a serial port) and the volume ledger must close.
func TestTwoSourceConcurrentBookingRace(t *testing.T) {
	const (
		workers  = 8
		perW     = 150
		elems    = 100.0
		rate0    = 1e6
		rate1    = 2e6
		overlapS = 1e-9
	)
	start := time.Now()
	now := func() float64 { return time.Since(start).Seconds() }
	topo := SplitTwoSource(workers, rate0, rate1)
	net, err := NewNetwork(topo, workers, now)
	if err != nil {
		t.Fatal(err)
	}
	type win struct {
		edge       int
		start, end float64
	}
	wins := make([][]win, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				del, relays := net.Book(w, elems)
				if len(relays) != 0 {
					t.Errorf("worker %d: circuit booking returned relays", w)
					return
				}
				wins[w] = append(wins[w], win{del.Edge, del.Start, del.End})
			}
		}(w)
	}
	wg.Wait()

	caps := []float64{rate0, rate1}
	byEdge := make([][]win, 2)
	for w, ws := range wins {
		wantEdge := topo.Assign[w]
		for _, x := range ws {
			if x.edge != wantEdge {
				t.Fatalf("worker %d booked edge %d, want %d", w, x.edge, wantEdge)
			}
			byEdge[x.edge] = append(byEdge[x.edge], x)
		}
	}
	for e, ws := range byEdge {
		if len(ws) == 0 {
			t.Fatalf("edge %d saw no bookings", e)
		}
		sort.Slice(ws, func(i, j int) bool { return ws[i].start < ws[j].start })
		for i, x := range ws {
			if dur := x.end - x.start; math.Abs(dur-elems/caps[e]) > overlapS {
				t.Fatalf("edge %d window %d lasts %v, want %v", e, i, dur, elems/caps[e])
			}
			if i > 0 && x.start < ws[i-1].end-overlapS {
				t.Fatalf("edge %d windows overlap: [%v,%v] then [%v,%v]",
					e, ws[i-1].start, ws[i-1].end, x.start, x.end)
			}
		}
	}
	reports := net.EdgeReports(now())
	if len(reports) != 2 {
		t.Fatalf("got %d edge reports, want 2", len(reports))
	}
	for e, er := range reports {
		booked := elems * float64(len(byEdge[e]))
		if math.Abs(er.Volume-booked) > 1e-6 {
			t.Fatalf("edge %d volume ledger %v ≠ booked %v", e, er.Volume, booked)
		}
	}
}
