package stats

import (
	"fmt"
	"math"
)

// Distribution generates positive real variates. It abstracts the three
// worker-speed profiles of the paper's Section 4.3 plus a few extras used
// by the extension experiments.
type Distribution interface {
	// Sample draws one variate using r.
	Sample(r *RNG) float64
	// Mean returns the distribution's theoretical mean.
	Mean() float64
	// String names the distribution for reports.
	String() string
}

// Constant is the degenerate distribution concentrated at Value. It models
// the paper's "homogeneous computation speed" profile (Figure 4(a)).
type Constant struct {
	Value float64
}

// Sample implements Distribution.
func (c Constant) Sample(*RNG) float64 { return c.Value }

// Mean implements Distribution.
func (c Constant) Mean() float64 { return c.Value }

func (c Constant) String() string { return fmt.Sprintf("constant(%g)", c.Value) }

// Uniform is the continuous uniform distribution on [Lo, Hi]. The paper's
// Figure 4(b) uses Uniform[1, 100] worker speeds.
type Uniform struct {
	Lo, Hi float64
}

// Sample implements Distribution.
func (u Uniform) Sample(r *RNG) float64 { return u.Lo + (u.Hi-u.Lo)*r.Float64() }

// Mean implements Distribution.
func (u Uniform) Mean() float64 { return (u.Lo + u.Hi) / 2 }

func (u Uniform) String() string { return fmt.Sprintf("uniform[%g,%g]", u.Lo, u.Hi) }

// LogNormal is the log-normal distribution: exp(N(Mu, Sigma²)). The paper's
// Figure 4(c) uses LogNormal(µ=0, σ=1) worker speeds.
type LogNormal struct {
	Mu, Sigma float64
}

// Sample implements Distribution.
func (l LogNormal) Sample(r *RNG) float64 {
	return math.Exp(l.Mu + l.Sigma*r.NormFloat64())
}

// Mean implements Distribution.
func (l LogNormal) Mean() float64 { return math.Exp(l.Mu + l.Sigma*l.Sigma/2) }

func (l LogNormal) String() string { return fmt.Sprintf("lognormal(%g,%g)", l.Mu, l.Sigma) }

// Exponential is the exponential distribution with the given Rate (λ).
// Used by the discrete-event simulator's background-load extension tests.
type Exponential struct {
	Rate float64
}

// Sample implements Distribution.
func (e Exponential) Sample(r *RNG) float64 { return r.ExpFloat64() / e.Rate }

// Mean implements Distribution.
func (e Exponential) Mean() float64 { return 1 / e.Rate }

func (e Exponential) String() string { return fmt.Sprintf("exponential(%g)", e.Rate) }

// Bimodal draws Slow with probability 1-FastFraction and Slow*Factor
// otherwise. It models the paper's Section 4.1.3 example platform whose
// first half is slow nodes of speed s₁ and second half nodes k times
// faster; with FastFraction = 0.5 and Factor = k it reproduces the
// ρ ≥ (1+k)/(1+√k) analysis.
type Bimodal struct {
	Slow         float64
	Factor       float64
	FastFraction float64
}

// Sample implements Distribution.
func (b Bimodal) Sample(r *RNG) float64 {
	if r.Float64() < b.FastFraction {
		return b.Slow * b.Factor
	}
	return b.Slow
}

// Mean implements Distribution.
func (b Bimodal) Mean() float64 {
	return b.Slow*(1-b.FastFraction) + b.Slow*b.Factor*b.FastFraction
}

func (b Bimodal) String() string {
	return fmt.Sprintf("bimodal(slow=%g,x%g,frac=%g)", b.Slow, b.Factor, b.FastFraction)
}

// Pareto is the Pareto (power-law) distribution with scale Xm and shape
// Alpha. Used by the extension experiments for extreme heterogeneity.
type Pareto struct {
	Xm, Alpha float64
}

// Sample implements Distribution.
func (p Pareto) Sample(r *RNG) float64 {
	// Inverse-CDF: Xm / U^(1/α), with U in (0, 1].
	u := 1 - r.Float64()
	return p.Xm / math.Pow(u, 1/p.Alpha)
}

// Mean implements Distribution. It is infinite for Alpha <= 1.
func (p Pareto) Mean() float64 {
	if p.Alpha <= 1 {
		return math.Inf(1)
	}
	return p.Alpha * p.Xm / (p.Alpha - 1)
}

func (p Pareto) String() string { return fmt.Sprintf("pareto(%g,%g)", p.Xm, p.Alpha) }

// SampleN draws n variates from d into a fresh slice.
func SampleN(d Distribution, r *RNG, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = d.Sample(r)
	}
	return out
}
