package partition

import "math"

// PeriSum computes the optimal *column-based* PERI-SUM partition of the
// unit square into rectangles of the given (relative) areas, using the
// O(p²) dynamic program over the areas sorted in non-increasing order.
//
// Structure (from Beaumont et al. [41]): the square is cut into C vertical
// columns of full height; column j, of width equal to its total area Aⱼ,
// is stacked with kⱼ rectangles of width Aⱼ and heights aᵢ/Aⱼ. A column
// holding a set S costs Σ_{i∈S}(Aⱼ + aᵢ/Aⱼ) = kⱼ·Aⱼ + 1, so the DP
// minimizes Σⱼ kⱼAⱼ + C over all contiguous groupings of the sorted areas
// (a classical exchange argument shows sorted-contiguous groupings contain
// an optimal column-based solution). The result satisfies the published
// guarantee Ĉ ≤ 1 + (5/4)·LB ≤ (7/4)·LB.
func PeriSum(areas []float64) (*Partition, error) {
	norm, err := Normalize(areas)
	if err != nil {
		return nil, err
	}
	sorted := sortAreasDescending(norm)
	p := len(sorted)
	prefix := make([]float64, p+1)
	for i, s := range sorted {
		prefix[i+1] = prefix[i] + s.area
	}
	const inf = math.MaxFloat64
	f := make([]float64, p+1)
	choice := make([]int, p+1)
	for i := 1; i <= p; i++ {
		f[i] = inf
		for j := 0; j < i; j++ {
			colArea := prefix[i] - prefix[j]
			cost := f[j] + float64(i-j)*colArea + 1
			if cost < f[i] {
				f[i] = cost
				choice[i] = j
			}
		}
	}
	breaks := breaksFromChoice(choice, p)
	return buildColumns(norm, sorted, breaks), nil
}

// SqrtHeuristic is the naive column-based baseline used for ablation: it
// always cuts ⌈√p⌉ columns with (nearly) equal element counts, mirroring
// the homogeneous-optimal layout. On homogeneous areas it matches PeriSum;
// under heterogeneity the DP wins — the measured gap is the value of
// optimizing the column structure.
func SqrtHeuristic(areas []float64) (*Partition, error) {
	norm, err := Normalize(areas)
	if err != nil {
		return nil, err
	}
	sorted := sortAreasDescending(norm)
	p := len(sorted)
	c := int(math.Ceil(math.Sqrt(float64(p))))
	breaks := []int{0}
	for j := 0; j < c; j++ {
		next := breaks[len(breaks)-1] + (p-breaks[len(breaks)-1])/(c-j)
		if next > breaks[len(breaks)-1] {
			breaks = append(breaks, next)
		}
	}
	if breaks[len(breaks)-1] != p {
		breaks = append(breaks, p)
	}
	return buildColumns(norm, sorted, breaks), nil
}

// PeriMax computes a column-based partition minimizing the *maximum*
// half-perimeter (the PERI-MAX objective of [41]) by the analogous O(p²)
// dynamic program: a column holding the sorted group (j, i] has maximum
// half-perimeter Aⱼ + a_{j+1}/Aⱼ (the group's largest area comes first in
// sorted order), and the DP minimizes the max over columns.
func PeriMax(areas []float64) (*Partition, error) {
	norm, err := Normalize(areas)
	if err != nil {
		return nil, err
	}
	sorted := sortAreasDescending(norm)
	p := len(sorted)
	prefix := make([]float64, p+1)
	for i, s := range sorted {
		prefix[i+1] = prefix[i] + s.area
	}
	const inf = math.MaxFloat64
	f := make([]float64, p+1)
	choice := make([]int, p+1)
	for i := 1; i <= p; i++ {
		f[i] = inf
		for j := 0; j < i; j++ {
			colArea := prefix[i] - prefix[j]
			colMax := colArea + sorted[j].area/colArea
			cost := math.Max(f[j], colMax)
			if cost < f[i] {
				f[i] = cost
				choice[i] = j
			}
		}
	}
	breaks := breaksFromChoice(choice, p)
	return buildColumns(norm, sorted, breaks), nil
}

// breaksFromChoice unwinds a DP predecessor chain into ascending group
// boundaries 0 = b₀ < b₁ < … < b_C = p.
func breaksFromChoice(choice []int, p int) []int {
	var rev []int
	for i := p; i > 0; i = choice[i] {
		rev = append(rev, i)
	}
	breaks := make([]int, 0, len(rev)+1)
	breaks = append(breaks, 0)
	for k := len(rev) - 1; k >= 0; k-- {
		breaks = append(breaks, rev[k])
	}
	return breaks
}

// buildColumns lays the sorted areas out into vertical columns given group
// boundaries, producing the concrete geometry.
func buildColumns(norm []float64, sorted []sortedIndex, breaks []int) *Partition {
	part := &Partition{Areas: norm, Rects: make([]Rect, 0, len(sorted))}
	x := 0.0
	for b := 1; b < len(breaks); b++ {
		lo, hi := breaks[b-1], breaks[b]
		colArea := 0.0
		for k := lo; k < hi; k++ {
			colArea += sorted[k].area
		}
		y := 0.0
		for k := lo; k < hi; k++ {
			h := sorted[k].area / colArea
			// The last rectangle of a column absorbs rounding slack so the
			// stack exactly reaches height 1.
			if k == hi-1 {
				h = 1 - y
			}
			part.Rects = append(part.Rects, Rect{
				X: x, Y: y, W: colArea, H: h, Index: sorted[k].idx,
			})
			y += h
		}
		x += colArea
	}
	// Absorb horizontal rounding slack into the last column.
	if n := len(part.Rects); n > 0 && len(breaks) > 1 {
		lastLo := breaks[len(breaks)-2]
		slack := 1 - x
		if math.Abs(slack) > 0 {
			for k := lastLo; k < len(sorted); k++ {
				r := &part.Rects[len(part.Rects)-(len(sorted)-k)]
				r.W += slack
			}
		}
	}
	return part
}
