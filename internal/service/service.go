package service

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"nlfl/internal/capacity"
	"nlfl/internal/platform"
	nrt "nlfl/internal/runtime"
	"nlfl/internal/stats"
)

// Typed service failures.
var (
	// ErrAdmissionRejected marks a job shed at the door: the admission
	// queue is full, the tenant is over quota, or the fleet is draining.
	// Every rejection is an *AdmissionError carrying the machine-readable
	// reason; errors.Is(err, ErrAdmissionRejected) still matches.
	ErrAdmissionRejected = errors.New("service: admission rejected")
	// ErrFleetClosed marks a job terminated by fleet shutdown rather than
	// by its own failure.
	ErrFleetClosed = errors.New("service: fleet closed")
	// ErrJobFailed marks a job lost to its own faults — a chaos scenario
	// that exhausted the retry budget or killed every worker in the
	// job's slice. Other jobs are unaffected.
	ErrJobFailed = errors.New("service: job failed")
)

// RejectReason is the machine-readable cause of an admission rejection,
// carried by AdmissionError so API layers can report *why* a job was
// shed (quota vs fleet-full vs the capacity model's verdict) instead of
// a bare 429.
type RejectReason string

const (
	// RejectFleetClosed: the fleet has been Closed.
	RejectFleetClosed RejectReason = "fleet-closed"
	// RejectDraining: the fleet is draining; no new admissions.
	RejectDraining RejectReason = "draining"
	// RejectQueueFull: the fleet-wide unfinished-job queue is at MaxQueue.
	RejectQueueFull RejectReason = "queue-full"
	// RejectTenantQuota: this tenant is at its unfinished-job quota.
	RejectTenantQuota RejectReason = "tenant-quota"
	// RejectNoHealthyWorker: every fleet worker is quarantined.
	RejectNoHealthyWorker RejectReason = "no-healthy-worker"
	// RejectAmdahlCap: the capacity model's knee-sized slice cannot meet
	// the job's deadline — no larger slice would either (adding workers
	// past the knee buys under AutoscaleTheta marginal speedup), so the
	// job is shed at the door instead of admitted to miss its deadline.
	RejectAmdahlCap RejectReason = "amdahl-cap"
)

// AdmissionError is the typed rejection returned by Submit: Reason is
// the machine-readable cause, Detail the human-readable specifics.
// Unwrap yields ErrAdmissionRejected, so existing errors.Is checks keep
// working; use errors.As to recover the reason.
type AdmissionError struct {
	Reason RejectReason
	Detail string
}

func (e *AdmissionError) Error() string {
	return fmt.Sprintf("%v: %s: %s", ErrAdmissionRejected, e.Reason, e.Detail)
}

func (e *AdmissionError) Unwrap() error { return ErrAdmissionRejected }

// Config sizes the fleet.
type Config struct {
	// Speeds are the fleet workers' relative speeds (all positive).
	// Required; the pool size is len(Speeds).
	Speeds []float64
	// WorkPerSecond is the cell-update rate of a speed-1 worker (the
	// token-bucket refill scale); 0 selects 2e6.
	WorkPerSecond float64
	// Burst is the token-bucket capacity in cells; 0 selects 5 ms of
	// credit at the worker's rate.
	Burst float64
	// Link models the master's outgoing bandwidth, shared one-port style
	// by every job's transfers; the zero value ships at memcpy speed.
	// Link is the star shorthand for Topology and cannot be combined
	// with it.
	Link nrt.Link
	// Topology selects the fleet's network shape (star, chain,
	// two-source — see nrt.Topology), shared by every job's transfers.
	// Mutually exclusive with Link; nil with a zero Link ships at memcpy
	// speed.
	Topology nrt.Topology
	// Policy selects the scheduling discipline; "" means PolicyFIFO.
	Policy Policy
	// AgingCellsPerSec is the SRPT anti-starvation rate: a waiting job's
	// effective remaining work shrinks by this many cells per waiting
	// second, so large jobs cannot starve behind a stream of small ones.
	// 0 selects 2% of fleet capacity per second.
	AgingCellsPerSec float64
	// MaxQueue bounds the unfinished jobs fleet-wide; admission beyond it
	// is shed with ErrAdmissionRejected. 0 selects 64.
	MaxQueue int
	// TenantQuota bounds the unfinished jobs per tenant; 0 selects
	// max(1, MaxQueue/4), so a single tenant's flood cannot occupy the
	// whole admission queue.
	TenantQuota int
	// MinCellsPerWorker is the admission slice rule: a job of N² cells is
	// admitted with at most N²/MinCellsPerWorker workers (the fastest
	// healthy ones), because a thinner split ships more input data than
	// the extra workers can pay back. 0 selects 256.
	MinCellsPerWorker int
	// AutoscaleTheta, when positive, turns on capacity-model slice
	// sizing: each job's slice is additionally capped at the knee of the
	// predicted speedup curve for its size over the healthy fleet (the
	// worker count past which marginal speedup falls below this
	// threshold), and a job whose deadline the knee-sized slice cannot
	// meet is rejected with RejectAmdahlCap rather than admitted to
	// fail. 0 disables the model and keeps the static
	// MinCellsPerWorker-only rule.
	AutoscaleTheta float64
	// QuarantineAfter is the strike budget: a worker that dies inside
	// QuarantineAfter jobs is quarantined. 0 selects 2.
	QuarantineAfter int
	// ProbationJobs is the quarantine length, measured in fleet-wide
	// finished jobs; after it the worker is readmitted with a clean
	// record. 0 selects 8.
	ProbationJobs int
	// VerifyEvery, when positive, spot-checks every VerifyEvery-th output
	// cell of each completed job and fails the job on mismatch.
	VerifyEvery int
}

func (c *Config) withDefaults() Config {
	d := *c
	if d.WorkPerSecond <= 0 {
		d.WorkPerSecond = 2e6
	}
	if d.Policy == "" {
		d.Policy = PolicyFIFO
	}
	if d.MaxQueue <= 0 {
		d.MaxQueue = 64
	}
	if d.TenantQuota <= 0 {
		d.TenantQuota = max(1, d.MaxQueue/4)
	}
	if d.MinCellsPerWorker <= 0 {
		d.MinCellsPerWorker = 256
	}
	if d.QuarantineAfter <= 0 {
		d.QuarantineAfter = 2
	}
	if d.ProbationJobs <= 0 {
		d.ProbationJobs = 8
	}
	if d.AgingCellsPerSec <= 0 {
		cap := 0.0
		for _, s := range d.Speeds {
			cap += s * d.WorkPerSecond
		}
		d.AgingCellsPerSec = 0.02 * cap
	}
	return d
}

// Fleet is the long-lived multi-tenant service: it owns the worker
// goroutines, their token buckets and the shared master link once, and
// multiplexes admitted jobs over them chunk by chunk.
type Fleet struct {
	cfg    Config
	speeds []float64
	rate   float64
	start  time.Time
	net    *nrt.Network
	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup
	wake   []chan struct{}

	mu            sync.Mutex
	seq           int64
	active        []*job // unfinished admitted jobs, admission order
	draining      bool
	closed        bool
	health        []workerHealth
	accounts      map[string]*tenantLedger
	finishedJobs  int
	submitted     int
	rejected      int
	completed     int
	failed        int
	cancelledJobs int

	closeOnce sync.Once
}

// New starts the fleet: len(cfg.Speeds) persistent workers, each with
// its own token bucket, all sharing one master link. Callers must Close
// (or Drain then Close) the fleet.
func New(cfg Config) (*Fleet, error) {
	if len(cfg.Speeds) == 0 {
		return nil, fmt.Errorf("service: need at least one worker speed")
	}
	for i, s := range cfg.Speeds {
		if s <= 0 || math.IsNaN(s) || math.IsInf(s, 0) {
			return nil, fmt.Errorf("service: worker %d has invalid speed %v", i, s)
		}
	}
	if lp := len(cfg.Link.PerWorker); lp != 0 && lp != len(cfg.Speeds) {
		return nil, fmt.Errorf("service: %d per-worker link rates for %d workers", lp, len(cfg.Speeds))
	}
	if cfg.Topology != nil && cfg.Link.Enabled() {
		return nil, fmt.Errorf("service: Config.Topology and Config.Link are mutually exclusive (Link is the star shorthand)")
	}
	d := cfg.withDefaults()
	if _, err := d.Policy.order(); err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	f := &Fleet{
		cfg:      d,
		speeds:   append([]float64(nil), d.Speeds...),
		rate:     d.WorkPerSecond,
		start:    time.Now(),
		ctx:      ctx,
		cancel:   cancel,
		health:   make([]workerHealth, len(d.Speeds)),
		accounts: map[string]*tenantLedger{},
		wake:     make([]chan struct{}, len(d.Speeds)),
	}
	topo := d.Topology
	if topo == nil {
		topo = nrt.StarFromLink(d.Link, len(d.Speeds))
	}
	net, err := nrt.NewNetwork(topo, len(d.Speeds), f.now)
	if err != nil {
		cancel()
		return nil, fmt.Errorf("service: %w", err)
	}
	f.net = net
	for w := range f.speeds {
		f.wake[w] = make(chan struct{}, 1)
		f.wg.Add(1)
		go f.worker(w)
	}
	return f, nil
}

// now is the fleet clock: seconds since New on the monotonic clock.
// Every span, latency and chaos window uses this base.
func (f *Fleet) now() float64 { return time.Since(f.start).Seconds() }

// Workers returns the fleet pool size.
func (f *Fleet) Workers() int { return len(f.speeds) }

// wakeAll nudges every idle worker (non-blocking).
func (f *Fleet) wakeAll() {
	for _, ch := range f.wake {
		select {
		case ch <- struct{}{}:
		default:
		}
	}
}

// Submit admits a job, or sheds it with ErrAdmissionRejected. Admission
// never blocks: the bounded queue either has room or the job is
// rejected immediately, so overload turns into fast failure at the door
// rather than unbounded latency inside.
func (f *Fleet) Submit(spec JobSpec) (*JobHandle, error) {
	spec = spec.withDefaults()
	if err := spec.validate(len(f.speeds)); err != nil {
		return nil, err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.submitted++
	led := f.ledgerLocked(spec.Tenant)
	led.Submitted++
	reject := func(reason RejectReason, detail string) (*JobHandle, error) {
		f.rejected++
		led.Rejected++
		return nil, &AdmissionError{Reason: reason, Detail: detail}
	}
	if f.closed {
		return reject(RejectFleetClosed, "fleet closed")
	}
	if f.draining {
		return reject(RejectDraining, "fleet draining")
	}
	if len(f.active) >= f.cfg.MaxQueue {
		return reject(RejectQueueFull, fmt.Sprintf("queue full (%d unfinished jobs)", len(f.active)))
	}
	tenantActive := 0
	for _, j := range f.active {
		if j.tenant == spec.Tenant {
			tenantActive++
		}
	}
	if tenantActive >= f.cfg.TenantQuota {
		return reject(RejectTenantQuota, fmt.Sprintf("tenant %q over quota (%d unfinished jobs)", spec.Tenant, tenantActive))
	}
	slice, pred := f.sliceForLocked(spec)
	if len(slice) == 0 {
		return reject(RejectNoHealthyWorker, "no healthy worker available")
	}
	// The capacity model's no-free-lunch verdict: if the knee-capped slice
	// cannot meet the deadline, no admissible slice can (workers past the
	// knee add under AutoscaleTheta speedup), so shed the job at the door.
	if pred != nil && spec.Deadline > 0 && pred.Makespan > spec.Deadline.Seconds() {
		return reject(RejectAmdahlCap, fmt.Sprintf(
			"predicted makespan %.3fs over %d workers (capacity-model knee) exceeds the %.3fs deadline",
			pred.Makespan, pred.Workers, spec.Deadline.Seconds()))
	}
	j, err := f.buildJobLocked(spec, slice)
	if err != nil {
		f.rejected++
		led.Rejected++
		return nil, err
	}
	if pred != nil {
		j.autoscaled = true
		j.predictedMakespan = pred.Makespan
	}
	f.active = append(f.active, j)
	led.Admitted++
	f.wakeAll()
	return &JobHandle{f: f, j: j}, nil
}

// sliceForLocked picks the job's fleet slice: the fastest healthy
// workers, capped by the Amdahl-style admission rule (at most
// N²/MinCellsPerWorker workers — beyond that the extra input shipping
// outweighs the extra compute), by the spec's own MaxWorkers, and —
// when AutoscaleTheta is set — by the capacity model's knee for this
// job size over the healthy fleet. With autoscaling on, the returned
// prediction prices the chosen slice (nil otherwise).
func (f *Fleet) sliceForLocked(spec JobSpec) ([]int, *capacity.Prediction) {
	ids := make([]int, 0, len(f.speeds))
	for w := range f.speeds {
		if !f.health[w].quarantined {
			ids = append(ids, w)
		}
	}
	sort.SliceStable(ids, func(a, b int) bool { return f.speeds[ids[a]] > f.speeds[ids[b]] })
	limit := len(ids)
	if byWork := (spec.N * spec.N) / f.cfg.MinCellsPerWorker; byWork < limit {
		limit = byWork
	}
	if spec.MaxWorkers > 0 && spec.MaxWorkers < limit {
		limit = spec.MaxWorkers
	}
	var rec *capacity.Recommendation
	if f.cfg.AutoscaleTheta > 0 && len(ids) > 0 {
		speeds := make([]float64, len(ids))
		for i, w := range ids {
			speeds[i] = f.speeds[w]
		}
		m := capacity.Model{
			Alpha:         2, // the fleet runs N×N outer products
			N:             spec.N,
			Speeds:        speeds,
			WorkPerSecond: f.rate,
			Bandwidth:     f.net.Capacity(),
		}
		if r, err := m.Recommend(f.cfg.AutoscaleTheta); err == nil {
			rec = &r
			if r.Knee < limit {
				limit = r.Knee
			}
		}
	}
	if limit < 1 {
		limit = min(1, len(ids))
	}
	ids = ids[:limit]
	sort.Ints(ids)
	var pred *capacity.Prediction
	if rec != nil && limit >= 1 && limit <= len(rec.Curve) {
		p := rec.Curve[limit-1]
		pred = &p
	}
	return ids, pred
}

// buildJobLocked plans the job over its slice and allocates its state.
func (f *Fleet) buildJobLocked(spec JobSpec, slice []int) (*job, error) {
	sliceSpeeds := make([]float64, len(slice))
	for i, w := range slice {
		sliceSpeeds[i] = f.speeds[w]
	}
	pl, err := platform.FromSpeeds(sliceSpeeds)
	if err != nil {
		return nil, fmt.Errorf("service: job platform: %w", err)
	}
	var plan *nrt.StrategyPlan
	switch spec.Strategy {
	case "hom":
		plan, err = nrt.PlanHom(pl, spec.N)
	case "hom/k":
		plan, err = nrt.PlanHomK(pl, spec.N, 0.01, 0)
	case "het":
		plan, err = nrt.PlanHet(pl, spec.N)
	case "wf":
		// Caller-weighted PERI-SUM: Weights[i] loads slice worker i
		// (ascending fleet id). The slice is health- and admission-capped
		// at submit time, so the caller must size Weights against the
		// SliceFor preview — a mismatch is a spec error, not a reshuffle.
		if len(spec.Weights) != len(slice) {
			return nil, fmt.Errorf("service: %d wf weights for an admitted slice of %d workers (preview with SliceFor)",
				len(spec.Weights), len(slice))
		}
		plan, err = nrt.PlanWeighted("wf", spec.Weights, spec.N)
	default:
		return nil, fmt.Errorf("service: unknown strategy %q (want hom, hom/k, het or wf)", spec.Strategy)
	}
	if err != nil {
		return nil, fmt.Errorf("service: plan %s n=%d over %d workers: %w", spec.Strategy, spec.N, len(slice), err)
	}
	a, b := spec.A, spec.B
	if a == nil || b == nil {
		r := stats.NewRNG(spec.Seed)
		a = stats.SampleN(stats.Uniform{Lo: -1, Hi: 1}, r, spec.N)
		b = stats.SampleN(stats.Uniform{Lo: -1, Hi: 1}, r, spec.N)
	}
	f.seq++
	j := newJob(f.seq, spec, slice, plan, a, b, len(f.speeds), f.now())
	jctx := f.ctx
	if spec.Deadline > 0 {
		j.ctx, j.cancel = context.WithTimeout(jctx, spec.Deadline)
	} else {
		j.ctx, j.cancel = context.WithCancel(jctx)
	}
	return j, nil
}

// Drain stops admission and waits for the in-flight jobs to finish. If
// ctx expires first, the stragglers are failed cleanly (ErrFleetClosed)
// so every waiter is answered, and ctx's error is returned.
func (f *Fleet) Drain(ctx context.Context) error {
	f.mu.Lock()
	f.draining = true
	pending := append([]*job(nil), f.active...)
	f.mu.Unlock()
	for _, j := range pending {
		select {
		case <-j.done:
		case <-ctx.Done():
			f.mu.Lock()
			for _, k := range append([]*job(nil), f.active...) {
				f.finalizeLocked(k, fmt.Errorf("%w: drain deadline passed", ErrFleetClosed))
			}
			f.mu.Unlock()
			return ctx.Err()
		}
	}
	return nil
}

// Close stops the fleet: admission is closed, workers exit, and every
// unfinished job is failed with ErrFleetClosed so no waiter hangs.
// Idempotent; safe after Drain.
func (f *Fleet) Close() {
	f.closeOnce.Do(func() {
		f.mu.Lock()
		f.closed = true
		f.draining = true
		// Fail the in-flight jobs first so waiters are answered promptly;
		// chunks still computing commit to nowhere afterwards.
		for _, j := range append([]*job(nil), f.active...) {
			f.finalizeLocked(j, fmt.Errorf("%w: shutdown with job in flight", ErrFleetClosed))
		}
		f.mu.Unlock()
		f.cancel()
		f.wg.Wait()
	})
}

// ledgerLocked returns (creating if needed) the tenant's ledger.
func (f *Fleet) ledgerLocked(tenant string) *tenantLedger {
	led := f.accounts[tenant]
	if led == nil {
		led = &tenantLedger{Tenant: tenant}
		f.accounts[tenant] = led
	}
	return led
}

// QueueDepth reports the number of unfinished admitted jobs — the
// backpressure signal API layers turn into Retry-After hints.
func (f *Fleet) QueueDepth() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.active)
}

// SliceFor previews the fleet slice a job with this spec would be
// admitted with right now (ascending fleet ids) — the sizing handshake
// for the "wf" strategy, whose Weights must match the slice one-to-one.
// The preview races with health changes and other admissions only in
// the sense that the slice may differ by the time Submit runs; Submit
// then rejects the stale weights instead of misassigning them.
func (f *Fleet) SliceFor(spec JobSpec) []int {
	spec = spec.withDefaults()
	f.mu.Lock()
	defer f.mu.Unlock()
	slice, _ := f.sliceForLocked(spec)
	return slice
}

// LinkCapacity reports the shared master port's aggregate bandwidth
// (0 when unconstrained or when the fleet's topology is not a star) —
// threaded into each job's trace expectations.
func (f *Fleet) LinkCapacity() float64 { return f.net.Capacity() }

// Topology reports the fleet's modeled network family ("star", "chain",
// "two-source"; "" when transfers run at memcpy speed).
func (f *Fleet) Topology() string {
	if t := f.net.Topology(); t != nil {
		return t.Name()
	}
	return ""
}

// edgeRows returns capacity-only per-edge rows for job reports: the
// fleet's volume/busy counters span every tenant's traffic, so a single
// job's report carries just the shape the per-edge capacity sweep needs.
func (f *Fleet) edgeRows() []nrt.EdgeReport {
	t := f.net.Topology()
	if t == nil {
		return nil
	}
	edges := t.Edges()
	rows := make([]nrt.EdgeReport, len(edges))
	for i, e := range edges {
		rows[i] = nrt.EdgeReport{Name: e.Name, Capacity: math.Max(e.Capacity, 0)}
	}
	return rows
}
