package runtime

import "sync"

// Chunk is one schedulable rectangle of the N×N computation domain: rows
// [RowLo,RowHi) over a̅, columns [ColLo,ColHi) over b̅.
type Chunk struct {
	// Task is the chunk's id, carried into the trace spans.
	Task int
	// RowLo, RowHi, ColLo, ColHi bound the rectangle on the integer grid.
	RowLo, RowHi, ColLo, ColHi int
	// Owner pins the chunk to one worker (Heterogeneous Blocks); -1 means
	// any worker may claim it (demand-driven).
	Owner int
}

// Cells returns the number of output cells the chunk covers.
func (c Chunk) Cells() int { return (c.RowHi - c.RowLo) * (c.ColHi - c.ColLo) }

// Data returns the number of input vector elements the chunk ships — its
// row span plus its column span, the (w+h)·N accounting of the paper.
func (c Chunk) Data() int { return (c.RowHi - c.RowLo) + (c.ColHi - c.ColLo) }

// shard is one lock-striped segment of the shared queue. Shards live in
// one contiguous array (not behind per-shard pointers), so each is padded
// out to 128 bytes: head and the mutex word are written on every pop, and
// with one stripe per worker adjacent shards belong to different workers —
// unpadded they would share cache lines and every uncontended pop would
// still pay cross-core coherence traffic.
type shard struct {
	mu    sync.Mutex
	items []Chunk
	head  int
	_     [88]byte // mu(8) + items(24) + head(8) = 40 → pad to 128
}

// pop takes the next chunk off the shard, if any.
func (s *shard) pop() (Chunk, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.head >= len(s.items) {
		return Chunk{}, false
	}
	c := s.items[s.head]
	s.head++
	return c, true
}

// privateLane is worker w's owned backlog. Only its owner advances head,
// so the lane needs no lock — but lanes sit in one contiguous array, so
// each is padded to 128 bytes to keep one worker's head bumps from
// false-sharing a line with its neighbour's.
type privateLane struct {
	items []Chunk
	head  int
	_     [96]byte // items(24) + head(8) = 32 → pad to 128
}

// workQueue distributes chunks to workers: owned chunks sit in per-worker
// private lanes (only their owner touches them, no locking), ownerless
// chunks are striped round-robin across shards that any worker may drain —
// home shard first, then stealing from the others.
type workQueue struct {
	shards []shard
	lanes  []privateLane
}

// newWorkQueue stripes the chunks over `shards` segments for `workers`
// workers. Chunk order is preserved within each stripe, so the demand
// process scans the domain in the scan order the planner emitted.
func newWorkQueue(chunks []Chunk, workers, shards int) *workQueue {
	if shards < 1 {
		shards = 1
	}
	q := &workQueue{
		shards: make([]shard, shards),
		lanes:  make([]privateLane, workers),
	}
	next := 0
	for _, c := range chunks {
		if c.Owner >= 0 && c.Owner < workers {
			q.lanes[c.Owner].items = append(q.lanes[c.Owner].items, c)
			continue
		}
		s := &q.shards[next%shards]
		s.items = append(s.items, c)
		next++
	}
	return q
}

// push appends chunks to home's shard — the reclamation entry point: a
// dead worker's lost chunks re-enter the shared pool here, where any
// survivor's ring steal will find them. Pushing to the dead worker's own
// home stripe (w % shards) keeps the stripe non-empty exactly until the
// reclaimed work is drained, so stealers keep scanning it until then and
// skip it (an O(1) mutex probe) only afterwards.
func (q *workQueue) push(home int, cs ...Chunk) {
	s := &q.shards[home%len(q.shards)]
	s.mu.Lock()
	s.items = append(s.items, cs...)
	s.mu.Unlock()
}

// pop returns worker w's next chunk: private lane first, then the home
// shard, then work stealing in ring order. ok=false means the whole queue
// is drained for this worker — though after a reclamation push a stripe
// that once read empty can refill, so resilient callers re-poll rather
// than trusting one false.
func (q *workQueue) pop(w int) (Chunk, bool) {
	lane := &q.lanes[w]
	if lane.head < len(lane.items) {
		c := lane.items[lane.head]
		lane.head++
		return c, true
	}
	n := len(q.shards)
	for i := 0; i < n; i++ {
		if c, ok := q.shards[(w+i)%n].pop(); ok {
			return c, true
		}
	}
	return Chunk{}, false
}
