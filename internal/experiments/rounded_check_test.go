package experiments

import (
	"testing"

	"nlfl/internal/outer"
	"nlfl/internal/platform"
	"nlfl/internal/stats"
)

// TestRoundedVariantRatio pins the static-rounding reading of Comm_hom/k
// at p=100 under Uniform[1,100] speeds: measurably below the demand-
// driven variant's ≈39×, still somewhat above the paper's reported
// 15–30× band (the residual is the paper's unspecified imbalance
// definition — see EXPERIMENTS.md §Fig4).
func TestRoundedVariantRatio(t *testing.T) {
	root := stats.NewRNG(42)
	var w stats.Welford
	for trial := 0; trial < 40; trial++ {
		pl, err := platform.Generate(100, stats.Uniform{Lo: 1, Hi: 100}, root.Split())
		if err != nil {
			t.Fatal(err)
		}
		res, err := outer.CommhomKRounded(pl, 1000, 0.01, 0)
		if err != nil {
			t.Fatal(err)
		}
		w.Add(res.Ratio)
	}
	if w.Mean() < 15 || w.Mean() > 45 {
		t.Errorf("rounded p=100 mean ratio = %v, expected near the paper's 15–30 band", w.Mean())
	}
	t.Logf("rounded Comm_hom/k mean ratio at p=100: %.1f ± %.1f", w.Mean(), w.StdDev())
}
