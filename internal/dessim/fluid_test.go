package dessim

import (
	"math"
	"testing"
	"testing/quick"

	"nlfl/internal/platform"
	"nlfl/internal/stats"
)

func TestBoundedInfiniteEgressMatchesParallelLinks(t *testing.T) {
	p := mustPlatform(t, 1, 2, 4)
	chunks := []Chunk{
		{Worker: 0, Data: 10, Work: 5},
		{Worker: 1, Data: 6, Work: 8},
		{Worker: 2, Data: 3, Work: 2},
		{Worker: 0, Data: 4, Work: 1},
	}
	ref, err := RunSingleRound(p, chunks, ParallelLinks)
	if err != nil {
		t.Fatal(err)
	}
	fluid, err := RunSingleRoundBounded(p, chunks, math.Inf(1))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ref.Makespan-fluid.Makespan) > 1e-9 {
		t.Errorf("infinite egress: %v vs parallel links %v", fluid.Makespan, ref.Makespan)
	}
	if math.Abs(ref.CommVolume()-fluid.CommVolume()) > 1e-9 {
		t.Errorf("volumes differ: %v vs %v", fluid.CommVolume(), ref.CommVolume())
	}
	if err := fluid.Validate(); err != nil {
		t.Error(err)
	}
}

func TestBoundedEgressSharing(t *testing.T) {
	// Two unit-bandwidth workers, egress 1: each transfer gets rate 1/2,
	// so 10 data units arrive at t=20 on both; compute 10 more.
	p := mustPlatform(t, 1, 1)
	chunks := []Chunk{
		{Worker: 0, Data: 10, Work: 10},
		{Worker: 1, Data: 10, Work: 10},
	}
	tl, err := RunSingleRoundBounded(p, chunks, 1)
	if err != nil {
		t.Fatal(err)
	}
	recv := tl.PerWorker[0][0]
	if recv.Kind != Receive || math.Abs(recv.End-20) > 1e-9 {
		t.Errorf("shared receive should end at 20, got %+v", recv)
	}
	if math.Abs(tl.Makespan-30) > 1e-9 {
		t.Errorf("makespan = %v, want 30", tl.Makespan)
	}
}

func TestBoundedWaterFilling(t *testing.T) {
	// Workers with bandwidth 0.5 and 10, egress 2: the slow link caps at
	// 0.5, the fast one gets the remaining 1.5.
	pl, err := platform.New([]platform.Worker{
		{Speed: 1, Bandwidth: 0.5},
		{Speed: 1, Bandwidth: 10},
	})
	if err != nil {
		t.Fatal(err)
	}
	chunks := []Chunk{
		{Worker: 0, Data: 5, Work: 0}, // at 0.5: done at t=10
		{Worker: 1, Data: 6, Work: 0}, // at 1.5: done at t=4
	}
	tl, err := RunSingleRoundBounded(pl, chunks, 2)
	if err != nil {
		t.Fatal(err)
	}
	fast := tl.PerWorker[1][0]
	if math.Abs(fast.End-4) > 1e-9 {
		t.Errorf("fast transfer ends at %v, want 4", fast.End)
	}
	// After t=4 the slow transfer still runs at its cap 0.5: it had
	// 5-4·0.5 = 3 left → finishes at 4+6 = 10.
	slow := tl.PerWorker[0][0]
	if math.Abs(slow.End-10) > 1e-9 {
		t.Errorf("slow transfer ends at %v, want 10", slow.End)
	}
}

func TestBoundedZeroDataChunks(t *testing.T) {
	p := mustPlatform(t, 1)
	tl, err := RunSingleRoundBounded(p, []Chunk{
		{Worker: 0, Data: 0, Work: 5},
		{Worker: 0, Data: 0, Work: 3},
	}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if tl.Makespan != 8 {
		t.Errorf("makespan = %v, want 8 (two instant deliveries, queued compute)", tl.Makespan)
	}
	if err := tl.Validate(); err != nil {
		t.Error(err)
	}
}

func TestBoundedValidation(t *testing.T) {
	p := mustPlatform(t, 1)
	if _, err := RunSingleRoundBounded(p, nil, 0); err == nil {
		t.Error("zero egress should fail")
	}
	if _, err := RunSingleRoundBounded(p, []Chunk{{Worker: 3, Data: 1}}, 1); err == nil {
		t.Error("bad worker should fail")
	}
	if _, err := RunSingleRoundBounded(p, []Chunk{{Worker: 0, Data: -1}}, 1); err == nil {
		t.Error("negative data should fail")
	}
}

func TestBoundedMakespanMonotoneInEgress(t *testing.T) {
	r := stats.NewRNG(9)
	pl, err := platform.Generate(6, stats.Uniform{Lo: 0.5, Hi: 4}, r)
	if err != nil {
		t.Fatal(err)
	}
	chunks := make([]Chunk, 12)
	for i := range chunks {
		chunks[i] = Chunk{Worker: i % 6, Data: 1 + r.Float64()*5, Work: 1 + r.Float64()*5}
	}
	prev := math.Inf(1)
	for _, egress := range []float64{0.1, 0.5, 2, 8, math.Inf(1)} {
		tl, err := RunSingleRoundBounded(pl, chunks, egress)
		if err != nil {
			t.Fatal(err)
		}
		if tl.Makespan > prev+1e-9 {
			t.Errorf("makespan %v increased when egress grew to %v", tl.Makespan, egress)
		}
		prev = tl.Makespan
	}
}

// Property: the bounded model conserves volume/work, stays causal, and is
// never faster than the unconstrained parallel-links model.
func TestBoundedProperty(t *testing.T) {
	f := func(seed int64, nc uint8, egRaw uint8) bool {
		r := stats.NewRNG(seed)
		p := 1 + r.Intn(5)
		pl, err := platform.Generate(p, stats.Uniform{Lo: 0.5, Hi: 5}, r)
		if err != nil {
			return false
		}
		chunks := make([]Chunk, int(nc%20))
		totData, totWork := 0.0, 0.0
		for i := range chunks {
			chunks[i] = Chunk{Worker: r.Intn(p), Data: r.Float64() * 4, Work: r.Float64() * 4}
			totData += chunks[i].Data
			totWork += chunks[i].Work
		}
		egress := 0.2 + 10*float64(egRaw)/255
		tl, err := RunSingleRoundBounded(pl, chunks, egress)
		if err != nil {
			return false
		}
		ref, err := RunSingleRound(pl, chunks, ParallelLinks)
		if err != nil {
			return false
		}
		return math.Abs(tl.CommVolume()-totData) < 1e-6*(1+totData) &&
			math.Abs(tl.WorkDone()-totWork) < 1e-6*(1+totWork) &&
			tl.Validate() == nil &&
			tl.Makespan >= ref.Makespan-1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}
