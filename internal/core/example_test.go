package core_test

import (
	"fmt"

	"nlfl/internal/core"
	"nlfl/internal/platform"
)

// The Section 2 no-free-lunch test as a one-liner: a quadratic workload
// on 100 workers leaves 99% of the work undone.
func ExampleAnalyze() {
	v, _ := core.Analyze(core.Workload{Kind: core.Power, N: 1e6, Alpha: 2}, 100)
	fmt.Printf("%s, undone %.2f\n", v.Class, v.UndoneFraction)
	// Output: not-divisible, undone 0.99
}

// Planning the outer product on a heterogeneous platform: one rectangle
// per worker, area proportional to speed.
func ExamplePlanOuterProduct() {
	pl, _ := platform.FromSpeeds([]float64{1, 1, 2})
	plan, _ := core.PlanOuterProduct(pl, 100)
	for _, w := range plan.Workers {
		fmt.Printf("P%d share=%.2f\n", w.Worker+1, w.Share)
	}
	// Output:
	// P1 share=0.25
	// P2 share=0.25
	// P3 share=0.50
}

// Linear loads ARE divisible: the optimal DLT allocation beats the naive
// equal split on heterogeneous platforms.
func ExamplePlanLinear() {
	pl, _ := platform.FromSpeeds([]float64{1, 9})
	plan, _ := core.PlanLinear(pl, 100)
	fmt.Printf("speedup over equal split: %.2f\n", plan.Speedup())
	// Output: speedup over equal split: 1.40
}
