// Package runtime is the measured-performance counterpart of the
// simulators: a real demand-driven worker pool that executes the paper's
// three distribution strategies — Homogeneous Blocks (Comm_hom), the
// integer-rounded Comm_hom/k refinement, and Heterogeneous Blocks
// (Comm_het) — end-to-end on real vectors, producing the actual N×N outer
// product while metering every byte that moves.
//
// The moving parts mirror the paper's platform model:
//
//   - Each worker is a goroutine whose *relative speed* is enforced by a
//     token bucket: computing a chunk of c cells first drains c tokens
//     from a bucket refilled at speed·WorkPerSecond tokens per second, so
//     a 7×-faster worker really does finish 7× more area per wall-clock
//     second, even on a single CPU.
//   - Chunks live in a sharded work queue. Demand-driven strategies tag
//     chunks ownerless: a worker drains its home shard and then steals
//     from the others, reproducing the claim-when-idle process behind the
//     Comm_hom/k imbalance analysis. The Heterogeneous Blocks plan tags
//     each chunk with its owner; owned chunks are never stolen, because
//     the whole point of the layout is that the data was shipped to that
//     worker once.
//   - Before computing a chunk the worker copies the a̅- and b̅-intervals
//     the chunk needs into worker-local buffers — the shipped data — and
//     computes only from those copies. The copy is recorded as a Comm
//     span and the kernel execution as a Compute span on a trace.Live
//     recorder, so trace.Check audits a measured run with the same
//     invariant oracle that audits the simulators, and the summed Comm
//     span data is the measured communication volume the bench harness
//     cross-checks against the closed forms (2N·√(Σsᵢ/s₁) for Comm_hom).
package runtime
