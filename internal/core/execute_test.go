package core

import (
	"errors"
	"math"
	"testing"

	"nlfl/internal/matmul"
	"nlfl/internal/platform"
	"nlfl/internal/stats"
)

func TestExecuteOuterProductMatchesKernel(t *testing.T) {
	r := stats.NewRNG(41)
	for _, p := range []int{1, 3, 7} {
		pl, err := platform.Generate(p, stats.Uniform{Lo: 1, Hi: 10}, r)
		if err != nil {
			t.Fatal(err)
		}
		const n = 60
		plan, err := PlanOuterProduct(pl, n)
		if err != nil {
			t.Fatal(err)
		}
		a := stats.SampleN(stats.Uniform{Lo: -1, Hi: 1}, r, n)
		b := stats.SampleN(stats.Uniform{Lo: -1, Hi: 1}, r, n)
		got, reads, err := ExecuteOuterProduct(plan, a, b)
		if err != nil {
			t.Fatal(err)
		}
		want := matmul.VectorOuter(a, b)
		if !want.Equal(got, 1e-12) {
			t.Fatalf("p=%d: plan execution disagrees with the kernel", p)
		}
		// Element reads track the plan's volume accounting within grid
		// rounding: worker i reads (w+h)·n ± p elements.
		for i, rd := range reads {
			want := plan.Workers[i].DataVolume
			if math.Abs(float64(rd)-want) > float64(2*p+2) {
				t.Errorf("p=%d worker %d: %d reads vs planned %v", p, i, rd, want)
			}
		}
	}
}

func TestExecuteOuterProductValidation(t *testing.T) {
	pl, _ := platform.Homogeneous(2, 1, 1)
	plan, err := PlanOuterProduct(pl, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := ExecuteOuterProduct(plan, []float64{1, 2}, []float64{1}); err == nil {
		t.Error("mismatched lengths should fail")
	}
	if _, _, err := ExecuteOuterProduct(plan, nil, nil); err == nil {
		t.Error("empty vectors should fail")
	}
}

// TestExecuteOuterProductDegenerateRect is the regression test for the
// silent-no-work bug: a worker whose positive-area rectangle rounds to
// zero cells on the integer grid must produce a typed error, not an
// incomplete product.
func TestExecuteOuterProductDegenerateRect(t *testing.T) {
	// A 10⁶× speed gap squeezes the slow worker's rectangle to ~1e-6 of
	// the unit square; on a 4-grid it rounds to zero width.
	pl, err := platform.FromSpeeds([]float64{1, 1e6})
	if err != nil {
		t.Fatal(err)
	}
	const n = 4
	plan, err := PlanOuterProduct(pl, n)
	if err != nil {
		t.Fatal(err)
	}
	a := make([]float64, n)
	b := make([]float64, n)
	_, _, err = ExecuteOuterProduct(plan, a, b)
	if err == nil {
		t.Fatal("degenerate plan rectangle should be rejected")
	}
	if !errors.Is(err, ErrDegenerateRect) {
		t.Fatalf("error %v does not wrap ErrDegenerateRect", err)
	}
	var dre *DegenerateRectError
	if !errors.As(err, &dre) {
		t.Fatalf("error %v is not a *DegenerateRectError", err)
	}
	if dre.N != n {
		t.Errorf("reported grid %d, want %d", dre.N, n)
	}
	if dre.Rect.Area() <= 0 {
		t.Errorf("reported rect %v should have positive area", dre.Rect)
	}
}

func TestSnapPlanTilesDomain(t *testing.T) {
	r := stats.NewRNG(7)
	pl, err := platform.Generate(5, stats.Uniform{Lo: 1, Hi: 4}, r)
	if err != nil {
		t.Fatal(err)
	}
	const n = 97 // deliberately prime: no rectangle lands on a friendly grid
	plan, err := PlanOuterProduct(pl, n)
	if err != nil {
		t.Fatal(err)
	}
	rects, err := SnapPlan(plan, n)
	if err != nil {
		t.Fatal(err)
	}
	covered := make([]bool, n*n)
	for _, ir := range rects {
		for i := ir.RowLo; i < ir.RowHi; i++ {
			for j := ir.ColLo; j < ir.ColHi; j++ {
				if covered[i*n+j] {
					t.Fatalf("cell (%d,%d) covered twice", i, j)
				}
				covered[i*n+j] = true
			}
		}
	}
	for idx, c := range covered {
		if !c {
			t.Fatalf("cell (%d,%d) never covered", idx/n, idx%n)
		}
	}
}
