//go:build amd64 && !purego

#include "textflag.h"

// func microKernel4x8AVX2(dst *float64, ldd int, pa, pb *float64, kc int)
//
// Register plan:
//   Y0..Y7   4×8 accumulator tile (row r in Y(2r), Y(2r+1))
//   Y8, Y9   packed B row: columns 0..3 and 4..7
//   Y10      broadcast A lane
//   Y11      multiply scratch
// Separate VMULPD/VADDPD (not FMA) keep every element the same
// correctly-rounded mul-then-add chain as the scalar reference, so the
// packed path is bit-identical to Naive.
TEXT ·microKernel4x8AVX2(SB), NOSPLIT, $0-40
	MOVQ dst+0(FP), DI
	MOVQ ldd+8(FP), SI
	MOVQ pa+16(FP), DX
	MOVQ pb+24(FP), CX
	MOVQ kc+32(FP), BX

	VXORPD Y0, Y0, Y0
	VXORPD Y1, Y1, Y1
	VXORPD Y2, Y2, Y2
	VXORPD Y3, Y3, Y3
	VXORPD Y4, Y4, Y4
	VXORPD Y5, Y5, Y5
	VXORPD Y6, Y6, Y6
	VXORPD Y7, Y7, Y7

	TESTQ BX, BX
	JZ    store

kloop:
	VMOVUPD (CX), Y8    // B[k, 0:4]
	VMOVUPD 32(CX), Y9  // B[k, 4:8]

	VBROADCASTSD (DX), Y10  // A row 0
	VMULPD       Y8, Y10, Y11
	VADDPD       Y11, Y0, Y0
	VMULPD       Y9, Y10, Y11
	VADDPD       Y11, Y1, Y1

	VBROADCASTSD 8(DX), Y10 // A row 1
	VMULPD       Y8, Y10, Y11
	VADDPD       Y11, Y2, Y2
	VMULPD       Y9, Y10, Y11
	VADDPD       Y11, Y3, Y3

	VBROADCASTSD 16(DX), Y10 // A row 2
	VMULPD       Y8, Y10, Y11
	VADDPD       Y11, Y4, Y4
	VMULPD       Y9, Y10, Y11
	VADDPD       Y11, Y5, Y5

	VBROADCASTSD 24(DX), Y10 // A row 3
	VMULPD       Y8, Y10, Y11
	VADDPD       Y11, Y6, Y6
	VMULPD       Y9, Y10, Y11
	VADDPD       Y11, Y7, Y7

	ADDQ $32, DX // next packed A step (microM doubles)
	ADDQ $64, CX // next packed B step (microN doubles)
	DECQ BX
	JNZ  kloop

store:
	SHLQ    $3, SI // row stride in bytes
	VMOVUPD Y0, (DI)
	VMOVUPD Y1, 32(DI)
	ADDQ    SI, DI
	VMOVUPD Y2, (DI)
	VMOVUPD Y3, 32(DI)
	ADDQ    SI, DI
	VMOVUPD Y4, (DI)
	VMOVUPD Y5, 32(DI)
	ADDQ    SI, DI
	VMOVUPD Y6, (DI)
	VMOVUPD Y7, 32(DI)
	VZEROUPPER
	RET

// func cpuidex(leaf, sub uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuidex(SB), NOSPLIT, $0-24
	MOVL leaf+0(FP), AX
	MOVL sub+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv0() (eax, edx uint32)
TEXT ·xgetbv0(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET
