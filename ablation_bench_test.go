// Ablation benchmarks for the design choices DESIGN.md calls out and the
// paper's proposed extensions: each reports the quality metric the choice
// buys, not just its speed.
package nlfl_test

import (
	"math"
	"testing"

	"nlfl/internal/affinity"
	"nlfl/internal/dessim"
	"nlfl/internal/dlt"
	"nlfl/internal/experiments"
	"nlfl/internal/matmul"
	"nlfl/internal/outer"
	"nlfl/internal/partition"
	"nlfl/internal/platform"
	"nlfl/internal/polymul"
	"nlfl/internal/samplesort"
	"nlfl/internal/stats"
)

// BenchmarkAblationPartitioners compares the column-based DP against the
// √p heuristic and (for small p) the exact guillotine optimum.
func BenchmarkAblationPartitioners(b *testing.B) {
	r := stats.NewRNG(21)
	areas := stats.SampleN(stats.LogNormal{Mu: 0, Sigma: 1.5}, r, 40)
	smallAreas := stats.SampleN(stats.LogNormal{Mu: 0, Sigma: 1.5}, r, 6)
	b.Run("column-dp", func(b *testing.B) {
		var cost float64
		for i := 0; i < b.N; i++ {
			p, err := partition.PeriSum(areas)
			if err != nil {
				b.Fatal(err)
			}
			cost = p.SumHalfPerimeters()
		}
		b.ReportMetric(cost, "C-hat")
	})
	b.Run("sqrt-heuristic", func(b *testing.B) {
		var cost float64
		for i := 0; i < b.N; i++ {
			p, err := partition.SqrtHeuristic(areas)
			if err != nil {
				b.Fatal(err)
			}
			cost = p.SumHalfPerimeters()
		}
		b.ReportMetric(cost, "C-hat")
	})
	b.Run("guillotine-exact-p6", func(b *testing.B) {
		var gap float64
		for i := 0; i < b.N; i++ {
			g, err := partition.ColumnGapToGuillotine(smallAreas)
			if err != nil {
				b.Fatal(err)
			}
			gap = g
		}
		b.ReportMetric(gap, "columnDP-over-optimal")
	})
}

// BenchmarkAblationAffinity quantifies the conclusion's proposal: the
// comm-volume ratio of the three demand-driven policies.
func BenchmarkAblationAffinity(b *testing.B) {
	r := stats.NewRNG(22)
	pl, err := platform.Generate(10, stats.Uniform{Lo: 1, Hi: 100}, r)
	if err != nil {
		b.Fatal(err)
	}
	for _, pol := range []affinity.Policy{affinity.PolicyNoCache, affinity.PolicyCache, affinity.PolicyAffinity} {
		pol := pol
		b.Run(pol.String(), func(b *testing.B) {
			var ratio float64
			for i := 0; i < b.N; i++ {
				res, err := affinity.Run(pl, 1000, 30, pol)
				if err != nil {
					b.Fatal(err)
				}
				ratio = res.Ratio
			}
			b.ReportMetric(ratio, "volume-over-LB")
		})
	}
}

// BenchmarkAblationMultiRound sweeps the round count of the linear-DLT
// pipelining extension.
func BenchmarkAblationMultiRound(b *testing.B) {
	r := stats.NewRNG(23)
	ws := make([]platform.Worker, 8)
	for i := range ws {
		ws[i] = platform.Worker{Speed: 0.5 + 4*r.Float64(), Bandwidth: 0.5 + 4*r.Float64()}
	}
	pl, err := platform.New(ws)
	if err != nil {
		b.Fatal(err)
	}
	const n = 400.0
	alloc, err := dlt.OptimalParallel(pl, n)
	if err != nil {
		b.Fatal(err)
	}
	for _, rounds := range []int{1, 4, 16} {
		rounds := rounds
		b.Run(roundsName(rounds), func(b *testing.B) {
			var ms float64
			for i := 0; i < b.N; i++ {
				chunks, err := dlt.MultiRoundUniform(alloc, n, rounds)
				if err != nil {
					b.Fatal(err)
				}
				ms, err = dlt.SimulatedMakespan(pl, chunks, dessim.ParallelLinks)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(ms, "makespan")
		})
	}
}

func roundsName(r int) string {
	switch r {
	case 1:
		return "rounds-1"
	case 4:
		return "rounds-4"
	default:
		return "rounds-16"
	}
}

// BenchmarkAblationBalancedSort compares the paper's speed-proportional
// heterogeneous buckets against the log-corrected balanced shares.
func BenchmarkAblationBalancedSort(b *testing.B) {
	pl, err := platform.FromSpeeds([]float64{1, 1, 16, 16})
	if err != nil {
		b.Fatal(err)
	}
	r := stats.NewRNG(24)
	xs := make([]float64, 200000)
	for i := range xs {
		xs[i] = r.Float64()
	}
	cfg := samplesort.Config{Seed: 7, Oversampling: 4000}
	b.Run("proportional", func(b *testing.B) {
		var e float64
		for i := 0; i < b.N; i++ {
			_, ht, err := samplesort.SortHeterogeneous(xs, pl, cfg)
			if err != nil {
				b.Fatal(err)
			}
			e = ht.Imbalance()
		}
		b.ReportMetric(e, "imbalance")
	})
	b.Run("balanced", func(b *testing.B) {
		var e float64
		for i := 0; i < b.N; i++ {
			_, ht, err := samplesort.SortHeterogeneousBalanced(xs, pl, cfg)
			if err != nil {
				b.Fatal(err)
			}
			e = ht.Imbalance()
		}
		b.ReportMetric(e, "imbalance")
	})
}

// BenchmarkAblation25D evaluates the 2.5D replication trade-off the paper
// singles out as the exception to outer-product-based matmul.
func BenchmarkAblation25D(b *testing.B) {
	const n = 1024.0
	var bestC int
	var saving float64
	for i := 0; i < b.N; i++ {
		c, v, err := matmul.Best25DReplication(n, 4096)
		if err != nil {
			b.Fatal(err)
		}
		v1, err := matmul.Comm25DTotal(n, 4096, 1)
		if err != nil {
			b.Fatal(err)
		}
		bestC, saving = c, v1/v
	}
	b.ReportMetric(float64(bestC), "best-c")
	b.ReportMetric(saving, "volume-saving")
	if saving < 1 || math.IsNaN(saving) {
		b.Fatal("2.5D saving must be ≥ 1")
	}
}

// BenchmarkE16Adaptivity measures the static-vs-demand-driven slowdown
// experiment and reports the worst-case makespan gap.
func BenchmarkE16Adaptivity(b *testing.B) {
	var gap float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Adaptivity(8, 800, 256, []float64{0.02})
		if err != nil {
			b.Fatal(err)
		}
		gap = rows[0].Static / rows[0].Demand
	}
	b.ReportMetric(gap, "static-over-demand")
}

// BenchmarkPolymulKernels compares the three convolution algorithms on a
// real input (the ref [20] case study).
func BenchmarkPolymulKernels(b *testing.B) {
	r := stats.NewRNG(30)
	a := stats.SampleN(stats.Uniform{Lo: -1, Hi: 1}, r, 4096)
	c := stats.SampleN(stats.Uniform{Lo: -1, Hi: 1}, r, 4096)
	b.Run("schoolbook", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := polymul.Naive(a, c); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("karatsuba", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := polymul.Karatsuba(a, c); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("fft", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := polymul.FFT(a, c); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationRoundedCommhomK compares the two readings of the
// Comm_hom/k integer-assignment rule at the paper's p=100.
func BenchmarkAblationRoundedCommhomK(b *testing.B) {
	r := stats.NewRNG(31)
	pl, err := platform.Generate(100, stats.Uniform{Lo: 1, Hi: 100}, r)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("demand-driven", func(b *testing.B) {
		var ratio float64
		for i := 0; i < b.N; i++ {
			res, err := outer.CommhomK(pl, 1000, 0.01, 0)
			if err != nil {
				b.Fatal(err)
			}
			ratio = res.Ratio
		}
		b.ReportMetric(ratio, "ratio")
	})
	b.Run("rounded", func(b *testing.B) {
		var ratio float64
		for i := 0; i < b.N; i++ {
			res, err := outer.CommhomKRounded(pl, 1000, 0.01, 0)
			if err != nil {
				b.Fatal(err)
			}
			ratio = res.Ratio
		}
		b.ReportMetric(ratio, "ratio")
	})
}

// BenchmarkDistributedSort runs the end-to-end §3 simulation.
func BenchmarkDistributedSort(b *testing.B) {
	pl, err := platform.Homogeneous(8, 1, 4)
	if err != nil {
		b.Fatal(err)
	}
	var speedup float64
	for i := 0; i < b.N; i++ {
		c, err := samplesort.SimulateDistributed(pl, 1<<18, samplesort.Config{}, dessim.ParallelLinks)
		if err != nil {
			b.Fatal(err)
		}
		speedup = c.Speedup()
	}
	b.ReportMetric(speedup, "speedup")
}

// BenchmarkReturnOrders measures the FIFO/LIFO result-collection
// extension (the §1.2 exclusion restored).
func BenchmarkReturnOrders(b *testing.B) {
	r := stats.NewRNG(33)
	ws := make([]platform.Worker, 8)
	for i := range ws {
		ws[i] = platform.Worker{Speed: 0.5 + 4*r.Float64(), Bandwidth: 0.5 + 4*r.Float64()}
	}
	pl, err := platform.New(ws)
	if err != nil {
		b.Fatal(err)
	}
	chunks := make([]dessim.Chunk, 8)
	for i := range chunks {
		d := 1 + 4*r.Float64()
		chunks[i] = dessim.Chunk{Worker: i, Data: d, Work: d}
	}
	var fifo, lifo float64
	for i := 0; i < b.N; i++ {
		f, l, err := dessim.CompareReturnOrders(pl, chunks, 0.8)
		if err != nil {
			b.Fatal(err)
		}
		fifo, lifo = f, l
	}
	b.ReportMetric(fifo, "fifo-makespan")
	b.ReportMetric(lifo, "lifo-makespan")
}
