package iterative

import (
	"context"
	"fmt"
	"testing"

	"nlfl/internal/faults"
	nrt "nlfl/internal/runtime"
)

// TestChaosIterativeProperty is the chaos × iterative interaction sweep:
// seeded {crash, straggler, link-slow} scenarios crossed with re-plan
// frequencies, every round audited by the exactly-once trace oracle. The
// property: whatever the fault and however often the controller re-plans,
// the iteration converges to the right answer with zero violations.
func TestChaosIterativeProperty(t *testing.T) {
	classes := []string{"crash", "straggler", "link-slow"}
	replans := []int{1, 2, 4}
	seeds := 11
	if testing.Short() {
		seeds = 3
	}
	for _, class := range classes {
		for _, every := range replans {
			for seed := 0; seed < seeds; seed++ {
				class, every, seed := class, every, seed
				t.Run(fmt.Sprintf("%s/every=%d/seed=%d", class, every, seed), func(t *testing.T) {
					t.Parallel()
					opts := Options{
						N:             48,
						X0:            SeedVector(48, 0.6),
						MaxRounds:     12,
						Tol:           1e-9,
						Mode:          ModeAdaptive,
						Speeds:        []float64{1, 2, 3},
						WorkPerSecond: 4e5,
						Burst:         1,
						VerifyEvery:   11,
						ReplanEvery:   every,
						Estimator:     EstimatorConfig{DriftRounds: 2},
					}
					victim := seed % len(opts.Speeds)
					switch class {
					case "crash":
						opts.Chaos = func(round int) nrt.Chaos {
							if round != 1 {
								return nrt.Chaos{}
							}
							return nrt.Chaos{
								Scenario: faults.Scenario{
									Seed: int64(seed),
									// Round 1 lasts ≈ 1 ms at this throttle; the crash
									// instant must land inside it to actually fire.
									Events: []faults.Event{{Kind: faults.Crash, Worker: victim, Time: 0.0001 + 0.0001*float64(seed%3)}},
								},
								MaxRetries: 3,
							}
						}
					case "straggler":
						opts.Chaos = func(round int) nrt.Chaos {
							if round < 1 {
								return nrt.Chaos{}
							}
							return nrt.Chaos{Scenario: faults.Scenario{
								Seed: int64(seed),
								Events: []faults.Event{
									{Kind: faults.Straggler, Worker: victim, Time: 0, Until: 1e9, Factor: 0.3},
								},
							}}
						}
					case "link-slow":
						opts.Link = nrt.Link{ElemsPerSecond: 4e6}
						opts.Chaos = func(round int) nrt.Chaos {
							if round < 1 {
								return nrt.Chaos{}
							}
							return nrt.Chaos{Scenario: faults.Scenario{
								Seed: int64(seed),
								Events: []faults.Event{
									{Kind: faults.LinkSlow, Worker: victim, Time: 0, Until: 1e9, Factor: 0.25},
								},
							}}
						}
					}
					res, err := Run(context.Background(), opts)
					if err != nil {
						t.Fatalf("%v (rounds run: %d)", err, len(res.Rounds))
					}
					if !res.Converged {
						t.Fatal("did not converge")
					}
					if res.Violations != 0 {
						t.Fatalf("%d trace-oracle violations (exactly-once must survive %s)", res.Violations, class)
					}
					if want := 48 / 3; res.Dominant != want {
						t.Fatalf("converged to index %d, want %d", res.Dominant, want)
					}
					if class == "crash" && len(res.DeadWorkers) != 1 {
						t.Fatalf("crash class killed %v workers", res.DeadWorkers)
					}
				})
			}
		}
	}
}
