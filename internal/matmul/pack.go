package matmul

// Packed panel geometry of the register-blocked GEMM path. The micro-kernel
// computes one microM×microN tile of C per call, so A is repacked into
// microM-row panels and B into microN-column panels, both laid out so the
// k loop walks each panel with unit stride:
//
//	A panel: pa[k*microM + r] = A[rowBase+r, k]   (microM values per k step)
//	B panel: pb[k*microN + c] = B[k, colBase+c]   (microN values per k step)
//
// Panels at the matrix edge are zero-padded to the full micro-tile width;
// the padded lanes compute harmless zeros that the driver never copies out.
const (
	// microM × microN is the register block: microM broadcast lanes of A
	// against two 4-wide vectors of B — 8 vector accumulators that live in
	// registers for the whole k loop (YMM0–YMM7 on the AVX2 path).
	microM = 4
	microN = 8
	// gemmNC bounds the column block the driver keeps hot: one block of
	// packed B spans k×gemmNC values (1 MiB at k=1024), sized to stay
	// L2-resident while every row panel of the band streams against it.
	gemmNC = 128
)

// packedB is B repacked into microN-column panels, shareable read-only
// across the row bands of a parallel multiply.
type packedB struct {
	k, n   int       // logical dims of B
	panels int       // ⌈n/microN⌉
	data   []float64 // panels × k × microN, edge panels zero-padded
}

// panel returns the jp-th column panel (k×microN values, k-major).
func (pb *packedB) panel(jp int) []float64 {
	return pb.data[jp*pb.k*microN : (jp+1)*pb.k*microN]
}

// packB repacks B into micro-panels. One pass over B, write-mostly; the
// copy costs O(k·n) against the O(m·k·n) multiply it accelerates.
func packB(b *Matrix) *packedB {
	k, n := b.Rows, b.Cols
	panels := (n + microN - 1) / microN
	pb := &packedB{k: k, n: n, panels: panels, data: make([]float64, panels*k*microN)}
	for jp := 0; jp < panels; jp++ {
		col := jp * microN
		w := min(microN, n-col)
		dst := pb.panel(jp)
		for kk := 0; kk < k; kk++ {
			src := b.Data[kk*n+col : kk*n+col+w]
			d := dst[kk*microN : kk*microN+w : kk*microN+microN]
			copy(d, src)
		}
	}
	return pb
}

// packARows repacks rows [rowLo,rowHi) of A into microM-row panels, writing
// into pa, which must hold ⌈rows/microM⌉·k·microM values. Rows past rowHi
// inside the last panel are zero-padded.
func packARows(pa []float64, a *Matrix, rowLo, rowHi int) {
	k := a.Cols
	rows := rowHi - rowLo
	for ip := 0; ip < rows; ip += microM {
		h := min(microM, rows-ip)
		panel := pa[(ip/microM)*k*microM:]
		for r := 0; r < microM; r++ {
			if r >= h {
				for kk := 0; kk < k; kk++ {
					panel[kk*microM+r] = 0
				}
				continue
			}
			src := a.Data[(rowLo+ip+r)*k : (rowLo+ip+r)*k+k]
			for kk, v := range src {
				panel[kk*microM+r] = v
			}
		}
	}
}
