package service

import "sort"

// tenantLedger is one tenant's running account (fleet.mu-guarded).
// Volumes settle at job finalize, so the ledger always describes
// *finished* jobs; ServedCells additionally accrues at every commit so
// fair-share ordering sees in-flight service too.
type tenantLedger struct {
	Tenant    string
	Submitted int
	Admitted  int
	Rejected  int
	Completed int
	Failed    int
	Cancelled int

	// ServedCells accrues at commit time (fair-share key + attained
	// service); the volume fields settle per finished job.
	ServedCells     float64
	PlanVolume      float64
	ReplannedVolume float64
	DataShipped     float64
	CommittedVolume float64
	WastedData      float64
	ReclaimedCells  int
	RetriedChunks   int
	SpeculativeWins int
	DegradedEvents  int
}

// settle folds a finished job's ledger into the tenant account.
func (t *tenantLedger) settle(r *JobReport) {
	t.PlanVolume += r.PlanVolume
	t.ReplannedVolume += r.ReplannedVolume
	t.DataShipped += r.DataShipped
	t.CommittedVolume += r.CommittedVolume
	t.WastedData += r.WastedData
	t.ReclaimedCells += r.ReclaimedCells
	t.RetriedChunks += r.RetriedChunks
	t.SpeculativeWins += r.SpeculativeWins
	t.DegradedEvents += r.DegradedWorkers
}

// TenantAccount is a tenant ledger snapshot.
type TenantAccount struct {
	Tenant    string
	Submitted int
	Admitted  int
	Rejected  int
	Completed int
	Failed    int
	Cancelled int

	ServedCells     float64
	PlanVolume      float64
	ReplannedVolume float64
	DataShipped     float64
	CommittedVolume float64
	WastedData      float64
	ReclaimedCells  int
	RetriedChunks   int
	SpeculativeWins int
	DegradedEvents  int
}

// FleetReport is a whole-fleet accounting snapshot.
type FleetReport struct {
	Workers       int
	Policy        Policy
	ActiveJobs    int
	Submitted     int
	Rejected      int
	Completed     int
	Failed        int
	Cancelled     int
	Quarantined   []int
	Tenants       []TenantAccount
	UptimeSeconds float64
}

// Accounting returns the fleet snapshot, tenants sorted by name.
func (f *Fleet) Accounting() FleetReport {
	f.mu.Lock()
	defer f.mu.Unlock()
	rep := FleetReport{
		Workers:       len(f.speeds),
		Policy:        f.cfg.Policy,
		ActiveJobs:    len(f.active),
		Submitted:     f.submitted,
		Rejected:      f.rejected,
		Completed:     f.completed,
		Failed:        f.failed,
		Cancelled:     f.cancelledJobs,
		UptimeSeconds: f.now(),
	}
	for w := range f.health {
		if f.health[w].quarantined {
			rep.Quarantined = append(rep.Quarantined, w)
		}
	}
	names := make([]string, 0, len(f.accounts))
	for name := range f.accounts {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		led := f.accounts[name]
		rep.Tenants = append(rep.Tenants, TenantAccount{
			Tenant:    led.Tenant,
			Submitted: led.Submitted,
			Admitted:  led.Admitted,
			Rejected:  led.Rejected,
			Completed: led.Completed,
			Failed:    led.Failed,
			Cancelled: led.Cancelled,

			ServedCells:     led.ServedCells,
			PlanVolume:      led.PlanVolume,
			ReplannedVolume: led.ReplannedVolume,
			DataShipped:     led.DataShipped,
			CommittedVolume: led.CommittedVolume,
			WastedData:      led.WastedData,
			ReclaimedCells:  led.ReclaimedCells,
			RetriedChunks:   led.RetriedChunks,
			SpeculativeWins: led.SpeculativeWins,
			DegradedEvents:  led.DegradedEvents,
		})
	}
	return rep
}
