package dessim

import (
	"fmt"
	"math"

	"nlfl/internal/platform"
)

// Epoch is one piece of a piecewise-constant speed profile: until time
// Until, worker w computes at Factor[w] times its nominal speed. The
// paper's Section 1.1 motivates MapReduce's demand-driven scheduling with
// exactly this phenomenon — "a detection of nodes that perform poorly (in
// order to re-assign tasks that slow down the process)" — and the
// demand-driven distribution adapts to it with no explicit detection at
// all: a slowed worker simply claims fewer tasks.
type Epoch struct {
	// Until is the epoch's end time (the last epoch should use
	// math.Inf(1)).
	Until float64
	// Factor[w] scales worker w's speed during the epoch (≥ 0; zero
	// freezes the worker).
	Factor []float64
}

// validateEpochs checks monotone boundaries and factor vector shapes.
func validateEpochs(epochs []Epoch, p int) error {
	if len(epochs) == 0 {
		return fmt.Errorf("dessim: need at least one epoch")
	}
	prev := 0.0
	for i, e := range epochs {
		if len(e.Factor) != p {
			return fmt.Errorf("dessim: epoch %d has %d factors for %d workers", i, len(e.Factor), p)
		}
		for w, f := range e.Factor {
			if f < 0 || math.IsNaN(f) {
				return fmt.Errorf("dessim: epoch %d factor[%d] = %v", i, w, f)
			}
		}
		if e.Until <= prev {
			return fmt.Errorf("dessim: epoch %d ends at %v, not after %v", i, e.Until, prev)
		}
		prev = e.Until
	}
	if !math.IsInf(epochs[len(epochs)-1].Until, 1) {
		return fmt.Errorf("dessim: last epoch must extend to +Inf")
	}
	return nil
}

// finishAcross integrates worker w's effective speed from `start` until
// `work` units complete, returning the finish time (+Inf if the profile
// starves the worker forever).
func finishAcross(epochs []Epoch, pl *platform.Platform, w int, start, work float64) float64 {
	if work <= 0 {
		return start
	}
	speed := pl.Worker(w).Speed
	t := start
	remaining := work
	for _, e := range epochs {
		if e.Until <= t {
			continue
		}
		rate := speed * e.Factor[w]
		span := e.Until - t
		if rate > 0 {
			need := remaining / rate
			if need <= span {
				return t + need
			}
			remaining -= rate * span
		}
		t = e.Until
	}
	return math.Inf(1)
}

// RunSingleRoundVarying executes a static schedule (like RunSingleRound
// with parallel links) on a platform whose compute speeds follow the
// piecewise-constant profile. Transfers run at nominal bandwidth; only
// computation slows down. A static schedule cannot react to a slowdown —
// the slowed worker keeps its whole chunk — which is exactly the
// fragility the demand-driven runner below avoids.
func RunSingleRoundVarying(pl *platform.Platform, chunks []Chunk, epochs []Epoch) (*Timeline, error) {
	if err := validateEpochs(epochs, pl.P()); err != nil {
		return nil, err
	}
	tl := NewTimeline(pl.P())
	links := make([]Resource, pl.P())
	cpuFree := make([]float64, pl.P())
	for idx, ch := range chunks {
		if ch.Worker < 0 || ch.Worker >= pl.P() {
			return nil, fmt.Errorf("dessim: chunk %d targets unknown worker %d", idx, ch.Worker)
		}
		if ch.Data < 0 || ch.Work < 0 {
			return nil, fmt.Errorf("dessim: chunk %d has negative size", idx)
		}
		w := pl.Worker(ch.Worker)
		recvStart, recvEnd := links[ch.Worker].Book(0, w.CommTime(ch.Data))
		tl.Add(ch.Worker, Interval{Kind: Receive, Start: recvStart, End: recvEnd, Data: ch.Data, Task: idx})
		compStart := recvEnd
		if cpuFree[ch.Worker] > compStart {
			compStart = cpuFree[ch.Worker]
		}
		compEnd := finishAcross(epochs, pl, ch.Worker, compStart, ch.Work)
		if math.IsInf(compEnd, 1) {
			return nil, fmt.Errorf("dessim: chunk %d starves on frozen worker %d", idx, ch.Worker)
		}
		cpuFree[ch.Worker] = compEnd
		tl.Add(ch.Worker, Interval{Kind: Compute, Start: compStart, End: compEnd, Work: ch.Work, Task: idx})
	}
	return tl, nil
}

// RunDemandDrivenVarying executes a demand-driven pool like
// RunDemandDriven (parallel links, data shipped at nominal bandwidth) on
// a platform whose compute speeds follow the piecewise-constant profile.
// A worker whose effective rate is zero simply stops claiming work until
// the pool finishes elsewhere.
func RunDemandDrivenVarying(pl *platform.Platform, tasks []Task, epochs []Epoch) (*Timeline, error) {
	if err := validateEpochs(epochs, pl.P()); err != nil {
		return nil, err
	}
	for i, t := range tasks {
		if t.Data < 0 || t.Work < 0 {
			return nil, fmt.Errorf("dessim: task %d has negative size", i)
		}
	}
	eng := NewEngine()
	tl := NewTimeline(pl.P())
	next := 0

	var assign func(worker int)
	assign = func(worker int) {
		if next >= len(tasks) {
			return
		}
		taskID := next
		task := tasks[next]
		w := pl.Worker(worker)
		recvEnd := eng.Now() + w.CommTime(task.Data)
		compEnd := finishAcross(epochs, pl, worker, recvEnd, task.Work)
		if math.IsInf(compEnd, 1) {
			// The worker is starved for the rest of time: leave the task
			// for someone else and retire this worker.
			return
		}
		next++
		tl.Add(worker, Interval{Kind: Receive, Start: eng.Now(), End: recvEnd, Data: task.Data, Task: taskID})
		tl.Add(worker, Interval{Kind: Compute, Start: recvEnd, End: compEnd, Work: task.Work, Task: taskID})
		eng.At(compEnd, func() { assign(worker) })
	}
	for i := 0; i < pl.P(); i++ {
		worker := i
		eng.At(0, func() { assign(worker) })
	}
	eng.Run()
	if next < len(tasks) {
		return nil, fmt.Errorf("dessim: %d tasks stranded (all remaining workers starved)", len(tasks)-next)
	}
	return tl, nil
}
