package runtime

// Link configures the bandwidth-modeled master link. The paper's
// Section 4 minimises communication *volume* because the master's
// outgoing links are the contended resource; this model makes that
// volume cost wall-clock time, in the one-port / bounded-bandwidth
// tradition of linear-network DLT (Gallet–Robert–Vivien) and shared-link
// network scheduling (Wu–Cao–Robertazzi). The zero value disables the
// model: chunk inputs are copied at memcpy speed, as before.
//
// Link is the star-shaped special case of the Topology interface
// (topology.go): the runtime converts it into the equivalent Star value
// via starFromLink, and books transfers through the same netLink engine
// every topology uses.
type Link struct {
	// ElemsPerSecond is the aggregate bandwidth of the master's outgoing
	// link in vector elements per second, shared one-port style by all
	// workers: transfers serialize on the master and each occupies the
	// link for Data/min(ElemsPerSecond, PerWorker[w]) seconds. A value
	// ≤ 0 leaves the shared link unconstrained.
	ElemsPerSecond float64
	// PerWorker optionally caps each worker's own incoming link
	// (elements per second; 0 or a missing entry means uncapped). When
	// set, it must have one entry per worker.
	PerWorker []float64
}

// Enabled reports whether any bandwidth constraint is configured.
func (l Link) Enabled() bool {
	if l.ElemsPerSecond > 0 {
		return true
	}
	for _, r := range l.PerWorker {
		if r > 0 {
			return true
		}
	}
	return false
}
