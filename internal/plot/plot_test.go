package plot

import (
	"math"
	"strings"
	"testing"
)

func TestSeriesMinMax(t *testing.T) {
	var s Series
	s.Add(1, 10, 2)
	s.Add(5, 20, 0)
	s.Add(3, 5, 1)
	xmin, xmax, ymin, ymax := s.MinMax()
	if xmin != 1 || xmax != 5 {
		t.Errorf("x range = (%v,%v), want (1,5)", xmin, xmax)
	}
	if ymin != 4 || ymax != 20 {
		t.Errorf("y range = (%v,%v), want (4,20) including error bars", ymin, ymax)
	}
}

func TestChartRenderBasics(t *testing.T) {
	c := &Chart{Title: "demo", XLabel: "p", YLabel: "ratio", Width: 40, Height: 10}
	s1 := c.AddSeries("alpha")
	s2 := c.AddSeries("beta")
	for i := 0; i < 10; i++ {
		s1.Add(float64(i), float64(i*i), 0)
		s2.Add(float64(i), float64(2*i), 1)
	}
	out := c.Render()
	for _, want := range []string{"demo", "alpha", "beta", "x: p", "y: ratio", "*", "o"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(out, "\n")
	if len(lines) < 12 {
		t.Errorf("expected at least 12 lines, got %d", len(lines))
	}
}

func TestChartRenderEmpty(t *testing.T) {
	c := &Chart{Title: "empty"}
	out := c.Render()
	if !strings.Contains(out, "(no data)") {
		t.Errorf("empty chart should say so:\n%s", out)
	}
}

func TestChartRenderSinglePoint(t *testing.T) {
	c := &Chart{Width: 20, Height: 5}
	c.AddSeries("one").Add(3, 7, 0)
	out := c.Render()
	if !strings.Contains(out, "*") {
		t.Errorf("single point should still render a marker:\n%s", out)
	}
}

func TestChartErrorBars(t *testing.T) {
	c := &Chart{Width: 20, Height: 11}
	c.AddSeries("e").Add(0, 0, 0)
	c.AddSeries("f").Add(1, 0, 5)
	out := c.Render()
	if !strings.Contains(out, "|") {
		t.Errorf("error bar glyph missing:\n%s", out)
	}
}

func TestChartCSV(t *testing.T) {
	c := &Chart{}
	a := c.AddSeries("a,b") // comma must be escaped
	b := c.AddSeries("b")
	a.Add(1, 10, 0.5)
	a.Add(2, 20, 0.25)
	b.Add(2, 200, 0)
	csv := c.CSV()
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 3 {
		t.Fatalf("expected header + 2 rows, got %d lines:\n%s", len(lines), csv)
	}
	if lines[0] != "x,a_b,a_b_sd,b,b_sd" {
		t.Errorf("header = %q", lines[0])
	}
	if lines[1] != "1,10,0.5,," {
		t.Errorf("row1 = %q", lines[1])
	}
	if lines[2] != "2,20,0.25,200,0" {
		t.Errorf("row2 = %q", lines[2])
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("P", "fraction")
	tb.AddRowf(10, 0.9)
	tb.AddRowf(100, 0.99)
	out := tb.String()
	if !strings.Contains(out, "P") || !strings.Contains(out, "0.99") {
		t.Errorf("table missing content:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Errorf("expected 4 lines (header, sep, 2 rows), got %d", len(lines))
	}
	// All lines should be aligned to the same prefix width for column 1.
	if !strings.Contains(lines[1], "-") {
		t.Error("separator line missing")
	}
}

func TestTableRowPadding(t *testing.T) {
	tb := NewTable("a", "b", "c")
	tb.AddRow("1")                // short: padded
	tb.AddRow("1", "2", "3", "4") // long: truncated
	if len(tb.Rows[0]) != 3 || len(tb.Rows[1]) != 3 {
		t.Errorf("rows not normalized: %v", tb.Rows)
	}
	if tb.Rows[1][2] != "3" {
		t.Errorf("extra cell should be dropped, got %v", tb.Rows[1])
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("x", "y")
	tb.AddRow("a,0", "b")
	csv := tb.CSV()
	if csv != "x,y\na_0,b\n" {
		t.Errorf("csv = %q", csv)
	}
}

func TestChartLogY(t *testing.T) {
	c := &Chart{Width: 30, Height: 9, LogY: true}
	s := c.AddSeries("powers")
	for i := 0; i < 5; i++ {
		s.Add(float64(i), math.Pow(10, float64(i)), 0)
	}
	out := c.Render()
	// Axis labels show real values: top 1e4, bottom 1.
	if !strings.Contains(out, "1e+04") {
		t.Errorf("log axis top label missing:\n%s", out)
	}
	// In log scale the five decades are evenly spaced: the marker rows
	// must be distinct and roughly equidistant.
	lines := strings.Split(out, "\n")
	var rows []int
	for r, line := range lines {
		if strings.Contains(line, "*") && !strings.Contains(line, "powers") {
			rows = append(rows, r)
		}
	}
	if len(rows) != 5 {
		t.Fatalf("expected 5 marker rows, got %d:\n%s", len(rows), out)
	}
	for i := 2; i < len(rows); i++ {
		d1 := rows[i-1] - rows[i-2]
		d2 := rows[i] - rows[i-1]
		if absInt(d1-d2) > 1 {
			t.Errorf("log spacing uneven: %v", rows)
		}
	}
}

func TestChartLogYClampsNonPositive(t *testing.T) {
	c := &Chart{Width: 20, Height: 6, LogY: true}
	s := c.AddSeries("mixed")
	s.Add(0, -5, 0) // clamped, must not panic
	s.Add(1, 10, 0)
	if out := c.Render(); !strings.Contains(out, "*") {
		t.Errorf("clamped rendering broken:\n%s", out)
	}
	// All-nonpositive data must also render.
	c2 := &Chart{Width: 10, Height: 4, LogY: true}
	c2.AddSeries("neg").Add(0, -1, 0)
	if c2.Render() == "" {
		t.Error("all-negative log chart must still render")
	}
}

func absInt(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func TestTableMarkdown(t *testing.T) {
	tb := NewTable("x", "y")
	tb.AddRow("a|b", "2")
	md := tb.Markdown()
	want := "| x | y |\n|---|---|\n| a\\|b | 2 |\n"
	if md != want {
		t.Errorf("markdown = %q, want %q", md, want)
	}
}
