package service

import (
	"strings"
	"testing"

	nrt "nlfl/internal/runtime"
)

// TestFleetChainTopologyJobs runs concurrent jobs over a fleet whose
// workers hang off a daisy-chain: every job's report must carry the
// topology identity and capacity rows, every trace must hold hop relay
// records, and each job's per-edge capacity oracle must stay clean even
// while other jobs share the same hops.
func TestFleetChainTopologyJobs(t *testing.T) {
	cfg := testConfig()
	cfg.Topology = nrt.UniformChain(len(cfg.Speeds), 4e5)
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var handles []*JobHandle
	for i := 0; i < 6; i++ {
		handles = append(handles, mustSubmit(t, f, JobSpec{Tenant: "chain", N: 64, Strategy: "het", Seed: int64(i)}))
	}
	sawRelay := false
	for _, h := range handles {
		rep := waitOK(t, h)
		if rep.Topology != "chain" {
			t.Fatalf("job %d topology %q, want chain", rep.ID, rep.Topology)
		}
		// A chain has no aggregate star port to report.
		if rep.LinkCapacity != 0 {
			t.Fatalf("job %d reports aggregate capacity %v on a chain", rep.ID, rep.LinkCapacity)
		}
		if len(rep.Edges) != len(cfg.Speeds) {
			t.Fatalf("job %d: %d edge rows, want %d", rep.ID, len(rep.Edges), len(cfg.Speeds))
		}
		for _, e := range rep.Edges {
			if e.Capacity != 4e5 {
				t.Fatalf("job %d edge %s capacity %v", rep.ID, e.Name, e.Capacity)
			}
			// Per-job rows are capacity-only: the hops are shared by every
			// job, so no single job owns a volume ledger for them.
			if e.Volume != 0 || e.BusySeconds != 0 {
				t.Fatalf("job %d edge %s leaks fleet-wide counters: %+v", rep.ID, e.Name, e)
			}
		}
		if rep.Trace.RelayVolume() > 0 {
			sawRelay = true
		}
		checkJob(t, rep)
	}
	if !sawRelay {
		t.Fatal("no job recorded hop relay traffic")
	}
}

// TestFleetTwoSourceTopologyJobs: disjoint source links feeding one
// fleet; jobs must pass the per-edge oracle with both sources active.
func TestFleetTwoSourceTopologyJobs(t *testing.T) {
	cfg := testConfig()
	cfg.Topology = nrt.SplitTwoSource(len(cfg.Speeds), 3e5, 3e5)
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var handles []*JobHandle
	for i := 0; i < 4; i++ {
		handles = append(handles, mustSubmit(t, f, JobSpec{Tenant: "twosrc", N: 64, Seed: int64(i)}))
	}
	for _, h := range handles {
		rep := waitOK(t, h)
		if rep.Topology != "two-source" {
			t.Fatalf("job %d topology %q, want two-source", rep.ID, rep.Topology)
		}
		if len(rep.Edges) != 2 {
			t.Fatalf("job %d: %d edge rows, want 2", rep.ID, len(rep.Edges))
		}
		if rep.Trace.RelayVolume() != 0 {
			t.Fatalf("job %d recorded relays on single-hop routes", rep.ID)
		}
		checkJob(t, rep)
	}
}

func TestFleetTopologyValidation(t *testing.T) {
	cfg := testConfig()
	cfg.Topology = nrt.UniformChain(len(cfg.Speeds), 4e5)
	cfg.Link = nrt.Link{ElemsPerSecond: 2e5}
	if _, err := New(cfg); err == nil || !strings.Contains(err.Error(), "mutually exclusive") {
		t.Fatalf("Topology+Link accepted: %v", err)
	}
	cfg = testConfig()
	cfg.Topology = nrt.UniformChain(2, 4e5) // fleet has 4 workers
	if _, err := New(cfg); err == nil {
		t.Fatal("mis-sized topology accepted")
	}
}
