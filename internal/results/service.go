package results

// BenchServiceSchema identifies the BENCH_service.json payload, bumped
// on breaking field changes so consumers (CI's service-smoke gate) can
// reject files they do not understand.
const BenchServiceSchema = "nlfl/bench-service/v1"

// ServiceTenantStat is one tenant's ledger at the end of a sweep entry.
// The volume identities are the deterministic half of the record: for a
// tenant untouched by chaos, CommittedVolume equals PlanVolume exactly
// and WastedData is zero — that exactness is the isolation gate.
type ServiceTenantStat struct {
	Tenant    string `json:"tenant"`
	Submitted int    `json:"submitted"`
	Admitted  int    `json:"admitted"`
	Rejected  int    `json:"rejected"`
	Completed int    `json:"completed"`
	Failed    int    `json:"failed"`
	Cancelled int    `json:"cancelled"`
	// PlanVolume / ReplannedVolume / CommittedVolume / WastedData are the
	// tenant's summed per-job ledgers; ReclaimedCells counts cells the
	// fleet reclaimed from workers that crashed for this tenant's jobs.
	PlanVolume      float64 `json:"planVolume"`
	ReplannedVolume float64 `json:"replannedVolume"`
	CommittedVolume float64 `json:"committedVolume"`
	WastedData      float64 `json:"wastedData"`
	ReclaimedCells  float64 `json:"reclaimedCells"`
}

// ServiceBenchEntry is one measured Poisson-arrival run of the fleet
// service under one scheduling policy at one offered load. Latencies are
// wall-clock (submit to completion) and vary run to run; the admission
// counters and per-tenant volume ledgers are deterministic given the
// seed and the survived fault schedule.
type ServiceBenchEntry struct {
	// Policy is the scheduling discipline: "fifo", "srpt" or "ii".
	Policy string `json:"policy"`
	// LoadFactor is the offered load ρ relative to the fleet's calibrated
	// capacity; LambdaJobsPerSec the resulting Poisson arrival rate.
	LambdaJobsPerSec float64 `json:"lambdaJobsPerSec"`
	LoadFactor       float64 `json:"loadFactor"`
	// Chaos marks the entry whose chaos tenant ran with job-scoped faults.
	Chaos bool `json:"chaos"`
	// Autoscale marks the entry run with the capacity-model autoscaler at
	// threshold AutoscaleTheta: each job's slice is capped at the model's
	// speedup knee for its size. Knees records that knee per job size
	// ("48" → 3), and SliceOverKnee counts completed jobs whose slice
	// exceeded the knee for their size — 0 in any valid autoscale entry.
	Autoscale      bool           `json:"autoscale,omitempty"`
	AutoscaleTheta float64        `json:"autoscaleTheta,omitempty"`
	Knees          map[string]int `json:"knees,omitempty"`
	SliceOverKnee  int            `json:"sliceOverKnee,omitempty"`
	// Jobs is the offered job count; Admitted/Rejected/Completed/Failed
	// partition it (Rejected by admission control, Failed by exhausted
	// fault budgets).
	Jobs      int `json:"jobs"`
	Admitted  int `json:"admitted"`
	Rejected  int `json:"rejected"`
	Completed int `json:"completed"`
	Failed    int `json:"failed"`
	// Makespan is first submit to last completion; throughput counts
	// completed jobs over it.
	Makespan             float64 `json:"makespan"`
	ThroughputJobsPerSec float64 `json:"throughputJobsPerSec"`
	// Latency quantiles over completed jobs, seconds.
	LatencyP50  float64 `json:"latencyP50"`
	LatencyP99  float64 `json:"latencyP99"`
	LatencyMean float64 `json:"latencyMean"`
	LatencyMax  float64 `json:"latencyMax"`
	// MaxSliceWorkers and MeanSliceWorkers summarize admitted slice sizes
	// over completed jobs; MeanShippedPerJob is the mean input volume one
	// completed job shipped over the link (elements). The autoscaler's
	// no-free-lunch dividend shows up here: capping slices at the knee
	// trims shipped volume below the uncapped baseline at the same
	// (policy, load) point.
	MaxSliceWorkers   int     `json:"maxSliceWorkers"`
	MeanSliceWorkers  float64 `json:"meanSliceWorkers"`
	MeanShippedPerJob float64 `json:"meanShippedPerJob"`
	// Tenants is the per-tenant breakdown, sorted by tenant name.
	Tenants []ServiceTenantStat `json:"tenants"`
	// Violations counts trace-oracle findings across every completed job;
	// 0 in any valid file.
	Violations int `json:"violations"`
}

// ServiceBenchFile is the BENCH_service.json payload: the multi-tenant
// fleet service measured under a seeded Poisson arrival sweep, with and
// without job-scoped chaos.
type ServiceBenchFile struct {
	Schema string `json:"schema"`
	Seed   int64  `json:"seed"`
	Quick  bool   `json:"quick"`
	// WorkPerSecond is the token-bucket rate scale; Speeds the fleet's
	// speed profile; Bandwidth the shared master link's rate (0 = off).
	WorkPerSecond float64             `json:"workPerSecond"`
	Speeds        []float64           `json:"speeds"`
	Bandwidth     float64             `json:"bandwidth"`
	GoVersion     string              `json:"goVersion"`
	GOMAXPROCS    int                 `json:"gomaxprocs"`
	Entries       []ServiceBenchEntry `json:"entries"`
}

// SaveBenchService writes the service sweep file as indented JSON.
func SaveBenchService(path string, f ServiceBenchFile) error {
	return saveJSON(path, f)
}

// LoadBenchService reads a service sweep file.
func LoadBenchService(path string) (ServiceBenchFile, error) {
	var f ServiceBenchFile
	err := loadJSON(path, &f)
	return f, err
}
