package matmul

import (
	"errors"
	"math"
)

// Section 4.2 notes that "at the notable exception of recently introduced
// 2.5D schemes [42]" all matmul implementations build on the outer-product
// algorithm. This file models that exception (Solomonik & Demmel,
// Euro-Par 2011) so the repository can quantify the remark: with c
// replicas of the input spread across a √(p/c) × √(p/c) × c grid, the
// multiply phase moves Θ(n²/√(cp)) words per processor — a √c improvement
// over the 2D algorithm — at the cost of replicating the inputs c times.

// Comm25DMultiplyTotal returns the total multiply-phase volume of the
// 2.5D algorithm: 2n²·√(p/c) elements (c = 1 recovers the 2D algorithm's
// 2n²·(√p-1) up to the resident-data term).
func Comm25DMultiplyTotal(n float64, p, c int) (float64, error) {
	if err := check25D(p, c); err != nil {
		return 0, err
	}
	return 2 * n * n * math.Sqrt(float64(p)/float64(c)), nil
}

// Comm25DReplicationTotal returns the volume spent creating the c input
// replicas: each extra copy ships both n² inputs once, 2n²·(c-1) in
// total.
func Comm25DReplicationTotal(n float64, p, c int) (float64, error) {
	if err := check25D(p, c); err != nil {
		return 0, err
	}
	return 2 * n * n * float64(c-1), nil
}

// Comm25DTotal returns multiply + replication volume.
func Comm25DTotal(n float64, p, c int) (float64, error) {
	m, err := Comm25DMultiplyTotal(n, p, c)
	if err != nil {
		return 0, err
	}
	r, err := Comm25DReplicationTotal(n, p, c)
	if err != nil {
		return 0, err
	}
	return m + r, nil
}

// Best25DReplication returns the replication factor c ∈ [1, ⌈p^(1/3)⌉]
// minimizing Comm25DTotal, by direct search (the memory-unconstrained
// optimum; real deployments cap c by memory).
func Best25DReplication(n float64, p int) (int, float64, error) {
	if p < 1 {
		return 0, 0, errors.New("matmul: need p ≥ 1")
	}
	cMax := int(math.Ceil(math.Cbrt(float64(p))))
	bestC, bestV := 1, math.Inf(1)
	for c := 1; c <= cMax; c++ {
		if float64(c) > float64(p) {
			break
		}
		v, err := Comm25DTotal(n, p, c)
		if err != nil {
			return 0, 0, err
		}
		if v < bestV {
			bestC, bestV = c, v
		}
	}
	return bestC, bestV, nil
}

func check25D(p, c int) error {
	if p < 1 {
		return errors.New("matmul: need p ≥ 1")
	}
	if c < 1 || float64(c) > float64(p) {
		return errors.New("matmul: replication factor must be in [1, p]")
	}
	return nil
}
