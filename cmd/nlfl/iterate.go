package main

import (
	"context"
	"fmt"
	"strings"

	"nlfl/internal/faults"
	"nlfl/internal/iterative"
	nrt "nlfl/internal/runtime"
)

// runIterate drives one closed-loop iterative job from the command line:
// a deterministic power iteration whose rounds run on the measured pool,
// each round's split a water-filling plan over the selected mode's rates
// (assumed, estimated or omniscient). The output is split in two on
// purpose: the residual trajectory is exact master-side float64
// arithmetic — byte-identical across modes, seeds and reruns, the part
// golden tests pin — while the makespans and control decisions below the
// "control and timing" line are measured wall-clock and vary run to run.
func runIterate(args []string) error {
	fs := newFlagSet("iterate")
	n := fs.Int("n", 96, "vector length (each round computes the n×n outer product)")
	tie := fs.Float64("tie", 0.999, "runner-up tie in (0,1): sets the deterministic round count (0.6 ≈ 6, 0.999 ≈ 15, 0.9999 ≈ 18)")
	rounds := fs.Int("rounds", 30, "round budget before the job stalls")
	tol := fs.Float64("tol", 1e-9, "L2 residual declaring convergence")
	mode := fs.String("mode", "adaptive", "planning mode: static, adaptive or oracle")
	speeds := fs.String("speeds", "1,2,3,4", "comma-separated worker speeds")
	rate := fs.Float64("rate", 2e4, "cells/s per unit speed")
	replan := fs.Int("replan", 1, "consider a new split every k rounds (drift and death bypass the cadence)")
	gamma := fs.Float64("gamma", 0, "water-filling nonlinearity coefficient (0 = linear)")
	driftWorker := fs.Int("drift-worker", -1, "worker to slow mid-run (-1 = no drift)")
	driftFactor := fs.Float64("drift-factor", 0.5, "drifted worker's speed multiplier")
	driftRound := fs.Int("drift-round", 2, "round the drift starts")
	seed := fs.Int64("seed", 42, "fault-scenario seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *n <= 0 {
		return fmt.Errorf("iterate: invalid problem size %d", *n)
	}
	switch iterative.Mode(*mode) {
	case iterative.ModeStatic, iterative.ModeAdaptive, iterative.ModeOracle:
	default:
		return fmt.Errorf("iterate: unknown mode %q (want static, adaptive or oracle)", *mode)
	}
	if *tie <= 0 || *tie >= 1 {
		return fmt.Errorf("iterate: -tie %v outside (0,1)", *tie)
	}
	sp, err := parseFloats(*speeds)
	if err != nil {
		return err
	}
	if *driftWorker >= len(sp) {
		return fmt.Errorf("iterate: -drift-worker %d outside the fleet of %d", *driftWorker, len(sp))
	}
	if *driftFactor <= 0 || *driftFactor > 1 {
		return fmt.Errorf("iterate: -drift-factor %v outside (0,1]", *driftFactor)
	}

	opts := iterative.Options{
		N:             *n,
		X0:            iterative.SeedVector(*n, *tie),
		MaxRounds:     *rounds,
		Tol:           *tol,
		Mode:          iterative.Mode(*mode),
		Speeds:        sp,
		WorkPerSecond: *rate,
		Burst:         1,
		VerifyEvery:   101,
		ReplanEvery:   *replan,
		Gamma:         *gamma,
		Estimator:     iterative.EstimatorConfig{DriftRounds: 2},
	}
	if *driftWorker >= 0 {
		w, f, r0, s := *driftWorker, *driftFactor, *driftRound, *seed
		opts.Chaos = func(round int) nrt.Chaos {
			if round < r0 {
				return nrt.Chaos{}
			}
			return nrt.Chaos{Scenario: faults.Scenario{Seed: s, Events: []faults.Event{
				{Kind: faults.Straggler, Worker: w, Time: 0, Until: 1e9, Factor: f},
			}}}
		}
	}
	if iterative.Mode(*mode) == iterative.ModeOracle {
		// The omniscient baseline: nominal rates, with the drift (if any)
		// handed over the moment it starts.
		opts.OracleRates = func(round int) []float64 {
			rates := make([]float64, len(sp))
			for w, s := range sp {
				rates[w] = s * *rate
			}
			if *driftWorker >= 0 && round >= *driftRound {
				rates[*driftWorker] *= *driftFactor
			}
			return rates
		}
	}

	fmt.Printf("iterative power method: n=%d mode=%s tie=%.4g fleet of %d (speeds %s) rate %.3g cells/s\n",
		*n, *mode, *tie, len(sp), *speeds, *rate)
	if *driftWorker >= 0 {
		fmt.Printf("drift: worker %d slows to %.2fx from round %d\n", *driftWorker, *driftFactor, *driftRound)
	}

	res, runErr := iterative.Run(context.Background(), opts)
	if res == nil {
		return runErr
	}
	fmt.Println("residuals (exact master arithmetic — identical for every mode and rerun):")
	for _, r := range res.Rounds {
		fmt.Printf("  round %3d  residual %.6e\n", r.Round, r.Residual)
	}
	if res.Converged {
		fmt.Printf("converged in %d rounds to dominant index %d\n", len(res.Rounds), res.Dominant)
	} else {
		fmt.Printf("did not converge in %d rounds (dominant so far %d)\n", len(res.Rounds), res.Dominant)
	}
	fmt.Println("control and timing (measured wall-clock — varies run to run):")
	for _, r := range res.Rounds {
		marks := ""
		if r.Replanned {
			marks += "  replanned"
		}
		if r.Fallback {
			marks += "  fallback"
		}
		if r.Degraded > 0 {
			marks += fmt.Sprintf("  degraded=%d", r.Degraded)
		}
		fmt.Printf("  round %3d  makespan %.5f s%s\n", r.Round, r.Makespan, marks)
	}
	fmt.Printf("  replans %d, fallbacks %d, reanchors %d, violations %d\n",
		res.Replans, res.Fallbacks, res.Reanchors, res.Violations)
	if len(res.DeadWorkers) > 0 {
		fmt.Printf("  dead workers %s\n", strings.Trim(fmt.Sprint(res.DeadWorkers), "[]"))
	}
	fmt.Printf("  total makespan %.4f s\n", res.TotalMakespan)
	return runErr
}
