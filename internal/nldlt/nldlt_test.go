package nldlt

import (
	"math"
	"testing"
	"testing/quick"

	"nlfl/internal/dessim"
	"nlfl/internal/platform"
	"nlfl/internal/stats"
)

func homPlatform(t *testing.T, p int) *platform.Platform {
	t.Helper()
	pl, err := platform.Homogeneous(p, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	return pl
}

func hetPlatform(t *testing.T, seed int64, p int) *platform.Platform {
	t.Helper()
	r := stats.NewRNG(seed)
	ws := make([]platform.Worker, p)
	for i := range ws {
		ws[i] = platform.Worker{Speed: 0.5 + 4*r.Float64(), Bandwidth: 0.5 + 4*r.Float64()}
	}
	pl, err := platform.New(ws)
	if err != nil {
		t.Fatal(err)
	}
	return pl
}

func TestLoadValidate(t *testing.T) {
	cases := []struct {
		l       Load
		wantErr bool
	}{
		{Load{N: 100, Alpha: 2}, false},
		{Load{N: 100, Alpha: 1}, false},
		{Load{N: 0, Alpha: 2}, true},
		{Load{N: -5, Alpha: 2}, true},
		{Load{N: 100, Alpha: 0.5}, true},
		{Load{N: math.NaN(), Alpha: 2}, true},
		{Load{N: 100, Alpha: math.Inf(1)}, true},
	}
	for _, c := range cases {
		if err := c.l.Validate(); (err != nil) != c.wantErr {
			t.Errorf("Validate(%+v) err=%v wantErr=%v", c.l, err, c.wantErr)
		}
	}
}

func TestUnprocessedFractionClosedForm(t *testing.T) {
	cases := []struct {
		p     int
		alpha float64
		want  float64
	}{
		{10, 2, 0.9},    // 1 - 1/10
		{100, 2, 0.99},  // 1 - 1/100
		{10, 3, 0.99},   // 1 - 1/100
		{4, 1, 0},       // linear loads lose nothing
		{1, 2, 0},       // single worker does all the work
		{100, 1.5, 0.9}, // 1 - 1/10
	}
	for _, c := range cases {
		got := UnprocessedFraction(c.p, c.alpha)
		if math.Abs(got-c.want) > 1e-12 {
			t.Errorf("UnprocessedFraction(%d, %g) = %v, want %v", c.p, c.alpha, got, c.want)
		}
	}
}

func TestMultiInstallmentMakesItWorse(t *testing.T) {
	// m=1 reduces to the single-phase fraction.
	if got, want := MultiInstallmentWorkFraction(10, 1, 2), 0.1; math.Abs(got-want) > 1e-12 {
		t.Errorf("m=1 fraction = %v, want %v", got, want)
	}
	// The fraction strictly decreases with m for α > 1 ...
	prev := 1.0
	for _, m := range []int{1, 2, 4, 16} {
		f := MultiInstallmentWorkFraction(8, m, 2)
		if f >= prev {
			t.Errorf("fraction should shrink with installments: %v at m=%d", f, m)
		}
		prev = f
	}
	// ... and is constant 1 for α = 1 (linear loads don't care).
	for _, m := range []int{1, 3, 9} {
		if f := MultiInstallmentWorkFraction(8, m, 1); math.Abs(f-1) > 1e-12 {
			t.Errorf("linear multi-installment fraction = %v, want 1", f)
		}
	}
	// Cross-check against a literal equal-split over m·P virtual workers:
	// same chunk size, same total work.
	const alpha = 2.5
	f := MultiInstallmentWorkFraction(4, 3, alpha)
	want := UnprocessedFraction(12, alpha)
	if math.Abs((1-f)-want) > 1e-12 {
		t.Errorf("(1 - fraction) = %v, want UnprocessedFraction(12) = %v", 1-f, want)
	}
}

func TestEqualSplitHomogeneous(t *testing.T) {
	const n, alpha, p = 1000.0, 2.0, 10
	pl := homPlatform(t, p)
	res, err := EqualSplit(pl, Load{N: n, Alpha: alpha})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Validate(); err != nil {
		t.Fatal(err)
	}
	// Makespan = (N/P)c + (N/P)^α w = 100 + 10000.
	if math.Abs(res.Makespan-10100) > 1e-9 {
		t.Errorf("makespan = %v, want 10100", res.Makespan)
	}
	// Work fraction = 1/P^(α-1) = 0.1.
	if math.Abs(res.WorkFraction()-0.1) > 1e-12 {
		t.Errorf("work fraction = %v, want 0.1", res.WorkFraction())
	}
	if math.Abs((1-res.WorkFraction())-UnprocessedFraction(p, alpha)) > 1e-12 {
		t.Error("equal split must match the closed form on homogeneous platforms")
	}
}

func TestEqualSplitRejectsBadLoad(t *testing.T) {
	pl := homPlatform(t, 2)
	if _, err := EqualSplit(pl, Load{N: -1, Alpha: 2}); err == nil {
		t.Error("negative load should fail")
	}
}

func TestOptimalParallelHomogeneousEqualsEqualSplit(t *testing.T) {
	pl := homPlatform(t, 8)
	l := Load{N: 256, Alpha: 2}
	opt, err := OptimalParallel(pl, l)
	if err != nil {
		t.Fatal(err)
	}
	eq, _ := EqualSplit(pl, l)
	if math.Abs(opt.Makespan-eq.Makespan) > 1e-6*eq.Makespan {
		t.Errorf("optimal %v vs equal split %v on homogeneous platform", opt.Makespan, eq.Makespan)
	}
	for i, x := range opt.Data {
		if math.Abs(x-32) > 1e-6 {
			t.Errorf("chunk %d = %v, want 32", i, x)
		}
	}
}

func TestOptimalParallelEqualFinishTimes(t *testing.T) {
	pl := hetPlatform(t, 1, 7)
	l := Load{N: 500, Alpha: 2.5}
	res, err := OptimalParallel(pl, l)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Validate(); err != nil {
		t.Fatal(err)
	}
	for i, x := range res.Data {
		w := pl.Worker(i)
		finish := w.CommTime(x) + w.PowerCompTime(x, l.Alpha)
		if math.Abs(finish-res.Makespan) > 1e-6*res.Makespan {
			t.Errorf("worker %d finish %v vs makespan %v", i, finish, res.Makespan)
		}
	}
}

func TestOptimalParallelBeatsEqualSplitHeterogeneous(t *testing.T) {
	pl := hetPlatform(t, 2, 10)
	l := Load{N: 300, Alpha: 2}
	opt, err := OptimalParallel(pl, l)
	if err != nil {
		t.Fatal(err)
	}
	eq, _ := EqualSplit(pl, l)
	if opt.Makespan > eq.Makespan+1e-6 {
		t.Errorf("optimal %v worse than equal split %v", opt.Makespan, eq.Makespan)
	}
}

func TestOptimalOnePortEqualFinishTimes(t *testing.T) {
	pl := hetPlatform(t, 3, 5)
	l := Load{N: 200, Alpha: 2}
	res, err := OptimalOnePort(pl, l, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Validate(); err != nil {
		t.Fatal(err)
	}
	offset := 0.0
	for _, i := range res.Order {
		w := pl.Worker(i)
		offset += w.CommTime(res.Data[i])
		finish := offset + w.PowerCompTime(res.Data[i], l.Alpha)
		if math.Abs(finish-res.Makespan) > 1e-5*res.Makespan {
			t.Errorf("worker %d finish %v vs makespan %v", i, finish, res.Makespan)
		}
	}
}

func TestOptimalOnePortSlowerThanParallel(t *testing.T) {
	pl := hetPlatform(t, 4, 6)
	l := Load{N: 150, Alpha: 2}
	par, err := OptimalParallel(pl, l)
	if err != nil {
		t.Fatal(err)
	}
	op, err := OptimalOnePort(pl, l, nil)
	if err != nil {
		t.Fatal(err)
	}
	if op.Makespan < par.Makespan-1e-6*par.Makespan {
		t.Errorf("one-port %v faster than parallel %v", op.Makespan, par.Makespan)
	}
}

func TestOptimalOnePortOrderValidation(t *testing.T) {
	pl := homPlatform(t, 3)
	l := Load{N: 10, Alpha: 2}
	for _, order := range [][]int{{0}, {0, 0, 1}, {0, 1, 5}} {
		if _, err := OptimalOnePort(pl, l, order); err == nil {
			t.Errorf("order %v should fail", order)
		}
	}
}

func TestResultChunksMatchSimulator(t *testing.T) {
	pl := hetPlatform(t, 5, 4)
	l := Load{N: 100, Alpha: 2}

	par, err := OptimalParallel(pl, l)
	if err != nil {
		t.Fatal(err)
	}
	tl, err := dessim.RunSingleRound(pl, par.Chunks(), dessim.ParallelLinks)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(tl.Makespan-par.Makespan) > 1e-5*par.Makespan {
		t.Errorf("parallel: simulated %v vs solver %v", tl.Makespan, par.Makespan)
	}

	op, err := OptimalOnePort(pl, l, nil)
	if err != nil {
		t.Fatal(err)
	}
	tl2, err := dessim.RunSingleRound(pl, op.Chunks(), dessim.OnePort)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(tl2.Makespan-op.Makespan) > 1e-5*op.Makespan {
		t.Errorf("one-port: simulated %v vs solver %v", tl2.Makespan, op.Makespan)
	}
}

func TestWorkFractionVanishesWithP(t *testing.T) {
	// The headline negative result: even with an optimal allocation, the
	// processed fraction tends to 0 as P grows.
	l := Load{N: 10000, Alpha: 2}
	prev := 1.1
	for _, p := range []int{1, 2, 4, 16, 64, 256} {
		pl := homPlatform(t, p)
		res, err := OptimalParallel(pl, l)
		if err != nil {
			t.Fatal(err)
		}
		frac := res.WorkFraction()
		want := 1 / float64(p) // 1/P^(α-1) with α=2
		if math.Abs(frac-want) > 1e-3 {
			t.Errorf("P=%d work fraction = %v, want ≈ %v", p, frac, want)
		}
		if frac >= prev {
			t.Errorf("work fraction must decrease with P: %v after %v", frac, prev)
		}
		prev = frac
	}
}

func TestFractionSweep(t *testing.T) {
	rows, err := FractionSweep([]int{2, 10, 100}, []float64{1.5, 2, 3}, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 9 {
		t.Fatalf("got %d rows, want 9", len(rows))
	}
	for _, r := range rows {
		if math.Abs(r.EqualSplit-r.ClosedForm) > 1e-9 {
			t.Errorf("%s: equal split disagrees with closed form", r)
		}
		if math.Abs(r.Parallel-r.ClosedForm) > 1e-3 {
			t.Errorf("%s: optimal parallel disagrees with closed form", r)
		}
		// One-port serialization forces unequal chunks; by convexity of
		// x^α that *raises* ΣXᵢ^α, so its unprocessed fraction can be a
		// little below the parallel model's — but it must stay far from 0
		// for any sizeable platform (the no-free-lunch still bites), and
		// it pays for the extra work with a strictly larger makespan.
		if r.P >= 10 && r.Alpha >= 1.5 && r.OnePort < 0.5 {
			t.Errorf("%s: one-port unprocessed fraction suspiciously small", r)
		}
		if r.OnePortMakespan < r.ParallelMakespan-1e-6 {
			t.Errorf("%s: one-port makespan should not beat parallel", r)
		}
		if r.String() == "" {
			t.Error("empty row rendering")
		}
	}
	// α=2, P=100 → 0.99 (the paper's "all the work remains" regime).
	found := false
	for _, r := range rows {
		if r.P == 100 && r.Alpha == 2 {
			found = true
			if math.Abs(r.ClosedForm-0.99) > 1e-12 {
				t.Errorf("closed form = %v, want 0.99", r.ClosedForm)
			}
		}
	}
	if !found {
		t.Error("missing P=100 α=2 row")
	}
}

// Property: the optimal parallel allocation is feasible and its makespan
// is no worse than equal split, for arbitrary heterogeneous platforms and
// α ∈ [1, 3].
func TestOptimalParallelProperty(t *testing.T) {
	f := func(seed int64, np uint8, alphaRaw uint8) bool {
		p := int(np%12) + 1
		alpha := 1 + 2*float64(alphaRaw)/255
		r := stats.NewRNG(seed)
		ws := make([]platform.Worker, p)
		for i := range ws {
			ws[i] = platform.Worker{Speed: 0.2 + 5*r.Float64(), Bandwidth: 0.2 + 5*r.Float64()}
		}
		pl, err := platform.New(ws)
		if err != nil {
			return false
		}
		l := Load{N: 10 + 100*r.Float64(), Alpha: alpha}
		opt, err := OptimalParallel(pl, l)
		if err != nil || opt.Validate() != nil {
			return false
		}
		eq, err := EqualSplit(pl, l)
		if err != nil {
			return false
		}
		return opt.Makespan <= eq.Makespan*(1+1e-9)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: work fraction never exceeds 1 and equals 1 only for α=1 or
// single-worker platforms.
func TestWorkFractionBoundsProperty(t *testing.T) {
	f := func(seed int64, np uint8) bool {
		p := int(np%16) + 2
		pl, err := platform.Homogeneous(p, 1, 1)
		if err != nil {
			return false
		}
		r := stats.NewRNG(seed)
		alpha := 1 + 2*r.Float64()
		l := Load{N: 100, Alpha: alpha}
		res, err := OptimalParallel(pl, l)
		if err != nil {
			return false
		}
		frac := res.WorkFraction()
		if frac <= 0 || frac > 1+1e-9 {
			return false
		}
		if alpha > 1.05 && frac > 0.999 {
			return false // should lose work on ≥2 workers with α > 1
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestIllusorySpeedup(t *testing.T) {
	l := Load{N: 1e6, Alpha: 2}
	illusory, honest := IllusorySpeedup(100, l)
	// Superlinear illusion: near P^α = 10⁴ for large N.
	if illusory < 5000 {
		t.Errorf("illusory speedup = %v, expected ≫ P", illusory)
	}
	// Honest speedup accounts for the vanished work: at most P.
	if honest > 100+1e-6 {
		t.Errorf("honest speedup = %v must not exceed P", honest)
	}
	if honest < 90 {
		t.Errorf("honest speedup = %v, expected ≈ P for large N", honest)
	}
	// Relationship: honest = illusory / P^(α-1).
	if math.Abs(honest-illusory/100) > 1e-9*illusory {
		t.Error("speedup accounting identity broken")
	}
	// Linear loads have no illusion.
	il, ho := IllusorySpeedup(10, Load{N: 1000, Alpha: 1})
	if math.Abs(il-ho) > 1e-12 {
		t.Errorf("α=1: illusory %v != honest %v", il, ho)
	}
}
