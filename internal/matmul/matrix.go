package matmul

import (
	"errors"
	"fmt"
	"math"

	"nlfl/internal/stats"
)

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// New returns a zero Rows×Cols matrix.
func New(rows, cols int) *Matrix {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("matmul: invalid shape %d×%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// Random returns a Rows×Cols matrix with entries uniform in [-1, 1).
func Random(rows, cols int, seed int64) *Matrix {
	m := New(rows, cols)
	r := stats.NewRNG(seed)
	for i := range m.Data {
		m.Data[i] = 2*r.Float64() - 1
	}
	return m
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix {
	m := New(n, n)
	for i := 0; i < n; i++ {
		m.Data[i*n+i] = 1
	}
	return m
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Equal reports whether m and o agree element-wise within tol.
func (m *Matrix) Equal(o *Matrix, tol float64) bool {
	if m.Rows != o.Rows || m.Cols != o.Cols {
		return false
	}
	for i := range m.Data {
		if math.Abs(m.Data[i]-o.Data[i]) > tol {
			return false
		}
	}
	return true
}

// checkMul validates multiplication shapes.
func checkMul(a, b *Matrix) error {
	if a.Cols != b.Rows {
		return fmt.Errorf("matmul: shape mismatch %d×%d · %d×%d", a.Rows, a.Cols, b.Rows, b.Cols)
	}
	return nil
}

// Naive computes C = A·B with the textbook triple loop (ikj order for
// cache friendliness). It is the reference implementation.
func Naive(a, b *Matrix) (*Matrix, error) {
	if err := checkMul(a, b); err != nil {
		return nil, err
	}
	c := New(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		for k := 0; k < a.Cols; k++ {
			aik := a.Data[i*a.Cols+k]
			if aik == 0 {
				continue
			}
			cRow := c.Data[i*c.Cols:]
			bRow := b.Data[k*b.Cols:]
			for j := 0; j < b.Cols; j++ {
				cRow[j] += aik * bRow[j]
			}
		}
	}
	return c, nil
}

// Blocked computes C = A·B with loop blocking (tile size bs), the standard
// high-performance decomposition (ref [43]).
func Blocked(a, b *Matrix, bs int) (*Matrix, error) {
	if err := checkMul(a, b); err != nil {
		return nil, err
	}
	if bs <= 0 {
		return nil, errors.New("matmul: block size must be positive")
	}
	c := New(a.Rows, b.Cols)
	for ii := 0; ii < a.Rows; ii += bs {
		iMax := min(ii+bs, a.Rows)
		for kk := 0; kk < a.Cols; kk += bs {
			kMax := min(kk+bs, a.Cols)
			for jj := 0; jj < b.Cols; jj += bs {
				jMax := min(jj+bs, b.Cols)
				for i := ii; i < iMax; i++ {
					for k := kk; k < kMax; k++ {
						aik := a.Data[i*a.Cols+k]
						cRow := c.Data[i*c.Cols:]
						bRow := b.Data[k*b.Cols:]
						for j := jj; j < jMax; j++ {
							cRow[j] += aik * bRow[j]
						}
					}
				}
			}
		}
	}
	return c, nil
}

// Parallel computes C = A·B splitting row bands across `workers`
// goroutines. Each band runs the tiled kernel at the autotuned tile size
// (see AutotuneTile), so this is also the fast path.
func Parallel(a, b *Matrix, workers int) (*Matrix, error) {
	return ParallelTiled(a, b, workers)
}

// OuterProduct computes C = A·B as a sum of N rank-1 updates
// C += A[:,k] × B[k,:] — the algorithmic skeleton of the paper's Figure 3:
// at step k the k-th column of A and the k-th row of B are broadcast and
// every processor updates its tile with their outer product. Here the
// "processors" are fused into one address space; the layout packages
// account for who would receive what.
func OuterProduct(a, b *Matrix) (*Matrix, error) {
	if err := checkMul(a, b); err != nil {
		return nil, err
	}
	c := New(a.Rows, b.Cols)
	for k := 0; k < a.Cols; k++ {
		bRow := b.Data[k*b.Cols:]
		for i := 0; i < a.Rows; i++ {
			aik := a.Data[i*a.Cols+k]
			if aik == 0 {
				continue
			}
			cRow := c.Data[i*c.Cols:]
			for j := 0; j < b.Cols; j++ {
				cRow[j] += aik * bRow[j]
			}
		}
	}
	return c, nil
}

// VectorOuter computes the outer product a̅ᵀ × b̅ of two vectors — the
// Section 4.1 workload (N data, N² work).
func VectorOuter(a, b []float64) *Matrix {
	m := New(len(a), len(b))
	for i, av := range a {
		row := m.Data[i*m.Cols:]
		for j, bv := range b {
			row[j] = av * bv
		}
	}
	return m
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
