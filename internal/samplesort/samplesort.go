package samplesort

import (
	"cmp"
	"errors"
	"fmt"
	"math"
	"slices"
	"sort"
	"sync"

	"nlfl/internal/stats"
)

// Config controls a sample sort run.
type Config struct {
	// Workers is p, the number of buckets / parallel sorters (≥ 1).
	Workers int
	// Oversampling is s; 0 selects the paper's log²N.
	Oversampling int
	// Seed drives splitter sampling; runs with equal seeds are identical.
	Seed int64
	// Parallel enables goroutine-parallel Step 3 (on by default via
	// Sort; disable for deterministic single-thread profiling).
	Sequential bool
}

// Trace reports what happened in each phase, mirroring the quantities of
// Section 3.1's cost analysis.
type Trace struct {
	N            int
	Workers      int
	Oversampling int
	// SampleSize is s·p (clamped to N).
	SampleSize int
	// BucketSizes[i] is the number of keys routed to bucket i.
	BucketSizes []int
	// MaxBucket is max BucketSizes.
	MaxBucket int
	// Comparisons* count the comparison work per phase, the currency of
	// the paper's N·log N accounting.
	ComparisonsSample  float64 // Step 1: s·p·log(s·p)
	ComparisonsRouting float64 // Step 2: N·log p
	ComparisonsBuckets float64 // Step 3: Σ nᵢ·log nᵢ
}

// MaxBucketRatio returns MaxBucket / (N/p), the balance metric bounded by
// 1 + (1/log N)^(1/3) with high probability.
func (t Trace) MaxBucketRatio() float64 {
	if t.N == 0 {
		return 0
	}
	return float64(t.MaxBucket) / (float64(t.N) / float64(t.Workers))
}

// DefaultOversampling returns the paper's oversampling ratio s = ⌈log²N⌉
// (natural-log-free: log₂ is used throughout, as is conventional for
// comparison counts), with a floor of 1.
func DefaultOversampling(n int) int {
	if n < 2 {
		return 1
	}
	l := math.Log2(float64(n))
	s := int(math.Ceil(l * l))
	if s < 1 {
		s = 1
	}
	return s
}

// Sort sample-sorts xs into a new slice using cfg, returning the sorted
// keys and the phase trace. The input is not modified.
func Sort[T cmp.Ordered](xs []T, cfg Config) ([]T, Trace, error) {
	tr := Trace{N: len(xs), Workers: cfg.Workers, Oversampling: cfg.Oversampling}
	if cfg.Workers < 1 {
		return nil, tr, errors.New("samplesort: need at least one worker")
	}
	if cfg.Oversampling == 0 {
		cfg.Oversampling = DefaultOversampling(len(xs))
		tr.Oversampling = cfg.Oversampling
	}
	if cfg.Oversampling < 1 {
		return nil, tr, fmt.Errorf("samplesort: invalid oversampling %d", cfg.Oversampling)
	}
	p := cfg.Workers
	if len(xs) == 0 {
		tr.BucketSizes = make([]int, p)
		return nil, tr, nil
	}

	// Step 1: sample and select splitters.
	splitters, sampleSize := selectSplitters(xs, p, cfg.Oversampling, cfg.Seed)
	tr.SampleSize = sampleSize
	if sampleSize > 1 {
		tr.ComparisonsSample = float64(sampleSize) * math.Log2(float64(sampleSize))
	}

	// Step 2: route keys to buckets by binary search over the splitters.
	buckets := make([][]T, p)
	for _, x := range xs {
		b := sort.Search(len(splitters), func(i int) bool { return x < splitters[i] })
		buckets[b] = append(buckets[b], x)
	}
	if p > 1 {
		tr.ComparisonsRouting = float64(len(xs)) * math.Log2(float64(p))
	}

	// Step 3: sort buckets, one worker per bucket.
	if cfg.Sequential {
		for _, b := range buckets {
			slices.Sort(b)
		}
	} else {
		var wg sync.WaitGroup
		for _, b := range buckets {
			if len(b) < 2 {
				continue
			}
			wg.Add(1)
			go func(b []T) {
				defer wg.Done()
				slices.Sort(b)
			}(b)
		}
		wg.Wait()
	}

	tr.BucketSizes = make([]int, p)
	out := make([]T, 0, len(xs))
	for i, b := range buckets {
		tr.BucketSizes[i] = len(b)
		if len(b) > tr.MaxBucket {
			tr.MaxBucket = len(b)
		}
		if len(b) > 1 {
			tr.ComparisonsBuckets += float64(len(b)) * math.Log2(float64(len(b)))
		}
		out = append(out, b...)
	}
	return out, tr, nil
}

// selectSplitters draws min(s·p, n) random keys, sorts them, and returns
// the p-1 splitters of ranks s, 2s, …, (p-1)s (scaled when the sample was
// clamped). Splitters are non-decreasing by construction.
func selectSplitters[T cmp.Ordered](xs []T, p, s int, seed int64) ([]T, int) {
	if p == 1 {
		return nil, 0
	}
	want := s * p
	if want > len(xs) {
		want = len(xs)
	}
	r := stats.NewRNG(seed)
	sample := make([]T, want)
	for i := range sample {
		sample[i] = xs[r.Intn(len(xs))]
	}
	slices.Sort(sample)
	splitters := make([]T, 0, p-1)
	for i := 1; i < p; i++ {
		rank := i * len(sample) / p
		if rank >= len(sample) {
			rank = len(sample) - 1
		}
		splitters = append(splitters, sample[rank])
	}
	return splitters, want
}

// SortParallelRouting is Sort with a goroutine-parallel Step 2: the input
// is split into shards, each shard routes into its own per-bucket
// buffers, and the buckets are concatenated shard-by-shard (so the result
// is identical to Sort's for the same seed). On multicore hosts this
// removes the serial N·log p routing bottleneck that the Section 3.1 cost
// model charges to the master.
func SortParallelRouting[T cmp.Ordered](xs []T, cfg Config, shards int) ([]T, Trace, error) {
	tr := Trace{N: len(xs), Workers: cfg.Workers, Oversampling: cfg.Oversampling}
	if cfg.Workers < 1 {
		return nil, tr, errors.New("samplesort: need at least one worker")
	}
	if shards < 1 {
		return nil, tr, errors.New("samplesort: need at least one shard")
	}
	if cfg.Oversampling == 0 {
		cfg.Oversampling = DefaultOversampling(len(xs))
		tr.Oversampling = cfg.Oversampling
	}
	if cfg.Oversampling < 1 {
		return nil, tr, fmt.Errorf("samplesort: invalid oversampling %d", cfg.Oversampling)
	}
	p := cfg.Workers
	if len(xs) == 0 {
		tr.BucketSizes = make([]int, p)
		return nil, tr, nil
	}
	splitters, sampleSize := selectSplitters(xs, p, cfg.Oversampling, cfg.Seed)
	tr.SampleSize = sampleSize
	if sampleSize > 1 {
		tr.ComparisonsSample = float64(sampleSize) * math.Log2(float64(sampleSize))
	}

	// Step 2, sharded: shard s routes xs[s·len/shards : (s+1)·len/shards].
	local := make([][][]T, shards)
	var wg sync.WaitGroup
	for s := 0; s < shards; s++ {
		lo := s * len(xs) / shards
		hi := (s + 1) * len(xs) / shards
		local[s] = make([][]T, p)
		wg.Add(1)
		go func(s, lo, hi int) {
			defer wg.Done()
			for _, x := range xs[lo:hi] {
				b := sort.Search(len(splitters), func(i int) bool { return x < splitters[i] })
				local[s][b] = append(local[s][b], x)
			}
		}(s, lo, hi)
	}
	wg.Wait()
	if p > 1 {
		tr.ComparisonsRouting = float64(len(xs)) * math.Log2(float64(p))
	}

	// Merge shards per bucket (shard order preserves Sort's semantics) and
	// run Step 3 in parallel.
	buckets := make([][]T, p)
	for b := 0; b < p; b++ {
		for s := 0; s < shards; s++ {
			buckets[b] = append(buckets[b], local[s][b]...)
		}
	}
	for _, b := range buckets {
		if len(b) < 2 {
			continue
		}
		wg.Add(1)
		go func(b []T) {
			defer wg.Done()
			slices.Sort(b)
		}(b)
	}
	wg.Wait()

	tr.BucketSizes = make([]int, p)
	out := make([]T, 0, len(xs))
	for i, b := range buckets {
		tr.BucketSizes[i] = len(b)
		if len(b) > tr.MaxBucket {
			tr.MaxBucket = len(b)
		}
		if len(b) > 1 {
			tr.ComparisonsBuckets += float64(len(b)) * math.Log2(float64(len(b)))
		}
		out = append(out, b...)
	}
	return out, tr, nil
}
