package partition

import (
	"fmt"
	"math"
	"math/bits"
)

// MaxGuillotineP bounds the exhaustive optimal search: the recursion
// enumerates every guillotine cut tree, (2p-3)!!·2^(p-1) of them, so it is
// only tractable for small p.
const MaxGuillotineP = 8

// GuillotineOptimal returns the minimum sum of half-perimeters over all
// *guillotine* partitions (recursive straight cuts through the full
// current rectangle) of the unit square into the given areas. Guillotine
// partitions strictly contain column-based ones, so this is a tighter
// reference than PeriSum for quantifying the column-based DP's gap to
// optimality (the general problem is NP-complete, [41]).
func GuillotineOptimal(areas []float64) (float64, error) {
	norm, err := Normalize(areas)
	if err != nil {
		return 0, err
	}
	p := len(norm)
	if p > MaxGuillotineP {
		return 0, fmt.Errorf("partition: guillotine search limited to p ≤ %d, got %d", MaxGuillotineP, p)
	}
	// areaOf[mask] caches subset areas.
	full := (1 << p) - 1
	areaOf := make([]float64, full+1)
	for mask := 1; mask <= full; mask++ {
		low := mask & (-mask)
		areaOf[mask] = areaOf[mask^low] + norm[bits.TrailingZeros32(uint32(low))]
	}
	var solve func(mask int, w, h float64) float64
	solve = func(mask int, w, h float64) float64 {
		if mask&(mask-1) == 0 {
			return w + h
		}
		best := math.Inf(1)
		// Enumerate proper submasks containing the lowest set bit (each
		// unordered split once).
		low := mask & (-mask)
		rest := mask ^ low
		for sub := (rest - 1) & rest; ; sub = (sub - 1) & rest {
			s1 := sub | low // proper: sub < rest, so s1 never equals mask
			s2 := mask ^ s1
			frac := areaOf[s1] / areaOf[mask]
			// Vertical cut: s1 gets the left w·frac slice.
			v := solve(s1, w*frac, h) + solve(s2, w*(1-frac), h)
			if v < best {
				best = v
			}
			// Horizontal cut.
			hz := solve(s1, w, h*frac) + solve(s2, w, h*(1-frac))
			if hz < best {
				best = hz
			}
			if sub == 0 {
				break
			}
		}
		return best
	}
	return solve(full, 1, 1), nil
}

// ColumnGapToGuillotine returns (PeriSum cost)/(guillotine optimum) for
// one area vector — the measured price of restricting to column-based
// layouts.
func ColumnGapToGuillotine(areas []float64) (float64, error) {
	ps, err := PeriSum(areas)
	if err != nil {
		return 0, err
	}
	opt, err := GuillotineOptimal(areas)
	if err != nil {
		return 0, err
	}
	return ps.SumHalfPerimeters() / opt, nil
}
