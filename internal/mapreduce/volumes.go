package mapreduce

import (
	"fmt"

	"nlfl/internal/partition"
)

// DistributionVolume is the closed-form communication cost (in matrix
// elements shipped from the data source to the mappers/workers) of one
// n×n matrix multiplication under the distributions the paper discusses
// (Section 4, refs [27, 36]). These are the asymptotic counterparts of
// the executable jobs in jobs.go.
type DistributionVolume struct {
	Name   string
	Volume float64
}

// String renders the entry.
func (d DistributionVolume) String() string {
	return fmt.Sprintf("%s: %.4g elements", d.Name, d.Volume)
}

// NaivePairsVolume is the fully replicated (i,k,j) dataset: each of the
// n³ records carries two elements, so 2n³ elements reach the mappers
// (and n³ partial products cross the shuffle without a combiner).
func NaivePairsVolume(n int) DistributionVolume {
	nn := float64(n)
	return DistributionVolume{Name: "naive-pairs", Volume: 2 * nn * nn * nn}
}

// RowColumnVolume is the row×column distribution: each of the n² result
// cells is computed by a task holding a full row of A and a full column
// of B, grouped into g row-bands and g column-bands (g² tasks): every
// task receives (n/g)·n elements of A and n·(n/g) of B, for a total of
// 2·g·n².
func RowColumnVolume(n, g int) DistributionVolume {
	nn := float64(n)
	return DistributionVolume{
		Name:   fmt.Sprintf("row-column(g=%d)", g),
		Volume: 2 * float64(g) * nn * nn,
	}
}

// BlockVolume is the square-block distribution with a g×g grid of result
// blocks: task (I,J) needs the I-th row band of A (n·n/g elements) and
// the J-th column band of B, so the total is again 2·g·n² — the shape
// (not the constant) is what distinguishes it from the 2D-aware layouts
// below, whose volume grows like √p, not like the block count.
func BlockVolume(n, g int) DistributionVolume {
	nn := float64(n)
	return DistributionVolume{
		Name:   fmt.Sprintf("block(g=%d)", g),
		Volume: 2 * float64(g) * nn * nn,
	}
}

// GridVolume is the outer-product (ScaLAPACK) algorithm on an r×c
// processor grid: n²·(r+c-2) elements (see matmul.GridCommClosedForm).
func GridVolume(n, r, c int) DistributionVolume {
	nn := float64(n)
	return DistributionVolume{
		Name:   fmt.Sprintf("grid(%dx%d)", r, c),
		Volume: nn * nn * float64(r+c-2),
	}
}

// HeterogeneousVolume is the rectangle layout: n²·(Ĉ-2) elements where Ĉ
// is the PERI-SUM sum of half-perimeters of the speed-proportional
// partition.
func HeterogeneousVolume(n int, part *partition.Partition) DistributionVolume {
	nn := float64(n)
	return DistributionVolume{
		Name:   "heterogeneous-rect",
		Volume: nn * nn * (part.SumHalfPerimeters() - 2),
	}
}

// CompareDistributions evaluates the standard menu for one problem size
// and platform partition, in a fixed report order.
func CompareDistributions(n int, gridR, gridC int, part *partition.Partition) []DistributionVolume {
	g := gridR * gridC
	return []DistributionVolume{
		NaivePairsVolume(n),
		RowColumnVolume(n, g),
		BlockVolume(n, g),
		GridVolume(n, gridR, gridC),
		HeterogeneousVolume(n, part),
	}
}
