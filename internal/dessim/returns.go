package dessim

import (
	"fmt"
	"sort"

	"nlfl/internal/platform"
)

// The paper's model drops return messages "in order to concentrate on the
// influence of non-linearity" (Section 1.2, citing refs [28, 29] — the
// authors' own earlier work on DLT with return messages). This file
// restores them as an extension: after computing its chunk, a worker
// ships δ·Data units of results back through the master's ingress port,
// which serializes. The classical question is the collection order: FIFO
// (results return in the distribution order) versus LIFO (reverse order),
// and neither dominates universally — which is exactly why the paper set
// returns aside.

// ReturnOrder selects the collection discipline.
type ReturnOrder int

// Collection orders.
const (
	// FIFO returns results in distribution order.
	FIFO ReturnOrder = iota
	// LIFO returns results in reverse distribution order.
	LIFO
)

// String implements fmt.Stringer.
func (o ReturnOrder) String() string {
	switch o {
	case FIFO:
		return "fifo"
	case LIFO:
		return "lifo"
	default:
		return fmt.Sprintf("order(%d)", int(o))
	}
}

// RunSingleRoundWithReturns executes a one-chunk-per-worker schedule under
// the one-port model for distribution AND collection: the master first
// serializes the sends (in chunk order), each worker computes, and the
// results (delta·Data units each, at the worker's link bandwidth) return
// through the master's single ingress port in the chosen order. A result
// transfer starts when both the worker has finished computing and the
// port has drained the previous return. The returned timeline records the
// return transfers as Receive intervals on the master's behalf (worker
// index preserved); the makespan is when the last result lands.
func RunSingleRoundWithReturns(p *platform.Platform, chunks []Chunk, delta float64, order ReturnOrder) (*Timeline, error) {
	if delta < 0 {
		return nil, fmt.Errorf("dessim: negative return ratio %v", delta)
	}
	seen := make([]bool, p.P())
	for idx, ch := range chunks {
		if ch.Worker < 0 || ch.Worker >= p.P() {
			return nil, fmt.Errorf("dessim: chunk %d targets unknown worker %d", idx, ch.Worker)
		}
		if seen[ch.Worker] {
			return nil, fmt.Errorf("dessim: worker %d scheduled twice (single-chunk model)", ch.Worker)
		}
		seen[ch.Worker] = true
		if ch.Data < 0 || ch.Work < 0 {
			return nil, fmt.Errorf("dessim: chunk %d has negative size", idx)
		}
	}
	tl := NewTimeline(p.P())
	port := &Resource{}
	compDone := make(map[int]float64, len(chunks))
	for idx, ch := range chunks {
		w := p.Worker(ch.Worker)
		recvStart, recvEnd := port.Book(0, w.CommTime(ch.Data))
		tl.Add(ch.Worker, Interval{Kind: Receive, Start: recvStart, End: recvEnd, Data: ch.Data, Task: idx})
		compEnd := recvEnd + w.LinearCompTime(ch.Work)
		tl.Add(ch.Worker, Interval{Kind: Compute, Start: recvEnd, End: compEnd, Work: ch.Work, Task: idx})
		compDone[idx] = compEnd
	}
	// Collection order over chunk indices.
	ret := make([]int, len(chunks))
	for i := range ret {
		ret[i] = i
	}
	if order == LIFO {
		sort.Sort(sort.Reverse(sort.IntSlice(ret)))
	}
	ingress := &Resource{}
	for _, idx := range ret {
		ch := chunks[idx]
		w := p.Worker(ch.Worker)
		dur := w.CommTime(delta * ch.Data)
		start := compDone[idx]
		if ingress.FreeAt() > start {
			start = ingress.FreeAt()
		}
		s, e := ingress.Book(start, dur)
		tl.Add(ch.Worker, Interval{Kind: Receive, Start: s, End: e, Data: delta * ch.Data, Task: idx})
	}
	return tl, nil
}

// CompareReturnOrders runs both disciplines and reports the makespans.
func CompareReturnOrders(p *platform.Platform, chunks []Chunk, delta float64) (fifo, lifo float64, err error) {
	f, err := RunSingleRoundWithReturns(p, chunks, delta, FIFO)
	if err != nil {
		return 0, 0, err
	}
	l, err := RunSingleRoundWithReturns(p, chunks, delta, LIFO)
	if err != nil {
		return 0, 0, err
	}
	return f.Makespan, l.Makespan, nil
}
