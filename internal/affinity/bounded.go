package affinity

import (
	"fmt"
	"math"

	"nlfl/internal/platform"
)

// The Run policies assume workers cache every chunk forever — an
// unlimited-memory idealization. RunBounded caps each worker's cache at
// `capacity` chunks (a and b chunks count alike) with LRU eviction: the
// affinity benefit then interpolates between the no-cache and
// unlimited-cache extremes as memory grows, quantifying how much RAM the
// conclusion's proposal actually needs.

// lruCache is a fixed-capacity LRU set of chunk ids.
type lruCache struct {
	capacity int
	stamp    int64
	last     map[int]int64
}

func newLRU(capacity int) *lruCache {
	return &lruCache{capacity: capacity, last: make(map[int]int64, capacity)}
}

// has reports membership without touching recency.
func (c *lruCache) has(id int) bool {
	_, ok := c.last[id]
	return ok
}

// touch inserts/refreshes id, evicting the least recently used entry when
// over capacity.
func (c *lruCache) touch(id int) {
	c.stamp++
	c.last[id] = c.stamp
	if len(c.last) <= c.capacity {
		return
	}
	oldest, oldestStamp := -1, int64(math.MaxInt64)
	for k, s := range c.last {
		if s < oldestStamp {
			oldest, oldestStamp = k, s
		}
	}
	delete(c.last, oldest)
}

// RunBounded is Run with PolicyAffinity semantics and per-worker LRU
// caches of `capacity` chunks. capacity = 0 degenerates to the no-cache
// accounting; capacity ≥ 2g reproduces PolicyAffinity exactly (a worker
// can at most ever hold 2g distinct chunks).
func RunBounded(pl *platform.Platform, n float64, g, capacity int, seed int64) (Result, error) {
	_ = seed // deterministic; kept for signature stability with callers
	if g <= 0 {
		return Result{}, fmt.Errorf("affinity: grid must be positive")
	}
	if capacity < 0 {
		return Result{}, fmt.Errorf("affinity: negative capacity")
	}
	if n <= 0 || math.IsNaN(n) {
		return Result{}, fmt.Errorf("affinity: invalid size %v", n)
	}
	p := pl.P()
	chunk := n / float64(g)
	blockWork := chunk * chunk
	taken := make([]bool, g*g)
	remaining := g * g
	// Chunk ids: a-chunk i → i; b-chunk j → g+j.
	caches := make([]*lruCache, p)
	for w := range caches {
		caches[w] = newLRU(capacity)
	}
	free := make([]float64, p)
	busy := make([]float64, p)
	counts := make([]int, p)
	volume := 0.0

	need := func(w, i, j int) float64 {
		d := 0.0
		if capacity == 0 || !caches[w].has(i) {
			d += chunk
		}
		if capacity == 0 || !caches[w].has(g+j) {
			d += chunk
		}
		return d
	}

	for remaining > 0 {
		w := 0
		for cand := 1; cand < p; cand++ {
			if free[cand] < free[w] {
				w = cand
			}
		}
		best, bestNeed := -1, math.Inf(1)
		for idx := 0; idx < g*g; idx++ {
			if taken[idx] {
				continue
			}
			d := need(w, idx/g, idx%g)
			if d < bestNeed {
				best, bestNeed = idx, d
				if d == 0 {
					break
				}
			}
		}
		taken[best] = true
		remaining--
		i, j := best/g, best%g
		volume += bestNeed
		if capacity > 0 {
			caches[w].touch(i)
			caches[w].touch(g + j)
		}
		dur := blockWork / pl.Worker(w).Speed
		free[w] += dur
		busy[w] += dur
		counts[w]++
	}

	lb := 0.0
	for _, x := range pl.NormalizedSpeeds() {
		lb += math.Sqrt(x)
	}
	lb *= 2 * n
	return Result{
		Policy:          PolicyAffinity,
		Grid:            g,
		Volume:          volume,
		LowerBound:      lb,
		Ratio:           volume / lb,
		Imbalance:       imbalance(busy),
		BlocksPerWorker: counts,
	}, nil
}
