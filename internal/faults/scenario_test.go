package faults

import (
	"math"
	"reflect"
	"testing"
)

func TestScenarioValidation(t *testing.T) {
	bad := []Scenario{
		{Events: []Event{{Kind: Crash, Worker: 5, Time: 1}}},
		{Events: []Event{{Kind: Crash, Worker: 0, Time: -1}}},
		{Events: []Event{{Kind: Crash, Worker: 0, Time: math.Inf(1)}}},
		{Events: []Event{{Kind: Transient, Worker: 0, Time: 2, Until: 2}}},
		{Events: []Event{{Kind: Straggler, Worker: 0, Time: 1, Until: 2, Factor: 0}}},
		{Events: []Event{{Kind: Straggler, Worker: 0, Time: 2, Until: 1, Factor: 0.5}}},
		{Events: []Event{{Kind: LinkSlow, Worker: 0, Time: 1, Until: 2, Factor: 0}}},
		{Events: []Event{{Kind: LinkDrop, Worker: 0, Time: 1, Until: 2, DropProb: 1.5}}},
		{Events: []Event{{Kind: Kind(99), Worker: 0, Time: 1}}},
	}
	for i, sc := range bad {
		if err := sc.Validate(2); err == nil {
			t.Errorf("scenario %d should be invalid", i)
		}
	}
	good := Scenario{Events: []Event{
		{Kind: Crash, Worker: 1, Time: 3},
		{Kind: Transient, Worker: 0, Time: 1, Until: 2},
		{Kind: Straggler, Worker: 0, Time: 4, Until: 9, Factor: 0.1},
		{Kind: LinkSlow, Worker: 1, Time: 0, Until: 1, Factor: 0.5},
		{Kind: LinkDrop, Worker: 0, Time: 0, Until: math.Inf(1), DropProb: 0.3},
	}}
	if err := good.Validate(2); err != nil {
		t.Errorf("valid scenario rejected: %v", err)
	}
}

func TestScenarioAvailabilityCompile(t *testing.T) {
	sc := Scenario{Events: []Event{
		{Kind: Crash, Worker: 0, Time: 5},
		{Kind: Transient, Worker: 1, Time: 1, Until: 2},
		{Kind: Straggler, Worker: 1, Time: 3, Until: 4, Factor: 0.5},
	}}
	a, err := sc.Availability(2)
	if err != nil {
		t.Fatal(err)
	}
	if a.Alive(0, 5) || !a.Alive(0, 4.9) {
		t.Error("crash window wrong")
	}
	if !a.PermanentlyDownBy(0, 10) {
		t.Error("crash should be permanent")
	}
	if a.Alive(1, 1.5) || !a.Alive(1, 2) || a.PermanentlyDownBy(1, 1.5) {
		t.Error("transient window wrong")
	}
	if f := a.SpeedFactor(1, 3.5); f != 0.5 {
		t.Errorf("straggler factor = %v, want 0.5", f)
	}
}

func TestGeneratorsDeterministicUnderSeed(t *testing.T) {
	a, err := RandomCrashes(10, 3, 100, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RandomCrashes(10, 3, 100, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("same seed produced different scenarios:\n%+v\n%+v", a, b)
	}
	c, err := RandomCrashes(10, 3, 100, 8)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Events, c.Events) {
		t.Error("different seeds produced identical crash patterns")
	}
	if a.CrashCount() != 3 {
		t.Errorf("crash count = %d, want 3", a.CrashCount())
	}
	for _, e := range a.Events {
		if e.Time <= 0 || e.Time >= 100 {
			t.Errorf("crash time %v outside (0, horizon)", e.Time)
		}
	}

	s1, err := RandomStragglers(6, 2, 0.25, 1, 5, 3)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := RandomStragglers(6, 2, 0.25, 1, 5, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s1, s2) {
		t.Error("straggler generator not deterministic")
	}

	f1, err := FlakyLinks(6, 2, 0.5, 0, 10, 11)
	if err != nil {
		t.Fatal(err)
	}
	f2, err := FlakyLinks(6, 2, 0.5, 0, 10, 11)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(f1, f2) {
		t.Error("flaky-link generator not deterministic")
	}
}

func TestGeneratorValidation(t *testing.T) {
	if _, err := RandomCrashes(4, 4, 10, 1); err == nil {
		t.Error("killing every worker should be rejected")
	}
	if _, err := RandomCrashes(4, -1, 10, 1); err == nil {
		t.Error("negative kill count should be rejected")
	}
	if _, err := RandomCrashes(4, 1, 0, 1); err == nil {
		t.Error("zero horizon should be rejected")
	}
	if _, err := RandomStragglers(4, 5, 0.5, 0, 1, 1); err == nil {
		t.Error("too many stragglers should be rejected")
	}
	if _, err := RandomStragglers(4, 1, 0, 0, 1, 1); err == nil {
		t.Error("zero factor should be rejected")
	}
	if _, err := FlakyLinks(4, 1, 2, 0, 1, 1); err == nil {
		t.Error("probability > 1 should be rejected")
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{
		Crash: "crash", Transient: "transient", Straggler: "straggler",
		LinkSlow: "link-slow", LinkDrop: "link-drop", Kind(42): "kind(42)",
	} {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", int(k), got, want)
		}
	}
}
