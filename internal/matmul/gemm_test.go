package matmul

import (
	"math"
	"testing"

	"nlfl/internal/stats"
)

// TestMicroKernelMatchesGo is the differential test between the dispatch
// target (AVX2 assembly where the CPU supports it) and the portable Go
// micro-kernel: on random packed panels across k extents — including
// k=1 and k not a multiple of any unroll — both must produce bit-identical
// tiles. On machines without AVX2 the dispatch target IS the Go kernel
// and the test degenerates to a self-check.
func TestMicroKernelMatchesGo(t *testing.T) {
	r := stats.NewRNG(77)
	for _, kc := range []int{1, 2, 3, 7, 16, 129, 1000} {
		pa := make([]float64, kc*microM)
		pb := make([]float64, kc*microN)
		for i := range pa {
			pa[i] = 2*r.Float64() - 1
		}
		for i := range pb {
			pb[i] = 2*r.Float64() - 1
		}
		var got, want [microM * microN]float64
		microKernel(got[:], microN, pa, pb, kc)
		microKernelGo(want[:], microN, pa, pb, kc)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("kc=%d: dispatch kernel differs from Go kernel at %d: %v vs %v",
					kc, i, got[i], want[i])
			}
		}
	}
}

// TestMicroKernelStridedStore checks the ldd parameter: storing a tile
// into a wide destination must touch exactly the microM×microN window.
func TestMicroKernelStridedStore(t *testing.T) {
	const ldd = 19
	kc := 5
	r := stats.NewRNG(5)
	pa := make([]float64, kc*microM)
	pb := make([]float64, kc*microN)
	for i := range pa {
		pa[i] = r.Float64()
	}
	for i := range pb {
		pb[i] = r.Float64()
	}
	dst := make([]float64, microM*ldd)
	for i := range dst {
		dst[i] = math.NaN()
	}
	microKernel(dst, ldd, pa, pb, kc)
	for rr := 0; rr < microM; rr++ {
		for c := 0; c < ldd; c++ {
			v := dst[rr*ldd+c]
			if c < microN {
				want := 0.0
				for kk := 0; kk < kc; kk++ {
					want += pa[kk*microM+rr] * pb[kk*microN+c]
				}
				if v != want {
					t.Fatalf("tile cell (%d,%d) = %v, want %v", rr, c, v, want)
				}
			} else if rr < microM-1 && !math.IsNaN(v) {
				t.Fatalf("cell (%d,%d) outside the tile was written (%v)", rr, c, v)
			}
		}
	}
}

// TestPackedBitIdenticalToNaive is the kernel-equivalence property test
// at its strongest form: because the packed path performs, per output
// element, the same ascending-k multiply-then-add chain as the reference
// (separate VMULPD/VADDPD, no FMA contraction), Tiled and ParallelTiled
// must be BIT-IDENTICAL to Naive — not merely within tolerance — across
// random rectangular shapes including sides of 1, sides below the
// packing width, and sides that are not multiples of microM or microN.
func TestPackedBitIdenticalToNaive(t *testing.T) {
	r := stats.NewRNG(2025)
	dim := func() int { return 1 + int(r.Float64()*260) }
	shapes := [][3]int{
		{1, 1, 1}, {1, 200, 1}, {microM, 3, microN}, {5, 7, 9},
		{63, 65, 67}, {microM * 3, 128, microN * 5}, {130, 96, 130},
	}
	for trial := 0; trial < 20; trial++ {
		shapes = append(shapes, [3]int{dim(), dim(), dim()})
	}
	for i, s := range shapes {
		m, k, n := s[0], s[1], s[2]
		a := Random(m, k, int64(i*3+1))
		b := Random(k, n, int64(i*3+2))
		want, err := Naive(a, b)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Tiled(a, b)
		if err != nil {
			t.Fatal(err)
		}
		for idx := range want.Data {
			if got.Data[idx] != want.Data[idx] {
				t.Fatalf("shape %dx%d·%dx%d: Tiled differs from Naive at %d: %v vs %v",
					m, k, k, n, idx, got.Data[idx], want.Data[idx])
			}
		}
		workers := 1 + int(r.Float64()*7)
		par, err := ParallelTiled(a, b, workers)
		if err != nil {
			t.Fatal(err)
		}
		for idx := range want.Data {
			if par.Data[idx] != want.Data[idx] {
				t.Fatalf("shape %dx%d·%dx%d (%d workers): ParallelTiled differs from Naive at %d",
					m, k, k, n, workers, idx)
			}
		}
	}
}

// TestPackBRoundTrip pins the packed-B layout: panel jp holds columns
// [jp·microN, …) k-major with zero padding past n.
func TestPackBRoundTrip(t *testing.T) {
	b := Random(6, 11, 3) // 11 columns: one full panel + a 3-wide edge panel
	pb := packB(b)
	if pb.panels != 2 {
		t.Fatalf("11 columns packed into %d panels, want 2", pb.panels)
	}
	for jp := 0; jp < pb.panels; jp++ {
		panel := pb.panel(jp)
		for kk := 0; kk < b.Rows; kk++ {
			for c := 0; c < microN; c++ {
				col := jp*microN + c
				want := 0.0
				if col < b.Cols {
					want = b.At(kk, col)
				}
				if panel[kk*microN+c] != want {
					t.Fatalf("panel %d k=%d lane %d: %v, want %v", jp, kk, c, panel[kk*microN+c], want)
				}
			}
		}
	}
}

// TestPackARowsLayout pins the packed-A layout: panels of microM rows,
// k-major, rows past rowHi zero-padded.
func TestPackARowsLayout(t *testing.T) {
	a := Random(10, 5, 4)
	rowLo, rowHi := 3, 10 // 7 rows → one full panel + a 3-row edge panel
	rows := rowHi - rowLo
	pa := make([]float64, ((rows+microM-1)/microM)*a.Cols*microM)
	packARows(pa, a, rowLo, rowHi)
	for ip := 0; ip < rows; ip += microM {
		panel := pa[(ip/microM)*a.Cols*microM:]
		for r := 0; r < microM; r++ {
			for kk := 0; kk < a.Cols; kk++ {
				want := 0.0
				if ip+r < rows {
					want = a.At(rowLo+ip+r, kk)
				}
				if panel[kk*microM+r] != want {
					t.Fatalf("panel %d row %d k=%d: %v, want %v", ip/microM, r, kk, panel[kk*microM+r], want)
				}
			}
		}
	}
}

// TestRowBandsAlignedAndBalanced is the regression test for the
// ParallelTiled band split: interior boundaries must be microM-aligned
// (no micro-tile straddles two bands, so no two goroutines share output
// cache lines) and band sizes must stay even to within one micro-tile.
func TestRowBandsAlignedAndBalanced(t *testing.T) {
	pinned := []struct {
		rows, workers int
		want          []int
	}{
		{1024, 4, []int{0, 256, 512, 768, 1024}},
		{130, 4, []int{0, 32, 64, 96, 130}},
		{512, 3, []int{0, 168, 340, 512}},
		{20, 3, []int{0, 4, 12, 20}},
		{8, 16, []int{0, 4, 8}}, // workers clamped to rows, empty bands dropped
	}
	for _, tc := range pinned {
		got := rowBands(tc.rows, tc.workers)
		if len(got) != len(tc.want) {
			t.Fatalf("rowBands(%d,%d) = %v, want %v", tc.rows, tc.workers, got, tc.want)
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Fatalf("rowBands(%d,%d) = %v, want %v", tc.rows, tc.workers, got, tc.want)
			}
		}
	}
	r := stats.NewRNG(8)
	for trial := 0; trial < 200; trial++ {
		rows := 1 + int(r.Float64()*2000)
		workers := 1 + int(r.Float64()*12)
		cuts := rowBands(rows, workers)
		if cuts[0] != 0 || cuts[len(cuts)-1] != rows {
			t.Fatalf("rows=%d workers=%d: cuts %v do not cover [0,%d)", rows, workers, cuts, rows)
		}
		minB, maxB := rows, 0
		for i := 0; i+1 < len(cuts); i++ {
			if cuts[i+1] <= cuts[i] {
				t.Fatalf("rows=%d workers=%d: non-increasing cuts %v", rows, workers, cuts)
			}
			if i+1 < len(cuts)-1 && cuts[i+1]%microM != 0 {
				t.Fatalf("rows=%d workers=%d: interior cut %d not %d-aligned", rows, workers, cuts[i+1], microM)
			}
			if sz := cuts[i+1] - cuts[i]; true {
				if sz < minB {
					minB = sz
				}
				if sz > maxB {
					maxB = sz
				}
			}
		}
		// Balanced to within the alignment slack: floor rounding plus
		// microM alignment can each shift a boundary by < microM, and the
		// final band absorbs the unaligned remainder.
		if len(cuts) > 2 && maxB-minB > 2*microM+1 {
			t.Fatalf("rows=%d workers=%d: band imbalance %d exceeds 2·microM (cuts %v)",
				rows, workers, maxB-minB, cuts)
		}
	}
}

// TestAutotuneWarmupAbsorbsColdFirstSample is the regression test for the
// autotune probe: the old probe timed each candidate exactly once on
// freshly-faulted pages, so an inflated first sample (cold cache, page
// faults, a scheduler hiccup) could flip the winner. pickTile must warm
// each candidate up and score it by best-of-three, so a 50× perturbation
// of the very first sample leaves the true winner standing.
func TestAutotuneWarmupAbsorbsColdFirstSample(t *testing.T) {
	truth := map[int]float64{32: 4e-3, 64: 1e-3, 128: 2e-3, 256: 3e-3} // 64 is fastest
	calls := 0
	sample := func(bs int) float64 {
		calls++
		if calls == 1 {
			// The very first measurement in the process pays cold pages.
			return truth[bs] * 50
		}
		return truth[bs]
	}
	if got := pickTile(tileCandidates, sample); got != 64 {
		t.Fatalf("perturbed first sample flipped the winner: picked %d, want 64", got)
	}
	if want := len(tileCandidates) * 4; calls != want {
		t.Fatalf("pickTile took %d samples, want %d (1 warm-up + 3 timed per candidate)", calls, want)
	}
	// Stronger still: even the true winner must survive having its own
	// warm-up sample inflated — only the three timed samples may score.
	calls = 0
	perturbWinnerOnce := func(bs int) float64 {
		calls++
		if bs == 64 && calls == 5 { // 64's warm-up sample (candidate order 32,64,…)
			return truth[bs] * 50
		}
		return truth[bs]
	}
	if got := pickTile(tileCandidates, perturbWinnerOnce); got != 64 {
		t.Fatalf("cold warm-up on the true winner flipped the pick to %d, want 64", got)
	}
}

// TestParallelSmallFallsBackToSerial pins the small-size fallback: below
// parallelMinWork the parallel entry point must not pay goroutine spawn
// overhead. The fallback is observable through rowBands being bypassed —
// we assert the documented threshold arithmetic directly.
func TestParallelSmallFallsBackToSerial(t *testing.T) {
	a, b := Random(128, 128, 1), Random(128, 128, 2)
	if mulWork(a, b) > parallelMinWork {
		t.Fatalf("n=128 must sit inside the serial-fallback region (work %d > threshold %d)",
			mulWork(a, b), parallelMinWork)
	}
	a2, b2 := Random(256, 256, 1), Random(256, 256, 2)
	if mulWork(a2, b2) <= parallelMinWork {
		t.Fatalf("n=256 must be above the serial-fallback threshold")
	}
	// And the fallback must still be exact.
	want, _ := Naive(a, b)
	got, err := ParallelTiled(a, b, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Data {
		if got.Data[i] != want.Data[i] {
			t.Fatalf("serial fallback differs from reference at %d", i)
		}
	}
}
