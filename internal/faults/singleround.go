package faults

import (
	"fmt"
	"math"

	"nlfl/internal/dessim"
	"nlfl/internal/platform"
	"nlfl/internal/trace"
)

// SingleRoundReport is the outcome of a static single-round schedule
// executed under a fault scenario. A single-round DLT schedule has no
// feedback channel: the master sends each chunk exactly once, so any
// crash — even a transient one — destroys the target worker's in-flight
// and not-yet-computed chunks with no possibility of re-assignment. The
// quantities below make the paper's Section 1.1 robustness argument
// measurable.
type SingleRoundReport struct {
	Timeline *dessim.Timeline `json:"-"`
	// Trace records every span with its outcome — including the transfers
	// and partial computations a crash destroyed, which the plain Timeline
	// omits. Chunks never shipped (a dead worker's schedule tail) have no
	// spans; their work appears only in LostWork.
	Trace *trace.Timeline `json:"-"`
	// Completed reports whether every chunk finished.
	Completed bool `json:"completed"`
	// Makespan is the finish time of the surviving work only.
	Makespan float64 `json:"makespan"`
	// CompletedWork and LostWork split the schedule's total work units
	// into survived and destroyed.
	CompletedWork float64 `json:"completedWork"`
	LostWork      float64 `json:"lostWork"`
	// LostFraction is LostWork / (CompletedWork + LostWork), 0 for an
	// empty schedule.
	LostFraction float64 `json:"lostFraction"`
	// LostData is the shipped data whose computation never survived.
	LostData float64 `json:"lostData"`
	// PerWorkerLost[w] is the work lost on worker w.
	PerWorkerLost []float64 `json:"perWorkerLost"`
}

// RunSingleRoundUnderFaults executes a static schedule (parallel
// master→worker links, chunks computed in per-worker emission order)
// under the fault scenario. Straggler windows stretch computations and
// LinkSlow windows stretch transfers; the first crash of a worker —
// permanent or transient — kills its in-flight chunk and everything
// scheduled after it, because a single-round schedule cannot re-send or
// re-assign. LinkDrop windows lose chunks outright (there is no retry
// protocol in single-round DLT). The run is deterministic under the
// scenario seed.
func RunSingleRoundUnderFaults(p *platform.Platform, chunks []dessim.Chunk, sc Scenario) (*SingleRoundReport, error) {
	avail, err := sc.Availability(p.P())
	if err != nil {
		return nil, err
	}
	eng := dessim.NewEngine()
	inj, err := NewInjector(eng, p.P(), sc)
	if err != nil {
		return nil, err
	}
	tr := trace.New(p.P())
	rep := &SingleRoundReport{
		Timeline:      dessim.NewTimeline(p.P()),
		Trace:         tr,
		PerWorkerLost: make([]float64, p.P()),
	}
	// First crash instant per worker (+Inf when it never crashes).
	crashAt := make([]float64, p.P())
	for w := range crashAt {
		crashAt[w] = math.Inf(1)
	}
	for _, e := range sc.Events {
		if (e.Kind == Crash || e.Kind == Transient) && e.Time < crashAt[e.Worker] {
			crashAt[e.Worker] = e.Time
		}
		switch e.Kind {
		case Crash:
			tr.Mark(trace.Marker{Kind: trace.MarkCrash, Worker: e.Worker, Time: e.Time, Note: "permanent"})
		case Transient:
			// Recovery does not help a single-round schedule, but the marker
			// makes the missed opportunity visible on the Gantt chart.
			tr.Mark(trace.Marker{Kind: trace.MarkCrash, Worker: e.Worker, Time: e.Time, Note: "transient"})
			tr.Mark(trace.Marker{Kind: trace.MarkRecover, Worker: e.Worker, Time: e.Until})
		}
	}

	linkFree := make([]float64, p.P())
	cpuFree := make([]float64, p.P())
	deadHere := make([]bool, p.P()) // worker already lost its schedule tail
	total := 0.0
	for idx, ch := range chunks {
		if ch.Worker < 0 || ch.Worker >= p.P() {
			return nil, fmt.Errorf("faults: chunk %d targets unknown worker %d", idx, ch.Worker)
		}
		if ch.Data < 0 || ch.Work < 0 {
			return nil, fmt.Errorf("faults: chunk %d has negative size", idx)
		}
		w := ch.Worker
		total += ch.Work
		if deadHere[w] {
			rep.LostWork += ch.Work
			rep.PerWorkerLost[w] += ch.Work
			continue
		}
		wk := p.Worker(w)
		recvStart := linkFree[w]
		d := 0.0
		if ch.Data > 0 {
			bwf := avail.BandwidthFactor(w, recvStart)
			d = wk.CommTime(ch.Data) / bwf
		}
		recvEnd := recvStart + d
		linkFree[w] = recvEnd
		if inj.DropTransfer(w, recvStart) {
			// The chunk's data never arrives; single-round has no retry.
			tr.Add(w, trace.Span{Kind: trace.Comm, Start: recvStart, End: recvEnd, Data: ch.Data, Task: idx, Outcome: trace.Dropped})
			tr.Mark(trace.Marker{Kind: trace.MarkDrop, Worker: w, Time: recvEnd, Note: fmt.Sprintf("task %d", idx)})
			rep.LostWork += ch.Work
			rep.PerWorkerLost[w] += ch.Work
			rep.LostData += ch.Data
			continue
		}
		compStart := math.Max(recvEnd, cpuFree[w])
		compEnd := avail.IntegrateWork(p, w, compStart, ch.Work)
		// The chunk survives only if both its transfer and its computation
		// complete strictly before the worker's first crash.
		if recvEnd > crashAt[w] || compEnd > crashAt[w] || math.IsInf(compEnd, 1) {
			deadHere[w] = true
			if recvEnd > crashAt[w] {
				// The crash cut the transfer itself short.
				tr.Add(w, trace.Span{Kind: trace.Comm, Start: recvStart, End: math.Min(recvEnd, crashAt[w]), Data: ch.Data, Task: idx, Outcome: trace.Killed})
			} else {
				// Delivered in full, then the computation died. The whole
				// chunk's work is forfeit — single-round cannot re-assign.
				tr.Add(w, trace.Span{Kind: trace.Comm, Start: recvStart, End: recvEnd, Data: ch.Data, Task: idx, Outcome: trace.OK})
				killEnd := math.Min(compEnd, crashAt[w])
				if math.IsInf(killEnd, 1) {
					killEnd = compStart // frozen forever: no CPU time elapsed
				}
				tr.Add(w, trace.Span{Kind: trace.Compute, Start: compStart, End: killEnd, Work: ch.Work, Task: idx, Outcome: trace.Killed})
			}
			rep.LostWork += ch.Work
			rep.PerWorkerLost[w] += ch.Work
			rep.LostData += ch.Data
			continue
		}
		cpuFree[w] = compEnd
		rep.Timeline.Add(w, dessim.Interval{Kind: dessim.Receive, Start: recvStart, End: recvEnd, Data: ch.Data, Task: idx})
		rep.Timeline.Add(w, dessim.Interval{Kind: dessim.Compute, Start: compStart, End: compEnd, Work: ch.Work, Task: idx})
		tr.Add(w, trace.Span{Kind: trace.Comm, Start: recvStart, End: recvEnd, Data: ch.Data, Task: idx, Outcome: trace.OK})
		tr.Add(w, trace.Span{Kind: trace.Compute, Start: compStart, End: compEnd, Work: ch.Work, Task: idx, Outcome: trace.OK})
		rep.CompletedWork += ch.Work
		if compEnd > rep.Makespan {
			rep.Makespan = compEnd
		}
	}
	rep.Completed = rep.LostWork == 0
	if total > 0 {
		rep.LostFraction = rep.LostWork / total
	}
	return rep, nil
}

// LinearDLTChunks builds the classical single-round linear-DLT allocation
// for the platform: one chunk per worker, data and work proportional to
// its normalized speed — the static baseline that loses a dead worker's
// whole allocation. totalData and totalWork are split exactly.
func LinearDLTChunks(p *platform.Platform, totalData, totalWork float64) []dessim.Chunk {
	xs := p.NormalizedSpeeds()
	chunks := make([]dessim.Chunk, p.P())
	for i, x := range xs {
		chunks[i] = dessim.Chunk{Worker: i, Data: x * totalData, Work: x * totalWork}
	}
	return chunks
}
