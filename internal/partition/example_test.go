package partition_test

import (
	"fmt"

	"nlfl/internal/partition"
)

// Partitioning the unit square for four workers, one of them three times
// faster than the rest: PERI-SUM keeps every rectangle close to square.
func ExamplePeriSum() {
	part, _ := partition.PeriSum([]float64{1, 1, 1, 3})
	norm, _ := partition.Normalize([]float64{1, 1, 1, 3})
	fmt.Printf("Ĉ = %.4f, LB = %.4f\n", part.SumHalfPerimeters(), partition.LowerBound(norm))
	// Output: Ĉ = 4.0000, LB = 3.8637
}

// The trivial lower bound: every rectangle is at best a square.
func ExampleLowerBound() {
	fmt.Printf("%.1f\n", partition.LowerBound([]float64{0.25, 0.25, 0.25, 0.25}))
	// Output: 4.0
}
