package runtime

import (
	"math"
	"testing"
	"time"

	"nlfl/internal/matmul"
	"nlfl/internal/platform"
	"nlfl/internal/stats"
	"nlfl/internal/trace"
)

// snappedPlatform returns speeds {1,3,5,7}: Σs/s₁ = 16 is a perfect
// square, so the homogeneous block grid (4) matches the closed form
// exactly and measured volumes must agree with the predictions to float
// precision.
func snappedPlatform(t *testing.T) *platform.Platform {
	t.Helper()
	pl, err := platform.FromSpeeds([]float64{1, 3, 5, 7})
	if err != nil {
		t.Fatal(err)
	}
	return pl
}

func runPlan(t *testing.T, pl *platform.Platform, plan *StrategyPlan, a, b []float64) *Report {
	t.Helper()
	rep, err := Run(plan, a, b, Options{
		Speeds:        pl.Speeds(),
		WorkPerSecond: 5e6,
		VerifyEvery:   97,
	})
	if err != nil {
		t.Fatalf("%s: %v", plan.Strategy, err)
	}
	return rep
}

func TestRunStrategiesEndToEnd(t *testing.T) {
	pl := snappedPlatform(t)
	const n = 128
	r := stats.NewRNG(5)
	a := stats.SampleN(stats.Uniform{Lo: -1, Hi: 1}, r, n)
	b := stats.SampleN(stats.Uniform{Lo: -1, Hi: 1}, r, n)
	want := matmul.VectorOuter(a, b)

	plans := []*StrategyPlan{}
	hom, err := PlanHom(pl, n)
	if err != nil {
		t.Fatal(err)
	}
	plans = append(plans, hom)
	homk, err := PlanHomK(pl, n, 0.01, 0)
	if err != nil {
		t.Fatal(err)
	}
	plans = append(plans, homk)
	het, err := PlanHet(pl, n)
	if err != nil {
		t.Fatal(err)
	}
	plans = append(plans, het)

	for _, plan := range plans {
		rep := runPlan(t, pl, plan, a, b)
		if !want.Equal(rep.Out, 0) {
			t.Errorf("%s: product differs from the reference kernel", plan.Strategy)
		}
		// Measured volume vs closed form: exact on a snapped platform for
		// hom and hom/k, within integer-grid rounding for het.
		relErr := math.Abs(rep.DataVolume-rep.Predicted) / rep.Predicted
		if relErr > 0.01 {
			t.Errorf("%s: measured volume %v vs predicted %v (relErr %v)", plan.Strategy, rep.DataVolume, rep.Predicted, relErr)
		}
		// The oracle audits the real run like a simulated one.
		if vs := trace.Check(rep.Trace, rep.Expect(0.01)); len(vs) != 0 {
			t.Errorf("%s: trace violations: %v", plan.Strategy, vs)
		}
		if rep.Makespan <= 0 {
			t.Errorf("%s: non-positive makespan %v", plan.Strategy, rep.Makespan)
		}
	}

	// Exactness on the snapped platform: grid 4 ⇒ volume 2·n·4.
	if got := plans[0].Grid; got != 4 {
		t.Errorf("hom grid = %d, want 4", got)
	}
	if rep := runPlan(t, pl, plans[0], a, b); rep.DataVolume != float64(2*n*4) {
		t.Errorf("hom measured volume %v, want %v", rep.DataVolume, 2*n*4)
	}
}

func TestRunHetOwnership(t *testing.T) {
	pl := snappedPlatform(t)
	const n = 96
	r := stats.NewRNG(11)
	a := stats.SampleN(stats.Uniform{Lo: -1, Hi: 1}, r, n)
	b := stats.SampleN(stats.Uniform{Lo: -1, Hi: 1}, r, n)
	plan, err := PlanHet(pl, n)
	if err != nil {
		t.Fatal(err)
	}
	rep := runPlan(t, pl, plan, a, b)
	// Owned chunks must be computed by their owner: worker w's measured
	// cells and data equal its chunk's geometry exactly.
	for i, c := range plan.Chunks {
		if got := rep.PerWorkerCells[i]; got != float64(c.Cells()) {
			t.Errorf("worker %d computed %v cells, owns %d", i, got, c.Cells())
		}
		if got := rep.PerWorkerData[i]; got != float64(c.Data()) {
			t.Errorf("worker %d shipped %v elements, owns %d", i, got, c.Data())
		}
	}
}

// TestRunDemandDrivenFavorsFastWorkers checks the demand process: with an
// 8× speed gap and chunk compute times far above scheduler jitter, the
// fast worker must claim clearly more of the ownerless pool.
func TestRunDemandDrivenFavorsFastWorkers(t *testing.T) {
	pl, err := platform.FromSpeeds([]float64{1, 8})
	if err != nil {
		t.Fatal(err)
	}
	const n = 128
	r := stats.NewRNG(3)
	a := stats.SampleN(stats.Uniform{Lo: -1, Hi: 1}, r, n)
	b := stats.SampleN(stats.Uniform{Lo: -1, Hi: 1}, r, n)
	chunks, err := GridChunks(n, 8)
	if err != nil {
		t.Fatal(err)
	}
	plan := &StrategyPlan{Strategy: "hom", N: n, Chunks: chunks, Grid: 8, K: 1,
		Predicted: float64(2 * n * 8)}
	rep, err := Run(plan, a, b, Options{Speeds: pl.Speeds(), WorkPerSecond: 2e5})
	if err != nil {
		t.Fatal(err)
	}
	if rep.PerWorkerCells[1] < 2*rep.PerWorkerCells[0] {
		t.Errorf("8×-faster worker computed %v cells vs %v — demand process not speed-sensitive",
			rep.PerWorkerCells[1], rep.PerWorkerCells[0])
	}
	if vs := trace.Check(rep.Trace, rep.Expect(0.01)); len(vs) != 0 {
		t.Errorf("trace violations: %v", vs)
	}
}

func TestRunValidation(t *testing.T) {
	chunks, err := GridChunks(8, 2)
	if err != nil {
		t.Fatal(err)
	}
	plan := &StrategyPlan{Strategy: "hom", N: 8, Chunks: chunks, Grid: 2, Predicted: 32}
	a := make([]float64, 8)
	b := make([]float64, 8)
	if _, err := Run(plan, a[:4], b, Options{Speeds: []float64{1}}); err == nil {
		t.Error("length mismatch should fail")
	}
	if _, err := Run(plan, a, b, Options{}); err == nil {
		t.Error("no speeds should fail")
	}
	if _, err := Run(plan, a, b, Options{Speeds: []float64{1, -2}}); err == nil {
		t.Error("negative speed should fail")
	}
	short := &StrategyPlan{Strategy: "hom", N: 8, Chunks: chunks[:3], Grid: 2}
	if _, err := Run(short, a, b, Options{Speeds: []float64{1}}); err == nil {
		t.Error("non-tiling chunk set should fail")
	}
	if _, err := GridChunks(8, 9); err == nil {
		t.Error("grid > n should fail")
	}
	if _, err := GridChunks(0, 1); err == nil {
		t.Error("empty domain should fail")
	}
}

func TestWorkQueueStealingAndOwnership(t *testing.T) {
	chunks := []Chunk{
		{Task: 0, RowHi: 1, ColHi: 1, Owner: -1},
		{Task: 1, RowHi: 1, ColHi: 1, Owner: -1},
		{Task: 2, RowHi: 1, ColHi: 1, Owner: 1},
		{Task: 3, RowHi: 1, ColHi: 1, Owner: -1},
	}
	q := newWorkQueue(chunks, 2, 2)
	// Worker 1 sees its owned chunk first.
	c, ok := q.pop(1)
	if !ok || c.Task != 2 {
		t.Fatalf("worker 1 popped %v, want owned task 2", c)
	}
	// Worker 0 drains the shared pool entirely — stealing across shards.
	seen := map[int]bool{}
	for {
		c, ok := q.pop(0)
		if !ok {
			break
		}
		if c.Owner == 1 {
			t.Fatalf("worker 0 stole owned chunk %d", c.Task)
		}
		seen[c.Task] = true
	}
	if len(seen) != 3 {
		t.Fatalf("worker 0 drained %d shared chunks, want 3", len(seen))
	}
}

func TestTokenBucketRate(t *testing.T) {
	start := time.Now()
	tb := newTokenBucket(1e6, 1)
	tb.acquire(5e4) // 50 ms of work at 1e6 tokens/s
	if elapsed := time.Since(start); elapsed < 45*time.Millisecond {
		t.Errorf("bucket admitted 50ms of work in %v", elapsed)
	}
}
