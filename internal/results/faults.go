package results

// FaultMetrics is the compact robustness summary attached to fault
// experiment records: how much a fault pattern cost each strategy, in
// dimensionless ratios so records from different problem sizes compare
// directly.
type FaultMetrics struct {
	// Crashes is the number of permanent worker crashes injected.
	Crashes int `json:"crashes"`
	// MakespanInflation is faulty makespan / fault-free makespan for the
	// resilient demand-driven executor (1 = no degradation).
	MakespanInflation float64 `json:"makespanInflation"`
	// ExtraCommFraction is wasted shipped data / total shipped data.
	ExtraCommFraction float64 `json:"extraCommFraction"`
	// Reexecutions counts demand-driven task copies restarted by crashes.
	Reexecutions int `json:"reexecutions"`
	// LostWorkFraction is destroyed work / total pool work for the
	// demand-driven executor (bounded by in-flight chunks).
	LostWorkFraction float64 `json:"lostWorkFraction"`
	// DLTLostFraction is the single-round DLT schedule's destroyed work
	// fraction under the same faults (a dead worker's whole allocation).
	DLTLostFraction float64 `json:"dltLostFraction"`
	// ReplanVolumeRatio is the re-planned Comm_hom/k volume over the
	// survivor bound 2N·√(Σ sᵢ/s₁); 0 when no crash occurred.
	ReplanVolumeRatio float64 `json:"replanVolumeRatio"`
}

// Degraded reports whether the faults measurably hurt the demand-driven
// run (any inflation, waste, or re-execution).
func (m FaultMetrics) Degraded() bool {
	return m.MakespanInflation > 1 || m.ExtraCommFraction > 0 ||
		m.Reexecutions > 0 || m.LostWorkFraction > 0
}
