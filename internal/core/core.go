// Package core is the top-level API of the library: it operationalizes
// the paper's contribution as a planner that (i) classifies a workload's
// divisibility — the Section 2 "no free lunch" test — and (ii) produces
// heterogeneity-aware data-distribution plans for the workloads that need
// them (outer product, matrix multiplication) or DLT schedules for the
// ones that don't (linear and almost-linear loads).
//
// The three verdicts mirror the paper's structure:
//
//   - Divisible (α = 1): classical DLT applies; use the closed-form
//     optimal allocations of package dlt.
//   - AlmostDivisible (N·log N): a cheap pre-processing (sample sort's
//     splitter selection) turns the load into a divisible one; use
//     package samplesort.
//   - NotDivisible (N^α, α > 1): no chunking of the *input* performs more
//     than a vanishing fraction 1/P^(α-1) of the work. The data must be
//     replicated, and on heterogeneous platforms the replication layout
//     should come from the PERI-SUM partitioner (packages partition,
//     outer, matmul).
package core

import (
	"fmt"
	"math"

	"nlfl/internal/nldlt"
	"nlfl/internal/samplesort"
)

// Divisibility classifies a workload for DLT purposes.
type Divisibility int

// Divisibility verdicts.
const (
	// Divisible marks linear-cost loads: DLT applies directly.
	Divisible Divisibility = iota
	// AlmostDivisible marks N·log N loads: DLT applies after a
	// pre-processing phase whose share of the work vanishes with N.
	AlmostDivisible
	// NotDivisible marks super-linear loads: no input chunking works;
	// replicate data and partition the computation domain instead.
	NotDivisible
)

// String implements fmt.Stringer.
func (d Divisibility) String() string {
	switch d {
	case Divisible:
		return "divisible"
	case AlmostDivisible:
		return "almost-divisible"
	case NotDivisible:
		return "not-divisible"
	default:
		return fmt.Sprintf("divisibility(%d)", int(d))
	}
}

// WorkloadKind names the cost model of a workload.
type WorkloadKind int

// Supported workload cost models.
const (
	// Linear is cost N (filtering, streaming, text processing).
	Linear WorkloadKind = iota
	// LogLinear is cost N·log N (sorting).
	LogLinear
	// Power is cost N^α with α > 1 (outer product α=2, matmul α=3 over
	// its N... the α is over the *input size*; see Workload.Alpha).
	Power
)

// Workload describes a computation by input size and cost model.
type Workload struct {
	Kind WorkloadKind
	// N is the input data size (elements).
	N float64
	// Alpha is the cost exponent for Kind == Power.
	Alpha float64
}

// Verdict is the outcome of the divisibility analysis for one workload on
// a platform of a given size.
type Verdict struct {
	Workload Workload
	P        int
	Class    Divisibility
	// UndoneFraction is the share of the total work an optimal one-phase
	// DLT distribution leaves undone: 0 for linear loads, log p/log N for
	// sorting, 1 - 1/P^(α-1) for power loads.
	UndoneFraction float64
	// Advice is a one-line recommendation.
	Advice string
}

// String renders the verdict.
func (v Verdict) String() string {
	return fmt.Sprintf("%s (N=%g, p=%d): %s, undone fraction %.4f — %s",
		kindName(v.Workload.Kind), v.Workload.N, v.P, v.Class, v.UndoneFraction, v.Advice)
}

func kindName(k WorkloadKind) string {
	switch k {
	case Linear:
		return "linear"
	case LogLinear:
		return "N·logN"
	case Power:
		return "power"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Analyze classifies a workload on a p-worker platform — the paper's
// Section 2/3 analysis as a function.
func Analyze(w Workload, p int) (Verdict, error) {
	if p < 1 {
		return Verdict{}, fmt.Errorf("core: need at least one worker, got %d", p)
	}
	if w.N <= 0 || math.IsNaN(w.N) || math.IsInf(w.N, 0) {
		return Verdict{}, fmt.Errorf("core: invalid input size %v", w.N)
	}
	v := Verdict{Workload: w, P: p}
	switch w.Kind {
	case Linear:
		v.Class = Divisible
		v.UndoneFraction = 0
		v.Advice = "use classical DLT (package dlt): optimal closed-form allocations exist"
	case LogLinear:
		v.Class = AlmostDivisible
		v.UndoneFraction = samplesort.NonDivisibleFraction(int(w.N), p)
		v.Advice = "pre-process with sample-sort splitter selection (package samplesort), then DLT"
	case Power:
		if w.Alpha < 1 || math.IsNaN(w.Alpha) {
			return Verdict{}, fmt.Errorf("core: power workload needs α ≥ 1, got %v", w.Alpha)
		}
		if w.Alpha == 1 {
			v.Class = Divisible
			v.Advice = "α=1 is a linear load; use classical DLT"
			break
		}
		v.Class = NotDivisible
		v.UndoneFraction = nldlt.UnprocessedFraction(p, w.Alpha)
		v.Advice = "replicate data and partition the computation domain (packages partition, outer, matmul)"
	default:
		return Verdict{}, fmt.Errorf("core: unknown workload kind %d", w.Kind)
	}
	return v, nil
}
