package runtime

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"nlfl/internal/faults"
	"nlfl/internal/matmul"
	"nlfl/internal/platform"
	"nlfl/internal/stats"
	"nlfl/internal/trace"
)

func chaosVectors(t *testing.T, n int, seed int64) (a, b []float64) {
	t.Helper()
	r := stats.NewRNG(seed)
	return stats.SampleN(stats.Uniform{Lo: -1, Hi: 1}, r, n),
		stats.SampleN(stats.Uniform{Lo: -1, Hi: 1}, r, n)
}

// auditChaos checks everything a clean chaos run must satisfy: correct
// product, zero oracle violations (exactly-once armed), and the closed
// recovery ledger.
func auditChaos(t *testing.T, rep *Report, a, b []float64) {
	t.Helper()
	if want := matmul.VectorOuter(a, b); !want.Equal(rep.Out, 0) {
		t.Errorf("product differs from the reference kernel")
	}
	if vs := trace.Check(rep.Trace, rep.Expect(1e-9)); len(vs) != 0 {
		t.Errorf("trace violations: %v", vs)
	}
	if !rep.Chaos {
		t.Errorf("report not flagged as a chaos run")
	}
	if rep.ReplannedVolume < rep.PlanVolume {
		t.Errorf("replanned volume %v below the plan volume %v — a re-plan never ships less",
			rep.ReplannedVolume, rep.PlanVolume)
	}
	if rep.CommittedVolume != rep.ReplannedVolume {
		t.Errorf("committed volume %v ≠ survivor-re-planned closed form %v", rep.CommittedVolume, rep.ReplannedVolume)
	}
	if rep.DataVolume != rep.CommittedVolume+rep.WastedData {
		t.Errorf("shipping ledger leaks: %v ≠ %v + %v", rep.DataVolume, rep.CommittedVolume, rep.WastedData)
	}
}

func TestChaosCrashHetReplansOntoSurvivors(t *testing.T) {
	pl := snappedPlatform(t)
	const n = 96
	a, b := chaosVectors(t, n, 11)
	plan, err := PlanHet(pl, n)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(plan, a, b, Options{
		Speeds:        pl.Speeds(),
		WorkPerSecond: 1e5,
		// Burst 1: no banked credit, so every worker pays honest token
		// time and the crash instant lands mid-chunk, not after an
		// instant unthrottled drain.
		Burst:       1,
		VerifyEvery: 31,
		Chaos: Chaos{
			Scenario:   faults.SingleCrash(3, 0.002),
			MaxRetries: 4,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	auditChaos(t, rep, a, b)
	if rep.DegradedWorkers != 1 {
		t.Errorf("DegradedWorkers = %d, want 1", rep.DegradedWorkers)
	}
	if rep.ReclaimedCells <= 0 {
		t.Errorf("ReclaimedCells = %v, want > 0", rep.ReclaimedCells)
	}
	// The dead worker's rectangle went to the survivors, so the measured
	// committed traffic must exceed the fault-free plan.
	if rep.ReplannedVolume <= rep.PlanVolume {
		t.Errorf("replanned volume %v did not grow past the plan volume %v", rep.ReplannedVolume, rep.PlanVolume)
	}
}

// TestChaosCrashAtTimeZero is the edge case where the victim dies before
// claiming its first chunk: its entire owned backlog is reclaimed before
// any commit, and the survivors still finish the whole domain.
func TestChaosCrashAtTimeZero(t *testing.T) {
	pl := snappedPlatform(t)
	const n = 64
	a, b := chaosVectors(t, n, 12)
	plan, err := PlanHet(pl, n)
	if err != nil {
		t.Fatal(err)
	}
	owned := 0
	for _, c := range plan.Chunks {
		if c.Owner == 3 {
			owned += c.Cells()
		}
	}
	if owned == 0 {
		t.Fatal("het plan assigns no cells to worker 3; test is vacuous")
	}
	rep, err := Run(plan, a, b, Options{
		Speeds:        pl.Speeds(),
		WorkPerSecond: 2e5,
		VerifyEvery:   17,
		Chaos: Chaos{
			Scenario:   faults.SingleCrash(3, 0),
			MaxRetries: 4,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	auditChaos(t, rep, a, b)
	if got := int(rep.ReclaimedCells); got != owned {
		t.Errorf("ReclaimedCells = %d, want the victim's whole backlog %d", got, owned)
	}
	if rep.PerWorkerCells[3] != 0 {
		t.Errorf("dead worker still computed %v cells", rep.PerWorkerCells[3])
	}
}

func TestChaosCrashWithoutRetryBudgetFailsTyped(t *testing.T) {
	pl := snappedPlatform(t)
	const n = 64
	a, b := chaosVectors(t, n, 13)
	plan, err := PlanHet(pl, n)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := Run(plan, a, b, Options{
			Speeds:        pl.Speeds(),
			WorkPerSecond: 2e5,
			Chaos:         Chaos{Scenario: faults.SingleCrash(3, 0)},
		})
		done <- err
	}()
	select {
	case err := <-done:
		if !errors.Is(err, ErrWorkerFailed) {
			t.Fatalf("got %v, want ErrWorkerFailed", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("run hung instead of returning ErrWorkerFailed")
	}
}

// TestRunWorkerPanicReturnsErrWorkerFailed is the regression test for
// the pre-chaos bug: a panicking worker goroutine crashed the whole
// process (goroutine panics are fatal), so Run could never report it.
// The pool must now contain the panic and surface a typed error.
func TestRunWorkerPanicReturnsErrWorkerFailed(t *testing.T) {
	pl := snappedPlatform(t)
	const n = 64
	a, b := chaosVectors(t, n, 14)
	for _, chaosOn := range []bool{false, true} {
		plan, err := PlanHom(pl, n)
		if err != nil {
			t.Fatal(err)
		}
		opts := Options{
			Speeds:        pl.Speeds(),
			WorkPerSecond: 2e6,
			// Key on the task, not the worker: under goroutine scheduling
			// jitter a fixed worker may never claim a chunk, but some
			// worker always claims task 0.
			testHookChunkStart: func(w int, c Chunk) {
				if c.Task == 0 {
					panic("injected test panic")
				}
			},
		}
		if chaosOn {
			opts.Chaos = Chaos{SpeculateAfter: 1, MaxRetries: 1}
		}
		done := make(chan error, 1)
		go func() {
			_, err := Run(plan, a, b, opts)
			done <- err
		}()
		select {
		case err := <-done:
			if !errors.Is(err, ErrWorkerFailed) {
				t.Fatalf("chaos=%v: got %v, want ErrWorkerFailed", chaosOn, err)
			}
			if !strings.Contains(err.Error(), "panicked") {
				t.Fatalf("chaos=%v: error %q does not mention the panic", chaosOn, err)
			}
		case <-time.After(30 * time.Second):
			t.Fatalf("chaos=%v: run hung after worker panic", chaosOn)
		}
	}
}

func TestRunContextCancellation(t *testing.T) {
	pl := snappedPlatform(t)
	const n = 128
	a, b := chaosVectors(t, n, 15)
	for _, chaosOn := range []bool{false, true} {
		plan, err := PlanHomK(pl, n, 0.01, 0)
		if err != nil {
			t.Fatal(err)
		}
		opts := Options{Speeds: pl.Speeds(), WorkPerSecond: 2e3} // ~8 s fault-free
		if chaosOn {
			opts.Chaos = Chaos{SpeculateAfter: 10, MaxRetries: 1}
		}
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
		start := time.Now()
		_, err = RunContext(ctx, plan, a, b, opts)
		cancel()
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("chaos=%v: got %v, want DeadlineExceeded", chaosOn, err)
		}
		if el := time.Since(start); el > 5*time.Second {
			t.Fatalf("chaos=%v: cancellation took %v", chaosOn, el)
		}
	}
}

func TestChaosStragglerSpeculation(t *testing.T) {
	pl, err := platform.FromSpeeds([]float64{1, 1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	const n = 64
	a, b := chaosVectors(t, n, 16)
	plan, err := PlanHom(pl, n)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(plan, a, b, Options{
		Speeds:        pl.Speeds(),
		WorkPerSecond: 2e5,
		Burst:         1,
		VerifyEvery:   13,
		Chaos: Chaos{
			Scenario: faults.Scenario{Events: []faults.Event{
				{Kind: faults.Straggler, Worker: 0, Time: 0, Until: 10, Factor: 0.02},
			}},
			MaxRetries:     4,
			SpeculateAfter: 0.005,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	auditChaos(t, rep, a, b)
	if rep.SpeculativeWins < 1 {
		t.Errorf("SpeculativeWins = %d, want ≥ 1 (straggler held chunks 50× past the threshold)", rep.SpeculativeWins)
	}
	if rep.WastedWorkCells <= 0 {
		t.Errorf("WastedWorkCells = %v, want > 0 (the straggler's losing copies)", rep.WastedWorkCells)
	}
}

func TestChaosFlakyLinkRetriesWithBackoff(t *testing.T) {
	pl := snappedPlatform(t)
	const n = 64
	a, b := chaosVectors(t, n, 17)
	plan, err := PlanHom(pl, n)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(plan, a, b, Options{
		Speeds:        pl.Speeds(),
		WorkPerSecond: 2e5,
		Burst:         1,
		VerifyEvery:   19,
		Chaos: Chaos{
			Scenario: faults.Scenario{Events: []faults.Event{
				// Every transfer to worker 0 inside the window is lost —
				// deterministic retries regardless of the drop RNG.
				{Kind: faults.LinkDrop, Worker: 0, Time: 0, Until: 0.004, DropProb: 1},
			}},
			MaxRetries:  10,
			BackoffBase: 1e-3,
			BackoffMax:  4e-3,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	auditChaos(t, rep, a, b)
	if rep.RetriedChunks < 1 {
		t.Errorf("RetriedChunks = %d, want ≥ 1 (prob-1 drop window at start)", rep.RetriedChunks)
	}
	if rep.WastedData <= 0 {
		t.Errorf("WastedData = %v, want > 0 (dropped payloads)", rep.WastedData)
	}
}

func TestChaosFlakyLinkBudgetExhaustedFailsTyped(t *testing.T) {
	pl := snappedPlatform(t)
	const n = 64
	a, b := chaosVectors(t, n, 18)
	plan, err := PlanHom(pl, n)
	if err != nil {
		t.Fatal(err)
	}
	_, err = Run(plan, a, b, Options{
		Speeds:        pl.Speeds(),
		WorkPerSecond: 2e5,
		Burst:         1,
		Chaos: Chaos{
			Scenario: faults.Scenario{Events: []faults.Event{
				{Kind: faults.LinkDrop, Worker: 0, Time: 0, Until: 100, DropProb: 1},
			}},
			MaxRetries:  1,
			BackoffBase: 1e-4,
			BackoffMax:  1e-4,
		},
	})
	if !errors.Is(err, ErrTransferFailed) {
		t.Fatalf("got %v, want ErrTransferFailed", err)
	}
}

func TestChaosTransientOutageAndLinkSlow(t *testing.T) {
	pl := snappedPlatform(t)
	const n = 64
	a, b := chaosVectors(t, n, 19)
	plan, err := PlanHomK(pl, n, 0.01, 0)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(plan, a, b, Options{
		Speeds:        pl.Speeds(),
		WorkPerSecond: 2e5,
		Burst:         1,
		VerifyEvery:   23,
		Link:          Link{ElemsPerSecond: 5e6},
		Chaos: Chaos{
			Scenario: faults.Scenario{Events: []faults.Event{
				{Kind: faults.Transient, Worker: 1, Time: 0.001, Until: 0.004},
				{Kind: faults.LinkSlow, Worker: 2, Time: 0, Until: 0.01, Factor: 0.25},
			}},
			MaxRetries: 2,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	auditChaos(t, rep, a, b)
}

// TestChaosPrefetchRejected documents the one unsupported combination.
func TestChaosPrefetchRejected(t *testing.T) {
	pl := snappedPlatform(t)
	const n = 32
	a, b := chaosVectors(t, n, 20)
	plan, err := PlanHom(pl, n)
	if err != nil {
		t.Fatal(err)
	}
	_, err = Run(plan, a, b, Options{
		Speeds:   pl.Speeds(),
		Prefetch: true,
		Chaos:    Chaos{SpeculateAfter: 0.01},
	})
	if err == nil || !strings.Contains(err.Error(), "Prefetch") {
		t.Fatalf("got %v, want a Prefetch/Chaos rejection", err)
	}
}

// TestChaosPropertySweep drives ≥200 randomized crash/straggler/flaky
// schedules across all three strategies and asserts the exactly-once
// invariant (via the trace oracle), the correct product, and the closed
// recovery ledger on every single run.
func TestChaosPropertySweep(t *testing.T) {
	const (
		cases = 210
		n     = 24
	)
	pl, err := platform.FromSpeeds([]float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	a, b := chaosVectors(t, n, 21)
	want := matmul.VectorOuter(a, b)

	var degraded, specWins, retried int
	for seed := 0; seed < cases; seed++ {
		var plan *StrategyPlan
		var err error
		switch seed % 3 {
		case 0:
			plan, err = PlanHom(pl, n)
		case 1:
			plan, err = PlanHomK(pl, n, 0.01, 0)
		default:
			plan, err = PlanHet(pl, n)
		}
		if err != nil {
			t.Fatal(err)
		}
		ch := Chaos{MaxRetries: 8, BackoffBase: 2e-4, BackoffMax: 1e-3}
		switch (seed / 3) % 3 {
		case 0:
			sc, err := faults.RandomCrashes(3, 1, 0.002, int64(seed))
			if err != nil {
				t.Fatal(err)
			}
			ch.Scenario = sc
		case 1:
			sc, err := faults.RandomStragglers(3, 2, 0.1, 0.0002, 0.002, int64(seed))
			if err != nil {
				t.Fatal(err)
			}
			ch.Scenario = sc
			ch.SpeculateAfter = 0.001
		default:
			crash, err := faults.RandomCrashes(3, 1, 0.0015, int64(seed))
			if err != nil {
				t.Fatal(err)
			}
			flaky, err := faults.FlakyLinks(3, 1, 0.5, 0, 0.001, int64(seed))
			if err != nil {
				t.Fatal(err)
			}
			ch.Scenario = faults.Scenario{
				Events: append(crash.Events, flaky.Events...),
				Seed:   int64(seed),
			}
			ch.SpeculateAfter = 0.002
		}
		rep, err := Run(plan, a, b, Options{
			Speeds:        pl.Speeds(),
			WorkPerSecond: 2e5,
			Burst:         1,
			Chaos:         ch,
		})
		if err != nil {
			t.Fatalf("seed %d (%s): %v", seed, plan.Strategy, err)
		}
		if !want.Equal(rep.Out, 0) {
			t.Fatalf("seed %d (%s): wrong product", seed, plan.Strategy)
		}
		if vs := trace.Check(rep.Trace, rep.Expect(1e-9)); len(vs) != 0 {
			t.Fatalf("seed %d (%s): trace violations: %v", seed, plan.Strategy, vs)
		}
		if rep.CommittedVolume != rep.ReplannedVolume {
			t.Fatalf("seed %d (%s): committed %v ≠ replanned %v", seed, plan.Strategy, rep.CommittedVolume, rep.ReplannedVolume)
		}
		if rep.DataVolume != rep.CommittedVolume+rep.WastedData {
			t.Fatalf("seed %d (%s): shipping ledger leaks", seed, plan.Strategy)
		}
		degraded += rep.DegradedWorkers
		specWins += rep.SpeculativeWins
		retried += rep.RetriedChunks
	}
	// The sweep must actually exercise the machinery, not dodge it.
	if degraded == 0 {
		t.Errorf("no crash was realized across %d cases", cases)
	}
	if specWins == 0 {
		t.Errorf("no speculative win across %d cases", cases)
	}
	if retried == 0 {
		t.Errorf("no transfer retry across %d cases", cases)
	}
}
