package trace

import (
	"sync"
	"time"
)

// Live records a timeline from a *real* concurrent run: goroutine workers
// call Add/Mark freely while the run executes, and Now supplies span
// bounds as seconds on the process's monotonic clock, zeroed at NewLive.
// The simulators build their timelines single-threaded in virtual time;
// Live is the bridge that lets wall-clock executors (internal/runtime)
// feed the same invariant oracle — Check audits a measured run exactly
// like a simulated one.
type Live struct {
	mu    sync.Mutex
	tl    *Timeline
	start time.Time
}

// NewLive starts a live recording for p workers; the clock zero is now.
func NewLive(p int) *Live {
	return &Live{tl: New(p), start: time.Now()}
}

// Now returns the seconds elapsed since NewLive on the monotonic clock —
// the time base every recorded span must use.
func (l *Live) Now() float64 { return time.Since(l.start).Seconds() }

// Reserve grows each worker's span list to hold spansPerWorker entries
// and the relay list to hold relays, so a run of known size records its
// timeline without reallocating under the recording mutex. Existing
// entries are preserved; capacities never shrink. Safe for concurrent
// use, though it is meant to be called once before the workers start.
func (l *Live) Reserve(spansPerWorker, relays int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for w := range l.tl.Spans {
		if cap(l.tl.Spans[w]) < spansPerWorker {
			grown := make([]Span, len(l.tl.Spans[w]), spansPerWorker)
			copy(grown, l.tl.Spans[w])
			l.tl.Spans[w] = grown
		}
	}
	if relays > cap(l.tl.Relays) {
		grown := make([]Relay, len(l.tl.Relays), relays)
		copy(grown, l.tl.Relays)
		l.tl.Relays = grown
	}
}

// Add records a span for worker w. Safe for concurrent use.
func (l *Live) Add(w int, s Span) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.tl.Add(w, s)
}

// AddRelay records an intermediate-hop transfer window. Safe for
// concurrent use.
func (l *Live) AddRelay(r Relay) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.tl.AddRelay(r)
}

// Mark records a point event. Safe for concurrent use.
func (l *Live) Mark(m Marker) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.tl.Mark(m)
}

// Timeline returns the recording. Call it only after every worker has
// stopped adding spans; the returned timeline is the live one, not a copy.
func (l *Live) Timeline() *Timeline {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.tl
}
