// Package mapreduce is an in-memory MapReduce engine with the accounting
// the paper needs: shuffle-volume counters, demand-driven placement of
// homogeneous tasks on heterogeneous workers, and Hadoop-style speculative
// re-execution.
//
// The paper (Sections 1.1 and 4) treats MapReduce as the software
// embodiment of Divisible Load Theory: a large computation broken into
// many identical chunks, scattered demand-driven so faster workers
// naturally take more. Its limitation for non-linear workloads is data
// redundancy — running matrix multiplication over MapReduce means feeding
// the framework a *replicated* dataset (all (aᵢₖ, bₖⱼ) pairs — n³ records
// for an n² problem) or accepting block distributions that re-ship vector
// data per block. This package implements the engine faithfully enough to
// measure exactly that redundancy.
package mapreduce

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
)

// Emit is the output channel handed to map functions.
type Emit[K comparable, V any] func(key K, value V)

// Job describes a MapReduce computation from inputs I to per-key results R
// through intermediate pairs (K, V).
type Job[I any, K comparable, V any, R any] struct {
	// Name labels the job in counters.
	Name string
	// Map is applied to every input record.
	Map func(in I, emit Emit[K, V])
	// Combine (optional) pre-reduces each mapper's local pairs for one
	// key, shrinking the shuffle — Hadoop's combiner.
	Combine func(key K, values []V) V
	// Reduce folds all values of one key into the final result.
	Reduce func(key K, values []V) R
	// Mappers and Reducers set the task parallelism (defaults 4 and 4).
	Mappers  int
	Reducers int
}

// Counters tallies the volumes the paper's analysis tracks.
type Counters struct {
	Job            string
	MapTasks       int
	ReduceTasks    int
	InputRecords   int
	MapOutputPairs int
	// ShufflePairs is the number of (K,V) pairs crossing from mappers to
	// reducers (after combining) — the communication volume of the
	// MapReduce execution.
	ShufflePairs int
	OutputKeys   int
}

// String renders the counters on one line.
func (c Counters) String() string {
	return fmt.Sprintf("%s: maps=%d reduces=%d in=%d mapped=%d shuffled=%d out=%d",
		c.Job, c.MapTasks, c.ReduceTasks, c.InputRecords, c.MapOutputPairs, c.ShufflePairs, c.OutputKeys)
}

// Run executes the job on the given inputs with real goroutine
// parallelism and returns the reduced results plus counters. Execution is
// deterministic: reducer inputs are ordered by (mapper index, emission
// order) regardless of goroutine scheduling.
func (j *Job[I, K, V, R]) Run(inputs []I) (map[K]R, Counters, error) {
	if j.Map == nil || j.Reduce == nil {
		return nil, Counters{}, errors.New("mapreduce: job needs Map and Reduce")
	}
	mappers := j.Mappers
	if mappers <= 0 {
		mappers = 4
	}
	reducers := j.Reducers
	if reducers <= 0 {
		reducers = 4
	}
	ctr := Counters{Job: j.Name, MapTasks: mappers, ReduceTasks: reducers, InputRecords: len(inputs)}

	// Map phase: mapper m handles the m-th contiguous input split and
	// writes its output into its own partitioned buffer.
	partitions := make([][][]kvPair[K, V], mappers) // [mapper][reducer][]pair
	mapCounts := make([]int, mappers)
	var wg sync.WaitGroup
	for m := 0; m < mappers; m++ {
		lo := m * len(inputs) / mappers
		hi := (m + 1) * len(inputs) / mappers
		partitions[m] = make([][]kvPair[K, V], reducers)
		wg.Add(1)
		go func(m, lo, hi int) {
			defer wg.Done()
			emit := func(k K, v V) {
				r := partitionOf(k, reducers)
				partitions[m][r] = append(partitions[m][r], kvPair[K, V]{k, v})
				mapCounts[m]++
			}
			for _, in := range inputs[lo:hi] {
				j.Map(in, emit)
			}
			if j.Combine != nil {
				for r := range partitions[m] {
					partitions[m][r] = combinePairs(partitions[m][r], j.Combine)
				}
			}
		}(m, lo, hi)
	}
	wg.Wait()
	for _, c := range mapCounts {
		ctr.MapOutputPairs += c
	}

	// Shuffle + reduce phase: reducer r consumes partition r of every
	// mapper, in mapper order.
	results := make([]map[K]R, reducers)
	shuffle := make([]int, reducers)
	for r := 0; r < reducers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			grouped := map[K][]V{}
			var order []K
			for m := 0; m < mappers; m++ {
				for _, p := range partitions[m][r] {
					if _, seen := grouped[p.K]; !seen {
						order = append(order, p.K)
					}
					grouped[p.K] = append(grouped[p.K], p.V)
					shuffle[r]++
				}
			}
			out := make(map[K]R, len(grouped))
			for _, k := range order {
				out[k] = j.Reduce(k, grouped[k])
			}
			results[r] = out
		}(r)
	}
	wg.Wait()

	final := map[K]R{}
	for r, part := range results {
		ctr.ShufflePairs += shuffle[r]
		for k, v := range part {
			if _, dup := final[k]; dup {
				return nil, ctr, fmt.Errorf("mapreduce: key %v reduced by two reducers", k)
			}
			final[k] = v
		}
	}
	ctr.OutputKeys = len(final)
	return final, ctr, nil
}

// kvPair is one intermediate (key, value) record.
type kvPair[K comparable, V any] struct {
	K K
	V V
}

// combinePairs groups a mapper-local partition by key and applies the
// combiner, preserving first-occurrence key order.
func combinePairs[K comparable, V any](ps []kvPair[K, V], combine func(K, []V) V) []kvPair[K, V] {
	grouped := map[K][]V{}
	var order []K
	for _, p := range ps {
		if _, seen := grouped[p.K]; !seen {
			order = append(order, p.K)
		}
		grouped[p.K] = append(grouped[p.K], p.V)
	}
	out := make([]kvPair[K, V], 0, len(order))
	for _, k := range order {
		out = append(out, kvPair[K, V]{k, combine(k, grouped[k])})
	}
	return out
}

// partitionOf hashes a key to a reducer (FNV-1a over the key's printed
// form — adequate and deterministic for the experiment keys used here).
func partitionOf[K comparable](k K, reducers int) int {
	h := fnv.New32a()
	fmt.Fprintf(h, "%v", k)
	return int(h.Sum32() % uint32(reducers))
}

// SortedKeys returns the keys of a result map in sorted printed order —
// a test/report helper for deterministic iteration.
func SortedKeys[K comparable, R any](m map[K]R) []K {
	keys := make([]K, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		return fmt.Sprintf("%v", keys[i]) < fmt.Sprintf("%v", keys[j])
	})
	return keys
}
