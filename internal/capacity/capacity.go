package capacity

import (
	"fmt"
	"math"
	"sort"

	"nlfl/internal/core"
	"nlfl/internal/nldlt"
	"nlfl/internal/platform"
)

// Model is a capacity-planning question: a workload class (cost N^α for
// a size-N input), a fleet speed profile, the token-bucket rate scale
// and the shared one-port master-link bandwidth. Every prediction below
// is for the replicate-and-partition execution the paper prescribes for
// non-linear loads (Section 4): the N^(α/2) × N^(α/2) computation domain
// is cut into one PERI-SUM rectangle per worker, areas proportional to
// speeds, inputs shipped over the serialized master link.
//
// The model deliberately prices the *right* execution, not the broken
// one: input chunking — the DLT reflex the paper refutes — would leave a
// 1 − 1/p^(α-1) fraction of the work undone no matter the fleet size
// (Prediction.UnprocessedIfChunked reports that trap for reference).
type Model struct {
	// Alpha is the workload's cost exponent: processing a size-N input
	// costs N^α cell updates. Alpha must be ≥ 1; the planner's interest
	// is α > 1, where DLT-style input chunking stops working.
	Alpha float64
	// N is the input size. The computation domain then holds N^α cells.
	N int
	// Speeds are the candidate workers' relative speeds (all positive).
	// Predictions for p workers always use the p fastest.
	Speeds []float64
	// WorkPerSecond is the cell-update rate of a speed-1 worker — the
	// same token-bucket scale runtime.Options and service.Config use.
	WorkPerSecond float64
	// Bandwidth is the shared master link's rate in input elements per
	// second, serialized one-port style across the fleet; 0 means the
	// link is not the bottleneck (transfers at memcpy speed).
	Bandwidth float64
}

// Prediction is the model's forecast for one fleet-slice size.
type Prediction struct {
	// Workers is the slice size p (the p fastest of Model.Speeds).
	Workers int `json:"workers"`
	// CommVolume is the PERI-SUM plan's input volume Σ(wᵢ+hᵢ)·N^(α/2),
	// in elements — the continuous closed form before integer snapping.
	CommVolume float64 `json:"commVolume"`
	// CommTime is the serialized transfer time CommVolume/Bandwidth
	// (0 when the link is unconstrained).
	CommTime float64 `json:"commTime"`
	// ComputeTime is the balanced compute phase N^α/(R·Σᵢ≤ₚ sᵢ): areas
	// are proportional to speeds, so every worker computes for the same
	// time.
	ComputeTime float64 `json:"computeTime"`
	// Makespan is CommTime + ComputeTime — the one-port model's finish
	// time for the last-served worker, which is the job's finish time
	// because compute phases are balanced.
	Makespan float64 `json:"makespan"`
	// Speedup is Makespan(1 fastest worker)/Makespan(p).
	Speedup float64 `json:"speedup"`
	// UnprocessedIfChunked is the 1 − 1/p^(α-1) fraction of the work
	// that *input chunking* would leave undone at this worker count —
	// the paper's Section 2 trap, reported so operators see what the
	// partition-the-computation plan is buying them.
	UnprocessedIfChunked float64 `json:"unprocessedIfChunked"`
}

// Validate checks the model's inputs.
func (m Model) Validate() error {
	if m.Alpha < 1 || math.IsNaN(m.Alpha) || math.IsInf(m.Alpha, 0) {
		return fmt.Errorf("capacity: alpha %v must be ≥ 1", m.Alpha)
	}
	if m.N < 1 {
		return fmt.Errorf("capacity: input size n=%d", m.N)
	}
	if len(m.Speeds) == 0 {
		return fmt.Errorf("capacity: need at least one worker speed")
	}
	for i, s := range m.Speeds {
		if s <= 0 || math.IsNaN(s) || math.IsInf(s, 0) {
			return fmt.Errorf("capacity: worker %d has invalid speed %v", i, s)
		}
	}
	if m.WorkPerSecond <= 0 || math.IsNaN(m.WorkPerSecond) || math.IsInf(m.WorkPerSecond, 0) {
		return fmt.Errorf("capacity: invalid work rate %v", m.WorkPerSecond)
	}
	if m.Bandwidth < 0 || math.IsNaN(m.Bandwidth) || math.IsInf(m.Bandwidth, 0) {
		return fmt.Errorf("capacity: invalid bandwidth %v", m.Bandwidth)
	}
	return nil
}

// work returns the workload's total cost N^α in cells.
func (m Model) work() float64 {
	return math.Pow(float64(m.N), m.Alpha)
}

// side returns the computation domain's side N^(α/2): the domain holding
// N^α cells, which the outer-product case (α=2) makes the familiar N×N.
func (m Model) side() float64 {
	return math.Pow(float64(m.N), m.Alpha/2)
}

// fastest returns the p largest speeds, descending.
func (m Model) fastest(p int) []float64 {
	s := append([]float64(nil), m.Speeds...)
	sort.Sort(sort.Reverse(sort.Float64Slice(s)))
	return s[:p]
}

// PredictSlice forecasts the makespan of the replicate-and-partition
// plan on the p fastest workers: PERI-SUM volume over the serialized
// link plus the balanced compute phase.
func (m Model) PredictSlice(p int) (Prediction, error) {
	if err := m.Validate(); err != nil {
		return Prediction{}, err
	}
	if p < 1 || p > len(m.Speeds) {
		return Prediction{}, fmt.Errorf("capacity: slice size %d not in [1, %d]", p, len(m.Speeds))
	}
	pred, err := m.predict(p)
	if err != nil {
		return Prediction{}, err
	}
	if p == 1 {
		pred.Speedup = 1
		return pred, nil
	}
	base, err := m.predict(1)
	if err != nil {
		return Prediction{}, err
	}
	pred.Speedup = base.Makespan / pred.Makespan
	return pred, nil
}

// predict is PredictSlice without input validation or the speedup base.
func (m Model) predict(p int) (Prediction, error) {
	speeds := m.fastest(p)
	pl, err := platform.FromSpeeds(speeds)
	if err != nil {
		return Prediction{}, fmt.Errorf("capacity: %w", err)
	}
	plan, err := core.PlanOuterProduct(pl, m.side())
	if err != nil {
		return Prediction{}, fmt.Errorf("capacity: %w", err)
	}
	pred := Prediction{
		Workers:              p,
		CommVolume:           plan.TotalVolume,
		ComputeTime:          m.work() / (m.WorkPerSecond * pl.TotalSpeed()),
		UnprocessedIfChunked: nldlt.UnprocessedFraction(p, m.Alpha),
	}
	if m.Bandwidth > 0 {
		pred.CommTime = pred.CommVolume / m.Bandwidth
	}
	pred.Makespan = pred.CommTime + pred.ComputeTime
	return pred, nil
}

// Curve forecasts every slice size 1..len(Speeds). The raw per-p speedup
// is NOT monotone — past some p the extra input shipping outweighs the
// extra compute and the makespan worsens, which is exactly the signal
// the knee detector reads. AchievableSpeedup is the monotone envelope.
func (m Model) Curve() ([]Prediction, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	base, err := m.predict(1)
	if err != nil {
		return nil, err
	}
	base.Speedup = 1
	curve := make([]Prediction, len(m.Speeds))
	curve[0] = base
	for p := 2; p <= len(m.Speeds); p++ {
		pred, err := m.predict(p)
		if err != nil {
			return nil, err
		}
		pred.Speedup = base.Makespan / pred.Makespan
		curve[p-1] = pred
	}
	return curve, nil
}

// AchievableSpeedup returns max over p ≤ cap of curve[p-1].Speedup — the
// best speedup a fleet of cap workers can reach, since a planner is
// never forced to use workers that hurt. This envelope is monotone
// non-decreasing in cap by construction, the shape operators reason
// about; the raw per-p curve dips past the knee.
func AchievableSpeedup(curve []Prediction, cap int) float64 {
	best := 0.0
	for i := 0; i < cap && i < len(curve); i++ {
		if curve[i].Speedup > best {
			best = curve[i].Speedup
		}
	}
	return best
}
