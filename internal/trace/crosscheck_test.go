package trace_test

// Cross-checks: measured traffic in the simulators must reproduce the
// paper's closed-form communication volumes, and a deliberately broken
// executor must be caught by the oracle.

import (
	"math"
	"testing"

	"nlfl/internal/dessim"
	"nlfl/internal/mapreduce"
	"nlfl/internal/outer"
	"nlfl/internal/platform"
	"nlfl/internal/stats"
	"nlfl/internal/trace"
)

// TestCrossCheckCommhomHomogeneous: on a homogeneous platform, handing
// each of the p workers one Comm_hom block (side D = N/√p, data 2N/√p,
// area N²/p) through the MapReduce scheduler must ship exactly
// Comm_hom = 2N·√(Σsᵢ/s₁) = 2N√p — the Section 4.1.1 closed form — within
// 1e-9 relative.
func TestCrossCheckCommhomHomogeneous(t *testing.T) {
	const n = 1000.0
	for _, p := range []int{2, 4, 9, 16} {
		pl, err := platform.Homogeneous(p, 1, 1)
		if err != nil {
			t.Fatal(err)
		}
		blockData := 2 * n / math.Sqrt(float64(p))
		blockArea := n * n / float64(p)
		tasks := make([]mapreduce.TaskSpec, p)
		for i := range tasks {
			tasks[i] = mapreduce.TaskSpec{Data: blockData, Work: blockArea}
		}
		res, err := mapreduce.Schedule(pl, tasks, false)
		if err != nil {
			t.Fatal(err)
		}
		commHom := outer.Commhom(pl, n).Volume
		if want := 2 * n * math.Sqrt(float64(p)); !within(commHom, want, 1e-9) {
			t.Fatalf("p=%d: Commhom %v ≠ 2N√p = %v", p, commHom, want)
		}
		if got := res.Trace.CommVolume(); !within(got, commHom, 1e-9) {
			t.Errorf("p=%d: traced volume %v ≠ Comm_hom %v", p, got, commHom)
		}
		// The oracle states the same facts declaratively — and adds the
		// homogeneous balance guarantee (identical blocks, identical
		// workers ⇒ imbalance ≈ 0, far under the paper's 1% target).
		vs := trace.Check(res.Trace, &trace.Expect{
			HasWork:         true,
			TotalWork:       n * n,
			ProcessedWork:   n * n,
			HasComm:         true,
			ShippedData:     commHom,
			Bound:           commHom,
			BoundKind:       trace.BoundExact,
			BoundName:       "Comm_hom",
			ImbalanceTarget: 0.01,
		})
		if len(vs) != 0 {
			t.Errorf("p=%d: %v", p, trace.Must(vs))
		}
	}
}

// TestCrossCheckCommhomK: replay the Comm_hom/k plan (Section 4.3) on the
// star simulator. The traced volume must equal the plan's Volume within
// 1e-9 relative and the measured compute-time imbalance must respect the
// plan's own ≤1% promise.
func TestCrossCheckCommhomK(t *testing.T) {
	const n = 1000.0
	const eps = 0.01
	for seed := int64(1); seed <= 5; seed++ {
		pl, err := platform.Generate(8, platform.ProfileUniform.Distribution(0), stats.NewRNG(seed))
		if err != nil {
			t.Fatal(err)
		}
		r, err := outer.CommhomK(pl, n, eps, 0)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		// Reconstruct the physical schedule: counts·blocks of identical
		// squares, side D/k ⇒ data 2√x₁·N/k, area x₁N²/k².
		x1 := 1.0
		for _, x := range pl.NormalizedSpeeds() {
			if x < x1 {
				x1 = x
			}
		}
		k := float64(r.K)
		blockData := 2 * math.Sqrt(x1) * n / k
		blockArea := x1 * n * n / (k * k)
		var chunks []dessim.Chunk
		for w, per := range r.PerWorker {
			count := int(math.Round(per / blockData))
			for c := 0; c < count; c++ {
				chunks = append(chunks, dessim.Chunk{Worker: w, Data: blockData, Work: blockArea})
			}
		}
		tl, err := dessim.RunSingleRound(pl, chunks, dessim.ParallelLinks)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		tr := trace.FromDessim(tl)
		if got := tr.CommVolume(); !within(got, r.Volume, 1e-9) {
			t.Errorf("seed %d: traced volume %v ≠ plan volume %v", seed, got, r.Volume)
		}
		if got := tr.Imbalance(); got > eps*(1+1e-9) {
			t.Errorf("seed %d: measured imbalance %v breaks the plan's ≤%v promise", seed, got, eps)
		}
		vs := trace.Check(tr, &trace.Expect{
			HasComm:         true,
			ShippedData:     r.Volume,
			Bound:           r.Volume,
			BoundKind:       trace.BoundExact,
			BoundName:       "Comm_hom/k",
			ImbalanceTarget: eps,
		})
		if len(vs) != 0 {
			t.Errorf("seed %d: %v", seed, trace.Must(vs))
		}
		// The plan can never beat the Section 4.1.1 lower bound.
		if lb := outer.LowerBound(pl, n); r.Volume < lb*(1-1e-9) {
			t.Errorf("seed %d: plan volume %v below LB_comm %v", seed, r.Volume, lb)
		}
	}
}

// brokenSchedule is the deliberately buggy executor of the acceptance
// criterion: it books two compute spans on the same worker at overlapping
// times (a real scheduler bug class: forgetting that a CPU is an
// exclusive resource when re-queueing).
func brokenSchedule(p int) *trace.Timeline {
	tl := trace.New(p)
	tl.Add(0, trace.Span{Kind: trace.Comm, Start: 0, End: 1, Data: 1, Task: 0})
	tl.Add(0, trace.Span{Kind: trace.Compute, Start: 1, End: 4, Work: 3, Task: 0})
	// Bug: task 1's compute starts while task 0 still owns the CPU.
	tl.Add(0, trace.Span{Kind: trace.Comm, Start: 1, End: 2, Data: 1, Task: 1})
	tl.Add(0, trace.Span{Kind: trace.Compute, Start: 2, End: 5, Work: 3, Task: 1})
	return tl
}

func TestBrokenExecutorCaught(t *testing.T) {
	vs := trace.Check(brokenSchedule(2), nil)
	if len(vs) == 0 {
		t.Fatal("overlapping compute bookings not caught")
	}
	found := false
	for _, v := range vs {
		if v.Kind == trace.OverlapCompute && v.Worker == 0 {
			found = true
		}
		if v.Kind == trace.OverlapComm {
			t.Errorf("comm spans [0,1] and [1,2] do not overlap: %v", v)
		}
	}
	if !found {
		t.Fatalf("want an OverlapCompute violation on worker 0, got %v", vs)
	}
	if err := trace.Must(vs); err == nil {
		t.Fatal("Must should surface the violation as an error")
	}
}

// within reports a ≈ b within relative tolerance tol.
func within(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*(math.Abs(a)+math.Abs(b)+1)
}
