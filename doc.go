// Package nlfl is a Go reproduction of "Non-Linear Divisible Loads: There
// is No Free Lunch" (Olivier Beaumont, Hubert Larchevêque, Loris Marchal —
// IPDPS 2013, INRIA research report RR-8170).
//
// The library implements, from scratch and on the standard library only:
//
//   - classical linear Divisible Load Theory on star platforms
//     (internal/dlt) and its futile non-linear extension with the
//     Section 2 no-free-lunch analysis (internal/nldlt);
//   - the parallel sample sort of Section 3, real and simulated, with the
//     Theorem B.4 concentration checks (internal/samplesort);
//   - the PERI-SUM/PERI-MAX rectangle partitioners of Beaumont et al.
//     2002 used by the Heterogeneous Blocks strategy (internal/partition);
//   - the three outer-product data-distribution strategies and their
//     communication accounting (internal/outer), the matrix-
//     multiplication layouts and kernels (internal/matmul), and an
//     in-memory MapReduce engine with shuffle accounting and speculative
//     execution (internal/mapreduce);
//   - a discrete-event simulator for master–worker stars
//     (internal/dessim) and the evaluation harness regenerating every
//     figure and table of the paper (internal/experiments).
//
// The package-level benchmarks in bench_test.go regenerate each
// experiment; the cmd/nlfl binary exposes them on the command line; and
// EXPERIMENTS.md records paper-vs-measured values.
package nlfl
