package core

import (
	"fmt"
	"math"
	"strings"

	"nlfl/internal/outer"
	"nlfl/internal/partition"
	"nlfl/internal/platform"
)

// WorkerPlan is one worker's share of a non-linear computation plan.
type WorkerPlan struct {
	Worker int
	// Speed echoes the worker's speed.
	Speed float64
	// Share is the fraction of the computation domain assigned (= xᵢ).
	Share float64
	// Rect is the assigned rectangle in the unit computation domain.
	Rect partition.Rect
	// DataVolume is the input data the worker must receive, in elements
	// (for the outer product: (w+h)·N vector entries).
	DataVolume float64
}

// Plan is a heterogeneity-aware distribution plan for a non-linear
// (outer-product-shaped) workload — the constructive half of the paper.
type Plan struct {
	// N is the vector length (domain is N×N).
	N float64
	// Workers lists per-worker assignments, indexed like the platform.
	Workers []WorkerPlan
	// TotalVolume is the plan's total communication volume.
	TotalVolume float64
	// LowerBound is 2N·Σ√xᵢ.
	LowerBound float64
	// HomogeneousVolume is what the MapReduce-style Homogeneous Blocks
	// strategy would ship instead (the paper's Comm_hom), for comparison.
	HomogeneousVolume float64
}

// Ratio returns TotalVolume/LowerBound.
func (p *Plan) Ratio() float64 { return p.TotalVolume / p.LowerBound }

// Savings returns HomogeneousVolume/TotalVolume — the factor the
// heterogeneity-aware layout saves (the paper's ρ, 15–30× in the
// evaluation's heterogeneous settings).
func (p *Plan) Savings() float64 { return p.HomogeneousVolume / p.TotalVolume }

// String renders a human-readable plan summary.
func (p *Plan) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "plan for N=%g on %d workers: volume=%.4g (%.2f×LB), hom would ship %.4g (ρ=%.2f)\n",
		p.N, len(p.Workers), p.TotalVolume, p.Ratio(), p.HomogeneousVolume, p.Savings())
	for _, w := range p.Workers {
		fmt.Fprintf(&b, "  P%-3d speed=%-8.4g share=%-8.4g rect=%.3gx%.3g data=%.4g\n",
			w.Worker+1, w.Speed, w.Share, w.Rect.W, w.Rect.H, w.DataVolume)
	}
	return b.String()
}

// PlanOuterProduct builds the Heterogeneous Blocks plan for the outer
// product of two size-N vectors on the platform: one rectangle per
// worker, area proportional to speed, laid out by PERI-SUM.
func PlanOuterProduct(pl *platform.Platform, n float64) (*Plan, error) {
	if n <= 0 || math.IsNaN(n) || math.IsInf(n, 0) {
		return nil, fmt.Errorf("core: invalid problem size %v", n)
	}
	part, err := partition.PeriSum(pl.Speeds())
	if err != nil {
		return nil, err
	}
	if err := part.Validate(); err != nil {
		return nil, err
	}
	xs := pl.NormalizedSpeeds()
	plan := &Plan{
		N:                 n,
		LowerBound:        outer.LowerBound(pl, n),
		HomogeneousVolume: outer.Commhom(pl, n).Volume,
		Workers:           make([]WorkerPlan, pl.P()),
	}
	byIndex := make(map[int]partition.Rect, pl.P())
	for _, r := range part.Rects {
		byIndex[r.Index] = r
	}
	for i := 0; i < pl.P(); i++ {
		r := byIndex[i]
		vol := r.HalfPerimeter() * n
		plan.Workers[i] = WorkerPlan{
			Worker:     i,
			Speed:      pl.Worker(i).Speed,
			Share:      xs[i],
			Rect:       r,
			DataVolume: vol,
		}
		plan.TotalVolume += vol
	}
	return plan, nil
}

// PlanMatMul builds the same plan for an n×n matrix multiplication: the
// rectangle geometry is identical (Section 4.2 reduces matmul to a
// sequence of outer products), only the volume accounting changes — each
// worker needs hᵢ·n rows of A and wᵢ·n columns of B of n elements each,
// minus the 2·aᵢ·n² elements it already stores.
func PlanMatMul(pl *platform.Platform, n float64) (*Plan, error) {
	plan, err := PlanOuterProduct(pl, n)
	if err != nil {
		return nil, err
	}
	plan.TotalVolume = 0
	for i := range plan.Workers {
		w := &plan.Workers[i]
		w.DataVolume = n*n*(w.Rect.W+w.Rect.H) - 2*w.Rect.Area()*n*n
		plan.TotalVolume += w.DataVolume
	}
	// Scale the references to the matmul cost model: LB and Comm_hom both
	// pick up a factor n (each unit of half-perimeter now carries n
	// elements) minus the locally-stored 2n².
	plan.LowerBound = plan.LowerBound*n - 2*n*n
	plan.HomogeneousVolume = plan.HomogeneousVolume * n
	return plan, nil
}
