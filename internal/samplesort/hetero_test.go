package samplesort

import (
	"math"
	"slices"
	"testing"

	"nlfl/internal/platform"
)

func TestBalancedSharesSumToOne(t *testing.T) {
	for _, speeds := range [][]float64{{1}, {1, 1}, {1, 2, 4, 8}, {5, 0.1, 3}} {
		shares := BalancedShares(speeds, 1_000_000)
		sum := 0.0
		for _, f := range shares {
			if f <= 0 {
				t.Errorf("speeds %v: non-positive share %v", speeds, f)
			}
			sum += f
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("speeds %v: shares sum to %v", speeds, sum)
		}
	}
}

func TestBalancedSharesEqualizeModelTimes(t *testing.T) {
	speeds := []float64{1, 2, 4, 8}
	const n = 1 << 20
	shares := BalancedShares(speeds, n)
	// tᵢ = (fᵢN)·log₂(fᵢN)/sᵢ must be equal across workers.
	ref := shares[0] * float64(n) * math.Log2(shares[0]*float64(n)) / speeds[0]
	for i := 1; i < len(speeds); i++ {
		ti := shares[i] * float64(n) * math.Log2(shares[i]*float64(n)) / speeds[i]
		if math.Abs(ti-ref) > 1e-6*ref {
			t.Errorf("worker %d model time %v, want %v", i, ti, ref)
		}
	}
}

func TestBalancedSharesFallbackTinyN(t *testing.T) {
	shares := BalancedShares([]float64{1, 3}, 2)
	if math.Abs(shares[0]-0.25) > 1e-12 || math.Abs(shares[1]-0.75) > 1e-12 {
		t.Errorf("tiny-N fallback = %v, want speed-proportional", shares)
	}
}

func TestBalancedSharesHomogeneousEqual(t *testing.T) {
	shares := BalancedShares([]float64{2, 2, 2, 2}, 100000)
	for _, f := range shares {
		if math.Abs(f-0.25) > 1e-9 {
			t.Errorf("homogeneous balanced shares = %v", shares)
		}
	}
}

func TestSortHeterogeneousBalancedCorrectness(t *testing.T) {
	pl, err := platform.FromSpeeds([]float64{1, 2, 4, 8})
	if err != nil {
		t.Fatal(err)
	}
	xs := randomFloats(77, 150000)
	got, ht, err := SortHeterogeneousBalanced(xs, pl, Config{Seed: 5, Sequential: true})
	if err != nil {
		t.Fatal(err)
	}
	if !slices.IsSorted(got) || len(got) != len(xs) {
		t.Fatal("balanced heterogeneous sort incorrect")
	}
	total := 0
	for _, b := range ht.BucketSizes {
		total += b
	}
	if total != len(xs) {
		t.Errorf("buckets sum to %d", total)
	}
}

func TestBalancedBeatsProportionalImbalance(t *testing.T) {
	// The ablation: balanced shares should cut the modelled sort-time
	// imbalance well below the speed-proportional variant on a skewed
	// platform.
	pl, err := platform.FromSpeeds([]float64{1, 1, 16, 16})
	if err != nil {
		t.Fatal(err)
	}
	xs := randomFloats(88, 400000)
	// High oversampling so splitter sampling noise doesn't mask the
	// share policy under test.
	cfg := Config{Seed: 9, Sequential: true, Oversampling: 4000}
	_, plain, err := SortHeterogeneous(xs, pl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, balanced, err := SortHeterogeneousBalanced(xs, pl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if balanced.Imbalance() >= plain.Imbalance() {
		t.Errorf("balanced imbalance %v not below proportional %v",
			balanced.Imbalance(), plain.Imbalance())
	}
	// With the log factor corrected only sampling noise remains.
	if balanced.Imbalance() > 0.1 {
		t.Errorf("balanced imbalance %v, want < 0.1", balanced.Imbalance())
	}
}

func TestBalancedSharesSkewDirection(t *testing.T) {
	// Balancing must give the slow worker *more* than its proportional
	// share (its smaller bucket has a smaller log factor): f_slow·N·log
	// grows slower, so f_slow > x_slow.
	speeds := []float64{1, 31}
	const n = 1 << 22
	shares := BalancedShares(speeds, n)
	proportional := 1.0 / 32.0
	if shares[0] <= proportional {
		t.Errorf("slow share %v should exceed proportional %v", shares[0], proportional)
	}
}
