// Package iterative closes the loop between the measured runtime and the
// planner stack: an iterative job (entrywise power iteration — each round
// computes the outer product x·xᵀ through the worker pool, extracts its
// diagonal x² at the master and renormalizes, converging to the indicator
// of the largest-magnitude entry) whose per-round load split is recomputed
// by a water-filling solver fed with rates *measured* from the previous
// rounds' trace spans instead of assumed speeds.
//
// The pieces compose as feedback control (DESIGN.md §14):
//
//	trace.Live spans ─→ Estimator (EWMA + outlier rejection + drift
//	detection) ─→ WaterFill (θ-bisection, Esfahanizadeh et al.) ─→
//	hysteresis gate ─→ runtime.PlanWeighted (PERI-SUM) ─→ next round
//
// Robustness is the point: a single chaotic round cannot wreck the
// estimate (a departure beyond DriftTol must persist DriftRounds
// consecutive rounds before the estimator re-anchors), workers that die
// under Options.Chaos are excluded from subsequent plans while the
// runtime's survivor re-planning keeps the current round exactly-once,
// re-planning is bounded by ReplanEvery and a hysteresis gain so the
// controller cannot thrash, thin or inconsistent measurements fall back
// to the last trusted plan, and a job that fails to converge surfaces the
// typed ErrStalled.
package iterative
