package partition

import (
	"math"
	"testing"
	"testing/quick"

	"nlfl/internal/stats"
)

func TestNormalize(t *testing.T) {
	got, err := Normalize([]float64{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 0.25 || got[1] != 0.75 {
		t.Errorf("Normalize = %v", got)
	}
	for _, bad := range [][]float64{nil, {}, {1, 0}, {1, -2}, {math.NaN()}, {math.Inf(1)}} {
		if _, err := Normalize(bad); err == nil {
			t.Errorf("Normalize(%v) should fail", bad)
		}
	}
	// Input must not be mutated.
	in := []float64{2, 2}
	Normalize(in)
	if in[0] != 2 {
		t.Error("Normalize mutated its input")
	}
}

func TestLowerBound(t *testing.T) {
	// Four equal areas: LB = 2·4·√(1/4) = 4.
	if got := LowerBound([]float64{0.25, 0.25, 0.25, 0.25}); math.Abs(got-4) > 1e-12 {
		t.Errorf("LowerBound = %v, want 4", got)
	}
	// Single unit area: LB = 2 (the unit square itself).
	if got := LowerBound([]float64{1}); math.Abs(got-2) > 1e-12 {
		t.Errorf("LowerBound = %v, want 2", got)
	}
}

func TestRectBasics(t *testing.T) {
	r := Rect{X: 0, Y: 0, W: 0.5, H: 0.25, Index: 3}
	if r.Area() != 0.125 {
		t.Errorf("Area = %v", r.Area())
	}
	if r.HalfPerimeter() != 0.75 {
		t.Errorf("HalfPerimeter = %v", r.HalfPerimeter())
	}
	if r.String() == "" {
		t.Error("empty String")
	}
}

func TestPeriSumSingleArea(t *testing.T) {
	p, err := PeriSum([]float64{42}) // normalization makes it 1
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if math.Abs(p.SumHalfPerimeters()-2) > 1e-9 {
		t.Errorf("single area Ĉ = %v, want 2", p.SumHalfPerimeters())
	}
}

func TestPeriSumPerfectSquares(t *testing.T) {
	// p = k² equal areas tile as a k×k grid of squares: Ĉ = LB = 2√p.
	for _, k := range []int{2, 3, 5, 8} {
		p := k * k
		areas := make([]float64, p)
		for i := range areas {
			areas[i] = 1
		}
		part, err := PeriSum(areas)
		if err != nil {
			t.Fatal(err)
		}
		if err := part.Validate(); err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		want := 2 * math.Sqrt(float64(p))
		if got := part.SumHalfPerimeters(); math.Abs(got-want) > 1e-9 {
			t.Errorf("p=%d: Ĉ = %v, want %v (perfect grid)", p, got, want)
		}
	}
}

func TestPeriSumKnownSmallInstance(t *testing.T) {
	// Two areas {1/2, 1/2}: only column layouts exist; best is two stacked
	// 1×(1/2) rectangles in a single column (cost 2·1+1=3) or two side-by-
	// side (1/2)×1 columns (cost 2·(1/2·1+1)=3). Either way Ĉ = 3.
	p, err := PeriSum([]float64{0.5, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p.SumHalfPerimeters()-3) > 1e-9 {
		t.Errorf("Ĉ = %v, want 3", p.SumHalfPerimeters())
	}
	if err := p.Validate(); err != nil {
		t.Error(err)
	}
}

func TestPeriSumRespectsGuarantee(t *testing.T) {
	r := stats.NewRNG(7)
	dists := []stats.Distribution{
		stats.Constant{Value: 1},
		stats.Uniform{Lo: 1, Hi: 100},
		stats.LogNormal{Mu: 0, Sigma: 1},
		stats.Pareto{Xm: 1, Alpha: 1.2},
	}
	for _, d := range dists {
		for _, p := range []int{2, 5, 10, 37, 100} {
			areas := stats.SampleN(d, r, p)
			part, err := PeriSum(areas)
			if err != nil {
				t.Fatal(err)
			}
			if err := part.Validate(); err != nil {
				t.Fatalf("%v p=%d: %v", d, p, err)
			}
			norm, _ := Normalize(areas)
			lb := LowerBound(norm)
			c := part.SumHalfPerimeters()
			if c < lb-1e-9 {
				t.Errorf("%v p=%d: Ĉ=%v below LB=%v", d, p, c, lb)
			}
			if c > 1+1.25*lb+1e-9 {
				t.Errorf("%v p=%d: Ĉ=%v violates 1+(5/4)LB=%v", d, p, c, 1+1.25*lb)
			}
			if c > 1.75*lb+1e-9 {
				t.Errorf("%v p=%d: Ĉ=%v violates (7/4)LB=%v", d, p, c, 1.75*lb)
			}
		}
	}
}

func TestPeriSumBeatsSqrtHeuristic(t *testing.T) {
	r := stats.NewRNG(8)
	worseSomewhere := false
	for trial := 0; trial < 20; trial++ {
		areas := stats.SampleN(stats.LogNormal{Mu: 0, Sigma: 1.5}, r, 40)
		dp, err := PeriSum(areas)
		if err != nil {
			t.Fatal(err)
		}
		greedy, err := SqrtHeuristic(areas)
		if err != nil {
			t.Fatal(err)
		}
		if err := greedy.Validate(); err != nil {
			t.Fatal(err)
		}
		if dp.SumHalfPerimeters() > greedy.SumHalfPerimeters()+1e-9 {
			t.Errorf("DP (%v) worse than √p heuristic (%v)",
				dp.SumHalfPerimeters(), greedy.SumHalfPerimeters())
		}
		if dp.SumHalfPerimeters() < greedy.SumHalfPerimeters()-1e-6 {
			worseSomewhere = true
		}
	}
	if !worseSomewhere {
		t.Error("DP never strictly beat the heuristic on heterogeneous areas — suspicious")
	}
}

func TestSqrtHeuristicMatchesDPOnHomogeneous(t *testing.T) {
	areas := make([]float64, 16)
	for i := range areas {
		areas[i] = 1
	}
	dp, _ := PeriSum(areas)
	sq, _ := SqrtHeuristic(areas)
	if math.Abs(dp.SumHalfPerimeters()-sq.SumHalfPerimeters()) > 1e-9 {
		t.Errorf("homogeneous: DP %v vs heuristic %v", dp.SumHalfPerimeters(), sq.SumHalfPerimeters())
	}
}

func TestPeriMax(t *testing.T) {
	r := stats.NewRNG(9)
	for _, p := range []int{1, 4, 9, 25, 60} {
		areas := stats.SampleN(stats.Uniform{Lo: 1, Hi: 10}, r, p)
		part, err := PeriMax(areas)
		if err != nil {
			t.Fatal(err)
		}
		if err := part.Validate(); err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		norm, _ := Normalize(areas)
		// Per-rectangle lower bound: 2√aᵢ for the largest area.
		maxA := 0.0
		for _, a := range norm {
			if a > maxA {
				maxA = a
			}
		}
		if part.MaxHalfPerimeter() < 2*math.Sqrt(maxA)-1e-9 {
			t.Errorf("p=%d: max half-perimeter below per-rect bound", p)
		}
		// PERI-MAX should weakly beat PERI-SUM on its own objective.
		ps, _ := PeriSum(areas)
		if part.MaxHalfPerimeter() > ps.MaxHalfPerimeter()+1e-9 {
			t.Errorf("p=%d: PeriMax max %v worse than PeriSum max %v",
				p, part.MaxHalfPerimeter(), ps.MaxHalfPerimeter())
		}
	}
}

func TestHalfPerimeterOf(t *testing.T) {
	part, err := PeriSum([]float64{3, 1})
	if err != nil {
		t.Fatal(err)
	}
	hp0, hp1 := part.HalfPerimeterOf(0), part.HalfPerimeterOf(1)
	if math.IsNaN(hp0) || math.IsNaN(hp1) {
		t.Fatal("missing half-perimeters")
	}
	total := part.SumHalfPerimeters()
	if math.Abs(hp0+hp1-total) > 1e-9 {
		t.Errorf("per-index half-perimeters %v+%v don't sum to %v", hp0, hp1, total)
	}
	if !math.IsNaN(part.HalfPerimeterOf(7)) {
		t.Error("unknown index should return NaN")
	}
}

func TestValidateCatchesDefects(t *testing.T) {
	good, _ := PeriSum([]float64{1, 1, 1})
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	// Wrong count.
	bad := &Partition{Areas: []float64{0.5, 0.5}, Rects: good.Rects[:1]}
	if bad.Validate() == nil {
		t.Error("mismatched count should fail")
	}
	// Overlap.
	overlap := &Partition{
		Areas: []float64{0.5, 0.5},
		Rects: []Rect{
			{X: 0, Y: 0, W: 1, H: 0.5, Index: 0},
			{X: 0, Y: 0.25, W: 1, H: 0.5, Index: 1},
		},
	}
	if overlap.Validate() == nil {
		t.Error("overlapping rects should fail")
	}
	// Escaping the square.
	escape := &Partition{
		Areas: []float64{0.5, 0.5},
		Rects: []Rect{
			{X: 0, Y: 0, W: 1, H: 0.5, Index: 0},
			{X: 0.75, Y: 0.5, W: 1, H: 0.5, Index: 1},
		},
	}
	if escape.Validate() == nil {
		t.Error("escaping rect should fail")
	}
	// Wrong prescribed area.
	wrongArea := &Partition{
		Areas: []float64{0.9, 0.1},
		Rects: []Rect{
			{X: 0, Y: 0, W: 1, H: 0.5, Index: 0},
			{X: 0, Y: 0.5, W: 1, H: 0.5, Index: 1},
		},
	}
	if wrongArea.Validate() == nil {
		t.Error("wrong area should fail")
	}
	// Duplicate index.
	dup := &Partition{
		Areas: []float64{0.5, 0.5},
		Rects: []Rect{
			{X: 0, Y: 0, W: 1, H: 0.5, Index: 0},
			{X: 0, Y: 0.5, W: 1, H: 0.5, Index: 0},
		},
	}
	if dup.Validate() == nil {
		t.Error("duplicate index should fail")
	}
}

// Property: PeriSum produces a valid tiling within the published guarantee
// for arbitrary positive areas.
func TestPeriSumProperty(t *testing.T) {
	f := func(seed int64, np uint8) bool {
		p := int(np%64) + 1
		r := stats.NewRNG(seed)
		areas := make([]float64, p)
		for i := range areas {
			areas[i] = 0.01 + 10*r.Float64()
		}
		part, err := PeriSum(areas)
		if err != nil {
			return false
		}
		if part.Validate() != nil {
			return false
		}
		norm, _ := Normalize(areas)
		lb := LowerBound(norm)
		c := part.SumHalfPerimeters()
		return c >= lb-1e-9 && c <= 1+1.25*lb+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Property: PeriMax produces a valid tiling whose objective weakly beats
// PeriSum's max half-perimeter.
func TestPeriMaxProperty(t *testing.T) {
	f := func(seed int64, np uint8) bool {
		p := int(np%32) + 1
		r := stats.NewRNG(seed)
		areas := make([]float64, p)
		for i := range areas {
			areas[i] = 0.05 + 5*r.Float64()
		}
		pm, err := PeriMax(areas)
		if err != nil || pm.Validate() != nil {
			return false
		}
		ps, err := PeriSum(areas)
		if err != nil {
			return false
		}
		return pm.MaxHalfPerimeter() <= ps.MaxHalfPerimeter()+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestColumnsIntrospection(t *testing.T) {
	// 4 equal areas tile as a 2×2 grid: 2 columns.
	p, err := PeriSum([]float64{1, 1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Columns(); got != 2 {
		t.Errorf("columns = %d, want 2", got)
	}
	// Single area: one column.
	q, _ := PeriSum([]float64{5})
	if q.Columns() != 1 {
		t.Errorf("single-area columns = %d", q.Columns())
	}
}
