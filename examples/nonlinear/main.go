// Nonlinear demonstrates the paper's headline negative result (Section 2):
// a workload of cost N^α (α > 1) cannot be scheduled as a divisible load —
// an optimal one-phase distribution performs a vanishing fraction of the
// work as the platform grows, no matter how cleverly the chunk sizes are
// optimized.
package main

import (
	"fmt"
	"log"

	"nlfl/internal/dessim"
	"nlfl/internal/nldlt"
	"nlfl/internal/platform"
)

func main() {
	const n = 1000.0
	load := nldlt.Load{N: n, Alpha: 2}

	fmt.Println("A quadratic load of N=1000 elements (total work N² = 10⁶) on growing platforms:")
	fmt.Println()
	fmt.Printf("%6s  %12s  %12s  %14s\n", "P", "makespan", "work done", "fraction undone")
	for _, p := range []int{1, 2, 4, 8, 16, 32, 64, 128} {
		pl, err := platform.Homogeneous(p, 1, 1)
		if err != nil {
			log.Fatal(err)
		}
		res, err := nldlt.OptimalParallel(pl, load)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%6d  %12.4g  %12.4g  %14.4f\n",
			p, res.Makespan, res.WorkDone(), 1-res.WorkFraction())
	}

	fmt.Println("\nThe makespan plummets — but only because the distributed chunks no longer")
	fmt.Println("add up to the full computation: the undone fraction 1-1/P^(α-1) goes to 1.")

	// Cross-check one solution on the discrete-event simulator and show
	// the timeline.
	pl, err := platform.Homogeneous(6, 1, 1)
	if err != nil {
		log.Fatal(err)
	}
	res, err := nldlt.OptimalOnePort(pl, load, nil)
	if err != nil {
		log.Fatal(err)
	}
	tl, err := dessim.RunSingleRound(pl, res.Chunks(), dessim.OnePort)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\none-port single-installment schedule on 6 workers (simulated makespan %.4g):\n\n", tl.Makespan)
	fmt.Print(tl.Gantt(64))
}
