package dessim

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"nlfl/internal/platform"
	"nlfl/internal/stats"
)

func mustPlatform(t *testing.T, speeds ...float64) *platform.Platform {
	t.Helper()
	p, err := platform.FromSpeeds(speeds)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestSingleRoundParallelLinks(t *testing.T) {
	// Two unit-speed unit-bandwidth workers each get 4 data / 4 work:
	// recv [0,4], compute [4,8] — the N/P·c + (N/P)·w formula of §2 with
	// α=1.
	p := mustPlatform(t, 1, 1)
	tl, err := RunSingleRound(p, []Chunk{
		{Worker: 0, Data: 4, Work: 4},
		{Worker: 1, Data: 4, Work: 4},
	}, ParallelLinks)
	if err != nil {
		t.Fatal(err)
	}
	if tl.Makespan != 8 {
		t.Errorf("makespan = %v, want 8", tl.Makespan)
	}
	if err := tl.Validate(); err != nil {
		t.Error(err)
	}
	if tl.CommVolume() != 8 || tl.WorkDone() != 8 {
		t.Errorf("volume=%v work=%v, want 8/8", tl.CommVolume(), tl.WorkDone())
	}
	ft := tl.FinishTimes()
	if ft[0] != 8 || ft[1] != 8 {
		t.Errorf("finish times = %v", ft)
	}
}

func TestSingleRoundOnePortSerializesSends(t *testing.T) {
	p := mustPlatform(t, 1, 1)
	tl, err := RunSingleRound(p, []Chunk{
		{Worker: 0, Data: 4, Work: 4},
		{Worker: 1, Data: 4, Work: 4},
	}, OnePort)
	if err != nil {
		t.Fatal(err)
	}
	// Worker 1's receive must wait for worker 0's: [4,8], compute [8,12].
	if tl.Makespan != 12 {
		t.Errorf("makespan = %v, want 12", tl.Makespan)
	}
	iv := tl.PerWorker[1][0]
	if iv.Start != 4 || iv.End != 8 {
		t.Errorf("worker 1 receive = [%v,%v], want [4,8]", iv.Start, iv.End)
	}
}

func TestSingleRoundHeterogeneousSpeeds(t *testing.T) {
	// Worker speeds 1 and 4; same chunk → 4x faster compute on worker 1.
	p := mustPlatform(t, 1, 4)
	tl, err := RunSingleRound(p, []Chunk{
		{Worker: 0, Data: 2, Work: 8},
		{Worker: 1, Data: 2, Work: 8},
	}, ParallelLinks)
	if err != nil {
		t.Fatal(err)
	}
	ct := tl.ComputeTimes()
	if ct[0] != 8 || ct[1] != 2 {
		t.Errorf("compute times = %v, want [8 2]", ct)
	}
}

func TestSingleRoundMultipleChunksPerWorkerQueueOnCPU(t *testing.T) {
	p := mustPlatform(t, 1)
	tl, err := RunSingleRound(p, []Chunk{
		{Worker: 0, Data: 1, Work: 5},
		{Worker: 0, Data: 1, Work: 5},
	}, ParallelLinks)
	if err != nil {
		t.Fatal(err)
	}
	// recv1 [0,1] comp1 [1,6]; recv2 [1,2] comp2 [6,11].
	if tl.Makespan != 11 {
		t.Errorf("makespan = %v, want 11", tl.Makespan)
	}
	if err := tl.Validate(); err != nil {
		t.Error(err)
	}
}

func TestSingleRoundValidation(t *testing.T) {
	p := mustPlatform(t, 1)
	if _, err := RunSingleRound(p, []Chunk{{Worker: 5, Data: 1, Work: 1}}, ParallelLinks); err == nil {
		t.Error("unknown worker should fail")
	}
	if _, err := RunSingleRound(p, []Chunk{{Worker: 0, Data: -1, Work: 1}}, ParallelLinks); err == nil {
		t.Error("negative data should fail")
	}
}

func TestDemandDrivenFasterWorkerGetsMoreTasks(t *testing.T) {
	// Speeds 1 and 3: worker 1 should process ~3x the tasks when
	// communication is negligible.
	p := mustPlatform(t, 1, 3)
	tasks := make([]Task, 40)
	for i := range tasks {
		tasks[i] = Task{Data: 0.001, Work: 1}
	}
	tl, err := RunDemandDriven(p, tasks, ParallelLinks)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, 2)
	for w, ivs := range tl.PerWorker {
		for _, iv := range ivs {
			if iv.Kind == Compute {
				counts[w]++
			}
		}
	}
	if counts[0]+counts[1] != 40 {
		t.Fatalf("task counts = %v, want total 40", counts)
	}
	ratio := float64(counts[1]) / float64(counts[0])
	if ratio < 2.5 || ratio > 3.5 {
		t.Errorf("fast/slow task ratio = %v (counts %v), want ≈3", ratio, counts)
	}
	if err := tl.Validate(); err != nil {
		t.Error(err)
	}
}

func TestDemandDrivenLoadBalance(t *testing.T) {
	// With many small tasks the demand-driven imbalance must be tiny —
	// the paper's premise that MapReduce-style scheduling balances load
	// "almost perfectly" given enough chunks.
	r := stats.NewRNG(3)
	p, err := platform.Generate(8, stats.Uniform{Lo: 1, Hi: 100}, r)
	if err != nil {
		t.Fatal(err)
	}
	tasks := make([]Task, 4000)
	for i := range tasks {
		tasks[i] = Task{Data: 0, Work: 1}
	}
	tl, err := RunDemandDriven(p, tasks, ParallelLinks)
	if err != nil {
		t.Fatal(err)
	}
	// When a worker finishes and tasks remain, it immediately claims one,
	// so every worker is busy until the pool drains: its slack w.r.t. the
	// makespan is at most the duration of one task on the slowest worker.
	maxTask := 1 / p.MinSpeed()
	for i, ft := range tl.FinishTimes() {
		if slack := tl.Makespan - ft; slack > maxTask+1e-9 {
			t.Errorf("worker %d finishes %v early (> slowest task %v)", i, slack, maxTask)
		}
	}
}

func TestDemandDrivenAllTasksExactlyOnce(t *testing.T) {
	p := mustPlatform(t, 2, 5, 1)
	tasks := make([]Task, 25)
	for i := range tasks {
		tasks[i] = Task{Data: 1, Work: 3}
	}
	tl, err := RunDemandDriven(p, tasks, OnePort)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]int{}
	for _, ivs := range tl.PerWorker {
		for _, iv := range ivs {
			if iv.Kind == Compute {
				seen[iv.Task]++
			}
		}
	}
	if len(seen) != 25 {
		t.Fatalf("computed %d distinct tasks, want 25", len(seen))
	}
	for id, n := range seen {
		if n != 1 {
			t.Errorf("task %d computed %d times", id, n)
		}
	}
	if err := tl.Validate(); err != nil {
		t.Error(err)
	}
}

func TestDemandDrivenOnePortSerializesMaster(t *testing.T) {
	p := mustPlatform(t, 1, 1)
	tasks := []Task{{Data: 10, Work: 0.1}, {Data: 10, Work: 0.1}}
	tl, err := RunDemandDriven(p, tasks, OnePort)
	if err != nil {
		t.Fatal(err)
	}
	// Two receives must not overlap anywhere on the master port.
	var recvs []Interval
	for _, ivs := range tl.PerWorker {
		for _, iv := range ivs {
			if iv.Kind == Receive {
				recvs = append(recvs, iv)
			}
		}
	}
	if len(recvs) != 2 {
		t.Fatalf("want 2 receives, got %d", len(recvs))
	}
	a, b := recvs[0], recvs[1]
	if a.Start < b.End && b.Start < a.End {
		t.Errorf("one-port receives overlap: %+v %+v", a, b)
	}
}

func TestDemandDrivenRejectsNegativeTask(t *testing.T) {
	p := mustPlatform(t, 1)
	if _, err := RunDemandDriven(p, []Task{{Data: -1, Work: 1}}, ParallelLinks); err == nil {
		t.Error("negative data should fail")
	}
}

func TestTimelineMetrics(t *testing.T) {
	tl := NewTimeline(2)
	tl.Add(0, Interval{Kind: Receive, Start: 0, End: 1, Data: 3})
	tl.Add(0, Interval{Kind: Compute, Start: 1, End: 5, Work: 4})
	tl.Add(1, Interval{Kind: Compute, Start: 0, End: 2, Work: 2})
	if tl.Makespan != 5 {
		t.Errorf("makespan = %v", tl.Makespan)
	}
	if tl.CommVolume() != 3 || tl.WorkDone() != 6 {
		t.Errorf("volume/work = %v/%v", tl.CommVolume(), tl.WorkDone())
	}
	if got := tl.LoadImbalance(); got != 1 {
		t.Errorf("imbalance = %v, want (4-2)/2 = 1", got)
	}
	if got := tl.Utilization(); got != 0.6 {
		t.Errorf("utilization = %v, want 6/(5·2) = 0.6", got)
	}
}

func TestLoadImbalanceEdgeCases(t *testing.T) {
	empty := NewTimeline(2)
	if empty.LoadImbalance() != 0 {
		t.Error("empty timeline imbalance should be 0")
	}
	oneIdle := NewTimeline(2)
	oneIdle.Add(0, Interval{Kind: Compute, Start: 0, End: 1, Work: 1})
	if !math.IsInf(oneIdle.LoadImbalance(), 1) {
		t.Error("idle worker should give +Inf imbalance")
	}
}

func TestTimelineValidateCatchesOverlap(t *testing.T) {
	tl := NewTimeline(1)
	tl.Add(0, Interval{Kind: Compute, Start: 0, End: 3})
	tl.Add(0, Interval{Kind: Compute, Start: 2, End: 4})
	if tl.Validate() == nil {
		t.Error("overlapping intervals should fail validation")
	}
	bad := NewTimeline(1)
	bad.Add(0, Interval{Kind: Compute, Start: 3, End: 1})
	if bad.Validate() == nil {
		t.Error("negative-duration interval should fail validation")
	}
}

func TestGanttRendering(t *testing.T) {
	tl := NewTimeline(2)
	tl.Add(0, Interval{Kind: Receive, Start: 0, End: 2, Data: 1})
	tl.Add(0, Interval{Kind: Compute, Start: 2, End: 10, Work: 1})
	tl.Add(1, Interval{Kind: Compute, Start: 0, End: 5, Work: 1})
	out := tl.Gantt(40)
	if !strings.Contains(out, "#") || !strings.Contains(out, "-") {
		t.Errorf("gantt missing glyphs:\n%s", out)
	}
	if NewTimeline(1).Gantt(10) != "(empty timeline)\n" {
		t.Error("empty gantt mis-rendered")
	}
}

func TestIntervalKindString(t *testing.T) {
	if Receive.String() != "recv" || Compute.String() != "comp" {
		t.Error("kind names changed")
	}
	if IntervalKind(9).String() == "" {
		t.Error("unknown kind should render")
	}
	if ParallelLinks.String() != "parallel-links" || OnePort.String() != "one-port" {
		t.Error("mode names changed")
	}
	if CommMode(9).String() == "" {
		t.Error("unknown mode should render")
	}
}

// Property: demand-driven execution preserves total work and communication
// volume regardless of platform and mode, and the timeline is causal.
func TestDemandDrivenConservationProperty(t *testing.T) {
	f := func(seed int64, nTasks uint8, nWorkers uint8, onePort bool) bool {
		nw := int(nWorkers%8) + 1
		nt := int(nTasks % 64)
		r := stats.NewRNG(seed)
		p, err := platform.Generate(nw, stats.Uniform{Lo: 0.5, Hi: 10}, r)
		if err != nil {
			return false
		}
		tasks := make([]Task, nt)
		totData, totWork := 0.0, 0.0
		for i := range tasks {
			tasks[i] = Task{Data: r.Float64() * 5, Work: r.Float64() * 5}
			totData += tasks[i].Data
			totWork += tasks[i].Work
		}
		mode := ParallelLinks
		if onePort {
			mode = OnePort
		}
		tl, err := RunDemandDriven(p, tasks, mode)
		if err != nil {
			return false
		}
		return math.Abs(tl.CommVolume()-totData) < 1e-6 &&
			math.Abs(tl.WorkDone()-totWork) < 1e-6 &&
			tl.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestSingleRoundAffineChargesLatency(t *testing.T) {
	p := mustPlatform(t, 1, 1)
	chunks := []Chunk{
		{Worker: 0, Data: 4, Work: 4},
		{Worker: 1, Data: 4, Work: 4},
	}
	lat := []float64{2, 0}
	tl, err := RunSingleRoundAffine(p, chunks, lat, ParallelLinks)
	if err != nil {
		t.Fatal(err)
	}
	// Worker 0: recv [0, 2+4]=6, compute [6,10]; worker 1: recv [0,4],
	// compute [4,8].
	if tl.Makespan != 10 {
		t.Errorf("makespan = %v, want 10", tl.Makespan)
	}
	// Zero latency must reduce to RunSingleRound exactly.
	plain, err := RunSingleRound(p, chunks, ParallelLinks)
	if err != nil {
		t.Fatal(err)
	}
	noLat, err := RunSingleRoundAffine(p, chunks, []float64{0, 0}, ParallelLinks)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(plain.Makespan-noLat.Makespan) > 1e-12 {
		t.Error("zero latency should match the plain runner")
	}
}

func TestSingleRoundAffineValidation(t *testing.T) {
	p := mustPlatform(t, 1)
	if _, err := RunSingleRoundAffine(p, nil, []float64{1, 2}, OnePort); err == nil {
		t.Error("latency length mismatch should fail")
	}
	if _, err := RunSingleRoundAffine(p, nil, []float64{-1}, OnePort); err == nil {
		t.Error("negative latency should fail")
	}
	if _, err := RunSingleRoundAffine(p, []Chunk{{Worker: 5}}, []float64{0}, OnePort); err == nil {
		t.Error("unknown worker should fail")
	}
}

func TestTimelineSummary(t *testing.T) {
	p := mustPlatform(t, 1, 2)
	tl, err := RunSingleRound(p, []Chunk{
		{Worker: 0, Data: 2, Work: 4},
		{Worker: 1, Data: 2, Work: 4},
	}, ParallelLinks)
	if err != nil {
		t.Fatal(err)
	}
	out := tl.Summary()
	for _, want := range []string{"makespan", "P1", "P2", "utilization", "idle"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
	if NewTimeline(1).Summary() == "" {
		t.Error("empty timeline summary should render")
	}
}
