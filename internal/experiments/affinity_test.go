package experiments

import (
	"testing"

	"nlfl/internal/platform"
	"nlfl/internal/stats"
)

func TestAffinitySweep(t *testing.T) {
	r := stats.NewRNG(9)
	pl, err := platform.Generate(10, stats.Uniform{Lo: 1, Hi: 100}, r)
	if err != nil {
		t.Fatal(err)
	}
	gs := []int{10, 20, 40}
	pts, err := AffinitySweep(pl, 1000, gs)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != len(gs) {
		t.Fatalf("points = %d", len(pts))
	}
	for i, pt := range pts {
		if !(pt.Affinity <= pt.Cache+1e-9 && pt.Cache <= pt.NoCache+1e-9) {
			t.Errorf("g=%d: policy ordering violated: %+v", pt.G, pt)
		}
		if pt.Het > pt.Affinity {
			t.Errorf("g=%d: static layout %v should beat demand-driven affinity %v", pt.G, pt.Het, pt.Affinity)
		}
		// No-cache volume scales with g; affinity must grow much slower.
		if i > 0 {
			if pt.NoCache <= pts[i-1].NoCache {
				t.Errorf("no-cache ratio should grow with g: %+v", pts)
			}
			growthNoCache := pt.NoCache / pts[i-1].NoCache
			growthAffinity := pt.Affinity / pts[i-1].Affinity
			if growthAffinity > growthNoCache {
				t.Errorf("affinity ratio grows faster than no-cache between g=%d and g=%d", pts[i-1].G, pt.G)
			}
		}
	}
	if AffinityTable(pts).String() == "" {
		t.Error("empty table")
	}
}

func TestAffinitySweepValidation(t *testing.T) {
	pl, _ := platform.Homogeneous(4, 1, 1)
	if _, err := AffinitySweep(pl, 100, []int{0}); err == nil {
		t.Error("invalid grid should fail")
	}
}

func TestMemorySweep(t *testing.T) {
	r := stats.NewRNG(13)
	pl, err := platform.Generate(6, stats.Uniform{Lo: 1, Hi: 20}, r)
	if err != nil {
		t.Fatal(err)
	}
	const g = 16
	pts, err := MemorySweep(pl, 500, g, []int{0, 2, 8, 2 * g})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 4 {
		t.Fatalf("points = %d", len(pts))
	}
	// Capacity 0 pays the full per-block price; unlimited pays the least.
	if pts[0].Ratio <= pts[len(pts)-1].Ratio {
		t.Errorf("memory should buy volume: %+v", pts)
	}
	// The trend is (weakly) improving with capacity, small LRU slack
	// tolerated.
	for i := 1; i < len(pts); i++ {
		if pts[i].Ratio > pts[i-1].Ratio*1.05 {
			t.Errorf("ratio regressed with more memory: %+v", pts)
		}
	}
	if MemoryTable(pts).String() == "" {
		t.Error("empty table")
	}
	if _, err := MemorySweep(pl, 500, 0, []int{1}); err == nil {
		t.Error("bad grid should fail")
	}
}
