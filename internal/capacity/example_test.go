package capacity_test

import (
	"fmt"

	"nlfl/internal/capacity"
)

// ExampleModel_Recommend sizes a fleet slice for an α=2 workload on the
// BENCH_capacity.json envelope: eight workers behind a constrained
// one-port link. The knee lands at four workers — past it, one more
// worker's extra input shipping eats its compute contribution.
func ExampleModel_Recommend() {
	m := capacity.Model{
		Alpha:         2,
		N:             96,
		Speeds:        []float64{4, 4, 3, 3, 2, 2, 1, 1},
		WorkPerSecond: 3e4,
		Bandwidth:     2.5e4,
	}
	rec, err := m.Recommend(0.05)
	if err != nil {
		panic(err)
	}
	at := rec.AtKnee()
	fmt.Printf("knee: %d workers, speedup %.2f×, makespan %.1f ms\n",
		rec.Knee, at.Speedup, at.Makespan*1e3)
	fmt.Printf("chunking instead would leave %.0f%% of the work undone\n",
		100*at.UnprocessedIfChunked)
	// Output:
	// knee: 4 workers, speedup 2.26×, makespan 37.3 ms
	// chunking instead would leave 75% of the work undone
}

// ExampleModel_PredictSlice prices a single slice size: the PERI-SUM
// input volume, the serialized transfer time, and the balanced compute
// phase.
func ExampleModel_PredictSlice() {
	m := capacity.Model{
		Alpha:         2,
		N:             96,
		Speeds:        []float64{4, 4, 3, 3, 2, 2, 1, 1},
		WorkPerSecond: 3e4,
		Bandwidth:     2.5e4,
	}
	pred, err := m.PredictSlice(2)
	if err != nil {
		panic(err)
	}
	fmt.Printf("p=2 ships %.0f elements: %.2f ms comm + %.2f ms compute\n",
		pred.CommVolume, pred.CommTime*1e3, pred.ComputeTime*1e3)
	// Output:
	// p=2 ships 288 elements: 11.52 ms comm + 38.40 ms compute
}
