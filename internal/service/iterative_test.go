package service

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"nlfl/internal/iterative"
	"nlfl/internal/trace"
)

func TestFleetWeightedStrategyJob(t *testing.T) {
	f, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	slice := f.SliceFor(JobSpec{N: 64, Strategy: "wf", Weights: []float64{1}})
	if len(slice) == 0 {
		t.Fatal("empty slice preview on a healthy fleet")
	}
	// Load the last slice worker 3× the rest; its rectangle must be the
	// largest by cells.
	weights := make([]float64, len(slice))
	for i := range weights {
		weights[i] = 1
	}
	weights[len(weights)-1] = 3
	h := mustSubmit(t, f, JobSpec{N: 64, Strategy: "wf", Weights: weights, Seed: 7})
	rep := waitOK(t, h)
	if rep.Strategy != "wf" {
		t.Fatalf("strategy = %q", rep.Strategy)
	}
	cells := map[int]float64{}
	for w, spans := range rep.Trace.Spans {
		for _, s := range spans {
			if s.Kind == trace.Compute && s.Outcome == trace.OK {
				cells[w] += s.Work
			}
		}
	}
	heavy := slice[len(slice)-1]
	for _, w := range slice[:len(slice)-1] {
		if cells[heavy] <= cells[w] {
			t.Fatalf("weight-3 worker %d computed %v cells, not above worker %d's %v",
				heavy, cells[heavy], w, cells[w])
		}
	}
	if v := trace.Check(rep.Trace, rep.Expect(0.05)); len(v) > 0 {
		t.Fatalf("wf job trace violations: %v", trace.Must(v))
	}
}

func TestWeightedStrategyValidation(t *testing.T) {
	f, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.Submit(JobSpec{N: 64, Strategy: "wf"}); err == nil {
		t.Fatal("wf without weights accepted")
	}
	if _, err := f.Submit(JobSpec{N: 64, Strategy: "het", Weights: []float64{1, 2}}); err == nil {
		t.Fatal("het with weights accepted")
	}
	slice := f.SliceFor(JobSpec{N: 64, Strategy: "wf", Weights: []float64{1}})
	bad := make([]float64, len(slice)+2)
	for i := range bad {
		bad[i] = 1
	}
	_, err = f.Submit(JobSpec{N: 64, Strategy: "wf", Weights: bad})
	if err == nil || !strings.Contains(err.Error(), "SliceFor") {
		t.Fatalf("slice-mismatched weights: err = %v", err)
	}
}

func TestSubmitIterativeConverges(t *testing.T) {
	f, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	n := 32
	h, err := SubmitIterative(f, IterativeSpec{
		N:         n,
		X0:        iterative.SeedVector(n, 0.6),
		MaxRounds: 16,
		Estimator: iterative.EstimatorConfig{DriftRounds: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	rep, err := h.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Converged {
		t.Fatal("iterative job did not converge")
	}
	if want := n / 3; rep.Dominant != want {
		t.Fatalf("dominant index %d, want %d", rep.Dominant, want)
	}
	if rep.Rounds < 2 || len(rep.JobIDs) != rep.Rounds {
		t.Fatalf("rounds %d with %d job ids", rep.Rounds, len(rep.JobIDs))
	}
	if rep.TotalMakespan <= 0 || rep.TotalLatency < rep.TotalMakespan {
		t.Fatalf("ledger: makespan %v, latency %v", rep.TotalMakespan, rep.TotalLatency)
	}
	// Every round ran as a real tenant job through admission.
	acc := f.Accounting()
	if acc.Completed < rep.Rounds {
		t.Fatalf("fleet completed %d jobs for %d rounds", acc.Completed, rep.Rounds)
	}
}

func TestSubmitIterativeStalls(t *testing.T) {
	f, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	h, err := SubmitIterative(f, IterativeSpec{
		N:         32,
		X0:        iterative.SeedVector(32, 0.9999),
		MaxRounds: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	rep, err := h.Wait(ctx)
	if !errors.Is(err, ErrIterativeStalled) {
		t.Fatalf("err = %v, want ErrIterativeStalled", err)
	}
	if rep == nil || rep.Rounds != 2 {
		t.Fatalf("stalled report should carry the rounds run, got %+v", rep)
	}
}

func TestSubmitIterativeRoundDeadlineMiss(t *testing.T) {
	f, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	// A 1 ns per-round deadline: every round misses, the retry misses
	// too, and the iterative job fails after exactly one retried round.
	h, err := SubmitIterative(f, IterativeSpec{
		N:             32,
		X0:            iterative.SeedVector(32, 0.6),
		MaxRounds:     4,
		RoundDeadline: time.Nanosecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	rep, werr := h.Wait(ctx)
	if werr == nil || !errors.Is(werr, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want the round's DeadlineExceeded", werr)
	}
	if rep.DeadlineMisses < 2 {
		t.Fatalf("DeadlineMisses = %d, want both attempts counted", rep.DeadlineMisses)
	}
	if rep.Rounds != 0 {
		t.Fatalf("%d rounds completed under an impossible deadline", rep.Rounds)
	}
}

func TestSubmitIterativeValidation(t *testing.T) {
	f, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := SubmitIterative(f, IterativeSpec{N: 0}); err == nil {
		t.Fatal("accepted n=0")
	}
	if _, err := SubmitIterative(f, IterativeSpec{N: 32, X0: []float64{1, 2}}); err == nil {
		t.Fatal("accepted mis-sized start vector")
	}
}
