//go:build amd64 && !purego

package matmul

// The AVX2 micro-kernel keeps the whole 4×8 accumulator tile in YMM0–YMM7
// across the k loop: per k step it loads the packed B row (two 4-wide
// vectors), broadcasts the four packed A lanes, and issues separate VMULPD
// and VADDPD per accumulator — deliberately not VFMADD, so every element's
// value is the same correctly-rounded multiply-then-add chain the scalar
// kernels produce and the packed path stays bit-identical to Naive.

// microKernel4x8AVX2 is implemented in microkernel_amd64.s.
//
//go:noescape
func microKernel4x8AVX2(dst *float64, ldd int, pa, pb *float64, kc int)

// cpuidex and xgetbv0 are implemented in microkernel_amd64.s.
func cpuidex(leaf, sub uint32) (eax, ebx, ecx, edx uint32)
func xgetbv0() (eax, edx uint32)

// hasAVX2 reports whether the CPU and OS support 256-bit AVX2: AVX +
// OSXSAVE in CPUID.1:ECX, XMM+YMM state enabled in XCR0, and AVX2 in
// CPUID.7.0:EBX.
func hasAVX2() bool {
	maxLeaf, _, _, _ := cpuidex(0, 0)
	if maxLeaf < 7 {
		return false
	}
	_, _, ecx1, _ := cpuidex(1, 0)
	const osxsave, avx = 1 << 27, 1 << 28
	if ecx1&osxsave == 0 || ecx1&avx == 0 {
		return false
	}
	xlo, _ := xgetbv0()
	if xlo&0x6 != 0x6 { // XMM and YMM state saved by the OS
		return false
	}
	_, ebx7, _, _ := cpuidex(7, 0)
	const avx2 = 1 << 5
	return ebx7&avx2 != 0
}

// microKernelAsm adapts the pointer-based assembly kernel to the slice
// signature of microKernel. The slices are guaranteed non-empty by the
// driver (kc ≥ 1, dst spans the full micro-tile).
func microKernelAsm(dst []float64, ldd int, pa, pb []float64, kc int) {
	microKernel4x8AVX2(&dst[0], ldd, &pa[0], &pb[0], kc)
}

func init() {
	if hasAVX2() {
		microKernel = microKernelAsm
	}
}
