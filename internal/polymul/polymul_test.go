package polymul

import (
	"math"
	"testing"
	"testing/quick"

	"nlfl/internal/core"
	"nlfl/internal/stats"
)

func approx(a, b []float64, tol float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Abs(a[i]-b[i]) > tol*(1+math.Abs(a[i])) {
			return false
		}
	}
	return true
}

func TestNaiveKnownProduct(t *testing.T) {
	// (1 + 2x)(3 + 4x) = 3 + 10x + 8x².
	got, err := Naive([]float64{1, 2}, []float64{3, 4})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{3, 10, 8}
	if !approx(got, want, 1e-12) {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestAlgorithmsAgree(t *testing.T) {
	r := stats.NewRNG(1)
	shapes := []struct{ la, lb int }{
		{1, 1}, {2, 3}, {7, 7}, {33, 17}, {100, 100}, {257, 129}, {1000, 1},
	}
	for _, s := range shapes {
		a := stats.SampleN(stats.Uniform{Lo: -1, Hi: 1}, r, s.la)
		b := stats.SampleN(stats.Uniform{Lo: -1, Hi: 1}, r, s.lb)
		ref, err := Naive(a, b)
		if err != nil {
			t.Fatal(err)
		}
		kar, err := Karatsuba(a, b)
		if err != nil {
			t.Fatal(err)
		}
		if !approx(ref, kar, 1e-9) {
			t.Errorf("shape %+v: karatsuba disagrees", s)
		}
		fft, err := FFT(a, b)
		if err != nil {
			t.Fatal(err)
		}
		if !approx(ref, fft, 1e-7) {
			t.Errorf("shape %+v: fft disagrees", s)
		}
	}
}

func TestMultiplyDispatch(t *testing.T) {
	a, b := []float64{1, 1}, []float64{1, -1}
	for _, algo := range []Algorithm{AlgoNaive, AlgoKaratsuba, AlgoFFT} {
		got, err := Multiply(a, b, algo)
		if err != nil {
			t.Fatal(err)
		}
		if !approx(got, []float64{1, 0, -1}, 1e-9) {
			t.Errorf("%v: got %v", algo, got)
		}
	}
	if _, err := Multiply(a, b, Algorithm(9)); err == nil {
		t.Error("unknown algorithm should fail")
	}
}

func TestEmptyInputs(t *testing.T) {
	for _, algo := range []Algorithm{AlgoNaive, AlgoKaratsuba, AlgoFFT} {
		if _, err := Multiply(nil, []float64{1}, algo); err == nil {
			t.Errorf("%v: empty a should fail", algo)
		}
		if _, err := Multiply([]float64{1}, nil, algo); err == nil {
			t.Errorf("%v: empty b should fail", algo)
		}
	}
}

func TestVerdictPerAlgorithm(t *testing.T) {
	const n, p = 1 << 20, 64
	vNaive, err := Verdict(AlgoNaive, n, p)
	if err != nil {
		t.Fatal(err)
	}
	if vNaive.Class != core.NotDivisible {
		t.Errorf("schoolbook should be not-divisible: %v", vNaive)
	}
	vKar, err := Verdict(AlgoKaratsuba, n, p)
	if err != nil {
		t.Fatal(err)
	}
	if vKar.Class != core.NotDivisible {
		t.Errorf("karatsuba should be not-divisible: %v", vKar)
	}
	// Karatsuba's smaller exponent leaves less work undone than
	// schoolbook's α=2 for the same platform.
	if vKar.UndoneFraction >= vNaive.UndoneFraction {
		t.Errorf("karatsuba undone %v should be below schoolbook %v",
			vKar.UndoneFraction, vNaive.UndoneFraction)
	}
	vFFT, err := Verdict(AlgoFFT, n, p)
	if err != nil {
		t.Fatal(err)
	}
	if vFFT.Class != core.AlmostDivisible {
		t.Errorf("fft should be almost-divisible: %v", vFFT)
	}
	if _, err := Verdict(Algorithm(9), n, p); err == nil {
		t.Error("unknown algorithm should fail")
	}
}

func TestAlgorithmStrings(t *testing.T) {
	if AlgoNaive.String() != "schoolbook" || AlgoFFT.String() != "fft" {
		t.Error("names changed")
	}
	if Algorithm(9).String() == "" {
		t.Error("unknown algorithm should render")
	}
}

// Property: Karatsuba and FFT agree with the schoolbook product on random
// inputs.
func TestAgreementProperty(t *testing.T) {
	f := func(seed int64, la, lb uint8) bool {
		na := int(la%64) + 1
		nb := int(lb%64) + 1
		r := stats.NewRNG(seed)
		a := stats.SampleN(stats.Uniform{Lo: -2, Hi: 2}, r, na)
		b := stats.SampleN(stats.Uniform{Lo: -2, Hi: 2}, r, nb)
		ref, err := Naive(a, b)
		if err != nil {
			return false
		}
		kar, err := Karatsuba(a, b)
		if err != nil || !approx(ref, kar, 1e-8) {
			return false
		}
		fft, err := FFT(a, b)
		return err == nil && approx(ref, fft, 1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Property: convolution evaluated at a point equals the product of the
// polynomial evaluations (ring homomorphism check).
func TestEvaluationHomomorphismProperty(t *testing.T) {
	eval := func(poly []float64, x float64) float64 {
		v := 0.0
		for i := len(poly) - 1; i >= 0; i-- {
			v = v*x + poly[i]
		}
		return v
	}
	f := func(seed int64) bool {
		r := stats.NewRNG(seed)
		a := stats.SampleN(stats.Uniform{Lo: -1, Hi: 1}, r, 8)
		b := stats.SampleN(stats.Uniform{Lo: -1, Hi: 1}, r, 5)
		prod, err := FFT(a, b)
		if err != nil {
			return false
		}
		x := 0.9 * (2*r.Float64() - 1)
		lhs := eval(prod, x)
		rhs := eval(a, x) * eval(b, x)
		return math.Abs(lhs-rhs) < 1e-8*(1+math.Abs(rhs))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
