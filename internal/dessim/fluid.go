package dessim

import (
	"fmt"
	"math"
	"sort"

	"nlfl/internal/platform"
)

// The paper's Section 1.2 model lets every master→worker transfer proceed
// at full link speed simultaneously — an infinite-egress master. This
// file implements the bounded-multiport refinement: concurrent transfers
// share the master's egress capacity with max-min fairness, each capped
// by its worker's link bandwidth. It quantifies how far the paper's
// idealization stretches: with ample egress the two models coincide; as
// egress tightens the schedule degrades continuously toward serialized
// behaviour.

// fluidTransfer is one in-flight master→worker transfer.
type fluidTransfer struct {
	worker    int
	size      float64 // original chunk size
	remaining float64
	start     float64
	work      float64
}

// RunSingleRoundBounded executes a static schedule like RunSingleRound
// under the bounded-multiport model with master egress capacity `egress`
// (data units per time unit; math.Inf(1) reproduces ParallelLinks
// exactly). Each worker receives its chunks in order, one active transfer
// per worker; active transfers share the egress max-min; computation
// queues on the worker CPU after each chunk fully arrives.
func RunSingleRoundBounded(p *platform.Platform, chunks []Chunk, egress float64) (*Timeline, error) {
	if egress <= 0 || math.IsNaN(egress) {
		return nil, fmt.Errorf("dessim: invalid egress capacity %v", egress)
	}
	tl := NewTimeline(p.P())
	queues := make([][]Chunk, p.P())
	for idx, ch := range chunks {
		if ch.Worker < 0 || ch.Worker >= p.P() {
			return nil, fmt.Errorf("dessim: chunk %d targets unknown worker %d", idx, ch.Worker)
		}
		if ch.Data < 0 || ch.Work < 0 {
			return nil, fmt.Errorf("dessim: chunk %d has negative size", idx)
		}
		queues[ch.Worker] = append(queues[ch.Worker], ch)
	}

	var active []*fluidTransfer
	cpus := make([]Resource, p.P())
	now := 0.0

	// startNext pops worker w's queue: zero-size chunks deliver instantly
	// (and chain), a positive chunk becomes an active transfer.
	var startNext func(w int)
	startNext = func(w int) {
		if len(queues[w]) == 0 {
			return
		}
		ch := queues[w][0]
		queues[w] = queues[w][1:]
		if ch.Data == 0 {
			tl.Add(w, Interval{Kind: Receive, Start: now, End: now, Data: 0})
			s, e := cpus[w].Book(now, p.Worker(w).LinearCompTime(ch.Work))
			tl.Add(w, Interval{Kind: Compute, Start: s, End: e, Work: ch.Work})
			startNext(w)
			return
		}
		active = append(active, &fluidTransfer{
			worker: w, size: ch.Data, remaining: ch.Data, start: now, work: ch.Work,
		})
	}
	for w := range queues {
		startNext(w)
	}

	for len(active) > 0 {
		rates := maxMinRates(active, p, egress)
		dt := math.Inf(1)
		for i, tr := range active {
			if rates[i] <= 0 {
				continue
			}
			if d := tr.remaining / rates[i]; d < dt {
				dt = d
			}
		}
		if math.IsInf(dt, 1) {
			return nil, fmt.Errorf("dessim: transfers stalled at t=%v", now)
		}
		now += dt
		var still, finished []*fluidTransfer
		for i, tr := range active {
			tr.remaining -= rates[i] * dt
			if tr.remaining <= 1e-9*tr.size {
				finished = append(finished, tr)
			} else {
				still = append(still, tr)
			}
		}
		active = still
		sort.Slice(finished, func(a, b int) bool { return finished[a].worker < finished[b].worker })
		for _, tr := range finished {
			w := tr.worker
			tl.Add(w, Interval{Kind: Receive, Start: tr.start, End: now, Data: tr.size})
			s, e := cpus[w].Book(now, p.Worker(w).LinearCompTime(tr.work))
			tl.Add(w, Interval{Kind: Compute, Start: s, End: e, Work: tr.work})
			startNext(w)
		}
	}
	return tl, nil
}

// maxMinRates computes the max-min fair allocation of `egress` among the
// active transfers, each capped by its worker's link bandwidth
// (water-filling: repeatedly grant capped transfers their cap, split the
// rest evenly).
func maxMinRates(active []*fluidTransfer, p *platform.Platform, egress float64) []float64 {
	n := len(active)
	rates := make([]float64, n)
	if n == 0 {
		return rates
	}
	capLeft := egress
	unfixed := make([]int, 0, n)
	for i := range active {
		unfixed = append(unfixed, i)
	}
	for len(unfixed) > 0 {
		fair := capLeft / float64(len(unfixed))
		progress := false
		next := unfixed[:0]
		for _, i := range unfixed {
			bw := p.Worker(active[i].worker).Bandwidth
			if bw <= fair {
				rates[i] = bw
				capLeft -= bw
				progress = true
			} else {
				next = append(next, i)
			}
		}
		unfixed = next
		if !progress {
			fair = capLeft / float64(len(unfixed))
			for _, i := range unfixed {
				rates[i] = fair
			}
			break
		}
	}
	return rates
}
