// Benchmarks regenerating every table and figure of the paper's
// evaluation (see DESIGN.md for the experiment index E1–E12). Each bench
// reports the experiment's headline metric via b.ReportMetric so that
// `go test -bench` output doubles as a results table.
package nlfl_test

import (
	"math"
	"testing"

	"nlfl/internal/dessim"
	"nlfl/internal/dlt"
	"nlfl/internal/experiments"
	"nlfl/internal/mapreduce"
	"nlfl/internal/matmul"
	"nlfl/internal/mrdlt"
	"nlfl/internal/nldlt"
	"nlfl/internal/outer"
	"nlfl/internal/partition"
	"nlfl/internal/platform"
	"nlfl/internal/samplesort"
	"nlfl/internal/stats"
)

// BenchmarkE1NonLinearFraction regenerates the Section 2 analysis: the
// unprocessed-work fraction across platform sizes and exponents.
func BenchmarkE1NonLinearFraction(b *testing.B) {
	var lastFraction float64
	for i := 0; i < b.N; i++ {
		rows, err := nldlt.FractionSweep([]int{2, 10, 100}, []float64{1.5, 2, 3}, 1000)
		if err != nil {
			b.Fatal(err)
		}
		lastFraction = rows[len(rows)-1].ClosedForm
	}
	b.ReportMetric(lastFraction, "undone-frac-P100-α3")
}

// BenchmarkE2BaselineAllocation solves the Hung–Robertazzi style one-port
// single-installment problem the paper's references [31–35] optimize.
func BenchmarkE2BaselineAllocation(b *testing.B) {
	r := stats.NewRNG(1)
	pl, err := platform.Generate(32, stats.Uniform{Lo: 1, Hi: 10}, r)
	if err != nil {
		b.Fatal(err)
	}
	load := nldlt.Load{N: 1000, Alpha: 2}
	var frac float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := nldlt.OptimalOnePort(pl, load, nil)
		if err != nil {
			b.Fatal(err)
		}
		frac = res.WorkFraction()
	}
	b.ReportMetric(frac, "work-fraction")
}

// BenchmarkE3SampleSort runs the real parallel sample sort of Section 3.1.
func BenchmarkE3SampleSort(b *testing.B) {
	const n = 1 << 17
	xs := make([]float64, n)
	r := stats.NewRNG(2)
	for i := range xs {
		xs[i] = r.Float64()
	}
	var ratio float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, tr, err := samplesort.Sort(xs, samplesort.Config{Workers: 8, Seed: int64(i)})
		if err != nil {
			b.Fatal(err)
		}
		ratio = tr.MaxBucketRatio()
	}
	b.ReportMetric(ratio, "max-bucket-ratio")
	b.SetBytes(int64(n * 8))
}

// BenchmarkE4HeterogeneousSort runs the Section 3.2 speed-proportional
// variant.
func BenchmarkE4HeterogeneousSort(b *testing.B) {
	const n = 1 << 17
	xs := make([]float64, n)
	r := stats.NewRNG(3)
	for i := range xs {
		xs[i] = r.Float64()
	}
	pl, err := platform.FromSpeeds([]float64{1, 2, 4, 8})
	if err != nil {
		b.Fatal(err)
	}
	var imb float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, ht, err := samplesort.SortHeterogeneous(xs, pl, samplesort.Config{Seed: int64(i)})
		if err != nil {
			b.Fatal(err)
		}
		imb = ht.Imbalance()
	}
	b.ReportMetric(imb, "sort-time-imbalance")
}

// BenchmarkE5OuterProduct runs all three Section 4.1 strategies on one
// heterogeneous platform.
func BenchmarkE5OuterProduct(b *testing.B) {
	r := stats.NewRNG(4)
	pl, err := platform.Generate(50, stats.Uniform{Lo: 1, Hi: 100}, r)
	if err != nil {
		b.Fatal(err)
	}
	var hetRatio, homkRatio float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		het, err := outer.Commhet(pl, 1000)
		if err != nil {
			b.Fatal(err)
		}
		hk, err := outer.CommhomK(pl, 1000, 0.01, 0)
		if err != nil {
			b.Fatal(err)
		}
		hetRatio, homkRatio = het.Ratio, hk.Ratio
	}
	b.ReportMetric(hetRatio, "het-ratio")
	b.ReportMetric(homkRatio, "homk-ratio")
}

// BenchmarkE6RhoBound sweeps the Section 4.1.3 bimodal platforms.
func BenchmarkE6RhoBound(b *testing.B) {
	var rho float64
	for i := 0; i < b.N; i++ {
		pts, err := experiments.RhoSweep([]float64{1, 4, 16, 64, 100}, 20, 1000)
		if err != nil {
			b.Fatal(err)
		}
		rho = pts[len(pts)-1].Measured
	}
	b.ReportMetric(rho, "rho-at-k100")
}

// BenchmarkE7MatMulComm simulates the Figure 3 broadcast pattern under
// both layouts and reports the heterogeneous layout's saving.
func BenchmarkE7MatMulComm(b *testing.B) {
	part, err := partition.PeriSum([]float64{1, 2, 4, 9})
	if err != nil {
		b.Fatal(err)
	}
	var saving float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rect, err := matmul.NewRectLayout(96, part)
		if err != nil {
			b.Fatal(err)
		}
		grid, err := matmul.NewBlockCyclic(96, 2, 2, 12)
		if err != nil {
			b.Fatal(err)
		}
		saving = matmul.CommVolume(grid).Total / matmul.CommVolume(rect).Total
	}
	b.ReportMetric(saving, "grid-over-rect-volume")
}

// benchFig4 runs one full panel (paper settings: p = 10..100, 100 trials).
func benchFig4(b *testing.B, profile platform.SpeedProfile) {
	cfg := experiments.DefaultFig4Config(profile)
	var lastHomK, lastHet float64
	for i := 0; i < b.N; i++ {
		pts, err := experiments.Fig4(cfg)
		if err != nil {
			b.Fatal(err)
		}
		last := pts[len(pts)-1]
		lastHomK, lastHet = last.HomKMean, last.HetMean
	}
	b.ReportMetric(lastHet, "het-ratio-p100")
	b.ReportMetric(lastHomK, "homk-ratio-p100")
}

// BenchmarkFig4a regenerates Figure 4(a): homogeneous speeds.
func BenchmarkFig4a(b *testing.B) { benchFig4(b, platform.ProfileHomogeneous) }

// BenchmarkFig4b regenerates Figure 4(b): Uniform[1,100] speeds.
func BenchmarkFig4b(b *testing.B) { benchFig4(b, platform.ProfileUniform) }

// BenchmarkFig4c regenerates Figure 4(c): LogNormal(0,1) speeds.
func BenchmarkFig4c(b *testing.B) { benchFig4(b, platform.ProfileLogNormal) }

// BenchmarkE11MapReduce runs the real replicated-pair MapReduce product.
func BenchmarkE11MapReduce(b *testing.B) {
	a := matmul.Random(16, 16, 1)
	m := matmul.Random(16, 16, 2)
	var shuffled float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, ctr, err := mapreduce.RunMatMulPairs(a, m, 4, 4, true)
		if err != nil {
			b.Fatal(err)
		}
		shuffled = float64(ctr.ShufflePairs)
	}
	b.ReportMetric(shuffled, "shuffle-pairs")
}

// BenchmarkE12Partition measures the PERI-SUM partitioner itself.
func BenchmarkE12Partition(b *testing.B) {
	r := stats.NewRNG(5)
	areas := stats.SampleN(stats.LogNormal{Mu: 0, Sigma: 1}, r, 100)
	norm, err := partition.Normalize(areas)
	if err != nil {
		b.Fatal(err)
	}
	lb := partition.LowerBound(norm)
	var ratio float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		part, err := partition.PeriSum(areas)
		if err != nil {
			b.Fatal(err)
		}
		ratio = part.SumHalfPerimeters() / lb
	}
	b.ReportMetric(ratio, "C-over-LB")
}

// BenchmarkKernelMatMul measures the real dense kernels (correctness
// anchor for Section 4.2).
func BenchmarkKernelMatMul(b *testing.B) {
	a := matmul.Random(128, 128, 1)
	m := matmul.Random(128, 128, 2)
	b.Run("naive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := matmul.Naive(a, m); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("blocked", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := matmul.Blocked(a, m, 32); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("parallel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := matmul.Parallel(a, m, 4); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkSimulatorThroughput measures the discrete-event engine on a
// demand-driven run (the Comm_hom execution model).
func BenchmarkSimulatorThroughput(b *testing.B) {
	r := stats.NewRNG(6)
	pl, err := platform.Generate(16, stats.Uniform{Lo: 1, Hi: 10}, r)
	if err != nil {
		b.Fatal(err)
	}
	tasks := make([]dessim.Task, 2000)
	for i := range tasks {
		tasks[i] = dessim.Task{Data: 1, Work: 1}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dessim.RunDemandDriven(pl, tasks, dessim.ParallelLinks); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(tasks)), "tasks/op")
}

// BenchmarkE13Bottleneck runs the link-bottleneck sweep (the paper's
// "links may become bottleneck resources" motivation).
func BenchmarkE13Bottleneck(b *testing.B) {
	r := stats.NewRNG(7)
	pl, err := platform.Generate(20, stats.Uniform{Lo: 1, Hi: 100}, r)
	if err != nil {
		b.Fatal(err)
	}
	var slowdownAtUnitBW float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pts, err := experiments.Bottleneck(pl, 1000, 0.01, []float64{1})
		if err != nil {
			b.Fatal(err)
		}
		slowdownAtUnitBW = pts[0].HomK / pts[0].Het
	}
	b.ReportMetric(slowdownAtUnitBW, "homk-over-het-makespan")
}

// BenchmarkE14MRDLT measures the divisible MapReduce optimizer (the
// linear case where DLT genuinely pays off).
func BenchmarkE14MRDLT(b *testing.B) {
	// A map-bound instance (small γ) on a strongly heterogeneous platform:
	// the chunk-vector optimization has room to work.
	r := stats.NewRNG(6)
	pl, err := platform.Generate(8, stats.Uniform{Lo: 1, Hi: 20}, r)
	if err != nil {
		b.Fatal(err)
	}
	job := mrdlt.Job{V: 1000, Gamma: 0.1, Reducers: 4, ReducerSpeed: 5}
	var speedup float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := mrdlt.SpeedupOverEqual(pl, job)
		if err != nil {
			b.Fatal(err)
		}
		speedup = s
	}
	b.ReportMetric(speedup, "opt-over-equal")
}

// BenchmarkE15BoundedEgress measures the fluid bounded-multiport model:
// the makespan penalty of a constrained master versus the paper's
// infinite-egress idealization.
func BenchmarkE15BoundedEgress(b *testing.B) {
	r := stats.NewRNG(9)
	pl, err := platform.Generate(10, stats.Uniform{Lo: 0.5, Hi: 4}, r)
	if err != nil {
		b.Fatal(err)
	}
	const n = 200.0
	alloc, err := dlt.OptimalParallel(pl, n)
	if err != nil {
		b.Fatal(err)
	}
	chunks := dlt.Chunks(alloc, n)
	var penalty float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		wide, err := dessim.RunSingleRoundBounded(pl, chunks, math.Inf(1))
		if err != nil {
			b.Fatal(err)
		}
		tight, err := dessim.RunSingleRoundBounded(pl, chunks, 1)
		if err != nil {
			b.Fatal(err)
		}
		penalty = tight.Makespan / wide.Makespan
	}
	b.ReportMetric(penalty, "egress1-penalty")
}
