package partition

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Rect is an axis-aligned rectangle inside the unit square.
type Rect struct {
	// X, Y locate the lower-left corner; W, H are width and height.
	X, Y, W, H float64
	// Index is the prescribed-area index this rectangle serves.
	Index int
}

// Area returns W·H.
func (r Rect) Area() float64 { return r.W * r.H }

// HalfPerimeter returns W + H — the communication cost of the processor
// assigned this rectangle (it needs W·N elements of one vector and H·N of
// the other, per Section 4.1.2).
func (r Rect) HalfPerimeter() float64 { return r.W + r.H }

// String renders the rectangle compactly.
func (r Rect) String() string {
	return fmt.Sprintf("rect[%d]{x=%.4g y=%.4g w=%.4g h=%.4g}", r.Index, r.X, r.Y, r.W, r.H)
}

// Partition is a set of rectangles intended to tile the unit square, one
// per prescribed area.
type Partition struct {
	Rects []Rect
	// Areas echoes the prescribed (normalized) areas, indexed like the
	// original request.
	Areas []float64
}

// SumHalfPerimeters returns Ĉ = Σ (wᵢ + hᵢ), the PERI-SUM objective.
func (p *Partition) SumHalfPerimeters() float64 {
	s := 0.0
	for _, r := range p.Rects {
		s += r.HalfPerimeter()
	}
	return s
}

// MaxHalfPerimeter returns max (wᵢ + hᵢ), the PERI-MAX objective.
func (p *Partition) MaxHalfPerimeter() float64 {
	m := 0.0
	for _, r := range p.Rects {
		if hp := r.HalfPerimeter(); hp > m {
			m = hp
		}
	}
	return m
}

// HalfPerimeterOf returns the half-perimeter of the rectangle serving
// prescribed-area index i.
func (p *Partition) HalfPerimeterOf(i int) float64 {
	for _, r := range p.Rects {
		if r.Index == i {
			return r.HalfPerimeter()
		}
	}
	return math.NaN()
}

const geomTol = 1e-9

// Validate checks that the partition is an exact tiling: every prescribed
// area is served by exactly one rectangle of matching area, rectangles lie
// inside the unit square, do not overlap pairwise, and their areas sum
// to 1. (Equal total area + no overlap + containment ⇒ exact cover.)
func (p *Partition) Validate() error {
	if len(p.Rects) != len(p.Areas) {
		return fmt.Errorf("partition: %d rects for %d areas", len(p.Rects), len(p.Areas))
	}
	seen := make([]bool, len(p.Areas))
	total := 0.0
	for _, r := range p.Rects {
		if r.Index < 0 || r.Index >= len(p.Areas) {
			return fmt.Errorf("partition: %v has out-of-range index", r)
		}
		if seen[r.Index] {
			return fmt.Errorf("partition: area %d served twice", r.Index)
		}
		seen[r.Index] = true
		if r.W <= 0 || r.H <= 0 {
			return fmt.Errorf("partition: %v is degenerate", r)
		}
		if r.X < -geomTol || r.Y < -geomTol || r.X+r.W > 1+geomTol || r.Y+r.H > 1+geomTol {
			return fmt.Errorf("partition: %v escapes the unit square", r)
		}
		if math.Abs(r.Area()-p.Areas[r.Index]) > 1e-6*(1+p.Areas[r.Index]) {
			return fmt.Errorf("partition: %v has area %v, prescribed %v", r, r.Area(), p.Areas[r.Index])
		}
		total += r.Area()
	}
	if math.Abs(total-1) > 1e-6 {
		return fmt.Errorf("partition: areas sum to %v, want 1", total)
	}
	for i := 0; i < len(p.Rects); i++ {
		for j := i + 1; j < len(p.Rects); j++ {
			if overlaps(p.Rects[i], p.Rects[j]) {
				return fmt.Errorf("partition: %v overlaps %v", p.Rects[i], p.Rects[j])
			}
		}
	}
	return nil
}

// overlaps reports whether two rectangles share interior area (touching
// edges do not count).
func overlaps(a, b Rect) bool {
	return a.X < b.X+b.W-geomTol && b.X < a.X+a.W-geomTol &&
		a.Y < b.Y+b.H-geomTol && b.Y < a.Y+a.H-geomTol
}

// LowerBound returns LB = 2Σ√aᵢ for normalized areas: each rectangle's
// half-perimeter is at least twice the square root of its area (squares
// are optimal), so no partition can communicate less.
func LowerBound(areas []float64) float64 {
	s := 0.0
	for _, a := range areas {
		s += math.Sqrt(a)
	}
	return 2 * s
}

// Normalize scales positive areas to sum to 1; it errors on empty input or
// non-positive entries.
func Normalize(areas []float64) ([]float64, error) {
	if len(areas) == 0 {
		return nil, errors.New("partition: no areas")
	}
	sum := 0.0
	for i, a := range areas {
		if a <= 0 || math.IsNaN(a) || math.IsInf(a, 0) {
			return nil, fmt.Errorf("partition: area %d is %v", i, a)
		}
		sum += a
	}
	out := make([]float64, len(areas))
	for i, a := range areas {
		out[i] = a / sum
	}
	return out, nil
}

// sortedIndex pairs an area with its original position.
type sortedIndex struct {
	area float64
	idx  int
}

// sortAreasDescending returns (area, original index) pairs sorted by
// non-increasing area, breaking ties by index for determinism.
func sortAreasDescending(areas []float64) []sortedIndex {
	out := make([]sortedIndex, len(areas))
	for i, a := range areas {
		out[i] = sortedIndex{area: a, idx: i}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].area > out[j].area })
	return out
}

// Columns returns the number of distinct column x-origins in the
// partition — for column-based layouts, the C the DP selected (an
// introspection hook for the ablation reports).
func (p *Partition) Columns() int {
	seen := map[float64]bool{}
	for _, r := range p.Rects {
		seen[r.X] = true
	}
	return len(seen)
}
