package dlt_test

import (
	"fmt"

	"nlfl/internal/dlt"
	"nlfl/internal/platform"
)

// The classical result: the optimal star allocation equalizes finish
// times, so faster-and-better-connected workers get more load.
func ExampleOptimalParallel() {
	pl, _ := platform.New([]platform.Worker{
		{Speed: 1, Bandwidth: 1},
		{Speed: 3, Bandwidth: 1},
	})
	a, _ := dlt.OptimalParallel(pl, 100)
	fmt.Printf("shares %.3f, makespan %.1f\n", a.Fractions, a.Makespan)
	// Output: shares [0.400 0.600], makespan 80.0
}

// One-port: the emission order matters; BestOnePortOrder serves the
// best-connected worker first.
func ExampleBestOnePortOrder() {
	pl, _ := platform.New([]platform.Worker{
		{Speed: 1, Bandwidth: 1},
		{Speed: 1, Bandwidth: 9},
	})
	fmt.Println(dlt.BestOnePortOrder(pl))
	// Output: [1 0]
}
