package runtime

import (
	"fmt"
	"math"

	"nlfl/internal/core"
	"nlfl/internal/outer"
	"nlfl/internal/platform"
)

// StrategyPlan is an executable distribution plan: the chunk list plus the
// analytic communication volume the measured run is cross-checked against.
type StrategyPlan struct {
	// Strategy names the policy ("hom", "hom/k", "het").
	Strategy string
	// N is the vector length (the domain is N×N).
	N int
	// Chunks lists the schedulable rectangles; they tile the domain.
	Chunks []Chunk
	// Grid is the block grid side for the homogeneous strategies (0 for
	// het).
	Grid int
	// K is the Comm_hom/k refinement factor (1 for hom, 0 for het).
	K int
	// Predicted is the strategy's closed-form communication volume in
	// vector elements: 2N·√(Σsᵢ/s₁) for hom, its k-refined integer form
	// for hom/k, Σ(wᵢ+hᵢ)·N for het.
	Predicted float64
}

// sumOverMin returns Σsᵢ/s₁ for the platform — the paper's S/s₁ factor
// whose square root sets the homogeneous block grid.
func sumOverMin(pl *platform.Platform) float64 {
	s1 := math.Inf(1)
	sum := 0.0
	for _, s := range pl.Speeds() {
		sum += s
		if s < s1 {
			s1 = s
		}
	}
	return sum / s1
}

// GridSide returns the integer block grid of the Homogeneous Blocks
// strategy: the ideal block side is √x₁·N, so √(Σsᵢ/s₁) blocks span the
// domain, rounded to the nearest integer grid (at least 1).
func GridSide(pl *platform.Platform) int {
	g := int(math.Round(math.Sqrt(sumOverMin(pl))))
	if g < 1 {
		g = 1
	}
	return g
}

// GridChunks cuts the N×N domain into grid×grid near-square ownerless
// chunks in scan order — the demand-driven block pool of the MapReduce
// strategy. Boundaries use the i·n/grid rounding, so the chunks tile the
// domain exactly even when grid does not divide n.
func GridChunks(n, grid int) ([]Chunk, error) {
	if n <= 0 {
		return nil, fmt.Errorf("runtime: invalid problem size %d", n)
	}
	if grid <= 0 || grid > n {
		return nil, fmt.Errorf("runtime: grid %d not in [1, %d]", grid, n)
	}
	chunks := make([]Chunk, 0, grid*grid)
	for bi := 0; bi < grid; bi++ {
		for bj := 0; bj < grid; bj++ {
			chunks = append(chunks, Chunk{
				Task:  bi*grid + bj,
				RowLo: bi * n / grid, RowHi: (bi + 1) * n / grid,
				ColLo: bj * n / grid, ColHi: (bj + 1) * n / grid,
				Owner: -1,
			})
		}
	}
	return chunks, nil
}

// clampGrid limits a block grid to the n×n domain: on a platform so
// heterogeneous that round(k·√(Σsᵢ/s₁)) exceeds n, the finest realizable
// grid is one chunk per cell. Returns the clamped grid and whether
// clamping happened (in which case the closed-form volume no longer
// applies and the caller must predict the realized-grid volume 2·N·g).
func clampGrid(grid, n int) (int, bool) {
	if grid > n {
		return n, true
	}
	return grid, false
}

// PlanHom builds the Homogeneous Blocks plan: identical ownerless blocks
// sized for the slowest worker, claimed demand-driven. The prediction is
// the paper's closed form Comm_hom = 2N·√(Σsᵢ/s₁) — unless the grid had
// to be clamped to the domain side, in which case it is the realized
// grid's exact volume 2·N·grid.
func PlanHom(pl *platform.Platform, n int) (*StrategyPlan, error) {
	grid, clamped := clampGrid(GridSide(pl), n)
	chunks, err := GridChunks(n, grid)
	if err != nil {
		return nil, err
	}
	predicted := outer.Commhom(pl, float64(n)).Volume
	if clamped {
		predicted = float64(2 * n * grid)
	}
	return &StrategyPlan{
		Strategy:  "hom",
		N:         n,
		Chunks:    chunks,
		Grid:      grid,
		K:         1,
		Predicted: predicted,
	}, nil
}

// PlanHomK builds the Comm_hom/k plan: the block side is divided by the
// smallest k whose demand-driven assignment balances within eps
// (Section 4.3; the paper uses eps = 0.01), then the domain is cut into
// the k-refined grid. The prediction is the analytic k-refined volume from
// outer.CommhomK.
func PlanHomK(pl *platform.Platform, n int, eps float64, maxK int) (*StrategyPlan, error) {
	res, err := outer.CommhomK(pl, float64(n), eps, maxK)
	if err != nil {
		return nil, err
	}
	grid := int(math.Round(float64(res.K) * math.Sqrt(sumOverMin(pl))))
	if grid < 1 {
		grid = 1
	}
	grid, clamped := clampGrid(grid, n)
	chunks, err := GridChunks(n, grid)
	if err != nil {
		return nil, err
	}
	predicted := res.Volume
	if clamped {
		predicted = float64(2 * n * grid)
	}
	return &StrategyPlan{
		Strategy:  "hom/k",
		N:         n,
		Chunks:    chunks,
		Grid:      grid,
		K:         res.K,
		Predicted: predicted,
	}, nil
}

// EdgeLoads returns, per topology edge, the data volume the plan ships
// across it: each chunk's Data attributed to every edge on its owner's
// route. ok is false when any chunk is ownerless (demand-driven plans
// assign chunks at run time, so their edge traffic is not known
// statically). For an owned fault-free run, Report.Edges volumes equal
// these loads exactly.
func EdgeLoads(plan *StrategyPlan, topo Topology) (loads []float64, ok bool) {
	if topo == nil {
		return nil, false
	}
	loads = make([]float64, len(topo.Edges()))
	for _, c := range plan.Chunks {
		if c.Owner < 0 {
			return nil, false
		}
		for _, e := range topo.Route(c.Owner) {
			loads[e] += float64(c.Data())
		}
	}
	return loads, true
}

// DeliveryFloor returns an analytic lower bound on the makespan of an
// owned plan over the topology, from bandwidth alone (compute ignored):
// the largest of (a) each capped edge's total load divided by its
// capacity — the edge must carry that volume serially — and (b) each
// chunk's own transfer time summed over the capped edges of its route,
// the hop-serialized delivery cost a store-and-forward network charges
// even with every edge otherwise idle. ok is false for demand-driven
// plans (no static routes) or when no route has a capped edge.
func DeliveryFloor(plan *StrategyPlan, topo Topology) (floor float64, ok bool) {
	loads, ok := EdgeLoads(plan, topo)
	if !ok {
		return 0, false
	}
	edges := topo.Edges()
	any := false
	for e, load := range loads {
		if edges[e].Capacity > 0 && load > 0 {
			any = true
			if f := load / edges[e].Capacity; f > floor {
				floor = f
			}
		}
	}
	for _, c := range plan.Chunks {
		t := 0.0
		for _, e := range topo.Route(c.Owner) {
			if edges[e].Capacity > 0 {
				t += float64(c.Data()) / edges[e].Capacity
				any = true
			}
		}
		if !topo.StoreAndForward() {
			// A circuit transfer holds all route edges for one window at
			// the bottleneck rate, which (a) already dominates.
			t = 0
		}
		if t > floor {
			floor = t
		}
	}
	return floor, any
}

// PlanHet builds the Heterogeneous Blocks plan: one owned chunk per worker
// from the PERI-SUM rectangle partition, snapped to the integer grid. The
// prediction is Σ(wᵢ+hᵢ) over the *snapped* rectangles — what this plan
// actually ships — not the continuous plan's Σ(wᵢ+hᵢ)·N, which differs
// by the integer-grid rounding and would make the trace oracle's exact
// bound miss what executes. A rectangle that collapses on the integer
// grid surfaces as core's typed degenerate-rect error.
func PlanHet(pl *platform.Platform, n int) (*StrategyPlan, error) {
	plan, err := core.PlanOuterProduct(pl, float64(n))
	if err != nil {
		return nil, err
	}
	rects, err := core.SnapPlan(plan, n)
	if err != nil {
		return nil, err
	}
	chunks := make([]Chunk, len(rects))
	predicted := 0.0
	for i, r := range rects {
		chunks[i] = Chunk{
			Task:  i,
			RowLo: r.RowLo, RowHi: r.RowHi,
			ColLo: r.ColLo, ColHi: r.ColHi,
			Owner: i,
		}
		predicted += float64(chunks[i].Data())
	}
	return &StrategyPlan{
		Strategy:  "het",
		N:         n,
		Chunks:    chunks,
		K:         0,
		Predicted: predicted,
	}, nil
}
