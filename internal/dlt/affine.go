package dlt

import (
	"errors"
	"fmt"
	"math"

	"nlfl/internal/platform"
)

// AffineCosts extends the bandwidth-only model with per-worker
// communication latencies: sending X units to worker i takes
// Lᵢ + cᵢ·X. Latencies are the classical DLT refinement that makes
// *resource selection* non-trivial — a worker whose latency exceeds the
// makespan budget should receive nothing at all, which the plain model
// can never conclude.
type AffineCosts struct {
	// Latency[i] is Lᵢ ≥ 0, in time units.
	Latency []float64
}

// Validate checks the latency vector against the platform.
func (a AffineCosts) Validate(p *platform.Platform) error {
	if len(a.Latency) != p.P() {
		return fmt.Errorf("dlt: %d latencies for %d workers", len(a.Latency), p.P())
	}
	for i, l := range a.Latency {
		if l < 0 || math.IsNaN(l) || math.IsInf(l, 0) {
			return fmt.Errorf("dlt: latency %d is %v", i, l)
		}
	}
	return nil
}

// OptimalParallelAffine solves the single-round allocation under parallel
// links with affine communication costs: worker i finishing its share
// αᵢ·n at time Lᵢ + αᵢ·n·(cᵢ + wᵢ). The optimum equalizes finish times
// among *participating* workers at some T, with
// αᵢ·n = max(0, (T - Lᵢ)/(cᵢ+wᵢ)); workers whose latency exceeds T drop
// out naturally. Solved by bisection on T (the total allocated load is
// non-decreasing in T).
func OptimalParallelAffine(p *platform.Platform, costs AffineCosts, n float64) (Allocation, error) {
	if n < 0 {
		return Allocation{}, errors.New("dlt: negative load")
	}
	if err := costs.Validate(p); err != nil {
		return Allocation{}, err
	}
	loadAt := func(t float64) float64 {
		sum := 0.0
		for i := 0; i < p.P(); i++ {
			if t <= costs.Latency[i] {
				continue
			}
			w := p.Worker(i)
			sum += (t - costs.Latency[i]) / (1/w.Bandwidth + 1/w.Speed)
		}
		return sum
	}
	hi := 1.0
	for loadAt(hi) < n {
		hi *= 2
		if math.IsInf(hi, 0) {
			return Allocation{}, errors.New("dlt: failed to bracket the makespan")
		}
	}
	lo := 0.0
	for i := 0; i < 200 && hi-lo > 1e-14*(1+hi); i++ {
		mid := (lo + hi) / 2
		if loadAt(mid) < n {
			lo = mid
		} else {
			hi = mid
		}
	}
	fr := make([]float64, p.P())
	total := 0.0
	for i := 0; i < p.P(); i++ {
		if hi <= costs.Latency[i] {
			continue
		}
		w := p.Worker(i)
		fr[i] = (hi - costs.Latency[i]) / (1/w.Bandwidth + 1/w.Speed)
		total += fr[i]
	}
	if total == 0 {
		return Allocation{}, errors.New("dlt: no worker can participate")
	}
	// Normalize the residual bisection slack so fractions sum exactly to 1
	// (n > 0) — the makespan error stays within the bisection tolerance.
	for i := range fr {
		fr[i] /= total
	}
	return Allocation{Fractions: fr, Makespan: hi}, nil
}

// ParticipantCount returns how many workers received a positive share.
func ParticipantCount(a Allocation) int {
	n := 0
	for _, f := range a.Fractions {
		if f > 1e-12 {
			n++
		}
	}
	return n
}
