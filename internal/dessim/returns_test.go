package dessim

import (
	"math"
	"testing"

	"nlfl/internal/platform"
	"nlfl/internal/stats"
)

func TestReturnsHandDerived(t *testing.T) {
	// Two unit workers, chunks of 4 data / 4 work, δ = 0.5 (2 result
	// units each). Sends: w0 [0,4], w1 [4,8]; computes end at 8 and 12.
	// FIFO returns: w0 at max(8, 0)=8 → [8,10]; w1 at max(12,10)=12 →
	// [12,14]. Makespan 14.
	p, err := platform.FromSpeeds([]float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	chunks := []Chunk{
		{Worker: 0, Data: 4, Work: 4},
		{Worker: 1, Data: 4, Work: 4},
	}
	tl, err := RunSingleRoundWithReturns(p, chunks, 0.5, FIFO)
	if err != nil {
		t.Fatal(err)
	}
	if tl.Makespan != 14 {
		t.Errorf("FIFO makespan = %v, want 14", tl.Makespan)
	}
	// LIFO: w1 returns first at 12 → [12,14]; w0 at max(8,14)=14 →
	// [14,16].
	lifo, err := RunSingleRoundWithReturns(p, chunks, 0.5, LIFO)
	if err != nil {
		t.Fatal(err)
	}
	if lifo.Makespan != 16 {
		t.Errorf("LIFO makespan = %v, want 16", lifo.Makespan)
	}
}

func TestReturnsZeroDeltaMatchesOnePort(t *testing.T) {
	p, err := platform.FromSpeeds([]float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	chunks := []Chunk{
		{Worker: 0, Data: 3, Work: 3},
		{Worker: 1, Data: 3, Work: 3},
		{Worker: 2, Data: 3, Work: 3},
	}
	plain, err := RunSingleRound(p, chunks, OnePort)
	if err != nil {
		t.Fatal(err)
	}
	ret, err := RunSingleRoundWithReturns(p, chunks, 0, FIFO)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(plain.Makespan-ret.Makespan) > 1e-12 {
		t.Errorf("δ=0 should reduce to plain one-port: %v vs %v", ret.Makespan, plain.Makespan)
	}
}

func TestReturnsNeitherOrderDominates(t *testing.T) {
	// Classical DLT folklore: FIFO and LIFO each win on some instances.
	// Search small random platforms for one win in each direction.
	r := stats.NewRNG(17)
	fifoWins, lifoWins := 0, 0
	for trial := 0; trial < 60; trial++ {
		pn := 2 + r.Intn(4)
		ws := make([]platform.Worker, pn)
		for i := range ws {
			ws[i] = platform.Worker{Speed: 0.3 + 4*r.Float64(), Bandwidth: 0.3 + 4*r.Float64()}
		}
		pl, err := platform.New(ws)
		if err != nil {
			t.Fatal(err)
		}
		chunks := make([]Chunk, pn)
		for i := range chunks {
			d := 1 + 4*r.Float64()
			chunks[i] = Chunk{Worker: i, Data: d, Work: d}
		}
		fifo, lifo, err := CompareReturnOrders(pl, chunks, 0.8)
		if err != nil {
			t.Fatal(err)
		}
		switch {
		case fifo < lifo-1e-9:
			fifoWins++
		case lifo < fifo-1e-9:
			lifoWins++
		}
	}
	if fifoWins == 0 || lifoWins == 0 {
		t.Errorf("expected both orders to win somewhere: fifo=%d lifo=%d", fifoWins, lifoWins)
	}
}

func TestReturnsValidation(t *testing.T) {
	p, _ := platform.Homogeneous(2, 1, 1)
	if _, err := RunSingleRoundWithReturns(p, []Chunk{{Worker: 0, Data: 1, Work: 1}}, -0.1, FIFO); err == nil {
		t.Error("negative delta should fail")
	}
	dup := []Chunk{{Worker: 0, Data: 1, Work: 1}, {Worker: 0, Data: 1, Work: 1}}
	if _, err := RunSingleRoundWithReturns(p, dup, 0.5, FIFO); err == nil {
		t.Error("duplicate worker should fail")
	}
	if _, err := RunSingleRoundWithReturns(p, []Chunk{{Worker: 7, Data: 1, Work: 1}}, 0.5, FIFO); err == nil {
		t.Error("unknown worker should fail")
	}
	if FIFO.String() != "fifo" || LIFO.String() != "lifo" || ReturnOrder(9).String() == "" {
		t.Error("order names")
	}
}

func TestReturnsVolumeAccounting(t *testing.T) {
	p, _ := platform.Homogeneous(3, 1, 1)
	chunks := []Chunk{
		{Worker: 0, Data: 2, Work: 1},
		{Worker: 1, Data: 4, Work: 1},
		{Worker: 2, Data: 6, Work: 1},
	}
	tl, err := RunSingleRoundWithReturns(p, chunks, 0.25, LIFO)
	if err != nil {
		t.Fatal(err)
	}
	// Volume = sends (12) + returns (3).
	if math.Abs(tl.CommVolume()-15) > 1e-9 {
		t.Errorf("volume = %v, want 15", tl.CommVolume())
	}
}
