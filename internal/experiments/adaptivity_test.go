package experiments

import (
	"math"
	"testing"
)

func TestAdaptivity(t *testing.T) {
	rows, err := Adaptivity(8, 800, 256, []float64{1, 0.5, 0.1, 0.02})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Healthy factor: both match the clean reference (demand-driven pays
	// a little chunking slack).
	h := rows[0]
	if math.Abs(h.Static-h.Clean) > 1e-9 {
		t.Errorf("healthy static %v != clean %v", h.Static, h.Clean)
	}
	if h.Demand > 1.3*h.Clean {
		t.Errorf("healthy demand-driven %v too far above clean %v", h.Demand, h.Clean)
	}
	for i, r := range rows {
		// Static degrades ~linearly in 1/f; demand-driven barely moves.
		if r.Static < r.Clean-1e-9 || r.Demand < r.Clean*0.5 {
			t.Errorf("row %+v: impossible makespans", r)
		}
		if i > 0 {
			if r.Static <= rows[i-1].Static {
				t.Errorf("static makespan should grow as the worker slows: %+v", rows)
			}
		}
	}
	worst := rows[len(rows)-1] // residual speed 2%
	if worst.Static < 3*worst.Demand {
		t.Errorf("under a hard slowdown, static (%v) should dwarf demand-driven (%v)",
			worst.Static, worst.Demand)
	}
	// The demand-driven residue is exactly one block stranded on the
	// straggler: makespan ≤ clean + blockWork/f. (That residual tail is
	// what Hadoop's speculative backups — mapreduce.Schedule — remove.)
	blockWork := 800.0 / 256
	if worst.Demand > worst.Clean+blockWork/0.02+1e-9 {
		t.Errorf("demand-driven %v above the one-stranded-block bound %v",
			worst.Demand, worst.Clean+blockWork/0.02)
	}
	if AdaptivityTable(rows).String() == "" {
		t.Error("empty table")
	}
}

func TestAdaptivityValidation(t *testing.T) {
	if _, err := Adaptivity(4, 100, 64, []float64{0}); err == nil {
		t.Error("factor 0 should fail")
	}
	if _, err := Adaptivity(4, 100, 64, []float64{1.5}); err == nil {
		t.Error("factor > 1 should fail")
	}
}

func TestReturnsSweep(t *testing.T) {
	rows, err := ReturnsSweep([]float64{0, 0.5, 1}, 5, 40, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	// δ=0: returns are free, both orders tie everywhere.
	if rows[0].Ties != 40 || rows[0].MeanGap > 1e-9 {
		t.Errorf("δ=0 should tie everywhere: %+v", rows[0])
	}
	// Positive δ: both orders must win somewhere (the classical
	// incomparability), and the gap is material.
	for _, r := range rows[1:] {
		if r.FIFOWins == 0 || r.LIFOWins == 0 {
			t.Errorf("δ=%v: expected wins on both sides: %+v", r.Delta, r)
		}
		if r.FIFOWins+r.LIFOWins+r.Ties != 40 {
			t.Errorf("δ=%v: counts don't add up: %+v", r.Delta, r)
		}
		if r.MeanGap <= 0 {
			t.Errorf("δ=%v: zero mean gap", r.Delta)
		}
	}
	if ReturnsTable(rows).String() == "" {
		t.Error("empty table")
	}
	if _, err := ReturnsSweep([]float64{-1}, 3, 5, 1); err == nil {
		t.Error("negative delta should fail")
	}
}
