package capacity

import (
	"context"
	"errors"
	"fmt"
	"math"

	"nlfl/internal/dessim"
	"nlfl/internal/platform"
	nrt "nlfl/internal/runtime"
	"nlfl/internal/stats"
)

// ErrModelMismatch marks a capacity prediction that disagrees with an
// observed makespan beyond the stated tolerance — either the platform
// description is wrong (speeds, rate, bandwidth) or the workload's α is
// mis-specified, and capacity plans built on it would mis-size fleets.
var ErrModelMismatch = errors.New("capacity: model prediction disagrees with observation")

// memcpyBandwidth stands in for an unconstrained link in the simulator:
// fast enough that transfer time vanishes next to compute, finite so the
// platform constructor accepts it.
const memcpyBandwidth = 1e18

// realSystem builds the concrete system both validators run: the N×N
// outer product (the α=2 workload the measured layer executes) planned
// by PlanHet over the p fastest speeds. The model's Alpha is
// deliberately NOT consulted here — validation exists to catch a model
// whose assumed law disagrees with what actually runs.
func (m Model) realSystem(p int) (*nrt.StrategyPlan, []float64, error) {
	if err := m.Validate(); err != nil {
		return nil, nil, err
	}
	if p < 1 || p > len(m.Speeds) {
		return nil, nil, fmt.Errorf("capacity: slice size %d not in [1, %d]", p, len(m.Speeds))
	}
	speeds := m.fastest(p)
	pl, err := platform.FromSpeeds(speeds)
	if err != nil {
		return nil, nil, fmt.Errorf("capacity: %w", err)
	}
	plan, err := nrt.PlanHet(pl, m.N)
	if err != nil {
		return nil, nil, fmt.Errorf("capacity: %w", err)
	}
	return plan, speeds, nil
}

// SimulateMakespan runs the discrete-event simulator over the snapped
// PERI-SUM plan on the p fastest workers — one-port serialized
// transfers, then each worker computes its own rectangle — and returns
// the simulated makespan in seconds. The DES differs from the model
// only by integer-grid snapping (the model prices the continuous
// rectangles), so agreement within a few percent is the expected
// outcome for any correctly-specified model.
func (m Model) SimulateMakespan(p int) (float64, error) {
	plan, speeds, err := m.realSystem(p)
	if err != nil {
		return 0, err
	}
	bw := m.Bandwidth
	if bw <= 0 {
		bw = memcpyBandwidth
	}
	workers := make([]platform.Worker, p)
	for i, s := range speeds {
		workers[i] = platform.Worker{Speed: s * m.WorkPerSecond, Bandwidth: bw}
	}
	pl, err := platform.New(workers)
	if err != nil {
		return 0, fmt.Errorf("capacity: %w", err)
	}
	chunks := make([]dessim.Chunk, len(plan.Chunks))
	for i, c := range plan.Chunks {
		chunks[i] = dessim.Chunk{Worker: c.Owner, Data: float64(c.Data()), Work: float64(c.Cells())}
	}
	tl, err := dessim.RunSingleRound(pl, chunks, dessim.OnePort)
	if err != nil {
		return 0, fmt.Errorf("capacity: %w", err)
	}
	makespan := 0.0
	for _, t := range tl.FinishTimes() {
		if t > makespan {
			makespan = t
		}
	}
	return makespan, nil
}

// MeasureMakespan executes the same plan on the real worker-pool
// runtime — goroutine workers, token-bucket speeds, the bandwidth-
// modeled one-port link — and returns the measured wall-clock makespan.
// Wall-clock adds scheduler noise on top of the model, so callers
// compare against a looser tolerance than the simulator's.
func (m Model) MeasureMakespan(ctx context.Context, p int, seed int64) (float64, error) {
	plan, speeds, err := m.realSystem(p)
	if err != nil {
		return 0, err
	}
	r := stats.NewRNG(seed)
	a := stats.SampleN(stats.Uniform{Lo: -1, Hi: 1}, r, m.N)
	b := stats.SampleN(stats.Uniform{Lo: -1, Hi: 1}, r, m.N)
	rep, err := nrt.RunContext(ctx, plan, a, b, nrt.Options{
		Speeds:        speeds,
		WorkPerSecond: m.WorkPerSecond,
		Link:          nrt.Link{ElemsPerSecond: m.Bandwidth},
		// A tight bucket (0.1 ms of credit) keeps the throttle, not the
		// burst allowance, pacing the run — the regime the model prices.
		Burst: m.WorkPerSecond * 1e-4,
	})
	if err != nil {
		return 0, fmt.Errorf("capacity: %w", err)
	}
	return rep.Makespan, nil
}

// CheckObservation compares an observed makespan for a p-worker slice
// against the model's prediction and fails with ErrModelMismatch beyond
// the relative tolerance. This is the gate BENCH_capacity.json runs for
// both the simulated and the measured system — and the gate a
// deliberately mis-specified α cannot pass.
func (m Model) CheckObservation(p int, observed, relTol float64) error {
	pred, err := m.PredictSlice(p)
	if err != nil {
		return err
	}
	if observed <= 0 || math.IsNaN(observed) || math.IsInf(observed, 0) {
		return fmt.Errorf("capacity: invalid observed makespan %v", observed)
	}
	relErr := math.Abs(observed-pred.Makespan) / pred.Makespan
	if relErr > relTol {
		return fmt.Errorf("%w: p=%d predicted %.6fs, observed %.6fs (relative error %.3f > %.3f)",
			ErrModelMismatch, p, pred.Makespan, observed, relErr, relTol)
	}
	return nil
}
