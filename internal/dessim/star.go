package dessim

import (
	"fmt"

	"nlfl/internal/platform"
)

// CommMode selects the master's outgoing-communication model.
type CommMode int

// Communication models.
const (
	// ParallelLinks is the paper's Section 1.2 model: all master→worker
	// transfers may proceed simultaneously, each limited only by the
	// incoming bandwidth of its worker.
	ParallelLinks CommMode = iota
	// OnePort serializes the master's sends (the classical DLT model used
	// by the non-linear DLT literature the paper refutes): at most one
	// outgoing transfer at a time, in schedule order.
	OnePort
)

// String implements fmt.Stringer.
func (m CommMode) String() string {
	switch m {
	case ParallelLinks:
		return "parallel-links"
	case OnePort:
		return "one-port"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// Chunk is one scheduled transfer+computation: Data units are sent to
// Worker, which then performs Work units of useful work (taking
// Work/speed time). The translation from data size to work is the
// caller's: linear loads use Work = Data, α-power loads Work = Data^α.
type Chunk struct {
	Worker int
	Data   float64
	Work   float64
}

// RunSingleRound executes a static schedule: every chunk is sent exactly
// once, in slice order. In OnePort mode the order is the master's emission
// order; in ParallelLinks mode it is the per-worker emission order. A
// worker computes each chunk after fully receiving it (no pipelining of a
// chunk's own communication and computation, per the paper's model), and
// its CPU processes chunks in arrival order.
func RunSingleRound(p *platform.Platform, chunks []Chunk, mode CommMode) (*Timeline, error) {
	tl := NewTimeline(p.P())
	port := &Resource{}              // master's one-port resource
	links := make([]Resource, p.P()) // per-worker incoming links
	cpus := make([]Resource, p.P())  // per-worker CPUs
	for idx, ch := range chunks {
		if ch.Worker < 0 || ch.Worker >= p.P() {
			return nil, fmt.Errorf("dessim: chunk %d targets unknown worker %d", idx, ch.Worker)
		}
		if ch.Data < 0 || ch.Work < 0 {
			return nil, fmt.Errorf("dessim: chunk %d has negative size (%v data, %v work)", idx, ch.Data, ch.Work)
		}
		w := p.Worker(ch.Worker)
		commDur := w.CommTime(ch.Data)
		var recvStart, recvEnd float64
		if mode == OnePort {
			recvStart, recvEnd = port.Book(0, commDur)
		} else {
			recvStart, recvEnd = links[ch.Worker].Book(0, commDur)
		}
		tl.Add(ch.Worker, Interval{Kind: Receive, Start: recvStart, End: recvEnd, Data: ch.Data, Task: idx})
		compStart, compEnd := cpus[ch.Worker].Book(recvEnd, w.LinearCompTime(ch.Work))
		tl.Add(ch.Worker, Interval{Kind: Compute, Start: compStart, End: compEnd, Work: ch.Work, Task: idx})
	}
	return tl, nil
}

// RunSingleRoundAffine executes a static schedule like RunSingleRound but
// charges a fixed per-chunk latency on every transfer: receiving a chunk
// of d units on worker i takes latency[i] + d/bwᵢ. Latencies are what
// make multi-round scheduling a trade-off — more rounds pipeline better
// but pay the overhead more often (the classical UMR setting).
func RunSingleRoundAffine(p *platform.Platform, chunks []Chunk, latency []float64, mode CommMode) (*Timeline, error) {
	if len(latency) != p.P() {
		return nil, fmt.Errorf("dessim: %d latencies for %d workers", len(latency), p.P())
	}
	for i, l := range latency {
		if l < 0 {
			return nil, fmt.Errorf("dessim: negative latency %v for worker %d", l, i)
		}
	}
	tl := NewTimeline(p.P())
	port := &Resource{}
	links := make([]Resource, p.P())
	cpus := make([]Resource, p.P())
	for idx, ch := range chunks {
		if ch.Worker < 0 || ch.Worker >= p.P() {
			return nil, fmt.Errorf("dessim: chunk %d targets unknown worker %d", idx, ch.Worker)
		}
		if ch.Data < 0 || ch.Work < 0 {
			return nil, fmt.Errorf("dessim: chunk %d has negative size", idx)
		}
		w := p.Worker(ch.Worker)
		commDur := latency[ch.Worker] + w.CommTime(ch.Data)
		var recvStart, recvEnd float64
		if mode == OnePort {
			recvStart, recvEnd = port.Book(0, commDur)
		} else {
			recvStart, recvEnd = links[ch.Worker].Book(0, commDur)
		}
		tl.Add(ch.Worker, Interval{Kind: Receive, Start: recvStart, End: recvEnd, Data: ch.Data, Task: idx})
		compStart, compEnd := cpus[ch.Worker].Book(recvEnd, w.LinearCompTime(ch.Work))
		tl.Add(ch.Worker, Interval{Kind: Compute, Start: compStart, End: compEnd, Work: ch.Work, Task: idx})
	}
	return tl, nil
}

// Task is one unit of a demand-driven pool: Data units must be shipped to
// whichever worker claims it, which then performs Work units of work.
type Task struct {
	Data float64
	Work float64
}

// RunDemandDriven executes a demand-driven (MapReduce-style) distribution:
// the task pool is served FIFO; every idle worker requests the next task,
// receives its data, computes, and requests again, until the pool drains.
// This is the execution model behind the paper's Homogeneous Blocks
// strategy (Section 4.1.1): "processors ask for new tasks as soon as they
// end processing one", so faster processors automatically get more chunks.
func RunDemandDriven(p *platform.Platform, tasks []Task, mode CommMode) (*Timeline, error) {
	for i, t := range tasks {
		if t.Data < 0 || t.Work < 0 {
			return nil, fmt.Errorf("dessim: task %d has negative size (%v data, %v work)", i, t.Data, t.Work)
		}
	}
	eng := NewEngine()
	tl := NewTimeline(p.P())
	port := &Resource{}
	next := 0

	var assign func(worker int)
	assign = func(worker int) {
		if next >= len(tasks) {
			return
		}
		taskID := next
		task := tasks[next]
		next++
		w := p.Worker(worker)
		commDur := w.CommTime(task.Data)
		var recvStart, recvEnd float64
		if mode == OnePort {
			recvStart, recvEnd = port.Book(eng.Now(), commDur)
		} else {
			recvStart, recvEnd = eng.Now(), eng.Now()+commDur
		}
		tl.Add(worker, Interval{Kind: Receive, Start: recvStart, End: recvEnd, Data: task.Data, Task: taskID})
		compEnd := recvEnd + w.LinearCompTime(task.Work)
		tl.Add(worker, Interval{Kind: Compute, Start: recvEnd, End: compEnd, Work: task.Work, Task: taskID})
		eng.At(compEnd, func() { assign(worker) })
	}

	for i := 0; i < p.P(); i++ {
		worker := i
		eng.At(0, func() { assign(worker) })
	}
	eng.Run()
	if next < len(tasks) {
		return nil, fmt.Errorf("dessim: %d tasks left unassigned", len(tasks)-next)
	}
	return tl, nil
}
