module nlfl

go 1.22
