package runtime

import (
	"fmt"
	"sort"
)

// tilingBitmapMaxCells bounds the coverage bitmap to 8 MiB (1 bit per
// cell); larger domains fall back to the row-band interval sweep.
const tilingBitmapMaxCells = 1 << 26

// checkTiling verifies that the chunks tile the n×n domain exactly —
// every cell covered once, no overlaps, no gaps. A plain Σcells == n²
// check is satisfiable by overlapping chunks plus a gap of the same
// area; this is the exact check behind Run's plan validation. Bounds are
// assumed already validated (0 ≤ lo ≤ hi ≤ n, positive area).
func checkTiling(n int, chunks []Chunk) error {
	if n*n <= tilingBitmapMaxCells {
		return checkTilingBitmap(n, chunks)
	}
	return checkTilingBands(n, chunks)
}

// checkTilingBitmap marks every covered cell in a bitset and reports the
// first double-covered or uncovered cell.
func checkTilingBitmap(n int, chunks []Chunk) error {
	words := (n*n + 63) / 64
	bits := make([]uint64, words)
	for _, c := range chunks {
		for i := c.RowLo; i < c.RowHi; i++ {
			for j := c.ColLo; j < c.ColHi; j++ {
				idx := i*n + j
				w, b := idx/64, uint64(1)<<(idx%64)
				if bits[w]&b != 0 {
					return fmt.Errorf("runtime: cell (%d,%d) covered twice (chunk %d overlaps an earlier chunk)", i, j, c.Task)
				}
				bits[w] |= b
			}
		}
	}
	for idx := 0; idx < n*n; idx++ {
		if bits[idx/64]&(uint64(1)<<(idx%64)) == 0 {
			return fmt.Errorf("runtime: cell (%d,%d) uncovered (chunks leave a gap)", idx/n, idx%n)
		}
	}
	return nil
}

// checkTilingBands cuts the domain into horizontal bands at every chunk
// row boundary; within a band each spanning chunk contributes a column
// interval, and the intervals must cover [0,n) exactly once. Rectangles
// either span a band fully or miss it entirely, so this is exact.
func checkTilingBands(n int, chunks []Chunk) error {
	bounds := make([]int, 0, 2*len(chunks)+2)
	bounds = append(bounds, 0, n)
	for _, c := range chunks {
		bounds = append(bounds, c.RowLo, c.RowHi)
	}
	sort.Ints(bounds)
	bounds = dedupInts(bounds)

	type iv struct{ lo, hi, task int }
	for bi := 0; bi+1 < len(bounds); bi++ {
		r0, r1 := bounds[bi], bounds[bi+1]
		var ivs []iv
		for _, c := range chunks {
			if c.RowLo <= r0 && c.RowHi >= r1 {
				ivs = append(ivs, iv{c.ColLo, c.ColHi, c.Task})
			}
		}
		sort.Slice(ivs, func(i, j int) bool { return ivs[i].lo < ivs[j].lo })
		at := 0
		for _, v := range ivs {
			if v.lo > at {
				return fmt.Errorf("runtime: rows [%d,%d) leave columns [%d,%d) uncovered", r0, r1, at, v.lo)
			}
			if v.lo < at {
				return fmt.Errorf("runtime: chunk %d overlaps columns [%d,%d) in rows [%d,%d)", v.task, v.lo, at, r0, r1)
			}
			at = v.hi
		}
		if at != n {
			return fmt.Errorf("runtime: rows [%d,%d) leave columns [%d,%d) uncovered", r0, r1, at, n)
		}
	}
	return nil
}

// dedupInts removes adjacent duplicates from a sorted slice, in place.
func dedupInts(xs []int) []int {
	out := xs[:1]
	for _, x := range xs[1:] {
		if x != out[len(out)-1] {
			out = append(out, x)
		}
	}
	return out
}
