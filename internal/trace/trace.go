// Package trace is the observability layer of the simulators: a
// structured, per-run record of what every worker did — compute and
// communication spans with byte/work volumes and outcomes, plus fault
// markers — together with an invariant checker (Check) that turns the
// record into a mechanical test oracle.
//
// Every executor in the repository produces a *Timeline: the demand-driven
// and static star executors of internal/dessim (via FromDessim), the
// MapReduce scheduler (internal/mapreduce), the resilient and single-round
// fault executors (internal/faults), linear DLT (internal/dlt), and the
// distributed sample sort (internal/samplesort). The paper's conservation
// laws — total work processed, the Comm_hom = 2N·√(Σsᵢ/s₁) volume bound,
// the ≤1% imbalance rule for Comm_hom/k — become Check expectations; any
// scheduler whose trace violates them is broken, in the spirit of the
// verification methodology of Gallet–Robert–Vivien's "Comments on ..."
// papers, which caught published schedules violating their own
// constraints.
package trace

import (
	"fmt"
	"math"
	"sort"

	"nlfl/internal/dessim"
)

// SpanKind distinguishes what a worker was doing during a span.
type SpanKind int

// Span kinds.
const (
	// Comm is a master→worker transfer occupying the worker's link.
	Comm SpanKind = iota
	// Compute is chunk processing occupying the worker's CPU.
	Compute
)

// String implements fmt.Stringer.
func (k SpanKind) String() string {
	switch k {
	case Comm:
		return "comm"
	case Compute:
		return "compute"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Outcome records how a span ended.
type Outcome int

// Span outcomes.
const (
	// OK is a span that completed and counted.
	OK Outcome = iota
	// Dropped is a transfer that occupied the link but whose payload was
	// lost (flaky-link fault, no retry credit).
	Dropped
	// Killed is a span cut short by a worker crash; for Compute spans,
	// Work holds the work units destroyed.
	Killed
	// Wasted is a span that completed but lost a speculative race — work
	// or shipping burned without advancing the job.
	Wasted
)

// String implements fmt.Stringer.
func (o Outcome) String() string {
	switch o {
	case OK:
		return "ok"
	case Dropped:
		return "dropped"
	case Killed:
		return "killed"
	case Wasted:
		return "wasted"
	default:
		return fmt.Sprintf("outcome(%d)", int(o))
	}
}

// Span is one booked activity on a worker.
type Span struct {
	Kind       SpanKind
	Start, End float64
	// Data is the transfer volume in data units (Comm spans).
	Data float64
	// Work is the work units the span accounts for: completed work for OK
	// and Wasted Compute spans, destroyed work for Killed ones.
	Work float64
	// Task identifies the chunk/task (-1 when not applicable).
	Task int
	// Outcome records how the span ended.
	Outcome Outcome
}

// Duration returns End - Start.
func (s Span) Duration() float64 { return s.End - s.Start }

// MarkerKind enumerates the point events a timeline can carry.
type MarkerKind int

// Marker kinds.
const (
	// MarkCrash is a worker going down (permanent or transient).
	MarkCrash MarkerKind = iota
	// MarkRecover is a transient worker coming back.
	MarkRecover
	// MarkDrop is a transfer payload lost on arrival.
	MarkDrop
)

// String implements fmt.Stringer.
func (k MarkerKind) String() string {
	switch k {
	case MarkCrash:
		return "crash"
	case MarkRecover:
		return "recover"
	case MarkDrop:
		return "drop"
	default:
		return fmt.Sprintf("marker(%d)", int(k))
	}
}

// Marker is one point event (fault injection, recovery, payload loss).
type Marker struct {
	Kind   MarkerKind
	Worker int
	Time   float64
	// Note carries free-form detail ("permanent", "task 3"...).
	Note string
}

// Relay is one intermediate-hop transfer window: a chunk's payload
// crossing edge Edge on its way to worker Dest, booked by a
// store-and-forward topology (a linear chain forwards every deep
// delivery through the near hops). Relays occupy network edges, not
// workers — the destination's own Comm span records only the final
// delivery hop — so they live outside the per-worker span rows and are
// audited by the per-edge capacity sweep (Expect.Edges) instead of the
// per-worker overlap rules.
type Relay struct {
	// Edge is the topology edge id the window occupies.
	Edge int
	// Dest is the worker the payload was ultimately bound for.
	Dest       int
	Start, End float64
	// Data is the transfer volume in data units.
	Data float64
	// Task identifies the chunk/task (-1 when not applicable).
	Task int
}

// Duration returns End - Start.
func (r Relay) Duration() float64 { return r.End - r.Start }

// Timeline is the full structured record of one simulation run.
type Timeline struct {
	// Spans[w] lists worker w's spans in recording order (per kind this is
	// also time order for any well-formed executor — Check enforces it).
	Spans [][]Span
	// Relays lists intermediate-hop transfer windows in recording order
	// (empty for single-hop topologies like the star).
	Relays []Relay
	// Marks lists the run's point events in emission order.
	Marks []Marker
	// Makespan tracks the latest span end seen by Add.
	Makespan float64
}

// New creates an empty timeline for p workers.
func New(p int) *Timeline {
	if p < 0 {
		p = 0
	}
	return &Timeline{Spans: make([][]Span, p)}
}

// Workers returns the number of worker rows.
func (tl *Timeline) Workers() int { return len(tl.Spans) }

// Add records a span for worker w and updates the makespan. Out-of-range
// workers panic, like a slice index.
func (tl *Timeline) Add(w int, s Span) {
	tl.Spans[w] = append(tl.Spans[w], s)
	if s.End > tl.Makespan {
		tl.Makespan = s.End
	}
}

// Mark records a point event.
func (tl *Timeline) Mark(m Marker) { tl.Marks = append(tl.Marks, m) }

// AddRelay records an intermediate-hop transfer window and updates the
// makespan (a relay is network occupancy like any span).
func (tl *Timeline) AddRelay(r Relay) {
	tl.Relays = append(tl.Relays, r)
	if r.End > tl.Makespan {
		tl.Makespan = r.End
	}
}

// Shift translates every span, relay and marker by dt — used to place a
// star sub-simulation after master-side preprocessing phases (sample
// sort's Steps 1–2).
func (tl *Timeline) Shift(dt float64) {
	for w := range tl.Spans {
		for i := range tl.Spans[w] {
			tl.Spans[w][i].Start += dt
			tl.Spans[w][i].End += dt
		}
	}
	for i := range tl.Relays {
		tl.Relays[i].Start += dt
		tl.Relays[i].End += dt
	}
	for i := range tl.Marks {
		tl.Marks[i].Time += dt
	}
	tl.Makespan += dt
}

// CommVolume returns the total data units that crossed the network,
// including dropped, killed and wasted shipments — the master paid for
// all of them.
func (tl *Timeline) CommVolume() float64 {
	v := 0.0
	for _, spans := range tl.Spans {
		for _, s := range spans {
			if s.Kind == Comm {
				v += s.Data
			}
		}
	}
	return v
}

// RelayVolume returns the total data units that crossed intermediate
// hops — traffic the per-worker Comm spans (delivery hops) do not see.
// It is zero for single-hop topologies.
func (tl *Timeline) RelayVolume() float64 {
	v := 0.0
	for _, r := range tl.Relays {
		v += r.Data
	}
	return v
}

// UsefulWork returns the work units completed by winning (OK) compute
// spans — each pool unit counted once in a correct executor.
func (tl *Timeline) UsefulWork() float64 { return tl.workWith(Compute, OK) }

// WastedWork returns the work burned by losing speculative copies.
func (tl *Timeline) WastedWork() float64 { return tl.workWith(Compute, Wasted) }

// LostWork returns the work destroyed by crashes (Killed compute spans).
func (tl *Timeline) LostWork() float64 { return tl.workWith(Compute, Killed) }

func (tl *Timeline) workWith(k SpanKind, o Outcome) float64 {
	v := 0.0
	for _, spans := range tl.Spans {
		for _, s := range spans {
			if s.Kind == k && s.Outcome == o {
				v += s.Work
			}
		}
	}
	return v
}

// CommTimes returns each worker's total communication duration (all
// outcomes — the link was busy either way).
func (tl *Timeline) CommTimes() []float64 {
	out := make([]float64, len(tl.Spans))
	for w, spans := range tl.Spans {
		for _, s := range spans {
			if s.Kind == Comm {
				out[w] += s.Duration()
			}
		}
	}
	return out
}

// OverlapTimes returns, per worker, the duration during which a comm
// span and a compute span were simultaneously open on that worker — the
// communication time hidden under compute by pipelining or prefetch.
// Within each kind the spans are unioned first, so overlapping same-kind
// spans (themselves an invariant violation) are not double counted.
func (tl *Timeline) OverlapTimes() []float64 {
	out := make([]float64, len(tl.Spans))
	for w, spans := range tl.Spans {
		out[w] = intersectMeasure(kindIntervals(spans, Comm), kindIntervals(spans, Compute))
	}
	return out
}

// kindIntervals returns the union of the worker's spans of one kind as a
// sorted, disjoint interval list.
func kindIntervals(spans []Span, k SpanKind) [][2]float64 {
	var ivs [][2]float64
	for _, s := range spans {
		if s.Kind == k && s.End > s.Start {
			ivs = append(ivs, [2]float64{s.Start, s.End})
		}
	}
	if len(ivs) == 0 {
		return nil
	}
	sort.Slice(ivs, func(i, j int) bool { return ivs[i][0] < ivs[j][0] })
	merged := ivs[:1]
	for _, iv := range ivs[1:] {
		last := &merged[len(merged)-1]
		if iv[0] <= last[1] {
			if iv[1] > last[1] {
				last[1] = iv[1]
			}
			continue
		}
		merged = append(merged, iv)
	}
	return merged
}

// intersectMeasure returns the total length of the intersection of two
// sorted disjoint interval lists.
func intersectMeasure(a, b [][2]float64) float64 {
	total := 0.0
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		lo := math.Max(a[i][0], b[j][0])
		hi := math.Min(a[i][1], b[j][1])
		if hi > lo {
			total += hi - lo
		}
		if a[i][1] < b[j][1] {
			i++
		} else {
			j++
		}
	}
	return total
}

// ComputeTimes returns each worker's total compute duration (all
// outcomes — the CPU was busy either way).
func (tl *Timeline) ComputeTimes() []float64 {
	out := make([]float64, len(tl.Spans))
	for w, spans := range tl.Spans {
		for _, s := range spans {
			if s.Kind == Compute {
				out[w] += s.Duration()
			}
		}
	}
	return out
}

// Imbalance returns e = (t_max - t_min)/t_min over per-worker compute
// times — the Section 4.3 metric behind the Comm_hom/k ≤1% rule. A worker
// with zero compute time while another computed makes it +Inf; a run with
// no compute at all returns 0.
func (tl *Timeline) Imbalance() float64 {
	tmin, tmax := math.Inf(1), 0.0
	for _, t := range tl.ComputeTimes() {
		if t < tmin {
			tmin = t
		}
		if t > tmax {
			tmax = t
		}
	}
	if tmax == 0 {
		return 0
	}
	if tmin == 0 {
		return math.Inf(1)
	}
	return (tmax - tmin) / tmin
}

// Utilization returns the fraction of worker-time spent computing between
// 0 and the makespan (0 for an empty run).
func (tl *Timeline) Utilization() float64 {
	if tl.Makespan <= 0 || len(tl.Spans) == 0 {
		return 0
	}
	busy := 0.0
	for _, t := range tl.ComputeTimes() {
		busy += t
	}
	return busy / (tl.Makespan * float64(len(tl.Spans)))
}

// FromDessim converts a dessim.Timeline — the record the star executors
// already produce — into a trace Timeline. Every interval becomes an OK
// span (the dessim executors model no faults).
func FromDessim(d *dessim.Timeline) *Timeline {
	tl := New(len(d.PerWorker))
	for w, ivs := range d.PerWorker {
		for _, iv := range ivs {
			kind := Comm
			if iv.Kind == dessim.Compute {
				kind = Compute
			}
			tl.Add(w, Span{
				Kind:  kind,
				Start: iv.Start,
				End:   iv.End,
				Data:  iv.Data,
				Work:  iv.Work,
				Task:  iv.Task,
			})
		}
	}
	return tl
}
