package runtime

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"

	"nlfl/internal/matmul"
	"nlfl/internal/trace"
)

// Typed failures of a resilient run.
var (
	// ErrWorkerFailed marks a run lost to worker death: a goroutine
	// panicked, a crashed worker's chunk had no retry budget left, or no
	// worker survived to finish the domain.
	ErrWorkerFailed = errors.New("runtime: worker failed")
	// ErrTransferFailed marks a run lost to the network: a chunk's
	// transfer was dropped more times than the retry budget allows.
	ErrTransferFailed = errors.New("runtime: transfer failed")
)

// Options configures the worker pool.
type Options struct {
	// Speeds are the workers' relative speeds (one entry per worker, all
	// positive). Required.
	Speeds []float64
	// WorkPerSecond is the cell-update rate of a speed-1 worker — the
	// token-bucket refill scale. 0 selects 2e6 cells/s, fast enough for
	// sub-second benches yet slow enough that the throttle (not the real
	// CPU) sets the pace, so relative speeds are honored even on one core.
	WorkPerSecond float64
	// Shards is the shared-queue stripe count; 0 selects one stripe per
	// worker, so each worker's home stripe is its own — pops are
	// uncontended until its stripe drains and stealing begins.
	Shards int
	// Burst is the token-bucket capacity in cells; 0 selects 5 ms of
	// credit at the worker's rate.
	Burst float64
	// VerifyEvery, when positive, spot-checks every VerifyEvery-th output
	// cell against a[i]·b[j] after the run and fails the run on mismatch.
	VerifyEvery int
	// Link models the master's outgoing bandwidth (see Link); the zero
	// value ships chunk inputs at memcpy speed. Link is the star-shaped
	// shorthand for Topology and cannot be combined with it.
	Link Link
	// Topology selects the modeled network shape (star, linear
	// daisy-chain, two-source — see Topology). nil with a zero Link
	// ships at memcpy speed; setting Link is equivalent to the Star
	// topology with Link's rates. Mutually exclusive with Link.
	Topology Topology
	// Prefetch enables double-buffered prefetch: while a worker computes
	// one chunk it claims and transfers the next, overlapping the
	// transfer with the current chunk's compute. The overlapped fraction
	// is reported in Report.OverlapFraction. Prefetch cannot be combined
	// with Chaos: a prefetched chunk is a second outstanding lease, which
	// the recovery machinery does not track.
	Prefetch bool
	// Chaos enables the fault-injection layer and its survival machinery
	// (see Chaos). The zero value selects the fault-free fast path.
	Chaos Chaos

	// testHookChunkStart, when set, runs on the worker goroutine right
	// after a chunk is claimed and before its transfer starts — the
	// in-package test seam for forcing panics and interleavings.
	testHookChunkStart func(w int, c Chunk)
}

// Report is the outcome of one measured run.
type Report struct {
	// Strategy, N, Grid and K echo the executed plan.
	Strategy string
	N        int
	Grid     int
	K        int
	// Workers is the pool size, Chunks the number of chunks executed.
	Workers int
	Chunks  int
	// Predicted is the plan's closed-form communication volume.
	Predicted float64
	// DataVolume is the measured volume: vector elements actually copied
	// into worker-local buffers, summed over chunks — retries, drops and
	// speculative duplicates included.
	DataVolume float64
	// WorkCells is the total output cells computed (= N² for a full run).
	WorkCells float64
	// Makespan is the wall-clock run time in seconds.
	Makespan float64
	// PerWorkerData and PerWorkerCells split DataVolume and WorkCells by
	// worker — the measured footprint behind the paper's Figure 2.
	PerWorkerData  []float64
	PerWorkerCells []float64
	// CommTime is the total measured communication seconds summed over
	// workers; PerWorkerCommTime splits it by worker. Under the link
	// model these are the modeled transfer windows, so CommTime ≈
	// DataVolume/bandwidth when the shared port is the bottleneck.
	CommTime          float64
	PerWorkerCommTime []float64
	// OverlapFraction is the fraction of communication time hidden under
	// the same worker's compute spans — ~0 without prefetch, approaching
	// 1 when transfers are fully pipelined behind compute.
	OverlapFraction float64
	// LinkUtilization is each worker's delivery-comm-busy fraction of
	// the makespan — how long its final incoming hop was occupied. On
	// multi-hop topologies this is a per-worker view only; Edges carries
	// the per-edge occupancy that generalizes it.
	LinkUtilization []float64
	// LinkCapacity is the star aggregate master-port rate (0 when the
	// shared port was unconstrained or the topology is not a star);
	// Expect threads it to the trace oracle's aggregate link-capacity
	// invariant. Per-edge capacities — meaningful on every topology —
	// are in Edges and are what Expect's per-edge sweep audits.
	LinkCapacity float64
	// Topology names the modeled network ("star", "chain", "two-source";
	// "" when transfers ran at memcpy speed).
	Topology string
	// Edges is the per-edge measured traffic (nil without a network
	// model): booked volume (drops included), busy seconds, and
	// busy/makespan utilization.
	Edges []EdgeReport
	// RelayVolume is the data that crossed intermediate hops (chain
	// forwarding traffic; 0 on single-hop topologies). DataVolume counts
	// delivered payloads only — relays are extra network occupancy, not
	// extra deliveries.
	RelayVolume float64
	// SpanRoutes[w] lists the edge ids worker w's delivery Comm spans
	// occupy (trace.Expect.Routes); nil rows are unconstrained workers.
	SpanRoutes [][]int

	// Chaos reports whether the run executed under the fault-injection
	// layer; the recovery ledger below is zero without it.
	Chaos bool
	// RetriedChunks counts transfer attempts lost to link drops and
	// retried after backoff.
	RetriedChunks int
	// SpeculativeWins counts chunks whose committed copy was a
	// speculative re-execution rather than the original holder's.
	SpeculativeWins int
	// DegradedWorkers counts workers that died permanently.
	DegradedWorkers int
	// ReclaimedCells counts output cells reclaimed from dead workers and
	// re-planned onto survivors.
	ReclaimedCells float64
	// PlanVolume is the executed plan's geometric volume Σ(wᵢ+hᵢ): the
	// realized closed form, equal to Predicted on snapped platforms and
	// the analytic floor no faulty run can undercut.
	PlanVolume float64
	// CommittedVolume is the data shipped for winning commits only;
	// ReplannedVolume is PlanVolume plus the extra volume survivor
	// re-planning added — the survivor-re-planned closed form that
	// CommittedVolume matches exactly on a clean run. WastedData is the
	// shipping burned by drops, crashed workers' in-flight inputs and
	// losing speculative copies: DataVolume = CommittedVolume +
	// WastedData.
	CommittedVolume float64
	ReplannedVolume float64
	WastedData      float64
	// WastedWorkCells are compute cells burned by losing speculative
	// copies; LostWorkCells are cells destroyed mid-chunk by crashes.
	WastedWorkCells float64
	LostWorkCells   float64

	// Out is the computed product.
	Out *matmul.Matrix
	// Trace is the run's audited timeline (wall-clock seconds).
	Trace *trace.Timeline
}

// Expect returns the invariant-oracle expectations for the run: exact
// work conservation (every cell computed once), the exact shipping ledger,
// the strategy's analytic volume bound within relTol, and — when the run
// modeled a network — the aggregate link-capacity invariant (star) plus
// the per-edge capacity sweep and per-edge volume ledger over the
// topology's edges. Fault-free runs pin the measured volume to the closed form
// exactly; chaos runs switch to the no-free-lunch floor (faults only ever
// add traffic, so the executed plan's volume bounds the measured volume
// from below) and arm the exactly-once invariant, with the waste ledger
// threaded through.
func (r *Report) Expect(relTol float64) *trace.Expect {
	nn := float64(r.N) * float64(r.N)
	e := &trace.Expect{
		HasWork:       true,
		TotalWork:     nn,
		ProcessedWork: nn,
		HasComm:       true,
		ShippedData:   r.DataVolume,
		Bound:         r.Predicted,
		BoundKind:     trace.BoundExact,
		BoundName:     "Comm_" + r.Strategy,
		LinkCapacity:  r.LinkCapacity,
		Tol:           relTol,
	}
	if r.Chaos {
		e.Bound = r.PlanVolume
		e.BoundKind = trace.BoundLower
		e.BoundName = "Comm_" + r.Strategy + " plan floor"
		e.ExactlyOnce = true
		e.WastedWork = r.WastedWorkCells
		e.LostWork = r.LostWorkCells
	}
	if len(r.Edges) > 0 {
		e.Edges = make([]trace.ExpectEdge, len(r.Edges))
		for i, ed := range r.Edges {
			e.Edges[i] = trace.ExpectEdge{Name: ed.Name, Capacity: ed.Capacity, Volume: ed.Volume, HasVolume: true}
		}
		e.Routes = r.SpanRoutes
	}
	return e
}

// staged is one chunk whose inputs have been shipped into worker-local
// buffers (its Comm span is recorded by fetch at shipping time).
type staged struct {
	c          Chunk
	aBuf, bBuf []float64
}

// runner is the shared state of one Run: inputs, throttles, ledgers and
// the failure latch. The fast path touches only the fault-free subset;
// the chaos path adds the mutex-guarded recovery ledger.
type runner struct {
	opts Options
	a, b []float64
	n    int
	rate float64

	out      *matmul.Matrix
	live     *trace.Live
	net      *netLink
	perData  []float64 // written only by each worker's own goroutine
	perCells []float64

	// Largest chunk extents in the plan — the workers size their transfer
	// and scratch buffers once from these, so the per-chunk loop never
	// allocates.
	maxRowSpan, maxColSpan, maxCells int

	// ledgers[w] is worker w's private recovery ledger (chaos runs only);
	// each worker writes only its own entry and the entries are merged
	// into the totals below after wg.Wait, so the hot path takes no lock.
	ledgers []chaosLedger

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	mu  sync.Mutex
	err error
	// chaos totals (mu-guarded during the run for the cold reclamation
	// path; the per-worker ledgers fold in after the pool stops)
	committedChunks             []Chunk
	committedVolume, wastedData float64
	wastedWork, lostWork        float64
	replanExtra                 float64
	reclaimedCells              int
	retried, specWins, degraded int
}

// chaosLedger is one worker's lock-free recovery ledger. Ledgers sit in a
// contiguous array, so each is padded to 128 bytes: every chunk bumps its
// owner's counters and unpadded neighbours would false-share cache lines.
type chaosLedger struct {
	committed         []Chunk
	committedVolume   float64
	wastedData        float64
	wastedWork        float64
	retried, specWins int
	_                 [48]byte // 24 + 3×8 + 2×8 = 64 → pad to 128
}

// merge folds the per-worker ledgers into the mu-guarded totals. Call
// only after every worker goroutine has stopped.
func (r *runner) mergeLedgers() {
	for i := range r.ledgers {
		led := &r.ledgers[i]
		r.committedChunks = append(r.committedChunks, led.committed...)
		r.committedVolume += led.committedVolume
		r.wastedData += led.wastedData
		r.wastedWork += led.wastedWork
		r.retried += led.retried
		r.specWins += led.specWins
	}
}

// fail latches the first failure and cancels every worker.
func (r *runner) fail(err error) {
	r.mu.Lock()
	if r.err == nil {
		r.err = err
	}
	r.mu.Unlock()
	r.cancel()
}

func (r *runner) runErr() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.err
}

// noteLost records cells destroyed mid-chunk by a crash. It stays
// mu-guarded: it runs once per death, immediately before the (also
// mu-guarded) reclamation in die, never on the steady-state path.
func (r *runner) noteLost(cells float64) {
	r.mu.Lock()
	r.lostWork += cells
	r.mu.Unlock()
}

// guard runs one worker body with panic containment: a panicking worker
// used to take the whole process down (goroutine panics are fatal) or —
// with recovery but no latch — leave wg.Wait stuck behind siblings
// blocked on a link booking. Now it latches ErrWorkerFailed and cancels
// the run.
func (r *runner) guard(w int, body func(int)) {
	defer r.wg.Done()
	defer func() {
		if rec := recover(); rec != nil {
			r.fail(fmt.Errorf("%w: worker %d panicked: %v", ErrWorkerFailed, w, rec))
		}
	}()
	body(w)
}

// Run executes the plan on real vectors — RunContext without external
// cancellation.
func Run(plan *StrategyPlan, a, b []float64, opts Options) (*Report, error) {
	return RunContext(context.Background(), plan, a, b, opts)
}

// RunContext executes the plan on real vectors: len(Speeds) goroutine
// workers pull chunks from the sharded queue, ship each chunk's a̅/b̅
// intervals into worker-local buffers (the Comm span — paced by the
// bandwidth model when Options.Link is set, raw memcpy otherwise), pay
// the chunk's area to their token bucket and fill the output rectangle
// through the tiled kernel (the Compute span). With Options.Prefetch
// each worker double-buffers: the next chunk's transfer runs while the
// current chunk computes. With Options.Chaos the pool runs the resilient
// path instead: scenario faults are injected on the live goroutines and
// survived via leases, retries, speculation and survivor re-planning
// (see Chaos). Cancelling ctx stops the pool at the next chunk boundary
// and returns ctx's error. The returned report carries the product, the
// measured per-worker traffic and comm time, the comm/compute overlap
// fraction, the recovery ledger, and the trace.Live timeline of the run.
func RunContext(ctx context.Context, plan *StrategyPlan, a, b []float64, opts Options) (*Report, error) {
	n := plan.N
	if len(a) != n || len(b) != n {
		return nil, fmt.Errorf("runtime: plan is for N=%d, got vectors of %d and %d", n, len(a), len(b))
	}
	if n == 0 {
		return nil, fmt.Errorf("runtime: empty vectors")
	}
	p := len(opts.Speeds)
	if p == 0 {
		return nil, fmt.Errorf("runtime: need at least one worker speed")
	}
	for i, s := range opts.Speeds {
		if s <= 0 {
			return nil, fmt.Errorf("runtime: worker %d has non-positive speed %v", i, s)
		}
	}
	if lp := len(opts.Link.PerWorker); lp != 0 && lp != p {
		return nil, fmt.Errorf("runtime: %d per-worker link rates for %d workers", lp, p)
	}
	topo := opts.Topology
	if topo != nil {
		if opts.Link.Enabled() {
			return nil, fmt.Errorf("runtime: Options.Topology and Options.Link are mutually exclusive (Link is the star shorthand)")
		}
		if err := topo.Validate(p); err != nil {
			return nil, err
		}
	} else {
		topo = starFromLink(opts.Link, p)
	}
	for _, c := range plan.Chunks {
		if c.RowLo < 0 || c.ColLo < 0 || c.RowHi > n || c.ColHi > n || c.Cells() <= 0 {
			return nil, fmt.Errorf("runtime: chunk %d has invalid bounds rows[%d,%d) cols[%d,%d)", c.Task, c.RowLo, c.RowHi, c.ColLo, c.ColHi)
		}
		if c.Owner >= p {
			return nil, fmt.Errorf("runtime: chunk %d owned by worker %d of %d", c.Task, c.Owner, p)
		}
	}
	// Σcells == n² alone is satisfiable by overlaps plus a gap of the
	// same area; require an exact tiling.
	if err := checkTiling(n, plan.Chunks); err != nil {
		return nil, err
	}
	chaosOn := opts.Chaos.enabled()
	if chaosOn {
		if err := opts.Chaos.validate(p); err != nil {
			return nil, err
		}
		if opts.Prefetch {
			return nil, fmt.Errorf("runtime: Prefetch cannot be combined with Chaos (a prefetched chunk is an untracked second lease)")
		}
	}
	rate := opts.WorkPerSecond
	if rate <= 0 {
		rate = 2e6
	}
	shards := opts.Shards
	if shards <= 0 {
		shards = p // home-stripe affinity: worker w owns stripe w
	}
	planVolume := 0.0
	maxRowSpan, maxColSpan, maxCells := 0, 0, 0
	for _, c := range plan.Chunks {
		planVolume += float64(c.Data())
		maxRowSpan = max(maxRowSpan, c.RowHi-c.RowLo)
		maxColSpan = max(maxColSpan, c.ColHi-c.ColLo)
		maxCells = max(maxCells, c.Cells())
	}

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	r := &runner{
		opts:       opts,
		a:          a,
		b:          b,
		n:          n,
		rate:       rate,
		out:        matmul.New(n, n),
		live:       trace.NewLive(p),
		net:        newNetLink(topo, p, nil),
		perData:    make([]float64, p),
		perCells:   make([]float64, p),
		maxRowSpan: maxRowSpan,
		maxColSpan: maxColSpan,
		maxCells:   maxCells,
		ctx:        runCtx,
		cancel:     cancel,
	}
	if r.net != nil {
		r.net.now = r.live.Now
	}
	// A clean run records exactly two spans per chunk (Comm + Compute);
	// reserving that up front keeps span recording allocation-free on the
	// hot path. Chaos retries and speculative copies can exceed the
	// reservation — those appends grow the slice the usual amortized way.
	r.live.Reserve(2*len(plan.Chunks)+4, 0)

	var body func(int)
	var cq *chaosQueue
	if chaosOn {
		r.ledgers = make([]chaosLedger, p)
		cs := compileChaos(opts.Chaos, p)
		cq = newChaosQueue(plan.Chunks, p, shards, opts.Chaos.SpeculateAfter)
		if r.net != nil {
			r.net.slowdown = cs.linkScale
		}
		body = func(w int) { r.chaosWorker(w, cs, cq) }
	} else {
		queue := newWorkQueue(plan.Chunks, p, shards)
		body = func(w int) { r.fastWorker(w, queue) }
	}
	for w := 0; w < p; w++ {
		r.wg.Add(1)
		go r.guard(w, body)
	}
	r.wg.Wait()
	r.mergeLedgers()

	if err := r.runErr(); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if chaosOn {
		// The recovery ledger must close exactly (integer-valued sums):
		// the committed chunks tile the domain cell-for-cell, the
		// committed volume equals the survivor-re-planned closed form,
		// and every shipped element is either committed or accounted
		// waste.
		sort.Slice(r.committedChunks, func(i, j int) bool { return r.committedChunks[i].Task < r.committedChunks[j].Task })
		if err := checkTiling(n, r.committedChunks); err != nil {
			return nil, fmt.Errorf("runtime: committed chunks violate exactly-once: %w", err)
		}
		replanned := planVolume + r.replanExtra
		if r.committedVolume != replanned {
			return nil, fmt.Errorf("runtime: committed volume %v ≠ survivor-re-planned closed form %v", r.committedVolume, replanned)
		}
	}

	tl := r.live.Timeline()
	rep := &Report{
		Strategy:          plan.Strategy,
		N:                 n,
		Grid:              plan.Grid,
		K:                 plan.K,
		Workers:           p,
		Chunks:            len(plan.Chunks),
		Predicted:         plan.Predicted,
		WorkCells:         float64(n * n),
		Makespan:          tl.Makespan,
		PerWorkerData:     r.perData,
		PerWorkerCells:    r.perCells,
		PerWorkerCommTime: tl.CommTimes(),
		LinkUtilization:   make([]float64, p),
		Chaos:             chaosOn,
		RetriedChunks:     r.retried,
		SpeculativeWins:   r.specWins,
		DegradedWorkers:   r.degraded,
		ReclaimedCells:    float64(r.reclaimedCells),
		PlanVolume:        planVolume,
		CommittedVolume:   r.committedVolume,
		ReplannedVolume:   planVolume + r.replanExtra,
		WastedData:        r.wastedData,
		WastedWorkCells:   r.wastedWork,
		LostWorkCells:     r.lostWork,
		Out:               r.out,
		Trace:             tl,
	}
	if st, ok := topo.(Star); ok {
		// Preserve the legacy aggregate-capacity semantics: only a star
		// has a single master port; the per-edge invariant covers the rest.
		rep.LinkCapacity = math.Max(st.Aggregate, 0)
	}
	if r.net != nil {
		rep.Topology = r.net.name
		rep.Edges = r.net.edgeReports(tl.Makespan)
		rep.RelayVolume = tl.RelayVolume()
		rep.SpanRoutes = r.net.spanRoutes()
	}
	for _, d := range r.perData {
		rep.DataVolume += d
	}
	if chaosOn && rep.DataVolume != rep.CommittedVolume+rep.WastedData {
		return nil, fmt.Errorf("runtime: shipping ledger leaks: measured %v ≠ committed %v + wasted %v",
			rep.DataVolume, rep.CommittedVolume, rep.WastedData)
	}
	overlap := 0.0
	for w, ct := range rep.PerWorkerCommTime {
		rep.CommTime += ct
		if tl.Makespan > 0 {
			rep.LinkUtilization[w] = ct / tl.Makespan
		}
	}
	for _, ov := range tl.OverlapTimes() {
		overlap += ov
	}
	if rep.CommTime > 0 {
		rep.OverlapFraction = overlap / rep.CommTime
	}
	if opts.VerifyEvery > 0 {
		for idx := 0; idx < n*n; idx += opts.VerifyEvery {
			i, j := idx/n, idx%n
			if want := a[i] * b[j]; r.out.Data[idx] != want {
				return nil, fmt.Errorf("runtime: output cell (%d,%d) = %v, want %v", i, j, r.out.Data[idx], want)
			}
		}
	}
	return rep, nil
}

// fetchReq asks the worker's fetcher goroutine to ship one chunk into
// buffer slot `slot`.
type fetchReq struct {
	c    Chunk
	slot int
}

// fastWorker is the fault-free worker loop (the original hot path — no
// leases, no locks beyond the queue stripes). The per-chunk loop is
// allocation-free: both transfer buffers are sized once from the plan's
// largest chunk, and prefetch runs on one persistent fetcher goroutine
// per worker instead of spawning a goroutine (and its result channel) per
// chunk. Cancellation is honored at chunk boundaries.
func (r *runner) fastWorker(w int, queue *workQueue) {
	opts := r.opts
	bucket := newTokenBucket(opts.Speeds[w]*r.rate, opts.Burst)
	var bufs [2]struct{ a, b []float64 }
	for i := range bufs {
		bufs[i].a = make([]float64, 0, r.maxRowSpan)
		bufs[i].b = make([]float64, 0, r.maxColSpan)
	}

	// fetch ships the chunk's inputs into buffer slot `slot`: the only
	// elements this worker may read are the copies it just received.
	// Under the link model the Comm span is the booked transfer window;
	// otherwise it is the measured memcpy. Calls for one worker are
	// strictly sequential (double-buffering keeps at most one in
	// flight), so the per-worker ledgers need no locking. A cancellation
	// that lands mid-transfer abandons the booked window: no span is
	// recorded and the caller's next ctx check exits the loop.
	fetch := func(c Chunk, slot int) staged {
		bb := &bufs[slot]
		var t0, t1 float64
		if r.net != nil && r.net.constrained(w) {
			del, relays := r.net.book(w, float64(c.Data()))
			t0, t1 = del.start, del.end
			bb.a = append(bb.a[:0], r.a[c.RowLo:c.RowHi]...)
			bb.b = append(bb.b[:0], r.b[c.ColLo:c.ColHi]...)
			if !r.net.wait(r.ctx, t1) {
				return staged{c: c, aBuf: bb.a, bBuf: bb.b}
			}
			for _, h := range relays {
				r.live.AddRelay(trace.Relay{Edge: h.edge, Dest: w, Start: h.start, End: h.end,
					Data: float64(c.Data()), Task: c.Task})
			}
		} else {
			t0 = r.live.Now()
			bb.a = append(bb.a[:0], r.a[c.RowLo:c.RowHi]...)
			bb.b = append(bb.b[:0], r.b[c.ColLo:c.ColHi]...)
			t1 = r.live.Now()
		}
		r.live.Add(w, trace.Span{Kind: trace.Comm, Start: t0, End: t1,
			Data: float64(c.Data()), Task: c.Task})
		r.perData[w] += float64(c.Data())
		return staged{c: c, aBuf: bb.a, bBuf: bb.b}
	}

	// With prefetch, one persistent fetcher goroutine per worker ships
	// chunk inputs on request. The request/result channels live for the
	// whole run — the old per-chunk `go fetch(...)` + fresh result channel
	// was two heap allocations per chunk. At most one request is ever in
	// flight (the worker sends only after receiving the previous result),
	// so the single-buffered result channel can never block the fetcher
	// against a departed worker.
	var reqCh chan fetchReq
	var resCh chan staged
	if opts.Prefetch {
		reqCh = make(chan fetchReq)
		resCh = make(chan staged, 1)
		defer close(reqCh) // stops the fetcher when the worker leaves
		go func() {
			defer func() {
				if rec := recover(); rec != nil {
					r.fail(fmt.Errorf("%w: worker %d prefetch panicked: %v", ErrWorkerFailed, w, rec))
					close(resCh)
				}
			}()
			for req := range reqCh {
				resCh <- fetch(req.c, req.slot)
			}
		}()
	}

	c, ok := queue.pop(w)
	if !ok {
		return
	}
	if hook := opts.testHookChunkStart; hook != nil {
		hook(w, c)
	}
	cur := 0
	s := fetch(c, cur)
	for {
		if r.ctx.Err() != nil {
			return
		}
		// Claim and start shipping the next chunk before computing the
		// current one, so the transfer hides under the compute span.
		var next Chunk
		var more bool
		if opts.Prefetch {
			if next, more = queue.pop(w); more {
				reqCh <- fetchReq{c: next, slot: 1 - cur}
			}
		}

		// Compute: the token bucket stretches the span to the duration a
		// speed-sᵢ processor would need.
		cells := float64(s.c.Cells())
		t0 := r.live.Now()
		bucket.acquire(cells)
		fillChunk(r.out, s.aBuf, s.bBuf, s.c)
		t1 := r.live.Now()
		r.live.Add(w, trace.Span{Kind: trace.Compute, Start: t0, End: t1,
			Work: cells, Task: s.c.Task})
		r.perCells[w] += cells

		if opts.Prefetch {
			if !more {
				return
			}
			var ok2 bool
			if s, ok2 = <-resCh; !ok2 {
				return // the fetcher died; the run is already failed
			}
			cur = 1 - cur
		} else {
			if c, ok = queue.pop(w); !ok {
				return
			}
			if hook := opts.testHookChunkStart; hook != nil {
				hook(w, c)
			}
			s = fetch(c, cur)
		}
	}
}

// fillChunk writes the chunk's rectangle of the outer product from the
// worker-local copies, tiling the column range like matmul.OuterInto.
func fillChunk(out *matmul.Matrix, aBuf, bBuf []float64, c Chunk) {
	bs := matmul.AutotuneTile()
	n := out.Cols
	for jj := 0; jj < len(bBuf); jj += bs {
		jMax := min(jj+bs, len(bBuf))
		bTile := bBuf[jj:jMax]
		for i, av := range aBuf {
			base := (c.RowLo+i)*n + c.ColLo
			row := out.Data[base+jj : base+jMax]
			for j, bv := range bTile {
				row[j] = av * bv
			}
		}
	}
}
