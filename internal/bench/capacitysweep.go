package bench

import (
	"context"
	"fmt"
	"math"
	goruntime "runtime"

	"nlfl/internal/capacity"
	"nlfl/internal/results"
)

// The capacity sweep runs a fixed envelope like the service sweep: an
// 8-worker fleet whose speed spread and constrained link put the
// speedup knee strictly inside the fleet — the case an operator
// actually needs a planner for. With these numbers T(1) ≈ 84 ms and the
// marginal speedup of the fifth worker (~2%) falls below θ = 5% while
// the fourth (~10%) clears it, so the knee is 4 of 8.
var capacitySpeeds = []float64{4, 4, 3, 3, 2, 2, 1, 1}

const (
	capacityAlpha = 2.0
	capacityN     = 96
	capacityRate  = 3e4   // cells/s per unit speed
	capacityBW    = 2.5e4 // master link elems/s
	capacityTheta = 0.05  // knee threshold: stop below 5% marginal speedup
	// capacitySimTol gates the discrete-event simulator: the model and
	// the DES differ only by integer-grid snapping of the PERI-SUM
	// rectangles, a ≤ 2% effect at N=96 with headroom to 5%.
	capacitySimTol = 0.05
	// capacityMeasTol gates the measured worker pool: wall-clock adds
	// goroutine scheduling and timer noise on top of snapping.
	capacityMeasTol = 0.25
	// capacityMeasTolQuick is the quick-mode measured gate. Quick sweeps
	// run inside `go test ./...` and CI smoke jobs where sibling test
	// packages compete for every core, so the token-bucket sleeps that
	// realize the modeled rates stretch well past the calm-machine noise
	// floor; the committed full-mode artifact keeps the tight gate.
	capacityMeasTolQuick = 0.5
)

// capacityModel is the sweep's planning question.
func capacityModel() capacity.Model {
	return capacity.Model{
		Alpha:         capacityAlpha,
		N:             capacityN,
		Speeds:        capacitySpeeds,
		WorkPerSecond: capacityRate,
		Bandwidth:     capacityBW,
	}
}

// capacityReps is the best-of count for the measured makespan: noise
// (timer warm-up in a fresh process, scheduler jitter) is strictly
// additive over the modeled time, so the minimum estimates the model.
func capacityReps(quick bool) int {
	if quick {
		return 2
	}
	return 3
}

// capacityMeasTolFor picks the measured-runtime gate for the mode.
func capacityMeasTolFor(quick bool) float64 {
	if quick {
		return capacityMeasTolQuick
	}
	return capacityMeasTol
}

// RunCapacitySweep validates the capacity model at every slice size of
// the fixed envelope against both executors: the discrete-event
// simulator (deterministic, snapping-only disagreement) and the real
// worker-pool runtime (wall-clock, best-of-reps). Every observation is
// gated through capacity.CheckObservation at the stated tolerance
// before the file is considered valid — BENCH_capacity.json is the
// proof that `nlfl recommend` and the fleet autoscaler size slices from
// a model that matches what actually runs. A cancelled ctx aborts
// between slice sizes.
func RunCapacitySweep(ctx context.Context, cfg Config) (results.CapacityBenchFile, error) {
	m := capacityModel()
	file := results.CapacityBenchFile{
		Schema:            results.BenchCapacitySchema,
		Seed:              cfg.Seed,
		Quick:             cfg.Quick,
		Alpha:             m.Alpha,
		N:                 m.N,
		Speeds:            m.Speeds,
		WorkPerSecond:     m.WorkPerSecond,
		Bandwidth:         m.Bandwidth,
		Theta:             capacityTheta,
		SimTolerance:      capacitySimTol,
		MeasuredTolerance: capacityMeasTolFor(cfg.Quick),
		Reps:              capacityReps(cfg.Quick),
		GoVersion:         goruntime.Version(),
		GOMAXPROCS:        maxProcs(),
	}
	rec, err := m.Recommend(capacityTheta)
	if err != nil {
		return file, fmt.Errorf("bench: capacity model: %w", err)
	}
	file.Knee = rec.Knee
	file.Best = rec.Best
	file.SpeedupBound = rec.SpeedupBound
	for p := 1; p <= len(m.Speeds); p++ {
		if err := ctx.Err(); err != nil {
			return file, err
		}
		pred := rec.Curve[p-1]
		entry := results.CapacityBenchEntry{
			Workers:              p,
			PredictedVolume:      pred.CommVolume,
			PredictedMakespan:    pred.Makespan,
			Speedup:              pred.Speedup,
			UnprocessedIfChunked: pred.UnprocessedIfChunked,
		}
		if p > 1 {
			entry.MarginalGain = pred.Speedup/rec.Curve[p-2].Speedup - 1
		}
		sim, err := m.SimulateMakespan(p)
		if err != nil {
			return file, fmt.Errorf("bench: capacity sim p=%d: %w", p, err)
		}
		if err := m.CheckObservation(p, sim, capacitySimTol); err != nil {
			return file, fmt.Errorf("bench: %w", err)
		}
		entry.SimMakespan = sim
		entry.SimRelErr = math.Abs(sim-pred.Makespan) / pred.Makespan
		meas := math.Inf(1)
		for rep := 0; rep < file.Reps; rep++ {
			one, err := m.MeasureMakespan(ctx, p, cfg.Seed+int64(rep))
			if err != nil {
				return file, fmt.Errorf("bench: capacity measure p=%d: %w", p, err)
			}
			meas = math.Min(meas, one)
		}
		if err := m.CheckObservation(p, meas, file.MeasuredTolerance); err != nil {
			return file, fmt.Errorf("bench: %w", err)
		}
		entry.MeasuredMakespan = meas
		entry.MeasuredRelErr = math.Abs(meas-pred.Makespan) / pred.Makespan
		file.Entries = append(file.Entries, entry)
	}
	return file, nil
}

// ValidateCapacity is the schema check for a BENCH_capacity payload:
// right schema id, the full 1..P slice coverage, finite fields, both
// observation columns inside their stated tolerances, a knee that
// exists strictly inside the fleet and is consistent with the marginal
// gains, and no speedup above the closed-form ceiling.
func ValidateCapacity(f results.CapacityBenchFile) error {
	const path = CapacityFileName
	if f.Schema != results.BenchCapacitySchema {
		return invalid(path, "schema %q, want %q", f.Schema, results.BenchCapacitySchema)
	}
	if len(f.Speeds) == 0 {
		return invalid(path, "no speed profile")
	}
	if len(f.Entries) != len(f.Speeds) {
		return invalid(path, "%d entries for %d slice sizes", len(f.Entries), len(f.Speeds))
	}
	for _, v := range []struct {
		name  string
		value float64
	}{
		{"alpha", f.Alpha},
		{"workPerSecond", f.WorkPerSecond},
		{"bandwidth", f.Bandwidth},
		{"theta", f.Theta},
		{"simTolerance", f.SimTolerance},
		{"measuredTolerance", f.MeasuredTolerance},
		{"speedupBound", f.SpeedupBound},
	} {
		if !finite(v.value) || v.value <= 0 {
			return invalid(path, "non-positive or non-finite %s %v", v.name, v.value)
		}
	}
	if f.N <= 0 || f.Reps <= 0 {
		return invalid(path, "non-positive n %d or reps %d", f.N, f.Reps)
	}
	if f.Knee < 1 || f.Knee >= len(f.Speeds) {
		return invalid(path, "knee %d not strictly inside [1, %d) — the envelope must make the planner earn its keep",
			f.Knee, len(f.Speeds))
	}
	if f.Best < f.Knee || f.Best > len(f.Speeds) {
		return invalid(path, "best %d inconsistent with knee %d", f.Best, f.Knee)
	}
	for i, e := range f.Entries {
		id := fmt.Sprintf("entry %d (p=%d)", i, e.Workers)
		if e.Workers != i+1 {
			return invalid(path, "%s: slice sizes must cover 1..%d in order", id, len(f.Speeds))
		}
		for _, v := range []struct {
			name  string
			value float64
		}{
			{"predictedVolume", e.PredictedVolume},
			{"predictedMakespan", e.PredictedMakespan},
			{"simMakespan", e.SimMakespan},
			{"measuredMakespan", e.MeasuredMakespan},
			{"speedup", e.Speedup},
		} {
			if !finite(v.value) || v.value <= 0 {
				return invalid(path, "%s: non-positive or non-finite %s %v", id, v.name, v.value)
			}
		}
		if !finite(e.SimRelErr) || e.SimRelErr > f.SimTolerance {
			return invalid(path, "%s: simulator disagrees by %.4f (> %.2f) — the model is wrong or the DES drifted",
				id, e.SimRelErr, f.SimTolerance)
		}
		if !finite(e.MeasuredRelErr) || e.MeasuredRelErr > f.MeasuredTolerance {
			return invalid(path, "%s: measured runtime disagrees by %.4f (> %.2f)",
				id, e.MeasuredRelErr, f.MeasuredTolerance)
		}
		if e.Speedup > f.SpeedupBound*(1+1e-9) {
			return invalid(path, "%s: speedup %.4f exceeds the closed-form bound %.4f", id, e.Speedup, f.SpeedupBound)
		}
		if !finite(e.UnprocessedIfChunked) || e.UnprocessedIfChunked < 0 || e.UnprocessedIfChunked >= 1 {
			return invalid(path, "%s: unprocessed fraction %v outside [0, 1)", id, e.UnprocessedIfChunked)
		}
		if i == 0 {
			if e.Speedup != 1 || e.MarginalGain != 0 {
				return invalid(path, "%s: p=1 must anchor speedup 1 with zero marginal gain", id)
			}
			continue
		}
		// The knee scan's trace must be visible in the file: every step up
		// to the knee cleared θ, the step past it did not.
		if e.Workers <= f.Knee && e.MarginalGain < f.Theta {
			return invalid(path, "%s: marginal gain %.4f below theta %.2f inside the knee", id, e.MarginalGain, f.Theta)
		}
		if e.Workers == f.Knee+1 && e.MarginalGain >= f.Theta {
			return invalid(path, "%s: marginal gain %.4f at the knee+1 step should fall below theta %.2f",
				id, e.MarginalGain, f.Theta)
		}
	}
	return nil
}
