package trace

import (
	"fmt"
	"strings"
)

// Gantt renders an ASCII Gantt chart, width columns wide. Glyphs:
//
//	-  transfer            %  dropped transfer
//	#  compute             w  wasted (losing speculative copy)
//	x  span killed by a crash
//	!  fault marker (crash/recover) on the worker's row
func (tl *Timeline) Gantt(width int) string {
	if width <= 0 {
		width = 72
	}
	if tl.Makespan <= 0 {
		return "(empty timeline)\n"
	}
	var b strings.Builder
	scale := float64(width) / tl.Makespan
	col := func(t float64) int {
		c := int(t * scale)
		if c >= width {
			c = width - 1
		}
		if c < 0 {
			c = 0
		}
		return c
	}
	for w, spans := range tl.Spans {
		row := []byte(strings.Repeat(".", width))
		for _, s := range spans {
			if s.End < s.Start {
				continue
			}
			ch := byte('-')
			switch {
			case s.Outcome == Killed:
				ch = 'x'
			case s.Kind == Comm && s.Outcome == Dropped:
				ch = '%'
			case s.Kind == Compute && s.Outcome == Wasted:
				ch = 'w'
			case s.Kind == Compute:
				ch = '#'
			}
			for c := col(s.Start); c <= col(s.End); c++ {
				row[c] = ch
			}
		}
		for _, m := range tl.Marks {
			if m.Worker == w && (m.Kind == MarkCrash || m.Kind == MarkRecover) && m.Time >= 0 {
				row[col(m.Time)] = '!'
			}
		}
		fmt.Fprintf(&b, "P%-3d |%s|\n", w+1, string(row))
	}
	fmt.Fprintf(&b, "      0%*s%.4g\n", width-1, "t=", tl.Makespan)
	return b.String()
}
