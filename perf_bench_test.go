// Benchmarks for the measured-performance layer: the cache-blocked
// matmul kernels and the demand-driven worker-pool runtime. Unlike the
// E1–E12 benches in bench_test.go, which regenerate analytic tables,
// these time real data movement and arithmetic; each reports the
// headline metric (GFLOPS, measured communication volume) via
// b.ReportMetric so `go test -bench Perf` doubles as a mini harness.
// The full sweep with schema'd artifacts is `nlfl bench` (see
// docs/PERFORMANCE.md).
package nlfl_test

import (
	"fmt"
	"testing"

	"nlfl/internal/matmul"
	"nlfl/internal/platform"
	nrt "nlfl/internal/runtime"
	"nlfl/internal/stats"
)

// flops is the classical matmul operation count for an n×n product.
func flops(n int) float64 { return 2 * float64(n) * float64(n) * float64(n) }

// warmTile forces the one-time tile autotuning probe so it is not
// charged to the first timed iteration.
func warmTile(b *testing.B) {
	b.Helper()
	if matmul.AutotuneTile() <= 0 {
		b.Fatal("autotune returned a non-positive tile")
	}
}

func BenchmarkPerfKernelNaive(b *testing.B) {
	for _, n := range []int{128, 256} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			a := matmul.Random(n, n, 1)
			c := matmul.Random(n, n, 2)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := matmul.Naive(a, c); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(flops(n)*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFLOPS")
		})
	}
}

func BenchmarkPerfKernelTiled(b *testing.B) {
	for _, n := range []int{128, 256} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			a := matmul.Random(n, n, 1)
			c := matmul.Random(n, n, 2)
			warmTile(b)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := matmul.Tiled(a, c); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(flops(n)*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFLOPS")
		})
	}
}

func BenchmarkPerfKernelParallelTiled(b *testing.B) {
	n := 256
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			a := matmul.Random(n, n, 1)
			c := matmul.Random(n, n, 2)
			warmTile(b)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := matmul.ParallelTiled(a, c, workers); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(flops(n)*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFLOPS")
		})
	}
}

func BenchmarkPerfKernelOuterInto(b *testing.B) {
	n := 512
	r := stats.NewRNG(3)
	av := stats.SampleN(stats.Uniform{Lo: -1, Hi: 1}, r, n)
	bv := stats.SampleN(stats.Uniform{Lo: -1, Hi: 1}, r, n)
	out := matmul.New(n, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		matmul.OuterInto(out, av, bv, 0, n, 0, n)
	}
	b.ReportMetric(float64(n)*float64(n)*float64(b.N)/b.Elapsed().Seconds()/1e9, "Gcells/s")
}

// BenchmarkPerfRuntimeStrategies pushes a real outer product through the
// worker pool under each distribution strategy and reports the measured
// per-run communication volume (in vector elements) — the quantity the
// paper's Comm_hom / Comm_hom/k / Comm_het closed forms predict.
func BenchmarkPerfRuntimeStrategies(b *testing.B) {
	const n = 128
	speeds := []float64{1, 3, 5, 7} // snapped: Σs/s₁ = 16
	pl, err := platform.FromSpeeds(speeds)
	if err != nil {
		b.Fatal(err)
	}
	r := stats.NewRNG(42)
	av := stats.SampleN(stats.Uniform{Lo: -1, Hi: 1}, r, n)
	bv := stats.SampleN(stats.Uniform{Lo: -1, Hi: 1}, r, n)

	plans := map[string]func() (*nrt.StrategyPlan, error){
		"hom":  func() (*nrt.StrategyPlan, error) { return nrt.PlanHom(pl, n) },
		"homk": func() (*nrt.StrategyPlan, error) { return nrt.PlanHomK(pl, n, 0.01, 0) },
		"het":  func() (*nrt.StrategyPlan, error) { return nrt.PlanHet(pl, n) },
	}
	for _, name := range []string{"hom", "homk", "het"} {
		b.Run(name, func(b *testing.B) {
			plan, err := plans[name]()
			if err != nil {
				b.Fatal(err)
			}
			opts := nrt.Options{
				Speeds: speeds,
				// A high rate keeps the token bucket from dominating the
				// bench; volumes are rate-independent.
				WorkPerSecond: 1e8,
				Burst:         1e5,
			}
			var volume float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rep, err := nrt.Run(plan, av, bv, opts)
				if err != nil {
					b.Fatal(err)
				}
				volume = rep.DataVolume
			}
			b.ReportMetric(volume, "elems-moved")
		})
	}
}

// BenchmarkPerfRuntimeBandwidth runs hom and het through the worker pool
// under a constrained one-port master link with double-buffered prefetch
// and reports the measured makespan and the fraction of communication
// hidden under compute — the quantity the bandwidth model adds on top of
// the volume ledger. On the heterogeneous platform the het plan ships
// fewer elements, so under a tight link its makespan/op is the smaller
// one: the paper's Figure-2 trade-off as a benchmark.
func BenchmarkPerfRuntimeBandwidth(b *testing.B) {
	const (
		n  = 128
		bw = 5e4 // elements/s: the link, not the arithmetic, is the bottleneck
	)
	speeds := []float64{1, 3, 5, 7}
	pl, err := platform.FromSpeeds(speeds)
	if err != nil {
		b.Fatal(err)
	}
	warmTile(b)
	r := stats.NewRNG(42)
	av := stats.SampleN(stats.Uniform{Lo: -1, Hi: 1}, r, n)
	bv := stats.SampleN(stats.Uniform{Lo: -1, Hi: 1}, r, n)

	plans := map[string]func() (*nrt.StrategyPlan, error){
		"hom": func() (*nrt.StrategyPlan, error) { return nrt.PlanHom(pl, n) },
		"het": func() (*nrt.StrategyPlan, error) { return nrt.PlanHet(pl, n) },
	}
	for _, name := range []string{"hom", "het"} {
		b.Run(name, func(b *testing.B) {
			plan, err := plans[name]()
			if err != nil {
				b.Fatal(err)
			}
			opts := nrt.Options{
				Speeds:        speeds,
				WorkPerSecond: 2e6,
				Burst:         200, // keep link waits from banking compute credit
				Link:          nrt.Link{ElemsPerSecond: bw},
				Prefetch:      true,
			}
			var makespan, overlap float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rep, err := nrt.Run(plan, av, bv, opts)
				if err != nil {
					b.Fatal(err)
				}
				makespan, overlap = rep.Makespan, rep.OverlapFraction
			}
			b.ReportMetric(makespan*1e3, "ms-makespan")
			b.ReportMetric(overlap, "overlap")
		})
	}
}
