package service

import (
	"context"
	"errors"
	"math"
	"testing"

	"nlfl/internal/faults"
	"nlfl/internal/trace"
)

// chaosConfig is slow enough that job-scoped fault instants land inside
// the jobs that carry them.
func chaosConfig() Config {
	return Config{
		Speeds:        []float64{1, 2, 3, 4},
		WorkPerSecond: 2e4,
		Policy:        PolicyInterleaved,
		VerifyEvery:   251,
	}
}

// TestJobScopedCrashIsolation is the tentpole invariant: a chaos crash
// inside one tenant's job degrades that job only. The crashed worker's
// leases are re-planned onto the job's surviving slice, while the same
// worker keeps serving every other tenant, whose ledgers stay exact.
func TestJobScopedCrashIsolation(t *testing.T) {
	f, err := New(chaosConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	var clean []*JobHandle
	for i := 0; i < 4; i++ {
		clean = append(clean, mustSubmit(t, f, JobSpec{Tenant: "steady", N: 64, Seed: int64(i)}))
	}
	chaotic := mustSubmit(t, f, JobSpec{
		Tenant:   "hammered",
		N:        64,
		Strategy: "het", // owned backlogs exercise survivor re-planning
		Seed:     99,
		Chaos: ChaosSpec{
			Scenario:   faults.SingleCrash(2, 0.01),
			MaxRetries: 3,
		},
	})

	rep := waitOK(t, chaotic)
	if rep.ReclaimedCells == 0 || rep.DegradedWorkers != 1 {
		t.Fatalf("chaos job saw no reclamation: reclaimed=%d degraded=%d", rep.ReclaimedCells, rep.DegradedWorkers)
	}
	if rep.ReplannedVolume <= 0 {
		t.Errorf("re-plan added no volume: %v", rep.ReplannedVolume)
	}
	checkJob(t, rep)

	for _, h := range clean {
		cr := waitOK(t, h)
		if cr.WastedData != 0 || cr.ReclaimedCells != 0 || cr.DegradedWorkers != 0 {
			t.Errorf("clean job %d degraded: waste=%v reclaimed=%d degraded=%d",
				cr.ID, cr.WastedData, cr.ReclaimedCells, cr.DegradedWorkers)
		}
		if d := cr.CommittedVolume - cr.PlanVolume; math.Abs(d) > 1e-9 {
			t.Errorf("clean job %d committed %v != plan %v", cr.ID, cr.CommittedVolume, cr.PlanVolume)
		}
		checkJob(t, cr)
	}

	acc := f.Accounting()
	for _, ta := range acc.Tenants {
		switch ta.Tenant {
		case "steady":
			if ta.Failed != 0 || ta.WastedData != 0 || ta.ReclaimedCells != 0 {
				t.Errorf("steady tenant degraded: %+v", ta)
			}
		case "hammered":
			if ta.ReclaimedCells == 0 || ta.DegradedEvents != 1 {
				t.Errorf("hammered tenant account: %+v", ta)
			}
		}
	}
	// The crash cost the worker a health strike, but (below the default
	// budget of 2) no quarantine.
	hs := f.Health()
	if hs[2].Strikes != 1 || hs[2].Quarantined {
		t.Fatalf("worker 2 health: %+v", hs[2])
	}
}

func TestSpeculationBeatsJobScopedStraggler(t *testing.T) {
	f, err := New(chaosConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	rep := waitOK(t, mustSubmit(t, f, JobSpec{
		Tenant:   "spec",
		N:        64,
		Strategy: "het",
		Seed:     5,
		Chaos: ChaosSpec{
			Scenario: faults.Scenario{Events: []faults.Event{
				{Kind: faults.Straggler, Worker: 1, Time: 0, Until: 30, Factor: 0.2},
			}},
			MaxRetries:     3,
			SpeculateAfter: 0.025,
		},
	}))
	if rep.SpeculativeWins == 0 {
		t.Fatalf("speculation never won: %+v", rep)
	}
	if rep.WastedWorkCells == 0 {
		t.Errorf("losing straggler copy not accounted as waste")
	}
	checkJob(t, rep)
}

func TestChaosBudgetExhaustionFailsOnlyThatJob(t *testing.T) {
	f, err := New(chaosConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	steady := mustSubmit(t, f, JobSpec{Tenant: "steady", N: 64, Seed: 1})
	doomed := mustSubmit(t, f, JobSpec{
		Tenant:   "doomed",
		N:        64,
		Strategy: "het",
		Seed:     2,
		Chaos:    ChaosSpec{Scenario: faults.SingleCrash(3, 0.005), MaxRetries: 0},
	})
	rep, err := doomed.Wait(context.Background())
	if !errors.Is(err, ErrJobFailed) {
		t.Fatalf("doomed job: %v, want ErrJobFailed", err)
	}
	if rep == nil || !rep.Failed || rep.Err == "" {
		t.Fatalf("doomed report: %+v", rep)
	}
	checkJob(t, waitOK(t, steady))
}

func TestAllSliceWorkersCrashedFailsJob(t *testing.T) {
	f, err := New(chaosConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	h := mustSubmit(t, f, JobSpec{
		Tenant:     "solo",
		N:          64,
		MaxWorkers: 1, // slice is worker 3 alone
		Seed:       3,
		Chaos:      ChaosSpec{Scenario: faults.SingleCrash(3, 0.005), MaxRetries: 5},
	})
	if _, err := h.Wait(context.Background()); !errors.Is(err, ErrJobFailed) {
		t.Fatalf("all-dead job: %v, want ErrJobFailed", err)
	}
}

func TestQuarantineAndReadmission(t *testing.T) {
	cfg := chaosConfig()
	cfg.QuarantineAfter = 1
	cfg.ProbationJobs = 2
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	// One crash quarantines worker 2 under the strike budget of 1.
	waitOK(t, mustSubmit(t, f, JobSpec{
		Tenant: "a", N: 64, Strategy: "het", Seed: 1,
		Chaos: ChaosSpec{Scenario: faults.SingleCrash(2, 0.01), MaxRetries: 3},
	}))
	hs := f.Health()
	if !hs[2].Quarantined {
		t.Fatalf("worker 2 not quarantined: %+v", hs[2])
	}

	// New jobs are sliced without the quarantined worker.
	rep := waitOK(t, mustSubmit(t, f, JobSpec{Tenant: "a", N: 96, Seed: 2}))
	for _, w := range rep.Workers {
		if w == 2 {
			t.Fatalf("quarantined worker in slice %v", rep.Workers)
		}
	}

	// Probation: after two more finished jobs it is readmitted.
	waitOK(t, mustSubmit(t, f, JobSpec{Tenant: "a", N: 48, Seed: 3}))
	hs = f.Health()
	if hs[2].Quarantined {
		t.Fatalf("worker 2 still quarantined after probation: %+v", hs[2])
	}
	rep = waitOK(t, mustSubmit(t, f, JobSpec{Tenant: "a", N: 96, Seed: 4}))
	found := false
	for _, w := range rep.Workers {
		found = found || w == 2
	}
	if !found {
		t.Fatalf("readmitted worker missing from slice %v", rep.Workers)
	}
}

// TestChaosTraceOracle runs the chaos job's timeline through the full
// trace checker with the plan-floor + exactly-once expectations.
func TestChaosTraceOracle(t *testing.T) {
	f, err := New(chaosConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	rep := waitOK(t, mustSubmit(t, f, JobSpec{
		Tenant: "oracle", N: 64, Strategy: "het", Seed: 11,
		Chaos: ChaosSpec{Scenario: faults.SingleCrash(1, 0.01), MaxRetries: 3},
	}))
	exp := rep.Expect(1e-9)
	if exp.BoundKind != trace.BoundLower || !exp.ExactlyOnce {
		t.Fatalf("chaos expectations not armed: %+v", exp)
	}
	if vs := trace.Check(rep.Trace, exp); len(vs) != 0 {
		for _, v := range vs {
			t.Errorf("trace: %s", v)
		}
	}
}
