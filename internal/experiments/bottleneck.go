package experiments

import (
	"fmt"
	"math"

	"nlfl/internal/outer"
	"nlfl/internal/platform"
	"nlfl/internal/plot"
)

// BottleneckPoint is one bandwidth level of the link-bottleneck
// experiment: single-round makespans (receive + compute, parallel links)
// for the three Section 4.1 strategies, normalized by the pure-compute
// lower bound N²/Σsᵢ.
type BottleneckPoint struct {
	// Bandwidth is the per-link bandwidth in elements per time unit.
	Bandwidth float64
	// Het, Hom, HomK are the normalized makespans.
	Het, Hom, HomK float64
}

// Bottleneck quantifies the paper's motivation for minimizing volume:
// "communication links may become bottleneck resources if the replication
// ratio is large." For each bandwidth level the per-worker data volumes
// of the three strategies are charged at the link (in parallel, one
// round) before the worker computes its x_i·N² share; the makespan is
// max_i (D_i/bw + x_i·N²/s_i). With fast links all strategies tie at the
// compute bound; as links slow down, Comm_hom/k's inflated footprints
// dominate its makespan first.
func Bottleneck(pl *platform.Platform, n float64, eps float64, bandwidths []float64) ([]BottleneckPoint, error) {
	if eps <= 0 {
		eps = 0.01
	}
	hom := outer.Commhom(pl, n)
	homk, err := outer.CommhomK(pl, n, eps, 0)
	if err != nil {
		return nil, err
	}
	het, err := outer.Commhet(pl, n)
	if err != nil {
		return nil, err
	}
	xs := pl.NormalizedSpeeds()
	computeBound := n * n / pl.TotalSpeed()
	makespan := func(per []float64, bw float64) float64 {
		worst := 0.0
		for i, d := range per {
			t := d/bw + xs[i]*n*n/pl.Worker(i).Speed
			if t > worst {
				worst = t
			}
		}
		return worst
	}
	points := make([]BottleneckPoint, 0, len(bandwidths))
	for _, bw := range bandwidths {
		if bw <= 0 || math.IsNaN(bw) {
			return nil, fmt.Errorf("experiments: invalid bandwidth %v", bw)
		}
		points = append(points, BottleneckPoint{
			Bandwidth: bw,
			Het:       makespan(het.PerWorker, bw) / computeBound,
			Hom:       makespan(hom.PerWorker, bw) / computeBound,
			HomK:      makespan(homk.PerWorker, bw) / computeBound,
		})
	}
	return points, nil
}

// BottleneckTable renders the sweep.
func BottleneckTable(points []BottleneckPoint) *plot.Table {
	t := plot.NewTable("bandwidth", "Comm_het", "Comm_hom", "Comm_hom/k")
	for _, pt := range points {
		t.AddRowf(pt.Bandwidth, pt.Het, pt.Hom, pt.HomK)
	}
	return t
}
