package main

import (
	"fmt"

	"nlfl/internal/dessim"
	"nlfl/internal/dlt"
	"nlfl/internal/experiments"
	"nlfl/internal/nldlt"
	"nlfl/internal/platform"
	"nlfl/internal/stats"
	"nlfl/internal/tree"
)

// runAdaptivity quantifies the Section 1.1 claim that demand-driven
// (MapReduce-style) scheduling tolerates workers that "perform poorly".
func runAdaptivity(args []string) error {
	fs := newFlagSet("adaptivity")
	p := fs.Int("p", 8, "number of workers")
	n := fs.Float64("n", 800, "linear load size")
	blocks := fs.Int("blocks", 256, "demand-driven task count")
	if err := fs.Parse(args); err != nil {
		return err
	}
	rows, err := experiments.Adaptivity(*p, *n, *blocks, []float64{1, 0.5, 0.25, 0.1, 0.02})
	if err != nil {
		return err
	}
	fmt.Println("Adaptivity to a mid-run slowdown (worker 0 slows at 30% of the nominal")
	fmt.Printf("makespan; linear load N=%g on %d homogeneous workers; makespans):\n\n", *n, *p)
	fmt.Print(experiments.AdaptivityTable(rows).String())
	fmt.Println("\nThe static DLT optimum cannot react — its slowed worker keeps its whole")
	fmt.Println("chunk; the demand-driven pool reroutes all but one stranded block (which")
	fmt.Println("is what Hadoop's speculative backups then re-execute).")
	return nil
}

// runGantt draws schedule timelines: the linear DLT optimum and the
// futile non-linear one-port schedule, side by side.
func runGantt(args []string) error {
	fs := newFlagSet("gantt")
	p := fs.Int("p", 6, "number of workers")
	n := fs.Float64("n", 300, "load size N")
	alpha := fs.Float64("alpha", 2, "exponent for the non-linear schedule")
	seed := fs.Int64("seed", 4, "random seed")
	width := fs.Int("w", 64, "chart width")
	if err := fs.Parse(args); err != nil {
		return err
	}
	r := stats.NewRNG(*seed)
	ws := make([]platform.Worker, *p)
	for i := range ws {
		ws[i] = platform.Worker{Speed: 0.5 + 4*r.Float64(), Bandwidth: 0.5 + 4*r.Float64()}
	}
	pl, err := platform.New(ws)
	if err != nil {
		return err
	}

	lin, err := dlt.OptimalParallel(pl, *n)
	if err != nil {
		return err
	}
	linTl, err := dessim.RunSingleRound(pl, dlt.Chunks(lin, *n), dessim.ParallelLinks)
	if err != nil {
		return err
	}
	fmt.Printf("linear DLT optimum (α=1), parallel links — everyone finishes together:\n\n")
	fmt.Print(linTl.Gantt(*width))

	nl, err := nldlt.OptimalOnePort(pl, nldlt.Load{N: *n, Alpha: *alpha}, nil)
	if err != nil {
		return err
	}
	nlTl, err := dessim.RunSingleRound(pl, nl.Chunks(), dessim.OnePort)
	if err != nil {
		return err
	}
	fmt.Printf("\nnon-linear α=%g one-port schedule — looks busy, accomplishes %.1f%% of W:\n\n",
		*alpha, 100*nl.WorkFraction())
	fmt.Print(nlTl.Gantt(*width))
	return nil
}

// runTree demonstrates multi-level tree DLT: the equivalent-processor
// reduction and the topology-free no-free-lunch.
func runTree(args []string) error {
	fs := newFlagSet("tree")
	depth := fs.Int("depth", 2, "tree depth below the root")
	fanout := fs.Int("fanout", 3, "children per node")
	n := fs.Float64("n", 1000, "load size")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *depth < 0 || *fanout < 1 {
		return fmt.Errorf("invalid tree shape")
	}
	var build func(d int) *tree.Node
	build = func(d int) *tree.Node {
		nd := &tree.Node{Speed: 1, Bandwidth: 2}
		if d > 0 {
			for i := 0; i < *fanout; i++ {
				nd.Children = append(nd.Children, build(d-1))
			}
		}
		return nd
	}
	root := build(*depth)
	alloc, err := tree.Allocate(root, *n)
	if err != nil {
		return err
	}
	fmt.Printf("uniform tree: depth %d, fanout %d, %d nodes\n", *depth, *fanout, root.Size())
	fmt.Printf("optimal single-round makespan for a LINEAR load of %g: %.4g\n", *n, alloc.Makespan)
	fmt.Printf("  (all %d nodes finish simultaneously; total allocated %.6g)\n",
		root.Size(), alloc.TotalLoad())
	fmt.Println("\nthe same chunk vector applied to an α-power load claims only:")
	for _, alpha := range []float64{1, 1.5, 2, 3} {
		fmt.Printf("  α=%-4g → %.4f of W = N^α\n", alpha, alloc.WorkFraction(alpha))
	}
	fmt.Println("\nthe no-free-lunch is topology-free: trees lose work exactly like stars.")
	return nil
}

// runReturns sweeps the result-collection extension: the Section 1.2
// exclusion restored, showing FIFO/LIFO incomparability.
func runReturns(args []string) error {
	fs := newFlagSet("returns")
	p := fs.Int("p", 6, "number of workers")
	trials := fs.Int("trials", 100, "random platforms per δ")
	seed := fs.Int64("seed", 13, "random seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	rows, err := experiments.ReturnsSweep([]float64{0, 0.25, 0.5, 1}, *p, *trials, *seed)
	if err != nil {
		return err
	}
	fmt.Println("Return messages (the §1.2 exclusion restored): FIFO vs LIFO collection")
	fmt.Printf("through the master's ingress, one chunk per worker, %d trials/δ:\n\n", *trials)
	fmt.Print(experiments.ReturnsTable(rows).String())
	fmt.Println("\nNeither order dominates — one reason the paper sets returns aside to")
	fmt.Println("isolate the non-linearity question.")
	return nil
}
