package nldlt

import (
	"fmt"
	"math"

	"nlfl/internal/platform"
)

// FractionRow is one row of the Section 2 reproduction table: how much of
// the total work W = N^α a full optimal DLT phase accomplishes on P
// homogeneous workers, from the closed form and from the solved
// allocations under both communication models.
type FractionRow struct {
	P     int
	Alpha float64
	// ClosedForm is 1 - 1/P^(α-1), the paper's unprocessed fraction.
	ClosedForm float64
	// EqualSplit is the unprocessed fraction measured from the equal-split
	// allocation (identical to ClosedForm on homogeneous platforms; kept
	// as a cross-check).
	EqualSplit float64
	// Parallel is the unprocessed fraction from the optimal parallel-links
	// allocation.
	Parallel float64
	// OnePort is the unprocessed fraction from the optimal sequential
	// single-installment allocation (the [31–35] baseline).
	OnePort float64
	// ParallelMakespan and OnePortMakespan record the phase durations.
	ParallelMakespan float64
	OnePortMakespan  float64
}

// FractionSweep computes FractionRows for every (p, α) combination on a
// homogeneous platform with unit speed and unit bandwidth and load size n.
// It reproduces the core numbers behind Section 2: as p grows the
// unprocessed fraction approaches 1 for every α > 1, under every
// communication model and optimal allocation — the "no free lunch".
func FractionSweep(ps []int, alphas []float64, n float64) ([]FractionRow, error) {
	var rows []FractionRow
	for _, alpha := range alphas {
		for _, p := range ps {
			plat, err := platform.Homogeneous(p, 1, 1)
			if err != nil {
				return nil, err
			}
			l := Load{N: n, Alpha: alpha}
			eq, err := EqualSplit(plat, l)
			if err != nil {
				return nil, err
			}
			par, err := OptimalParallel(plat, l)
			if err != nil {
				return nil, err
			}
			op, err := OptimalOnePort(plat, l, nil)
			if err != nil {
				return nil, err
			}
			rows = append(rows, FractionRow{
				P:                p,
				Alpha:            alpha,
				ClosedForm:       UnprocessedFraction(p, alpha),
				EqualSplit:       1 - eq.WorkFraction(),
				Parallel:         1 - par.WorkFraction(),
				OnePort:          1 - op.WorkFraction(),
				ParallelMakespan: par.Makespan,
				OnePortMakespan:  op.Makespan,
			})
		}
	}
	return rows, nil
}

// String renders the row compactly.
func (r FractionRow) String() string {
	return fmt.Sprintf("P=%d α=%g closed=%.4f equal=%.4f par=%.4f 1port=%.4f",
		r.P, r.Alpha, r.ClosedForm, r.EqualSplit, r.Parallel, r.OnePort)
}

// IllusorySpeedup returns T_seq / T_phase for the equal-split phase on P
// homogeneous unit workers — the super-linear "speedup" the refuted
// literature's framing implies. Sequentially the full job takes w·N^α;
// the phase takes (N/P)c + (N/P)^α·w; for large N the ratio approaches
// P^α, an impossibility that signals the accounting error: the phase
// performed only 1/P^(α-1) of the work, so the honest speedup is the
// illusory one times that fraction — exactly P, the trivial bound.
func IllusorySpeedup(p int, l Load) (illusory, honest float64) {
	seq := l.TotalWork() // w = c = 1
	chunk := l.N / float64(p)
	phase := chunk + l.ChunkWork(chunk)
	illusory = seq / phase
	honest = illusory * math.Pow(float64(p), 1-l.Alpha)
	return illusory, honest
}
