package core

import (
	"strings"
	"testing"

	"nlfl/internal/platform"
)

func TestRecommendDispatch(t *testing.T) {
	pl, err := platform.FromSpeeds([]float64{1, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		w    Workload
		want func(r Recommendation) bool
	}{
		{"linear", Workload{Kind: Linear, N: 1000},
			func(r Recommendation) bool { return r.Linear != nil && r.Sort == nil && r.Outer == nil }},
		{"sorting", Workload{Kind: LogLinear, N: 1 << 16},
			func(r Recommendation) bool { return r.Sort != nil && r.Linear == nil && r.Outer == nil }},
		{"quadratic", Workload{Kind: Power, N: 1000, Alpha: 2},
			func(r Recommendation) bool { return r.Outer != nil && r.Linear == nil && r.Sort == nil }},
		{"alpha=1 collapses to linear", Workload{Kind: Power, N: 1000, Alpha: 1},
			func(r Recommendation) bool { return r.Linear != nil }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			rec, err := Recommend(pl, c.w)
			if err != nil {
				t.Fatal(err)
			}
			if !c.want(rec) {
				t.Errorf("wrong plan attached: %+v", rec)
			}
			if rec.String() == "" || !strings.Contains(rec.String(), "plan:") {
				t.Errorf("rendering missing plan line:\n%s", rec.String())
			}
		})
	}
}

func TestRecommendErrors(t *testing.T) {
	pl, _ := platform.Homogeneous(2, 1, 1)
	if _, err := Recommend(pl, Workload{Kind: Power, N: 100, Alpha: 0.2}); err == nil {
		t.Error("bad alpha should fail")
	}
	if _, err := Recommend(pl, Workload{Kind: WorkloadKind(9), N: 100}); err == nil {
		t.Error("unknown kind should fail")
	}
}
