// Cluster walks one heterogeneous platform through the paper's whole
// story: a linear job (DLT works), a sort (works after pre-processing), a
// quadratic job (chunking provably fails; partition instead), and a
// MapReduce run with a straggler and a failure (why demand-driven
// scheduling earns its keep).
package main

import (
	"fmt"
	"log"

	"nlfl/internal/core"
	"nlfl/internal/mapreduce"
	"nlfl/internal/platform"
	"nlfl/internal/samplesort"
	"nlfl/internal/stats"
)

func main() {
	r := stats.NewRNG(2026)
	pl, err := platform.Generate(6, stats.Uniform{Lo: 1, Hi: 10}, r)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cluster: %v\n\n", pl)

	// 1. Linear job: the divisible case. One Recommend call plans it.
	lin, err := core.Recommend(pl, core.Workload{Kind: core.Linear, N: 1e6})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print("― linear scan job ―\n", lin.String(), "\n")

	// 2. Sorting: almost divisible. Plan, then actually sort.
	srt, err := core.Recommend(pl, core.Workload{Kind: core.LogLinear, N: 1 << 17})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print("― sort job ―\n", srt.String())
	keys := stats.SampleN(stats.Uniform{Lo: 0, Hi: 1}, r, 1<<17)
	_, tr, err := samplesort.SortHeterogeneous(keys, pl, samplesort.Config{Seed: 9})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("executed: buckets %v\n\n", tr.BucketSizes)

	// 3. Quadratic job: not divisible — partition the computation domain.
	quad, err := core.Recommend(pl, core.Workload{Kind: core.Power, N: 5e4, Alpha: 2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print("― pairwise-interaction job (N² cost) ―\n", quad.String(), "\n")

	// 4. Operations reality: a straggler appears and a node dies.
	tasks, err := mapreduce.UniformTasks(64, 0, 1)
	if err != nil {
		log.Fatal(err)
	}
	straggler, err := platform.FromSpeeds([]float64{0.02, 5, 5, 5, 5, 5})
	if err != nil {
		log.Fatal(err)
	}
	plain, err := mapreduce.Schedule(straggler, tasks, false)
	if err != nil {
		log.Fatal(err)
	}
	spec, err := mapreduce.Schedule(straggler, tasks, true)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("― operations: straggler mitigation ―")
	fmt.Printf("demand-driven makespan %.3g; with speculative backups %.3g (%d backups, %.3g work wasted)\n",
		plain.Makespan, spec.Makespan, spec.Backups, spec.WastedWork)

	fail, err := mapreduce.ScheduleWithFailures(straggler, tasks, []mapreduce.Failure{{Worker: 1, Time: 0.5}})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("with worker 2 dying at t=0.5: makespan %.3g, %d map outputs re-executed\n",
		fail.Makespan, fail.Reexecutions)
}
