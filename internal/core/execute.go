package core

import (
	"errors"
	"fmt"
	"math"
	"sync"

	"nlfl/internal/matmul"
	"nlfl/internal/partition"
)

// ErrDegenerateRect marks a plan rectangle that rounds to an empty
// integer-grid rectangle at the requested problem size: the worker holds a
// positive share of the computation but would silently execute nothing.
// Returned (wrapped in a *DegenerateRectError) instead of dropping the
// work on the floor; retry with a larger N or fewer workers.
var ErrDegenerateRect = errors.New("core: plan rectangle rounds to zero cells")

// DegenerateRectError reports which worker's rectangle collapsed and on
// what integer grid. It wraps ErrDegenerateRect, so
// errors.Is(err, ErrDegenerateRect) selects it.
type DegenerateRectError struct {
	// Worker is the plan index of the collapsed assignment.
	Worker int
	// Rect is the unit-square rectangle that collapsed.
	Rect partition.Rect
	// N is the integer grid side the plan was executed on.
	N int
}

// Error implements error.
func (e *DegenerateRectError) Error() string {
	return fmt.Sprintf("core: worker %d's rectangle %v rounds to zero cells on the %d-grid (share too small for this N)",
		e.Worker, e.Rect, e.N)
}

// Unwrap ties the typed error to the ErrDegenerateRect sentinel.
func (e *DegenerateRectError) Unwrap() error { return ErrDegenerateRect }

// IntRect is a plan rectangle snapped to the integer grid: row range
// [RowLo,RowHi) over a̅, column range [ColLo,ColHi) over b̅.
type IntRect struct {
	RowLo, RowHi, ColLo, ColHi int
}

// Cells returns the number of output cells the rectangle covers.
func (r IntRect) Cells() int { return (r.RowHi - r.RowLo) * (r.ColHi - r.ColLo) }

// Data returns the number of input vector elements the rectangle needs —
// its row span plus its column span.
func (r IntRect) Data() int { return (r.RowHi - r.RowLo) + (r.ColHi - r.ColLo) }

// SnapRect rounds a unit-square rectangle onto the n×n integer grid.
// Because shared boundaries round to the same grid line, snapping every
// rectangle of a partition tiles the integer domain exactly.
func SnapRect(r partition.Rect, n int) IntRect {
	fn := float64(n)
	ir := IntRect{
		RowLo: int(math.Round(r.Y * fn)),
		RowHi: int(math.Round((r.Y + r.H) * fn)),
		ColLo: int(math.Round(r.X * fn)),
		ColHi: int(math.Round((r.X + r.W) * fn)),
	}
	ir.RowHi = min(ir.RowHi, n)
	ir.ColHi = min(ir.ColHi, n)
	ir.RowLo = max(ir.RowLo, 0)
	ir.ColLo = max(ir.ColLo, 0)
	return ir
}

// SnapPlan snaps every rectangle of the plan onto the n×n grid, returning
// a *DegenerateRectError for the first positive-area rectangle that
// collapses to zero cells (a worker with a real share but no work).
func SnapPlan(plan *Plan, n int) ([]IntRect, error) {
	rects := make([]IntRect, len(plan.Workers))
	for i := range plan.Workers {
		w := plan.Workers[i]
		ir := SnapRect(w.Rect, n)
		if w.Rect.Area() > 0 && ir.Cells() == 0 {
			return nil, &DegenerateRectError{Worker: w.Worker, Rect: w.Rect, N: n}
		}
		rects[i] = ir
	}
	return rects, nil
}

// ExecuteOuterProduct actually computes a̅ᵀ×b̅ following the plan: one
// goroutine per worker fills exactly the cells of its rectangle through
// the tiled kernel (matmul.OuterInto), reading only the a- and b-intervals
// the plan charges it for. It returns the full product and the per-worker
// element reads (which must match the plan's DataVolume accounting up to
// integer-grid rounding) — the end-to-end anchor tying the communication
// model to real computation. A plan rectangle that rounds to zero cells
// despite a positive share is rejected with a *DegenerateRectError rather
// than silently doing no work.
func ExecuteOuterProduct(plan *Plan, a, b []float64) (*matmul.Matrix, []int, error) {
	n := len(a)
	if len(b) != n {
		return nil, nil, fmt.Errorf("core: vector lengths %d and %d differ", n, len(b))
	}
	if n == 0 {
		return nil, nil, fmt.Errorf("core: empty vectors")
	}
	rects, err := SnapPlan(plan, n)
	if err != nil {
		return nil, nil, err
	}
	out := matmul.New(n, n)
	reads := make([]int, len(plan.Workers))
	var wg sync.WaitGroup
	for idx, r := range rects {
		reads[idx] = r.Data()
		wg.Add(1)
		go func(r IntRect) {
			defer wg.Done()
			matmul.OuterInto(out, a, b, r.RowLo, r.RowHi, r.ColLo, r.ColHi)
		}(r)
	}
	wg.Wait()
	return out, reads, nil
}
