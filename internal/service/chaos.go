package service

import (
	"math"
	"sync"

	"nlfl/internal/faults"
	"nlfl/internal/stats"
)

// jobChaos is a job's ChaosSpec compiled into per-fleet-worker query
// tables, the service twin of runtime.chaosState. Event times are
// relative to the job's start; every query takes that relative instant.
// The deterministic tables are read-only after compile; the LinkDrop
// coin flips share one seeded RNG behind a mutex, so a job's flip
// sequence is reproducible even though which transfer consumes which
// flip depends on scheduling order.
type jobChaos struct {
	crashAt []float64    // earliest Crash instant per fleet worker (+Inf: none)
	slow    [][]timeSpan // Straggler compute factors
	pause   [][]timeSpan // Transient outages
	drop    [][]timeSpan // LinkDrop loss probabilities

	mu  sync.Mutex
	rng *stats.RNG
}

// timeSpan is one [start,end) fault window; factor carries the
// straggler multiplier or drop probability.
type timeSpan struct {
	start, end, factor float64
}

func (ts timeSpan) covers(t float64) bool { return t >= ts.start && t < ts.end }

func compileJobChaos(spec ChaosSpec, fleetP int) *jobChaos {
	jc := &jobChaos{
		crashAt: make([]float64, fleetP),
		slow:    make([][]timeSpan, fleetP),
		pause:   make([][]timeSpan, fleetP),
		drop:    make([][]timeSpan, fleetP),
		rng:     stats.NewRNG(spec.Scenario.Seed),
	}
	for w := range jc.crashAt {
		jc.crashAt[w] = math.Inf(1)
	}
	for _, e := range spec.Scenario.Events {
		switch e.Kind {
		case faults.Crash:
			if e.Time < jc.crashAt[e.Worker] {
				jc.crashAt[e.Worker] = e.Time
			}
		case faults.Transient:
			jc.pause[e.Worker] = append(jc.pause[e.Worker], timeSpan{e.Time, e.Until, 0})
		case faults.Straggler:
			jc.slow[e.Worker] = append(jc.slow[e.Worker], timeSpan{e.Time, e.Until, e.Factor})
		case faults.LinkSlow:
			// The fleet's link is shared by every job; slowing it for one
			// job would bleed into its neighbors' booked windows. A
			// job-scoped LinkSlow instead stretches the *job's* transfer
			// occupancy model: treat it as a straggler on the shipping
			// worker's compute for the window (closest job-local analogue
			// that cannot leak across tenants).
			jc.slow[e.Worker] = append(jc.slow[e.Worker], timeSpan{e.Time, e.Until, e.Factor})
		case faults.LinkDrop:
			jc.drop[e.Worker] = append(jc.drop[e.Worker], timeSpan{e.Time, e.Until, e.DropProb})
		}
	}
	return jc
}

// computeScale returns worker w's speed multiplier at job-relative t.
func (jc *jobChaos) computeScale(w int, t float64) float64 {
	f := 1.0
	for _, win := range jc.slow[w] {
		if win.covers(t) {
			f *= win.factor
		}
	}
	return f
}

// pausedUntil reports whether w is inside a transient outage at t and
// when the latest covering outage ends.
func (jc *jobChaos) pausedUntil(w int, t float64) (until float64, paused bool) {
	for _, win := range jc.pause[w] {
		if win.covers(t) && win.end > until {
			until, paused = win.end, true
		}
	}
	return until, paused
}

// dropTransfer flips the seeded coin for a transfer to w starting at t.
func (jc *jobChaos) dropTransfer(w int, t float64) bool {
	for _, win := range jc.drop[w] {
		if !win.covers(t) {
			continue
		}
		jc.mu.Lock()
		u := jc.rng.Float64()
		jc.mu.Unlock()
		if u < win.factor {
			return true
		}
	}
	return false
}

// crashDue reports whether w's job-scoped crash instant has passed at
// job-relative t (false for workers with no crash scheduled).
func (jc *jobChaos) crashDue(w int, t float64) bool {
	return t >= jc.crashAt[w]
}
