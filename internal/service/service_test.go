package service

import (
	"context"
	"errors"
	"fmt"
	"math"
	"testing"
	"time"

	nrt "nlfl/internal/runtime"
	"nlfl/internal/trace"
)

// testConfig is a small fast fleet: 4 heterogeneous workers, quick jobs.
func testConfig() Config {
	return Config{
		Speeds:        []float64{1, 2, 3, 4},
		WorkPerSecond: 4e5,
		Policy:        PolicyInterleaved,
		VerifyEvery:   509,
	}
}

func mustSubmit(t *testing.T, f *Fleet, spec JobSpec) *JobHandle {
	t.Helper()
	h, err := f.Submit(spec)
	if err != nil {
		t.Fatalf("Submit(%+v): %v", spec, err)
	}
	return h
}

func waitOK(t *testing.T, h *JobHandle) *JobReport {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	rep, err := h.Wait(ctx)
	if err != nil {
		t.Fatalf("job %d failed: %v", h.ID(), err)
	}
	return rep
}

// checkJob verifies a successful job end to end: exact output, ledger
// identities, and the trace oracle.
func checkJob(t *testing.T, rep *JobReport) {
	t.Helper()
	if rep.Out == nil {
		t.Fatalf("job %d: no output", rep.ID)
	}
	if rep.Latency < rep.Makespan {
		t.Errorf("job %d: latency %v < makespan %v", rep.ID, rep.Latency, rep.Makespan)
	}
	if d := rep.DataShipped - (rep.CommittedVolume + rep.WastedData); math.Abs(d) > 1e-6*(1+rep.DataShipped) {
		t.Errorf("job %d: shipped %v != committed %v + wasted %v", rep.ID, rep.DataShipped, rep.CommittedVolume, rep.WastedData)
	}
	if d := rep.CommittedVolume - (rep.PlanVolume + rep.ReplannedVolume); math.Abs(d) > 1e-6*(1+rep.CommittedVolume) {
		t.Errorf("job %d: committed %v != plan %v + replanned %v", rep.ID, rep.CommittedVolume, rep.PlanVolume, rep.ReplannedVolume)
	}
	if vs := trace.Check(rep.Trace, rep.Expect(1e-9)); len(vs) != 0 {
		for _, v := range vs {
			t.Errorf("job %d trace: %s", rep.ID, v)
		}
	}
}

func TestFleetSingleJobEachStrategy(t *testing.T) {
	f, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	for _, strat := range []string{"hom", "hom/k", "het"} {
		h := mustSubmit(t, f, JobSpec{Tenant: "t0", N: 96, Strategy: strat, Seed: 7})
		rep := waitOK(t, h)
		if rep.Strategy != strat || rep.N != 96 {
			t.Fatalf("report identity mismatch: %+v", rep)
		}
		if rep.WastedData != 0 || rep.ReplannedVolume != 0 {
			t.Errorf("%s: clean job has waste %v / replan %v", strat, rep.WastedData, rep.ReplannedVolume)
		}
		checkJob(t, rep)
	}
}

func TestFleetManyConcurrentJobsPerPolicy(t *testing.T) {
	for _, pol := range Policies() {
		pol := pol
		t.Run(string(pol), func(t *testing.T) {
			cfg := testConfig()
			cfg.Policy = pol
			f, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()
			var handles []*JobHandle
			for i := 0; i < 12; i++ {
				spec := JobSpec{
					Tenant:   fmt.Sprintf("tenant-%d", i%3),
					N:        48 + 16*(i%4),
					Strategy: []string{"hom", "het"}[i%2],
					Seed:     int64(100 + i),
				}
				handles = append(handles, mustSubmit(t, f, spec))
			}
			for _, h := range handles {
				checkJob(t, waitOK(t, h))
			}
			acc := f.Accounting()
			if acc.Completed != 12 || acc.Failed != 0 || acc.ActiveJobs != 0 {
				t.Fatalf("accounting: %+v", acc)
			}
			if len(acc.Tenants) != 3 {
				t.Fatalf("want 3 tenants, got %d", len(acc.Tenants))
			}
			for _, ta := range acc.Tenants {
				if ta.Completed != 4 || ta.WastedData != 0 {
					t.Errorf("tenant %s: %+v", ta.Tenant, ta)
				}
				if d := ta.CommittedVolume - ta.PlanVolume; math.Abs(d) > 1e-6 {
					t.Errorf("tenant %s: committed %v != plan %v", ta.Tenant, ta.CommittedVolume, ta.PlanVolume)
				}
			}
		})
	}
}

func TestFleetSharedLinkJobs(t *testing.T) {
	cfg := testConfig()
	// Tight enough that transfers serialize, loose enough to finish fast.
	cfg.Link = nrt.Link{ElemsPerSecond: 2e5}
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var handles []*JobHandle
	for i := 0; i < 6; i++ {
		handles = append(handles, mustSubmit(t, f, JobSpec{Tenant: "link", N: 64, Seed: int64(i)}))
	}
	for _, h := range handles {
		rep := waitOK(t, h)
		if rep.LinkCapacity != 2e5 {
			t.Fatalf("link capacity not threaded: %v", rep.LinkCapacity)
		}
		checkJob(t, rep)
	}
}

// TestPolicyOrdering pins the disciplines' signature behavior: under
// FIFO a small job queued behind a big one finishes after it; under
// SRPT and interleaved installments it overtakes.
func TestPolicyOrdering(t *testing.T) {
	for _, tc := range []struct {
		policy    Policy
		overtakes bool
	}{
		{PolicyFIFO, false},
		{PolicySRPT, true},
		{PolicyInterleaved, true},
	} {
		tc := tc
		t.Run(string(tc.policy), func(t *testing.T) {
			cfg := Config{
				// Σsᵢ/s₁ = 10 → a 3×3 hom grid: the big job has more
				// chunks than workers, so the pool reaches a scheduling
				// decision point while it is still running.
				Speeds:        []float64{1, 2, 3, 4},
				WorkPerSecond: 2e4, // big job ≈ 50 ms of fleet work
				Policy:        tc.policy,
			}
			f, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()
			big := mustSubmit(t, f, JobSpec{Tenant: "t", N: 96, Seed: 1})
			small := mustSubmit(t, f, JobSpec{Tenant: "t", N: 32, Seed: 2})
			bigRep := waitOK(t, big)
			smallRep := waitOK(t, small)
			if got := smallRep.DoneTime < bigRep.DoneTime; got != tc.overtakes {
				t.Fatalf("%s: small done at %v, big at %v, overtakes=%v want %v",
					tc.policy, smallRep.DoneTime, bigRep.DoneTime, got, tc.overtakes)
			}
			checkJob(t, bigRep)
			checkJob(t, smallRep)
		})
	}
}

func TestSubmitValidation(t *testing.T) {
	f, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	for _, spec := range []JobSpec{
		{N: 0},
		{N: 32, A: make([]float64, 32)}, // A without B
		{N: 32, A: make([]float64, 8), B: make([]float64, 32)}, // wrong length
		{N: 32, Strategy: "nope"},
		{N: 32, MaxWorkers: -1},
	} {
		if _, err := f.Submit(spec); err == nil {
			t.Errorf("Submit(%+v): want error", spec)
		}
	}
	if _, err := New(Config{}); err == nil {
		t.Error("New with no speeds: want error")
	}
	if _, err := New(Config{Speeds: []float64{1}, Policy: "nope"}); err == nil {
		t.Error("New with bad policy: want error")
	}
	if _, err := New(Config{Speeds: []float64{1, -1}}); err == nil {
		t.Error("New with negative speed: want error")
	}
}

func TestAmdahlSliceCap(t *testing.T) {
	f, err := New(testConfig()) // MinCellsPerWorker defaults to 256
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	// 24² = 576 cells → at most 2 workers despite a 4-worker fleet.
	rep := waitOK(t, mustSubmit(t, f, JobSpec{Tenant: "amdahl", N: 24, Seed: 3}))
	if len(rep.Workers) != 2 {
		t.Fatalf("slice %v: want the 2 fastest workers for n=24", rep.Workers)
	}
	// The fastest healthy workers are ids 3 and 2 (speeds 4 and 3).
	if rep.Workers[0] != 2 || rep.Workers[1] != 3 {
		t.Fatalf("slice %v: want [2 3]", rep.Workers)
	}
	// MaxWorkers caps further.
	rep = waitOK(t, mustSubmit(t, f, JobSpec{Tenant: "amdahl", N: 96, MaxWorkers: 1, Seed: 4}))
	if len(rep.Workers) != 1 || rep.Workers[0] != 3 {
		t.Fatalf("slice %v: want [3]", rep.Workers)
	}
	checkJob(t, rep)
}

func TestWaitCtxExpiry(t *testing.T) {
	cfg := testConfig()
	cfg.WorkPerSecond = 1e3 // slow: the job outlives the Wait context
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	h := mustSubmit(t, f, JobSpec{Tenant: "slow", N: 64})
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := h.Wait(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Wait under expired ctx: %v", err)
	}
	h.Cancel() // release the slow job so Close is fast
}
