package results

// TraceMetrics is the aggregate summary the trace layer distills from one
// run's timeline — the numbers attached to experiment records so a saved
// result carries its own utilization and waste accounting.
type TraceMetrics struct {
	// Makespan is the last span's end time.
	Makespan float64 `json:"makespan"`
	// CommVolume is the total data shipped (waste included).
	CommVolume float64 `json:"commVolume"`
	// UsefulWork, WastedWork and LostWork split the computed work units
	// into winning copies, losing speculative copies, and crash-destroyed
	// partials.
	UsefulWork float64 `json:"usefulWork"`
	WastedWork float64 `json:"wastedWork"`
	LostWork   float64 `json:"lostWork"`
	// ComputeTime, CommTime and IdleTime decompose the p·makespan
	// worker-time area. Idle is measured against the union of each
	// worker's spans, so pipelined comm/compute overlap is not
	// double-counted.
	ComputeTime float64 `json:"computeTime"`
	CommTime    float64 `json:"commTime"`
	IdleTime    float64 `json:"idleTime"`
	// Utilization is compute time / (p·makespan).
	Utilization float64 `json:"utilization"`
	// WastedWorkFraction is (wasted+lost) / (useful+wasted+lost), 0 for an
	// empty run.
	WastedWorkFraction float64 `json:"wastedWorkFraction"`
	// Imbalance is (t_max-t_min)/t_min over per-worker compute times.
	Imbalance float64 `json:"imbalance"`
	// Spans and Faults count the recorded spans and fault markers.
	Spans  int `json:"spans"`
	Faults int `json:"faults"`
}
