package bench

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"time"

	"nlfl/internal/matmul"
	"nlfl/internal/results"
	"nlfl/internal/stats"
)

// kernelSizes returns the matrix sides measured per configuration. The
// full sweep tops out at n=1024 — the size the CI throughput floor and
// the PERFORMANCE.md before/after numbers are quoted at.
func kernelSizes(quick bool) []int {
	if quick {
		return []int{64, 128}
	}
	return []int{128, 256, 448, 1024}
}

// minReps/minSpan bound the timing loop: each kernel runs at least
// minReps times and until minSpan of accumulated wall time, and the
// fastest single run is reported — the usual defense against one-off
// scheduler noise.
func timeBest(quick bool, run func()) float64 {
	minReps := 3
	minSpan := 60 * time.Millisecond
	if quick {
		minReps = 2
		minSpan = 10 * time.Millisecond
	}
	best := math.Inf(1)
	var total time.Duration
	for rep := 0; rep < minReps || total < minSpan; rep++ {
		start := time.Now()
		run()
		d := time.Since(start)
		total += d
		if s := d.Seconds(); s < best {
			best = s
		}
		if rep > 100 {
			break
		}
	}
	return best
}

// maxAbsDiff returns the largest element-wise deviation between two
// equally-shaped matrices.
func maxAbsDiff(a, b *matmul.Matrix) float64 {
	worst := 0.0
	for i := range a.Data {
		if d := math.Abs(a.Data[i] - b.Data[i]); d > worst {
			worst = d
		}
	}
	return worst
}

// RunKernels measures the dense kernels and returns the BENCH_kernels
// payload. Every non-reference kernel is checked element-wise against the
// naive reference on the same seeded inputs; a deviation above 1e-12
// fails the harness rather than producing an unchecked number. A
// cancelled ctx stops the sweep at the next kernel boundary.
func RunKernels(ctx context.Context, cfg Config) (results.KernelBenchFile, error) {
	file := results.KernelBenchFile{
		Schema:        results.BenchKernelsSchema,
		Seed:          cfg.Seed,
		Quick:         cfg.Quick,
		GoVersion:     runtime.Version(),
		GOMAXPROCS:    maxProcs(),
		AutotunedTile: matmul.AutotuneTile(),
	}
	workerCounts := []int{1, 2, 4}
	for _, n := range kernelSizes(cfg.Quick) {
		if err := ctx.Err(); err != nil {
			return file, err
		}
		a := matmul.Random(n, n, cfg.Seed)
		b := matmul.Random(n, n, cfg.Seed+1)
		ref, err := matmul.Naive(a, b)
		if err != nil {
			return file, err
		}
		flops := 2 * float64(n) * float64(n) * float64(n)

		add := func(kernel string, tile, workers int, out *matmul.Matrix, secs float64) error {
			errMax := maxAbsDiff(ref, out)
			if errMax > 1e-12 {
				return fmt.Errorf("bench: kernel %s at n=%d deviates from naive by %g", kernel, n, errMax)
			}
			file.Entries = append(file.Entries, results.KernelBenchEntry{
				Kernel: kernel, N: n, Tile: tile, Workers: workers,
				Seconds: secs, GFLOPS: flops / secs / 1e9,
				MaxAbsErr: errMax, Checked: true,
			})
			return nil
		}

		file.Entries = append(file.Entries, results.KernelBenchEntry{
			Kernel: "naive", N: n,
			Seconds: timeBest(cfg.Quick, func() { matmul.Naive(a, b) }),
			GFLOPS:  0, Checked: true,
		})
		last := &file.Entries[len(file.Entries)-1]
		last.GFLOPS = flops / last.Seconds / 1e9

		blocked, err := matmul.Blocked(a, b, 64)
		if err != nil {
			return file, err
		}
		if err := add("blocked", 64, 0, blocked,
			timeBest(cfg.Quick, func() { matmul.Blocked(a, b, 64) })); err != nil {
			return file, err
		}

		tiled, err := matmul.Tiled(a, b)
		if err != nil {
			return file, err
		}
		if err := add("tiled", file.AutotunedTile, 0, tiled,
			timeBest(cfg.Quick, func() { matmul.Tiled(a, b) })); err != nil {
			return file, err
		}

		for _, w := range workerCounts {
			if err := ctx.Err(); err != nil {
				return file, err
			}
			par, err := matmul.ParallelTiled(a, b, w)
			if err != nil {
				return file, err
			}
			if err := add("parallel-tiled", file.AutotunedTile, w, par,
				timeBest(cfg.Quick, func() { matmul.ParallelTiled(a, b, w) })); err != nil {
				return file, err
			}
		}

		// Outer-product kernels: N² work on 2N data — the non-linear
		// workload itself.
		r := stats.NewRNG(cfg.Seed + 2)
		av := stats.SampleN(stats.Uniform{Lo: -1, Hi: 1}, r, n)
		bv := stats.SampleN(stats.Uniform{Lo: -1, Hi: 1}, r, n)
		outerRef := matmul.VectorOuter(av, bv)
		outerFlops := float64(n) * float64(n)
		secs := timeBest(cfg.Quick, func() { matmul.VectorOuter(av, bv) })
		file.Entries = append(file.Entries, results.KernelBenchEntry{
			Kernel: "vector-outer", N: n,
			Seconds: secs, GFLOPS: outerFlops / secs / 1e9, Checked: true,
		})
		into := matmul.New(n, n)
		matmul.OuterInto(into, av, bv, 0, n, 0, n)
		if errMax := maxAbsDiff(outerRef, into); errMax > 0 {
			return file, fmt.Errorf("bench: outer-into at n=%d deviates from reference by %g", n, errMax)
		}
		secs = timeBest(cfg.Quick, func() { matmul.OuterInto(into, av, bv, 0, n, 0, n) })
		file.Entries = append(file.Entries, results.KernelBenchEntry{
			Kernel: "outer-into", N: n, Tile: file.AutotunedTile,
			Seconds: secs, GFLOPS: outerFlops / secs / 1e9, Checked: true,
		})
	}
	return file, nil
}
