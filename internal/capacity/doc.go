// Package capacity turns the paper's no-free-lunch theory into a
// capacity planner: given a workload class (cost N^α), a fleet speed
// profile, the token-bucket rate and the shared-link bandwidth, it
// predicts the speedup curve of the replicate-and-partition execution,
// finds the knee — the fleet size beyond which the marginal speedup of
// one more worker falls below a threshold — and states the closed-form
// speedup ceiling no fleet size can beat.
//
// The model is Amdahl-like in the sense of Cao–Wu–Robertazzi
// ("Integrating Amdahl-like Laws and Divisible Load Theory"): a
// saturation law derived from the two resources every slice must pay —
//
//	T(p) = V(p)/B + N^α/(R·Σᵢ≤ₚ sᵢ)
//
// where V(p) is the PERI-SUM partition's input volume over the p
// fastest workers (growing with p) and the second term the balanced
// compute phase (shrinking with p). Adding workers trades compute for
// communication; the knee is where the trade stops paying. The paper's
// own Section 2 law — input chunking leaves a 1 − 1/p^(α-1) fraction of
// the work undone — is reported alongside every prediction as the
// cautionary baseline.
//
// Predictions are validated against two observations, not trusted as
// theory: SimulateMakespan replays the snapped plan in the
// discrete-event simulator (agreement within snapping error), and
// MeasureMakespan executes it on the real goroutine worker pool
// (agreement within scheduler noise). CheckObservation gates both in
// BENCH_capacity.json; a model with a mis-specified α fails it.
//
// Consumers: `nlfl recommend` (the operator CLI), the fleet service's
// autoscaler admission policy (service.Config.AutoscaleTheta), and the
// `nlfl bench -capacity` sweep. See docs/CAPACITY.md for the operator
// guide.
package capacity
