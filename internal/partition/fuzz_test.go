package partition

import (
	"math"
	"testing"
)

// FuzzPeriSum drives the partitioner with arbitrary area vectors decoded
// from raw bytes: whatever survives Normalize must produce a valid tiling
// within the published guarantee.
func FuzzPeriSum(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4})
	f.Add([]byte{255})
	f.Add([]byte{1, 1, 1, 1, 1, 1, 1, 1, 1})
	f.Add([]byte{200, 1, 1, 1, 200})
	f.Fuzz(func(t *testing.T, raw []byte) {
		if len(raw) == 0 || len(raw) > 64 {
			t.Skip()
		}
		areas := make([]float64, len(raw))
		for i, b := range raw {
			// Spread over five orders of magnitude.
			areas[i] = math.Pow(10, float64(b)/255*5-2)
		}
		part, err := PeriSum(areas)
		if err != nil {
			t.Fatalf("PeriSum rejected positive areas: %v", err)
		}
		if err := part.Validate(); err != nil {
			t.Fatalf("invalid partition for %v: %v", areas, err)
		}
		norm, err := Normalize(areas)
		if err != nil {
			t.Fatal(err)
		}
		lb := LowerBound(norm)
		if c := part.SumHalfPerimeters(); c < lb-1e-9 || c > 1+1.25*lb+1e-9 {
			t.Fatalf("cost %v outside [LB, 1+1.25·LB] = [%v, %v]", c, lb, 1+1.25*lb)
		}
	})
}

// FuzzRecursiveBisection does the same for the bisection partitioner.
func FuzzRecursiveBisection(f *testing.F) {
	f.Add([]byte{9, 9, 9})
	f.Add([]byte{1, 250, 3, 77})
	f.Fuzz(func(t *testing.T, raw []byte) {
		if len(raw) == 0 || len(raw) > 48 {
			t.Skip()
		}
		areas := make([]float64, len(raw))
		for i, b := range raw {
			areas[i] = 0.01 + float64(b)
		}
		part, err := RecursiveBisection(areas)
		if err != nil {
			t.Fatalf("rejected positive areas: %v", err)
		}
		if err := part.Validate(); err != nil {
			t.Fatalf("invalid partition for %v: %v", areas, err)
		}
	})
}
