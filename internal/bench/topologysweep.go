package bench

import (
	"context"
	"fmt"
	"math"
	goruntime "runtime"

	"nlfl/internal/platform"
	"nlfl/internal/results"
	nrt "nlfl/internal/runtime"
	"nlfl/internal/stats"
	"nlfl/internal/trace"
)

// Topology sweep envelope. The work rate is pinned (cfg.WorkPerSecond is
// ignored) because the sweep's subject is the comm/compute ratio: the
// crossover gates below are calibrated arithmetic over these exact
// rates, and letting the caller move one side of the ratio would turn
// them into coin flips.
const (
	topoN    = 128
	topoRate = 2e5
	// topoTheta is the het/hom makespan ratio that counts as a het win:
	// strict enough that a win needs the link to matter, loose enough
	// that booking-order jitter in hop-serialized runs cannot flip it.
	topoTheta = 0.7
)

// topoSpeeds places the one fast worker at the far end of the chain, so
// hop-by-hop forwarding drags every byte it needs across all six hops —
// the configuration where a star and a chain of the same nominal
// bandwidth disagree the most.
func topoSpeeds() []float64 { return []float64{1, 1, 1, 1, 1, 11} }

// topoBandwidths spans hard link-bound (2e3) and transitional (2e4)
// regimes for topoN=128 at topoRate. Both keep the network constrained
// on purpose: there the makespans are dominated by modeled transfer
// time and the het/hom ratios are stable to ~2% across runs, so the
// crossover gates hold deterministically. Compute-bound bandwidths are
// excluded — once the network stops mattering the ratio is pure
// scheduler noise (measured 0.50–0.69 run to run) and no threshold
// separates the topologies.
func topoBandwidths() []float64 { return []float64{2e3, 2e4} }

// topoKinds lists the swept network shapes.
func topoKinds() []string { return []string{"star", "chain", "two-source"} }

func topoFor(kind string, workers int, bw float64) nrt.Topology {
	switch kind {
	case "star":
		return nrt.Star{Aggregate: bw, Workers: workers}
	case "chain":
		return nrt.UniformChain(workers, bw)
	case "two-source":
		return nrt.SplitTwoSource(workers, bw, bw)
	}
	panic("bench: unknown topology " + kind)
}

func topoStrategies(quick bool) []string {
	if quick {
		return []string{"hom", "het"}
	}
	return []string{"hom", "hom/k", "het"}
}

// RunTopologySweep executes the strategy set over pluggable network
// topologies — star, uniform daisy-chain, two-source — across the
// bandwidth grid, audits every trace with the per-edge capacity and
// volume invariants, and measures where the het-vs-hom crossover sits
// per topology: the largest swept bandwidth at which het's makespan
// stays below θ·hom. The headline gate is the shift: the star must show
// a crossover (het wins once its aggregate port is tight) and the chain
// must not (hop-serialized forwarding re-taxes het's compact rectangles
// until the volume advantage stops paying). A cancelled ctx aborts the
// in-flight run and stops the sweep.
func RunTopologySweep(ctx context.Context, cfg Config) (results.TopologyBenchFile, error) {
	file := results.TopologyBenchFile{
		Schema:             results.BenchTopologySchema,
		Seed:               cfg.Seed,
		Quick:              cfg.Quick,
		WorkPerSecond:      topoRate,
		GoVersion:          goruntime.Version(),
		GOMAXPROCS:         maxProcs(),
		CrossoverThreshold: topoTheta,
		Crossovers:         map[string]float64{},
	}
	r := stats.NewRNG(cfg.Seed)
	a := stats.SampleN(stats.Uniform{Lo: -1, Hi: 1}, r, topoN)
	b := stats.SampleN(stats.Uniform{Lo: -1, Hi: 1}, r, topoN)
	speeds := topoSpeeds()
	pl, err := platform.FromSpeeds(speeds)
	if err != nil {
		return file, err
	}
	p := len(speeds)

	for _, kind := range topoKinds() {
		file.Crossovers[kind] = 0
		for _, bw := range topoBandwidths() {
			if err := ctx.Err(); err != nil {
				return file, err
			}
			makespans := map[string]float64{}
			for _, strat := range topoStrategies(cfg.Quick) {
				var plan *nrt.StrategyPlan
				var err error
				switch strat {
				case "hom":
					plan, err = nrt.PlanHom(pl, topoN)
				case "hom/k":
					plan, err = nrt.PlanHomK(pl, topoN, 0.01, 0)
				default:
					plan, err = nrt.PlanHet(pl, topoN)
				}
				if err != nil {
					return file, fmt.Errorf("bench: %s/%s plan: %w", kind, strat, err)
				}
				rep, err := nrt.RunContext(ctx, plan, a, b, nrt.Options{
					Speeds:        speeds,
					WorkPerSecond: topoRate,
					// As in the link sweep: a small burst keeps link waits
					// from banking compute credit.
					Burst:       topoRate * 0.0001,
					Topology:    topoFor(kind, p, bw),
					Prefetch:    true,
					VerifyEvery: 1009,
				})
				if err != nil {
					return file, fmt.Errorf("bench: %s/%s bw=%g: %w", kind, plan.Strategy, bw, err)
				}
				if vs := trace.Check(rep.Trace, rep.Expect(homTolerance)); len(vs) > 0 {
					return file, fmt.Errorf("bench: %s/%s bw=%g trace violations: %v",
						kind, plan.Strategy, bw, trace.Must(vs))
				}
				relErr := math.Abs(rep.DataVolume-rep.Predicted) / rep.Predicted
				tol := homTolerance
				if plan.Strategy == "het" {
					tol = hetTolerance
				}
				if relErr > tol {
					return file, fmt.Errorf("bench: %s/%s bw=%g: measured volume %v off the closed form %v by %.4f",
						kind, plan.Strategy, bw, rep.DataVolume, rep.Predicted, relErr)
				}
				edges := make([]results.TopologyEdge, len(rep.Edges))
				for i, e := range rep.Edges {
					edges[i] = results.TopologyEdge{
						Name: e.Name, Capacity: e.Capacity,
						Volume: e.Volume, Utilization: e.Utilization,
					}
				}
				makespans[plan.Strategy] = rep.Makespan
				file.Entries = append(file.Entries, results.TopologyBenchEntry{
					Platform: "deep-fast-p6", Speeds: speeds,
					Topology: kind, Strategy: plan.Strategy, N: topoN, Bandwidth: bw,
					MeasuredVolume:  rep.DataVolume,
					PredictedVolume: rep.Predicted,
					RelError:        relErr,
					RelayVolume:     rep.RelayVolume,
					Makespan:        rep.Makespan,
					CommTime:        rep.CommTime,
					OverlapFraction: rep.OverlapFraction,
					Edges:           edges,
					Violations:      0,
				})
			}
			if makespans["het"] < topoTheta*makespans["hom"] && bw > file.Crossovers[kind] {
				file.Crossovers[kind] = bw
			}
		}
	}
	// The crossover-shift gate, the sweep's reason to exist.
	if file.Crossovers["star"] <= 0 {
		return file, fmt.Errorf("bench: het never beat hom by %gx on the star — no crossover to shift", topoTheta)
	}
	if file.Crossovers["chain"] != 0 {
		return file, fmt.Errorf("bench: het beat hom by %gx on the chain at bw=%g — hop forwarding failed to erase the volume advantage",
			topoTheta, file.Crossovers["chain"])
	}
	return file, nil
}

// ValidateTopology is the schema check for a BENCH_topology payload:
// right schema id, non-empty entries, finite fields in range, zero
// violations, volumes on the closed forms, relay traffic exactly where
// hop forwarding exists (chains, nowhere else) with monotone
// nonincreasing chain edge volumes, the recorded crossovers consistent
// with the entries, and the headline shift — a star crossover, no chain
// crossover — present. The two-source sanity gate rides along: with a
// second independent source, hom at the tightest bandwidth must beat
// the star's hom, which funnels everything through one port.
func ValidateTopology(f results.TopologyBenchFile) error {
	const path = TopologyFileName
	if f.Schema != results.BenchTopologySchema {
		return invalid(path, "schema %q, want %q", f.Schema, results.BenchTopologySchema)
	}
	if len(f.Entries) == 0 {
		return invalid(path, "no entries")
	}
	if !finite(f.WorkPerSecond) || f.WorkPerSecond <= 0 {
		return invalid(path, "non-positive work rate %v", f.WorkPerSecond)
	}
	if !finite(f.CrossoverThreshold) || f.CrossoverThreshold <= 0 || f.CrossoverThreshold >= 1 {
		return invalid(path, "crossover threshold %v outside (0,1)", f.CrossoverThreshold)
	}
	minBW := f.Entries[0].Bandwidth
	for _, e := range f.Entries {
		if e.Bandwidth < minBW {
			minBW = e.Bandwidth
		}
	}
	type key struct {
		topo string
		bw   float64
	}
	makespans := map[key]map[string]float64{}
	for i, e := range f.Entries {
		id := fmt.Sprintf("entry %d (%s/%s bw=%g)", i, e.Topology, e.Strategy, e.Bandwidth)
		if e.Platform == "" || e.Topology == "" || e.Strategy == "" || e.N <= 0 {
			return invalid(path, "%s: missing identity fields", id)
		}
		for _, v := range []struct {
			name  string
			value float64
		}{
			{"bandwidth", e.Bandwidth},
			{"measuredVolume", e.MeasuredVolume},
			{"predictedVolume", e.PredictedVolume},
			{"relError", e.RelError},
			{"relayVolume", e.RelayVolume},
			{"makespan", e.Makespan},
			{"commTime", e.CommTime},
			{"overlapFraction", e.OverlapFraction},
		} {
			if !finite(v.value) || v.value < 0 {
				return invalid(path, "%s: negative or non-finite %s %v", id, v.name, v.value)
			}
		}
		if e.Bandwidth <= 0 || e.MeasuredVolume <= 0 || e.Makespan <= 0 {
			return invalid(path, "%s: zero bandwidth, volume or makespan", id)
		}
		if e.OverlapFraction > 1 {
			return invalid(path, "%s: overlap fraction %v above 1", id, e.OverlapFraction)
		}
		if e.Violations != 0 {
			return invalid(path, "%s: %d invariant violations", id, e.Violations)
		}
		if len(e.Edges) == 0 {
			return invalid(path, "%s: no per-edge rows", id)
		}
		edgeSum := 0.0
		for j, ed := range e.Edges {
			if ed.Name == "" || !finite(ed.Capacity) || ed.Capacity < 0 {
				return invalid(path, "%s: edge %d malformed", id, j)
			}
			if !finite(ed.Volume) || ed.Volume < 0 {
				return invalid(path, "%s: edge %s volume %v", id, ed.Name, ed.Volume)
			}
			if !finite(ed.Utilization) || ed.Utilization < 0 || ed.Utilization > 1 {
				return invalid(path, "%s: edge %s utilization %v outside [0,1]", id, ed.Name, ed.Utilization)
			}
			if e.Topology == "chain" && j > 0 && ed.Volume > e.Edges[j-1].Volume {
				return invalid(path, "%s: chain edge volumes not monotone (%s carries %v > %s's %v)",
					id, ed.Name, ed.Volume, e.Edges[j-1].Name, e.Edges[j-1].Volume)
			}
			edgeSum += ed.Volume
		}
		if e.Topology == "chain" {
			if e.RelayVolume <= 0 {
				return invalid(path, "%s: chain run shipped no relay traffic", id)
			}
			if d := edgeSum - (e.MeasuredVolume + e.RelayVolume); math.Abs(d) > 1e-6*(1+edgeSum) {
				return invalid(path, "%s: edge ledger leaks (Σ %v ≠ delivered %v + relayed %v)",
					id, edgeSum, e.MeasuredVolume, e.RelayVolume)
			}
		} else if e.RelayVolume != 0 {
			return invalid(path, "%s: single-hop topology recorded relay volume %v", id, e.RelayVolume)
		}
		k := key{e.Topology, e.Bandwidth}
		if makespans[k] == nil {
			makespans[k] = map[string]float64{}
		}
		makespans[k][e.Strategy] = e.Makespan
	}

	// Recompute the crossovers from the entries and require agreement.
	recomputed := map[string]float64{}
	for k, ms := range makespans {
		if _, ok := recomputed[k.topo]; !ok {
			recomputed[k.topo] = 0
		}
		het, hasHet := ms["het"]
		hom, hasHom := ms["hom"]
		if hasHet && hasHom && het < f.CrossoverThreshold*hom && k.bw > recomputed[k.topo] {
			recomputed[k.topo] = k.bw
		}
	}
	for topo, bw := range recomputed {
		if got, ok := f.Crossovers[topo]; !ok || got != bw {
			return invalid(path, "crossovers[%s]=%v disagrees with entries (%v)", topo, f.Crossovers[topo], bw)
		}
	}
	if f.Crossovers["star"] <= 0 {
		return invalid(path, "no star crossover: het never won by the threshold")
	}
	if f.Crossovers["chain"] != 0 {
		return invalid(path, "chain crossover at bw=%v: hop forwarding should have erased the het advantage", f.Crossovers["chain"])
	}
	ts, hasTS := makespans[key{"two-source", minBW}]["hom"]
	st, hasST := makespans[key{"star", minBW}]["hom"]
	if hasTS && hasST && ts >= st {
		return invalid(path, "two-source hom makespan %v not below star's %v at bw=%v despite a second source", ts, st, minBW)
	}
	return nil
}
