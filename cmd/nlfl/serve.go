package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sync"
	"time"

	nrt "nlfl/internal/runtime"
	"nlfl/internal/service"
)

// serveState is the HTTP façade over one long-lived Fleet: it keeps the
// handles of every admitted job so clients can poll them by id.
type serveState struct {
	fleet *service.Fleet

	mu   sync.Mutex
	jobs map[int64]*service.JobHandle
}

// submitRequest is the POST /jobs body.
type submitRequest struct {
	Tenant     string  `json:"tenant"`
	N          int     `json:"n"`
	Strategy   string  `json:"strategy"`
	Seed       int64   `json:"seed"`
	DeadlineMs float64 `json:"deadlineMs"`
	MaxWorkers int     `json:"maxWorkers"`
}

// jobStatus is the GET /jobs?id= body: the job ledger minus the output
// matrix and trace (poll state until "done" or "failed", then read the
// volumes; the matrix itself stays server-side).
type jobStatus struct {
	ID      int64  `json:"id"`
	State   string `json:"state"` // "running", "done" or "failed"
	Tenant  string `json:"tenant,omitempty"`
	N       int    `json:"n,omitempty"`
	Workers []int  `json:"workers,omitempty"`

	Latency         float64 `json:"latency,omitempty"`
	Makespan        float64 `json:"makespan,omitempty"`
	PlanVolume      float64 `json:"planVolume,omitempty"`
	ReplannedVolume float64 `json:"replannedVolume,omitempty"`
	CommittedVolume float64 `json:"committedVolume,omitempty"`
	WastedData      float64 `json:"wastedData,omitempty"`
	ReclaimedCells  int     `json:"reclaimedCells,omitempty"`

	Err string `json:"err,omitempty"`
}

// newServeMux wires the fleet API: submit, poll, accounts, health.
func newServeMux(st *serveState) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/jobs", st.handleJobs)
	mux.HandleFunc("/accounts", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, st.fleet.Accounting())
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{
			"workers": st.fleet.Workers(),
			"health":  st.fleet.Health(),
		})
	})
	return mux
}

func (st *serveState) handleJobs(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodPost:
		st.handleSubmit(w, r)
	case http.MethodGet:
		st.handleGet(w, r)
	default:
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}

func (st *serveState) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req submitRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "bad request body: "+err.Error(), http.StatusBadRequest)
		return
	}
	h, err := st.fleet.Submit(service.JobSpec{
		Tenant:     req.Tenant,
		N:          req.N,
		Strategy:   req.Strategy,
		Seed:       req.Seed,
		Deadline:   time.Duration(req.DeadlineMs * float64(time.Millisecond)),
		MaxWorkers: req.MaxWorkers,
	})
	if err != nil {
		// Shed load loudly: admission rejection is the backpressure signal,
		// everything else is a spec error. Rejections carry the typed
		// reason so clients can tell quota pressure from fleet overload
		// from the capacity model's amdahl-cap verdict and react
		// differently (back off, resubmit elsewhere, drop the deadline).
		var ae *service.AdmissionError
		if errors.As(err, &ae) {
			w.Header().Set("Retry-After", retryAfter(st.fleet.QueueDepth()))
			writeJSON(w, http.StatusTooManyRequests, map[string]string{
				"error":  err.Error(),
				"reason": string(ae.Reason),
				"detail": ae.Detail,
			})
			return
		}
		code := http.StatusBadRequest
		if errors.Is(err, service.ErrAdmissionRejected) {
			code = http.StatusTooManyRequests
			w.Header().Set("Retry-After", retryAfter(st.fleet.QueueDepth()))
		}
		writeJSON(w, code, map[string]string{"error": err.Error()})
		return
	}
	st.mu.Lock()
	st.jobs[h.ID()] = h
	st.mu.Unlock()
	writeJSON(w, http.StatusAccepted, map[string]int64{"id": h.ID()})
}

func (st *serveState) handleGet(w http.ResponseWriter, r *http.Request) {
	var id int64
	if _, err := fmt.Sscanf(r.URL.Query().Get("id"), "%d", &id); err != nil {
		http.Error(w, "missing or malformed id", http.StatusBadRequest)
		return
	}
	st.mu.Lock()
	h := st.jobs[id]
	st.mu.Unlock()
	if h == nil {
		http.Error(w, "unknown job id", http.StatusNotFound)
		return
	}
	rep := h.Report()
	if rep == nil {
		writeJSON(w, http.StatusOK, jobStatus{ID: id, State: "running"})
		return
	}
	s := jobStatus{
		ID: id, State: "done",
		Tenant: rep.Tenant, N: rep.N, Workers: rep.Workers,
		Latency: rep.Latency, Makespan: rep.Makespan,
		PlanVolume: rep.PlanVolume, ReplannedVolume: rep.ReplannedVolume,
		CommittedVolume: rep.CommittedVolume, WastedData: rep.WastedData,
		ReclaimedCells: rep.ReclaimedCells,
		Err:            rep.Err,
	}
	if rep.Failed {
		s.State = "failed"
	}
	writeJSON(w, http.StatusOK, s)
}

// retryAfter turns the fleet's queue depth into a Retry-After hint in
// whole seconds: 1s for a shallow queue, one extra second per four
// queued jobs, capped at 30s. Clients should treat it as a *minimum*
// and add their own jitter (see docs/CAPACITY.md) — if every shed
// client sleeps exactly this long, they all come back in the same
// instant and the queue refills at once.
func retryAfter(depth int) string {
	secs := 1 + depth/4
	if secs > 30 {
		secs = 30
	}
	return fmt.Sprintf("%d", secs)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

// runServe starts the fleet as a long-lived HTTP service. SIGINT drains
// gracefully: admission stops, in-flight jobs finish (bounded by
// -drain), then the pool shuts down.
func runServe(args []string) error {
	fs := newFlagSet("serve")
	addr := fs.String("addr", "127.0.0.1:8080", "listen address")
	speeds := fs.String("speeds", "1,2,3,4", "comma-separated worker speeds")
	rate := fs.Float64("rate", 3e4, "cells/s per unit speed")
	bandwidth := fs.Float64("bandwidth", 0, "master link elems/s (0 = unthrottled)")
	policy := fs.String("policy", "srpt", "scheduling policy: fifo, srpt or ii")
	queue := fs.Int("queue", 64, "max unfinished jobs fleet-wide")
	quota := fs.Int("quota", 32, "max unfinished jobs per tenant")
	autoscale := fs.Float64("autoscale", 0, "capacity-model autoscaler theta: cap each job's slice at the predicted speedup knee (0 = off)")
	drain := fs.Duration("drain", 30*time.Second, "graceful drain budget on SIGINT")
	if err := fs.Parse(args); err != nil {
		return err
	}
	sp, err := parseFloats(*speeds)
	if err != nil {
		return err
	}
	fleet, err := service.New(service.Config{
		Speeds:         sp,
		WorkPerSecond:  *rate,
		Link:           nrt.Link{ElemsPerSecond: *bandwidth},
		Policy:         service.Policy(*policy),
		MaxQueue:       *queue,
		TenantQuota:    *quota,
		AutoscaleTheta: *autoscale,
	})
	if err != nil {
		return err
	}
	st := &serveState{fleet: fleet, jobs: map[int64]*service.JobHandle{}}
	srv := &http.Server{Handler: newServeMux(st)}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fleet.Close()
		return err
	}
	fmt.Printf("nlfl serve: fleet of %d workers (%s policy) on http://%s\n",
		fleet.Workers(), *policy, ln.Addr())
	fmt.Println("  POST /jobs      {\"tenant\":\"a\",\"n\":64,\"strategy\":\"het\"} → {\"id\":…}")
	fmt.Println("  GET  /jobs?id=N job status and ledger")
	fmt.Println("  GET  /accounts  fleet + per-tenant accounting")
	fmt.Println("  GET  /healthz   worker health (strikes, quarantine)")

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	select {
	case err := <-errc:
		fleet.Close()
		return err
	case <-ctx.Done():
	}
	fmt.Println("nlfl serve: draining…")
	dctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := fleet.Drain(dctx); err != nil {
		fmt.Printf("nlfl serve: drain incomplete: %v\n", err)
	}
	fleet.Close()
	_ = srv.Shutdown(context.Background())
	acc := fleet.Accounting()
	fmt.Printf("nlfl serve: done — %d submitted, %d completed, %d failed, %d rejected\n",
		acc.Submitted, acc.Completed, acc.Failed, acc.Rejected)
	return nil
}
