package service

import "fmt"

// Policy selects the fleet's scheduling discipline — which admitted job
// the next idle worker serves.
type Policy string

// The three disciplines span the multi-load scheduling space the DLT
// literature maps out (Gallet–Robert–Vivien: naive FIFO over a shared
// link is provably bad; interleaving installments repairs it).
const (
	// PolicyFIFO is the naive baseline: strictly job-exclusive,
	// head-of-line service. The oldest unfinished job owns the whole
	// fleet until its last chunk commits; later jobs wait untouched.
	// Deliberately bad under load: it forfeits cross-job comm/compute
	// overlap on the shared link and idles the pool through every job's
	// straggler tail.
	PolicyFIFO Policy = "fifo"
	// PolicySRPT is shortest-remaining-processing-time with
	// anti-starvation aging: idle workers serve the job minimizing
	// remaining cells − AgingCellsPerSec·wait, after tenant fair-share
	// ordering. Small jobs overtake large ones (tight p50/p99 under
	// mixed sizes) but a large job's effective key keeps shrinking, so
	// it cannot starve.
	PolicySRPT Policy = "srpt"
	// PolicyInterleaved is interleaved installments: least attained
	// service first (aged by AgingCellsPerSec, so seniority eventually
	// wins and old jobs cannot starve), after tenant fair-share
	// ordering. Every admitted job gets chunks in round-robin
	// installments, the multi-load fix from the divisible-load
	// literature.
	PolicyInterleaved Policy = "ii"
)

// discipline is the compiled policy id used on the scheduling hot path.
type discipline int

const (
	dFIFO discipline = iota
	dSRPT
	dInterleaved
)

// order compiles the policy name, rejecting unknown ones at Config time.
func (p Policy) order() (discipline, error) {
	switch p {
	case PolicyFIFO:
		return dFIFO, nil
	case PolicySRPT:
		return dSRPT, nil
	case PolicyInterleaved:
		return dInterleaved, nil
	default:
		return 0, fmt.Errorf("service: unknown policy %q (want %q, %q or %q)",
			string(p), PolicyFIFO, PolicySRPT, PolicyInterleaved)
	}
}

// Policies lists the supported disciplines, FIFO (the baseline) first.
func Policies() []Policy { return []Policy{PolicyFIFO, PolicySRPT, PolicyInterleaved} }
