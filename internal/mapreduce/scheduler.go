package mapreduce

import (
	"errors"
	"fmt"
	"math"

	"nlfl/internal/dessim"
	"nlfl/internal/platform"
	"nlfl/internal/trace"
)

// TaskSpec is one schedulable chunk: Data units to ship, Work units to
// compute (time Work/speed on the assigned worker).
type TaskSpec struct {
	Data float64
	Work float64
}

// ScheduleResult is the outcome of placing a task set on a heterogeneous
// platform.
type ScheduleResult struct {
	// Makespan is the completion time of the last task.
	Makespan float64
	// Assignment[t] is the worker that completed task t first.
	Assignment []int
	// TasksPerWorker[w] counts tasks credited to worker w.
	TasksPerWorker []int
	// DataPerWorker[w] is the volume shipped to worker w, including data
	// for speculative copies that lost the race.
	DataPerWorker []float64
	// Backups is the number of speculative copies launched.
	Backups int
	// WastedWork is the work units burned by losing copies.
	WastedWork float64
	// Imbalance is (t_max-t_min)/t_min over busy time per worker.
	Imbalance float64
	// Trace is the structured span record of the run: one comm and one
	// compute span per launched copy, losing speculative copies marked
	// Wasted.
	Trace *trace.Timeline
}

// Schedule places tasks demand-driven (the Hadoop model the paper
// describes: "the load-balancing is achieved by splitting the workload in
// many tasks ... the fastest processor gets more chunks than the others").
// With speculate=true, once the pool is empty each idle worker may launch
// one backup copy of a still-running task, fastest-idle-worker first and
// longest-remaining-task first — Hadoop's straggler mitigation ("some
// tasks are themselves replicated at the end of the computations to
// minimize execution discrepancy"). A task completes when either copy
// finishes; the loser's work is counted as waste.
func Schedule(p *platform.Platform, tasks []TaskSpec, speculate bool) (ScheduleResult, error) {
	for i, t := range tasks {
		if t.Data < 0 || t.Work < 0 {
			return ScheduleResult{}, fmt.Errorf("mapreduce: task %d has negative size", i)
		}
	}
	res := ScheduleResult{
		Assignment:     make([]int, len(tasks)),
		TasksPerWorker: make([]int, p.P()),
		DataPerWorker:  make([]float64, p.P()),
	}
	for i := range res.Assignment {
		res.Assignment[i] = -1
	}
	res.Trace = trace.New(p.P())
	if len(tasks) == 0 {
		return res, nil
	}

	eng := dessim.NewEngine()
	next := 0
	type running struct {
		task    int
		worker  int
		recvEnd float64
		finish  float64
		backup  bool
		settled bool
	}
	var active []*running
	busy := make([]float64, p.P())
	done := make([]bool, len(tasks))
	backupOf := make([]bool, len(tasks))

	finishOne := func(r *running) {
		if r.settled || done[r.task] {
			if !r.settled {
				// This copy lost the race: its work is waste. (Hadoop
				// kills the loser; the engine still fires its event, but
				// the job's makespan is the winners' last finish.)
				r.settled = true
				res.WastedWork += tasks[r.task].Work
				res.Trace.Add(r.worker, trace.Span{Kind: trace.Compute, Start: r.recvEnd, End: r.finish, Work: tasks[r.task].Work, Task: r.task, Outcome: trace.Wasted})
			}
			return
		}
		r.settled = true
		res.Trace.Add(r.worker, trace.Span{Kind: trace.Compute, Start: r.recvEnd, End: r.finish, Work: tasks[r.task].Work, Task: r.task, Outcome: trace.OK})
		done[r.task] = true
		res.Assignment[r.task] = r.worker
		res.TasksPerWorker[r.worker]++
		if eng.Now() > res.Makespan {
			res.Makespan = eng.Now()
		}
	}

	var assign func(worker int)
	launch := func(worker, task int, backup bool) {
		w := p.Worker(worker)
		recvEnd := eng.Now() + w.CommTime(tasks[task].Data)
		finish := recvEnd + w.LinearCompTime(tasks[task].Work)
		res.DataPerWorker[worker] += tasks[task].Data
		busy[worker] += finish - eng.Now()
		res.Trace.Add(worker, trace.Span{Kind: trace.Comm, Start: eng.Now(), End: recvEnd, Data: tasks[task].Data, Task: task, Outcome: trace.OK})
		r := &running{task: task, worker: worker, recvEnd: recvEnd, finish: finish, backup: backup}
		active = append(active, r)
		eng.At(finish, func() {
			finishOne(r)
			assign(worker)
		})
	}
	assign = func(worker int) {
		if next < len(tasks) {
			task := next
			next++
			launch(worker, task, false)
			return
		}
		if !speculate {
			return
		}
		// Pool empty: back up the running task with the latest projected
		// finish, if any copy-less task remains.
		var target *running
		for _, r := range active {
			if r.settled || done[r.task] || backupOf[r.task] || r.backup {
				continue
			}
			if r.finish <= eng.Now() {
				continue
			}
			if target == nil || r.finish > target.finish {
				target = r
			}
		}
		if target == nil {
			return
		}
		// Only back up when this worker can plausibly beat the original.
		w := p.Worker(worker)
		eta := eng.Now() + w.CommTime(tasks[target.task].Data) + w.LinearCompTime(tasks[target.task].Work)
		if eta >= target.finish {
			return
		}
		backupOf[target.task] = true
		res.Backups++
		launch(worker, target.task, true)
	}

	for i := 0; i < p.P(); i++ {
		worker := i
		eng.At(0, func() { assign(worker) })
	}
	eng.Run()

	for i, d := range done {
		if !d {
			return res, fmt.Errorf("mapreduce: task %d never completed", i)
		}
	}
	res.Imbalance = imbalance(busy)
	return res, nil
}

// imbalance returns (max-min)/min of the positive entries; +Inf if any
// entry is zero while another is positive, 0 for an all-zero slice.
func imbalance(ts []float64) float64 {
	tmin, tmax := math.Inf(1), 0.0
	for _, t := range ts {
		if t < tmin {
			tmin = t
		}
		if t > tmax {
			tmax = t
		}
	}
	if tmax == 0 {
		return 0
	}
	if tmin == 0 {
		return math.Inf(1)
	}
	return (tmax - tmin) / tmin
}

// UniformTasks builds n identical tasks.
func UniformTasks(n int, data, work float64) ([]TaskSpec, error) {
	if n < 0 {
		return nil, errors.New("mapreduce: negative task count")
	}
	tasks := make([]TaskSpec, n)
	for i := range tasks {
		tasks[i] = TaskSpec{Data: data, Work: work}
	}
	return tasks, nil
}
