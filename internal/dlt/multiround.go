package dlt

import (
	"errors"

	"nlfl/internal/dessim"
	"nlfl/internal/platform"
	"nlfl/internal/trace"
)

// MultiRoundUniform splits an allocation's shares into `rounds` equal
// installments per worker, emitted round by round. Because a worker's link
// and CPU are distinct resources, later installments stream in while
// earlier ones compute — the multi-round pipelining described in
// Section 1.2 ("the workers will be able to compute the current chunk
// while receiving data for the next one").
func MultiRoundUniform(a Allocation, n float64, rounds int) ([]dessim.Chunk, error) {
	if rounds <= 0 {
		return nil, errors.New("dlt: rounds must be positive")
	}
	var chunks []dessim.Chunk
	for r := 0; r < rounds; r++ {
		for i, f := range a.Fractions {
			d := f * n / float64(rounds)
			if d == 0 {
				continue
			}
			chunks = append(chunks, dessim.Chunk{Worker: i, Data: d, Work: d})
		}
	}
	return chunks, nil
}

// MultiRoundGeometric splits the allocation into `rounds` installments
// whose sizes change geometrically by `ratio` per round (ratio = 1
// recovers MultiRoundUniform). The right shape depends on the overheads:
// with per-round latencies, classical multi-round DLT grows installments
// (ratio > 1) to amortize them; in the pure bandwidth model simulated
// here, a *decreasing* schedule (ratio < 1) wins instead — the final
// installment's computation is the only work that cannot overlap
// anything, so it should be the smallest.
func MultiRoundGeometric(a Allocation, n float64, rounds int, ratio float64) ([]dessim.Chunk, error) {
	if rounds <= 0 {
		return nil, errors.New("dlt: rounds must be positive")
	}
	if ratio <= 0 {
		return nil, errors.New("dlt: ratio must be positive")
	}
	// Round weights: 1, r, r², …, normalized.
	weights := make([]float64, rounds)
	total := 0.0
	w := 1.0
	for i := range weights {
		weights[i] = w
		total += w
		w *= ratio
	}
	for i := range weights {
		weights[i] /= total
	}
	var chunks []dessim.Chunk
	for _, rw := range weights {
		for i, f := range a.Fractions {
			d := f * n * rw
			if d == 0 {
				continue
			}
			chunks = append(chunks, dessim.Chunk{Worker: i, Data: d, Work: d})
		}
	}
	return chunks, nil
}

// SimulatedMakespan executes chunks on the platform under the given
// communication model and returns the measured makespan. It is the bridge
// from closed-form DLT results to the discrete-event simulator used for
// cross-validation.
func SimulatedMakespan(p *platform.Platform, chunks []dessim.Chunk, mode dessim.CommMode) (float64, error) {
	tl, err := dessim.RunSingleRound(p, chunks, mode)
	if err != nil {
		return 0, err
	}
	if err := tl.Validate(); err != nil {
		return 0, err
	}
	return tl.Makespan, nil
}

// SimulatedTimeline executes chunks like SimulatedMakespan but returns the
// full structured trace, already audited: the dessim record is validated,
// converted, and passed through the trace invariant checker before being
// handed back.
func SimulatedTimeline(p *platform.Platform, chunks []dessim.Chunk, mode dessim.CommMode) (*trace.Timeline, error) {
	tl, err := dessim.RunSingleRound(p, chunks, mode)
	if err != nil {
		return nil, err
	}
	if err := tl.Validate(); err != nil {
		return nil, err
	}
	tr := trace.FromDessim(tl)
	if err := trace.Must(trace.Check(tr, nil)); err != nil {
		return nil, err
	}
	return tr, nil
}
