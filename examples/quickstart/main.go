// Quickstart: classify a workload, then plan a heterogeneity-aware
// distribution for it — the library's two core calls.
package main

import (
	"fmt"
	"log"

	"nlfl/internal/core"
	"nlfl/internal/matmul"
	"nlfl/internal/platform"
	"nlfl/internal/stats"
)

func main() {
	// A heterogeneous platform: four workers, speeds 1..8.
	pl, err := platform.FromSpeeds([]float64{1, 2, 4, 8})
	if err != nil {
		log.Fatal(err)
	}

	// 1. Is an N²-cost workload (e.g. an outer product) divisible?
	verdict, err := core.Analyze(core.Workload{Kind: core.Power, N: 10000, Alpha: 2}, pl.P())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(verdict)

	// 2. It is not — so replicate data and partition the computation
	// domain with speed-proportional rectangles instead.
	plan, err := core.PlanOuterProduct(pl, 10000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(plan)
	fmt.Printf("\nheterogeneity-aware layout ships %.1f× less data than MapReduce-style blocks\n",
		plan.Savings())

	// 3. And the plan actually runs: compute a small outer product with
	// one goroutine per worker on its rectangle, verified against the
	// dense kernel.
	const n = 256
	r := stats.NewRNG(1)
	a := stats.SampleN(stats.Uniform{Lo: -1, Hi: 1}, r, n)
	b := stats.SampleN(stats.Uniform{Lo: -1, Hi: 1}, r, n)
	smallPlan, err := core.PlanOuterProduct(pl, n)
	if err != nil {
		log.Fatal(err)
	}
	got, _, err := core.ExecuteOuterProduct(smallPlan, a, b)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nexecuted the plan on real vectors (n=%d): correct=%v\n",
		n, matmul.VectorOuter(a, b).Equal(got, 1e-12))
}
