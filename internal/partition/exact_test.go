package partition

import (
	"math"
	"testing"

	"nlfl/internal/stats"
)

func TestGuillotineOptimalKnownCases(t *testing.T) {
	cases := []struct {
		name  string
		areas []float64
		want  float64
	}{
		{"single", []float64{1}, 2},
		{"two halves", []float64{1, 1}, 3},
		{"four quarters", []float64{1, 1, 1, 1}, 4},
		// Nine equal areas tile as a 3×3 grid: 9·(2/3) = 6.
		{"nine", []float64{1, 1, 1, 1, 1, 1, 1, 1, 1}, 0}, // p=9 > cap, skipped below
	}
	for _, c := range cases {
		if len(c.areas) > MaxGuillotineP {
			if _, err := GuillotineOptimal(c.areas); err == nil {
				t.Errorf("%s: p > cap should fail", c.name)
			}
			continue
		}
		got, err := GuillotineOptimal(c.areas)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if math.Abs(got-c.want) > 1e-9 {
			t.Errorf("%s: optimum = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestGuillotineBeatsColumnDPWhenPossible(t *testing.T) {
	// 5 areas {4,1,1,1,1}/8: a guillotine layout can nest the small
	// rectangles around the big one; the optimum must be ≤ the
	// column-based DP and ≥ the lower bound.
	areas := []float64{4, 1, 1, 1, 1}
	opt, err := GuillotineOptimal(areas)
	if err != nil {
		t.Fatal(err)
	}
	dp, err := PeriSum(areas)
	if err != nil {
		t.Fatal(err)
	}
	norm, _ := Normalize(areas)
	lb := LowerBound(norm)
	if opt > dp.SumHalfPerimeters()+1e-9 {
		t.Errorf("guillotine optimum %v above column DP %v", opt, dp.SumHalfPerimeters())
	}
	if opt < lb-1e-9 {
		t.Errorf("guillotine optimum %v below LB %v", opt, lb)
	}
}

func TestColumnGapToGuillotineSmall(t *testing.T) {
	// The ablation headline: across random instances the column-based DP
	// stays within a few percent of the guillotine optimum.
	r := stats.NewRNG(13)
	var worst float64 = 1
	for trial := 0; trial < 25; trial++ {
		p := 2 + r.Intn(5) // p in [2,6]
		areas := stats.SampleN(stats.LogNormal{Mu: 0, Sigma: 1}, r, p)
		gap, err := ColumnGapToGuillotine(areas)
		if err != nil {
			t.Fatal(err)
		}
		if gap < 1-1e-9 {
			t.Fatalf("column DP below the guillotine optimum: gap %v (areas %v)", gap, areas)
		}
		if gap > worst {
			worst = gap
		}
	}
	if worst > 1.1 {
		t.Errorf("column DP up to %v× the guillotine optimum, expected ≤ 1.1", worst)
	}
}

func TestGuillotineValidation(t *testing.T) {
	if _, err := GuillotineOptimal(nil); err == nil {
		t.Error("empty areas should fail")
	}
	if _, err := GuillotineOptimal([]float64{1, -1}); err == nil {
		t.Error("negative area should fail")
	}
	if _, err := ColumnGapToGuillotine([]float64{}); err == nil {
		t.Error("empty gap computation should fail")
	}
}
