package mapreduce

import (
	"math"
	"testing"
	"testing/quick"

	"nlfl/internal/platform"
	"nlfl/internal/stats"
)

func TestScheduleWithFailuresNoFailures(t *testing.T) {
	pl, err := platform.FromSpeeds([]float64{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	tasks, _ := UniformTasks(40, 0, 1)
	res, err := ScheduleWithFailures(pl, tasks, nil)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, c := range res.TasksPerWorker {
		total += c
	}
	if total != 40 || res.Reexecutions != 0 || res.LostWork != 0 {
		t.Errorf("clean run: %+v", res)
	}
	// Should match the failure-free scheduler's makespan closely (both
	// are demand-driven with zero comm).
	ref, err := Schedule(pl, tasks, false)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Makespan-ref.Makespan) > 1e-9 {
		t.Errorf("makespan %v vs reference %v", res.Makespan, ref.Makespan)
	}
}

func TestFailureCausesReexecution(t *testing.T) {
	// Two unit-speed workers, 10 unit tasks. Worker 1 dies at t=3.5 after
	// completing 3 tasks (its 4th is in flight): those 3 plus the rest
	// must be redone/done by worker 0.
	pl, err := platform.FromSpeeds([]float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	tasks, _ := UniformTasks(10, 0, 1)
	res, err := ScheduleWithFailures(pl, tasks, []Failure{{Worker: 1, Time: 3.5}})
	if err != nil {
		t.Fatal(err)
	}
	if res.TasksPerWorker[1] != 0 {
		t.Errorf("dead worker credited with %d tasks", res.TasksPerWorker[1])
	}
	if res.TasksPerWorker[0] != 10 {
		t.Errorf("survivor completed %d tasks, want all 10", res.TasksPerWorker[0])
	}
	if res.Reexecutions != 3 {
		t.Errorf("re-executions = %d, want 3 (completed map outputs lost)", res.Reexecutions)
	}
	if res.LostWork != 3 {
		t.Errorf("lost work = %v, want 3", res.LostWork)
	}
	// Survivor: 3 own tasks by t=3, then (interleaving) finishes the rest.
	// Total surviving executions = 10 at speed 1, of which 3 overlapped
	// the pre-failure window: makespan ≥ 10.
	if res.Makespan < 10 {
		t.Errorf("makespan = %v, expected ≥ 10", res.Makespan)
	}
}

func TestFailureAfterCompletionIsFree(t *testing.T) {
	pl, err := platform.FromSpeeds([]float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	tasks, _ := UniformTasks(4, 0, 1)
	// Everything completes at t=2; a failure at t=100 changes nothing
	// (map outputs have been consumed by then in a real job; this model
	// only replays failures that precede completion of the epoch run).
	res, err := ScheduleWithFailures(pl, tasks, []Failure{{Worker: 0, Time: 100}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan != 2 || res.Reexecutions != 0 {
		t.Errorf("late failure should be free: %+v", res)
	}
}

func TestAllWorkersDeadFails(t *testing.T) {
	pl, err := platform.FromSpeeds([]float64{1})
	if err != nil {
		t.Fatal(err)
	}
	tasks, _ := UniformTasks(10, 0, 1)
	if _, err := ScheduleWithFailures(pl, tasks, []Failure{{Worker: 0, Time: 1}}); err == nil {
		t.Error("killing the only worker mid-job should fail")
	}
}

func TestFailureValidation(t *testing.T) {
	pl, _ := platform.Homogeneous(2, 1, 1)
	tasks, _ := UniformTasks(2, 0, 1)
	if _, err := ScheduleWithFailures(pl, tasks, []Failure{{Worker: 9, Time: 1}}); err == nil {
		t.Error("unknown worker should fail")
	}
	if _, err := ScheduleWithFailures(pl, tasks, []Failure{{Worker: 0, Time: -1}}); err == nil {
		t.Error("negative time should fail")
	}
	if _, err := ScheduleWithFailures(pl, []TaskSpec{{Work: -1}}, nil); err == nil {
		t.Error("negative work should fail")
	}
}

func TestDoubleFailureSameWorkerIdempotent(t *testing.T) {
	pl, err := platform.FromSpeeds([]float64{1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	tasks, _ := UniformTasks(9, 0, 1)
	a, err := ScheduleWithFailures(pl, tasks, []Failure{{Worker: 2, Time: 1.5}})
	if err != nil {
		t.Fatal(err)
	}
	b, err := ScheduleWithFailures(pl, tasks, []Failure{{Worker: 2, Time: 1.5}, {Worker: 2, Time: 2.5}})
	if err != nil {
		t.Fatal(err)
	}
	if a.Makespan != b.Makespan || a.Reexecutions != b.Reexecutions {
		t.Errorf("second failure of a dead worker changed the outcome: %+v vs %+v", a, b)
	}
}

// Property: with any failure pattern that leaves at least one live worker,
// every task gets a surviving execution, dead workers keep no credit, and
// the makespan respects the capacity lower bound.
func TestFailureProperty(t *testing.T) {
	f := func(seed int64, nt uint8, when uint8) bool {
		r := stats.NewRNG(seed)
		p := 2 + r.Intn(5)
		pl, err := platform.Generate(p, stats.Uniform{Lo: 0.5, Hi: 4}, r)
		if err != nil {
			return false
		}
		tasks := make([]TaskSpec, int(nt%40)+1)
		for i := range tasks {
			tasks[i] = TaskSpec{Work: 1}
		}
		clean, err := ScheduleWithFailures(pl, tasks, nil)
		if err != nil {
			return false
		}
		// Kill up to p-1 workers strictly before the clean completion, so
		// every failure is actually processed (a worker that dies before
		// the job ends keeps no credit).
		nKill := r.Intn(p)
		ft := clean.Makespan * (0.05 + 0.9*float64(when)/255)
		var fails []Failure
		for k := 0; k < nKill; k++ {
			fails = append(fails, Failure{Worker: k, Time: ft})
		}
		res, err := ScheduleWithFailures(pl, tasks, fails)
		if err != nil {
			return false
		}
		total := 0
		liveSpeed := 0.0
		for w, c := range res.TasksPerWorker {
			if w < nKill {
				if c != 0 {
					return false
				}
			} else {
				liveSpeed += pl.Worker(w).Speed
			}
			total += c
		}
		if total != len(tasks) {
			return false
		}
		// Note: failures can *reduce* the makespan relative to the clean
		// run (killing a slow worker reroutes its task to a faster idle
		// one), so the sound invariant is the capacity lower bound over
		// the post-failure survivors, not dominance over the clean run.
		return res.Makespan >= float64(len(tasks))/(liveSpeed+pl.TotalSpeed())-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}
