package platform

import (
	"encoding/json"
	"math"
	"testing"
	"testing/quick"

	"nlfl/internal/stats"
)

func mustNew(t *testing.T, speeds ...float64) *Platform {
	t.Helper()
	p, err := FromSpeeds(speeds)
	if err != nil {
		t.Fatalf("FromSpeeds(%v): %v", speeds, err)
	}
	return p
}

func TestNewValidation(t *testing.T) {
	cases := []struct {
		name    string
		workers []Worker
		wantErr bool
	}{
		{"empty", nil, true},
		{"ok", []Worker{{Speed: 1, Bandwidth: 1}}, false},
		{"zero speed", []Worker{{Speed: 0, Bandwidth: 1}}, true},
		{"negative speed", []Worker{{Speed: -1, Bandwidth: 1}}, true},
		{"nan speed", []Worker{{Speed: math.NaN(), Bandwidth: 1}}, true},
		{"inf speed", []Worker{{Speed: math.Inf(1), Bandwidth: 1}}, true},
		{"zero bandwidth", []Worker{{Speed: 1, Bandwidth: 0}}, true},
		{"negative bandwidth", []Worker{{Speed: 1, Bandwidth: -2}}, true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := New(c.workers)
			if (err != nil) != c.wantErr {
				t.Errorf("New(%v) err = %v, wantErr = %v", c.workers, err, c.wantErr)
			}
		})
	}
}

func TestNewAssignsIDsAndCopies(t *testing.T) {
	in := []Worker{{Speed: 2, Bandwidth: 1}, {Speed: 3, Bandwidth: 1}}
	p, err := New(in)
	if err != nil {
		t.Fatal(err)
	}
	in[0].Speed = 99 // must not affect the platform
	if p.Worker(0).Speed != 2 {
		t.Error("New must copy its input")
	}
	if p.Worker(0).ID != 0 || p.Worker(1).ID != 1 {
		t.Error("New must assign sequential IDs")
	}
}

func TestWorkerTimes(t *testing.T) {
	w := Worker{Speed: 2, Bandwidth: 4}
	if got := w.CommTime(8); got != 2 {
		t.Errorf("CommTime = %v, want 2", got)
	}
	if got := w.LinearCompTime(8); got != 4 {
		t.Errorf("LinearCompTime = %v, want 4", got)
	}
	if got := w.PowerCompTime(3, 2); got != 4.5 {
		t.Errorf("PowerCompTime = %v, want 4.5 (3²/2)", got)
	}
	// α=1 must agree with the linear cost.
	if w.PowerCompTime(8, 1) != w.LinearCompTime(8) {
		t.Error("PowerCompTime(·, 1) must equal LinearCompTime")
	}
}

func TestAggregates(t *testing.T) {
	p := mustNew(t, 1, 3, 6)
	if p.P() != 3 {
		t.Errorf("P = %d", p.P())
	}
	if p.TotalSpeed() != 10 {
		t.Errorf("TotalSpeed = %v, want 10", p.TotalSpeed())
	}
	if p.MinSpeed() != 1 || p.MaxSpeed() != 6 {
		t.Errorf("min/max = %v/%v", p.MinSpeed(), p.MaxSpeed())
	}
	if p.Heterogeneity() != 6 {
		t.Errorf("Heterogeneity = %v, want 6", p.Heterogeneity())
	}
	xs := p.NormalizedSpeeds()
	want := []float64{0.1, 0.3, 0.6}
	for i := range xs {
		if math.Abs(xs[i]-want[i]) > 1e-12 {
			t.Errorf("x[%d] = %v, want %v", i, xs[i], want[i])
		}
	}
}

func TestIsHomogeneous(t *testing.T) {
	if !mustNew(t, 2, 2, 2).IsHomogeneous(1e-9) {
		t.Error("equal speeds should be homogeneous")
	}
	if mustNew(t, 1, 2).IsHomogeneous(1e-9) {
		t.Error("unequal speeds should not be homogeneous")
	}
}

func TestSortedBySpeed(t *testing.T) {
	p := mustNew(t, 5, 1, 3)
	s := p.SortedBySpeed()
	got := s.Speeds()
	want := []float64{1, 3, 5}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("sorted speeds = %v, want %v", got, want)
		}
	}
	// IDs must track the original workers.
	if s.Worker(0).ID != 1 || s.Worker(1).ID != 2 || s.Worker(2).ID != 0 {
		t.Errorf("sorted IDs = %d,%d,%d", s.Worker(0).ID, s.Worker(1).ID, s.Worker(2).ID)
	}
	// Original must be untouched.
	if p.Worker(0).Speed != 5 {
		t.Error("SortedBySpeed must not mutate the receiver")
	}
}

func TestWorkersReturnsCopy(t *testing.T) {
	p := mustNew(t, 1, 2)
	ws := p.Workers()
	ws[0].Speed = 42
	if p.Worker(0).Speed != 1 {
		t.Error("Workers must return a copy")
	}
}

func TestHomogeneousConstructor(t *testing.T) {
	p, err := Homogeneous(7, 2.5, 3)
	if err != nil {
		t.Fatal(err)
	}
	if p.P() != 7 || p.TotalSpeed() != 17.5 {
		t.Errorf("unexpected homogeneous platform: %v", p)
	}
	if p.Worker(3).Bandwidth != 3 {
		t.Error("bandwidth not applied")
	}
	if _, err := Homogeneous(0, 1, 1); err == nil {
		t.Error("p=0 should fail")
	}
}

func TestGenerate(t *testing.T) {
	r := stats.NewRNG(1)
	p, err := Generate(50, stats.Uniform{Lo: 1, Hi: 100}, r)
	if err != nil {
		t.Fatal(err)
	}
	if p.P() != 50 {
		t.Fatalf("P = %d", p.P())
	}
	for _, s := range p.Speeds() {
		if s < 1 || s >= 100 {
			t.Errorf("speed %v out of range", s)
		}
	}
	// Determinism: same seed, same platform.
	p2, _ := Generate(50, stats.Uniform{Lo: 1, Hi: 100}, stats.NewRNG(1))
	for i, s := range p.Speeds() {
		if p2.Speeds()[i] != s {
			t.Fatal("Generate is not deterministic for a fixed seed")
		}
	}
}

func TestProfileParsingRoundTrip(t *testing.T) {
	for _, sp := range []SpeedProfile{ProfileHomogeneous, ProfileUniform, ProfileLogNormal, ProfileBimodal} {
		got, err := ParseProfile(sp.String())
		if err != nil || got != sp {
			t.Errorf("ParseProfile(%q) = %v, %v", sp.String(), got, err)
		}
	}
	if _, err := ParseProfile("nope"); err == nil {
		t.Error("unknown profile should fail")
	}
	if SpeedProfile(99).String() == "" {
		t.Error("unknown profile String should still render")
	}
}

func TestProfileDistributions(t *testing.T) {
	r := stats.NewRNG(2)
	if v := ProfileHomogeneous.Distribution(0).Sample(r); v != 1 {
		t.Errorf("homogeneous profile sample = %v, want 1", v)
	}
	d := ProfileBimodal.Distribution(16)
	for i := 0; i < 100; i++ {
		v := d.Sample(r)
		if v != 1 && v != 16 {
			t.Fatalf("bimodal(16) sample = %v", v)
		}
	}
	if ProfileUniform.Distribution(0).String() != "uniform[1,100]" {
		t.Error("uniform profile must be Uniform[1,100] per Figure 4(b)")
	}
	if ProfileLogNormal.Distribution(0).String() != "lognormal(0,1)" {
		t.Error("lognormal profile must be LogNormal(0,1) per Figure 4(c)")
	}
	if SpeedProfile(99).Distribution(0).Sample(r) != 1 {
		t.Error("unknown profile should fall back to constant 1")
	}
}

// Property: normalized speeds are positive and sum to 1 for any valid
// platform.
func TestNormalizedSpeedsProperty(t *testing.T) {
	f := func(raw []float64) bool {
		speeds := raw[:0]
		for _, s := range raw {
			if s > 1e-6 && s < 1e6 && !math.IsNaN(s) {
				speeds = append(speeds, s)
			}
		}
		if len(speeds) == 0 {
			return true
		}
		p, err := FromSpeeds(speeds)
		if err != nil {
			return false
		}
		sum := 0.0
		for _, x := range p.NormalizedSpeeds() {
			if x <= 0 || x > 1 {
				return false
			}
			sum += x
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	orig := mustNew(t, 1.5, 2.25, 9)
	b, err := json.Marshal(orig)
	if err != nil {
		t.Fatal(err)
	}
	var got Platform
	if err := json.Unmarshal(b, &got); err != nil {
		t.Fatal(err)
	}
	if got.P() != orig.P() || got.TotalSpeed() != orig.TotalSpeed() {
		t.Errorf("round trip lost data: %v vs %v", got.String(), orig.String())
	}
	for i := 0; i < orig.P(); i++ {
		if got.Worker(i) != orig.Worker(i) {
			t.Errorf("worker %d differs", i)
		}
	}
	// Invalid payloads are rejected by construction validation.
	var bad Platform
	if err := json.Unmarshal([]byte(`[{"Speed":-1,"Bandwidth":1}]`), &bad); err == nil {
		t.Error("negative speed should fail")
	}
	if err := json.Unmarshal([]byte(`{not json`), &bad); err == nil {
		t.Error("garbage should fail")
	}
}
