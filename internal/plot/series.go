// Package plot renders experiment results as ASCII line charts and
// machine-readable CSV. The paper's Figure 4 panels are gnuplot charts of
// "ratio to the communication lower bound" versus "number of processors"
// with error bars; stdlib-only Go has no plotting ecosystem, so this
// package is the substitution documented in DESIGN.md: identical series
// values, terminal rendering.
package plot

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Point is one (X, Y) sample with an optional symmetric error bar.
type Point struct {
	X, Y float64
	Err  float64 // standard deviation (0 for none)
}

// Series is a named sequence of points.
type Series struct {
	Name   string
	Points []Point
}

// Add appends a point to the series.
func (s *Series) Add(x, y, err float64) {
	s.Points = append(s.Points, Point{X: x, Y: y, Err: err})
}

// MinMax returns the bounding box of the series including error bars.
// Empty series yield an inverted box (+Inf mins, -Inf maxes).
func (s *Series) MinMax() (xmin, xmax, ymin, ymax float64) {
	xmin, ymin = math.Inf(1), math.Inf(1)
	xmax, ymax = math.Inf(-1), math.Inf(-1)
	for _, p := range s.Points {
		xmin = math.Min(xmin, p.X)
		xmax = math.Max(xmax, p.X)
		ymin = math.Min(ymin, p.Y-p.Err)
		ymax = math.Max(ymax, p.Y+p.Err)
	}
	return
}

// Chart is a collection of series with axis labels, rendered on a fixed
// character grid.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	Width  int // plot area width in columns (default 72)
	Height int // plot area height in rows (default 20)
	// LogY renders the y axis in log₁₀ scale (non-positive values are
	// clamped to the smallest positive datum). Useful when series span
	// orders of magnitude, like the Figure 4 ratio curves.
	LogY   bool
	Series []*Series
}

// AddSeries appends a series and returns it for chaining.
func (c *Chart) AddSeries(name string) *Series {
	s := &Series{Name: name}
	c.Series = append(c.Series, s)
	return s
}

// markers cycles through per-series glyphs.
var markers = []byte{'*', 'o', '+', 'x', '#', '@', '%', '&'}

// Render draws the chart. Each series gets a distinct marker; error bars
// are drawn as vertical '|' runs. The output is deterministic.
func (c *Chart) Render() string {
	w, h := c.Width, c.Height
	if w <= 0 {
		w = 72
	}
	if h <= 0 {
		h = 20
	}
	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	empty := true
	for _, s := range c.Series {
		if len(s.Points) == 0 {
			continue
		}
		empty = false
		x0, x1, y0, y1 := s.MinMax()
		xmin, xmax = math.Min(xmin, x0), math.Max(xmax, x1)
		ymin, ymax = math.Min(ymin, y0), math.Max(ymax, y1)
	}
	var b strings.Builder
	if c.Title != "" {
		fmt.Fprintf(&b, "%s\n", c.Title)
	}
	if empty {
		b.WriteString("(no data)\n")
		return b.String()
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	// yT maps data space to plotting space; yLabel inverts it for axis
	// annotations.
	yT := func(y float64) float64 { return y }
	yLabel := func(y float64) float64 { return y }
	if c.LogY {
		// Clamp non-positive values to the smallest positive datum.
		minPos := math.Inf(1)
		for _, s := range c.Series {
			for _, p := range s.Points {
				for _, v := range []float64{p.Y, p.Y - p.Err} {
					if v > 0 && v < minPos {
						minPos = v
					}
				}
			}
		}
		if math.IsInf(minPos, 1) {
			minPos = 1
		}
		yT = func(y float64) float64 {
			if y < minPos {
				y = minPos
			}
			return math.Log10(y)
		}
		yLabel = func(y float64) float64 { return math.Pow(10, y) }
		ymin, ymax = yT(ymin), yT(ymax)
	}
	if ymax == ymin {
		ymax = ymin + 1
	}
	grid := make([][]byte, h)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", w))
	}
	col := func(x float64) int {
		ccol := int(math.Round((x - xmin) / (xmax - xmin) * float64(w-1)))
		if ccol < 0 {
			ccol = 0
		}
		if ccol >= w {
			ccol = w - 1
		}
		return ccol
	}
	row := func(y float64) int {
		r := int(math.Round((ymax - yT(y)) / (ymax - ymin) * float64(h-1)))
		if r < 0 {
			r = 0
		}
		if r >= h {
			r = h - 1
		}
		return r
	}
	for si, s := range c.Series {
		m := markers[si%len(markers)]
		for _, p := range s.Points {
			ccol := col(p.X)
			if p.Err > 0 {
				top, bot := row(p.Y+p.Err), row(p.Y-p.Err)
				for r := top; r <= bot; r++ {
					if grid[r][ccol] == ' ' {
						grid[r][ccol] = '|'
					}
				}
			}
			grid[row(p.Y)][ccol] = m
		}
	}
	yAxisW := 10
	for r, line := range grid {
		var label string
		switch r {
		case 0:
			label = fmt.Sprintf("%9.3g", yLabel(ymax))
		case h - 1:
			label = fmt.Sprintf("%9.3g", yLabel(ymin))
		case (h - 1) / 2:
			label = fmt.Sprintf("%9.3g", yLabel((ymin+ymax)/2))
		default:
			label = strings.Repeat(" ", 9)
		}
		fmt.Fprintf(&b, "%s |%s\n", label, string(line))
	}
	fmt.Fprintf(&b, "%s+%s\n", strings.Repeat(" ", yAxisW), strings.Repeat("-", w))
	fmt.Fprintf(&b, "%s%-*.4g%*.4g\n", strings.Repeat(" ", yAxisW+1), w/2, xmin, w-w/2-1, xmax)
	if c.XLabel != "" || c.YLabel != "" {
		fmt.Fprintf(&b, "x: %s    y: %s\n", c.XLabel, c.YLabel)
	}
	for si, s := range c.Series {
		fmt.Fprintf(&b, "  %c %s\n", markers[si%len(markers)], s.Name)
	}
	return b.String()
}

// CSV emits the chart as comma-separated values with one row per distinct
// X value and columns "x, <series> mean, <series> sd, ...". Missing points
// are left blank. Rows are sorted by X.
func (c *Chart) CSV() string {
	xs := map[float64]bool{}
	for _, s := range c.Series {
		for _, p := range s.Points {
			xs[p.X] = true
		}
	}
	sorted := make([]float64, 0, len(xs))
	for x := range xs {
		sorted = append(sorted, x)
	}
	sort.Float64s(sorted)

	var b strings.Builder
	b.WriteString("x")
	for _, s := range c.Series {
		fmt.Fprintf(&b, ",%s,%s_sd", csvEscape(s.Name), csvEscape(s.Name))
	}
	b.WriteByte('\n')
	for _, x := range sorted {
		fmt.Fprintf(&b, "%g", x)
		for _, s := range c.Series {
			found := false
			for _, p := range s.Points {
				if p.X == x {
					fmt.Fprintf(&b, ",%g,%g", p.Y, p.Err)
					found = true
					break
				}
			}
			if !found {
				b.WriteString(",,")
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func csvEscape(s string) string {
	return strings.NewReplacer(",", "_", "\n", "_", "\"", "_").Replace(s)
}
