package core

import (
	"math"
	"testing"

	"nlfl/internal/matmul"
	"nlfl/internal/platform"
	"nlfl/internal/stats"
)

func TestExecuteOuterProductMatchesKernel(t *testing.T) {
	r := stats.NewRNG(41)
	for _, p := range []int{1, 3, 7} {
		pl, err := platform.Generate(p, stats.Uniform{Lo: 1, Hi: 10}, r)
		if err != nil {
			t.Fatal(err)
		}
		const n = 60
		plan, err := PlanOuterProduct(pl, n)
		if err != nil {
			t.Fatal(err)
		}
		a := stats.SampleN(stats.Uniform{Lo: -1, Hi: 1}, r, n)
		b := stats.SampleN(stats.Uniform{Lo: -1, Hi: 1}, r, n)
		got, reads, err := ExecuteOuterProduct(plan, a, b)
		if err != nil {
			t.Fatal(err)
		}
		want := matmul.VectorOuter(a, b)
		if !want.Equal(got, 1e-12) {
			t.Fatalf("p=%d: plan execution disagrees with the kernel", p)
		}
		// Element reads track the plan's volume accounting within grid
		// rounding: worker i reads (w+h)·n ± p elements.
		for i, rd := range reads {
			want := plan.Workers[i].DataVolume
			if math.Abs(float64(rd)-want) > float64(2*p+2) {
				t.Errorf("p=%d worker %d: %d reads vs planned %v", p, i, rd, want)
			}
		}
	}
}

func TestExecuteOuterProductValidation(t *testing.T) {
	pl, _ := platform.Homogeneous(2, 1, 1)
	plan, err := PlanOuterProduct(pl, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := ExecuteOuterProduct(plan, []float64{1, 2}, []float64{1}); err == nil {
		t.Error("mismatched lengths should fail")
	}
	if _, _, err := ExecuteOuterProduct(plan, nil, nil); err == nil {
		t.Error("empty vectors should fail")
	}
}
