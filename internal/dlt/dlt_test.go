package dlt

import (
	"math"
	"testing"
	"testing/quick"

	"nlfl/internal/dessim"
	"nlfl/internal/platform"
	"nlfl/internal/stats"
)

func randomPlatform(t *testing.T, seed int64, p int) *platform.Platform {
	t.Helper()
	r := stats.NewRNG(seed)
	ws := make([]platform.Worker, p)
	for i := range ws {
		ws[i] = platform.Worker{
			Speed:     0.5 + 5*r.Float64(),
			Bandwidth: 0.5 + 5*r.Float64(),
		}
	}
	pl, err := platform.New(ws)
	if err != nil {
		t.Fatal(err)
	}
	return pl
}

func TestOptimalParallelHomogeneous(t *testing.T) {
	p, _ := platform.Homogeneous(4, 1, 1)
	a, err := OptimalParallel(p, 100)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	for i, f := range a.Fractions {
		if math.Abs(f-0.25) > 1e-12 {
			t.Errorf("fraction %d = %v, want 0.25", i, f)
		}
	}
	// Makespan: each worker gets 25 units, c=w=1 → 25+25 = 50.
	if math.Abs(a.Makespan-50) > 1e-9 {
		t.Errorf("makespan = %v, want 50", a.Makespan)
	}
}

func TestOptimalParallelEqualFinishTimes(t *testing.T) {
	p := randomPlatform(t, 1, 9)
	const n = 1000
	a, err := OptimalParallel(p, n)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < p.P(); i++ {
		w := p.Worker(i)
		load := a.LoadOf(i, n)
		finish := w.CommTime(load) + w.LinearCompTime(load)
		if math.Abs(finish-a.Makespan) > 1e-9*a.Makespan {
			t.Errorf("worker %d finishes at %v, makespan %v", i, finish, a.Makespan)
		}
	}
}

func TestOptimalParallelMatchesSimulator(t *testing.T) {
	p := randomPlatform(t, 2, 7)
	const n = 500
	a, err := OptimalParallel(p, n)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := SimulatedMakespan(p, Chunks(a, n), dessim.ParallelLinks)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sim-a.Makespan) > 1e-9*a.Makespan {
		t.Errorf("simulated %v vs closed form %v", sim, a.Makespan)
	}
}

func TestOptimalParallelBeatsEqualSplit(t *testing.T) {
	p := randomPlatform(t, 3, 12)
	const n = 100
	opt, _ := OptimalParallel(p, n)
	eq := EqualSplit(p, n)
	if opt.Makespan > eq.Makespan+1e-9 {
		t.Errorf("optimal %v worse than equal split %v", opt.Makespan, eq.Makespan)
	}
	if err := eq.Validate(); err != nil {
		t.Error(err)
	}
}

func TestEqualSplitHomogeneousIsOptimal(t *testing.T) {
	p, _ := platform.Homogeneous(5, 2, 3)
	const n = 60
	opt, _ := OptimalParallel(p, n)
	eq := EqualSplit(p, n)
	if math.Abs(opt.Makespan-eq.Makespan) > 1e-9 {
		t.Errorf("homogeneous equal split %v should equal optimal %v", eq.Makespan, opt.Makespan)
	}
}

func TestOptimalOnePortEqualFinishTimes(t *testing.T) {
	p := randomPlatform(t, 4, 6)
	const n = 300
	a, err := OptimalOnePort(p, n, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	// Closed-form finish of worker order[k]:
	// Σ_{j≤k} α_j c_j n + α_k w_k n; all must equal the makespan.
	elapsed := 0.0
	for _, idx := range a.Order {
		w := p.Worker(idx)
		load := a.LoadOf(idx, n)
		elapsed += w.CommTime(load)
		finish := elapsed + w.LinearCompTime(load)
		if math.Abs(finish-a.Makespan) > 1e-9*a.Makespan {
			t.Errorf("worker %d finishes at %v, makespan %v", idx, finish, a.Makespan)
		}
	}
}

func TestOptimalOnePortMatchesSimulator(t *testing.T) {
	p := randomPlatform(t, 5, 8)
	const n = 700
	a, err := OptimalOnePort(p, n, nil)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := SimulatedMakespan(p, Chunks(a, n), dessim.OnePort)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sim-a.Makespan) > 1e-9*a.Makespan {
		t.Errorf("simulated %v vs closed form %v", sim, a.Makespan)
	}
}

func TestBestOnePortOrderSortsByBandwidth(t *testing.T) {
	ws := []platform.Worker{
		{Speed: 1, Bandwidth: 2},
		{Speed: 1, Bandwidth: 5},
		{Speed: 1, Bandwidth: 1},
	}
	p, _ := platform.New(ws)
	order := BestOnePortOrder(p)
	want := []int{1, 0, 2}
	for i := range order {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestBestOnePortOrderIsOptimalAmongPermutations(t *testing.T) {
	// Exhaustive check on 4 workers: the bandwidth order achieves the
	// minimal closed-form makespan over all 24 permutations.
	p := randomPlatform(t, 6, 4)
	const n = 100
	best, err := OptimalOnePort(p, n, nil)
	if err != nil {
		t.Fatal(err)
	}
	perms := permutations([]int{0, 1, 2, 3})
	for _, perm := range perms {
		a, err := OptimalOnePort(p, n, perm)
		if err != nil {
			t.Fatal(err)
		}
		if a.Makespan < best.Makespan-1e-9 {
			t.Errorf("order %v gives %v < best-order %v", perm, a.Makespan, best.Makespan)
		}
	}
}

func permutations(xs []int) [][]int {
	if len(xs) <= 1 {
		return [][]int{append([]int(nil), xs...)}
	}
	var out [][]int
	for i := range xs {
		rest := make([]int, 0, len(xs)-1)
		rest = append(rest, xs[:i]...)
		rest = append(rest, xs[i+1:]...)
		for _, tail := range permutations(rest) {
			out = append(out, append([]int{xs[i]}, tail...))
		}
	}
	return out
}

func TestOptimalOnePortRejectsBadOrder(t *testing.T) {
	p := randomPlatform(t, 7, 3)
	if _, err := OptimalOnePort(p, 10, []int{0, 1}); err == nil {
		t.Error("short order should fail")
	}
	if _, err := OptimalOnePort(p, 10, []int{0, 0, 1}); err == nil {
		t.Error("duplicate order should fail")
	}
	if _, err := OptimalOnePort(p, 10, []int{0, 1, 5}); err == nil {
		t.Error("out-of-range order should fail")
	}
	if _, err := OptimalOnePort(p, -1, nil); err == nil {
		t.Error("negative load should fail")
	}
	if _, err := OptimalParallel(p, -1); err == nil {
		t.Error("negative load should fail")
	}
}

func TestMultiRoundPipeliningHelps(t *testing.T) {
	// With non-trivial communication time, multi-round overlaps transfer
	// and compute, so its simulated makespan must not exceed single-round.
	p := randomPlatform(t, 8, 5)
	const n = 400
	a, _ := OptimalParallel(p, n)
	single, err := SimulatedMakespan(p, Chunks(a, n), dessim.ParallelLinks)
	if err != nil {
		t.Fatal(err)
	}
	multi, err := MultiRoundUniform(a, n, 10)
	if err != nil {
		t.Fatal(err)
	}
	multiMs, err := SimulatedMakespan(p, multi, dessim.ParallelLinks)
	if err != nil {
		t.Fatal(err)
	}
	if multiMs > single+1e-9 {
		t.Errorf("multi-round %v slower than single-round %v", multiMs, single)
	}
}

func TestMultiRoundPreservesTotalLoad(t *testing.T) {
	p := randomPlatform(t, 9, 4)
	a, _ := OptimalParallel(p, 100)
	chunks, err := MultiRoundUniform(a, 100, 7)
	if err != nil {
		t.Fatal(err)
	}
	total := 0.0
	for _, c := range chunks {
		total += c.Data
	}
	if math.Abs(total-100) > 1e-9 {
		t.Errorf("total data = %v, want 100", total)
	}
	if _, err := MultiRoundUniform(a, 100, 0); err == nil {
		t.Error("zero rounds should fail")
	}
}

func TestChunksRespectOnePortOrder(t *testing.T) {
	p := randomPlatform(t, 10, 5)
	a, _ := OptimalOnePort(p, 50, nil)
	chunks := Chunks(a, 50)
	for k, c := range chunks {
		if c.Worker != a.Order[k] {
			t.Fatalf("chunk %d targets %d, want order %v", k, c.Worker, a.Order)
		}
	}
}

// Property: for any valid platform, the optimal parallel allocation is
// feasible and its makespan lower-bounds both equal split and any random
// feasible allocation.
func TestOptimalParallelIsOptimalProperty(t *testing.T) {
	f := func(seed int64, np uint8) bool {
		p := int(np%16) + 1
		r := stats.NewRNG(seed)
		ws := make([]platform.Worker, p)
		for i := range ws {
			ws[i] = platform.Worker{Speed: 0.1 + 10*r.Float64(), Bandwidth: 0.1 + 10*r.Float64()}
		}
		pl, err := platform.New(ws)
		if err != nil {
			return false
		}
		const n = 100
		opt, err := OptimalParallel(pl, n)
		if err != nil || opt.Validate() != nil {
			return false
		}
		// Random feasible allocation: draw and normalize.
		fr := make([]float64, p)
		sum := 0.0
		for i := range fr {
			fr[i] = r.Float64() + 1e-3
			sum += fr[i]
		}
		worst := 0.0
		for i := range fr {
			fr[i] /= sum
			w := pl.Worker(i)
			finish := w.CommTime(fr[i]*n) + w.LinearCompTime(fr[i]*n)
			if finish > worst {
				worst = finish
			}
		}
		return opt.Makespan <= worst+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: one-port fractions are a valid distribution and the simulated
// makespan matches the closed form for arbitrary platforms and orders.
func TestOnePortClosedFormMatchesSimProperty(t *testing.T) {
	f := func(seed int64, np uint8) bool {
		p := int(np%8) + 1
		r := stats.NewRNG(seed)
		ws := make([]platform.Worker, p)
		for i := range ws {
			ws[i] = platform.Worker{Speed: 0.2 + 5*r.Float64(), Bandwidth: 0.2 + 5*r.Float64()}
		}
		pl, err := platform.New(ws)
		if err != nil {
			return false
		}
		order := r.Perm(p)
		const n = 50
		a, err := OptimalOnePort(pl, n, order)
		if err != nil || a.Validate() != nil {
			return false
		}
		sim, err := SimulatedMakespan(pl, Chunks(a, n), dessim.OnePort)
		if err != nil {
			return false
		}
		return math.Abs(sim-a.Makespan) <= 1e-6*a.Makespan
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestMultiRoundGeometricTotalsAndDegenerate(t *testing.T) {
	p := randomPlatform(t, 30, 5)
	a, _ := OptimalParallel(p, 100)
	chunks, err := MultiRoundGeometric(a, 100, 6, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	total := 0.0
	for _, c := range chunks {
		total += c.Data
	}
	if math.Abs(total-100) > 1e-9 {
		t.Errorf("total = %v, want 100", total)
	}
	// ratio = 1 must match the uniform splitter exactly.
	geo, err := MultiRoundGeometric(a, 100, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	uni, err := MultiRoundUniform(a, 100, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(geo) != len(uni) {
		t.Fatalf("lengths differ: %d vs %d", len(geo), len(uni))
	}
	for i := range geo {
		if math.Abs(geo[i].Data-uni[i].Data) > 1e-12 {
			t.Fatalf("chunk %d differs: %v vs %v", i, geo[i].Data, uni[i].Data)
		}
	}
	if _, err := MultiRoundGeometric(a, 100, 0, 2); err == nil {
		t.Error("zero rounds should fail")
	}
	if _, err := MultiRoundGeometric(a, 100, 3, 0); err == nil {
		t.Error("zero ratio should fail")
	}
}

func TestMultiRoundGeometricBeatsUniformOnCommHeavyPlatform(t *testing.T) {
	// Slow links relative to compute: in the latency-free bandwidth model
	// only the final installment's computation is un-overlappable, so a
	// decreasing schedule (ratio < 1) shrinks exactly that term and must
	// not lose to the uniform split.
	ws := make([]platform.Worker, 4)
	for i := range ws {
		ws[i] = platform.Worker{Speed: 4, Bandwidth: 1}
	}
	p, err := platform.New(ws)
	if err != nil {
		t.Fatal(err)
	}
	const n = 200.0
	a, _ := OptimalParallel(p, n)
	uni, err := MultiRoundUniform(a, n, 8)
	if err != nil {
		t.Fatal(err)
	}
	uniMs, err := SimulatedMakespan(p, uni, dessim.ParallelLinks)
	if err != nil {
		t.Fatal(err)
	}
	geo, err := MultiRoundGeometric(a, n, 8, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	geoMs, err := SimulatedMakespan(p, geo, dessim.ParallelLinks)
	if err != nil {
		t.Fatal(err)
	}
	if geoMs > uniMs+1e-9 {
		t.Errorf("decreasing geometric %v worse than uniform %v on comm-heavy platform", geoMs, uniMs)
	}
	// And the mis-shaped increasing schedule must indeed lose to the
	// decreasing one here — the shape matters.
	inc, err := MultiRoundGeometric(a, n, 8, 1.6)
	if err != nil {
		t.Fatal(err)
	}
	incMs, err := SimulatedMakespan(p, inc, dessim.ParallelLinks)
	if err != nil {
		t.Fatal(err)
	}
	if incMs <= geoMs {
		t.Errorf("increasing schedule %v unexpectedly beats decreasing %v", incMs, geoMs)
	}
}

func TestRoundCountTradeoffUnderLatency(t *testing.T) {
	// The classical multi-round trade-off: without per-chunk latency,
	// more rounds only help (pipelining); with latency, every extra round
	// pays the overhead again, so over-decomposing eventually loses.
	p, err := platform.Homogeneous(4, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	const n = 200.0
	a, _ := OptimalParallel(p, n)
	makespan := func(rounds int, lat float64) float64 {
		chunks, err := MultiRoundUniform(a, n, rounds)
		if err != nil {
			t.Fatal(err)
		}
		lats := []float64{lat, lat, lat, lat}
		tl, err := dessim.RunSingleRoundAffine(p, chunks, lats, dessim.OnePort)
		if err != nil {
			t.Fatal(err)
		}
		return tl.Makespan
	}
	// Latency-free: 32 rounds no worse than 4.
	if m32, m4 := makespan(32, 0), makespan(4, 0); m32 > m4+1e-9 {
		t.Errorf("without latency, 32 rounds (%v) should not lose to 4 (%v)", m32, m4)
	}
	// With heavy latency: 32 rounds pay 8× the overhead of 4 rounds and
	// must lose.
	if m32, m4 := makespan(32, 3), makespan(4, 3); m32 <= m4 {
		t.Errorf("with latency, 32 rounds (%v) should lose to 4 (%v)", m32, m4)
	}
	// And a single round loses to a few rounds even with latency —
	// pipelining still pays while the overhead is modest.
	if m1, m4 := makespan(1, 3), makespan(4, 3); m4 >= m1 {
		t.Errorf("with modest latency, 4 rounds (%v) should beat 1 round (%v)", m4, m1)
	}
}
