package trace_test

import (
	"strings"
	"testing"

	"nlfl/internal/trace"
)

// edgeExpect builds a minimal oracle that arms only the per-edge
// invariant: capacities plus (optionally) the booked per-edge volume
// ledger, with worker w's delivery spans swept over routes[w].
func edgeExpect(edges []trace.ExpectEdge, routes [][]int) *trace.Expect {
	return &trace.Expect{Edges: edges, Routes: routes, Tol: 1e-9}
}

func kinds(vs []trace.Violation) map[trace.ViolationKind]int {
	m := map[trace.ViolationKind]int{}
	for _, v := range vs {
		m[v.Kind]++
	}
	return m
}

// chainTimeline builds a well-formed 2-worker chain trace: worker 0 is
// fed over hop-0 alone; worker 1's payload crosses hop-0 (a relay
// through worker 0's position) and is delivered over hop-1. With
// hopShift = 0 the relay serializes after worker 0's transfer and the
// trace is clean; a negative hopShift slides the relay back so it
// double-books hop-0.
func chainTimeline(hopShift float64) *trace.Timeline {
	tl := trace.New(2)
	// hop-0 delivery to worker 0: 100 elems in [0,1] at rate 100.
	tl.Add(0, trace.Span{Kind: trace.Comm, Start: 0, End: 1, Data: 100, Task: 0})
	// worker 1's payload: relay across hop-0, then delivery over hop-1.
	tl.AddRelay(trace.Relay{Edge: 0, Dest: 1, Start: 1 + hopShift, End: 2 + hopShift, Data: 100, Task: 1})
	tl.Add(1, trace.Span{Kind: trace.Comm, Start: 2 + hopShift, End: 3 + hopShift, Data: 100, Task: 1})
	// Token compute so the timeline looks lived-in.
	tl.Add(0, trace.Span{Kind: trace.Compute, Start: 1, End: 2, Work: 10, Task: 0})
	tl.Add(1, trace.Span{Kind: trace.Compute, Start: 3 + hopShift, End: 4 + hopShift, Work: 10, Task: 1})
	return tl
}

func chainEdges() []trace.ExpectEdge {
	return []trace.ExpectEdge{
		{Name: "hop-0", Capacity: 100, Volume: 200, HasVolume: true},
		{Name: "hop-1", Capacity: 100, Volume: 100, HasVolume: true},
	}
}

// chainRoutes: deliveries sweep only the final hop; the relay record
// carries the hop-0 crossing for worker 1.
func chainRoutes() [][]int { return [][]int{{0}, {1}} }

// TestChainOracleCleanBaseline is the positive control: the well-formed
// chain timeline passes the armed per-edge oracle with zero violations.
func TestChainOracleCleanBaseline(t *testing.T) {
	vs := trace.Check(chainTimeline(0), edgeExpect(chainEdges(), chainRoutes()))
	if len(vs) != 0 {
		t.Fatalf("clean chain timeline flagged: %v", vs)
	}
}

// TestBrokenChainExecutorDoubleBooksHop models the bug the oracle
// exists to catch: a chain executor that forwards worker 1's payload
// across hop-0 while hop-0 is still busy delivering to worker 0. The
// two transfers overlap, the summed rate doubles the hop capacity, and
// the sweep must flag it.
func TestBrokenChainExecutorDoubleBooksHop(t *testing.T) {
	tl := chainTimeline(-0.5) // relay [0.5,1.5] overlaps delivery [0,1] on hop-0
	vs := trace.Check(tl, edgeExpect(chainEdges(), chainRoutes()))
	got := kinds(vs)
	if got[trace.EdgeCapacityExceeded] == 0 {
		t.Fatalf("double-booked hop not flagged; violations: %v", vs)
	}
	found := false
	for _, v := range vs {
		if v.Kind == trace.EdgeCapacityExceeded && strings.Contains(v.Detail, "hop-0") {
			found = true
		}
	}
	if !found {
		t.Fatalf("violation does not name the oversubscribed hop: %v", vs)
	}
}

// TestBrokenTwoSourceExecutorOverdrivesSource models a two-source
// executor that routes both of source 0's workers concurrently: each
// transfer alone fits the link, but together they push the edge to twice
// its capacity. The aggregate-capacity oracle of the star era
// (Expect.LinkCapacity) is structurally blind to this — there is no
// meaningful aggregate for disjoint links, so LinkCapacity is 0 and the
// old check armed nothing. Only the per-edge sweep catches it.
func TestBrokenTwoSourceExecutorOverdrivesSource(t *testing.T) {
	tl := trace.New(3)
	// Workers 0 and 1 share source-0 (cap 100) but ship concurrently.
	tl.Add(0, trace.Span{Kind: trace.Comm, Start: 0, End: 1, Data: 100, Task: 0})
	tl.Add(1, trace.Span{Kind: trace.Comm, Start: 0.25, End: 1.25, Data: 100, Task: 1})
	// Worker 2 is fed from source-1, legitimately.
	tl.Add(2, trace.Span{Kind: trace.Comm, Start: 0, End: 1, Data: 100, Task: 2})
	edges := []trace.ExpectEdge{
		{Name: "source-0", Capacity: 100, Volume: 200, HasVolume: true},
		{Name: "source-1", Capacity: 100, Volume: 100, HasVolume: true},
	}
	routes := [][]int{{0}, {0}, {1}}

	// The pre-topology oracle: per-edge structure unknown, LinkCapacity 0
	// (no aggregate exists) — the overdrive sails through.
	legacy := &trace.Expect{LinkCapacity: 0, Tol: 1e-9}
	for _, v := range trace.Check(tl, legacy) {
		if v.Kind == trace.LinkCapacityExceeded || v.Kind == trace.EdgeCapacityExceeded {
			t.Fatalf("aggregate-only oracle unexpectedly caught the overdrive: %v", v)
		}
	}

	vs := trace.Check(tl, edgeExpect(edges, routes))
	got := kinds(vs)
	if got[trace.EdgeCapacityExceeded] == 0 {
		t.Fatalf("overdriven source link not flagged; violations: %v", vs)
	}
	for _, v := range vs {
		if v.Kind == trace.EdgeCapacityExceeded && !strings.Contains(v.Detail, "source-0") {
			t.Fatalf("violation blames the wrong edge: %v", v)
		}
	}
}

// TestEdgeVolumeLedgerCatchesLostRelay: an executor that books a hop
// but never records the forwarding (or forwards without booking) leaks
// the per-edge ledger, even when no capacity peak results.
func TestEdgeVolumeLedgerCatchesLostRelay(t *testing.T) {
	tl := chainTimeline(0)
	tl.Relays = nil // drop the hop-0 forwarding record
	vs := trace.Check(tl, edgeExpect(chainEdges(), chainRoutes()))
	found := false
	for _, v := range vs {
		if v.Kind == trace.CommVolume && strings.Contains(v.Detail, "hop-0") {
			found = true
		}
	}
	if !found {
		t.Fatalf("lost relay not flagged by the edge volume ledger: %v", vs)
	}
}

// TestRelayStructuralChecks: malformed relay records are rejected even
// when no per-edge expectations are armed at all.
func TestRelayStructuralChecks(t *testing.T) {
	cases := []struct {
		name string
		r    trace.Relay
		want string
	}{
		{"negative edge", trace.Relay{Edge: -1, Dest: 0, Start: 0, End: 1, Data: 10}, "edge"},
		{"negative duration", trace.Relay{Edge: 0, Dest: 0, Start: 2, End: 1, Data: 10}, "negative duration"},
		{"negative data", trace.Relay{Edge: 0, Dest: 0, Start: 0, End: 1, Data: -10}, "data"},
	}
	for _, tc := range cases {
		tl := trace.New(1)
		tl.Add(0, trace.Span{Kind: trace.Comm, Start: 0, End: 5, Data: 10})
		tl.Relays = append(tl.Relays, tc.r) // bypass AddRelay's makespan update on purpose
		vs := trace.Check(tl, &trace.Expect{Tol: 1e-9})
		found := false
		for _, v := range vs {
			if v.Kind == trace.BadSpan && strings.Contains(strings.ToLower(v.Detail), tc.want) {
				found = true
			}
		}
		if !found {
			t.Errorf("%s: not flagged; violations: %v", tc.name, vs)
		}
	}
}

// TestRelayBeyondMakespanFlagged: a relay window past the recorded
// makespan means the timeline's bookkeeping is inconsistent.
func TestRelayBeyondMakespanFlagged(t *testing.T) {
	tl := trace.New(1)
	tl.Add(0, trace.Span{Kind: trace.Comm, Start: 0, End: 1, Data: 10})
	tl.Relays = append(tl.Relays, trace.Relay{Edge: 0, Dest: 0, Start: 1, End: 2, Data: 10})
	// Makespan stays 1 because the relay skipped AddRelay.
	vs := trace.Check(tl, &trace.Expect{Tol: 1e-9})
	if len(vs) == 0 {
		t.Fatal("relay past makespan not flagged")
	}
}

// TestZeroDurationTransferOnCappedEdge: shipping data in zero time over
// a capacity-limited edge is an infinite-rate violation, not a skipped
// event.
func TestZeroDurationTransferOnCappedEdge(t *testing.T) {
	tl := trace.New(1)
	tl.Add(0, trace.Span{Kind: trace.Comm, Start: 1, End: 1, Data: 50, Task: 0})
	edges := []trace.ExpectEdge{{Name: "link-0", Capacity: 100}}
	vs := trace.Check(tl, edgeExpect(edges, [][]int{{0}}))
	if kinds(vs)[trace.EdgeCapacityExceeded] == 0 {
		t.Fatalf("zero-duration transfer on a capped edge not flagged: %v", vs)
	}
}

// TestUnknownEdgeFlagged: a route or relay pointing at an edge index the
// expectation does not describe is a structural error.
func TestUnknownEdgeFlagged(t *testing.T) {
	tl := trace.New(1)
	tl.Add(0, trace.Span{Kind: trace.Comm, Start: 0, End: 1, Data: 10, Task: 0})
	tl.AddRelay(trace.Relay{Edge: 5, Dest: 0, Start: 0, End: 1, Data: 10})
	edges := []trace.ExpectEdge{{Name: "hop-0", Capacity: 100}}
	vs := trace.Check(tl, edgeExpect(edges, [][]int{{0}}))
	found := false
	for _, v := range vs {
		if v.Kind == trace.BadSpan && strings.Contains(v.Detail, "unknown edge") {
			found = true
		}
	}
	if !found {
		t.Fatalf("unknown edge index not flagged: %v", vs)
	}
}
