package stats

import (
	"fmt"
	"math"
	"strings"
)

// Histogram bins samples into equal-width buckets over [Lo, Hi]. Samples
// outside the range are clamped into the first/last bucket so that the
// total count always equals the number of Adds.
type Histogram struct {
	Lo, Hi float64
	Counts []int
	total  int
}

// NewHistogram creates a histogram with bins equal-width buckets spanning
// [lo, hi]. It panics for bins <= 0 or hi <= lo.
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if bins <= 0 {
		panic("stats: histogram needs at least one bin")
	}
	if hi <= lo {
		panic("stats: histogram range must be non-empty")
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins)}
}

// Add records one sample.
func (h *Histogram) Add(x float64) {
	bins := len(h.Counts)
	idx := int(math.Floor((x - h.Lo) / (h.Hi - h.Lo) * float64(bins)))
	if idx < 0 {
		idx = 0
	}
	if idx >= bins {
		idx = bins - 1
	}
	h.Counts[idx]++
	h.total++
}

// Total returns the number of samples recorded.
func (h *Histogram) Total() int { return h.total }

// BucketBounds returns the [lo, hi) bounds of bucket i.
func (h *Histogram) BucketBounds(i int) (float64, float64) {
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + float64(i)*w, h.Lo + float64(i+1)*w
}

// String renders the histogram as a bar chart, one line per bucket.
func (h *Histogram) String() string {
	var b strings.Builder
	maxCount := 0
	for _, c := range h.Counts {
		if c > maxCount {
			maxCount = c
		}
	}
	for i, c := range h.Counts {
		lo, hi := h.BucketBounds(i)
		bar := 0
		if maxCount > 0 {
			bar = c * 40 / maxCount
		}
		fmt.Fprintf(&b, "[%8.3g, %8.3g) %6d %s\n", lo, hi, c, strings.Repeat("#", bar))
	}
	return b.String()
}
