package runtime

import (
	"context"
	"math"
	"sync"
	"time"
)

// Link configures the bandwidth-modeled master link. The paper's
// Section 4 minimises communication *volume* because the master's
// outgoing links are the contended resource; this model makes that
// volume cost wall-clock time, in the one-port / bounded-bandwidth
// tradition of linear-network DLT (Gallet–Robert–Vivien) and shared-link
// network scheduling (Wu–Cao–Robertazzi). The zero value disables the
// model: chunk inputs are copied at memcpy speed, as before.
type Link struct {
	// ElemsPerSecond is the aggregate bandwidth of the master's outgoing
	// link in vector elements per second, shared one-port style by all
	// workers: transfers serialize on the master and each occupies the
	// link for Data/min(ElemsPerSecond, PerWorker[w]) seconds. A value
	// ≤ 0 leaves the shared link unconstrained.
	ElemsPerSecond float64
	// PerWorker optionally caps each worker's own incoming link
	// (elements per second; 0 or a missing entry means uncapped). When
	// set, it must have one entry per worker.
	PerWorker []float64
}

// enabled reports whether any bandwidth constraint is configured.
func (l Link) enabled() bool {
	if l.ElemsPerSecond > 0 {
		return true
	}
	for _, r := range l.PerWorker {
		if r > 0 {
			return true
		}
	}
	return false
}

// masterLink books transfers onto the modeled network. It keeps a
// next-free instant for the shared master port and for each worker's own
// link; a booking starts at the latest of "now" and the relevant
// next-free instants, lasts Data/bottleneck-rate, and pushes the
// next-free instants to its end. Workers sleep until their booked window
// has elapsed, so measured makespans include the modeled transfer time
// and recorded Comm spans tile the link timeline exactly — which is what
// lets trace.Check enforce the link-capacity invariant tightly.
type masterLink struct {
	mu    sync.Mutex
	agg   float64   // shared-port rate (elements/s; ≤0 = unconstrained)
	per   []float64 // per-worker rates (elements/s; ≤0 = uncapped)
	free  float64   // live-seconds instant the shared port is next free
	freeW []float64 // live-seconds instants each worker link is next free
	now   func() float64
	// slowdown, when set, scales the effective rate of a transfer to
	// worker w booked at live instant t (the chaos layer's LinkSlow
	// realization: factor < 1 stretches the booked window). Sampled once
	// at booking time; a window boundary crossing mid-transfer does not
	// re-rate the transfer.
	slowdown func(w int, t float64) float64
}

// newMasterLink builds the booking state for the configured link; nil
// when the model is disabled.
func newMasterLink(cfg Link, workers int, now func() float64) *masterLink {
	if !cfg.enabled() {
		return nil
	}
	per := make([]float64, workers)
	copy(per, cfg.PerWorker)
	return &masterLink{agg: cfg.ElemsPerSecond, per: per, freeW: make([]float64, workers), now: now}
}

// rateFor returns the bottleneck rate of a transfer to worker w
// (+Inf when neither the shared port nor the worker's link is capped).
func (ml *masterLink) rateFor(w int) float64 {
	r := math.Inf(1)
	if ml.agg > 0 {
		r = ml.agg
	}
	if p := ml.per[w]; p > 0 && p < r {
		r = p
	}
	return r
}

// book reserves the next window of elems elements for worker w and
// returns it in live-clock seconds. It never sleeps; pair it with wait.
func (ml *masterLink) book(w int, elems float64) (start, end float64) {
	rate := ml.rateFor(w)
	ml.mu.Lock()
	defer ml.mu.Unlock()
	start = ml.now()
	if ml.slowdown != nil {
		if f := ml.slowdown(w, start); f > 0 && f < 1 {
			rate *= f
		}
	}
	dur := elems / rate
	if ml.agg > 0 && ml.free > start {
		start = ml.free
	}
	if ml.per[w] > 0 && ml.freeW[w] > start {
		start = ml.freeW[w]
	}
	end = start + dur
	if ml.agg > 0 {
		ml.free = end
	}
	if ml.per[w] > 0 {
		ml.freeW[w] = end
	}
	return start, end
}

// wait sleeps until the booked window's end has passed on the live clock,
// or until ctx is cancelled — false means cancelled. Under a constrained
// one-port link a booked window can sit far in the future (every earlier
// booking serializes ahead of it), so an uninterruptible sleep here used
// to delay RunContext cancellation by the whole backlog; cancellation
// must instead abandon the window immediately.
func (ml *masterLink) wait(ctx context.Context, end float64) bool {
	d := end - ml.now()
	if d <= 0 {
		return ctx.Err() == nil
	}
	t := time.NewTimer(time.Duration(d * float64(time.Second)))
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}
