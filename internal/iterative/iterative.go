package iterative

import (
	"context"
	"errors"
	"fmt"
	"math"

	"nlfl/internal/faults"
	nrt "nlfl/internal/runtime"
	"nlfl/internal/trace"
)

// Typed controller failures.
var (
	// ErrStalled marks an iteration that hit MaxRounds with the residual
	// still above Tol.
	ErrStalled = errors.New("iterative: convergence stalled")
	// ErrNoWorkers marks a round with no surviving worker to plan over.
	ErrNoWorkers = errors.New("iterative: no surviving workers")
)

// Mode selects how each round's split is chosen.
type Mode string

// Planning modes.
const (
	// ModeStatic plans once from the assumed speeds and never re-plans
	// (deaths still shrink the plan to the survivors — the runtime would
	// otherwise re-derive the same thing round after round).
	ModeStatic Mode = "static"
	// ModeAdaptive re-plans from the online estimator — the closed loop.
	ModeAdaptive Mode = "adaptive"
	// ModeOracle re-plans from caller-supplied true rates each round —
	// the omniscient upper baseline the adaptive loop is measured against.
	ModeOracle Mode = "oracle"
)

// Options configures an iterative job.
type Options struct {
	// N is the vector length; each round computes the N×N outer product
	// x·xᵀ through the measured pool.
	N int
	// X0 is the start vector (length N, any nonzero); nil selects
	// SeedVector(N, 0.9999).
	X0 []float64
	// MaxRounds bounds the iteration; 0 selects 64. Hitting it with the
	// residual above Tol returns ErrStalled.
	MaxRounds int
	// Tol is the L2 residual declaring convergence; 0 selects 1e-9.
	Tol float64
	// Mode selects the planner ("" selects ModeAdaptive).
	Mode Mode

	// Speeds, WorkPerSecond, Burst, VerifyEvery and Link configure the
	// measured pool exactly as in runtime.Options.
	Speeds        []float64
	WorkPerSecond float64
	Burst         float64
	VerifyEvery   int
	Link          nrt.Link

	// ReplanEvery bounds the re-plan frequency: the adaptive controller
	// considers a new split every ReplanEvery rounds (0 selects 1). Drift
	// detection and worker death bypass the cadence — waiting out a
	// degraded fleet is the one thing a bounded controller must not do.
	ReplanEvery int
	// HysteresisGain is the minimum predicted relative makespan
	// improvement before a considered split replaces the current plan
	// (0 selects 0.02) — the anti-thrash gate: estimate jitter predicts
	// tiny gains forever, and re-planning on every wiggle churns the
	// plan for nothing.
	HysteresisGain float64
	// Gamma is the water-filling nonlinearity coefficient (0 = linear).
	Gamma float64
	// Estimator tunes the online estimator (adaptive mode).
	Estimator EstimatorConfig
	// FreezeAfter, when positive, freezes the estimator after that many
	// rounds — the lying-estimates fault injection for negative tests.
	FreezeAfter int

	// Chaos, when non-nil, supplies the fault scenario for each round
	// (times relative to the round's own start). Workers the controller
	// knows are dead get a crash-at-0 merged into every later round, so
	// death is persistent across rounds in every mode.
	Chaos func(round int) nrt.Chaos
	// OracleRates supplies the true per-worker rates (cells/s) for
	// ModeOracle.
	OracleRates func(round int) []float64
	// TraceTol is the relative tolerance of the per-round trace oracle;
	// 0 selects 0.05.
	TraceTol float64
}

// RoundResult is one round's record.
type RoundResult struct {
	Round    int
	Makespan float64
	// Residual is ‖x_{t+1} − x_t‖₂ after the round's update.
	Residual float64
	// Kappa[w] is the cells planned onto fleet worker w this round.
	Kappa []float64
	// Replanned marks a round that adopted a new split; Fallback one where
	// the controller wanted to re-plan but the estimator was not trusted.
	Replanned bool
	Fallback  bool
	// Degraded and Violations echo the round's recovery ledger and trace
	// oracle findings.
	Degraded   int
	Violations int
}

// Result is a finished (or stalled) iterative job.
type Result struct {
	Mode      Mode
	N         int
	Converged bool
	Rounds    []RoundResult
	// TotalMakespan sums the measured round makespans.
	TotalMakespan float64
	// Replans counts adopted re-plans after round 0; Fallbacks rounds kept
	// on the last trusted plan; Reanchors drift-detection events.
	Replans   int
	Fallbacks int
	Reanchors int
	// Dominant is the index the iteration converged to (argmax |x|).
	Dominant      int
	FinalResidual float64
	// DeadWorkers lists workers that died permanently along the way.
	DeadWorkers []int
	// CommTime sums every OK transfer's measured seconds across all
	// rounds — the evidence a constrained or throttled link was paid for.
	CommTime float64
	// Violations totals the per-round trace-oracle findings.
	Violations int
}

// SeedVector builds the canonical start vector: a spread pack of entries
// below two near-tied leaders — the runner-up at tie·max — so the number
// of rounds to convergence is set by the tie (entrywise squaring separates
// a ratio r as r^(2^t): tie 0.9999 ≈ 18 rounds at Tol 1e-9, 0.999 ≈ 15,
// 0.6 ≈ 6) and is identical for every planning mode.
func SeedVector(n int, tie float64) []float64 {
	x := make([]float64, n)
	for i := range x {
		x[i] = 0.1 + 0.7*float64(i%7)/7
	}
	dom, runner := n/3, (2*n)/3
	if runner == dom {
		runner = (dom + 1) % n
	}
	x[dom] = 1
	if runner != dom {
		x[runner] = tie
	}
	return x
}

// Run executes the iterative job: each round plans a split, runs the
// outer product x·xᵀ on the measured pool, audits the round's trace,
// feeds the measured spans back into the estimator, and advances the
// iterate. The returned Result is also populated (with the rounds so
// far) when the error is non-nil.
func Run(ctx context.Context, opts Options) (*Result, error) {
	p := len(opts.Speeds)
	if opts.N <= 0 {
		return nil, fmt.Errorf("iterative: invalid problem size %d", opts.N)
	}
	if p == 0 {
		return nil, fmt.Errorf("iterative: need at least one worker speed")
	}
	for i, s := range opts.Speeds {
		if s <= 0 || math.IsNaN(s) || math.IsInf(s, 0) {
			return nil, fmt.Errorf("iterative: worker %d has invalid speed %v", i, s)
		}
	}
	mode := opts.Mode
	if mode == "" {
		mode = ModeAdaptive
	}
	switch mode {
	case ModeStatic, ModeAdaptive, ModeOracle:
	default:
		return nil, fmt.Errorf("iterative: unknown mode %q (want static, adaptive or oracle)", mode)
	}
	if mode == ModeOracle && opts.OracleRates == nil {
		return nil, fmt.Errorf("iterative: ModeOracle needs OracleRates")
	}
	if opts.X0 != nil && len(opts.X0) != opts.N {
		return nil, fmt.Errorf("iterative: start vector sized %d for n=%d", len(opts.X0), opts.N)
	}
	maxRounds := opts.MaxRounds
	if maxRounds <= 0 {
		maxRounds = 64
	}
	tol := opts.Tol
	if tol <= 0 {
		tol = 1e-9
	}
	replanEvery := opts.ReplanEvery
	if replanEvery <= 0 {
		replanEvery = 1
	}
	hysteresis := opts.HysteresisGain
	if hysteresis <= 0 {
		hysteresis = 0.02
	}
	traceTol := opts.TraceTol
	if traceTol <= 0 {
		traceTol = 0.05
	}
	rate := opts.WorkPerSecond
	if rate <= 0 {
		rate = 2e6
	}

	x := opts.X0
	if x == nil {
		x = SeedVector(opts.N, 0.9999)
	}
	x = normalize(append([]float64(nil), x...))

	prior := make([]float64, p)
	for w, s := range opts.Speeds {
		prior[w] = s * rate
	}
	est, err := NewEstimator(opts.Estimator, prior)
	if err != nil {
		return nil, err
	}

	res := &Result{Mode: mode, N: opts.N}
	dead := make([]bool, p)
	load := float64(opts.N) * float64(opts.N)
	var plan *nrt.StrategyPlan
	var kappa []float64 // snapped cells per fleet worker of the current plan
	forceReplan := false

	for round := 0; round < maxRounds; round++ {
		if err := ctx.Err(); err != nil {
			return res, err
		}
		active := activeWorkers(dead)
		if len(active) == 0 {
			return res, fmt.Errorf("%w: all %d workers dead before round %d", ErrNoWorkers, p, round)
		}

		// Planning rates per mode: the frozen assumption, the estimator,
		// or the omniscient truth.
		var rates, comm []float64
		switch mode {
		case ModeStatic:
			rates = prior
		case ModeAdaptive:
			rates = est.Rates()
			comm = est.CommSeconds()
		case ModeOracle:
			rates = opts.OracleRates(round)
			if len(rates) != p {
				return res, fmt.Errorf("iterative: OracleRates(%d) returned %d rates for %d workers", round, len(rates), p)
			}
		}

		needPlan := plan == nil || forceReplan
		cadence := mode != ModeStatic && round%replanEvery == 0
		replanned, fallback := false, false
		if needPlan || cadence {
			if mode == ModeAdaptive && !needPlan && !est.Trusted(active) {
				fallback = true
				res.Fallbacks++
			} else {
				split, serr := waterFillActive(active, rates, comm, est, mode, opts.Gamma, load)
				if serr != nil {
					return res, serr
				}
				candPlan, candKappa, perr := planFromKappa(active, split.Kappa, p, opts.N)
				if perr != nil {
					return res, perr
				}
				adopt := needPlan
				if !adopt {
					cur := predictMakespan(kappa, rates, comm, dead)
					if split.Theta <= (1-hysteresis)*cur {
						adopt = true
					}
				}
				if adopt {
					if plan != nil {
						res.Replans++
					}
					plan, kappa = candPlan, candKappa
					replanned = plan != nil && round > 0
				}
			}
		}
		forceReplan = false

		ropts := nrt.Options{
			Speeds:        opts.Speeds,
			WorkPerSecond: rate,
			Burst:         opts.Burst,
			VerifyEvery:   opts.VerifyEvery,
			Link:          opts.Link,
			Chaos:         roundChaos(opts.Chaos, round, dead),
		}
		rep, rerr := nrt.RunContext(ctx, plan, x, x, ropts)
		if rerr != nil {
			return res, fmt.Errorf("iterative: round %d: %w", round, rerr)
		}
		violations := len(trace.Check(rep.Trace, rep.Expect(traceTol)))
		res.Violations += violations
		for _, spans := range rep.Trace.Spans {
			for _, s := range spans {
				if s.Kind == trace.Comm && s.Outcome == trace.OK {
					res.CommTime += s.Duration()
				}
			}
		}

		// Deaths are permanent across rounds: note them, exclude the
		// workers from the next plan, and re-merge a crash-at-0 so the
		// fleet's shape stays honest in every later round.
		for _, m := range rep.Trace.Marks {
			if m.Kind == trace.MarkCrash && m.Note == "permanent" && !dead[m.Worker] {
				dead[m.Worker] = true
				est.MarkDead(m.Worker)
				res.DeadWorkers = append(res.DeadWorkers, m.Worker)
				forceReplan = true
			}
		}
		if mode == ModeAdaptive {
			if opts.FreezeAfter > 0 && round+1 >= opts.FreezeAfter {
				est.Freeze()
			}
			if drifted := est.ObserveRound(rep.Trace); len(drifted) > 0 {
				forceReplan = true
			}
		}

		// Advance the iterate: diag(x·xᵀ) = x², renormalized. The update
		// is exact float64 arithmetic on the master, so the residual
		// sequence is identical under every planning mode and timing —
		// the determinism cross-check the bench gates on.
		next := make([]float64, opts.N)
		for i := 0; i < opts.N; i++ {
			next[i] = rep.Out.Data[i*opts.N+i]
		}
		next = normalize(next)
		residual := 0.0
		for i := range next {
			d := next[i] - x[i]
			residual += d * d
		}
		residual = math.Sqrt(residual)
		x = next

		res.Rounds = append(res.Rounds, RoundResult{
			Round:      round,
			Makespan:   rep.Makespan,
			Residual:   residual,
			Kappa:      append([]float64(nil), kappa...),
			Replanned:  replanned,
			Fallback:   fallback,
			Degraded:   rep.DegradedWorkers,
			Violations: violations,
		})
		res.TotalMakespan += rep.Makespan
		res.FinalResidual = residual
		if residual <= tol {
			res.Converged = true
			break
		}
	}
	res.Reanchors = est.Reanchors()
	res.Dominant = argmax(x)
	if !res.Converged {
		return res, fmt.Errorf("%w: residual %.3g after %d rounds (tol %.3g)", ErrStalled, res.FinalResidual, len(res.Rounds), tol)
	}
	return res, nil
}

// waterFillActive solves the round's split over the active workers.
func waterFillActive(active []int, rates, comm []float64, est *Estimator, mode Mode, gamma, load float64) (Split, error) {
	unit := make([]float64, len(active))
	var c, sigma []float64
	if comm != nil {
		c = make([]float64, len(active))
	}
	var stds []float64
	if mode == ModeAdaptive && gamma > 0 {
		stds = est.UnitStds()
		sigma = make([]float64, len(active))
	}
	for i, w := range active {
		if rates[w] <= 0 {
			return Split{}, fmt.Errorf("%w: worker %d rate %v", ErrBadParams, w, rates[w])
		}
		unit[i] = 1 / rates[w]
		if c != nil {
			c[i] = comm[w]
		}
		if sigma != nil {
			sigma[i] = stds[w]
		}
	}
	return WaterFill(Params{Gamma: gamma, Comm: c, Unit: unit, Sigma: sigma, Load: load})
}

// planFromKappa realizes a split as an owned PERI-SUM plan over the full
// fleet (dead workers excluded) and returns the snapped per-worker cells.
func planFromKappa(active []int, kappa []float64, p, n int) (*nrt.StrategyPlan, []float64, error) {
	weights := make([]float64, p)
	for i, w := range active {
		weights[w] = kappa[i]
	}
	plan, err := nrt.PlanWeighted("wf", weights, n)
	if err != nil {
		return nil, nil, fmt.Errorf("iterative: %w", err)
	}
	cells := make([]float64, p)
	for _, c := range plan.Chunks {
		cells[c.Owner] += float64(c.Cells())
	}
	return plan, cells, nil
}

// predictMakespan prices a kappa assignment under the given rates: the
// slowest worker's comm overhead plus compute time.
func predictMakespan(kappa, rates, comm []float64, dead []bool) float64 {
	worst := 0.0
	for w, k := range kappa {
		if k <= 0 || dead[w] || rates[w] <= 0 {
			continue
		}
		t := k / rates[w]
		if comm != nil {
			t += comm[w]
		}
		if t > worst {
			worst = t
		}
	}
	return worst
}

// roundChaos merges the caller's per-round scenario with crash-at-0
// events for workers already known dead, so death persists across rounds
// under every planning mode.
func roundChaos(base func(int) nrt.Chaos, round int, dead []bool) nrt.Chaos {
	var c nrt.Chaos
	if base != nil {
		c = base(round)
	}
	anyDead := false
	for _, d := range dead {
		if d {
			anyDead = true
			break
		}
	}
	if !anyDead {
		return c
	}
	events := append([]faults.Event(nil), c.Scenario.Events...)
	for w, d := range dead {
		if d {
			events = append(events, faults.Event{Kind: faults.Crash, Worker: w, Time: 0})
		}
	}
	c.Scenario.Events = events
	return c
}

// activeWorkers lists the not-yet-dead fleet indices.
func activeWorkers(dead []bool) []int {
	var out []int
	for w, d := range dead {
		if !d {
			out = append(out, w)
		}
	}
	return out
}

// normalize scales v to unit L2 norm in place (a zero vector is returned
// unchanged).
func normalize(v []float64) []float64 {
	s := 0.0
	for _, x := range v {
		s += x * x
	}
	if s == 0 {
		return v
	}
	inv := 1 / math.Sqrt(s)
	for i := range v {
		v[i] *= inv
	}
	return v
}

// argmax returns the index of the largest-magnitude entry.
func argmax(v []float64) int {
	best, bi := math.Inf(-1), 0
	for i, x := range v {
		if a := math.Abs(x); a > best {
			best, bi = a, i
		}
	}
	return bi
}
