// Package stats provides the random-number, probability-distribution and
// descriptive-statistics substrate used by every experiment in this
// repository.
//
// The paper's evaluation (Section 4.3) draws worker speeds from three
// distributions — homogeneous, Uniform[1,100] and LogNormal(0,1) — and
// reports means with standard-deviation error bars over 100 random trials.
// This package supplies those distributions with reproducible seeding, plus
// the streaming accumulators used to aggregate trial results.
package stats

import "math/rand"

// RNG is a deterministic pseudo-random source. All randomness in the
// repository flows through an explicit *RNG so that every experiment and
// test is reproducible from its seed.
type RNG struct {
	src *rand.Rand
}

// NewRNG returns a generator seeded with seed. Equal seeds yield identical
// streams on all platforms (math/rand's generator is platform-independent).
func NewRNG(seed int64) *RNG {
	return &RNG{src: rand.New(rand.NewSource(seed))}
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 { return r.src.Float64() }

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int { return r.src.Intn(n) }

// Int63 returns a uniform non-negative 63-bit integer.
func (r *RNG) Int63() int64 { return r.src.Int63() }

// NormFloat64 returns a standard normal variate (mean 0, stddev 1).
func (r *RNG) NormFloat64() float64 { return r.src.NormFloat64() }

// ExpFloat64 returns an exponential variate with rate 1.
func (r *RNG) ExpFloat64() float64 { return r.src.ExpFloat64() }

// Perm returns a uniform random permutation of [0, n).
func (r *RNG) Perm(n int) []int { return r.src.Perm(n) }

// Shuffle pseudo-randomizes the order of n elements using swap.
func (r *RNG) Shuffle(n int, swap func(i, j int)) { r.src.Shuffle(n, swap) }

// Split derives an independent generator from r. Successive calls yield
// generators with distinct, deterministic seeds; this lets one experiment
// seed hand out per-trial sources without correlating their streams.
func (r *RNG) Split() *RNG {
	return NewRNG(r.src.Int63())
}
