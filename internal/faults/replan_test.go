package faults

import (
	"math"
	"testing"
)

func TestReplanAfterSingleCrash(t *testing.T) {
	p := testPlatform(t, 4, 3, 2, 1)
	sc := Scenario{Events: []Event{{Kind: Crash, Worker: 3, Time: 10}}}
	rep, err := ReplanAfter(p, 100, sc, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Survivors != 3 {
		t.Errorf("survivors = %d, want 3", rep.Survivors)
	}
	if rep.Time != 10 {
		t.Errorf("replan time = %v, want 10", rep.Time)
	}
	// Comm_hom/k over the survivors can only add volume over the idealized
	// bound 2N·√(Σ sᵢ/s₁) over the survivors; the k-refinement pays about
	// a factor k of extra replication (the paper's no-free-lunch price for
	// the ≤1% imbalance), never more than k + 1.
	if rep.HomKBoundRatio < 1 {
		t.Errorf("HomK/SurvivorCommHom = %v, want ≥ 1", rep.HomKBoundRatio)
	}
	if rep.HomKBoundRatio > float64(rep.K)+1 {
		t.Errorf("HomK/SurvivorCommHom = %v, far above the k=%d refinement price", rep.HomKBoundRatio, rep.K)
	}
	// The survivor lower bound can never exceed the survivor Comm_hom.
	if rep.SurvivorLB > rep.SurvivorCommHom+1e-9 {
		t.Errorf("survivor LB %v above survivor Comm_hom %v", rep.SurvivorLB, rep.SurvivorCommHom)
	}
	if rep.K < 1 || rep.Blocks < rep.Survivors {
		t.Errorf("implausible layout: k=%d blocks=%d", rep.K, rep.Blocks)
	}
	if rep.HetVolume <= 0 {
		t.Errorf("het volume = %v", rep.HetVolume)
	}
	if rep.ExtraRatio != rep.HomKVolume/rep.FaultFreeCommHom {
		t.Errorf("extra ratio inconsistent: %v", rep.ExtraRatio)
	}
	if math.Abs(rep.ExtraVolume-(rep.HomKVolume-rep.FaultFreeCommHom)) > 1e-9 {
		t.Errorf("extra volume inconsistent: %v", rep.ExtraVolume)
	}
}

func TestReplanHomogeneousSurvivors(t *testing.T) {
	// On a homogeneous platform, killing workers shrinks Σ sᵢ/s₁ from p to
	// p−k, so the survivor Comm_hom is strictly below the fault-free one —
	// replication cost per worker is unchanged but fewer workers replicate.
	p := testPlatform(t, 1, 1, 1, 1, 1)
	sc := Scenario{Events: []Event{
		{Kind: Crash, Worker: 0, Time: 1},
		{Kind: Crash, Worker: 4, Time: 2},
	}}
	rep, err := ReplanAfter(p, 50, sc, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Survivors != 3 {
		t.Errorf("survivors = %d, want 3", rep.Survivors)
	}
	if rep.Time != 2 {
		t.Errorf("replan at %v, want last crash time 2", rep.Time)
	}
	wantFree := 2 * 50.0 * math.Sqrt(5)
	if math.Abs(rep.FaultFreeCommHom-wantFree) > 1e-9 {
		t.Errorf("fault-free Comm_hom = %v, want %v", rep.FaultFreeCommHom, wantFree)
	}
	wantSurv := 2 * 50.0 * math.Sqrt(3)
	if math.Abs(rep.SurvivorCommHom-wantSurv) > 1e-9 {
		t.Errorf("survivor Comm_hom = %v, want %v", rep.SurvivorCommHom, wantSurv)
	}
	if rep.SurvivorCommHom >= rep.FaultFreeCommHom {
		t.Error("homogeneous survivors should need less ideal volume than the full platform")
	}
}

func TestReplanTransientWorkersStillCount(t *testing.T) {
	// A transient outage that ends before the replan instant leaves the
	// worker in the survivor set.
	p := testPlatform(t, 2, 2, 2)
	avail, err := Scenario{Events: []Event{
		{Kind: Transient, Worker: 1, Time: 1, Until: 3},
		{Kind: Crash, Worker: 2, Time: 5},
	}}.Availability(p.P())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Replan(p, 64, avail, 5, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Survivors != 2 {
		t.Errorf("survivors = %d, want 2 (transient worker recovered)", rep.Survivors)
	}
}

func TestReplanErrors(t *testing.T) {
	p := testPlatform(t, 1, 1)
	if _, err := ReplanAfter(p, 10, Scenario{}, 0.01); err == nil {
		t.Error("no-crash scenario should refuse to re-plan")
	}
	if _, err := ReplanAfter(p, 10, Scenario{Events: []Event{
		{Kind: Transient, Worker: 0, Time: 1, Until: 2},
	}}, 0.01); err == nil {
		t.Error("transient-only scenario should refuse to re-plan")
	}
	sc := Scenario{Events: []Event{{Kind: Crash, Worker: 0, Time: 1}}}
	if _, err := ReplanAfter(p, -5, sc, 0.01); err == nil {
		t.Error("negative domain size accepted")
	}
	allDead := Scenario{Events: []Event{
		{Kind: Crash, Worker: 0, Time: 1},
		{Kind: Crash, Worker: 1, Time: 2},
	}}
	if _, err := ReplanAfter(p, 10, allDead, 0.01); err == nil {
		t.Error("replanning with zero survivors should error")
	}
}
