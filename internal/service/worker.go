package service

import (
	"context"
	"fmt"
	"math"
	"time"

	nrt "nlfl/internal/runtime"
	"nlfl/internal/trace"
)

// workerPoll bounds how long an idle worker waits before rechecking the
// schedule; wake channels usually preempt it.
const workerPoll = 2 * time.Millisecond

// worker is one fleet worker's persistent loop: it lives as long as the
// fleet, owns its token bucket across every job it serves, and asks the
// scheduler for a chunk whenever it is idle.
func (f *Fleet) worker(w int) {
	defer f.wg.Done()
	th := nrt.NewThrottle(f.speeds[w]*f.rate, f.cfg.Burst)
	bufs := &serveBufs{}
	for {
		if f.ctx.Err() != nil {
			return
		}
		asg, ok := f.next(w)
		if !ok {
			if !sleepWake(f.ctx, f.wake[w], workerPoll) {
				return
			}
			continue
		}
		f.serve(w, asg.j, asg.c, th, bufs)
		f.finishServe(asg.j)
	}
}

// finishServe settles one in-flight chunk: when the last one drains and
// every cell is committed, the job completes. Terminal jobs (failed,
// cancelled, fleet-closed) were finalized eagerly and just drain.
func (f *Fleet) finishServe(j *job) {
	f.mu.Lock()
	j.serving--
	if !j.terminal() && j.cellsLeft == 0 && j.serving == 0 {
		f.finalizeLocked(j, nil)
	}
	f.mu.Unlock()
}

// serveBufs are one worker's reusable staging buffers.
type serveBufs struct {
	a, b, scratch []float64
}

// serve runs one leased chunk end to end: ship the inputs over the
// shared link (retrying job-scoped drops with capped backoff), stall
// through job-scoped transient outages, compute into a private scratch
// at the throttled (possibly straggler-scaled) rate with the job-scoped
// crash instant bounding the token wait, then race for the
// first-writer-wins commit. Every fault consequence lands on job j's
// ledgers alone.
func (f *Fleet) serve(w int, j *job, c nrt.Chunk, th *nrt.Throttle, bufs *serveBufs) {
	data := float64(c.Data())
	cells := float64(c.Cells())
	crashAt := math.Inf(1)
	if j.chaos != nil {
		crashAt = j.chaos.crashAt[w]
	}

	// Ship, retrying dropped transfers. A drop still occupies the booked
	// window before the loss is noticed (the faults.LinkDrop contract).
	retries := 0
	backoff := j.backoff[0]
	for {
		t0 := f.now()
		rel := t0 - j.startAt
		if rel >= crashAt {
			f.killServing(j, w, 0, 0, 0, 0, false)
			return
		}
		dropped := j.chaos != nil && j.chaos.dropTransfer(w, rel)
		var t1 float64
		var relays []nrt.Window
		if f.net.Constrained(w) {
			var del nrt.Window
			del, relays = f.net.Book(w, data)
			t0, t1 = del.Start, del.End
			if !dropped {
				bufs.a = append(bufs.a[:0], j.a[c.RowLo:c.RowHi]...)
				bufs.b = append(bufs.b[:0], j.b[c.ColLo:c.ColHi]...)
			}
			if !f.net.Wait(f.ctx, t1) {
				return // fleet shutdown mid-transfer
			}
		} else {
			if !dropped {
				bufs.a = append(bufs.a[:0], j.a[c.RowLo:c.RowHi]...)
				bufs.b = append(bufs.b[:0], j.b[c.ColLo:c.ColHi]...)
			}
			t1 = f.now()
		}
		f.mu.Lock()
		if j.terminal() {
			f.mu.Unlock()
			return
		}
		outcome := trace.OK
		if dropped {
			outcome = trace.Dropped
		}
		// Intermediate hops are recorded for dropped attempts too: the
		// payload crossed them before the loss was noticed at delivery.
		for _, h := range relays {
			j.tl.AddRelay(trace.Relay{Edge: h.Edge, Dest: w, Start: h.Start, End: h.End, Data: data, Task: c.Task})
		}
		j.tl.Add(w, trace.Span{Kind: trace.Comm, Start: t0, End: t1, Data: data, Task: c.Task, Outcome: outcome})
		j.dataShipped += data
		if dropped {
			j.wastedData += data
			j.retried++
			j.tl.Mark(trace.Marker{Kind: trace.MarkDrop, Worker: w, Time: t1, Note: fmt.Sprintf("task %d", c.Task)})
		}
		f.mu.Unlock()
		if !dropped {
			break
		}
		retries++
		if retries > j.maxRetries {
			f.mu.Lock()
			f.finalizeLocked(j, fmt.Errorf("%w: worker %d lost chunk %d on %d consecutive transfer attempts", ErrJobFailed, w, c.Task, retries))
			f.mu.Unlock()
			return
		}
		if !sleepSeconds(f.ctx, backoff) {
			return
		}
		backoff = math.Min(backoff*2, j.backoff[1])
	}

	// Job-scoped transient outage: stall until the window clears, unless
	// the crash instant lands first.
	if j.chaos != nil {
		for {
			rel := f.now() - j.startAt
			if rel >= crashAt {
				f.killServing(j, w, data, 0, 0, 0, false)
				return
			}
			until, paused := j.chaos.pausedUntil(w, rel)
			if !paused {
				break
			}
			if !sleepSeconds(f.ctx, math.Min(until, crashAt)-rel) {
				return
			}
		}
	}

	// Compute into a private scratch: speculative duplicates run
	// concurrently, so only the commit winner may touch j.out.
	t0 := f.now()
	scale := 1.0
	budget := time.Duration(-1)
	if j.chaos != nil {
		rel := t0 - j.startAt
		scale = j.chaos.computeScale(w, rel)
		if !math.IsInf(crashAt, 1) {
			budget = time.Duration(math.Max(0, crashAt-rel) * float64(time.Second))
		}
	}
	finished := th.AcquireWithin(cells/scale, budget)
	if finished {
		if cap(bufs.scratch) < c.Cells() {
			bufs.scratch = make([]float64, c.Cells())
		}
		bufs.scratch = bufs.scratch[:c.Cells()]
		nrt.FillRect(bufs.scratch, bufs.a, bufs.b, c)
	}
	t1 := f.now()
	if !finished || t1-j.startAt >= crashAt {
		f.killServing(j, w, data, cells, t0, t1, true)
		return
	}

	f.mu.Lock()
	won, specWin := f.commitLocked(j, w, c)
	if !won {
		if !j.terminal() {
			j.tl.Add(w, trace.Span{Kind: trace.Compute, Start: t0, End: t1, Work: cells, Task: c.Task, Outcome: trace.Wasted})
			j.wastedData += data
			j.wastedWork += cells
		}
		f.mu.Unlock()
		return
	}
	// Copy the scratch out while still holding the lock: once finishServe
	// observes the last in-flight chunk drained, finalize must already
	// see the full output.
	nrt.CommitRect(j.out, bufs.scratch, c)
	j.tl.Add(w, trace.Span{Kind: trace.Compute, Start: t0, End: t1, Work: cells, Task: c.Task})
	j.committedCells += cells
	j.committedVol += data
	if specWin {
		j.specWins++
	}
	f.ledgerLocked(j.tenant).ServedCells += cells
	f.mu.Unlock()
}

// killServing realizes worker w's job-scoped crash while it was serving
// a chunk: the shipped data is wasted, a Killed compute span records the
// destroyed work when the crash landed mid-compute, and jobDeathLocked
// reclaims everything w held for j.
func (f *Fleet) killServing(j *job, w int, inflightData, killedCells, t0, t1 float64, midCompute bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	// Account the in-flight loss even if a scheduling step already marked
	// w dead for j (housekeeping fires due crashes lazily): only this
	// goroutine knows what was shipped for the chunk that died with it.
	if !j.terminal() {
		j.wastedData += inflightData
		if midCompute {
			j.tl.Add(w, trace.Span{Kind: trace.Compute, Start: t0, End: t1, Work: killedCells, Outcome: trace.Killed})
			j.lostWork += killedCells
		}
	}
	f.jobDeathLocked(j, w)
}

// sleepWake waits for a wake signal, the poll tick, or shutdown; false
// means the fleet is closing.
func sleepWake(ctx context.Context, wake <-chan struct{}, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-wake:
		return true
	case <-t.C:
		return true
	}
}

// sleepSeconds sleeps d seconds or until shutdown; false means shutdown.
func sleepSeconds(ctx context.Context, d float64) bool {
	if d <= 0 {
		return ctx.Err() == nil
	}
	t := time.NewTimer(time.Duration(d * float64(time.Second)))
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}
