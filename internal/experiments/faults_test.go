package experiments

import (
	"encoding/json"
	"testing"

	"nlfl/internal/platform"
)

// The ISSUE's acceptance criterion: under a single permanent crash the
// demand-driven executor degrades gracefully (inflation bounded by the
// re-executed in-flight chunks) while single-round DLT loses the dead
// worker's entire allocation; the re-planner reports its volume against
// the survivor bound 2N·√(Σ sᵢ/s₁).
func TestFaultSweepAcceptance(t *testing.T) {
	cfg := DefaultFaultSweepConfig()
	cfg.Crashes = []int{0, 1, 2}
	rows, err := FaultSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows, want 3", len(rows))
	}

	clean := rows[0]
	if clean.Metrics.MakespanInflation != 1 || clean.Metrics.Degraded() {
		t.Errorf("zero crashes should be the clean baseline: %+v", clean.Metrics)
	}
	if clean.Metrics.DLTLostFraction != 0 || clean.Survivors != cfg.P {
		t.Errorf("zero crashes lost work: %+v", clean)
	}

	one := rows[1]
	if !one.Metrics.Degraded() {
		t.Error("a permanent crash should measurably degrade the run")
	}
	if one.Metrics.MakespanInflation <= 1 {
		t.Errorf("inflation = %v, want > 1", one.Metrics.MakespanInflation)
	}
	// Graceful degradation: the demand-driven pool loses at most the
	// in-flight chunks (one per crash, plus speculative copies — none
	// here), never a worker's whole future allocation.
	if one.DDLostWork > cfg.TaskWork {
		t.Errorf("demand-driven lost %v work, more than one in-flight chunk (%v)", one.DDLostWork, cfg.TaskWork)
	}
	// Single-round DLT forfeits the victim's entire allocation: the lost
	// fraction equals the victim's normalized speed, which the demand-
	// driven loss undercuts by a wide margin.
	if one.Metrics.DLTLostFraction <= 0 {
		t.Error("single-round DLT should lose the dead worker's allocation")
	}
	if one.DDLostWork >= one.DLTLostWork {
		t.Errorf("demand-driven lost %v, single-round %v: robustness gap missing", one.DDLostWork, one.DLTLostWork)
	}

	// Re-planner: volume reported against the survivor bound, which the
	// k-refined plan exceeds by construction.
	for _, row := range rows[1:] {
		if row.Survivors != cfg.P-row.Metrics.Crashes {
			t.Errorf("%d crashes: survivors = %d", row.Metrics.Crashes, row.Survivors)
		}
		if row.SurvivorCommHom <= 0 || row.ReplanVolume <= 0 {
			t.Errorf("replanner produced empty volumes: %+v", row)
		}
		if row.Metrics.ReplanVolumeRatio < 1 {
			t.Errorf("replan volume %v below the survivor bound %v", row.ReplanVolume, row.SurvivorCommHom)
		}
	}

	// Deterministic seeds: the whole sweep reproduces bit-identically.
	again, err := FaultSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ja, _ := json.Marshal(rows)
	jb, _ := json.Marshal(again)
	if string(ja) != string(jb) {
		t.Error("identical configs produced different sweeps")
	}
}

func TestFaultSweepValidation(t *testing.T) {
	cfg := DefaultFaultSweepConfig()
	cfg.Crashes = []int{cfg.P}
	if _, err := FaultSweep(cfg); err == nil {
		t.Error("crashing every worker should be rejected")
	}
	cfg = DefaultFaultSweepConfig()
	cfg.P = 1
	if _, err := FaultSweep(cfg); err == nil {
		t.Error("single-worker sweep should be rejected")
	}
	cfg = DefaultFaultSweepConfig()
	cfg.TaskWork = 0
	if _, err := FaultSweep(cfg); err == nil {
		t.Error("zero-work tasks should be rejected")
	}
	cfg = DefaultFaultSweepConfig()
	cfg.Eps = 0
	if _, err := FaultSweep(cfg); err == nil {
		t.Error("zero imbalance target should be rejected")
	}
}

func TestFaultSweepHomogeneousProfile(t *testing.T) {
	cfg := DefaultFaultSweepConfig()
	cfg.Profile = platform.ProfileHomogeneous
	cfg.Crashes = []int{1}
	rows, err := FaultSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Homogeneous platform: the dead worker held exactly 1/P of the
	// single-round load.
	want := 1.0 / float64(cfg.P)
	if got := rows[0].Metrics.DLTLostFraction; got < want-1e-9 || got > want+1e-9 {
		t.Errorf("homogeneous DLT lost fraction = %v, want %v", got, want)
	}
}
