package runtime

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"
)

// TestRunContextCancelMidTransfer is the regression test for the hang
// this repository used to have: masterLink.wait slept with an
// uninterruptible time.Sleep, so under a constrained one-port link a
// cancelled run still waited out its entire booked transfer backlog
// (seconds here, arbitrarily long in general) before returning. The
// ctx-aware wait must abandon the booked window immediately.
func TestRunContextCancelMidTransfer(t *testing.T) {
	const n = 64
	a, b := linkVectors(n)
	plan := gridPlan(t, n, 4) // 16 chunks × 32 elements each
	// 100 elements/s: one chunk's inputs take ~0.32 s on the wire, and
	// the one-port booking queues the rest behind it — the full backlog
	// is ~20 s. Cancellation at 20 ms must not wait for any of it.
	opts := Options{
		Speeds:        []float64{1, 1},
		WorkPerSecond: 1e8,
		Link:          Link{ElemsPerSecond: 100},
	}

	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	start := time.Now()
	go func() {
		_, err := RunContext(ctx, plan, a, b, opts)
		done <- err
	}()
	time.Sleep(20 * time.Millisecond) // mid-transfer: well inside chunk 1
	cancel()

	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled run returned %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("RunContext did not return within 2s of cancellation (booked-window sleep not interruptible)")
	}
	if took := time.Since(start); took > time.Second {
		t.Errorf("cancellation took %v, want well under the ~20s transfer backlog", took)
	}

	// No leaked workers: the goroutine count settles back to baseline.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutines leaked: %d before, %d after cancellation", before, runtime.NumGoroutine())
}

// TestRunContextCancelChaosMidTransfer covers the chaos path's use of
// the same booked-window wait.
func TestRunContextCancelChaosMidTransfer(t *testing.T) {
	const n = 64
	a, b := linkVectors(n)
	plan := gridPlan(t, n, 4)
	opts := Options{
		Speeds:        []float64{1, 1},
		WorkPerSecond: 1e8,
		Link:          Link{ElemsPerSecond: 100},
		Chaos:         Chaos{SpeculateAfter: 10}, // forces the resilient path, no faults fire
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := RunContext(ctx, plan, a, b, opts)
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled chaos run returned %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("chaos RunContext did not return within 2s of cancellation")
	}
}
