package trace

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// ViolationKind classifies what Check found wrong.
type ViolationKind int

// Violation kinds.
const (
	// BadSpan is a malformed span: NaN/Inf bounds, negative duration,
	// negative start, or negative data/work, or a span ending past the
	// recorded makespan.
	BadSpan ViolationKind = iota
	// OverlapCompute is two compute spans sharing CPU time on one worker —
	// the booking bug a broken executor exhibits first.
	OverlapCompute
	// OverlapComm is two transfers sharing one worker's link.
	OverlapComm
	// NonMonotone is a worker's span sequence going backwards in time
	// (per kind), or a marker at an invalid time.
	NonMonotone
	// WorkConservation is a broken work ledger: processed + unprocessed ≠
	// total, or the traced compute spans disagreeing with the executor's
	// reported totals.
	WorkConservation
	// CommVolume is a measured communication volume disagreeing with the
	// executor's shipping ledger or with an analytic bound
	// (Comm_hom/Comm_het/survivor bound).
	CommVolume
	// ImbalanceExceeded is a compute-time imbalance above the target
	// (Section 4.3's ≤1% rule for Comm_hom/k).
	ImbalanceExceeded
	// LinkCapacityExceeded is an instant at which the summed transfer
	// rate of the open comm spans exceeds the master link's aggregate
	// bandwidth — a run shipping data faster than the modeled network
	// admits.
	LinkCapacityExceeded
	// DuplicateCommit is one task committed (OK Compute span) more than
	// once — a broken first-writer-wins race under retries/speculation.
	// Losing copies must be recorded Wasted, crashed ones Killed; exactly
	// one OK span per task may exist.
	DuplicateCommit
	// EdgeCapacityExceeded is an instant at which one topology edge's
	// summed transfer rate — delivery spans routed over it plus relay
	// windows occupying it — exceeds that edge's capacity. This is the
	// per-edge generalization of LinkCapacityExceeded: it audits every
	// hop of a chain and every source link of a multi-source network,
	// not just the master's aggregate port.
	EdgeCapacityExceeded
)

// String implements fmt.Stringer.
func (k ViolationKind) String() string {
	switch k {
	case BadSpan:
		return "bad-span"
	case OverlapCompute:
		return "overlap-compute"
	case OverlapComm:
		return "overlap-comm"
	case NonMonotone:
		return "non-monotone"
	case WorkConservation:
		return "work-conservation"
	case CommVolume:
		return "comm-volume"
	case ImbalanceExceeded:
		return "imbalance"
	case LinkCapacityExceeded:
		return "link-capacity"
	case DuplicateCommit:
		return "duplicate-commit"
	case EdgeCapacityExceeded:
		return "edge-capacity"
	default:
		return fmt.Sprintf("violation(%d)", int(k))
	}
}

// Violation is one broken invariant.
type Violation struct {
	Kind ViolationKind
	// Worker is the offending worker (-1 for run-global violations).
	Worker int
	// Task is the offending task (-1 when not applicable).
	Task int
	// Detail is the human-readable specifics.
	Detail string
}

// String implements fmt.Stringer.
func (v Violation) String() string {
	loc := ""
	if v.Worker >= 0 {
		loc = fmt.Sprintf(" worker %d", v.Worker)
	}
	if v.Task >= 0 {
		loc += fmt.Sprintf(" task %d", v.Task)
	}
	return fmt.Sprintf("%s:%s %s", v.Kind, loc, v.Detail)
}

// BoundKind selects how Expect.Bound constrains the measured volume.
type BoundKind int

// Bound kinds.
const (
	// BoundNone skips the analytic-bound check.
	BoundNone BoundKind = iota
	// BoundExact requires measured == Bound within Tol (relative) — the
	// Comm_hom closed form on homogeneous platforms.
	BoundExact
	// BoundUpper requires measured ≤ Bound·(1+Tol).
	BoundUpper
	// BoundLower requires measured ≥ Bound·(1−Tol) — e.g. the survivor
	// bound 2N·√(Σsᵢ/s₁) that any realizable re-plan must pay at least.
	BoundLower
)

// Expect carries the executor-reported ledger and analytic bounds Check
// verifies the timeline against. The zero value checks structure only.
type Expect struct {
	// HasWork enables the work-conservation checks below.
	HasWork bool
	// TotalWork is the N-equivalents submitted to the run.
	TotalWork float64
	// ProcessedWork is the work completed, each pool unit counted once
	// (winning copies only).
	ProcessedWork float64
	// UnprocessedWork is the pool work that never completed (a static
	// schedule's forfeited allocation; 0 for a resilient run that
	// finished). Conservation: Processed + Unprocessed = Total.
	UnprocessedWork float64
	// LostWork is the work destroyed mid-run by crashes (overhead beyond
	// TotalWork for executors that re-execute). Traced Killed spans may
	// undercount it (work lost before any span was cut) but never exceed
	// it.
	LostWork float64
	// WastedWork is the work burned by losing speculative copies.
	WastedWork float64

	// HasComm enables the shipping-ledger check: the timeline's total
	// comm volume must equal ShippedData within Tol.
	HasComm bool
	// ShippedData is the executor-reported total data shipped, waste
	// included.
	ShippedData float64

	// Bound is the analytic communication-volume reference (Comm_hom,
	// Comm_het, survivor bound); BoundKind selects the comparison and
	// BoundName labels the violation.
	Bound     float64
	BoundKind BoundKind
	BoundName string

	// ImbalanceTarget, when positive, caps the compute-time imbalance
	// (the paper's Comm_hom/k rule uses 0.01).
	ImbalanceTarget float64

	// ExactlyOnce, when set, requires every task id (≥ 0) to appear in at
	// most one OK Compute span across the whole timeline. Retries,
	// speculation and reclamation may re-run a task any number of times,
	// but only one copy may commit; the rest must be Wasted or Killed.
	ExactlyOnce bool

	// LinkCapacity, when positive, is the aggregate master-link bandwidth
	// in data units per second. Check sweeps every comm span (each open
	// span contributing its average rate Data/Duration) and flags any
	// instant whose summed rate exceeds the capacity — the one-port /
	// bounded-bandwidth invariant. A zero-duration span carrying data is
	// an infinite-rate transfer and always violates.
	LinkCapacity float64

	// Edges, when non-empty, arms the per-edge invariants: for every
	// edge, a capacity sweep-line over the traffic occupying it (delivery
	// Comm spans routed via Routes plus relay windows) and — when
	// HasVolume is set — a volume ledger against the executor's per-edge
	// booking totals. Edge index is the topology edge id.
	Edges []ExpectEdge
	// Routes[w] lists the edge ids worker w's delivery Comm spans occupy.
	// A circuit-switched route (star) lists every edge the transfer holds
	// simultaneously; a store-and-forward route (chain) lists only the
	// final delivery hop — the earlier hops appear as relay windows. A
	// nil row means worker w's transfers are unconstrained (memcpy path)
	// and occupy no modeled edge.
	Routes [][]int

	// Tol is the relative tolerance for every numeric comparison
	// (default 1e-9).
	Tol float64
}

// ExpectEdge is one topology edge the per-edge invariants audit.
type ExpectEdge struct {
	// Name labels the edge in violations ("hop-3", "source-1").
	Name string
	// Capacity is the edge bandwidth in data units per second; a
	// non-positive capacity disables the sweep for this edge (uncapped).
	Capacity float64
	// Volume is the executor-reported data booked onto this edge
	// (drops included); checked only when HasVolume is set.
	Volume float64
	// HasVolume enables the per-edge volume ledger. Leave it unset when
	// the expectation covers a traffic subset (one job of a shared
	// fleet): a capacity sweep over a subset is sound — the full traffic
	// can only be worse — but a volume ledger is not.
	HasVolume bool
}

// tolerance returns the effective relative tolerance.
func (e *Expect) tolerance() float64 {
	if e == nil || e.Tol <= 0 {
		return 1e-9
	}
	return e.Tol
}

// approxEqual reports a ≈ b within relative tolerance tol.
func approxEqual(a, b, tol float64) bool {
	if a == b {
		return true
	}
	return math.Abs(a-b) <= tol*(math.Abs(a)+math.Abs(b)+1)
}

// overlapSlack is the absolute slack allowed between consecutive spans —
// floating-point booking arithmetic legitimately produces sub-1e-9
// overlaps.
const overlapSlack = 1e-9

// Check verifies the timeline's invariants and returns every violation
// found (nil when the trace is clean):
//
//   - structure: finite non-negative span bounds, End ≥ Start, no span
//     past the makespan, finite marker times;
//   - exclusivity: per worker, compute spans do not overlap (one CPU) and
//     comm spans do not overlap (one incoming link); a Comm span MAY
//     overlap a Compute span — that is multi-round pipelining, not a bug;
//   - monotone sim-time: per worker and kind, spans are recorded in
//     non-decreasing start order;
//   - relays: finite non-negative bounds and volumes, a non-negative edge
//     id, no relay past the makespan (no per-kind monotonicity — hops are
//     booked concurrently);
//   - with exp: work conservation (processed + unprocessed = total, traced
//     spans matching the reported ledger), the shipping ledger, the
//     analytic volume bound, the imbalance target, and — when Edges is
//     set — the per-edge capacity sweep and volume ledger over routed
//     delivery spans plus relay windows.
func Check(tl *Timeline, exp *Expect) []Violation {
	var vs []Violation
	tol := exp.tolerance()

	for w, spans := range tl.Spans {
		prevStart := map[SpanKind]float64{}
		prevEnd := map[SpanKind]float64{}
		for i, s := range spans {
			if bad := badSpan(s); bad != "" {
				vs = append(vs, Violation{Kind: BadSpan, Worker: w, Task: s.Task, Detail: fmt.Sprintf("span %d %s", i, bad)})
				continue
			}
			if s.End > tl.Makespan+overlapSlack {
				vs = append(vs, Violation{Kind: BadSpan, Worker: w, Task: s.Task,
					Detail: fmt.Sprintf("span %d ends at %v past makespan %v", i, s.End, tl.Makespan)})
			}
			if ps, seen := prevStart[s.Kind]; seen {
				if s.Start < ps-overlapSlack {
					vs = append(vs, Violation{Kind: NonMonotone, Worker: w, Task: s.Task,
						Detail: fmt.Sprintf("%s span %d starts at %v before previous start %v", s.Kind, i, s.Start, ps)})
				} else if s.Start < prevEnd[s.Kind]-overlapSlack {
					kind := OverlapCompute
					if s.Kind == Comm {
						kind = OverlapComm
					}
					vs = append(vs, Violation{Kind: kind, Worker: w, Task: s.Task,
						Detail: fmt.Sprintf("%s span %d starts at %v inside previous span ending %v", s.Kind, i, s.Start, prevEnd[s.Kind])})
				}
			}
			prevStart[s.Kind] = s.Start
			if e := prevEnd[s.Kind]; s.End > e {
				prevEnd[s.Kind] = s.End
			}
		}
	}
	for i, m := range tl.Marks {
		if math.IsNaN(m.Time) || math.IsInf(m.Time, 0) || m.Time < 0 {
			vs = append(vs, Violation{Kind: NonMonotone, Worker: m.Worker, Task: -1,
				Detail: fmt.Sprintf("marker %d (%s) at invalid time %v", i, m.Kind, m.Time)})
		}
	}
	for i, r := range tl.Relays {
		if bad := badRelay(r); bad != "" {
			vs = append(vs, Violation{Kind: BadSpan, Worker: relayWorker(tl, r), Task: r.Task,
				Detail: fmt.Sprintf("relay %d %s", i, bad)})
			continue
		}
		if r.End > tl.Makespan+overlapSlack {
			vs = append(vs, Violation{Kind: BadSpan, Worker: relayWorker(tl, r), Task: r.Task,
				Detail: fmt.Sprintf("relay %d ends at %v past makespan %v", i, r.End, tl.Makespan)})
		}
	}

	if exp == nil {
		return vs
	}

	if exp.HasWork {
		if got := exp.ProcessedWork + exp.UnprocessedWork; !approxEqual(got, exp.TotalWork, tol) {
			vs = append(vs, Violation{Kind: WorkConservation, Worker: -1, Task: -1,
				Detail: fmt.Sprintf("processed %v + unprocessed %v = %v ≠ total %v", exp.ProcessedWork, exp.UnprocessedWork, got, exp.TotalWork)})
		}
		if got := tl.UsefulWork(); !approxEqual(got, exp.ProcessedWork, tol) {
			vs = append(vs, Violation{Kind: WorkConservation, Worker: -1, Task: -1,
				Detail: fmt.Sprintf("traced useful work %v ≠ reported processed %v", got, exp.ProcessedWork)})
		}
		if got := tl.WastedWork(); !approxEqual(got, exp.WastedWork, tol) {
			vs = append(vs, Violation{Kind: WorkConservation, Worker: -1, Task: -1,
				Detail: fmt.Sprintf("traced wasted work %v ≠ reported %v", got, exp.WastedWork)})
		}
		if got := tl.LostWork(); got > exp.LostWork*(1+tol)+tol {
			vs = append(vs, Violation{Kind: WorkConservation, Worker: -1, Task: -1,
				Detail: fmt.Sprintf("traced killed work %v exceeds reported lost %v", got, exp.LostWork)})
		}
	}

	measured := tl.CommVolume()
	if exp.HasComm && !approxEqual(measured, exp.ShippedData, tol) {
		vs = append(vs, Violation{Kind: CommVolume, Worker: -1, Task: -1,
			Detail: fmt.Sprintf("traced comm volume %v ≠ reported shipped %v", measured, exp.ShippedData)})
	}
	switch exp.BoundKind {
	case BoundExact:
		if !approxEqual(measured, exp.Bound, tol) {
			vs = append(vs, Violation{Kind: CommVolume, Worker: -1, Task: -1,
				Detail: fmt.Sprintf("traced comm volume %v ≠ %s = %v", measured, exp.boundName(), exp.Bound)})
		}
	case BoundUpper:
		if measured > exp.Bound*(1+tol) {
			vs = append(vs, Violation{Kind: CommVolume, Worker: -1, Task: -1,
				Detail: fmt.Sprintf("traced comm volume %v exceeds %s = %v", measured, exp.boundName(), exp.Bound)})
		}
	case BoundLower:
		if measured < exp.Bound*(1-tol) {
			vs = append(vs, Violation{Kind: CommVolume, Worker: -1, Task: -1,
				Detail: fmt.Sprintf("traced comm volume %v below %s = %v", measured, exp.boundName(), exp.Bound)})
		}
	}

	if exp.ImbalanceTarget > 0 {
		if e := tl.Imbalance(); e > exp.ImbalanceTarget*(1+tol) {
			vs = append(vs, Violation{Kind: ImbalanceExceeded, Worker: -1, Task: -1,
				Detail: fmt.Sprintf("compute imbalance %v above target %v", e, exp.ImbalanceTarget)})
		}
	}
	if exp.LinkCapacity > 0 {
		vs = append(vs, checkLinkCapacity(tl, exp.LinkCapacity, tol)...)
	}
	if len(exp.Edges) > 0 {
		vs = append(vs, checkEdges(tl, exp, tol)...)
	}
	if exp.ExactlyOnce {
		vs = append(vs, checkExactlyOnce(tl)...)
	}
	return vs
}

// relayWorker returns the relay's destination worker when it is a valid
// row of the timeline, else -1 — violations must always address a real
// worker or the run.
func relayWorker(tl *Timeline, r Relay) int {
	if r.Dest >= 0 && r.Dest < len(tl.Spans) {
		return r.Dest
	}
	return -1
}

// badRelay returns a description of what is malformed about the relay,
// or "" for a well-formed one. Relays carry no monotonicity requirement:
// concurrent workers book hops interleaved, so recording order is not
// time order.
func badRelay(r Relay) string {
	for _, f := range []struct {
		name  string
		value float64
	}{{"start", r.Start}, {"end", r.End}, {"data", r.Data}} {
		if math.IsNaN(f.value) || math.IsInf(f.value, 0) {
			return fmt.Sprintf("has non-finite %s %v", f.name, f.value)
		}
	}
	if r.Edge < 0 {
		return fmt.Sprintf("occupies negative edge %d", r.Edge)
	}
	if r.Start < 0 {
		return fmt.Sprintf("starts at negative time %v", r.Start)
	}
	if r.End < r.Start {
		return fmt.Sprintf("has negative duration [%v,%v]", r.Start, r.End)
	}
	if r.Data < 0 {
		return fmt.Sprintf("has negative volume (data %v)", r.Data)
	}
	return ""
}

// checkEdges audits every declared topology edge: a capacity sweep-line
// over the traffic occupying it — delivery Comm spans routed onto it via
// exp.Routes plus relay windows naming it — and, per edge with
// HasVolume, a volume ledger against the executor's booking totals. The
// sweep uses the same event discipline as checkLinkCapacity (ends
// processed before starts at equal times), so back-to-back hop windows
// booked by a correct store-and-forward executor never trip it.
func checkEdges(tl *Timeline, exp *Expect, tol float64) []Violation {
	var vs []Violation
	type event struct {
		t    float64
		rate float64
	}
	ne := len(exp.Edges)
	evs := make([][]event, ne)
	vols := make([]float64, ne)

	// addWindow books one traffic window onto edge e; kind labels it in
	// violations ("span"/"relay"), w addresses the offending worker.
	addWindow := func(e int, start, end, data float64, w, task int, kind string) {
		if e < 0 || e >= ne {
			vs = append(vs, Violation{Kind: BadSpan, Worker: w, Task: task,
				Detail: fmt.Sprintf("%s occupies unknown edge %d (%d edges declared)", kind, e, ne)})
			return
		}
		if data <= 0 {
			return
		}
		vols[e] += data
		cap := exp.Edges[e].Capacity
		if cap <= 0 {
			return // uncapped edge: volume accounting only
		}
		if end <= start {
			vs = append(vs, Violation{Kind: EdgeCapacityExceeded, Worker: w, Task: task,
				Detail: fmt.Sprintf("%s ships %v data units over edge %s in zero time (infinite rate, capacity %v)",
					kind, data, exp.Edges[e].Name, cap)})
			return
		}
		r := data / (end - start)
		evs[e] = append(evs[e], event{start, r}, event{end, -r})
	}

	for w, spans := range tl.Spans {
		var route []int
		if w < len(exp.Routes) {
			route = exp.Routes[w]
		}
		if len(route) == 0 {
			continue // unconstrained worker: no modeled edge occupied
		}
		for _, s := range spans {
			if s.Kind != Comm {
				continue
			}
			for _, e := range route {
				addWindow(e, s.Start, s.End, s.Data, w, s.Task, "comm span")
			}
		}
	}
	for _, r := range tl.Relays {
		addWindow(r.Edge, r.Start, r.End, r.Data, relayWorker(tl, r), r.Task, "relay")
	}

	for e := 0; e < ne; e++ {
		edge := exp.Edges[e]
		if len(evs[e]) > 0 {
			sort.Slice(evs[e], func(i, j int) bool {
				if evs[e][i].t != evs[e][j].t {
					return evs[e][i].t < evs[e][j].t
				}
				return evs[e][i].rate < evs[e][j].rate // ends before starts
			})
			run, worst, worstAt := 0.0, 0.0, 0.0
			for _, ev := range evs[e] {
				run += ev.rate
				if run > worst {
					worst, worstAt = run, ev.t
				}
			}
			if worst > edge.Capacity*(1+tol) {
				vs = append(vs, Violation{Kind: EdgeCapacityExceeded, Worker: -1, Task: -1,
					Detail: fmt.Sprintf("edge %s transfer rate peaks at %v (t=%v), above capacity %v",
						edge.Name, worst, worstAt, edge.Capacity)})
			}
		}
		if edge.HasVolume && !approxEqual(vols[e], edge.Volume, tol) {
			vs = append(vs, Violation{Kind: CommVolume, Worker: -1, Task: -1,
				Detail: fmt.Sprintf("edge %s traced volume %v ≠ booked %v", edge.Name, vols[e], edge.Volume)})
		}
	}
	return vs
}

// checkExactlyOnce flags every task id committed by more than one OK
// Compute span — the invariant a resilient executor must uphold no
// matter how many times retries, speculation or reclamation re-issued
// the task.
func checkExactlyOnce(tl *Timeline) []Violation {
	var vs []Violation
	committedBy := map[int]int{} // task → worker of the first OK commit
	for w, spans := range tl.Spans {
		for _, s := range spans {
			if s.Kind != Compute || s.Outcome != OK || s.Task < 0 {
				continue
			}
			if first, dup := committedBy[s.Task]; dup {
				vs = append(vs, Violation{Kind: DuplicateCommit, Worker: w, Task: s.Task,
					Detail: fmt.Sprintf("task committed twice (first by worker %d)", first)})
				continue
			}
			committedBy[s.Task] = w
		}
	}
	sort.Slice(vs, func(i, j int) bool { return vs[i].Task < vs[j].Task })
	return vs
}

// checkLinkCapacity sweeps the comm spans of every worker and verifies
// that at no instant the summed average transfer rate exceeds the
// aggregate link bandwidth. Each span with positive duration contributes
// Data/Duration over [Start, End); span boundaries that touch exactly do
// not overlap (ends are processed before starts at equal times).
func checkLinkCapacity(tl *Timeline, capacity, tol float64) []Violation {
	var vs []Violation
	type event struct {
		t    float64
		rate float64 // positive at span start, negative at span end
	}
	var evs []event
	for w, spans := range tl.Spans {
		for i, s := range spans {
			if s.Kind != Comm || s.Data <= 0 {
				continue
			}
			if s.Duration() <= 0 {
				vs = append(vs, Violation{Kind: LinkCapacityExceeded, Worker: w, Task: s.Task,
					Detail: fmt.Sprintf("span %d ships %v data units in zero time (infinite rate, capacity %v)", i, s.Data, capacity)})
				continue
			}
			r := s.Data / s.Duration()
			evs = append(evs, event{s.Start, r}, event{s.End, -r})
		}
	}
	sort.Slice(evs, func(i, j int) bool {
		if evs[i].t != evs[j].t {
			return evs[i].t < evs[j].t
		}
		return evs[i].rate < evs[j].rate // ends before starts at equal times
	})
	run, worst, worstAt := 0.0, 0.0, 0.0
	for _, e := range evs {
		run += e.rate
		if run > worst {
			worst, worstAt = run, e.t
		}
	}
	if worst > capacity*(1+tol) {
		vs = append(vs, Violation{Kind: LinkCapacityExceeded, Worker: -1, Task: -1,
			Detail: fmt.Sprintf("aggregate transfer rate peaks at %v (t=%v), above link capacity %v", worst, worstAt, capacity)})
	}
	return vs
}

func (e *Expect) boundName() string {
	if e.BoundName == "" {
		return "bound"
	}
	return e.BoundName
}

// badSpan returns a description of what is malformed about the span, or
// "" for a well-formed one.
func badSpan(s Span) string {
	for _, f := range []struct {
		name  string
		value float64
	}{{"start", s.Start}, {"end", s.End}, {"data", s.Data}, {"work", s.Work}} {
		if math.IsNaN(f.value) || math.IsInf(f.value, 0) {
			return fmt.Sprintf("has non-finite %s %v", f.name, f.value)
		}
	}
	if s.Start < 0 {
		return fmt.Sprintf("starts at negative time %v", s.Start)
	}
	if s.End < s.Start {
		return fmt.Sprintf("has negative duration [%v,%v]", s.Start, s.End)
	}
	if s.Data < 0 || s.Work < 0 {
		return fmt.Sprintf("has negative volume (data %v, work %v)", s.Data, s.Work)
	}
	return ""
}

// Must converts a violation list into a single error (nil when clean) —
// for executors and experiments that want the oracle on their hot path.
func Must(vs []Violation) error {
	if len(vs) == 0 {
		return nil
	}
	lines := make([]string, len(vs))
	for i, v := range vs {
		lines[i] = v.String()
	}
	return fmt.Errorf("trace: %d invariant violation(s):\n  %s", len(vs), strings.Join(lines, "\n  "))
}
