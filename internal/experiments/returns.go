package experiments

import (
	"fmt"

	"nlfl/internal/dessim"
	"nlfl/internal/platform"
	"nlfl/internal/plot"
	"nlfl/internal/stats"
)

// ReturnsRow is one return-ratio level of the result-collection sweep.
type ReturnsRow struct {
	// Delta is the result-to-input size ratio δ.
	Delta float64
	// FIFOWins/LIFOWins count instances where each order was strictly
	// better; Ties the rest.
	FIFOWins, LIFOWins, Ties int
	// MeanGap is the mean |fifo-lifo|/min makespan gap.
	MeanGap float64
}

// ReturnsSweep quantifies the Section 1.2 exclusion: with result messages
// of ratio δ collected through the master's single ingress port, neither
// FIFO nor LIFO collection dominates — the scheduling question the paper
// set aside to isolate non-linearity. For each δ, `trials` random star
// platforms with one chunk per worker are evaluated.
func ReturnsSweep(deltas []float64, p, trials int, seed int64) ([]ReturnsRow, error) {
	root := stats.NewRNG(seed)
	rows := make([]ReturnsRow, 0, len(deltas))
	for _, delta := range deltas {
		if delta < 0 {
			return nil, fmt.Errorf("experiments: negative return ratio %v", delta)
		}
		row := ReturnsRow{Delta: delta}
		var gaps stats.Welford
		for trial := 0; trial < trials; trial++ {
			r := root.Split()
			ws := make([]platform.Worker, p)
			for i := range ws {
				ws[i] = platform.Worker{Speed: 0.3 + 4*r.Float64(), Bandwidth: 0.3 + 4*r.Float64()}
			}
			pl, err := platform.New(ws)
			if err != nil {
				return nil, err
			}
			chunks := make([]dessim.Chunk, p)
			for i := range chunks {
				d := 1 + 4*r.Float64()
				chunks[i] = dessim.Chunk{Worker: i, Data: d, Work: d}
			}
			fifo, lifo, err := dessim.CompareReturnOrders(pl, chunks, delta)
			if err != nil {
				return nil, err
			}
			switch {
			case fifo < lifo-1e-9:
				row.FIFOWins++
			case lifo < fifo-1e-9:
				row.LIFOWins++
			default:
				row.Ties++
			}
			minMs := fifo
			if lifo < minMs {
				minMs = lifo
			}
			diff := fifo - lifo
			if diff < 0 {
				diff = -diff
			}
			gaps.Add(diff / minMs)
		}
		row.MeanGap = gaps.Mean()
		rows = append(rows, row)
	}
	return rows, nil
}

// ReturnsTable renders the sweep.
func ReturnsTable(rows []ReturnsRow) *plot.Table {
	t := plot.NewTable("δ", "FIFO wins", "LIFO wins", "ties", "mean |gap|")
	for _, r := range rows {
		t.AddRowf(r.Delta, r.FIFOWins, r.LIFOWins, r.Ties, r.MeanGap)
	}
	return t
}
