// Regression tests for the planner/throttle bug sweep: each test fails
// on the pre-fix code and pins the repaired behavior.
package runtime

import (
	"math"
	"testing"
	"time"

	"nlfl/internal/platform"
	"nlfl/internal/stats"
	"nlfl/internal/trace"
)

// TestPlanGridClampSmallN: on a platform heterogeneous enough that
// round(√(Σsᵢ/s₁)) exceeds n, PlanHom/PlanHomK used to hand GridChunks a
// grid larger than the domain and error out. The grid must clamp to n
// (one chunk per cell) and the plan must execute with the realized-grid
// volume 2·N·n.
func TestPlanGridClampSmallN(t *testing.T) {
	pl, err := platform.FromSpeeds([]float64{1, 100}) // √101 ≈ 10 ≫ n
	if err != nil {
		t.Fatal(err)
	}
	const n = 4
	r := stats.NewRNG(23)
	a := stats.SampleN(stats.Uniform{Lo: -1, Hi: 1}, r, n)
	b := stats.SampleN(stats.Uniform{Lo: -1, Hi: 1}, r, n)

	hom, err := PlanHom(pl, n)
	if err != nil {
		t.Fatalf("PlanHom errors on small N: %v", err)
	}
	if hom.Grid != n {
		t.Fatalf("hom grid = %d, want clamped to %d", hom.Grid, n)
	}
	if want := float64(2 * n * n); hom.Predicted != want {
		t.Errorf("clamped hom predicts %v, want realized-grid volume %v", hom.Predicted, want)
	}
	homk, err := PlanHomK(pl, n, 0.01, 0)
	if err != nil {
		t.Fatalf("PlanHomK errors on small N: %v", err)
	}
	if homk.Grid != n {
		t.Fatalf("hom/k grid = %d, want clamped to %d", homk.Grid, n)
	}

	for _, plan := range []*StrategyPlan{hom, homk} {
		rep, err := Run(plan, a, b, Options{Speeds: pl.Speeds(), WorkPerSecond: 1e7, VerifyEvery: 1})
		if err != nil {
			t.Fatalf("%s: %v", plan.Strategy, err)
		}
		if rep.DataVolume != plan.Predicted {
			t.Errorf("%s: measured %v ≠ predicted %v", plan.Strategy, rep.DataVolume, plan.Predicted)
		}
		if vs := trace.Check(rep.Trace, rep.Expect(1e-9)); len(vs) != 0 {
			t.Errorf("%s: trace violations: %v", plan.Strategy, vs)
		}
	}
}

// TestPlanHetPredictedMatchesSnapped: the het prediction used to be the
// *continuous* plan's Σ(wᵢ+hᵢ)·N (213.5 elements for speeds {2,3,5} at
// n=61) while the snapped rectangles ship an integer volume (213), so
// the trace oracle's exact bound missed what executes. Predicted must be
// recomputed over the snapped rectangles and match the measured volume
// to float precision.
func TestPlanHetPredictedMatchesSnapped(t *testing.T) {
	pl, err := platform.FromSpeeds([]float64{2, 3, 5})
	if err != nil {
		t.Fatal(err)
	}
	const n = 61
	plan, err := PlanHet(pl, n)
	if err != nil {
		t.Fatal(err)
	}
	snapped := 0.0
	for _, c := range plan.Chunks {
		snapped += float64(c.Data())
	}
	if plan.Predicted != snapped {
		t.Fatalf("Predicted %v ≠ snapped volume %v", plan.Predicted, snapped)
	}
	if plan.Predicted != math.Trunc(plan.Predicted) {
		t.Errorf("snapped volume %v is not an integer element count", plan.Predicted)
	}

	r := stats.NewRNG(29)
	a := stats.SampleN(stats.Uniform{Lo: -1, Hi: 1}, r, n)
	b := stats.SampleN(stats.Uniform{Lo: -1, Hi: 1}, r, n)
	rep, err := Run(plan, a, b, Options{Speeds: pl.Speeds(), WorkPerSecond: 1e7, VerifyEvery: 13})
	if err != nil {
		t.Fatal(err)
	}
	if rep.DataVolume != rep.Predicted {
		t.Errorf("measured %v ≠ predicted %v — bound does not match what executed", rep.DataVolume, rep.Predicted)
	}
	// The exact bound now holds at float precision, not the old 5% slack.
	if vs := trace.Check(rep.Trace, rep.Expect(1e-12)); len(vs) != 0 {
		t.Errorf("trace violations at tight tolerance: %v", vs)
	}
}

// TestTokenBucketClampsOversleepCredit: the post-sleep refill used to
// skip the burst clamp, so every oversleep banked credit above the
// configured burst and the worker burst ahead of its speed. After any
// acquire the bucket may never hold more than its burst.
func TestTokenBucketClampsOversleepCredit(t *testing.T) {
	tb := newTokenBucket(1e9, 10) // any oversleep ≥ 10 ns banks > burst pre-fix
	for i := 0; i < 3; i++ {
		tb.acquire(1e7) // 10 ms of work forces the sleep branch
		if tb.tokens > tb.burst+1e-6 {
			t.Fatalf("acquire %d banked %v tokens, burst cap is %v — oversleep credit not clamped",
				i, tb.tokens, tb.burst)
		}
	}
}

// TestTokenBucketLongRunRate: over many acquires the bucket must never
// run faster than its configured rate (initial burst credit aside).
func TestTokenBucketLongRunRate(t *testing.T) {
	const (
		rate  = 1e8
		burst = 1e5
		per   = 5e5
		calls = 20
	)
	tb := newTokenBucket(rate, burst)
	start := time.Now()
	for i := 0; i < calls; i++ {
		tb.acquire(per)
	}
	elapsed := time.Since(start).Seconds()
	// calls·per tokens minus the initial burst credit at `rate`/s.
	if minElapsed := (calls*per - burst) / rate; elapsed < minElapsed {
		t.Errorf("%v tokens drained in %vs, floor is %vs — bucket runs ahead of its rate",
			calls*per, elapsed, minElapsed)
	}
}

// TestRunRejectsOverlapGapPlan: Σcells == n² used to be the only
// coverage check, so a chunk set with an overlap and an equal-area gap
// validated and silently computed cells twice while skipping others. Run
// must reject any non-tiling plan.
func TestRunRejectsOverlapGapPlan(t *testing.T) {
	const n = 4
	a := make([]float64, n)
	b := make([]float64, n)
	// 8 + 4 + 4 = 16 = n², but rows [2,4) cover column 1–2 twice and
	// leave columns 3–4 uncovered.
	bad := &StrategyPlan{Strategy: "hom", N: n, Grid: 2, Predicted: 16, Chunks: []Chunk{
		{Task: 0, RowLo: 0, RowHi: 2, ColLo: 0, ColHi: 4, Owner: -1},
		{Task: 1, RowLo: 2, RowHi: 4, ColLo: 0, ColHi: 2, Owner: -1},
		{Task: 2, RowLo: 2, RowHi: 4, ColLo: 1, ColHi: 3, Owner: -1},
	}}
	if _, err := Run(bad, a, b, Options{Speeds: []float64{1}}); err == nil {
		t.Error("overlap+gap plan with Σcells == n² must be rejected")
	}
}

// TestCheckTilingPaths exercises both the bitmap and the row-band
// implementations on the same good and bad tilings.
func TestCheckTilingPaths(t *testing.T) {
	const n = 6
	good, err := GridChunks(n, 3)
	if err != nil {
		t.Fatal(err)
	}
	overlapGap := []Chunk{
		{Task: 0, RowLo: 0, RowHi: 3, ColLo: 0, ColHi: 6},
		{Task: 1, RowLo: 3, RowHi: 6, ColLo: 0, ColHi: 3},
		{Task: 2, RowLo: 3, RowHi: 6, ColLo: 2, ColHi: 5},
	}
	gapOnly := []Chunk{
		{Task: 0, RowLo: 0, RowHi: 3, ColLo: 0, ColHi: 6},
	}
	for name, check := range map[string]func(int, []Chunk) error{
		"bitmap": checkTilingBitmap,
		"bands":  checkTilingBands,
	} {
		if err := check(n, good); err != nil {
			t.Errorf("%s rejects an exact tiling: %v", name, err)
		}
		if err := check(n, overlapGap); err == nil {
			t.Errorf("%s accepts an overlap+gap cover", name)
		}
		if err := check(n, gapOnly); err == nil {
			t.Errorf("%s accepts a partial cover", name)
		}
	}
}
