package runtime_test

import (
	"fmt"

	nrt "nlfl/internal/runtime"
)

// ExampleTopology contrasts the three shipped network families without
// running the pool: the star circuit-switches every worker through the
// shared master port, the daisy chain store-and-forwards a deep
// worker's payload across every earlier hop (the relay traffic the
// trace oracle audits), and the two-source network gives each worker a
// single private-source hop.
func ExampleTopology() {
	for _, topo := range []nrt.Topology{
		nrt.Star{Aggregate: 2e4, Workers: 4},
		nrt.UniformChain(4, 2e4),
		nrt.SplitTwoSource(4, 2e4, 2e4),
	} {
		fmt.Printf("%-10s  edges=%d  store-and-forward=%-5v  route(w=3)=%v\n",
			topo.Name(), len(topo.Edges()), topo.StoreAndForward(), topo.Route(3))
	}
	// Output:
	// star        edges=5  store-and-forward=false  route(w=3)=[0 4]
	// chain       edges=4  store-and-forward=true   route(w=3)=[0 1 2 3]
	// two-source  edges=2  store-and-forward=false  route(w=3)=[1]
}
