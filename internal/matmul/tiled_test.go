package matmul

import (
	"testing"

	"nlfl/internal/stats"
)

func TestAutotuneTileIsACandidate(t *testing.T) {
	bs := AutotuneTile()
	ok := false
	for _, c := range tileCandidates {
		if bs == c {
			ok = true
		}
	}
	if !ok {
		t.Fatalf("autotuned tile %d is not among the candidates %v", bs, tileCandidates)
	}
	if again := AutotuneTile(); again != bs {
		t.Fatalf("autotune not stable: %d then %d", bs, again)
	}
}

// TestTiledMatchesNaiveProperty is the kernel-equivalence property test:
// across randomized rectangular shapes — deliberately including sides that
// are not multiples of any tile candidate, sides of 1, and sides larger
// than one tile — the tiled and parallel kernels must reproduce the naive
// kernel element-wise within 1e-12.
func TestTiledMatchesNaiveProperty(t *testing.T) {
	r := stats.NewRNG(2024)
	dim := func() int { return 1 + int(r.Float64()*300) }
	for trial := 0; trial < 25; trial++ {
		m, k, n := dim(), dim(), dim()
		a := Random(m, k, int64(trial*3+1))
		b := Random(k, n, int64(trial*3+2))
		want, err := Naive(a, b)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Tiled(a, b)
		if err != nil {
			t.Fatal(err)
		}
		if !want.Equal(got, 1e-12) {
			t.Fatalf("trial %d (%dx%d · %dx%d): tiled kernel diverges from naive", trial, m, k, n, n)
		}
		workers := 1 + int(r.Float64()*7)
		par, err := ParallelTiled(a, b, workers)
		if err != nil {
			t.Fatal(err)
		}
		if !want.Equal(par, 1e-12) {
			t.Fatalf("trial %d: parallel tiled kernel (%d workers) diverges from naive", trial, workers)
		}
	}
}

// TestOuterIntoMatchesVectorOuter covers the rectangle fill the plan
// executors run: random sub-rectangles of a random outer product,
// including spans that straddle tile boundaries, must match the reference
// kernel exactly on the rectangle and leave the rest of C untouched.
func TestOuterIntoMatchesVectorOuter(t *testing.T) {
	r := stats.NewRNG(99)
	for trial := 0; trial < 30; trial++ {
		n := 2 + int(r.Float64()*400)
		a := stats.SampleN(stats.Uniform{Lo: -1, Hi: 1}, r, n)
		b := stats.SampleN(stats.Uniform{Lo: -1, Hi: 1}, r, n)
		want := VectorOuter(a, b)
		rowLo := int(r.Float64() * float64(n))
		rowHi := rowLo + 1 + int(r.Float64()*float64(n-rowLo))
		colLo := int(r.Float64() * float64(n))
		colHi := colLo + 1 + int(r.Float64()*float64(n-colLo))
		if rowHi > n {
			rowHi = n
		}
		if colHi > n {
			colHi = n
		}
		got := New(n, n)
		OuterInto(got, a, b, rowLo, rowHi, colLo, colHi)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				inside := i >= rowLo && i < rowHi && j >= colLo && j < colHi
				if inside && got.At(i, j) != want.At(i, j) {
					t.Fatalf("trial %d n=%d: cell (%d,%d) = %g, want %g", trial, n, i, j, got.At(i, j), want.At(i, j))
				}
				if !inside && got.At(i, j) != 0 {
					t.Fatalf("trial %d n=%d: cell (%d,%d) outside rect written (%g)", trial, n, i, j, got.At(i, j))
				}
			}
		}
	}
}

func TestTiledShapeValidation(t *testing.T) {
	a, b := Random(3, 4, 1), Random(5, 3, 2)
	if _, err := Tiled(a, b); err == nil {
		t.Error("shape mismatch should fail")
	}
	if _, err := ParallelTiled(a, b, 2); err == nil {
		t.Error("shape mismatch should fail")
	}
	if _, err := ParallelTiled(Random(3, 3, 1), Random(3, 3, 2), 0); err == nil {
		t.Error("zero workers should fail")
	}
}
