package core

import (
	"math"
	"testing"

	"nlfl/internal/platform"
)

func TestPlanLinear(t *testing.T) {
	pl, err := platform.New([]platform.Worker{
		{Speed: 1, Bandwidth: 1},
		{Speed: 4, Bandwidth: 2},
		{Speed: 2, Bandwidth: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := PlanLinear(pl, 300)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, f := range plan.Fractions {
		if f <= 0 {
			t.Errorf("linear plans use every worker, got share %v", f)
		}
		sum += f
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("shares sum to %v", sum)
	}
	if plan.Speedup() < 1 {
		t.Errorf("optimal allocation should not lose to equal split: %v", plan.Speedup())
	}
	// Heterogeneous platform → strict improvement.
	if plan.Speedup() < 1.01 {
		t.Errorf("expected a material speedup on this platform, got %v", plan.Speedup())
	}
}

func TestPlanLinearHomogeneous(t *testing.T) {
	pl, _ := platform.Homogeneous(5, 1, 1)
	plan, err := PlanLinear(pl, 100)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(plan.Speedup()-1) > 1e-9 {
		t.Errorf("homogeneous speedup = %v, want 1", plan.Speedup())
	}
}

func TestPlanSort(t *testing.T) {
	pl, err := platform.FromSpeeds([]float64{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	const n = 1 << 20
	plain, err := PlanSort(pl, n, false)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(plain.Shares[0]-0.25) > 1e-12 || math.Abs(plain.Shares[1]-0.75) > 1e-12 {
		t.Errorf("speed-proportional shares = %v", plain.Shares)
	}
	if plain.Oversampling != 400 {
		t.Errorf("oversampling = %d, want log²(2^20) = 400", plain.Oversampling)
	}
	if math.Abs(plain.NonDivisibleFraction-0.05) > 1e-12 {
		t.Errorf("fraction = %v, want log 2/log 2^20 = 0.05", plain.NonDivisibleFraction)
	}
	balanced, err := PlanSort(pl, n, true)
	if err != nil {
		t.Fatal(err)
	}
	if !balanced.Balanced || balanced.Shares[0] <= plain.Shares[0] {
		t.Errorf("balanced plan should give the slow worker more: %v vs %v",
			balanced.Shares[0], plain.Shares[0])
	}
	if _, err := PlanSort(pl, 0, false); err == nil {
		t.Error("n=0 should fail")
	}
}
