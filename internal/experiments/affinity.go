package experiments

import (
	"fmt"

	"nlfl/internal/affinity"
	"nlfl/internal/outer"
	"nlfl/internal/platform"
	"nlfl/internal/plot"
)

// AffinityPoint is one block-granularity level of the affinity sweep.
type AffinityPoint struct {
	// G is the blocks-per-dimension of the demand-driven decomposition.
	G int
	// NoCache/Cache/Affinity are the ratio-to-lower-bound of the three
	// policies; Het is the static Heterogeneous Blocks reference.
	NoCache, Cache, Affinity, Het float64
	// AffinityImbalance is the load imbalance the affinity policy ends
	// with (it must stay demand-driven-small).
	AffinityImbalance float64
}

// AffinitySweep evaluates the conclusion's proposed mechanism across
// block granularities: finer grids improve load balance but multiply the
// no-cache volume, while the affinity policy holds its ratio nearly flat
// — approaching the static heterogeneous layout without knowing the
// platform.
func AffinitySweep(pl *platform.Platform, n float64, gs []int) ([]AffinityPoint, error) {
	het, err := outer.Commhet(pl, n)
	if err != nil {
		return nil, err
	}
	points := make([]AffinityPoint, 0, len(gs))
	for _, g := range gs {
		if g <= 0 {
			return nil, fmt.Errorf("experiments: invalid grid %d", g)
		}
		rs, err := affinity.Compare(pl, n, g)
		if err != nil {
			return nil, err
		}
		points = append(points, AffinityPoint{
			G:                 g,
			NoCache:           rs[0].Ratio,
			Cache:             rs[1].Ratio,
			Affinity:          rs[2].Ratio,
			Het:               het.Ratio,
			AffinityImbalance: rs[2].Imbalance,
		})
	}
	return points, nil
}

// AffinityTable renders the sweep.
func AffinityTable(points []AffinityPoint) *plot.Table {
	t := plot.NewTable("g", "no-cache", "cache", "affinity", "Comm_het (static)", "affinity e")
	for _, pt := range points {
		t.AddRowf(pt.G, pt.NoCache, pt.Cache, pt.Affinity, pt.Het, pt.AffinityImbalance)
	}
	return t
}

// MemoryPoint is one cache-capacity level of the bounded-affinity sweep.
type MemoryPoint struct {
	// Capacity is the per-worker cache size in chunks (2g = unlimited).
	Capacity int
	// Ratio is volume/LB at this capacity.
	Ratio float64
}

// MemorySweep evaluates how much worker memory the conclusion's affinity
// proposal needs: volume-to-LB as a function of the per-worker LRU cache
// capacity, from 0 (no-cache accounting) to 2g (unlimited).
func MemorySweep(pl *platform.Platform, n float64, g int, capacities []int) ([]MemoryPoint, error) {
	points := make([]MemoryPoint, 0, len(capacities))
	for _, c := range capacities {
		res, err := affinity.RunBounded(pl, n, g, c, 1)
		if err != nil {
			return nil, err
		}
		points = append(points, MemoryPoint{Capacity: c, Ratio: res.Ratio})
	}
	return points, nil
}

// MemoryTable renders the sweep.
func MemoryTable(points []MemoryPoint) *plot.Table {
	t := plot.NewTable("cache capacity (chunks)", "volume / LB")
	for _, pt := range points {
		t.AddRowf(pt.Capacity, pt.Ratio)
	}
	return t
}
