package trace_test

// Property tests: every executor's structured trace must satisfy the
// invariant oracle on hundreds of seeded random runs. A scheduler bug that
// double-books a CPU, loses a chunk, or misreports its ledger surfaces
// here as a trace.Check violation, in the spirit of the mechanical
// verification that caught published DLT schedules violating their own
// one-port constraints.

import (
	"strings"
	"testing"

	"nlfl/internal/dessim"
	"nlfl/internal/faults"
	"nlfl/internal/mapreduce"
	"nlfl/internal/platform"
	"nlfl/internal/stats"
	"nlfl/internal/trace"
)

const propertyCases = 200

// randomScenario draws one of the four fault patterns, scaled to a time
// horizon the run will actually reach.
func randomScenario(rng *stats.RNG, p int, horizon float64) (faults.Scenario, string) {
	seed := rng.Int63()
	switch rng.Intn(4) {
	case 0:
		return faults.Scenario{}, "none"
	case 1:
		k := rng.Intn(p) // 0..p-1 crashes: at least one survivor
		sc, err := faults.RandomCrashes(p, k, horizon, seed)
		if err != nil {
			panic(err)
		}
		return sc, "crash"
	case 2:
		factor := 0.05 + 0.4*rng.Float64()
		sc, err := faults.RandomStragglers(p, 1+rng.Intn(p), factor, horizon*rng.Float64(), horizon, seed)
		if err != nil {
			panic(err)
		}
		return sc, "straggler"
	default:
		prob := 0.2 + 0.6*rng.Float64()
		sc, err := faults.FlakyLinks(p, 1+rng.Intn(p), prob, 0, horizon*rng.Float64(), seed)
		if err != nil {
			panic(err)
		}
		return sc, "flaky-link"
	}
}

func TestPropertyMapReduceTraces(t *testing.T) {
	for seed := int64(0); seed < propertyCases; seed++ {
		rng := stats.NewRNG(seed)
		p := 2 + rng.Intn(6)
		pl, err := platform.Generate(p, platform.ProfileUniform.Distribution(0), rng)
		if err != nil {
			t.Fatal(err)
		}
		n := 1 + rng.Intn(40)
		tasks := make([]mapreduce.TaskSpec, n)
		totalWork, totalData := 0.0, 0.0
		for i := range tasks {
			tasks[i] = mapreduce.TaskSpec{Data: rng.Float64() * 4, Work: 0.1 + rng.Float64()*4}
			totalData += tasks[i].Data
			totalWork += tasks[i].Work
		}
		speculate := seed%2 == 0
		res, err := mapreduce.Schedule(pl, tasks, speculate)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		shipped := 0.0
		for _, d := range res.DataPerWorker {
			shipped += d
		}
		vs := trace.Check(res.Trace, &trace.Expect{
			HasWork:       true,
			TotalWork:     totalWork,
			ProcessedWork: totalWork,
			WastedWork:    res.WastedWork,
			HasComm:       true,
			ShippedData:   shipped,
		})
		if len(vs) != 0 {
			t.Fatalf("seed %d (p=%d n=%d speculate=%v): %v", seed, p, n, speculate, trace.Must(vs))
		}
	}
}

func TestPropertyResilientTraces(t *testing.T) {
	for seed := int64(0); seed < propertyCases; seed++ {
		rng := stats.NewRNG(seed)
		p := 2 + rng.Intn(6)
		pl, err := platform.Generate(p, platform.ProfileUniform.Distribution(0), rng)
		if err != nil {
			t.Fatal(err)
		}
		n := 1 + rng.Intn(30)
		tasks := make([]dessim.Task, n)
		totalWork := 0.0
		for i := range tasks {
			tasks[i] = dessim.Task{Data: rng.Float64() * 2, Work: 0.1 + rng.Float64()*3}
			totalWork += tasks[i].Work
		}
		base, err := faults.RunResilientDemandDriven(pl, tasks, faults.Scenario{}, faults.ResilientOptions{})
		if err != nil {
			t.Fatalf("seed %d baseline: %v", seed, err)
		}
		sc, kind := randomScenario(rng, p, base.Makespan)
		opt := faults.ResilientOptions{Speculate: rng.Intn(2) == 0, Sink: trace.NewRecorder()}
		rep, err := faults.RunResilientDemandDriven(pl, tasks, sc, opt)
		if err != nil {
			// A hostile-enough flaky window can exhaust the retry budget;
			// that is the executor refusing the scenario, not a trace bug.
			if strings.Contains(err.Error(), "scenario too hostile") ||
				strings.Contains(err.Error(), "insufficient surviving capacity") {
				continue
			}
			t.Fatalf("seed %d (%s): %v", seed, kind, err)
		}
		vs := trace.Check(rep.Trace, &trace.Expect{
			HasWork:       true,
			TotalWork:     totalWork,
			ProcessedWork: totalWork,
			LostWork:      rep.LostWork,
			WastedWork:    rep.WastedWork,
			HasComm:       true,
			ShippedData:   rep.DataShipped,
		})
		if len(vs) != 0 {
			t.Fatalf("seed %d (%s, p=%d n=%d): %v", seed, kind, p, n, trace.Must(vs))
		}
		if rec := opt.Sink.(*trace.Recorder); rec.Violations() != nil {
			t.Fatalf("seed %d (%s): engine-level violations: %v", seed, kind, rec.Violations())
		}
	}
}

func TestPropertySingleRoundTraces(t *testing.T) {
	for seed := int64(0); seed < propertyCases; seed++ {
		rng := stats.NewRNG(seed)
		p := 2 + rng.Intn(6)
		pl, err := platform.Generate(p, platform.ProfileUniform.Distribution(0), rng)
		if err != nil {
			t.Fatal(err)
		}
		var chunks []dessim.Chunk
		totalWork, totalData := 0.0, 0.0
		if rng.Intn(2) == 0 {
			chunks = faults.LinearDLTChunks(pl, 10+rng.Float64()*50, 10+rng.Float64()*50)
		} else {
			for i, n := 0, 1+rng.Intn(25); i < n; i++ {
				chunks = append(chunks, dessim.Chunk{
					Worker: rng.Intn(p),
					Data:   rng.Float64() * 3,
					Work:   rng.Float64() * 3,
				})
			}
		}
		for _, ch := range chunks {
			totalData += ch.Data
			totalWork += ch.Work
		}
		sc, kind := randomScenario(rng, p, 2+rng.Float64()*20)
		rep, err := faults.RunSingleRoundUnderFaults(pl, chunks, sc)
		if err != nil {
			t.Fatalf("seed %d (%s): %v", seed, kind, err)
		}
		vs := trace.Check(rep.Trace, &trace.Expect{
			HasWork:         true,
			TotalWork:       totalWork,
			ProcessedWork:   rep.CompletedWork,
			UnprocessedWork: rep.LostWork,
			LostWork:        rep.LostWork,
		})
		if len(vs) != 0 {
			t.Fatalf("seed %d (%s, p=%d chunks=%d): %v", seed, kind, p, len(chunks), trace.Must(vs))
		}
		// Single-round ships each chunk at most once: the traced volume can
		// never exceed the schedule's total data.
		if v := rep.Trace.CommVolume(); v > totalData*(1+1e-9) {
			t.Fatalf("seed %d (%s): traced volume %v exceeds schedule total %v", seed, kind, v, totalData)
		}
	}
}
