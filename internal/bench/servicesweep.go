package bench

import (
	"context"
	"errors"
	"fmt"
	"math"
	goruntime "runtime"
	"strconv"
	"time"

	"nlfl/internal/capacity"
	"nlfl/internal/faults"
	"nlfl/internal/results"
	nrt "nlfl/internal/runtime"
	"nlfl/internal/service"
	"nlfl/internal/stats"
	"nlfl/internal/trace"
)

// The service sweep runs a fixed envelope, like the chaos sweep: the
// Poisson arrival rates below are calibrated against this rate, speed
// profile and job mix so "load 0.9" means 90% of the fleet's aggregate
// compute capacity — slow enough that queueing dynamics (not Go
// scheduler noise) dominate the latency quantiles, fast enough that a
// full sweep stays under a minute.
var serviceSpeeds = []float64{1, 2, 3, 4}

const (
	serviceRate = 3e4 // cells/s per unit speed
	// serviceBandwidth makes the shared one-port link the scarce
	// resource: a mean job ships ~400 elements (~16 ms of link time)
	// against ~14 ms of aggregate compute. This is the regime where
	// naive FIFO is provably bad (Gallet–Robert–Vivien): job-exclusive
	// service cannot overlap one job's compute tail with the next job's
	// transfers, so the link idles while workers finish and FIFO's
	// effective capacity collapses to ~0.67 of the fleet's, while the
	// interleaved policies (~0.95) keep the link saturated by feeding
	// the next job's rectangles during the current job's computes.
	serviceBandwidth = 2.5e4
	// serviceChaosTenant is the tenant whose jobs carry the job-scoped
	// crash scenario in the chaos entry.
	serviceChaosTenant = "chaos"
	// serviceAutoscaleTheta is the autoscale entry's knee threshold: a
	// worker that buys under 5% marginal speedup is not worth its input
	// shipping. It matches the capacity sweep's theta so the knees in
	// BENCH_service.json and BENCH_capacity.json tell one story.
	serviceAutoscaleTheta = 0.05
)

// serviceJobMix is the offered job-size distribution.
var serviceJobSizes = []struct {
	n    int
	prob float64
}{
	{48, 0.5},
	{64, 0.3},
	{96, 0.2},
}

// serviceFleetCapacity is the fleet's aggregate compute rate in cells/s.
func serviceFleetCapacity() float64 {
	capacity := 0.0
	for _, s := range serviceSpeeds {
		capacity += s * serviceRate
	}
	return capacity
}

// serviceMeanCells is the mix's expected job cost in cells.
func serviceMeanCells() float64 {
	mean := 0.0
	for _, s := range serviceJobSizes {
		mean += s.prob * float64(s.n) * float64(s.n)
	}
	return mean
}

// serviceLoads are the offered loads relative to the fleet's aggregate
// compute capacity. The top load (0.8) sits in the window the
// calibration above opens: well past FIFO's effective capacity (~0.67,
// so its queue grows without bound) yet comfortably inside SRPT's and
// II's (~0.95, so their tails stay bounded).
func serviceLoads(quick bool) []float64 {
	if quick {
		return []float64{0.5, 0.8}
	}
	return []float64{0.4, 0.65, 0.8}
}

// serviceJobs is the offered job count per entry. The run must be long
// enough for an overloaded FIFO queue to visibly diverge (its backlog
// grows at roughly (ρ − 0.67)·λ jobs per second, so the divergence is
// linear in run length while the stable policies' tails are not), which
// takes ~2 s of arrivals at the top load. Quick mode keeps the full
// job count and economizes on swept loads instead.
func serviceJobs(quick bool) int {
	return 120
}

// RunServiceSweep measures the multi-tenant fleet service under a seeded
// Poisson arrival stream: every scheduling policy at every offered load,
// one chaos entry where a single tenant's jobs carry a job-scoped crash
// scenario, and one autoscale entry where the capacity model caps each
// job's slice at its predicted speedup knee. Every completed job's trace
// is audited by the invariant oracle, the chaos entry's clean tenants
// must show the exact committed-equals-planned ledger — the isolation
// guarantee as a measured gate, not a comment — and the autoscale entry
// must ship strictly less data per job than its uncapped twin. A
// cancelled ctx aborts the in-flight run and stops the sweep.
//
// Wall-clock latencies vary run to run; the admission counters, volume
// ledgers and the policy ordering gates (SRPT and interleaved
// installments beat FIFO's p99 at the top load) are the reproducible
// part of the record. See EXPERIMENTS.md for the regeneration recipe.
func RunServiceSweep(ctx context.Context, cfg Config) (results.ServiceBenchFile, error) {
	file := results.ServiceBenchFile{
		Schema:        results.BenchServiceSchema,
		Seed:          cfg.Seed,
		Quick:         cfg.Quick,
		WorkPerSecond: serviceRate,
		Speeds:        serviceSpeeds,
		Bandwidth:     serviceBandwidth,
		GoVersion:     goruntime.Version(),
		GOMAXPROCS:    maxProcs(),
	}
	fleetCap := serviceFleetCapacity()
	jobs := serviceJobs(cfg.Quick)
	loads := serviceLoads(cfg.Quick)
	for _, pol := range service.Policies() {
		for _, load := range loads {
			lambda := load * fleetCap / serviceMeanCells()
			entry, err := runServiceEntry(ctx, cfg.Seed, pol, load, lambda, jobs, false, 0)
			if err != nil {
				return file, fmt.Errorf("bench: service %s load=%.2f: %w", pol, load, err)
			}
			file.Entries = append(file.Entries, entry)
		}
	}
	// The isolation entry: one tenant hammered by a per-job crash
	// scenario under moderate load; the other tenants must come out with
	// exact ledgers.
	load := 0.6
	lambda := load * fleetCap / serviceMeanCells()
	entry, err := runServiceEntry(ctx, cfg.Seed, service.PolicySRPT, load, lambda, jobs, true, 0)
	if err != nil {
		return file, fmt.Errorf("bench: service chaos entry: %w", err)
	}
	file.Entries = append(file.Entries, entry)
	// The autoscale entry: SRPT at the top load again, but the capacity
	// model caps every job's slice at its predicted speedup knee. The
	// same seed replays the same job mix and arrivals as the uncapped
	// baseline, so the shipped-volume dividend is measured like for like.
	load = serviceLoads(cfg.Quick)[len(serviceLoads(cfg.Quick))-1]
	lambda = load * fleetCap / serviceMeanCells()
	entry, err = runServiceEntry(ctx, cfg.Seed, service.PolicySRPT, load, lambda, jobs, false, serviceAutoscaleTheta)
	if err != nil {
		return file, fmt.Errorf("bench: service autoscale entry: %w", err)
	}
	file.Entries = append(file.Entries, entry)
	return file, nil
}

// runServiceEntry runs one (policy, load) point: a Poisson stream of
// jobs from three round-robin tenants through a fresh fleet. A positive
// theta turns on the fleet's capacity-model autoscaler and records the
// model's per-size knees alongside the measured slice sizes.
func runServiceEntry(ctx context.Context, seed int64, pol service.Policy, load, lambda float64, jobs int, chaos bool, theta float64) (results.ServiceBenchEntry, error) {
	entry := results.ServiceBenchEntry{
		Policy:           string(pol),
		LoadFactor:       load,
		LambdaJobsPerSec: lambda,
		Chaos:            chaos,
		Jobs:             jobs,
		Autoscale:        theta > 0,
		AutoscaleTheta:   theta,
	}
	if theta > 0 {
		// The model's knee per job size in the mix, over the full healthy
		// fleet — the ceiling every admitted slice must respect.
		entry.Knees = make(map[string]int, len(serviceJobSizes))
		for _, s := range serviceJobSizes {
			m := capacity.Model{
				Alpha:         2,
				N:             s.n,
				Speeds:        serviceSpeeds,
				WorkPerSecond: serviceRate,
				Bandwidth:     serviceBandwidth,
			}
			r, err := m.Recommend(theta)
			if err != nil {
				return entry, fmt.Errorf("capacity knee for n=%d: %w", s.n, err)
			}
			entry.Knees[strconv.Itoa(s.n)] = r.Knee
		}
	}
	fleet, err := service.New(service.Config{
		Speeds:         serviceSpeeds,
		WorkPerSecond:  serviceRate,
		Link:           nrt.Link{ElemsPerSecond: serviceBandwidth},
		Policy:         pol,
		AutoscaleTheta: theta,
		// Strong anti-starvation aging: a waiting job sheds 20% of fleet
		// capacity per second from its SRPT key, so the big jobs in the
		// mix overtake after ~100 ms of waiting instead of riding the
		// tail — SRPT's p99 then measures scheduling, not starvation.
		AgingCellsPerSec: 0.2 * serviceFleetCapacity(),
		// Roomy admission: the gates compare queueing latency across
		// policies, so overload must queue (and hurt p99), not shed.
		MaxQueue:    4 * jobs,
		TenantQuota: 2 * jobs,
		VerifyEvery: 1009,
	})
	if err != nil {
		return entry, err
	}
	defer fleet.Close()

	// Two RNG streams: the job mix is shared by every policy at every
	// load (same seed → same job sequence → comparable quantiles), the
	// arrival stream by every policy at the same load.
	mixRNG := stats.NewRNG(seed)
	arrRNG := stats.NewRNG(seed + int64(1e6*load))
	tenants := []string{"tenant-a", "tenant-b", "tenant-c"}
	if chaos {
		tenants = []string{"tenant-a", "tenant-b", serviceChaosTenant}
	}

	handles := make([]*service.JobHandle, 0, jobs)
	for i := 0; i < jobs; i++ {
		if err := ctx.Err(); err != nil {
			return entry, err
		}
		if i > 0 {
			wait := arrRNG.ExpFloat64() / lambda
			t := time.NewTimer(time.Duration(wait * float64(time.Second)))
			select {
			case <-ctx.Done():
				t.Stop()
				return entry, ctx.Err()
			case <-t.C:
			}
		}
		u := mixRNG.Float64()
		n := serviceJobSizes[len(serviceJobSizes)-1].n
		acc := 0.0
		for _, s := range serviceJobSizes {
			acc += s.prob
			if u < acc {
				n = s.n
				break
			}
		}
		// Every job uses the het strategy: the fleet is heterogeneous, so
		// PERI-SUM rectangles are the right plan, and fixing the strategy
		// isolates the scheduling policy as the only variable. One chunk
		// per worker also means a job cannot hide its own ramp — the
		// cross-job comm/compute overlap (or FIFO's lack of it) is what
		// the latency quantiles measure.
		spec := service.JobSpec{
			Tenant:   tenants[i%len(tenants)],
			N:        n,
			Strategy: "het",
			Seed:     seed + int64(i),
		}
		if chaos && spec.Tenant == serviceChaosTenant {
			// Job-scoped: worker 3 (the fastest) dies 5 ms into *this
			// job*; the fleet re-plans onto the job's survivors while the
			// same worker keeps serving everyone else.
			spec.Chaos = service.ChaosSpec{
				Scenario:   faults.SingleCrash(3, 0.005),
				MaxRetries: 4,
			}
		}
		h, err := fleet.Submit(spec)
		if err != nil {
			if errors.Is(err, service.ErrAdmissionRejected) {
				continue // counted via fleet accounting below
			}
			return entry, err
		}
		handles = append(handles, h)
	}

	var latencies []float64
	var shipped float64
	sliceSum := 0
	firstSubmit, lastDone := math.Inf(1), math.Inf(-1)
	for _, h := range handles {
		rep, err := h.Wait(ctx)
		if rep == nil {
			return entry, err // ctx expired: no report to harvest
		}
		if rep.Failed {
			if !chaos {
				return entry, fmt.Errorf("job %d failed without chaos: %s", rep.ID, rep.Err)
			}
			continue
		}
		entry.Violations += len(trace.Check(rep.Trace, rep.Expect(1e-9)))
		latencies = append(latencies, rep.Latency)
		firstSubmit = math.Min(firstSubmit, rep.SubmitTime)
		lastDone = math.Max(lastDone, rep.DoneTime)
		shipped += rep.DataShipped
		sliceSum += len(rep.Workers)
		if len(rep.Workers) > entry.MaxSliceWorkers {
			entry.MaxSliceWorkers = len(rep.Workers)
		}
		if entry.Autoscale {
			if knee, ok := entry.Knees[strconv.Itoa(rep.N)]; ok && len(rep.Workers) > knee {
				entry.SliceOverKnee++
			}
		}
	}
	if len(latencies) == 0 {
		return entry, fmt.Errorf("no job completed")
	}
	entry.MeanSliceWorkers = float64(sliceSum) / float64(len(latencies))
	entry.MeanShippedPerJob = shipped / float64(len(latencies))

	acc := fleet.Accounting()
	entry.Admitted = acc.Submitted - acc.Rejected
	entry.Rejected = acc.Rejected
	entry.Completed = acc.Completed
	entry.Failed = acc.Failed
	entry.Makespan = lastDone - firstSubmit
	if entry.Makespan > 0 {
		entry.ThroughputJobsPerSec = float64(entry.Completed) / entry.Makespan
	}
	entry.LatencyP50 = stats.Quantile(latencies, 0.5)
	entry.LatencyP99 = stats.Quantile(latencies, 0.99)
	entry.LatencyMean = stats.Mean(latencies)
	entry.LatencyMax = stats.Max(latencies)
	for _, ta := range acc.Tenants {
		entry.Tenants = append(entry.Tenants, results.ServiceTenantStat{
			Tenant:          ta.Tenant,
			Submitted:       ta.Submitted,
			Admitted:        ta.Admitted,
			Rejected:        ta.Rejected,
			Completed:       ta.Completed,
			Failed:          ta.Failed,
			Cancelled:       ta.Cancelled,
			PlanVolume:      ta.PlanVolume,
			ReplannedVolume: ta.ReplannedVolume,
			CommittedVolume: ta.CommittedVolume,
			WastedData:      ta.WastedData,
			ReclaimedCells:  float64(ta.ReclaimedCells),
		})
	}
	return entry, nil
}

// ValidateService is the schema check for a BENCH_service payload: right
// schema id, non-empty entries, finite ordered latency quantiles, clean
// admission arithmetic, zero trace violations, the policy gate (SRPT and
// interleaved installments strictly beat FIFO's p99 at the highest
// fault-free load — naive FIFO is the provably bad baseline), the
// isolation gate (in the chaos entry, only the chaos tenant shows
// reclaimed work; every other tenant's ledger is exact), and the
// autoscale gate (the capacity-model entry kept every slice at or under
// the knee and shipped strictly less per job than the uncapped baseline
// at the same policy and load).
func ValidateService(f results.ServiceBenchFile) error {
	const path = ServiceFileName
	if f.Schema != results.BenchServiceSchema {
		return invalid(path, "schema %q, want %q", f.Schema, results.BenchServiceSchema)
	}
	if len(f.Entries) == 0 {
		return invalid(path, "no entries")
	}
	if !finite(f.WorkPerSecond) || f.WorkPerSecond <= 0 {
		return invalid(path, "non-positive work rate %v", f.WorkPerSecond)
	}
	if len(f.Speeds) == 0 {
		return invalid(path, "no speed profile")
	}
	topLoad := 0.0
	for _, e := range f.Entries {
		if !e.Chaos && e.LoadFactor > topLoad {
			topLoad = e.LoadFactor
		}
	}
	p99 := map[string]float64{} // policy → p99 at the top fault-free load
	sawChaos, sawAutoscale := false, false
	for i, e := range f.Entries {
		id := fmt.Sprintf("entry %d (%s load=%.2f chaos=%v autoscale=%v)", i, e.Policy, e.LoadFactor, e.Chaos, e.Autoscale)
		if e.Policy == "" || e.Jobs <= 0 {
			return invalid(path, "%s: missing identity fields", id)
		}
		for _, v := range []struct {
			name  string
			value float64
		}{
			{"lambda", e.LambdaJobsPerSec},
			{"loadFactor", e.LoadFactor},
			{"makespan", e.Makespan},
			{"throughput", e.ThroughputJobsPerSec},
			{"latencyP50", e.LatencyP50},
			{"latencyP99", e.LatencyP99},
			{"latencyMean", e.LatencyMean},
			{"latencyMax", e.LatencyMax},
		} {
			if !finite(v.value) || v.value <= 0 {
				return invalid(path, "%s: non-positive or non-finite %s %v", id, v.name, v.value)
			}
		}
		if e.LatencyP50 > e.LatencyP99 || e.LatencyP99 > e.LatencyMax {
			return invalid(path, "%s: latency quantiles out of order (p50 %v, p99 %v, max %v)",
				id, e.LatencyP50, e.LatencyP99, e.LatencyMax)
		}
		if e.MaxSliceWorkers < 1 || e.MaxSliceWorkers > len(f.Speeds) {
			return invalid(path, "%s: max slice %d outside [1, %d]", id, e.MaxSliceWorkers, len(f.Speeds))
		}
		if !finite(e.MeanSliceWorkers) || e.MeanSliceWorkers <= 0 || e.MeanSliceWorkers > float64(e.MaxSliceWorkers) {
			return invalid(path, "%s: mean slice %v inconsistent with max %d", id, e.MeanSliceWorkers, e.MaxSliceWorkers)
		}
		if !finite(e.MeanShippedPerJob) || e.MeanShippedPerJob <= 0 {
			return invalid(path, "%s: non-positive mean shipped volume %v", id, e.MeanShippedPerJob)
		}
		if e.Autoscale {
			sawAutoscale = true
			if err := validateAutoscaleEntry(f, e, id); err != nil {
				return err
			}
		}
		if e.Admitted != e.Jobs-e.Rejected {
			return invalid(path, "%s: admitted %d ≠ jobs %d − rejected %d", id, e.Admitted, e.Jobs, e.Rejected)
		}
		if e.Completed+e.Failed != e.Admitted {
			return invalid(path, "%s: completed %d + failed %d ≠ admitted %d", id, e.Completed, e.Failed, e.Admitted)
		}
		if e.Violations != 0 {
			return invalid(path, "%s: %d invariant violations", id, e.Violations)
		}
		if len(e.Tenants) == 0 {
			return invalid(path, "%s: no tenant breakdown", id)
		}
		if !e.Chaos {
			// The policy gate compares uncapped runs only: the autoscale
			// entry trades slice width for link traffic and is judged by its
			// own gate below, not by the FIFO-vs-SRPT ordering.
			if e.LoadFactor == topLoad && !e.Autoscale {
				p99[e.Policy] = e.LatencyP99
			}
			for _, ta := range e.Tenants {
				if ta.WastedData != 0 || ta.ReclaimedCells != 0 || ta.Failed != 0 {
					return invalid(path, "%s: fault-free tenant %s shows waste %v / reclaimed %v / failed %d",
						id, ta.Tenant, ta.WastedData, ta.ReclaimedCells, ta.Failed)
				}
			}
			continue
		}
		sawChaos = true
		var hammered *results.ServiceTenantStat
		for t := range e.Tenants {
			ta := &e.Tenants[t]
			if ta.Tenant == serviceChaosTenant {
				hammered = ta
				continue
			}
			// The isolation gate: a bystander tenant's ledger is *exact* —
			// crash recovery next door moved nothing of theirs.
			if ta.WastedData != 0 || ta.ReclaimedCells != 0 || ta.Failed != 0 {
				return invalid(path, "%s: bystander tenant %s dirtied by chaos (waste %v, reclaimed %v, failed %d)",
					id, ta.Tenant, ta.WastedData, ta.ReclaimedCells, ta.Failed)
			}
			if d := math.Abs(ta.CommittedVolume - ta.PlanVolume); d > 1e-6*(1+ta.PlanVolume) {
				return invalid(path, "%s: bystander tenant %s committed %v ≠ planned %v",
					id, ta.Tenant, ta.CommittedVolume, ta.PlanVolume)
			}
		}
		if hammered == nil {
			return invalid(path, "%s: chaos entry has no %q tenant", id, serviceChaosTenant)
		}
		// ReplannedVolume is the *extra* traffic the survivor re-plans
		// added (CommittedVolume = PlanVolume + ReplannedVolume).
		if hammered.ReclaimedCells <= 0 || hammered.ReplannedVolume <= 0 {
			return invalid(path, "%s: chaos scenario left no trace on tenant %q (reclaimed %v, replanned extra %v)",
				id, serviceChaosTenant, hammered.ReclaimedCells, hammered.ReplannedVolume)
		}
	}
	if !sawChaos {
		return invalid(path, "no chaos entry — the isolation gate did not run")
	}
	if !sawAutoscale {
		return invalid(path, "no autoscale entry — the capacity-model gate did not run")
	}
	fifo, ok := p99["fifo"]
	if !ok {
		return invalid(path, "no fifo entry at the top load %.2f", topLoad)
	}
	for _, pol := range []string{"srpt", "ii"} {
		v, ok := p99[pol]
		if !ok {
			return invalid(path, "no %s entry at the top load %.2f", pol, topLoad)
		}
		if v >= fifo {
			return invalid(path, "%s p99 %.4fs does not beat fifo %.4fs at load %.2f — the naive baseline should lose",
				pol, v, fifo, topLoad)
		}
	}
	return nil
}

// validateAutoscaleEntry checks the capacity-model entry: a recorded
// knee for every job size, every admitted slice at or under its knee,
// and strictly less shipped volume per job than the uncapped entry at
// the same (policy, load) — the measured form of "workers past the knee
// cost bandwidth without buying speedup".
func validateAutoscaleEntry(f results.ServiceBenchFile, e results.ServiceBenchEntry, id string) error {
	const path = ServiceFileName
	if e.Chaos {
		return invalid(path, "%s: autoscale entry doubles as the chaos entry — the gates must not share a run", id)
	}
	if e.AutoscaleTheta <= 0 || !finite(e.AutoscaleTheta) {
		return invalid(path, "%s: autoscale entry without a positive theta (%v)", id, e.AutoscaleTheta)
	}
	if len(e.Knees) == 0 {
		return invalid(path, "%s: autoscale entry recorded no knees", id)
	}
	maxKnee := 0
	for n, k := range e.Knees {
		if k < 1 || k > len(f.Speeds) {
			return invalid(path, "%s: knee %d for n=%s outside [1, %d]", id, k, n, len(f.Speeds))
		}
		if k > maxKnee {
			maxKnee = k
		}
	}
	if e.SliceOverKnee != 0 {
		return invalid(path, "%s: %d jobs sized past the capacity-model knee", id, e.SliceOverKnee)
	}
	if e.MaxSliceWorkers > maxKnee {
		return invalid(path, "%s: max slice %d exceeds the largest knee %d", id, e.MaxSliceWorkers, maxKnee)
	}
	for _, b := range f.Entries {
		if b.Autoscale || b.Chaos || b.Policy != e.Policy || b.LoadFactor != e.LoadFactor {
			continue
		}
		if e.MeanShippedPerJob >= b.MeanShippedPerJob {
			return invalid(path, "%s: autoscaler shipped %.1f elems/job, not below the uncapped %.1f at the same point — no dividend",
				id, e.MeanShippedPerJob, b.MeanShippedPerJob)
		}
		return nil
	}
	return invalid(path, "%s: no uncapped baseline at (%s, %.2f) to compare against", id, e.Policy, e.LoadFactor)
}
