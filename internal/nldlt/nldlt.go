// Package nldlt implements non-linear (α-power) divisible-load scheduling
// and the paper's Section 2 "no free lunch" analysis.
//
// A non-linear divisible workload performs W = N^α (α > 1) units of work
// on N data elements. The literature the paper refutes ([31–35]: Hung &
// Robertazzi; Suresh et al.) transplants classical DLT to this cost model:
// hand worker Pᵢ a chunk of Xᵢ data elements, pay cᵢ·Xᵢ to ship it and
// wᵢ·Xᵢ^α to process it, and choose the Xᵢ (summing to N) to minimize the
// makespan. This package solves that optimization exactly (numerically)
// for both the paper's parallel-links model and the classical sequential
// one-port model — and exposes the quantity that makes it moot: the work
// actually accomplished, ΣXᵢ^α, is a vanishing fraction of N^α as soon as
// the platform grows. The chunks are independent, so any dependency-free
// decomposition simply does not add up to the full computation:
//
//	W_partial / W = 1/P^(α-1)  (homogeneous equal split)
//
// which tends to 0 as P → ∞ — Section 2's central equation.
package nldlt

import (
	"errors"
	"fmt"
	"math"

	"nlfl/internal/dessim"
	"nlfl/internal/platform"
)

// Load describes an α-power divisible workload: N data elements, N^α total
// work, and per-chunk cost w·X^α on a worker of unit speed.
type Load struct {
	N     float64
	Alpha float64
}

// Validate rejects non-positive sizes and α < 1.
func (l Load) Validate() error {
	if l.N <= 0 || math.IsNaN(l.N) || math.IsInf(l.N, 0) {
		return fmt.Errorf("nldlt: invalid load size %v", l.N)
	}
	if l.Alpha < 1 || math.IsNaN(l.Alpha) || math.IsInf(l.Alpha, 0) {
		return fmt.Errorf("nldlt: invalid exponent %v (need α ≥ 1)", l.Alpha)
	}
	return nil
}

// TotalWork returns W = N^α.
func (l Load) TotalWork() float64 { return math.Pow(l.N, l.Alpha) }

// ChunkWork returns the work content of a chunk of x data elements: x^α.
func (l Load) ChunkWork(x float64) float64 { return math.Pow(x, l.Alpha) }

// UnprocessedFraction returns the paper's closed form for the fraction of
// the total work left undone after an equal-split DLT phase on P
// homogeneous workers: (W - W_partial)/W = 1 - 1/P^(α-1).
func UnprocessedFraction(p int, alpha float64) float64 {
	return 1 - math.Pow(float64(p), 1-alpha)
}

// MultiInstallmentWorkFraction returns W_partial/W when the input is
// dealt in m equal installments of equal chunks: m·P chunks of N/(m·P)
// elements accomplish m·P·(N/(mP))^α = N^α·(mP)^(1-α) work, i.e. fraction
// (mP)^(1-α). A corollary that *sharpens* the negative result: classical
// DLT reaches for multi-installment schedules to hide latency, but for
// α > 1 every extra installment shrinks the accomplished work further —
// chunking is the problem, not the schedule.
func MultiInstallmentWorkFraction(p, m int, alpha float64) float64 {
	return math.Pow(float64(p*m), 1-alpha)
}

// Result is a solved non-linear allocation.
type Result struct {
	// Data[i] is the chunk size Xᵢ (data elements) handed to worker i.
	Data []float64
	// Makespan is the common finish time of all participating workers.
	Makespan float64
	// Order is the one-port emission order (nil for parallel links).
	Order []int
	// Load echoes the problem instance.
	Load Load
}

// WorkDone returns W_partial = Σ Xᵢ^α, the work the phase accomplishes.
func (r Result) WorkDone() float64 {
	s := 0.0
	for _, x := range r.Data {
		s += r.Load.ChunkWork(x)
	}
	return s
}

// WorkFraction returns W_partial / W ∈ (0, 1] — the share of the full
// computation an optimal DLT phase can claim. Section 2 proves this tends
// to zero with the platform size for any α > 1.
func (r Result) WorkFraction() float64 { return r.WorkDone() / r.Load.TotalWork() }

// TotalData returns Σ Xᵢ (should equal N).
func (r Result) TotalData() float64 {
	s := 0.0
	for _, x := range r.Data {
		s += x
	}
	return s
}

// Validate checks feasibility: non-negative chunks summing to N.
func (r Result) Validate() error {
	if math.Abs(r.TotalData()-r.Load.N) > 1e-6*r.Load.N {
		return fmt.Errorf("nldlt: chunks sum to %v, want %v", r.TotalData(), r.Load.N)
	}
	for i, x := range r.Data {
		if x < -1e-9 || math.IsNaN(x) {
			return fmt.Errorf("nldlt: chunk %d is %v", i, x)
		}
	}
	return nil
}

// Chunks converts the result into simulator chunks (Work = Xᵢ^α so the
// simulator charges wᵢ·Xᵢ^α of compute time).
func (r Result) Chunks() []dessim.Chunk {
	idxs := r.Order
	if idxs == nil {
		idxs = make([]int, len(r.Data))
		for i := range idxs {
			idxs[i] = i
		}
	}
	chunks := make([]dessim.Chunk, 0, len(idxs))
	for _, i := range idxs {
		chunks = append(chunks, dessim.Chunk{Worker: i, Data: r.Data[i], Work: r.Load.ChunkWork(r.Data[i])})
	}
	return chunks
}

// EqualSplit hands every worker N/P data elements — the strategy Section 2
// analyzes on homogeneous platforms, where it is optimal: "each Pᵢ
// receives N/P data elements in time (N/P)c and starts processing them
// immediately until time (N/P)c + (N/P)^α w".
func EqualSplit(p *platform.Platform, l Load) (Result, error) {
	if err := l.Validate(); err != nil {
		return Result{}, err
	}
	n := float64(p.P())
	data := make([]float64, p.P())
	ms := 0.0
	for i := range data {
		data[i] = l.N / n
		w := p.Worker(i)
		t := w.CommTime(data[i]) + w.PowerCompTime(data[i], l.Alpha)
		if t > ms {
			ms = t
		}
	}
	return Result{Data: data, Makespan: ms, Load: l}, nil
}

// chunkForDeadline finds the largest X ≥ 0 such that
// offset + X/bw + X^α/speed ≤ T, by bisection (the left side is strictly
// increasing in X). It returns 0 when even X=0 misses the deadline.
func chunkForDeadline(offset, bw, speed, alpha, t float64) float64 {
	if offset >= t {
		return 0
	}
	budget := t - offset
	cost := func(x float64) float64 { return x/bw + math.Pow(x, alpha)/speed }
	hi := 1.0
	for cost(hi) < budget {
		hi *= 2
		if math.IsInf(hi, 0) {
			return hi
		}
	}
	lo := 0.0
	for i := 0; i < 200 && hi-lo > 1e-15*(1+hi); i++ {
		mid := (lo + hi) / 2
		if cost(mid) <= budget {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}

// OptimalParallel solves the non-linear single-round allocation under the
// paper's parallel-links model: choose Xᵢ ≥ 0 with ΣXᵢ = N minimizing the
// makespan. At the optimum all workers finish simultaneously at time T
// with cᵢXᵢ + wᵢXᵢ^α = T; the solver bisects on T (ΣXᵢ(T) is strictly
// increasing).
func OptimalParallel(p *platform.Platform, l Load) (Result, error) {
	return solveEqualFinish(p, l, nil, false)
}

// OptimalOnePort solves the sequential single-installment problem of the
// non-linear DLT literature: the master feeds workers one after the other
// in the given order (all workers, default order when nil), worker k
// starting its transfer when worker k-1's ends, and all workers finish at
// the same time T:
//
//	Σ_{j≤k} c_j X_j + w_k X_k^α = T  for every k.
//
// This is the optimization problem of references [31–35], solved here by
// nested bisection.
func OptimalOnePort(p *platform.Platform, l Load, order []int) (Result, error) {
	if order == nil {
		order = make([]int, p.P())
		for i := range order {
			order[i] = i
		}
	}
	if len(order) != p.P() {
		return Result{}, fmt.Errorf("nldlt: order has %d entries for %d workers", len(order), p.P())
	}
	seen := make([]bool, p.P())
	for _, idx := range order {
		if idx < 0 || idx >= p.P() || seen[idx] {
			return Result{}, fmt.Errorf("nldlt: order is not a permutation: %v", order)
		}
		seen[idx] = true
	}
	return solveEqualFinish(p, l, order, true)
}

// solveEqualFinish bisects on the common finish time T. For one-port mode
// the per-worker communication offsets accumulate in emission order.
func solveEqualFinish(p *platform.Platform, l Load, order []int, onePort bool) (Result, error) {
	if err := l.Validate(); err != nil {
		return Result{}, err
	}
	idxs := order
	if idxs == nil {
		idxs = make([]int, p.P())
		for i := range idxs {
			idxs[i] = i
		}
	}
	totalFor := func(t float64) ([]float64, float64) {
		data := make([]float64, p.P())
		sum := 0.0
		offset := 0.0
		for _, i := range idxs {
			w := p.Worker(i)
			x := chunkForDeadline(offset, w.Bandwidth, w.Speed, l.Alpha, t)
			data[i] = x
			sum += x
			if onePort {
				offset += w.CommTime(x)
			}
		}
		return data, sum
	}
	// Bracket T so that ΣXᵢ(T) ≥ N.
	tHi := 1.0
	for _, sum := totalFor(tHi); sum < l.N; _, sum = totalFor(tHi) {
		tHi *= 2
		if math.IsInf(tHi, 0) {
			return Result{}, errors.New("nldlt: failed to bracket the makespan")
		}
	}
	tLo := 0.0
	for i := 0; i < 200 && tHi-tLo > 1e-14*(1+tHi); i++ {
		mid := (tLo + tHi) / 2
		if _, sum := totalFor(mid); sum < l.N {
			tLo = mid
		} else {
			tHi = mid
		}
	}
	data, sum := totalFor(tHi)
	// Normalize the residual bisection slack onto the chunks so that the
	// result is exactly feasible (ΣXᵢ = N).
	if sum > 0 {
		scale := l.N / sum
		for i := range data {
			data[i] *= scale
		}
	}
	res := Result{Data: data, Makespan: tHi, Load: l}
	if onePort {
		res.Order = append([]int(nil), idxs...)
	}
	return res, nil
}
