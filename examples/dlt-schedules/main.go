// Dlt-schedules demonstrates the classical linear DLT background the
// paper builds on (Section 1.1): optimal single-round allocations under
// the parallel-links and one-port models, the effect of emission order,
// multi-round pipelining, and latency-driven resource selection — all
// cross-checked on the discrete-event simulator and drawn as Gantt
// charts.
package main

import (
	"fmt"
	"log"

	"nlfl/internal/dessim"
	"nlfl/internal/dlt"
	"nlfl/internal/platform"
)

func main() {
	// A small heterogeneous star: speeds and bandwidths differ per worker.
	pl, err := platform.New([]platform.Worker{
		{Speed: 1, Bandwidth: 4},
		{Speed: 2, Bandwidth: 2},
		{Speed: 4, Bandwidth: 1},
		{Speed: 2, Bandwidth: 3},
	})
	if err != nil {
		log.Fatal(err)
	}
	const n = 120.0

	// Optimal single-round, parallel links: everyone finishes together.
	par, err := dlt.OptimalParallel(pl, n)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("parallel links: makespan %.4g, fractions %.3f\n", par.Makespan, par.Fractions)
	tl, err := dessim.RunSingleRound(pl, dlt.Chunks(par, n), dessim.ParallelLinks)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(tl.Gantt(56))

	// One-port: the emission order matters; the bandwidth order is optimal.
	best, err := dlt.OptimalOnePort(pl, n, nil)
	if err != nil {
		log.Fatal(err)
	}
	worst, err := dlt.OptimalOnePort(pl, n, []int{2, 1, 3, 0}) // slowest link first
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\none-port, bandwidth order %v: makespan %.4g\n", best.Order, best.Makespan)
	fmt.Printf("one-port, inverted order %v: makespan %.4g (%.1f%% worse)\n",
		worst.Order, worst.Makespan, 100*(worst.Makespan/best.Makespan-1))

	// Multi-round pipelining shrinks the makespan further.
	single, err := dlt.SimulatedMakespan(pl, dlt.Chunks(par, n), dessim.ParallelLinks)
	if err != nil {
		log.Fatal(err)
	}
	for _, rounds := range []int{2, 5, 20} {
		chunks, err := dlt.MultiRoundUniform(par, n, rounds)
		if err != nil {
			log.Fatal(err)
		}
		ms, err := dlt.SimulatedMakespan(pl, chunks, dessim.ParallelLinks)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("multi-round r=%-3d makespan %.4g (single-round %.4g)\n", rounds, ms, single)
	}

	// Affine costs: a worker behind a high-latency link is excluded.
	affine, err := dlt.OptimalParallelAffine(pl, dlt.AffineCosts{
		Latency: []float64{0, 0.5, 1, 1e6},
	}, n)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwith latencies {0, 0.5, 1, 10⁶}: %d of %d workers participate, makespan %.4g\n",
		dlt.ParticipantCount(affine), pl.P(), affine.Makespan)
}
