package bench

import (
	"context"
	"errors"
	"fmt"
	"math"
	goruntime "runtime"
	"time"

	"nlfl/internal/faults"
	"nlfl/internal/results"
	nrt "nlfl/internal/runtime"
	"nlfl/internal/service"
	"nlfl/internal/stats"
	"nlfl/internal/trace"
)

// The service sweep runs a fixed envelope, like the chaos sweep: the
// Poisson arrival rates below are calibrated against this rate, speed
// profile and job mix so "load 0.9" means 90% of the fleet's aggregate
// compute capacity — slow enough that queueing dynamics (not Go
// scheduler noise) dominate the latency quantiles, fast enough that a
// full sweep stays under a minute.
var serviceSpeeds = []float64{1, 2, 3, 4}

const (
	serviceRate = 3e4 // cells/s per unit speed
	// serviceBandwidth makes the shared one-port link the scarce
	// resource: a mean job ships ~400 elements (~16 ms of link time)
	// against ~14 ms of aggregate compute. This is the regime where
	// naive FIFO is provably bad (Gallet–Robert–Vivien): job-exclusive
	// service cannot overlap one job's compute tail with the next job's
	// transfers, so the link idles while workers finish and FIFO's
	// effective capacity collapses to ~0.67 of the fleet's, while the
	// interleaved policies (~0.95) keep the link saturated by feeding
	// the next job's rectangles during the current job's computes.
	serviceBandwidth = 2.5e4
	// serviceChaosTenant is the tenant whose jobs carry the job-scoped
	// crash scenario in the chaos entry.
	serviceChaosTenant = "chaos"
)

// serviceJobMix is the offered job-size distribution.
var serviceJobSizes = []struct {
	n    int
	prob float64
}{
	{48, 0.5},
	{64, 0.3},
	{96, 0.2},
}

// serviceFleetCapacity is the fleet's aggregate compute rate in cells/s.
func serviceFleetCapacity() float64 {
	capacity := 0.0
	for _, s := range serviceSpeeds {
		capacity += s * serviceRate
	}
	return capacity
}

// serviceMeanCells is the mix's expected job cost in cells.
func serviceMeanCells() float64 {
	mean := 0.0
	for _, s := range serviceJobSizes {
		mean += s.prob * float64(s.n) * float64(s.n)
	}
	return mean
}

// serviceLoads are the offered loads relative to the fleet's aggregate
// compute capacity. The top load (0.8) sits in the window the
// calibration above opens: well past FIFO's effective capacity (~0.67,
// so its queue grows without bound) yet comfortably inside SRPT's and
// II's (~0.95, so their tails stay bounded).
func serviceLoads(quick bool) []float64 {
	if quick {
		return []float64{0.5, 0.8}
	}
	return []float64{0.4, 0.65, 0.8}
}

// serviceJobs is the offered job count per entry. The run must be long
// enough for an overloaded FIFO queue to visibly diverge (its backlog
// grows at roughly (ρ − 0.67)·λ jobs per second, so the divergence is
// linear in run length while the stable policies' tails are not), which
// takes ~2 s of arrivals at the top load. Quick mode keeps the full
// job count and economizes on swept loads instead.
func serviceJobs(quick bool) int {
	return 120
}

// RunServiceSweep measures the multi-tenant fleet service under a seeded
// Poisson arrival stream: every scheduling policy at every offered load,
// plus one chaos entry where a single tenant's jobs carry a job-scoped
// crash scenario. Every completed job's trace is audited by the
// invariant oracle, and the chaos entry's clean tenants must show the
// exact committed-equals-planned ledger — the isolation guarantee as a
// measured gate, not a comment. A cancelled ctx aborts the in-flight
// run and stops the sweep.
//
// Wall-clock latencies vary run to run; the admission counters, volume
// ledgers and the policy ordering gates (SRPT and interleaved
// installments beat FIFO's p99 at the top load) are the reproducible
// part of the record. See EXPERIMENTS.md for the regeneration recipe.
func RunServiceSweep(ctx context.Context, cfg Config) (results.ServiceBenchFile, error) {
	file := results.ServiceBenchFile{
		Schema:        results.BenchServiceSchema,
		Seed:          cfg.Seed,
		Quick:         cfg.Quick,
		WorkPerSecond: serviceRate,
		Speeds:        serviceSpeeds,
		Bandwidth:     serviceBandwidth,
		GoVersion:     goruntime.Version(),
		GOMAXPROCS:    maxProcs(),
	}
	capacity := serviceFleetCapacity()
	jobs := serviceJobs(cfg.Quick)
	loads := serviceLoads(cfg.Quick)
	for _, pol := range service.Policies() {
		for _, load := range loads {
			lambda := load * capacity / serviceMeanCells()
			entry, err := runServiceEntry(ctx, cfg.Seed, pol, load, lambda, jobs, false)
			if err != nil {
				return file, fmt.Errorf("bench: service %s load=%.2f: %w", pol, load, err)
			}
			file.Entries = append(file.Entries, entry)
		}
	}
	// The isolation entry: one tenant hammered by a per-job crash
	// scenario under moderate load; the other tenants must come out with
	// exact ledgers.
	load := 0.6
	lambda := load * capacity / serviceMeanCells()
	entry, err := runServiceEntry(ctx, cfg.Seed, service.PolicySRPT, load, lambda, jobs, true)
	if err != nil {
		return file, fmt.Errorf("bench: service chaos entry: %w", err)
	}
	file.Entries = append(file.Entries, entry)
	return file, nil
}

// runServiceEntry runs one (policy, load) point: a Poisson stream of
// jobs from three round-robin tenants through a fresh fleet.
func runServiceEntry(ctx context.Context, seed int64, pol service.Policy, load, lambda float64, jobs int, chaos bool) (results.ServiceBenchEntry, error) {
	entry := results.ServiceBenchEntry{
		Policy:           string(pol),
		LoadFactor:       load,
		LambdaJobsPerSec: lambda,
		Chaos:            chaos,
		Jobs:             jobs,
	}
	fleet, err := service.New(service.Config{
		Speeds:        serviceSpeeds,
		WorkPerSecond: serviceRate,
		Link:          nrt.Link{ElemsPerSecond: serviceBandwidth},
		Policy:        pol,
		// Strong anti-starvation aging: a waiting job sheds 20% of fleet
		// capacity per second from its SRPT key, so the big jobs in the
		// mix overtake after ~100 ms of waiting instead of riding the
		// tail — SRPT's p99 then measures scheduling, not starvation.
		AgingCellsPerSec: 0.2 * serviceFleetCapacity(),
		// Roomy admission: the gates compare queueing latency across
		// policies, so overload must queue (and hurt p99), not shed.
		MaxQueue:    4 * jobs,
		TenantQuota: 2 * jobs,
		VerifyEvery: 1009,
	})
	if err != nil {
		return entry, err
	}
	defer fleet.Close()

	// Two RNG streams: the job mix is shared by every policy at every
	// load (same seed → same job sequence → comparable quantiles), the
	// arrival stream by every policy at the same load.
	mixRNG := stats.NewRNG(seed)
	arrRNG := stats.NewRNG(seed + int64(1e6*load))
	tenants := []string{"tenant-a", "tenant-b", "tenant-c"}
	if chaos {
		tenants = []string{"tenant-a", "tenant-b", serviceChaosTenant}
	}

	handles := make([]*service.JobHandle, 0, jobs)
	for i := 0; i < jobs; i++ {
		if err := ctx.Err(); err != nil {
			return entry, err
		}
		if i > 0 {
			wait := arrRNG.ExpFloat64() / lambda
			t := time.NewTimer(time.Duration(wait * float64(time.Second)))
			select {
			case <-ctx.Done():
				t.Stop()
				return entry, ctx.Err()
			case <-t.C:
			}
		}
		u := mixRNG.Float64()
		n := serviceJobSizes[len(serviceJobSizes)-1].n
		acc := 0.0
		for _, s := range serviceJobSizes {
			acc += s.prob
			if u < acc {
				n = s.n
				break
			}
		}
		// Every job uses the het strategy: the fleet is heterogeneous, so
		// PERI-SUM rectangles are the right plan, and fixing the strategy
		// isolates the scheduling policy as the only variable. One chunk
		// per worker also means a job cannot hide its own ramp — the
		// cross-job comm/compute overlap (or FIFO's lack of it) is what
		// the latency quantiles measure.
		spec := service.JobSpec{
			Tenant:   tenants[i%len(tenants)],
			N:        n,
			Strategy: "het",
			Seed:     seed + int64(i),
		}
		if chaos && spec.Tenant == serviceChaosTenant {
			// Job-scoped: worker 3 (the fastest) dies 5 ms into *this
			// job*; the fleet re-plans onto the job's survivors while the
			// same worker keeps serving everyone else.
			spec.Chaos = service.ChaosSpec{
				Scenario:   faults.SingleCrash(3, 0.005),
				MaxRetries: 4,
			}
		}
		h, err := fleet.Submit(spec)
		if err != nil {
			if errors.Is(err, service.ErrAdmissionRejected) {
				continue // counted via fleet accounting below
			}
			return entry, err
		}
		handles = append(handles, h)
	}

	var latencies []float64
	firstSubmit, lastDone := math.Inf(1), math.Inf(-1)
	for _, h := range handles {
		rep, err := h.Wait(ctx)
		if rep == nil {
			return entry, err // ctx expired: no report to harvest
		}
		if rep.Failed {
			if !chaos {
				return entry, fmt.Errorf("job %d failed without chaos: %s", rep.ID, rep.Err)
			}
			continue
		}
		entry.Violations += len(trace.Check(rep.Trace, rep.Expect(1e-9)))
		latencies = append(latencies, rep.Latency)
		firstSubmit = math.Min(firstSubmit, rep.SubmitTime)
		lastDone = math.Max(lastDone, rep.DoneTime)
	}
	if len(latencies) == 0 {
		return entry, fmt.Errorf("no job completed")
	}

	acc := fleet.Accounting()
	entry.Admitted = acc.Submitted - acc.Rejected
	entry.Rejected = acc.Rejected
	entry.Completed = acc.Completed
	entry.Failed = acc.Failed
	entry.Makespan = lastDone - firstSubmit
	if entry.Makespan > 0 {
		entry.ThroughputJobsPerSec = float64(entry.Completed) / entry.Makespan
	}
	entry.LatencyP50 = stats.Quantile(latencies, 0.5)
	entry.LatencyP99 = stats.Quantile(latencies, 0.99)
	entry.LatencyMean = stats.Mean(latencies)
	entry.LatencyMax = stats.Max(latencies)
	for _, ta := range acc.Tenants {
		entry.Tenants = append(entry.Tenants, results.ServiceTenantStat{
			Tenant:          ta.Tenant,
			Submitted:       ta.Submitted,
			Admitted:        ta.Admitted,
			Rejected:        ta.Rejected,
			Completed:       ta.Completed,
			Failed:          ta.Failed,
			Cancelled:       ta.Cancelled,
			PlanVolume:      ta.PlanVolume,
			ReplannedVolume: ta.ReplannedVolume,
			CommittedVolume: ta.CommittedVolume,
			WastedData:      ta.WastedData,
			ReclaimedCells:  float64(ta.ReclaimedCells),
		})
	}
	return entry, nil
}

// ValidateService is the schema check for a BENCH_service payload: right
// schema id, non-empty entries, finite ordered latency quantiles, clean
// admission arithmetic, zero trace violations, the policy gate (SRPT and
// interleaved installments strictly beat FIFO's p99 at the highest
// fault-free load — naive FIFO is the provably bad baseline), and the
// isolation gate (in the chaos entry, only the chaos tenant shows
// reclaimed work; every other tenant's ledger is exact).
func ValidateService(f results.ServiceBenchFile) error {
	const path = ServiceFileName
	if f.Schema != results.BenchServiceSchema {
		return invalid(path, "schema %q, want %q", f.Schema, results.BenchServiceSchema)
	}
	if len(f.Entries) == 0 {
		return invalid(path, "no entries")
	}
	if !finite(f.WorkPerSecond) || f.WorkPerSecond <= 0 {
		return invalid(path, "non-positive work rate %v", f.WorkPerSecond)
	}
	if len(f.Speeds) == 0 {
		return invalid(path, "no speed profile")
	}
	topLoad := 0.0
	for _, e := range f.Entries {
		if !e.Chaos && e.LoadFactor > topLoad {
			topLoad = e.LoadFactor
		}
	}
	p99 := map[string]float64{} // policy → p99 at the top fault-free load
	sawChaos := false
	for i, e := range f.Entries {
		id := fmt.Sprintf("entry %d (%s load=%.2f chaos=%v)", i, e.Policy, e.LoadFactor, e.Chaos)
		if e.Policy == "" || e.Jobs <= 0 {
			return invalid(path, "%s: missing identity fields", id)
		}
		for _, v := range []struct {
			name  string
			value float64
		}{
			{"lambda", e.LambdaJobsPerSec},
			{"loadFactor", e.LoadFactor},
			{"makespan", e.Makespan},
			{"throughput", e.ThroughputJobsPerSec},
			{"latencyP50", e.LatencyP50},
			{"latencyP99", e.LatencyP99},
			{"latencyMean", e.LatencyMean},
			{"latencyMax", e.LatencyMax},
		} {
			if !finite(v.value) || v.value <= 0 {
				return invalid(path, "%s: non-positive or non-finite %s %v", id, v.name, v.value)
			}
		}
		if e.LatencyP50 > e.LatencyP99 || e.LatencyP99 > e.LatencyMax {
			return invalid(path, "%s: latency quantiles out of order (p50 %v, p99 %v, max %v)",
				id, e.LatencyP50, e.LatencyP99, e.LatencyMax)
		}
		if e.Admitted != e.Jobs-e.Rejected {
			return invalid(path, "%s: admitted %d ≠ jobs %d − rejected %d", id, e.Admitted, e.Jobs, e.Rejected)
		}
		if e.Completed+e.Failed != e.Admitted {
			return invalid(path, "%s: completed %d + failed %d ≠ admitted %d", id, e.Completed, e.Failed, e.Admitted)
		}
		if e.Violations != 0 {
			return invalid(path, "%s: %d invariant violations", id, e.Violations)
		}
		if len(e.Tenants) == 0 {
			return invalid(path, "%s: no tenant breakdown", id)
		}
		if !e.Chaos {
			if e.LoadFactor == topLoad {
				p99[e.Policy] = e.LatencyP99
			}
			for _, ta := range e.Tenants {
				if ta.WastedData != 0 || ta.ReclaimedCells != 0 || ta.Failed != 0 {
					return invalid(path, "%s: fault-free tenant %s shows waste %v / reclaimed %v / failed %d",
						id, ta.Tenant, ta.WastedData, ta.ReclaimedCells, ta.Failed)
				}
			}
			continue
		}
		sawChaos = true
		var hammered *results.ServiceTenantStat
		for t := range e.Tenants {
			ta := &e.Tenants[t]
			if ta.Tenant == serviceChaosTenant {
				hammered = ta
				continue
			}
			// The isolation gate: a bystander tenant's ledger is *exact* —
			// crash recovery next door moved nothing of theirs.
			if ta.WastedData != 0 || ta.ReclaimedCells != 0 || ta.Failed != 0 {
				return invalid(path, "%s: bystander tenant %s dirtied by chaos (waste %v, reclaimed %v, failed %d)",
					id, ta.Tenant, ta.WastedData, ta.ReclaimedCells, ta.Failed)
			}
			if d := math.Abs(ta.CommittedVolume - ta.PlanVolume); d > 1e-6*(1+ta.PlanVolume) {
				return invalid(path, "%s: bystander tenant %s committed %v ≠ planned %v",
					id, ta.Tenant, ta.CommittedVolume, ta.PlanVolume)
			}
		}
		if hammered == nil {
			return invalid(path, "%s: chaos entry has no %q tenant", id, serviceChaosTenant)
		}
		// ReplannedVolume is the *extra* traffic the survivor re-plans
		// added (CommittedVolume = PlanVolume + ReplannedVolume).
		if hammered.ReclaimedCells <= 0 || hammered.ReplannedVolume <= 0 {
			return invalid(path, "%s: chaos scenario left no trace on tenant %q (reclaimed %v, replanned extra %v)",
				id, serviceChaosTenant, hammered.ReclaimedCells, hammered.ReplannedVolume)
		}
	}
	if !sawChaos {
		return invalid(path, "no chaos entry — the isolation gate did not run")
	}
	fifo, ok := p99["fifo"]
	if !ok {
		return invalid(path, "no fifo entry at the top load %.2f", topLoad)
	}
	for _, pol := range []string{"srpt", "ii"} {
		v, ok := p99[pol]
		if !ok {
			return invalid(path, "no %s entry at the top load %.2f", pol, topLoad)
		}
		if v >= fifo {
			return invalid(path, "%s p99 %.4fs does not beat fifo %.4fs at load %.2f — the naive baseline should lose",
				pol, v, fifo, topLoad)
		}
	}
	return nil
}
