package affinity

import (
	"math"
	"testing"

	"nlfl/internal/platform"
	"nlfl/internal/stats"
)

func TestRunBoundedExtremes(t *testing.T) {
	r := stats.NewRNG(4)
	pl, err := platform.Generate(6, stats.Uniform{Lo: 1, Hi: 20}, r)
	if err != nil {
		t.Fatal(err)
	}
	const n, g = 400.0, 16
	// capacity 0 == no-cache accounting.
	zero, err := RunBounded(pl, n, g, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	noCache, err := Run(pl, n, g, PolicyNoCache)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(zero.Volume-noCache.Volume) > 1e-9 {
		t.Errorf("capacity 0 volume %v != no-cache %v", zero.Volume, noCache.Volume)
	}
	// capacity ≥ 2g == unlimited affinity.
	full, err := RunBounded(pl, n, g, 2*g, 1)
	if err != nil {
		t.Fatal(err)
	}
	unlimited, err := Run(pl, n, g, PolicyAffinity)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(full.Volume-unlimited.Volume) > 1e-9 {
		t.Errorf("capacity 2g volume %v != unlimited affinity %v", full.Volume, unlimited.Volume)
	}
}

func TestRunBoundedMonotoneInCapacity(t *testing.T) {
	r := stats.NewRNG(5)
	pl, err := platform.Generate(5, stats.Uniform{Lo: 1, Hi: 10}, r)
	if err != nil {
		t.Fatal(err)
	}
	const n, g = 300.0, 12
	prev := math.Inf(1)
	for _, capVal := range []int{0, 2, 4, 8, 24} {
		res, err := RunBounded(pl, n, g, capVal, 1)
		if err != nil {
			t.Fatal(err)
		}
		// More memory can only reduce the volume (weakly; LRU is not
		// strictly monotone in adversarial cases, so allow 5% slack).
		if res.Volume > prev*1.05 {
			t.Errorf("capacity %d volume %v far above smaller-capacity %v", capVal, res.Volume, prev)
		}
		if res.Volume < prev {
			prev = res.Volume
		}
	}
}

func TestRunBoundedValidation(t *testing.T) {
	pl, _ := platform.Homogeneous(2, 1, 1)
	if _, err := RunBounded(pl, 100, 0, 4, 1); err == nil {
		t.Error("g=0 should fail")
	}
	if _, err := RunBounded(pl, 100, 4, -1, 1); err == nil {
		t.Error("negative capacity should fail")
	}
	if _, err := RunBounded(pl, -1, 4, 4, 1); err == nil {
		t.Error("negative n should fail")
	}
}

func TestLRUCacheEviction(t *testing.T) {
	c := newLRU(2)
	c.touch(1)
	c.touch(2)
	c.touch(1) // refresh 1; 2 is now oldest
	c.touch(3) // evicts 2
	if !c.has(1) || c.has(2) || !c.has(3) {
		t.Errorf("LRU state wrong: 1=%v 2=%v 3=%v", c.has(1), c.has(2), c.has(3))
	}
}
