// Package mrdlt implements divisible MapReduce scheduling — the paper's
// second escape route for non-linear workloads (Section 2: "decompose the
// overall operation using a long sequence of MapReduce operations, such
// as proposed in [25]" — Berlińska & Drozdowski, JPDC 2011).
//
// The model: a master holds V units of input. Mapper i receives a chunk
// βᵢ·V over a one-port link (the master serializes its sends), applies a
// linear map (rate 1/speed), and produces γ·βᵢ·V units of intermediate
// data, partitioned evenly across the r reducers. Each reducer ingests
// its partitions through its own port (transfers from distinct mappers
// serialize at the reducer) and then reduces linearly. The objective is
// the makespan of the full map → shuffle → reduce pipeline.
//
// Because every phase is linear in the data, this IS a divisible-load
// problem — the case where DLT genuinely applies — and the package shows
// what the optimization buys: the load-balanced chunk vector beats the
// naive equal split, exactly the kind of gain that Section 2 proves
// impossible for α > 1 single-phase workloads.
package mrdlt

import (
	"errors"
	"fmt"
	"math"

	"nlfl/internal/dessim"
	"nlfl/internal/dlt"
	"nlfl/internal/platform"
)

// Job describes one divisible MapReduce computation.
type Job struct {
	// V is the total input volume (data units).
	V float64
	// Gamma is the map output ratio: a chunk of x produces γ·x
	// intermediate units.
	Gamma float64
	// Reducers is r ≥ 1; each reducer has unit ingress bandwidth and the
	// given speed.
	Reducers     int
	ReducerSpeed float64
}

// Validate rejects nonsensical jobs.
func (j Job) Validate() error {
	if j.V <= 0 || math.IsNaN(j.V) || math.IsInf(j.V, 0) {
		return fmt.Errorf("mrdlt: invalid volume %v", j.V)
	}
	if j.Gamma < 0 || math.IsNaN(j.Gamma) {
		return fmt.Errorf("mrdlt: invalid gamma %v", j.Gamma)
	}
	if j.Reducers < 1 {
		return fmt.Errorf("mrdlt: need at least one reducer, got %d", j.Reducers)
	}
	if j.ReducerSpeed <= 0 {
		return fmt.Errorf("mrdlt: invalid reducer speed %v", j.ReducerSpeed)
	}
	return nil
}

// Result is one simulated schedule.
type Result struct {
	// Beta is the chunk fraction per mapper.
	Beta []float64
	// Makespan is the completion time of the last reducer.
	Makespan float64
	// MapFinish / ShuffleFinish mark phase completions.
	MapFinish, ShuffleFinish float64
}

// Simulate executes the job for a given chunk vector beta (Σβ = 1,
// one entry per platform worker acting as mapper) and returns the
// timeline milestones. Mapper emission order is the platform order.
func Simulate(pl *platform.Platform, job Job, beta []float64) (Result, error) {
	if err := job.Validate(); err != nil {
		return Result{}, err
	}
	if len(beta) != pl.P() {
		return Result{}, fmt.Errorf("mrdlt: beta has %d entries for %d mappers", len(beta), pl.P())
	}
	sum := 0.0
	for i, b := range beta {
		if b < -1e-12 || math.IsNaN(b) {
			return Result{}, fmt.Errorf("mrdlt: beta[%d] = %v", i, b)
		}
		sum += b
	}
	if math.Abs(sum-1) > 1e-6 {
		return Result{}, fmt.Errorf("mrdlt: beta sums to %v", sum)
	}

	// Phase 1+2: one-port distribution then map compute.
	port := &dessim.Resource{}
	mapDone := make([]float64, pl.P())
	mapFinish := 0.0
	for i := 0; i < pl.P(); i++ {
		w := pl.Worker(i)
		chunk := beta[i] * job.V
		_, recvEnd := port.Book(0, w.CommTime(chunk))
		mapDone[i] = recvEnd + w.LinearCompTime(chunk)
		if mapDone[i] > mapFinish {
			mapFinish = mapDone[i]
		}
	}

	// Phase 3: shuffle. Mapper i ships γ·βᵢ·V/r to each reducer; the
	// transfers serialize at each reducer's ingress port (unit
	// bandwidth), in mapper-completion order (FIFO at the reducer).
	order := make([]int, pl.P())
	for i := range order {
		order[i] = i
	}
	// Stable sort by map completion (earlier mappers ship first).
	for a := 1; a < len(order); a++ {
		for b := a; b > 0 && mapDone[order[b]] < mapDone[order[b-1]]; b-- {
			order[b], order[b-1] = order[b-1], order[b]
		}
	}
	reducerPorts := make([]dessim.Resource, job.Reducers)
	reducerData := make([]float64, job.Reducers)
	shuffleFinish := 0.0
	for _, i := range order {
		out := job.Gamma * beta[i] * job.V / float64(job.Reducers)
		for r := 0; r < job.Reducers; r++ {
			_, end := reducerPorts[r].Book(mapDone[i], out) // unit bandwidth
			reducerData[r] += out
			if end > shuffleFinish {
				shuffleFinish = end
			}
		}
	}

	// Phase 4: reduce compute (starts when the reducer's ingress drains).
	makespan := 0.0
	for r := 0; r < job.Reducers; r++ {
		finish := reducerPorts[r].FreeAt() + reducerData[r]/job.ReducerSpeed
		if finish > makespan {
			makespan = finish
		}
	}
	if makespan < shuffleFinish {
		makespan = shuffleFinish
	}
	return Result{
		Beta:          append([]float64(nil), beta...),
		Makespan:      makespan,
		MapFinish:     mapFinish,
		ShuffleFinish: shuffleFinish,
	}, nil
}

// EqualSplit simulates βᵢ = 1/p.
func EqualSplit(pl *platform.Platform, job Job) (Result, error) {
	beta := make([]float64, pl.P())
	for i := range beta {
		beta[i] = 1 / float64(pl.P())
	}
	return Simulate(pl, job, beta)
}

// Optimize searches for a low-makespan chunk vector by iterative
// proportional reallocation: mappers on the critical path shed load to
// the others until the simulated makespan stops improving. It returns
// the best vector found (deterministic; typically a few dozen
// simulations).
func Optimize(pl *platform.Platform, job Job, iters int) (Result, error) {
	if iters <= 0 {
		iters = 60
	}
	p := pl.P()
	beta := make([]float64, p)
	// Warm start: the parallel-model DLT shares ...
	for i := range beta {
		w := pl.Worker(i)
		beta[i] = 1 / (1/w.Bandwidth + 1/w.Speed)
	}
	normalize(beta)
	best, err := Simulate(pl, job, beta)
	if err != nil {
		return Result{}, err
	}
	// ... plus two more starting candidates: the exact one-port linear DLT
	// allocation (optimal for the map phase in isolation) and the equal
	// split (the search must never lose to the naive baseline).
	if op, err := dlt.OptimalOnePort(pl, job.V, nil); err == nil {
		if cand, err := Simulate(pl, job, op.Fractions); err == nil && cand.Makespan < best.Makespan {
			best = cand
			copy(beta, op.Fractions)
		}
	}
	if eq, err := EqualSplit(pl, job); err == nil && eq.Makespan < best.Makespan {
		best = eq
	}
	for it := 0; it < iters; it++ {
		// Per-mapper completion pressure: how late this mapper's share
		// makes everything. Approximate with its map completion plus its
		// shuffle contribution.
		res, err := Simulate(pl, job, beta)
		if err != nil {
			return Result{}, err
		}
		pressures := make([]float64, p)
		var mean float64
		for i := 0; i < p; i++ {
			w := pl.Worker(i)
			pressures[i] = w.CommTime(beta[i]*job.V) + w.LinearCompTime(beta[i]*job.V)
			mean += pressures[i]
		}
		mean /= float64(p)
		if mean == 0 {
			break
		}
		improved := false
		next := make([]float64, p)
		for i := range next {
			// Move load away from slow paths, toward fast ones.
			adj := math.Pow(mean/math.Max(pressures[i], 1e-12), 0.5)
			next[i] = math.Max(beta[i]*adj, 1e-9)
		}
		normalize(next)
		cand, err := Simulate(pl, job, next)
		if err != nil {
			return Result{}, err
		}
		if cand.Makespan < best.Makespan {
			best = cand
			improved = true
		}
		if cand.Makespan <= res.Makespan {
			copy(beta, next)
		}
		if !improved && it > 10 {
			break
		}
	}
	return best, nil
}

func normalize(xs []float64) {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	for i := range xs {
		xs[i] /= s
	}
}

// SpeedupOverEqual returns makespan(equal)/makespan(optimized) — the gain
// DLT-style optimization delivers on this genuinely divisible workload.
func SpeedupOverEqual(pl *platform.Platform, job Job) (float64, error) {
	eq, err := EqualSplit(pl, job)
	if err != nil {
		return 0, err
	}
	opt, err := Optimize(pl, job, 0)
	if err != nil {
		return 0, err
	}
	if opt.Makespan == 0 {
		return 0, errors.New("mrdlt: degenerate schedule")
	}
	return eq.Makespan / opt.Makespan, nil
}
