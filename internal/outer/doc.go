// Package outer implements the three data-distribution strategies the
// paper compares for the outer product a̅ᵀ × b̅ of two size-N vectors
// (Section 4.1) — the N²-work, 2N-data workload that epitomizes a
// non-linear divisible load.
//
// All strategies enforce (near-)perfect load balancing — each worker gets
// computational area proportional to its normalized speed xᵢ — and are
// scored by the total volume of vector data the master must ship:
//
//   - Homogeneous Blocks (Comm_hom): the MapReduce-style layout. The N×N
//     computation domain is cut into identical squares sized for the
//     slowest worker (D = √x₁·N, one block for P₁) and distributed demand-
//     driven. Volume: Comm_hom = 2N·√(Σsᵢ/s₁).
//   - Comm_hom/k: the realistic variant. Block counts must be integers, so
//     the ideal block size can leave a prohibitive load imbalance; the
//     block side is divided by k = 1, 2, 3, … until the demand-driven
//     imbalance e = (t_max - t_min)/t_min drops to the 1% target of
//     Section 4.3.
//   - Heterogeneous Blocks (Comm_het): one rectangle per worker, from the
//     PERI-SUM partitioner, with area xᵢ and data cost (wᵢ+hᵢ)·N.
//
// The reference point is LB_comm = 2N·Σ√xᵢ, each worker receiving a
// perfect square of area xᵢN².
//
// # API
//
// [Commhom], [CommhomK] (and its conservative [CommhomKRounded] variant)
// and [Commhet] score one platform under each strategy; [LowerBound]
// gives the reference and [RhoAnalytic] the Comm_hom/Comm_het ratio of
// Section 4.1.3. These return analytic volumes; the measured counterpart
// — the same strategies executed on real vectors by a goroutine worker
// pool, with actual bytes-moved cross-checked against these closed forms
// — lives in internal/runtime and is driven by `nlfl bench` (see
// docs/PERFORMANCE.md).
package outer
