package bench

import (
	"context"
	"fmt"
	"math"
	goruntime "runtime"

	"nlfl/internal/platform"
	"nlfl/internal/results"
	nrt "nlfl/internal/runtime"
	"nlfl/internal/stats"
	"nlfl/internal/trace"
)

// benchPlatform is one speed profile the runtime sweep executes. The
// profiles are "snapped": Σsᵢ/s₁ is a perfect square, so the integer
// block grid realizes the Comm_hom closed form exactly and the 1%
// agreement gate measures the executor, not the rounding.
type benchPlatform struct {
	name   string
	speeds []float64
}

func benchPlatforms(quick bool) []benchPlatform {
	ps := []benchPlatform{
		{"hom-p4", []float64{1, 1, 1, 1}},      // Σs/s₁ = 4
		{"het-1357-p4", []float64{1, 3, 5, 7}}, // Σs/s₁ = 16
	}
	if !quick {
		ps = append(ps,
			benchPlatform{"hom-p9", []float64{1, 1, 1, 1, 1, 1, 1, 1, 1}}, // Σs/s₁ = 9
			benchPlatform{"het-1224-p4", []float64{1, 2, 2, 4}},           // Σs/s₁ = 9
		)
	}
	return ps
}

func runtimeN(quick bool) int {
	if quick {
		return 128
	}
	return 512
}

// homTolerance is the acceptance gate for the demand-driven strategies:
// measured volume within 1% of the closed form (the paper's own
// imbalance target). hetTolerance used to be 5% to absorb PERI-SUM's
// grid snapping; now that het plans recompute Predicted over the
// snapped rectangles the measured volume matches exactly, so the het
// gate is just as tight.
const (
	homTolerance = 0.01
	hetTolerance = 0.01
)

// RunRuntime executes the three distribution strategies on every bench
// platform through the real worker pool, cross-checks the measured
// traffic against the analytic predictions, audits every trace, and
// returns the BENCH_runtime payload. Any hom/hom-k disagreement above 1%
// or any invariant violation is an error, not a data point. A cancelled
// ctx aborts the in-flight run and stops the sweep.
func RunRuntime(ctx context.Context, cfg Config) (results.RuntimeBenchFile, error) {
	rate := cfg.WorkPerSecond
	if rate <= 0 {
		rate = 2e6
	}
	file := results.RuntimeBenchFile{
		Schema:        results.BenchRuntimeSchema,
		Seed:          cfg.Seed,
		Quick:         cfg.Quick,
		WorkPerSecond: rate,
		GoVersion:     goruntime.Version(),
		GOMAXPROCS:    maxProcs(),
	}
	n := runtimeN(cfg.Quick)
	r := stats.NewRNG(cfg.Seed)
	a := stats.SampleN(stats.Uniform{Lo: -1, Hi: 1}, r, n)
	b := stats.SampleN(stats.Uniform{Lo: -1, Hi: 1}, r, n)

	for _, bp := range benchPlatforms(cfg.Quick) {
		if err := ctx.Err(); err != nil {
			return file, err
		}
		pl, err := platform.FromSpeeds(bp.speeds)
		if err != nil {
			return file, err
		}
		plans := make([]*nrt.StrategyPlan, 0, 3)
		hom, err := nrt.PlanHom(pl, n)
		if err != nil {
			return file, fmt.Errorf("bench: %s hom plan: %w", bp.name, err)
		}
		plans = append(plans, hom)
		homk, err := nrt.PlanHomK(pl, n, 0.01, 0)
		if err != nil {
			return file, fmt.Errorf("bench: %s hom/k plan: %w", bp.name, err)
		}
		plans = append(plans, homk)
		het, err := nrt.PlanHet(pl, n)
		if err != nil {
			return file, fmt.Errorf("bench: %s het plan: %w", bp.name, err)
		}
		plans = append(plans, het)

		for _, plan := range plans {
			tol := homTolerance
			if plan.Strategy == "het" {
				tol = hetTolerance
			}
			rep, err := nrt.RunContext(ctx, plan, a, b, nrt.Options{
				Speeds:        bp.speeds,
				WorkPerSecond: rate,
				// A small burst (1 ms of credit) keeps the first worker
				// from draining a coarse chunk pool before the rest of
				// the pool has even started.
				Burst:       rate * 0.001,
				VerifyEvery: 1009,
			})
			if err != nil {
				return file, fmt.Errorf("bench: %s/%s: %w", bp.name, plan.Strategy, err)
			}
			violations := trace.Check(rep.Trace, rep.Expect(tol))
			relErr := math.Abs(rep.DataVolume-rep.Predicted) / rep.Predicted
			if relErr > tol {
				return file, fmt.Errorf("bench: %s/%s measured volume %v vs closed form %v (relErr %.4f > %.2f)",
					bp.name, plan.Strategy, rep.DataVolume, rep.Predicted, relErr, tol)
			}
			if len(violations) > 0 {
				return file, fmt.Errorf("bench: %s/%s trace violations: %v", bp.name, plan.Strategy, trace.Must(violations))
			}
			m := trace.MetricsOf(rep.Trace)
			imbalance := m.Imbalance
			if math.IsInf(imbalance, 0) || math.IsNaN(imbalance) {
				imbalance = -1 // a worker never computed: imbalance undefined
			}
			file.Entries = append(file.Entries, results.RuntimeBenchEntry{
				Platform: bp.name, Speeds: bp.speeds,
				Strategy: plan.Strategy, Grid: plan.Grid, K: plan.K,
				N: n, Workers: rep.Workers, Chunks: rep.Chunks,
				MeasuredVolume:  rep.DataVolume,
				PredictedVolume: rep.Predicted,
				RelError:        relErr,
				BytesMoved:      8 * rep.DataVolume,
				Makespan:        rep.Makespan,
				CellsPerSec:     rep.WorkCells / rep.Makespan,
				Utilization:     m.Utilization,
				Imbalance:       imbalance,
				Violations:      0,
			})
		}
	}
	return file, nil
}

// Run executes the full harness — kernels, runtime strategies, the
// bandwidth-modeled link sweep, the chaos sweep, the multi-tenant
// service sweep, the network-topology sweep, the capacity-model
// validation sweep, and the closed-loop iterative re-planning sweep —
// and writes the eight artifacts into dir,
// returning their paths. Every payload is validated before writing; a
// file that would fail the CI schema gate is never emitted. A
// cancelled ctx stops at the next sweep boundary with nothing written.
func Run(ctx context.Context, cfg Config, dir string) (ArtifactPaths, error) {
	paths := Paths(dir)
	fail := func(err error) (ArtifactPaths, error) {
		return ArtifactPaths{}, err
	}
	kf, err := RunKernels(ctx, cfg)
	if err != nil {
		return fail(err)
	}
	if err := ValidateKernels(kf); err != nil {
		return fail(err)
	}
	rf, err := RunRuntime(ctx, cfg)
	if err != nil {
		return fail(err)
	}
	if err := ValidateRuntime(rf); err != nil {
		return fail(err)
	}
	lf, err := RunLinkSweep(ctx, cfg)
	if err != nil {
		return fail(err)
	}
	if err := ValidateLink(lf); err != nil {
		return fail(err)
	}
	cf, err := RunChaosSweep(ctx, cfg)
	if err != nil {
		return fail(err)
	}
	if err := ValidateChaos(cf); err != nil {
		return fail(err)
	}
	sf, err := RunServiceSweep(ctx, cfg)
	if err != nil {
		return fail(err)
	}
	if err := ValidateService(sf); err != nil {
		return fail(err)
	}
	tf, err := RunTopologySweep(ctx, cfg)
	if err != nil {
		return fail(err)
	}
	if err := ValidateTopology(tf); err != nil {
		return fail(err)
	}
	capf, err := RunCapacitySweep(ctx, cfg)
	if err != nil {
		return fail(err)
	}
	if err := ValidateCapacity(capf); err != nil {
		return fail(err)
	}
	itf, err := RunIterativeSweep(ctx, cfg)
	if err != nil {
		return fail(err)
	}
	if err := ValidateIterative(itf); err != nil {
		return fail(err)
	}
	if err := results.SaveBenchKernels(paths.Kernels, kf); err != nil {
		return fail(err)
	}
	if err := results.SaveBenchRuntime(paths.Runtime, rf); err != nil {
		return fail(err)
	}
	if err := results.SaveBenchLink(paths.Link, lf); err != nil {
		return fail(err)
	}
	if err := results.SaveBenchChaos(paths.Chaos, cf); err != nil {
		return fail(err)
	}
	if err := results.SaveBenchService(paths.Service, sf); err != nil {
		return fail(err)
	}
	if err := results.SaveBenchTopology(paths.Topology, tf); err != nil {
		return fail(err)
	}
	if err := results.SaveBenchCapacity(paths.Capacity, capf); err != nil {
		return fail(err)
	}
	if err := results.SaveBenchIterative(paths.Iterative, itf); err != nil {
		return fail(err)
	}
	return paths, nil
}
