package bench

import (
	"context"
	"fmt"
	goruntime "runtime"

	"nlfl/internal/platform"
	"nlfl/internal/results"
	nrt "nlfl/internal/runtime"
	"nlfl/internal/stats"
	"nlfl/internal/trace"
)

// linkN is the problem size of the bandwidth sweep (shared by quick and
// full so the bandwidth grid below keeps its meaning).
const linkN = 128

// linkBandwidths returns the swept master-link rates in elements/second.
// The grid brackets the regime change for linkN=128 at the default work
// rate: at 2e4 the link is the clear bottleneck (hom's 1024 elements
// take ~51 ms against sub-ms of aggregate compute), at 2e5 comm and
// compute are comparable, at 2e6 the runs are compute-bound and the
// strategies converge — the measured version of the paper's Figure-2
// volume/makespan trade-off.
func linkBandwidths(quick bool) []float64 {
	if quick {
		return []float64{2e4, 2e6}
	}
	return []float64{2e4, 2e5, 2e6}
}

// linkPlatforms returns the swept speed profiles: heterogeneous ones,
// because that is where Comm_het < Comm_hom and the constrained link
// should turn the volume gap into a makespan gap.
func linkPlatforms(quick bool) []benchPlatform {
	ps := []benchPlatform{{"het-1357-p4", []float64{1, 3, 5, 7}}}
	if !quick {
		ps = append(ps, benchPlatform{"het-1224-p4", []float64{1, 2, 2, 4}})
	}
	return ps
}

// RunLinkSweep executes the three distribution strategies under a
// bandwidth-modeled master link (double-buffered prefetch on) across the
// bandwidth grid, audits every trace — the link-capacity invariant
// included — and gates the paper's headline claim: at the most
// constrained bandwidth on a heterogeneous platform, the lower-volume
// het plan must finish strictly faster than hom. Any violation or a
// het-no-faster outcome is an error, not a data point. A cancelled ctx
// aborts the in-flight run and stops the sweep.
func RunLinkSweep(ctx context.Context, cfg Config) (results.LinkBenchFile, error) {
	rate := cfg.WorkPerSecond
	if rate <= 0 {
		rate = 2e6
	}
	file := results.LinkBenchFile{
		Schema:        results.BenchLinkSchema,
		Seed:          cfg.Seed,
		Quick:         cfg.Quick,
		WorkPerSecond: rate,
		GoVersion:     goruntime.Version(),
		GOMAXPROCS:    maxProcs(),
	}
	r := stats.NewRNG(cfg.Seed)
	a := stats.SampleN(stats.Uniform{Lo: -1, Hi: 1}, r, linkN)
	b := stats.SampleN(stats.Uniform{Lo: -1, Hi: 1}, r, linkN)
	bandwidths := linkBandwidths(cfg.Quick)

	for _, bp := range linkPlatforms(cfg.Quick) {
		pl, err := platform.FromSpeeds(bp.speeds)
		if err != nil {
			return file, err
		}
		for _, bw := range bandwidths {
			if err := ctx.Err(); err != nil {
				return file, err
			}
			makespans := map[string]float64{}
			for _, mk := range []struct {
				name string
				plan func() (*nrt.StrategyPlan, error)
			}{
				{"hom", func() (*nrt.StrategyPlan, error) { return nrt.PlanHom(pl, linkN) }},
				{"hom/k", func() (*nrt.StrategyPlan, error) { return nrt.PlanHomK(pl, linkN, 0.01, 0) }},
				{"het", func() (*nrt.StrategyPlan, error) { return nrt.PlanHet(pl, linkN) }},
			} {
				plan, err := mk.plan()
				if err != nil {
					return file, fmt.Errorf("bench: %s/%s plan: %w", bp.name, mk.name, err)
				}
				rep, err := nrt.RunContext(ctx, plan, a, b, nrt.Options{
					Speeds:        bp.speeds,
					WorkPerSecond: rate,
					// A small burst keeps link waits from banking
					// compute credit, so makespans reflect the modeled
					// contention instead of hiding it in the throttle.
					Burst:       rate * 0.0001,
					Link:        nrt.Link{ElemsPerSecond: bw},
					Prefetch:    true,
					VerifyEvery: 1009,
				})
				if err != nil {
					return file, fmt.Errorf("bench: %s/%s bw=%g: %w", bp.name, plan.Strategy, bw, err)
				}
				if vs := trace.Check(rep.Trace, rep.Expect(homTolerance)); len(vs) > 0 {
					return file, fmt.Errorf("bench: %s/%s bw=%g trace violations: %v",
						bp.name, plan.Strategy, bw, trace.Must(vs))
				}
				makespans[plan.Strategy] = rep.Makespan
				file.Entries = append(file.Entries, results.LinkBenchEntry{
					Platform: bp.name, Speeds: bp.speeds,
					Strategy: plan.Strategy, N: linkN, Bandwidth: bw,
					MeasuredVolume:  rep.DataVolume,
					PredictedVolume: rep.Predicted,
					Makespan:        rep.Makespan,
					CommTime:        rep.CommTime,
					OverlapFraction: rep.OverlapFraction,
					LinkUtilization: rep.LinkUtilization,
					Violations:      0,
				})
			}
			// The no-free-lunch gate: when the link is the bottleneck,
			// shipping less must mean finishing sooner.
			if bw == bandwidths[0] {
				if het, hom := makespans["het"], makespans["hom"]; het >= hom {
					return file, fmt.Errorf(
						"bench: %s bw=%g: het makespan %.4fs does not beat hom %.4fs despite lower volume",
						bp.name, bw, het, hom)
				}
			}
		}
	}
	return file, nil
}

// ValidateLink is the schema check for a BENCH_link payload: right
// schema id, non-empty entries, finite positive fields, overlap and
// utilization fractions in range, zero violations, and — for every
// (platform, bandwidth) pair at the lowest swept bandwidth — the het
// makespan strictly below hom's.
func ValidateLink(f results.LinkBenchFile) error {
	const path = LinkFileName
	if f.Schema != results.BenchLinkSchema {
		return invalid(path, "schema %q, want %q", f.Schema, results.BenchLinkSchema)
	}
	if len(f.Entries) == 0 {
		return invalid(path, "no entries")
	}
	if !finite(f.WorkPerSecond) || f.WorkPerSecond <= 0 {
		return invalid(path, "non-positive work rate %v", f.WorkPerSecond)
	}
	minBW := f.Entries[0].Bandwidth
	for _, e := range f.Entries {
		if e.Bandwidth < minBW {
			minBW = e.Bandwidth
		}
	}
	type key struct {
		platform string
		bw       float64
	}
	makespans := map[key]map[string]float64{}
	for i, e := range f.Entries {
		id := fmt.Sprintf("entry %d (%s/%s bw=%g)", i, e.Platform, e.Strategy, e.Bandwidth)
		if e.Platform == "" || e.Strategy == "" || e.N <= 0 {
			return invalid(path, "%s: missing identity fields", id)
		}
		for _, v := range []struct {
			name  string
			value float64
		}{
			{"bandwidth", e.Bandwidth},
			{"measuredVolume", e.MeasuredVolume},
			{"predictedVolume", e.PredictedVolume},
			{"makespan", e.Makespan},
			{"commTime", e.CommTime},
			{"overlapFraction", e.OverlapFraction},
		} {
			if !finite(v.value) || v.value < 0 {
				return invalid(path, "%s: negative or non-finite %s %v", id, v.name, v.value)
			}
		}
		if e.Bandwidth <= 0 || e.MeasuredVolume <= 0 || e.Makespan <= 0 {
			return invalid(path, "%s: zero bandwidth, volume or makespan", id)
		}
		if e.OverlapFraction > 1 {
			return invalid(path, "%s: overlap fraction %v above 1", id, e.OverlapFraction)
		}
		for w, u := range e.LinkUtilization {
			if !finite(u) || u < 0 || u > 1 {
				return invalid(path, "%s: worker %d link utilization %v outside [0,1]", id, w, u)
			}
		}
		if e.Violations != 0 {
			return invalid(path, "%s: %d invariant violations", id, e.Violations)
		}
		k := key{e.Platform, e.Bandwidth}
		if makespans[k] == nil {
			makespans[k] = map[string]float64{}
		}
		makespans[k][e.Strategy] = e.Makespan
	}
	for k, ms := range makespans {
		if k.bw != minBW {
			continue
		}
		het, hasHet := ms["het"]
		hom, hasHom := ms["hom"]
		if hasHet && hasHom && het >= hom {
			return invalid(path, "%s bw=%g: het makespan %v not below hom %v at the constrained bandwidth",
				k.platform, k.bw, het, hom)
		}
	}
	return nil
}
