// Matmul-mapreduce demonstrates Sections 1.1, 4.2 and the E11 comparison:
// a real (small) matrix product executed through the MapReduce engine on
// the replicated n³ pair dataset, the communication-volume menu of the
// standard distributions, and the savings of the heterogeneity-aware
// rectangle layout.
package main

import (
	"fmt"
	"log"

	"nlfl/internal/mapreduce"
	"nlfl/internal/matmul"
	"nlfl/internal/partition"
)

func main() {
	// A real MapReduce matrix product on the replicated pair dataset.
	const demo = 16
	a := matmul.Random(demo, demo, 1)
	b := matmul.Random(demo, demo, 2)
	got, ctr, err := mapreduce.RunMatMulPairs(a, b, 4, 4, true)
	if err != nil {
		log.Fatal(err)
	}
	ref, err := matmul.Naive(a, b)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("MapReduce product of two %d×%d matrices: correct=%v\n", demo, demo, ref.Equal(got, 1e-9))
	fmt.Printf("  %s\n", ctr)
	fmt.Printf("  the input held %d records for a %d-element problem — the n³ data expansion\n\n",
		ctr.InputRecords, 2*demo*demo)

	// The communication menu at a realistic size, on a skewed platform.
	const n = 1024
	speeds := []float64{1, 1, 4, 10}
	part, err := partition.PeriSum(speeds)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("communication volume for one %d×%d product (speeds %v):\n", n, n, speeds)
	for _, d := range mapreduce.CompareDistributions(n, 2, 2, part) {
		fmt.Printf("  %-22s %14.4g elements\n", d.Name, d.Volume)
	}

	// Cross-check the rectangle layout's closed form against the
	// step-by-step broadcast simulation of the Figure 3 algorithm.
	const simN = 96
	layout, err := matmul.NewRectLayout(simN, part)
	if err != nil {
		log.Fatal(err)
	}
	rep := matmul.CommVolume(layout)
	fmt.Printf("\nstep-by-step broadcast simulation at n=%d: %.4g elements (closed form %.4g)\n",
		simN, rep.Total, matmul.RectCommClosedForm(part, simN))
	fmt.Printf("speed-weighted work imbalance of the rectangle layout: %.3g\n", rep.Imbalance(speeds))
}
