// Command nlfl reproduces the experiments of "Non-Linear Divisible Loads:
// There is No Free Lunch" (Beaumont, Larchevêque, Marchal — IPDPS 2013 /
// INRIA RR-8170) from the command line.
//
// Usage:
//
//	nlfl <command> [flags]
//
// Commands:
//
//	fig4       Figure 4 panels: ratio-to-lower-bound vs processor count
//	nonlinear  Section 2: unprocessed-work fractions for α-power loads
//	sort       Section 3: sample sort scaling and bucket concentration
//	rho        Section 4.1.3: Comm_hom/Comm_het vs heterogeneity factor
//	partition  Section 4.1.2: PERI-SUM partitioner quality
//	outer      Section 4.1: one platform, three strategies, full detail
//	matmul     Section 4.2: layout communication volumes on a real product
//	mapreduce  Sections 1.1/4: MapReduce distribution comparison + demo job
//	faults     Section 1.1: robustness under crashes, stragglers, flaky links
//	trace      Trace one executor run, audit invariants, render Gantt/Chrome JSON
//	iterate    Closed-loop iterative job: measured-rate water-filling re-planning
//	bench      Measured performance: kernels + runtime, emits BENCH_*.json
//	recommend  Capacity planner: speedup curve, knee, recommended slice size
//	serve      Multi-tenant fleet service behind an HTTP API
//	analyze    The core divisibility verdict for a workload
//	demo       Run every experiment with small settings (smoke test)
package main

import (
	"flag"
	"fmt"
	"os"
)

// command wires a name to its runner and a one-line description.
type command struct {
	name string
	desc string
	run  func(args []string) error
}

func commands() []command {
	return []command{
		{"fig4", "reproduce a Figure 4 panel (a: homogeneous, b: uniform, c: lognormal)", runFig4},
		{"nonlinear", "Section 2 unprocessed-work fraction table", runNonLinear},
		{"sort", "Section 3 sample-sort scaling table", runSort},
		{"rho", "Section 4.1.3 ρ sweep over the bimodal platform", runRho},
		{"partition", "Section 4.1.2 PERI-SUM quality sweep", runPartition},
		{"outer", "Section 4.1 strategies on one random platform", runOuter},
		{"matmul", "Section 4.2 layout volumes on a verified product", runMatMul},
		{"mapreduce", "MapReduce distribution comparison and demo job", runMapReduce},
		{"fig2", "draw the Heterogeneous Blocks footprints (Figure 2)", runFig2},
		{"bottleneck", "makespan impact of link bandwidth on the three strategies", runBottleneck},
		{"mrdlt", "divisible MapReduce scheduling (the linear case that works)", runMRDLT},
		{"polymul", "polynomial multiplication: algorithm choice flips the verdict", runPolymul},
		{"adaptivity", "static DLT vs demand-driven under a mid-run slowdown", runAdaptivity},
		{"gantt", "draw linear vs non-linear schedule timelines", runGantt},
		{"tree", "multi-level tree DLT: equivalent-processor reduction", runTree},
		{"returns", "result collection (FIFO vs LIFO) — the §1.2 exclusion restored", runReturns},
		{"affinity", "the conclusion's affinity-aware demand-driven scheduler", runAffinity},
		{"faults", "robustness under crashes, stragglers and flaky links", runFaults},
		{"trace", "run one executor, audit its trace, render Gantt/Chrome JSON", runTrace},
		{"iterate", "closed-loop iterative job with water-filling re-planning", runIterate},
		{"bench", "measure kernels + worker-pool runtime, emit BENCH_*.json", runBench},
		{"recommend", "size a fleet slice for an α-power workload (capacity planner)", runRecommend},
		{"serve", "run the multi-tenant fleet service behind an HTTP API", runServe},
		{"analyze", "divisibility verdict for a workload", runAnalyze},
		{"compare", "diff two saved JSON result records", runCompare},
		{"all", "run every experiment with paper settings and save JSON records", runAll},
		{"demo", "run every experiment with small settings", runDemo},
	}
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "nlfl:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 || args[0] == "help" || args[0] == "-h" || args[0] == "--help" {
		usage()
		return nil
	}
	for _, c := range commands() {
		if c.name == args[0] {
			return c.run(args[1:])
		}
	}
	usage()
	return fmt.Errorf("unknown command %q", args[0])
}

func usage() {
	fmt.Println("nlfl — Non-Linear Divisible Loads: There is No Free Lunch (reproduction)")
	fmt.Println("\ncommands:")
	for _, c := range commands() {
		fmt.Printf("  %-10s %s\n", c.name, c.desc)
	}
	fmt.Println("\nrun `nlfl <command> -h` for the command's flags")
}

// newFlagSet builds a flag set that returns errors instead of exiting.
func newFlagSet(name string) *flag.FlagSet {
	fs := flag.NewFlagSet(name, flag.ContinueOnError)
	fs.SetOutput(os.Stdout)
	return fs
}
