// Cross-package integration tests: the same quantity computed by two
// independent modules must agree. These are the consistency checks that
// tie the reproduction together — if any closed form drifts from its
// simulation, or two packages disagree about a shared definition, these
// fail.
package nlfl_test

import (
	"math"
	"testing"

	"nlfl/internal/affinity"
	"nlfl/internal/core"
	"nlfl/internal/dessim"
	"nlfl/internal/dlt"
	"nlfl/internal/matmul"
	"nlfl/internal/mrdlt"
	"nlfl/internal/nldlt"
	"nlfl/internal/outer"
	"nlfl/internal/partition"
	"nlfl/internal/platform"
	"nlfl/internal/stats"
	"nlfl/internal/tree"
)

func randomPlatform(t *testing.T, seed int64, p int) *platform.Platform {
	t.Helper()
	r := stats.NewRNG(seed)
	pl, err := platform.Generate(p, stats.Uniform{Lo: 1, Hi: 50}, r)
	if err != nil {
		t.Fatal(err)
	}
	return pl
}

// The core planner, the outer-product strategy module, and the raw
// partitioner must report identical volumes for the same platform.
func TestPlanMatchesOuterAndPartition(t *testing.T) {
	pl := randomPlatform(t, 1, 15)
	const n = 500.0
	plan, err := core.PlanOuterProduct(pl, n)
	if err != nil {
		t.Fatal(err)
	}
	het, err := outer.Commhet(pl, n)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(plan.TotalVolume-het.Volume) > 1e-6*het.Volume {
		t.Errorf("core plan volume %v != outer Comm_het %v", plan.TotalVolume, het.Volume)
	}
	part, err := partition.PeriSum(pl.Speeds())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(plan.TotalVolume-part.SumHalfPerimeters()*n) > 1e-6*het.Volume {
		t.Errorf("plan volume %v != Ĉ·N %v", plan.TotalVolume, part.SumHalfPerimeters()*n)
	}
	if math.Abs(plan.LowerBound-outer.LowerBound(pl, n)) > 1e-9 {
		t.Errorf("LB definitions disagree: %v vs %v", plan.LowerBound, outer.LowerBound(pl, n))
	}
	if math.Abs(plan.HomogeneousVolume-outer.Commhom(pl, n).Volume) > 1e-9 {
		t.Error("Comm_hom definitions disagree between core and outer")
	}
}

// The affinity module's lower bound must be the outer module's.
func TestAffinityLowerBoundMatchesOuter(t *testing.T) {
	pl := randomPlatform(t, 2, 8)
	const n = 200.0
	res, err := affinity.Run(pl, n, 10, affinity.PolicyNoCache)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.LowerBound-outer.LowerBound(pl, n)) > 1e-9 {
		t.Errorf("affinity LB %v != outer LB %v", res.LowerBound, outer.LowerBound(pl, n))
	}
}

// The matmul plan of core must equal the rect-layout closed form, which
// itself must match the step-by-step broadcast simulation.
func TestMatMulVolumeChain(t *testing.T) {
	pl := randomPlatform(t, 3, 6)
	const n = 72
	plan, err := core.PlanMatMul(pl, n)
	if err != nil {
		t.Fatal(err)
	}
	part, err := partition.PeriSum(pl.Speeds())
	if err != nil {
		t.Fatal(err)
	}
	closed := matmul.RectCommClosedForm(part, n)
	if math.Abs(plan.TotalVolume-closed) > 1e-6*closed {
		t.Errorf("core matmul plan %v != closed form %v", plan.TotalVolume, closed)
	}
	layout, err := matmul.NewRectLayout(n, part)
	if err != nil {
		t.Fatal(err)
	}
	sim := matmul.CommVolume(layout)
	if math.Abs(sim.Total-closed) > 6*float64(n*pl.P()) {
		t.Errorf("broadcast simulation %v far from closed form %v", sim.Total, closed)
	}
}

// The nldlt solver's chunks executed on both simulator backends
// (event-driven one-port and fluid bounded-multiport) agree where the
// models coincide.
func TestNonLinearChunksAcrossSimulators(t *testing.T) {
	pl := randomPlatform(t, 4, 5)
	load := nldlt.Load{N: 80, Alpha: 2}
	res, err := nldlt.OptimalParallel(pl, load)
	if err != nil {
		t.Fatal(err)
	}
	chunks := res.Chunks()
	event, err := dessim.RunSingleRound(pl, chunks, dessim.ParallelLinks)
	if err != nil {
		t.Fatal(err)
	}
	fluid, err := dessim.RunSingleRoundBounded(pl, chunks, math.Inf(1))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(event.Makespan-fluid.Makespan) > 1e-6*event.Makespan {
		t.Errorf("event %v vs fluid %v", event.Makespan, fluid.Makespan)
	}
	if math.Abs(event.Makespan-res.Makespan) > 1e-5*res.Makespan {
		t.Errorf("simulated %v vs solver %v", event.Makespan, res.Makespan)
	}
}

// Linear DLT closed forms must survive the fluid simulator with tight
// egress approaching the one-port serialization.
func TestDLTFluidDegradesTowardOnePort(t *testing.T) {
	pl := randomPlatform(t, 5, 6)
	const n = 300.0
	alloc, err := dlt.OptimalParallel(pl, n)
	if err != nil {
		t.Fatal(err)
	}
	chunks := dlt.Chunks(alloc, n)
	wide, err := dessim.RunSingleRoundBounded(pl, chunks, math.Inf(1))
	if err != nil {
		t.Fatal(err)
	}
	narrow, err := dessim.RunSingleRoundBounded(pl, chunks, pl.Worker(0).Bandwidth*0.01)
	if err != nil {
		t.Fatal(err)
	}
	if narrow.Makespan <= wide.Makespan {
		t.Errorf("tight egress %v should exceed wide %v", narrow.Makespan, wide.Makespan)
	}
}

// The divisibility verdict's undone fraction must equal what the solver
// measures on an actual platform.
func TestVerdictMatchesSolver(t *testing.T) {
	const p = 40
	v, err := core.Analyze(core.Workload{Kind: core.Power, N: 2000, Alpha: 2}, p)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := platform.Homogeneous(p, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := nldlt.OptimalParallel(pl, nldlt.Load{N: 2000, Alpha: 2})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v.UndoneFraction-(1-res.WorkFraction())) > 1e-3 {
		t.Errorf("verdict %v vs solver %v", v.UndoneFraction, 1-res.WorkFraction())
	}
}

// One seeded end-to-end sweep: for every profile, the Figure 4 ordering
// Comm_het ≤ Comm_hom ≤ Comm_hom/k holds pointwise in the means.
func TestFig4OrderingEndToEnd(t *testing.T) {
	pl := randomPlatform(t, 6, 30)
	const n = 1000.0
	het, err := outer.Commhet(pl, n)
	if err != nil {
		t.Fatal(err)
	}
	hom := outer.Commhom(pl, n)
	homk, err := outer.CommhomK(pl, n, 0.01, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !(het.Ratio <= hom.Ratio+1e-9 && hom.Ratio <= homk.Ratio+1e-9) {
		t.Errorf("ordering violated: het %v, hom %v, hom/k %v", het.Ratio, hom.Ratio, homk.Ratio)
	}
}

// The mrdlt map phase with γ=0 and a fast reducer must agree with the
// one-port linear DLT closed form (the map phase IS that problem).
func TestMRDLTMapPhaseMatchesOnePortDLT(t *testing.T) {
	pl := randomPlatform(t, 7, 5)
	const v = 400.0
	// Simulate the mrdlt pipeline with the closed-form β. Platform order
	// is mrdlt's emission order, so feed the closed form computed for
	// that order.
	order := make([]int, pl.P())
	for i := range order {
		order[i] = i
	}
	allocSameOrder, err := dlt.OptimalOnePort(pl, v, order)
	if err != nil {
		t.Fatal(err)
	}
	job := mrdlt.Job{V: v, Gamma: 0, Reducers: 1, ReducerSpeed: 1}
	res, err := mrdlt.Simulate(pl, job, allocSameOrder.Fractions)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.MapFinish-allocSameOrder.Makespan) > 1e-6*allocSameOrder.Makespan {
		t.Errorf("map finish %v vs DLT closed form %v", res.MapFinish, allocSameOrder.Makespan)
	}
}

// A depth-1 tree's work fraction for α-power loads must match the star
// analysis of nldlt for the homogeneous equal split.
func TestTreeFractionMatchesStarAnalysis(t *testing.T) {
	const p = 9
	root := &tree.Node{Speed: 1e-12}
	for i := 0; i < p; i++ {
		root.Children = append(root.Children, &tree.Node{Speed: 1, Bandwidth: 1e12})
	}
	alloc, err := tree.Allocate(root, 900)
	if err != nil {
		t.Fatal(err)
	}
	// Near-infinite bandwidth and equal leaves → equal chunks: fraction =
	// 1/P^(α-1).
	got := alloc.WorkFraction(2)
	want := 1 - nldlt.UnprocessedFraction(p, 2)
	if math.Abs(got-want) > 1e-3 {
		t.Errorf("tree fraction %v vs star closed form %v", got, want)
	}
}
