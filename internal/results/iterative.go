package results

// BenchIterativeSchema identifies the BENCH_iterative.json payload,
// bumped on breaking field changes so consumers (CI's iterative-smoke
// gate) can reject files they do not understand.
const BenchIterativeSchema = "nlfl/bench-iterative/v1"

// IterativePolicyEntry is one full iterative job (power iteration to
// convergence) run under one planning policy on the drifting-straggler
// scenario. The iterate update itself is exact master-side float64
// arithmetic, so Rounds, Residuals and Dominant are deterministic and
// must be identical across policies — only the makespans, which measure
// how well each policy's splits fit the drifted fleet, may differ.
type IterativePolicyEntry struct {
	// Policy is "static" (prior rates forever), "adaptive" (measured-rate
	// water-filling re-plans) or "oracle" (told the true drifted rates).
	Policy string `json:"policy"`
	// N is the vector length; Speeds the fleet's nominal speed profile.
	N      int       `json:"n"`
	Speeds []float64 `json:"speeds"`
	// Rounds is the number of iterations run; Converged whether the
	// residual reached tolerance within the round budget.
	Rounds    int  `json:"rounds"`
	Converged bool `json:"converged"`
	// Residuals is the per-round ‖xₜ₊₁ − xₜ‖∞ sequence (deterministic).
	Residuals []float64 `json:"residuals"`
	// Dominant is the converged dominant-entry index (deterministic).
	Dominant int `json:"dominant"`
	// TotalMakespan is the summed measured wall-clock of every round;
	// RoundMakespans the per-round breakdown. Wall-clock varies run to
	// run (see EXPERIMENTS.md) — the gates compare policies within one
	// file, never across files.
	TotalMakespan  float64   `json:"totalMakespan"`
	RoundMakespans []float64 `json:"roundMakespans"`
	// Replans counts adopted re-plans after round 0; Fallbacks rounds
	// where the trust gate kept the last trusted plan; Reanchors drift
	// re-anchor events inside the estimator.
	Replans   int `json:"replans"`
	Fallbacks int `json:"fallbacks"`
	Reanchors int `json:"reanchors"`
	// DriftWorker is the straggling worker, DriftFactor its rate
	// multiplier, DriftRound the round the slowdown starts.
	DriftWorker int     `json:"driftWorker"`
	DriftFactor float64 `json:"driftFactor"`
	DriftRound  int     `json:"driftRound"`
	// Violations counts trace-oracle findings across all verified
	// rounds; 0 in any valid file.
	Violations int `json:"violations"`
}

// IterativeChaosEntry is one adaptive iterative job run under an
// injected fault class, with the evidence counters proving the fault
// actually bit and the controller actually reacted.
type IterativeChaosEntry struct {
	// Class names the fault family: "crash", "straggler" or "link-slow".
	Class string `json:"class"`
	// N is the vector length; Rounds/Converged/Dominant as above.
	N         int  `json:"n"`
	Rounds    int  `json:"rounds"`
	Converged bool `json:"converged"`
	Dominant  int  `json:"dominant"`
	// TotalMakespan is the measured wall-clock of the degraded job.
	TotalMakespan float64 `json:"totalMakespan"`
	// DeadWorkers lists workers lost to permanent crashes; Replans and
	// Reanchors count the controller's reactions; CommTime the summed
	// OK transfer seconds (evidence the link-slow class paid for its
	// throttled link).
	DeadWorkers []int   `json:"deadWorkers"`
	Replans     int     `json:"replans"`
	Reanchors   int     `json:"reanchors"`
	CommTime    float64 `json:"commTime"`
	// Violations counts exactly-once oracle findings; 0 in any valid file.
	Violations int `json:"violations"`
}

// IterativeBenchFile is the BENCH_iterative.json payload: the
// closed-loop re-planning sweep showing measured-rate water-filling
// beating the static split under drift, staying within tolerance of the
// omniscient oracle, and surviving chaos with a clean exactly-once
// ledger.
type IterativeBenchFile struct {
	Schema string `json:"schema"`
	Seed   int64  `json:"seed"`
	Quick  bool   `json:"quick"`
	// WorkPerSecond is the token-bucket rate scale of every run.
	WorkPerSecond float64 `json:"workPerSecond"`
	GoVersion     string  `json:"goVersion"`
	GOMAXPROCS    int     `json:"gomaxprocs"`
	// Policies holds the static/adaptive/oracle drifting-straggler runs.
	Policies []IterativePolicyEntry `json:"policies"`
	// Chaos holds the per-fault-class adaptive runs.
	Chaos []IterativeChaosEntry `json:"chaos"`
	// AdaptiveOverOracle is adaptive TotalMakespan / oracle
	// TotalMakespan (≥ 1 up to noise; gated ≤ 1.10).
	// StaticOverAdaptive is static / adaptive (gated > 1: adaptation
	// must pay for itself under drift).
	AdaptiveOverOracle float64 `json:"adaptiveOverOracle"`
	StaticOverAdaptive float64 `json:"staticOverAdaptive"`
}

// SaveBenchIterative writes the iterative sweep file as indented JSON.
func SaveBenchIterative(path string, f IterativeBenchFile) error {
	return saveJSON(path, f)
}

// LoadBenchIterative reads an iterative sweep file.
func LoadBenchIterative(path string) (IterativeBenchFile, error) {
	var f IterativeBenchFile
	err := loadJSON(path, &f)
	return f, err
}
