package experiments

import (
	"fmt"

	"nlfl/internal/dessim"
	"nlfl/internal/faults"
	"nlfl/internal/platform"
	"nlfl/internal/results"
	"nlfl/internal/stats"
	"nlfl/internal/trace"
)

// FaultSweepConfig parameterizes the robustness experiment: the same
// deterministic crash patterns thrown at the resilient demand-driven
// executor, the static single-round DLT schedule, and the failure-aware
// re-planner.
type FaultSweepConfig struct {
	// P is the worker count; Profile draws their speeds.
	P       int
	Profile platform.SpeedProfile
	// Tasks, TaskData and TaskWork shape the demand-driven pool; the
	// single-round schedule splits the same totals proportionally.
	Tasks    int
	TaskData float64
	TaskWork float64
	// Crashes lists the x-axis: how many workers to kill per point (each
	// strictly below P).
	Crashes []int
	// Seed drives victim choice and crash times; identical seeds reproduce
	// identical sweeps.
	Seed int64
	// N and Eps parameterize the re-planner (outer-product domain side and
	// imbalance target; the paper uses eps = 0.01).
	N   float64
	Eps float64
}

// DefaultFaultSweepConfig is the configuration behind `nlfl faults`.
func DefaultFaultSweepConfig() FaultSweepConfig {
	return FaultSweepConfig{
		P:        8,
		Profile:  platform.ProfileUniform,
		Tasks:    64,
		TaskData: 1,
		TaskWork: 2,
		Crashes:  []int{0, 1, 2, 3},
		Seed:     1,
		N:        1000,
		Eps:      0.01,
	}
}

// FaultSweepRow is one sweep point: a crash count, the demand-driven
// degradation, the single-round loss, and the re-planning volume price.
type FaultSweepRow struct {
	Metrics results.FaultMetrics `json:"metrics"`
	// DDTrace summarizes the demand-driven run's trace (utilization,
	// makespan decomposition, wasted-work fraction). The underlying
	// timeline is audited by trace.Check before the row is emitted.
	DDTrace results.TraceMetrics `json:"ddTrace"`
	// Demand-driven raw numbers.
	BaselineMakespan float64 `json:"baselineMakespan"`
	DDMakespan       float64 `json:"ddMakespan"`
	DDExtraComm      float64 `json:"ddExtraComm"`
	DDLostWork       float64 `json:"ddLostWork"`
	// Single-round raw numbers.
	DLTLostWork float64 `json:"dltLostWork"`
	// Re-planner raw numbers (zero-valued when Crashes = 0).
	Survivors       int     `json:"survivors"`
	SurvivorCommHom float64 `json:"survivorCommHom"`
	ReplanVolume    float64 `json:"replanVolume"`
	ReplanK         int     `json:"replanK"`
}

// FaultSweep runs the robustness comparison at every crash count in the
// configuration. Crash victims and times are drawn deterministically from
// the seed; times land in [0.2, 0.6] of the fault-free makespan, so the
// static schedule is always mid-flight when a worker dies (the regime
// where single-round DLT forfeits the victim's entire allocation while
// the demand-driven pool loses at most its in-flight chunks).
func FaultSweep(cfg FaultSweepConfig) ([]FaultSweepRow, error) {
	if cfg.P < 2 {
		return nil, fmt.Errorf("experiments: fault sweep needs ≥ 2 workers, got %d", cfg.P)
	}
	if cfg.Tasks < 1 || cfg.TaskData < 0 || cfg.TaskWork <= 0 {
		return nil, fmt.Errorf("experiments: invalid task pool shape")
	}
	if cfg.N <= 0 || cfg.Eps <= 0 {
		return nil, fmt.Errorf("experiments: invalid replanner parameters")
	}
	for _, k := range cfg.Crashes {
		if k < 0 || k >= cfg.P {
			return nil, fmt.Errorf("experiments: cannot crash %d of %d workers", k, cfg.P)
		}
	}
	rng := stats.NewRNG(cfg.Seed)
	pl, err := platform.Generate(cfg.P, cfg.Profile.Distribution(0), rng)
	if err != nil {
		return nil, err
	}
	tasks := make([]dessim.Task, cfg.Tasks)
	totalData, totalWork := 0.0, 0.0
	for i := range tasks {
		tasks[i] = dessim.Task{Data: cfg.TaskData, Work: cfg.TaskWork}
		totalData += cfg.TaskData
		totalWork += cfg.TaskWork
	}
	base, err := faults.RunResilientDemandDriven(pl, tasks, faults.Scenario{}, faults.ResilientOptions{})
	if err != nil {
		return nil, fmt.Errorf("experiments: fault-free baseline: %w", err)
	}
	chunks := faults.LinearDLTChunks(pl, totalData, totalWork)

	rows := make([]FaultSweepRow, 0, len(cfg.Crashes))
	for _, k := range cfg.Crashes {
		// Deterministic victims and times per sweep point, all descending
		// from cfg.Seed through the shared RNG stream.
		victims := rng.Perm(cfg.P)[:k]
		sc := faults.Scenario{Seed: cfg.Seed}
		for _, v := range victims {
			frac := 0.2 + 0.4*rng.Float64()
			sc.Events = append(sc.Events, faults.Event{
				Kind: faults.Crash, Worker: v, Time: frac * base.Makespan,
			})
		}
		dd, err := faults.RunResilientDemandDriven(pl, tasks, sc, faults.ResilientOptions{})
		if err != nil {
			return nil, fmt.Errorf("experiments: %d crashes: %w", k, err)
		}
		// The embedded oracle: every sweep point's demand-driven trace must
		// satisfy the structural invariants and reconcile with the
		// executor's own ledger before we trust its numbers.
		if err := trace.Must(trace.Check(dd.Trace, &trace.Expect{
			HasWork:       true,
			TotalWork:     totalWork,
			ProcessedWork: totalWork,
			LostWork:      dd.LostWork,
			WastedWork:    dd.WastedWork,
			HasComm:       true,
			ShippedData:   dd.DataShipped,
		})); err != nil {
			return nil, fmt.Errorf("experiments: %d crashes: %w", k, err)
		}
		sr, err := faults.RunSingleRoundUnderFaults(pl, chunks, sc)
		if err != nil {
			return nil, fmt.Errorf("experiments: single-round under %d crashes: %w", k, err)
		}
		if err := trace.Must(trace.Check(sr.Trace, &trace.Expect{
			HasWork:         true,
			TotalWork:       totalWork,
			ProcessedWork:   sr.CompletedWork,
			UnprocessedWork: sr.LostWork,
			LostWork:        sr.LostWork,
		})); err != nil {
			return nil, fmt.Errorf("experiments: single-round under %d crashes: %w", k, err)
		}
		row := FaultSweepRow{
			Metrics: results.FaultMetrics{
				Crashes:           k,
				MakespanInflation: dd.Makespan / base.Makespan,
				Reexecutions:      dd.Reexecutions,
				LostWorkFraction:  dd.LostWork / totalWork,
				DLTLostFraction:   sr.LostFraction,
			},
			BaselineMakespan: base.Makespan,
			DDMakespan:       dd.Makespan,
			DDExtraComm:      dd.ExtraComm,
			DDLostWork:       dd.LostWork,
			DLTLostWork:      sr.LostWork,
		}
		row.DDTrace = trace.MetricsOf(dd.Trace)
		if dd.DataShipped > 0 {
			row.Metrics.ExtraCommFraction = dd.ExtraComm / dd.DataShipped
		}
		if k > 0 {
			rp, err := faults.ReplanAfter(pl, cfg.N, sc, cfg.Eps)
			if err != nil {
				return nil, fmt.Errorf("experiments: replanning after %d crashes: %w", k, err)
			}
			row.Survivors = rp.Survivors
			row.SurvivorCommHom = rp.SurvivorCommHom
			row.ReplanVolume = rp.HomKVolume
			row.ReplanK = rp.K
			row.Metrics.ReplanVolumeRatio = rp.HomKBoundRatio
		} else {
			row.Survivors = cfg.P
		}
		rows = append(rows, row)
	}
	return rows, nil
}
