package partition

import "sort"

// RecursiveBisection partitions the unit square by repeated guillotine
// cuts: the area set is split into two halves of (nearly) equal total
// area, the current rectangle is cut proportionally along its longer
// side, and both halves recurse. This is the classical Berger–Bokhari
// style decomposition; it carries no approximation guarantee but is the
// natural baseline between the naive √p heuristic and the column-based
// DP, and unlike the DP it produces nested (hierarchical) layouts.
func RecursiveBisection(areas []float64) (*Partition, error) {
	norm, err := Normalize(areas)
	if err != nil {
		return nil, err
	}
	part := &Partition{Areas: norm}
	idxs := make([]int, len(norm))
	for i := range idxs {
		idxs[i] = i
	}
	// Sort by decreasing area so the greedy halving balances well.
	sort.SliceStable(idxs, func(a, b int) bool { return norm[idxs[a]] > norm[idxs[b]] })
	bisect(norm, idxs, 0, 0, 1, 1, part)
	return part, nil
}

// bisect assigns the areas of idxs to the rectangle (x, y, w, h).
func bisect(norm []float64, idxs []int, x, y, w, h float64, out *Partition) {
	if len(idxs) == 1 {
		out.Rects = append(out.Rects, Rect{X: x, Y: y, W: w, H: h, Index: idxs[0]})
		return
	}
	// Greedy halving: walk the (sorted) areas, always adding to the
	// lighter side, preserving order within sides.
	var left, right []int
	var aLeft, aRight float64
	for _, i := range idxs {
		if aLeft <= aRight {
			left = append(left, i)
			aLeft += norm[i]
		} else {
			right = append(right, i)
			aRight += norm[i]
		}
	}
	frac := aLeft / (aLeft + aRight)
	if w >= h {
		bisect(norm, left, x, y, w*frac, h, out)
		bisect(norm, right, x+w*frac, y, w*(1-frac), h, out)
	} else {
		bisect(norm, left, x, y, w, h*frac, out)
		bisect(norm, right, x, y+h*frac, w, h*(1-frac), out)
	}
}
