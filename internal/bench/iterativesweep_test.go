package bench

import (
	"context"
	"errors"
	"strings"
	"testing"

	"nlfl/internal/results"
)

func TestIterativeSweepQuickGates(t *testing.T) {
	cfg := Config{Seed: 42, Quick: true}
	f, err := RunIterativeSweep(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateIterative(f); err != nil {
		t.Fatalf("fresh sweep fails its own gate: %v", err)
	}
	if f.StaticOverAdaptive <= 1 {
		t.Fatalf("static/adaptive ratio %v: adaptation did not pay for itself", f.StaticOverAdaptive)
	}
	if f.AdaptiveOverOracle > 1+iterOracleTolerance {
		t.Fatalf("adaptive/oracle ratio %v above the gate", f.AdaptiveOverOracle)
	}

	// Gate sensitivity: mutations of a passing payload must each be
	// rejected, so the CI check can actually fail.
	mutations := []struct {
		name   string
		mutate func(*results.IterativeBenchFile)
		want   string
	}{
		{"schema", func(f *results.IterativeBenchFile) { f.Schema = "bogus" }, "schema"},
		{"slow-adaptive", func(f *results.IterativeBenchFile) {
			for i := range f.Policies {
				if f.Policies[i].Policy == "adaptive" {
					f.Policies[i].TotalMakespan = 10 * f.Policies[i].TotalMakespan
				}
			}
		}, "adaptive"},
		{"nondeterministic-residual", func(f *results.IterativeBenchFile) {
			f.Policies[1].Residuals[0] *= 1.5
		}, "residual"},
		{"violations", func(f *results.IterativeBenchFile) { f.Chaos[0].Violations = 2 }, "violations"},
		{"missing-chaos-class", func(f *results.IterativeBenchFile) { f.Chaos = f.Chaos[:2] }, "missing"},
		{"stale-ratio", func(f *results.IterativeBenchFile) { f.AdaptiveOverOracle = 0.5 }, "inconsistent"},
	}
	for _, m := range mutations {
		t.Run(m.name, func(t *testing.T) {
			bad := f
			bad.Policies = append([]results.IterativePolicyEntry(nil), f.Policies...)
			for i := range bad.Policies {
				bad.Policies[i].Residuals = append([]float64(nil), f.Policies[i].Residuals...)
			}
			bad.Chaos = append([]results.IterativeChaosEntry(nil), f.Chaos...)
			m.mutate(&bad)
			err := ValidateIterative(bad)
			if !errors.Is(err, ErrInvalidBench) {
				t.Fatalf("mutated payload passed the gate (err = %v)", err)
			}
			if !strings.Contains(err.Error(), m.want) {
				t.Fatalf("error %q does not mention %q", err, m.want)
			}
		})
	}
}

// TestIterativeSweepFrozenEstimatorFails is the negative control for the
// whole closed loop: an adaptive controller whose estimator is frozen
// after round 1 — lying estimates that never track the drift — must fail
// the convergence-quality gates. If this sweep passed, the gates would
// be measuring nothing.
func TestIterativeSweepFrozenEstimatorFails(t *testing.T) {
	cfg := Config{Seed: 42, Quick: true}
	f, err := runIterativeSweep(context.Background(), cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	if gerr := ValidateIterative(f); !errors.Is(gerr, ErrInvalidBench) {
		t.Fatalf("frozen-estimator sweep passed the gate (err = %v)", gerr)
	}
}
