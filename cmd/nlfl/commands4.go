package main

import (
	"fmt"

	"nlfl/internal/dessim"
	"nlfl/internal/experiments"
	"nlfl/internal/faults"
	"nlfl/internal/platform"
	"nlfl/internal/results"
	"nlfl/internal/stats"
)

// runFaults is the robustness experiment of the Section 1.1 argument made
// executable: the same deterministic fault scenarios thrown at the
// resilient demand-driven executor, the static single-round DLT schedule,
// and the failure-aware re-planner.
func runFaults(args []string) error {
	fs := newFlagSet("faults")
	scenario := fs.String("scenario", "crash", "fault scenario: crash, straggler or flaky-link")
	p := fs.Int("p", 8, "number of workers")
	tasks := fs.Int("tasks", 64, "demand-driven pool size")
	dist := fs.String("dist", "uniform", "speed profile")
	seed := fs.Int64("seed", 1, "random seed (identical seeds reproduce identical runs)")
	out := fs.String("out", "", "optional path to save the run as a JSON record")
	if err := fs.Parse(args); err != nil {
		return err
	}
	profile, err := platform.ParseProfile(*dist)
	if err != nil {
		return err
	}
	switch *scenario {
	case "crash":
		return faultsCrash(profile, *p, *tasks, *seed, *out)
	case "straggler":
		return faultsStraggler(profile, *p, *tasks, *seed, *out)
	case "flaky-link":
		return faultsFlakyLink(profile, *p, *tasks, *seed, *out)
	default:
		return fmt.Errorf("unknown scenario %q (want crash, straggler or flaky-link)", *scenario)
	}
}

func saveFaultRecord(out, name string, seed int64, data interface{}) error {
	if out == "" {
		return nil
	}
	rec := results.Record{
		Experiment: name,
		Params:     map[string]float64{"seed": float64(seed)},
		Data:       data,
	}
	if err := results.Save(out, rec); err != nil {
		return err
	}
	fmt.Println("wrote", out)
	return nil
}

// faultsCrash sweeps permanent-crash counts: demand-driven inflation vs
// the single-round DLT's forfeited allocation, plus the re-planner's
// volume price over the survivors.
func faultsCrash(profile platform.SpeedProfile, p, tasks int, seed int64, out string) error {
	cfg := experiments.DefaultFaultSweepConfig()
	cfg.P = p
	cfg.Profile = profile
	cfg.Tasks = tasks
	cfg.Seed = seed
	cfg.Crashes = nil
	for k := 0; k < p && k <= 3; k++ {
		cfg.Crashes = append(cfg.Crashes, k)
	}
	rows, err := experiments.FaultSweep(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("permanent crashes on %d workers (%s speeds, seed %d), %d-task pool:\n\n",
		p, profile, seed, tasks)
	fmt.Println("single-round DLT has no feedback channel: a dead worker forfeits its whole")
	fmt.Println("allocation. The demand-driven pool loses at most the in-flight chunks.")
	fmt.Println()
	fmt.Printf("%7s %10s %10s %10s %7s %9s | %9s | %9s %8s\n",
		"crashes", "makespan", "inflation", "extraComm", "reexec", "ddLost", "dltLost", "replanVol", "vs bound")
	for _, r := range rows {
		replan := "—"
		ratio := "—"
		if r.Metrics.Crashes > 0 {
			replan = fmt.Sprintf("%9.1f", r.ReplanVolume)
			ratio = fmt.Sprintf("%8.3f", r.Metrics.ReplanVolumeRatio)
		}
		fmt.Printf("%7d %10.3f %10.3f %10.2f %7d %9.2f | %9.2f | %9s %8s\n",
			r.Metrics.Crashes, r.DDMakespan, r.Metrics.MakespanInflation,
			r.DDExtraComm, r.Metrics.Reexecutions, r.DDLostWork, r.DLTLostWork,
			replan, ratio)
	}
	fmt.Println("\nreplan volume is the post-crash Comm_hom/k plan over the survivors;")
	fmt.Println("`vs bound` divides it by the survivor bound 2N·√(Σ sᵢ/s₁).")
	return saveFaultRecord(out, "faults-crash", seed, rows)
}

// faultsStraggler slows one worker mid-run and shows speculative
// re-execution recovering most of the loss.
func faultsStraggler(profile platform.SpeedProfile, p, tasks int, seed int64, out string) error {
	pl, err := platform.Generate(p, profile.Distribution(0), stats.NewRNG(seed))
	if err != nil {
		return err
	}
	pool := make([]dessim.Task, tasks)
	for i := range pool {
		pool[i] = dessim.Task{Data: 1, Work: 2}
	}
	base, err := faults.RunResilientDemandDriven(pl, pool, faults.Scenario{}, faults.ResilientOptions{})
	if err != nil {
		return err
	}
	sc, err := faults.RandomStragglers(p, 1, 0.05, base.Makespan*0.2, base.Makespan*10, seed)
	if err != nil {
		return err
	}
	plain, err := faults.RunResilientDemandDriven(pl, pool, sc, faults.ResilientOptions{})
	if err != nil {
		return err
	}
	spec, err := faults.RunResilientDemandDriven(pl, pool, sc, faults.ResilientOptions{Speculate: true})
	if err != nil {
		return err
	}
	fmt.Printf("one worker slowed to 5%% from t=%.2f on (%d workers, %s speeds, seed %d):\n\n",
		base.Makespan*0.2, p, profile, seed)
	fmt.Printf("%-22s %10s %9s %8s %11s\n", "executor", "makespan", "backups", "wasted", "extraComm")
	fmt.Printf("%-22s %10.3f %9d %8.2f %11.2f\n", "fault-free baseline", base.Makespan, base.Backups, base.WastedWork, base.ExtraComm)
	fmt.Printf("%-22s %10.3f %9d %8.2f %11.2f\n", "straggler, no backups", plain.Makespan, plain.Backups, plain.WastedWork, plain.ExtraComm)
	fmt.Printf("%-22s %10.3f %9d %8.2f %11.2f\n", "straggler + speculation", spec.Makespan, spec.Backups, spec.WastedWork, spec.ExtraComm)
	fmt.Println("\nspeculation trades duplicated work and shipping for makespan — the")
	fmt.Println("no-free-lunch price of straggler tolerance.")
	type row struct {
		Label  string         `json:"label"`
		Report *faults.Report `json:"report"`
	}
	return saveFaultRecord(out, "faults-straggler", seed, []row{
		{"baseline", base}, {"straggler", plain}, {"speculation", spec},
	})
}

// faultsFlakyLink drops transfers on one link for a window and shows the
// retry/backoff machinery paying for completion with extra shipping.
func faultsFlakyLink(profile platform.SpeedProfile, p, tasks int, seed int64, out string) error {
	pl, err := platform.Generate(p, profile.Distribution(0), stats.NewRNG(seed))
	if err != nil {
		return err
	}
	pool := make([]dessim.Task, tasks)
	for i := range pool {
		pool[i] = dessim.Task{Data: 1, Work: 2}
	}
	base, err := faults.RunResilientDemandDriven(pl, pool, faults.Scenario{}, faults.ResilientOptions{})
	if err != nil {
		return err
	}
	sc, err := faults.FlakyLinks(p, 1, 0.7, 0, base.Makespan*0.8, seed)
	if err != nil {
		return err
	}
	rep, err := faults.RunResilientDemandDriven(pl, pool, sc, faults.ResilientOptions{})
	if err != nil {
		return err
	}
	fmt.Printf("one link drops 70%% of transfers until t=%.2f (%d workers, %s speeds, seed %d):\n\n",
		base.Makespan*0.8, p, profile, seed)
	fmt.Printf("%-18s %10s %9s %8s %11s\n", "executor", "makespan", "drops", "retries", "extraComm")
	fmt.Printf("%-18s %10.3f %9d %8d %11.2f\n", "fault-free", base.Makespan, base.DroppedTransfers, base.Retries, base.ExtraComm)
	fmt.Printf("%-18s %10.3f %9d %8d %11.2f\n", "flaky link", rep.Makespan, rep.DroppedTransfers, rep.Retries, rep.ExtraComm)
	fmt.Println("\nevery dropped shipment is retried with capped exponential backoff; the")
	fmt.Println("job completes at the price of the wasted volume above.")
	return saveFaultRecord(out, "faults-flaky-link", seed, rep)
}
