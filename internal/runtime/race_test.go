// Concurrency tests aimed at the race detector (CI runs the whole suite
// under `go test -race`): the sharded queue's stealing path and the
// prefetch goroutines feeding trace.Live.
package runtime

import (
	"sync"
	"testing"

	"nlfl/internal/stats"
	"nlfl/internal/trace"
)

// TestWorkQueueConcurrentPop drains one sharded queue from many
// goroutines at once and checks every chunk is delivered exactly once —
// the stealing path is only safe if shard locking is right.
func TestWorkQueueConcurrentPop(t *testing.T) {
	const (
		workers = 8
		grid    = 16 // 256 ownerless chunks
	)
	chunks, err := GridChunks(64, grid)
	if err != nil {
		t.Fatal(err)
	}
	q := newWorkQueue(chunks, workers, 4)

	var mu sync.Mutex
	seen := make(map[int]int, len(chunks))
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				c, ok := q.pop(w)
				if !ok {
					return
				}
				mu.Lock()
				seen[c.Task]++
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()

	if len(seen) != len(chunks) {
		t.Fatalf("drained %d distinct chunks, want %d", len(seen), len(chunks))
	}
	for task, count := range seen {
		if count != 1 {
			t.Errorf("chunk %d delivered %d times", task, count)
		}
	}
}

// TestRunPrefetchConcurrency runs the full pool with prefetch and the
// bandwidth model on — transfer goroutines racing the compute loop into
// trace.Live — and audits the result. Meaningful under -race.
func TestRunPrefetchConcurrency(t *testing.T) {
	const n = 64
	r := stats.NewRNG(31)
	a := stats.SampleN(stats.Uniform{Lo: -1, Hi: 1}, r, n)
	b := stats.SampleN(stats.Uniform{Lo: -1, Hi: 1}, r, n)
	chunks, err := GridChunks(n, 8)
	if err != nil {
		t.Fatal(err)
	}
	plan := &StrategyPlan{Strategy: "hom", N: n, Chunks: chunks, Grid: 8, K: 1,
		Predicted: float64(2 * n * 8)}
	rep, err := Run(plan, a, b, Options{
		Speeds:        []float64{1, 2, 3, 4},
		WorkPerSecond: 2e6,
		Link:          Link{ElemsPerSecond: 2e5},
		Prefetch:      true,
		VerifyEvery:   11,
	})
	if err != nil {
		t.Fatal(err)
	}
	if vs := trace.Check(rep.Trace, rep.Expect(1e-6)); len(vs) != 0 {
		t.Errorf("trace violations: %v", vs)
	}
}
