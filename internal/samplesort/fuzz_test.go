package samplesort

import (
	"slices"
	"testing"
)

// FuzzSort feeds arbitrary byte slices through the sample sort and checks
// the result against the standard library.
func FuzzSort(f *testing.F) {
	f.Add([]byte("hello world"), uint8(3))
	f.Add([]byte{0, 0, 0, 0}, uint8(1))
	f.Add([]byte{255, 0, 255, 0, 128}, uint8(16))
	f.Fuzz(func(t *testing.T, raw []byte, pRaw uint8) {
		p := int(pRaw%16) + 1
		xs := make([]int, len(raw))
		for i, b := range raw {
			xs[i] = int(b)
		}
		got, tr, err := Sort(xs, Config{Workers: p, Seed: int64(len(raw))})
		if err != nil {
			t.Fatalf("Sort failed: %v", err)
		}
		want := append([]int(nil), xs...)
		slices.Sort(want)
		if !slices.Equal(got, want) {
			t.Fatalf("wrong sort for %v (p=%d)", xs, p)
		}
		total := 0
		for _, b := range tr.BucketSizes {
			total += b
		}
		if total != len(xs) {
			t.Fatalf("buckets sum to %d, want %d", total, len(xs))
		}
	})
}
