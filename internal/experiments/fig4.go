// Package experiments reproduces the paper's evaluation (Section 4.3) and
// the quantitative claims of Sections 2 and 3: every table and figure has
// a runner here that emits the same rows/series the paper reports.
package experiments

import (
	"fmt"

	"nlfl/internal/outer"
	"nlfl/internal/platform"
	"nlfl/internal/plot"
	"nlfl/internal/stats"
)

// Fig4Config parameterizes one panel of Figure 4.
type Fig4Config struct {
	// Ps are the processor counts on the x axis (paper: 10..100).
	Ps []int
	// Trials is the number of random platforms per point (paper: 100).
	Trials int
	// Profile selects the speed distribution (panel (a), (b) or (c)).
	Profile platform.SpeedProfile
	// BimodalK is the speed factor when Profile is ProfileBimodal.
	BimodalK float64
	// N is the vector length of the outer-product domain. The ratios are
	// N-independent; N only scales the absolute volumes.
	N float64
	// Eps is the Comm_hom/k imbalance target (paper: 1%).
	Eps float64
	// Seed drives platform generation.
	Seed int64
}

// DefaultFig4Config returns the paper's settings for a panel.
func DefaultFig4Config(profile platform.SpeedProfile) Fig4Config {
	ps := make([]int, 0, 10)
	for p := 10; p <= 100; p += 10 {
		ps = append(ps, p)
	}
	return Fig4Config{
		Ps:      ps,
		Trials:  100,
		Profile: profile,
		N:       1000,
		Eps:     0.01,
		Seed:    42,
	}
}

// Fig4Point is one x-position of a Figure 4 panel: the mean and standard
// deviation, over the random platforms, of each strategy's ratio to the
// communication lower bound.
type Fig4Point struct {
	P int
	// Het / Hom / HomK are the ratio statistics for Comm_het, Comm_hom and
	// Comm_hom/k.
	HetMean, HetSD   float64
	HomMean, HomSD   float64
	HomKMean, HomKSD float64
	// KMean is the average refinement factor Comm_hom/k settled on.
	KMean float64
}

// String renders the point as a report row.
func (pt Fig4Point) String() string {
	return fmt.Sprintf("p=%-4d het=%.4f±%.4f hom=%.3f±%.3f hom/k=%.3f±%.3f (k̄=%.1f)",
		pt.P, pt.HetMean, pt.HetSD, pt.HomMean, pt.HomSD, pt.HomKMean, pt.HomKSD, pt.KMean)
}

// Fig4 runs one panel: for every processor count it draws Trials random
// platforms, runs the three strategies, and aggregates each strategy's
// ratio to LB_comm = 2N·Σ√xᵢ.
func Fig4(cfg Fig4Config) ([]Fig4Point, error) {
	if cfg.Trials <= 0 {
		return nil, fmt.Errorf("experiments: trials must be positive")
	}
	if cfg.N <= 0 {
		cfg.N = 1000
	}
	if cfg.Eps <= 0 {
		cfg.Eps = 0.01
	}
	dist := cfg.Profile.Distribution(cfg.BimodalK)
	root := stats.NewRNG(cfg.Seed)
	points := make([]Fig4Point, 0, len(cfg.Ps))
	for _, p := range cfg.Ps {
		var het, hom, homk, ks stats.Welford
		for trial := 0; trial < cfg.Trials; trial++ {
			pl, err := platform.Generate(p, dist, root.Split())
			if err != nil {
				return nil, err
			}
			h, err := outer.Commhet(pl, cfg.N)
			if err != nil {
				return nil, err
			}
			het.Add(h.Ratio)
			hom.Add(outer.Commhom(pl, cfg.N).Ratio)
			hk, err := outer.CommhomK(pl, cfg.N, cfg.Eps, 0)
			if err != nil {
				return nil, err
			}
			homk.Add(hk.Ratio)
			ks.Add(float64(hk.K))
		}
		points = append(points, Fig4Point{
			P:        p,
			HetMean:  het.Mean(),
			HetSD:    het.StdDev(),
			HomMean:  hom.Mean(),
			HomSD:    hom.StdDev(),
			HomKMean: homk.Mean(),
			HomKSD:   homk.StdDev(),
			KMean:    ks.Mean(),
		})
	}
	return points, nil
}

// Fig4MatMulPoint is one x-position of the matmul variant of Figure 4:
// the same strategies scored with the Section 4.2 volume accounting
// (n²·(Ĉ-2) for rectangles, per-footprint totals minus resident data for
// the block strategies) against the matmul lower bound n²·(LB_unit - 2).
type Fig4MatMulPoint struct {
	P                          int
	HetMean, HomMean, HomKMean float64
}

// Fig4MatMul reruns the Figure 4 sweep under the matrix-multiplication
// cost model. Section 4.2 argues the outer-product ratios transfer to
// matmul because the communication volume "is exactly proportional to the
// sum of the half-perimeters"; this harness verifies the transfer: every
// strategy's unit-square footprint cost C becomes n²·(C-2), so the ratio
// (C-2)/(LB-2) is slightly *larger* than C/LB — heterogeneity-awareness
// matters at least as much for matmul.
func Fig4MatMul(cfg Fig4Config) ([]Fig4MatMulPoint, error) {
	if cfg.Trials <= 0 {
		return nil, fmt.Errorf("experiments: trials must be positive")
	}
	if cfg.Eps <= 0 {
		cfg.Eps = 0.01
	}
	dist := cfg.Profile.Distribution(cfg.BimodalK)
	root := stats.NewRNG(cfg.Seed)
	points := make([]Fig4MatMulPoint, 0, len(cfg.Ps))
	for _, p := range cfg.Ps {
		var het, hom, homk stats.Welford
		for trial := 0; trial < cfg.Trials; trial++ {
			pl, err := platform.Generate(p, dist, root.Split())
			if err != nil {
				return nil, err
			}
			// Unit-square footprint costs (per N): C = volume/N from the
			// outer-product accounting; matmul ratio = (C-2)/(LB-2).
			const n = 1.0
			lb := outer.LowerBound(pl, n)
			h, err := outer.Commhet(pl, n)
			if err != nil {
				return nil, err
			}
			hk, err := outer.CommhomK(pl, n, cfg.Eps, 0)
			if err != nil {
				return nil, err
			}
			den := lb - 2
			if den <= 0 {
				return nil, fmt.Errorf("experiments: degenerate matmul bound at p=%d", p)
			}
			het.Add((h.Volume - 2) / den)
			hom.Add((outer.Commhom(pl, n).Volume - 2) / den)
			homk.Add((hk.Volume - 2) / den)
		}
		points = append(points, Fig4MatMulPoint{
			P: p, HetMean: het.Mean(), HomMean: hom.Mean(), HomKMean: homk.Mean(),
		})
	}
	return points, nil
}

// Fig4MatMulTable renders the matmul variant.
func Fig4MatMulTable(points []Fig4MatMulPoint) *plot.Table {
	t := plot.NewTable("p", "Comm_het", "Comm_hom", "Comm_hom/k")
	for _, pt := range points {
		t.AddRowf(pt.P, pt.HetMean, pt.HomMean, pt.HomKMean)
	}
	return t
}

// Fig4Chart renders a panel as an ASCII chart with the paper's series
// names and error bars.
func Fig4Chart(points []Fig4Point, title string) *plot.Chart {
	c := &plot.Chart{
		Title:  title,
		XLabel: "number of processors",
		YLabel: "ratio of communication amount to the lower bound",
	}
	het := c.AddSeries("Comm_het")
	hom := c.AddSeries("Comm_hom")
	homk := c.AddSeries("Comm_hom/k")
	for _, pt := range points {
		het.Add(float64(pt.P), pt.HetMean, pt.HetSD)
		hom.Add(float64(pt.P), pt.HomMean, pt.HomSD)
		homk.Add(float64(pt.P), pt.HomKMean, pt.HomKSD)
	}
	return c
}

// Fig4Table renders a panel as a text table.
func Fig4Table(points []Fig4Point) *plot.Table {
	t := plot.NewTable("p", "Comm_het", "sd", "Comm_hom", "sd", "Comm_hom/k", "sd", "mean k")
	for _, pt := range points {
		t.AddRowf(pt.P, pt.HetMean, pt.HetSD, pt.HomMean, pt.HomSD, pt.HomKMean, pt.HomKSD, pt.KMean)
	}
	return t
}
