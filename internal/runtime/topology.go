package runtime

import (
	"context"
	"fmt"
	"math"
	"sync"
	"time"
)

// This file generalizes the one-port master link into a pluggable
// network topology. The paper's platform is a single-master star; the
// related DLT literature it builds on studies richer shapes — linear
// daisy-chains where data is forwarded hop-by-hop (Gallet–Robert–Vivien's
// linear processor networks) and multi-source networks where several
// masters feed a shared fleet (Cao–Wu–Robertazzi). A Topology describes
// the network as a set of capacity-bounded edges plus a per-worker route;
// the netLink engine books transfer windows onto those edges, and the
// trace oracle audits every edge with a capacity sweep-line
// (trace.Expect.Edges), not just the master's aggregate port.

// Edge is one capacity-bounded network edge.
type Edge struct {
	// Name labels the edge in reports and violations ("master-port",
	// "hop-3", "source-1").
	Name string
	// Capacity is the edge bandwidth in vector elements per second; a
	// value ≤ 0 leaves the edge uncapped (it carries traffic but books no
	// windows).
	Capacity float64
}

// Topology describes a modeled network: a fixed edge set and, per
// worker, the route its input data takes from its source. Implementations
// must be usable as values (no mutable state) — the booking engine keeps
// all mutable state itself.
type Topology interface {
	// Name identifies the topology family ("star", "chain", "two-source").
	Name() string
	// Edges returns the edge set; the index in the slice is the edge id
	// used by Route, trace.Relay.Edge and Report.Edges.
	Edges() []Edge
	// Route returns the edge ids worker w's input traverses, in
	// source→worker order. The last edge is the delivery hop.
	Route(w int) []int
	// StoreAndForward reports the switching discipline: true means a
	// transfer crosses its route hop-by-hop, each hop booking its own
	// window at that edge's rate (daisy-chain forwarding); false means
	// circuit switching — one window held on every route edge
	// simultaneously at the bottleneck rate (the star's one-port model).
	StoreAndForward() bool
	// Validate checks the topology is well-formed for a fleet of
	// `workers` workers.
	Validate(workers int) error
}

// Star is the paper's platform: every worker hangs directly off the
// master. Edge 0 is the shared master port (capacity Aggregate; ≤ 0 =
// unconstrained) and edge 1+w is worker w's own incoming link (uncapped
// when PerWorker is nil or ≤ 0). It is the Topology the runtime builds
// from Options.Link, and reproduces the masterLink booking numerics
// exactly: circuit switching holds the port and the worker link for the
// same window at rate min(Aggregate, PerWorker[w]).
type Star struct {
	// Aggregate is the shared master-port bandwidth (elements/second;
	// ≤ 0 = unconstrained).
	Aggregate float64
	// PerWorker optionally caps each worker's own incoming link; nil or
	// a ≤ 0 entry means uncapped. When non-nil it must have one entry
	// per worker.
	PerWorker []float64
	// Workers is the fleet size the star serves.
	Workers int
}

// Name implements Topology.
func (s Star) Name() string { return "star" }

// Edges implements Topology.
func (s Star) Edges() []Edge {
	edges := make([]Edge, 1+s.Workers)
	edges[0] = Edge{Name: "master-port", Capacity: s.Aggregate}
	for w := 0; w < s.Workers; w++ {
		cap := 0.0
		if w < len(s.PerWorker) {
			cap = s.PerWorker[w]
		}
		edges[1+w] = Edge{Name: fmt.Sprintf("link-%d", w), Capacity: cap}
	}
	return edges
}

// Route implements Topology.
func (s Star) Route(w int) []int { return []int{0, 1 + w} }

// StoreAndForward implements Topology.
func (s Star) StoreAndForward() bool { return false }

// Validate implements Topology.
func (s Star) Validate(workers int) error {
	if s.Workers != workers {
		return fmt.Errorf("runtime: star topology sized for %d workers, platform has %d", s.Workers, workers)
	}
	if len(s.PerWorker) != 0 && len(s.PerWorker) != workers {
		return fmt.Errorf("runtime: star PerWorker has %d entries for %d workers", len(s.PerWorker), workers)
	}
	for i, r := range s.PerWorker {
		if math.IsNaN(r) || math.IsInf(r, 0) {
			return fmt.Errorf("runtime: star PerWorker[%d] is non-finite (%v)", i, r)
		}
	}
	if math.IsNaN(s.Aggregate) || math.IsInf(s.Aggregate, 0) {
		return fmt.Errorf("runtime: star aggregate bandwidth is non-finite (%v)", s.Aggregate)
	}
	return nil
}

// StarFromLink converts a Link configuration into the equivalent Star
// topology (nil when the Link model is disabled) — for layers that
// accept either form (the fleet service's Config).
func StarFromLink(cfg Link, workers int) Topology { return starFromLink(cfg, workers) }

// starFromLink converts the legacy Options.Link configuration into the
// equivalent Star topology (nil Link model → nil topology).
func starFromLink(cfg Link, workers int) Topology {
	if !cfg.Enabled() {
		return nil
	}
	per := make([]float64, len(cfg.PerWorker))
	copy(per, cfg.PerWorker)
	return Star{Aggregate: cfg.ElemsPerSecond, PerWorker: per, Workers: workers}
}

// Chain is a linear daisy-chain: the master feeds worker 0, and worker
// w's input is forwarded through workers 0..w−1. Edge i is the hop into
// worker i with capacity HopRates[i]; worker w's route is edges 0..w.
// Switching is store-and-forward — each hop books its own window, so a
// deep worker's delivery waits for its payload to cross every earlier
// hop, and the intermediate windows are recorded as trace.Relay entries.
type Chain struct {
	// HopRates[i] is the bandwidth of the hop into worker i
	// (elements/second). Every hop must be positive and finite — an
	// uncapped store-and-forward hop has no meaningful window.
	HopRates []float64
}

// UniformChain builds a chain of `workers` hops all at rate
// elements/second.
func UniformChain(workers int, rate float64) Chain {
	hops := make([]float64, workers)
	for i := range hops {
		hops[i] = rate
	}
	return Chain{HopRates: hops}
}

// Name implements Topology.
func (c Chain) Name() string { return "chain" }

// Edges implements Topology.
func (c Chain) Edges() []Edge {
	edges := make([]Edge, len(c.HopRates))
	for i, r := range c.HopRates {
		edges[i] = Edge{Name: fmt.Sprintf("hop-%d", i), Capacity: r}
	}
	return edges
}

// Route implements Topology.
func (c Chain) Route(w int) []int {
	route := make([]int, w+1)
	for i := range route {
		route[i] = i
	}
	return route
}

// StoreAndForward implements Topology.
func (c Chain) StoreAndForward() bool { return true }

// Validate implements Topology.
func (c Chain) Validate(workers int) error {
	if len(c.HopRates) != workers {
		return fmt.Errorf("runtime: chain has %d hops for %d workers", len(c.HopRates), workers)
	}
	for i, r := range c.HopRates {
		if math.IsNaN(r) || math.IsInf(r, 0) || r <= 0 {
			return fmt.Errorf("runtime: chain hop %d rate %v must be positive and finite", i, r)
		}
	}
	return nil
}

// TwoSource is a two-master network: two sources feed a shared fleet
// through disjoint links. Edge 0 is source 0's outgoing link, edge 1 is
// source 1's; Assign[w] names the source feeding worker w. Each source
// link serializes its own workers' transfers one-port style but the two
// sources ship concurrently — the aggregate drain rate is the sum of the
// source rates (Cao–Wu–Robertazzi's multi-source model).
type TwoSource struct {
	// SourceRates are the two source-link bandwidths (elements/second,
	// both positive and finite).
	SourceRates [2]float64
	// Assign[w] ∈ {0, 1} is the source feeding worker w; must have one
	// entry per worker.
	Assign []int
}

// SplitTwoSource builds a two-source network over `workers` workers with
// the first half (len/2, rounded down) fed by source 0 at rate0 and the
// rest by source 1 at rate1.
func SplitTwoSource(workers int, rate0, rate1 float64) TwoSource {
	assign := make([]int, workers)
	for w := workers / 2; w < workers; w++ {
		assign[w] = 1
	}
	return TwoSource{SourceRates: [2]float64{rate0, rate1}, Assign: assign}
}

// Name implements Topology.
func (t TwoSource) Name() string { return "two-source" }

// Edges implements Topology.
func (t TwoSource) Edges() []Edge {
	return []Edge{
		{Name: "source-0", Capacity: t.SourceRates[0]},
		{Name: "source-1", Capacity: t.SourceRates[1]},
	}
}

// Route implements Topology.
func (t TwoSource) Route(w int) []int { return []int{t.Assign[w]} }

// StoreAndForward implements Topology.
func (t TwoSource) StoreAndForward() bool { return false }

// Validate implements Topology.
func (t TwoSource) Validate(workers int) error {
	if len(t.Assign) != workers {
		return fmt.Errorf("runtime: two-source assignment has %d entries for %d workers", len(t.Assign), workers)
	}
	for i, r := range t.SourceRates {
		if math.IsNaN(r) || math.IsInf(r, 0) || r <= 0 {
			return fmt.Errorf("runtime: two-source rate %d (%v) must be positive and finite", i, r)
		}
	}
	for w, s := range t.Assign {
		if s != 0 && s != 1 {
			return fmt.Errorf("runtime: worker %d assigned to source %d (must be 0 or 1)", w, s)
		}
	}
	return nil
}

// bookedWindow is one reserved transfer window on one edge.
type bookedWindow struct {
	edge       int
	start, end float64
}

// netLink books transfers onto a topology's edges. It generalizes the
// old masterLink: per edge it keeps a next-free instant, a booked-volume
// ledger and a busy-seconds total. Circuit-switched routes (star,
// two-source) book one window at the bottleneck rate holding every
// capped route edge simultaneously — for a star this reproduces
// masterLink's numerics bit for bit. Store-and-forward routes (chain)
// book one window per hop sequentially: hop k starts at the latest of
// hop k−1's end and edge k's next-free instant, and the last hop is the
// delivery window while earlier hops are relays. Workers sleep until
// their delivery window has elapsed, so measured makespans include the
// modeled transfer time and the recorded spans/relays tile each edge's
// timeline exactly — which is what lets trace.Check enforce the
// per-edge capacity invariant tightly.
type netLink struct {
	name   string
	sf     bool
	edges  []Edge
	routes [][]int // routes[w]: worker w's edge ids, source→worker order
	capped [][]int // capped[w]: the subset of routes[w] with Capacity > 0

	mu   sync.Mutex
	free []float64 // per-edge next-free instant (live seconds)
	vol  []float64 // per-edge booked elements, dropped payloads included
	busy []float64 // per-edge summed window seconds (capped edges only)
	now  func() float64
	// slowdown, when set, scales the effective rate of a transfer to
	// worker w booked at live instant t (the chaos layer's LinkSlow
	// realization: factor < 1 stretches the booked window). Sampled once
	// at booking time and applied to the delivery hop; a window boundary
	// crossing mid-transfer does not re-rate the transfer.
	slowdown func(w int, t float64) float64
}

// newNetLink builds the booking state for the topology; nil when no
// worker's route has any capped edge (the model costs nothing).
func newNetLink(topo Topology, workers int, now func() float64) *netLink {
	if topo == nil {
		return nil
	}
	edges := topo.Edges()
	nl := &netLink{
		name:   topo.Name(),
		sf:     topo.StoreAndForward(),
		edges:  edges,
		routes: make([][]int, workers),
		capped: make([][]int, workers),
		free:   make([]float64, len(edges)),
		vol:    make([]float64, len(edges)),
		busy:   make([]float64, len(edges)),
		now:    now,
	}
	any := false
	for w := 0; w < workers; w++ {
		route := append([]int(nil), topo.Route(w)...)
		nl.routes[w] = route
		for _, e := range route {
			if edges[e].Capacity > 0 {
				nl.capped[w] = append(nl.capped[w], e)
				any = true
			}
		}
	}
	if !any {
		return nil
	}
	return nl
}

// constrained reports whether worker w's route has any capped edge. An
// unconstrained worker takes the memcpy path: its transfers occupy no
// modeled edge and book no window.
func (nl *netLink) constrained(w int) bool { return len(nl.capped[w]) > 0 }

// book reserves the transfer windows of elems elements for worker w and
// returns the delivery window plus any intermediate relay windows (in
// hop order; empty for circuit routes). It never sleeps; pair it with
// wait on the delivery window's end.
func (nl *netLink) book(w int, elems float64) (delivery bookedWindow, relays []bookedWindow) {
	route, capped := nl.routes[w], nl.capped[w]
	nl.mu.Lock()
	defer nl.mu.Unlock()
	t := nl.now()
	slow := 1.0
	if nl.slowdown != nil {
		if f := nl.slowdown(w, t); f > 0 && f < 1 {
			slow = f
		}
	}
	for _, e := range route {
		nl.vol[e] += elems
	}
	if !nl.sf {
		// Circuit switching: one window at the bottleneck rate, held on
		// every capped route edge simultaneously.
		rate := math.Inf(1)
		for _, e := range capped {
			if c := nl.edges[e].Capacity; c < rate {
				rate = c
			}
		}
		rate *= slow
		dur := elems / rate
		start := t
		for _, e := range capped {
			if nl.free[e] > start {
				start = nl.free[e]
			}
		}
		end := start + dur
		for _, e := range capped {
			nl.free[e] = end
			nl.busy[e] += dur
		}
		return bookedWindow{edge: route[len(route)-1], start: start, end: end}, nil
	}
	// Store-and-forward: sequential hop windows; the payload cannot enter
	// hop k before it has fully crossed hop k−1.
	prev := t
	wins := make([]bookedWindow, len(route))
	for i, e := range route {
		rate := nl.edges[e].Capacity
		if i == len(route)-1 {
			rate *= slow
		}
		dur := elems / rate
		start := prev
		if nl.free[e] > start {
			start = nl.free[e]
		}
		end := start + dur
		nl.free[e] = end
		nl.busy[e] += dur
		wins[i] = bookedWindow{edge: e, start: start, end: end}
		prev = end
	}
	return wins[len(wins)-1], wins[:len(wins)-1]
}

// wait sleeps until the booked delivery window's end has passed on the
// live clock, or until ctx is cancelled — false means cancelled. Under a
// constrained network a booked window can sit far in the future (every
// earlier booking serializes ahead of it), so an uninterruptible sleep
// here would delay RunContext cancellation by the whole backlog;
// cancellation must instead abandon the window immediately.
func (nl *netLink) wait(ctx context.Context, end float64) bool {
	d := end - nl.now()
	if d <= 0 {
		return ctx.Err() == nil
	}
	t := time.NewTimer(time.Duration(d * float64(time.Second)))
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}

// snapshot returns copies of the per-edge volume and busy ledgers.
func (nl *netLink) snapshot() (vol, busy []float64) {
	nl.mu.Lock()
	defer nl.mu.Unlock()
	vol = append([]float64(nil), nl.vol...)
	busy = append([]float64(nil), nl.busy...)
	return vol, busy
}

// spanRoutes returns, per worker, the edge ids the worker's delivery
// Comm spans occupy — the full route for circuit switching, only the
// final hop for store-and-forward (earlier hops are relays), nil for an
// unconstrained worker. This is exactly trace.Expect.Routes.
func (nl *netLink) spanRoutes() [][]int {
	out := make([][]int, len(nl.routes))
	for w, route := range nl.routes {
		if !nl.constrained(w) {
			continue
		}
		if nl.sf {
			out[w] = []int{route[len(route)-1]}
			continue
		}
		out[w] = append([]int(nil), route...)
	}
	return out
}

// EdgeReport is one edge's measured traffic in a Report.
type EdgeReport struct {
	// Name is the topology's edge label.
	Name string `json:"name"`
	// Capacity is the modeled bandwidth (0 = uncapped).
	Capacity float64 `json:"capacity"`
	// Volume is the elements booked onto the edge, dropped payloads
	// included — the master paid for them either way.
	Volume float64 `json:"volume"`
	// BusySeconds is the summed duration of the edge's booked windows.
	// Capped edges book disjoint windows so this is also their occupied
	// time; uncapped edges book no windows and report 0.
	BusySeconds float64 `json:"busySeconds"`
	// Utilization is BusySeconds over the run's makespan (0 for uncapped
	// edges). Unlike the legacy aggregate-capacity LinkUtilization this
	// is meaningful per edge on any topology.
	Utilization float64 `json:"utilization"`
}

// edgeReports assembles the per-edge report rows for a run of the given
// makespan.
func (nl *netLink) edgeReports(makespan float64) []EdgeReport {
	vol, busy := nl.snapshot()
	out := make([]EdgeReport, len(nl.edges))
	for i, e := range nl.edges {
		r := EdgeReport{Name: e.Name, Capacity: math.Max(e.Capacity, 0), Volume: vol[i], BusySeconds: busy[i]}
		if makespan > 0 {
			r.Utilization = busy[i] / makespan
		}
		out[i] = r
	}
	return out
}
