package outer

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"nlfl/internal/platform"
	"nlfl/internal/stats"
)

func homPlat(t *testing.T, p int) *platform.Platform {
	t.Helper()
	pl, err := platform.Homogeneous(p, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	return pl
}

func speedsPlat(t *testing.T, speeds ...float64) *platform.Platform {
	t.Helper()
	pl, err := platform.FromSpeeds(speeds)
	if err != nil {
		t.Fatal(err)
	}
	return pl
}

func TestLowerBoundHomogeneous(t *testing.T) {
	// p equal workers: LB = 2N·p·√(1/p) = 2N√p.
	pl := homPlat(t, 16)
	if got, want := LowerBound(pl, 100), 2.0*100*4; math.Abs(got-want) > 1e-9 {
		t.Errorf("LB = %v, want %v", got, want)
	}
}

func TestCommhomClosedForm(t *testing.T) {
	// Speeds {1, 3}: Comm_hom = 2N√(Σs/s₁) = 2N·2 = 4N.
	pl := speedsPlat(t, 1, 3)
	const n = 50
	r := Commhom(pl, n)
	if math.Abs(r.Volume-4*n) > 1e-9 {
		t.Errorf("volume = %v, want %v", r.Volume, 4.0*n)
	}
	// x₁ = 1/4 ⇒ 4 blocks; slow worker 1, fast worker 3.
	if r.Blocks != 4 {
		t.Errorf("blocks = %d, want 4", r.Blocks)
	}
	if math.Abs(r.PerWorker[0]-n) > 1e-9 || math.Abs(r.PerWorker[1]-3*n) > 1e-9 {
		t.Errorf("per-worker = %v, want [N, 3N]", r.PerWorker)
	}
	// Ratio against LB = 2N(√(1/4)+√(3/4)) = N(1+√3).
	wantRatio := 4 * n / (n * (1 + math.Sqrt(3)))
	if math.Abs(r.Ratio-wantRatio) > 1e-9 {
		t.Errorf("ratio = %v, want %v", r.Ratio, wantRatio)
	}
}

func TestCommhomHomogeneousIsOptimal(t *testing.T) {
	pl := homPlat(t, 25)
	r := Commhom(pl, 10)
	if math.Abs(r.Ratio-1) > 1e-9 {
		t.Errorf("homogeneous Comm_hom ratio = %v, want 1", r.Ratio)
	}
}

// bruteDemandCounts replays the demand-driven process one block at a time.
func bruteDemandCounts(speeds []float64, b int) []int {
	counts := make([]int, len(speeds))
	for blk := 0; blk < b; blk++ {
		best, bestTime := -1, math.Inf(1)
		for i, s := range speeds {
			claim := float64(counts[i]) / s
			if claim < bestTime {
				best, bestTime = i, claim
			}
		}
		counts[best]++
	}
	return counts
}

func TestDemandCountsMatchesBruteForce(t *testing.T) {
	r := stats.NewRNG(1)
	for trial := 0; trial < 50; trial++ {
		p := 1 + r.Intn(12)
		speeds := make([]float64, p)
		for i := range speeds {
			speeds[i] = 0.5 + 10*r.Float64()
		}
		b := r.Intn(200)
		got := demandCounts(speeds, b)
		want := bruteDemandCounts(speeds, b)
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d (p=%d b=%d): counts %v, brute force %v", trial, p, b, got, want)
			}
		}
	}
}

func TestDemandCountsHomogeneousTies(t *testing.T) {
	speeds := []float64{1, 1, 1, 1}
	got := demandCounts(speeds, 6)
	want := []int{2, 2, 1, 1} // ties go to the lowest index
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("counts = %v, want %v", got, want)
		}
	}
}

func TestDemandCountsEdgeCases(t *testing.T) {
	if got := demandCounts([]float64{1, 2}, 0); got[0] != 0 || got[1] != 0 {
		t.Errorf("b=0 counts = %v", got)
	}
	got := demandCounts([]float64{5}, 7)
	if got[0] != 7 {
		t.Errorf("single worker counts = %v", got)
	}
}

func TestImbalanceOf(t *testing.T) {
	if e := imbalanceOf([]float64{1, 1}, []int{2, 1}); math.Abs(e-1) > 1e-12 {
		t.Errorf("e = %v, want 1", e)
	}
	if e := imbalanceOf([]float64{1, 2}, []int{1, 2}); e != 0 {
		t.Errorf("proportional counts should balance exactly, e = %v", e)
	}
	if e := imbalanceOf([]float64{1, 1}, []int{0, 5}); !math.IsInf(e, 1) {
		t.Errorf("idle worker should give +Inf, e = %v", e)
	}
	if e := imbalanceOf([]float64{1, 1}, []int{0, 0}); e != 0 {
		t.Errorf("no blocks at all should give 0, e = %v", e)
	}
}

func TestCommhomKHomogeneousPerfectSquare(t *testing.T) {
	// p homogeneous workers: x₁ = 1/p ⇒ p blocks, one each, e = 0, k = 1.
	pl := homPlat(t, 10)
	r, err := CommhomK(pl, 100, 0.01, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r.K != 1 || r.Imbalance != 0 {
		t.Errorf("homogeneous: k=%d e=%v, want k=1 e=0", r.K, r.Imbalance)
	}
	if math.Abs(r.Ratio-1) > 1e-9 {
		t.Errorf("homogeneous ratio = %v, want 1", r.Ratio)
	}
}

func TestCommhomKMeetsImbalanceTarget(t *testing.T) {
	r := stats.NewRNG(2)
	for _, p := range []int{10, 40, 100} {
		pl, err := platform.Generate(p, stats.Uniform{Lo: 1, Hi: 100}, r)
		if err != nil {
			t.Fatal(err)
		}
		res, err := CommhomK(pl, 1000, 0.01, 0)
		if err != nil {
			t.Fatal(err)
		}
		if res.Imbalance > 0.01 {
			t.Errorf("p=%d: imbalance %v above 1%%", p, res.Imbalance)
		}
		if res.K < 1 {
			t.Errorf("p=%d: k=%d", p, res.K)
		}
		// Heterogeneous platforms need refinement: ratio well above het's.
		het, err := Commhet(pl, 1000)
		if err != nil {
			t.Fatal(err)
		}
		if res.Ratio < het.Ratio {
			t.Errorf("p=%d: hom/k ratio %v below het ratio %v", p, res.Ratio, het.Ratio)
		}
	}
}

func TestCommhomKVolumeAccounting(t *testing.T) {
	pl := speedsPlat(t, 1, 2, 4)
	const n = 100
	res, err := CommhomK(pl, n, 0.01, 0)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, v := range res.PerWorker {
		sum += v
	}
	if math.Abs(sum-res.Volume) > 1e-9 {
		t.Errorf("per-worker volumes %v don't sum to %v", sum, res.Volume)
	}
	// Volume must equal blocks × 2·D/k.
	x1 := 1.0 / 7.0
	blockData := 2 * math.Sqrt(x1) * n / float64(res.K)
	if math.Abs(res.Volume-float64(res.Blocks)*blockData) > 1e-6 {
		t.Errorf("volume %v != blocks %d × blockData %v", res.Volume, res.Blocks, blockData)
	}
}

func TestCommhomKBadArgs(t *testing.T) {
	pl := homPlat(t, 2)
	if _, err := CommhomK(pl, 10, 0, 0); err == nil {
		t.Error("eps=0 should fail")
	}
	if _, err := CommhomK(pl, 10, -1, 0); err == nil {
		t.Error("negative eps should fail")
	}
}

func TestCommhetWithinGuarantee(t *testing.T) {
	r := stats.NewRNG(3)
	for _, p := range []int{10, 50, 100} {
		for _, d := range []stats.Distribution{
			stats.Uniform{Lo: 1, Hi: 100},
			stats.LogNormal{Mu: 0, Sigma: 1},
		} {
			pl, err := platform.Generate(p, d, r)
			if err != nil {
				t.Fatal(err)
			}
			res, err := Commhet(pl, 500)
			if err != nil {
				t.Fatal(err)
			}
			if res.Ratio < 1-1e-9 {
				t.Errorf("p=%d %v: het ratio %v below 1", p, d, res.Ratio)
			}
			if res.Ratio > 1.75 {
				t.Errorf("p=%d %v: het ratio %v above 7/4 guarantee", p, d, res.Ratio)
			}
			// The paper's experimental finding: always within ~2% of LB.
			if res.Ratio > 1.05 {
				t.Errorf("p=%d %v: het ratio %v far above the ≈2%% the paper reports", p, d, res.Ratio)
			}
		}
	}
}

func TestCommhetPerWorkerFootprints(t *testing.T) {
	pl := speedsPlat(t, 1, 1, 2)
	const n = 10
	res, err := Commhet(pl, n)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerWorker) != 3 {
		t.Fatalf("per-worker length = %d", len(res.PerWorker))
	}
	sum := 0.0
	for i, v := range res.PerWorker {
		if v <= 0 {
			t.Errorf("worker %d footprint %v", i, v)
		}
		sum += v
	}
	if math.Abs(sum-res.Volume) > 1e-9 {
		t.Errorf("footprints sum %v != volume %v", sum, res.Volume)
	}
}

func TestRhoBimodalMatchesAnalysis(t *testing.T) {
	// Half the platform at speed 1, half at speed k: the paper proves
	// ρ = Comm_hom/Comm_het ≥ (1+k)/(1+√k). Comm_het is within a few
	// percent of LB, so the measured ratio clears the bound with a small
	// tolerance for the partitioner's slack.
	const n = 1000
	for _, k := range []float64{1, 4, 16, 64, 100} {
		speeds := make([]float64, 20)
		for i := range speeds {
			speeds[i] = 1
			if i >= 10 {
				speeds[i] = k
			}
		}
		pl, err := platform.FromSpeeds(speeds)
		if err != nil {
			t.Fatal(err)
		}
		hom := Commhom(pl, n)
		het, err := Commhet(pl, n)
		if err != nil {
			t.Fatal(err)
		}
		rho := hom.Volume / het.Volume
		// Rigorous bound (carries the partitioner's 7/4 slack as a 4/7
		// factor): ρ ≥ (4/7)·Σs/(√s₁·Σ√s).
		if rho < RhoAnalytic(pl)-1e-9 {
			t.Errorf("k=%v: measured ρ=%v below analytic bound %v", k, rho, RhoAnalytic(pl))
		}
		// Empirical shape: Comm_het lands within a few percent of LB, so ρ
		// tracks (1+k)/(1+√k) (and hence √k-1) up to that slack.
		bound := RhoLowerBound(k)
		if rho < bound*0.9 {
			t.Errorf("k=%v: measured ρ=%v far below (1+k)/(1+√k)=%v", k, rho, bound)
		}
		if rho < (math.Sqrt(k)-1)*0.9 {
			t.Errorf("k=%v: measured ρ=%v far below √k-1", k, rho)
		}
	}
}

func TestRhoLowerBoundValues(t *testing.T) {
	if got := RhoLowerBound(1); math.Abs(got-1) > 1e-12 {
		t.Errorf("ρ bound at k=1 = %v, want 1", got)
	}
	if got := RhoLowerBound(100); math.Abs(got-101.0/11.0) > 1e-12 {
		t.Errorf("ρ bound at k=100 = %v, want 101/11", got)
	}
	// (1+k)/(1+√k) ≥ √k - 1 for all k ≥ 1.
	for k := 1.0; k < 1000; k *= 1.7 {
		if RhoLowerBound(k) < math.Sqrt(k)-1-1e-12 {
			t.Errorf("bound chain fails at k=%v", k)
		}
	}
}

func TestResultString(t *testing.T) {
	pl := homPlat(t, 4)
	if Commhom(pl, 10).String() == "" {
		t.Error("empty result string")
	}
}

// Property: demand-driven counts conserve the block total and roughly
// track speeds; the bisection implementation always matches brute force.
func TestDemandCountsProperty(t *testing.T) {
	f := func(seed int64, np, nb uint8) bool {
		p := int(np%10) + 1
		b := int(nb % 100)
		r := stats.NewRNG(seed)
		speeds := make([]float64, p)
		for i := range speeds {
			speeds[i] = 0.25 + 8*r.Float64()
		}
		got := demandCounts(speeds, b)
		want := bruteDemandCounts(speeds, b)
		total := 0
		for i := range got {
			if got[i] != want[i] {
				return false
			}
			total += got[i]
		}
		return total == b
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: on any platform, Comm_het ∈ [LB, 1.75·LB] and Comm_hom ≥ LB.
func TestStrategyBoundsProperty(t *testing.T) {
	f := func(seed int64, np uint8) bool {
		p := int(np%30) + 1
		r := stats.NewRNG(seed)
		pl, err := platform.Generate(p, stats.LogNormal{Mu: 0, Sigma: 1}, r)
		if err != nil {
			return false
		}
		const n = 100
		lb := LowerBound(pl, n)
		hom := Commhom(pl, n)
		het, err := Commhet(pl, n)
		if err != nil {
			return false
		}
		return hom.Volume >= lb-1e-6 &&
			het.Volume >= lb-1e-6 &&
			het.Volume <= 1.75*lb+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestRoundedCountsExact(t *testing.T) {
	xs := []float64{0.5, 0.3, 0.2}
	got := demandTotal(roundedCounts(xs, 10))
	if got != 10 {
		t.Fatalf("total = %d, want 10", got)
	}
	counts := roundedCounts(xs, 10)
	if counts[0] != 5 || counts[1] != 3 || counts[2] != 2 {
		t.Errorf("counts = %v, want [5 3 2]", counts)
	}
	// Fractions: 0.35·3 etc — largest remainders get the extras.
	counts = roundedCounts([]float64{0.35, 0.33, 0.32}, 10)
	if demandTotal(counts) != 10 {
		t.Errorf("total = %d", demandTotal(counts))
	}
	if counts[0] != 4 { // 3.5 has the largest remainder
		t.Errorf("counts = %v, worker 0 should get the extra", counts)
	}
}

func demandTotal(counts []int) int {
	s := 0
	for _, c := range counts {
		s += c
	}
	return s
}

func TestCommhomKRoundedConvergesFasterOrEqual(t *testing.T) {
	// Largest-remainder rounding has half the worst-case per-worker error
	// of the demand-driven claim process, so *on average* it converges at
	// smaller k and a smaller ratio (per-instance it can tie or lose).
	r := stats.NewRNG(12)
	var ddK, roundedK, ddRatio, roundedRatio float64
	const trials = 20
	for trial := 0; trial < trials; trial++ {
		pl, err := platform.Generate(60, stats.Uniform{Lo: 1, Hi: 100}, r)
		if err != nil {
			t.Fatal(err)
		}
		dd, err := CommhomK(pl, 1000, 0.01, 0)
		if err != nil {
			t.Fatal(err)
		}
		rounded, err := CommhomKRounded(pl, 1000, 0.01, 0)
		if err != nil {
			t.Fatal(err)
		}
		if rounded.Imbalance > 0.01 {
			t.Errorf("rounded imbalance %v above target", rounded.Imbalance)
		}
		ddK += float64(dd.K)
		roundedK += float64(rounded.K)
		ddRatio += dd.Ratio
		roundedRatio += rounded.Ratio
	}
	if roundedK >= ddK {
		t.Errorf("mean rounded k %v should be below demand-driven %v", roundedK/trials, ddK/trials)
	}
	if roundedRatio >= ddRatio {
		t.Errorf("mean rounded ratio %v should be below demand-driven %v", roundedRatio/trials, ddRatio/trials)
	}
}

func TestCommhomKRoundedValidation(t *testing.T) {
	pl := homPlat(t, 3)
	if _, err := CommhomKRounded(pl, 10, 0, 0); err == nil {
		t.Error("eps=0 should fail")
	}
	res, err := CommhomKRounded(pl, 10, 0.01, 0)
	if err != nil || res.K != 1 {
		t.Errorf("homogeneous should converge at k=1: %+v %v", res, err)
	}
}

func TestBlockAssignment(t *testing.T) {
	pl := speedsPlat(t, 1, 3)
	grid, err := BlockAssignment(pl, 4)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, 2)
	for _, row := range grid {
		for _, w := range row {
			if w < 0 || w > 1 {
				t.Fatalf("bad owner %d", w)
			}
			counts[w]++
		}
	}
	if counts[0]+counts[1] != 16 {
		t.Fatalf("counts %v", counts)
	}
	// 3x faster worker takes ≈ 12 of 16 blocks.
	if counts[1] < 10 || counts[1] > 14 {
		t.Errorf("fast worker got %d blocks, want ≈12", counts[1])
	}
	out := RenderBlockAssignment(grid)
	if !strings.Contains(out, "0") || !strings.Contains(out, "1") {
		t.Errorf("rendering missing glyphs:\n%s", out)
	}
	if _, err := BlockAssignment(pl, 0); err == nil {
		t.Error("g=0 should fail")
	}
}

func TestWeightedCommTime(t *testing.T) {
	// Unit bandwidths: weighted time == volume.
	pl := speedsPlat(t, 1, 2, 4)
	const n = 100
	het, err := Commhet(pl, n)
	if err != nil {
		t.Fatal(err)
	}
	total, worst := WeightedCommTime(pl, het)
	if math.Abs(total-het.Volume) > 1e-9 {
		t.Errorf("unit-bandwidth weighted time %v != volume %v", total, het.Volume)
	}
	if worst <= 0 || worst > total {
		t.Errorf("worst %v outside (0, total]", worst)
	}
	// Doubling every bandwidth halves the times.
	ws := make([]platform.Worker, 3)
	for i, s := range []float64{1, 2, 4} {
		ws[i] = platform.Worker{Speed: s, Bandwidth: 2}
	}
	fast, err := platform.New(ws)
	if err != nil {
		t.Fatal(err)
	}
	het2, err := Commhet(fast, n)
	if err != nil {
		t.Fatal(err)
	}
	total2, _ := WeightedCommTime(fast, het2)
	if math.Abs(total2-total/2) > 1e-9 {
		t.Errorf("2× bandwidth should halve the time: %v vs %v", total2, total/2)
	}
	// The heterogeneity-aware layout keeps its advantage under weighting.
	hom := Commhom(pl, n)
	homTotal, _ := WeightedCommTime(pl, hom)
	if homTotal <= total {
		t.Errorf("weighted hom %v should exceed weighted het %v", homTotal, total)
	}
}
