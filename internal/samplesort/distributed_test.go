package samplesort

import (
	"math"
	"testing"

	"nlfl/internal/dessim"
	"nlfl/internal/platform"
)

func TestSimulateDistributedBasics(t *testing.T) {
	pl, err := platform.Homogeneous(8, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	c, err := SimulateDistributed(pl, 1<<16, Config{}, dessim.ParallelLinks)
	if err != nil {
		t.Fatal(err)
	}
	if c.Step1 <= 0 || c.Step2 <= 0 {
		t.Errorf("master phases missing: %+v", c)
	}
	if c.Makespan <= c.CommMakespan || c.CommMakespan <= c.Step1+c.Step2 {
		t.Errorf("phase ordering broken: %+v", c)
	}
	total := 0
	for _, sz := range c.BucketSizes {
		total += sz
	}
	if total != 1<<16 {
		t.Errorf("bucket sizes sum to %d", total)
	}
	if c.Speedup() <= 1 {
		t.Errorf("8 workers should beat the sequential sort at this N: speedup %v", c.Speedup())
	}
}

func TestSimulateDistributedOnePortSlower(t *testing.T) {
	pl, err := platform.Homogeneous(6, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := SimulateDistributed(pl, 1<<15, Config{}, dessim.ParallelLinks)
	if err != nil {
		t.Fatal(err)
	}
	op, err := SimulateDistributed(pl, 1<<15, Config{}, dessim.OnePort)
	if err != nil {
		t.Fatal(err)
	}
	if op.Makespan < par.Makespan {
		t.Errorf("one-port %v faster than parallel links %v", op.Makespan, par.Makespan)
	}
}

func TestSimulateDistributedHeterogeneousBuckets(t *testing.T) {
	pl, err := platform.FromSpeeds([]float64{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	c, err := SimulateDistributed(pl, 40000, Config{}, dessim.ParallelLinks)
	if err != nil {
		t.Fatal(err)
	}
	if c.BucketSizes[0] != 10000 || c.BucketSizes[1] != 30000 {
		t.Errorf("buckets = %v, want speed-proportional [10000 30000]", c.BucketSizes)
	}
}

func TestDistributedScalingImproves(t *testing.T) {
	pl, err := platform.Homogeneous(8, 1, 8) // fast links
	if err != nil {
		t.Fatal(err)
	}
	rows, err := DistributedScaling(pl, []int{1 << 12, 1 << 16, 1 << 20}, dessim.ParallelLinks)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].Speedup() <= rows[i-1].Speedup() {
			t.Errorf("speedup should grow with N: %v then %v", rows[i-1].Speedup(), rows[i].Speedup())
		}
	}
	// Pre-processing share shrinks.
	share := func(c DistributedCost) float64 { return (c.Step1 + c.Step2) / c.Makespan }
	if share(rows[2]) >= share(rows[0]) {
		t.Errorf("pre-processing share should shrink: %v then %v", share(rows[0]), share(rows[2]))
	}
}

func TestSimulateDistributedValidation(t *testing.T) {
	pl, _ := platform.Homogeneous(2, 1, 1)
	if _, err := SimulateDistributed(pl, 0, Config{}, dessim.ParallelLinks); err == nil {
		t.Error("n=0 should fail")
	}
}

func TestSimulateDistributedSingleWorker(t *testing.T) {
	pl, err := platform.Homogeneous(1, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	c, err := SimulateDistributed(pl, 4096, Config{}, dessim.ParallelLinks)
	if err != nil {
		t.Fatal(err)
	}
	// p=1: no routing, bucket = everything; speedup < 1 (pays shipping).
	if c.Step2 != 0 {
		t.Errorf("p=1 should have no routing, got %v", c.Step2)
	}
	if c.Speedup() >= 1 {
		t.Errorf("p=1 distributed sort cannot beat sequential: %v", c.Speedup())
	}
	if math.Abs(float64(c.BucketSizes[0])-4096) > 0 {
		t.Errorf("bucket = %v", c.BucketSizes)
	}
}
