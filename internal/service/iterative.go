package service

import (
	"context"
	"errors"
	"fmt"
	"math"
	"time"

	"nlfl/internal/iterative"
)

// ErrIterativeStalled marks an iterative job that exhausted MaxRounds
// with the residual still above tolerance.
var ErrIterativeStalled = errors.New("service: iterative job stalled")

// IterativeSpec describes a closed-loop iterative job: a power
// iteration whose rounds are ordinary fleet jobs, each round's split a
// measured-rate water-filling plan over whatever slice the fleet is
// willing to admit at that moment. The iterative client is deliberately
// a *tenant* of the fleet, not a scheduler bypass: every round pays
// admission control, queueing and per-round deadlines like anyone else.
type IterativeSpec struct {
	// Tenant is the accounting identity; "" means "default".
	Tenant string
	// N is the vector length; each round computes x·xᵀ (N×N).
	N int
	// X0 is the start vector (length N); nil selects
	// iterative.SeedVector(N, 0.9999).
	X0 []float64
	// MaxRounds bounds the iteration; 0 selects 64. Exhausting it with
	// the residual above Tol fails the job with ErrIterativeStalled.
	MaxRounds int
	// Tol is the L2 residual declaring convergence; 0 selects 1e-9.
	Tol float64
	// RoundDeadline, when positive, bounds each round's job from
	// submission (queueing included). A missed round is retried once —
	// drift may have invalidated the split — and counted in
	// DeadlineMisses; a second miss fails the iterative job.
	RoundDeadline time.Duration
	// MaxWorkers, when positive, caps each round's slice.
	MaxWorkers int
	// Estimator tunes the online rate estimator feeding the water-fill.
	Estimator iterative.EstimatorConfig
}

// IterativeReport is the finished (or failed) iterative job's ledger.
type IterativeReport struct {
	Tenant    string
	N         int
	Rounds    int
	Converged bool
	// Dominant is the converged dominant-entry index; FinalResidual the
	// last round's ‖xₜ₊₁ − xₜ‖₂.
	Dominant      int
	FinalResidual float64
	// TotalMakespan sums the rounds' measured service times;
	// TotalLatency their full submit-to-done latencies (queueing
	// included — the price of being a tenant).
	TotalMakespan float64
	TotalLatency  float64
	// Fallbacks counts rounds planned from the untrusted-estimator
	// fallback (prior rates); Reanchors drift re-anchor events;
	// DeadlineMisses rounds that blew RoundDeadline; RetriedRounds
	// rounds that needed a second submission.
	Fallbacks      int
	Reanchors      int
	DeadlineMisses int
	RetriedRounds  int
	// JobIDs lists the fleet job ids the rounds ran as, in order.
	JobIDs []int64
}

// IterativeHandle is the caller's view of a running iterative job.
type IterativeHandle struct {
	done   chan struct{}
	report *IterativeReport
	err    error
}

// Done returns a channel closed when the iterative job finishes.
func (h *IterativeHandle) Done() <-chan struct{} { return h.done }

// Wait blocks until the iterative job is terminal (or ctx expires) and
// returns its report; the report also accompanies a non-nil error,
// carrying the rounds that did run.
func (h *IterativeHandle) Wait(ctx context.Context) (*IterativeReport, error) {
	select {
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-h.done:
	}
	return h.report, h.err
}

// SubmitIterative starts a closed-loop iterative job on the fleet and
// returns immediately. Each round previews the current admissible slice,
// water-fills the round's load over the estimator's measured rates,
// submits the split as a "wf" job with the per-round deadline, and feeds
// the round's trace back into the estimator. The loop never bypasses
// admission control: a rejected or deadline-missed round is retried
// once, then the iterative job fails.
func SubmitIterative(f *Fleet, spec IterativeSpec) (*IterativeHandle, error) {
	if spec.N <= 0 {
		return nil, fmt.Errorf("service: iterative job size n=%d", spec.N)
	}
	if spec.X0 != nil && len(spec.X0) != spec.N {
		return nil, fmt.Errorf("service: iterative start vector sized %d for n=%d", len(spec.X0), spec.N)
	}
	if spec.Tenant == "" {
		spec.Tenant = "default"
	}
	if spec.MaxRounds <= 0 {
		spec.MaxRounds = 64
	}
	if spec.Tol <= 0 {
		spec.Tol = 1e-9
	}
	prior := make([]float64, len(f.speeds))
	for w, s := range f.speeds {
		prior[w] = s * f.rate
	}
	est, err := iterative.NewEstimator(spec.Estimator, prior)
	if err != nil {
		return nil, err
	}
	h := &IterativeHandle{done: make(chan struct{})}
	go func() {
		h.report, h.err = f.runIterative(spec, est, prior)
		close(h.done)
	}()
	return h, nil
}

// runIterative is the iterative client loop (one goroutine per job).
func (f *Fleet) runIterative(spec IterativeSpec, est *iterative.Estimator, prior []float64) (*IterativeReport, error) {
	rep := &IterativeReport{Tenant: spec.Tenant, N: spec.N}
	x := spec.X0
	if x == nil {
		x = iterative.SeedVector(spec.N, 0.9999)
	}
	x = append([]float64(nil), x...)
	normalizeL2(x)

	for round := 0; round < spec.MaxRounds; round++ {
		job, retried, err := f.runRound(spec, est, prior, x, rep)
		if retried {
			rep.RetriedRounds++
		}
		if err != nil {
			rep.Dominant = argmaxAbs(x)
			return rep, err
		}
		rep.Rounds++
		rep.JobIDs = append(rep.JobIDs, job.ID)
		rep.TotalMakespan += job.Makespan
		rep.TotalLatency += job.Latency
		est.ObserveRound(job.Trace)

		next := make([]float64, spec.N)
		for i := 0; i < spec.N; i++ {
			next[i] = job.Out.At(i, i)
		}
		normalizeL2(next)
		residual := 0.0
		for i := range next {
			d := next[i] - x[i]
			residual += d * d
		}
		rep.FinalResidual = math.Sqrt(residual)
		x = next
		if rep.FinalResidual <= spec.Tol {
			rep.Converged = true
			break
		}
	}
	rep.Reanchors = est.Reanchors()
	rep.Dominant = argmaxAbs(x)
	if !rep.Converged {
		return rep, fmt.Errorf("%w: residual %.3g after %d rounds (tol %.3g)",
			ErrIterativeStalled, rep.FinalResidual, rep.Rounds, spec.Tol)
	}
	return rep, nil
}

// runRound plans and runs one round as a fleet job, retrying once on a
// failed or deadline-missed round (the slice and split are recomputed —
// the failure may have been the stale plan's fault).
func (f *Fleet) runRound(spec IterativeSpec, est *iterative.Estimator, prior, x []float64, rep *IterativeReport) (*JobReport, bool, error) {
	var lastErr error
	for attempt := 0; attempt < 2; attempt++ {
		job, err := f.submitRound(spec, est, prior, x, rep)
		if err == nil {
			return job, attempt > 0, nil
		}
		if errors.Is(err, context.DeadlineExceeded) {
			rep.DeadlineMisses++
		}
		lastErr = err
	}
	return nil, true, fmt.Errorf("service: iterative round %d: %w", rep.Rounds, lastErr)
}

// submitRound runs a single round attempt end to end.
func (f *Fleet) submitRound(spec IterativeSpec, est *iterative.Estimator, prior, x []float64, rep *IterativeReport) (*JobReport, error) {
	preview := JobSpec{Tenant: spec.Tenant, N: spec.N, Strategy: "wf",
		Weights: []float64{1}, MaxWorkers: spec.MaxWorkers}
	slice := f.SliceFor(preview)
	if len(slice) == 0 {
		return nil, &AdmissionError{Reason: RejectNoHealthyWorker, Detail: "no healthy worker for iterative round"}
	}
	// Plan the split from measured rates when the estimator has seen
	// every slice worker; from the nominal prior otherwise (round 0, or
	// a worker newly back from quarantine).
	rates, comm := est.Rates(), est.CommSeconds()
	if !est.Trusted(slice) {
		rates, comm = prior, nil
		if rep.Rounds > 0 {
			rep.Fallbacks++
		}
	}
	unit := make([]float64, len(slice))
	c := make([]float64, len(slice))
	for i, w := range slice {
		if rates[w] <= 0 {
			return nil, fmt.Errorf("service: iterative round: worker %d rate %v", w, rates[w])
		}
		unit[i] = 1 / rates[w]
		if comm != nil {
			c[i] = comm[w]
		}
	}
	split, err := iterative.WaterFill(iterative.Params{
		Unit: unit, Comm: c, Load: float64(spec.N) * float64(spec.N),
	})
	if err != nil {
		return nil, fmt.Errorf("service: iterative round split: %w", err)
	}
	h, err := f.Submit(JobSpec{
		Tenant:     spec.Tenant,
		N:          spec.N,
		Strategy:   "wf",
		Weights:    split.Kappa,
		A:          x,
		B:          x,
		Deadline:   spec.RoundDeadline,
		MaxWorkers: spec.MaxWorkers,
	})
	if err != nil {
		return nil, err
	}
	job, err := h.Wait(f.ctx)
	if err != nil {
		// The round's trace still carries real measurements (and real
		// evidence of why it failed); feed the estimator before retrying.
		if job != nil {
			est.ObserveRound(job.Trace)
		}
		return nil, err
	}
	return job, nil
}

// normalizeL2 scales v to unit L2 norm in place (zero vectors unchanged).
func normalizeL2(v []float64) {
	s := 0.0
	for _, x := range v {
		s += x * x
	}
	if s == 0 {
		return
	}
	inv := 1 / math.Sqrt(s)
	for i := range v {
		v[i] *= inv
	}
}

// argmaxAbs returns the index of the largest-magnitude entry.
func argmaxAbs(v []float64) int {
	best, bi := math.Inf(-1), 0
	for i, x := range v {
		if a := math.Abs(x); a > best {
			best, bi = a, i
		}
	}
	return bi
}
