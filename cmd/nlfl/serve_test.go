package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"nlfl/internal/service"
)

// TestServeMux drives the HTTP façade end to end against a real fleet:
// submit, poll to completion, read the accounts and the health page, and
// watch admission shed when the queue is full.
func TestServeMux(t *testing.T) {
	fleet, err := service.New(service.Config{
		Speeds:        []float64{1, 2},
		WorkPerSecond: 5e5,
		MaxQueue:      2,
		TenantQuota:   2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fleet.Close()
	st := &serveState{fleet: fleet, jobs: map[int64]*service.JobHandle{}}
	ts := httptest.NewServer(newServeMux(st))
	defer ts.Close()

	post := func(body string) (*http.Response, map[string]int64) {
		t.Helper()
		resp, err := http.Post(ts.URL+"/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var out map[string]int64
		if resp.StatusCode == http.StatusAccepted {
			if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
				t.Fatal(err)
			}
		}
		resp.Body.Close()
		return resp, out
	}

	resp, ids := post(`{"tenant":"a","n":32,"strategy":"het","seed":1}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: got %d, want 202", resp.StatusCode)
	}
	id := ids["id"]

	var status jobStatus
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/jobs?id=" + jsonNum(id))
		if err != nil {
			t.Fatal(err)
		}
		if err := json.NewDecoder(resp.Body).Decode(&status); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if status.State != "running" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job did not finish in 10s")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if status.State != "done" || status.Err != "" {
		t.Fatalf("job state %q err %q, want done", status.State, status.Err)
	}
	if status.CommittedVolume != status.PlanVolume || status.PlanVolume <= 0 {
		t.Fatalf("fault-free ledger not exact: committed %v plan %v",
			status.CommittedVolume, status.PlanVolume)
	}

	// A bad spec is a 400, not an admission rejection.
	if resp, _ := post(`{"tenant":"a","n":-5}`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad spec: got %d, want 400", resp.StatusCode)
	}
	// Unknown ids are 404.
	if resp, err := http.Get(ts.URL + "/jobs?id=99999"); err != nil || resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown id: got %v %v, want 404", resp.StatusCode, err)
	}

	var acc service.FleetReport
	resp2, err := http.Get(ts.URL + "/accounts")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp2.Body).Decode(&acc); err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if acc.Completed < 1 || len(acc.Tenants) == 0 {
		t.Fatalf("accounts: completed %d tenants %d", acc.Completed, len(acc.Tenants))
	}

	resp3, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var hz struct {
		Workers int                   `json:"workers"`
		Health  []service.WorkerState `json:"health"`
	}
	if err := json.NewDecoder(resp3.Body).Decode(&hz); err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
	if hz.Workers != 2 || len(hz.Health) != 2 {
		t.Fatalf("healthz: workers %d health %d, want 2", hz.Workers, len(hz.Health))
	}
}

// TestServeAdmissionSheds fills the bounded queue with slow jobs and
// checks the façade answers 429, the backpressure contract.
func TestServeAdmissionSheds(t *testing.T) {
	fleet, err := service.New(service.Config{
		Speeds:        []float64{1},
		WorkPerSecond: 2e3, // slow on purpose: jobs stay in-flight
		MaxQueue:      2,
		TenantQuota:   2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fleet.Close()
	st := &serveState{fleet: fleet, jobs: map[int64]*service.JobHandle{}}
	ts := httptest.NewServer(newServeMux(st))
	defer ts.Close()

	codes := make([]int, 0, 3)
	var last rejectBody
	var lastRetryAfter string
	for i := 0; i < 3; i++ {
		resp, err := http.Post(ts.URL+"/jobs", "application/json",
			strings.NewReader(`{"tenant":"flood","n":48}`))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode == http.StatusTooManyRequests {
			if err := json.NewDecoder(resp.Body).Decode(&last); err != nil {
				t.Fatalf("429 body is not JSON: %v", err)
			}
			lastRetryAfter = resp.Header.Get("Retry-After")
		}
		resp.Body.Close()
		codes = append(codes, resp.StatusCode)
	}
	if codes[0] != http.StatusAccepted || codes[1] != http.StatusAccepted {
		t.Fatalf("first two submits: got %v, want 202s", codes)
	}
	if codes[2] != http.StatusTooManyRequests {
		t.Fatalf("third submit: got %d, want 429", codes[2])
	}
	// The regression this pins: a 429 must say *why* — quota pressure and
	// fleet overload call for different client reactions.
	if last.Reason != string(service.RejectQueueFull) {
		t.Fatalf("429 reason %q, want %q (body %+v)", last.Reason, service.RejectQueueFull, last)
	}
	if last.Detail == "" || last.Error == "" {
		t.Fatalf("429 body missing detail or error: %+v", last)
	}
	// Backpressure regression: every 429 carries a Retry-After hint
	// derived from queue depth (depth 2 → 1 + 2/4 = 1 second).
	if lastRetryAfter != "1" {
		t.Fatalf("429 Retry-After = %q, want %q for queue depth 2", lastRetryAfter, "1")
	}
}

// TestRetryAfterScalesWithQueueDepth pins the header's scaling: one
// extra second per four queued jobs, capped at 30.
func TestRetryAfterScalesWithQueueDepth(t *testing.T) {
	cases := []struct {
		depth int
		want  string
	}{
		{0, "1"}, {2, "1"}, {4, "2"}, {16, "5"}, {1000, "30"},
	}
	for _, c := range cases {
		if got := retryAfter(c.depth); got != c.want {
			t.Errorf("retryAfter(%d) = %q, want %q", c.depth, got, c.want)
		}
	}
}

// rejectBody is the JSON shape of a 429 from POST /jobs.
type rejectBody struct {
	Error  string `json:"error"`
	Reason string `json:"reason"`
	Detail string `json:"detail"`
}

// TestServeRejectReasons drives the façade over a fleet with a
// per-tenant quota and an autoscaler: the three 429 flavors a client
// can hit (tenant-quota, queue-full, amdahl-cap) each carry their own
// machine-readable reason.
func TestServeRejectReasons(t *testing.T) {
	fleet, err := service.New(service.Config{
		Speeds:         []float64{1, 2, 3, 4},
		WorkPerSecond:  3e4,
		MaxQueue:       8,
		TenantQuota:    1,
		AutoscaleTheta: 0.05,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fleet.Close()
	st := &serveState{fleet: fleet, jobs: map[int64]*service.JobHandle{}}
	ts := httptest.NewServer(newServeMux(st))
	defer ts.Close()

	reject := func(body string) rejectBody {
		t.Helper()
		resp, err := http.Post(ts.URL+"/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusTooManyRequests {
			t.Fatalf("got %d, want 429", resp.StatusCode)
		}
		var rb rejectBody
		if err := json.NewDecoder(resp.Body).Decode(&rb); err != nil {
			t.Fatal(err)
		}
		return rb
	}

	// An impossible deadline is shed by the capacity model at the door.
	if rb := reject(`{"tenant":"rush","n":96,"deadlineMs":1}`); rb.Reason != string(service.RejectAmdahlCap) {
		t.Errorf("amdahl-cap rejection carried reason %q (body %+v)", rb.Reason, rb)
	}
	// Fill tenant "flood"'s quota of one, then hit the quota reason.
	resp, err := http.Post(ts.URL+"/jobs", "application/json",
		strings.NewReader(`{"tenant":"flood","n":96}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first flood submit: got %d, want 202", resp.StatusCode)
	}
	if rb := reject(`{"tenant":"flood","n":96}`); rb.Reason != string(service.RejectTenantQuota) {
		t.Errorf("quota rejection carried reason %q (body %+v)", rb.Reason, rb)
	}
}

func jsonNum(id int64) string {
	b, _ := json.Marshal(id)
	return string(b)
}
