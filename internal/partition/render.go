package partition

import (
	"fmt"
	"strings"
)

// glyphs label rectangles in ASCII renderings (cycled when p > len).
const glyphs = "0123456789abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ"

// ASCII renders the partition as a width×height character grid, each cell
// showing the glyph of the rectangle owning its center — the executable
// counterpart of the paper's Figure 2 footprint schematics.
func (p *Partition) ASCII(width, height int) string {
	if width <= 0 {
		width = 48
	}
	if height <= 0 {
		height = 16
	}
	var b strings.Builder
	b.WriteString("+" + strings.Repeat("-", width) + "+\n")
	for row := 0; row < height; row++ {
		b.WriteByte('|')
		// Render top row of the drawing as the top of the unit square
		// (y close to 1).
		y := 1 - (float64(row)+0.5)/float64(height)
		for col := 0; col < width; col++ {
			x := (float64(col) + 0.5) / float64(width)
			g := byte('?')
			for _, r := range p.Rects {
				if x >= r.X && x <= r.X+r.W && y >= r.Y && y <= r.Y+r.H {
					g = glyphs[r.Index%len(glyphs)]
					break
				}
			}
			b.WriteByte(g)
		}
		b.WriteString("|\n")
	}
	b.WriteString("+" + strings.Repeat("-", width) + "+\n")
	for _, r := range p.Rects {
		fmt.Fprintf(&b, "  %c: worker %d  area=%.4f  half-perimeter=%.4f\n",
			glyphs[r.Index%len(glyphs)], r.Index+1, r.Area(), r.HalfPerimeter())
	}
	return b.String()
}
