package bench

import (
	"context"
	"errors"
	"testing"

	"nlfl/internal/results"
	"nlfl/internal/service"
)

func TestRunQuickEndToEnd(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Seed: 42, Quick: true}
	paths, err := Run(context.Background(), cfg, dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateFiles(dir); err != nil {
		t.Fatalf("emitted artifacts fail their own schema gate: %v", err)
	}
	kf, err := results.LoadBenchKernels(paths.Kernels)
	if err != nil {
		t.Fatal(err)
	}
	if kf.Seed != 42 || !kf.Quick {
		t.Errorf("kernel file misstamped: seed %d quick %v", kf.Seed, kf.Quick)
	}
	rf, err := results.LoadBenchRuntime(paths.Runtime)
	if err != nil {
		t.Fatal(err)
	}
	// Quick config: 2 platforms × 3 strategies.
	if len(rf.Entries) != 6 {
		t.Fatalf("runtime file has %d entries, want 6", len(rf.Entries))
	}
	for _, e := range rf.Entries {
		if e.Violations != 0 {
			t.Errorf("%s/%s: %d invariant violations in a passing run", e.Platform, e.Strategy, e.Violations)
		}
	}

	lf, err := results.LoadBenchLink(paths.Link)
	if err != nil {
		t.Fatal(err)
	}
	// Quick config: 1 platform × 2 bandwidths × 3 strategies.
	if len(lf.Entries) != 6 {
		t.Fatalf("link file has %d entries, want 6", len(lf.Entries))
	}
	minBW := lf.Entries[0].Bandwidth
	makespans := map[string]float64{}
	for _, e := range lf.Entries {
		if e.Violations != 0 {
			t.Errorf("%s/%s bw=%g: %d invariant violations in a passing run",
				e.Platform, e.Strategy, e.Bandwidth, e.Violations)
		}
		if e.Bandwidth < minBW {
			minBW = e.Bandwidth
		}
	}
	for _, e := range lf.Entries {
		if e.Bandwidth == minBW {
			makespans[e.Strategy] = e.Makespan
		}
	}
	// The headline claim: under the constrained link the lower-volume het
	// plan finishes first on the heterogeneous platform.
	if het, hom := makespans["het"], makespans["hom"]; het <= 0 || hom <= 0 || het >= hom {
		t.Errorf("constrained-bandwidth makespans het=%v hom=%v, want het < hom", het, hom)
	}

	cf, err := results.LoadBenchChaos(paths.Chaos)
	if err != nil {
		t.Fatal(err)
	}
	// Quick config: 1 platform × 4 fault classes.
	if len(cf.Entries) != 4 {
		t.Fatalf("chaos file has %d entries, want 4", len(cf.Entries))
	}
	classes := map[string]bool{}
	for _, e := range cf.Entries {
		classes[e.Class] = true
		if e.Violations != 0 {
			t.Errorf("chaos %s/%s: %d invariant violations in a passing run", e.Platform, e.Class, e.Violations)
		}
		if e.CommittedVolume != e.ReplannedVolume {
			t.Errorf("chaos %s/%s: committed %v ≠ re-planned %v — the executor's ledger is exact",
				e.Platform, e.Class, e.CommittedVolume, e.ReplannedVolume)
		}
	}
	for _, want := range []string{"crash", "crash-t0", "straggler", "flaky-link"} {
		if !classes[want] {
			t.Errorf("chaos sweep missing fault class %q", want)
		}
	}

	sf, err := results.LoadBenchService(paths.Service)
	if err != nil {
		t.Fatal(err)
	}
	// Quick config: 3 policies × 2 loads + 1 chaos entry + 1 autoscale entry.
	if len(sf.Entries) != 8 {
		t.Fatalf("service file has %d entries, want 8", len(sf.Entries))
	}
	sawAutoscale := false
	for _, e := range sf.Entries {
		if e.Violations != 0 {
			t.Errorf("service %s load=%.2f: %d invariant violations in a passing run",
				e.Policy, e.LoadFactor, e.Violations)
		}
		if e.Autoscale {
			sawAutoscale = true
			if e.SliceOverKnee != 0 {
				t.Errorf("autoscale entry sized %d jobs past the knee", e.SliceOverKnee)
			}
			if len(e.Knees) == 0 {
				t.Error("autoscale entry recorded no knees")
			}
		}
	}
	if !sawAutoscale {
		t.Error("no autoscale entry in the quick service sweep")
	}

	tf, err := results.LoadBenchTopology(paths.Topology)
	if err != nil {
		t.Fatal(err)
	}
	// Quick config: 3 topologies × 2 bandwidths × 2 strategies.
	if len(tf.Entries) != 12 {
		t.Fatalf("topology file has %d entries, want 12", len(tf.Entries))
	}
	for _, e := range tf.Entries {
		if e.Violations != 0 {
			t.Errorf("topology %s/%s bw=%g: %d invariant violations in a passing run",
				e.Topology, e.Strategy, e.Bandwidth, e.Violations)
		}
	}
	// The crossover-shift headline: het wins somewhere on the star, never
	// on the hop-limited chain.
	if tf.Crossovers["star"] <= 0 {
		t.Errorf("no star crossover recorded: %v", tf.Crossovers)
	}
	if tf.Crossovers["chain"] != 0 {
		t.Errorf("chain crossover recorded at bw=%v", tf.Crossovers["chain"])
	}

	capf, err := results.LoadBenchCapacity(paths.Capacity)
	if err != nil {
		t.Fatal(err)
	}
	// One entry per slice size of the 8-worker envelope, knee interior.
	if len(capf.Entries) != len(capf.Speeds) {
		t.Fatalf("capacity file has %d entries for %d speeds", len(capf.Entries), len(capf.Speeds))
	}
	if capf.Knee < 1 || capf.Knee >= len(capf.Speeds) {
		t.Errorf("capacity knee %d not interior of [1, %d)", capf.Knee, len(capf.Speeds))
	}
}

// TestRuntimeVolumesDeterministic regenerates the runtime sweep and checks
// that the deterministic half of the record — geometry and communication
// volumes — is identical across runs, while timings are free to differ.
func TestRuntimeVolumesDeterministic(t *testing.T) {
	cfg := Config{Seed: 7, Quick: true}
	f1, err := RunRuntime(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	f2, err := RunRuntime(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(f1.Entries) != len(f2.Entries) {
		t.Fatalf("entry counts differ: %d vs %d", len(f1.Entries), len(f2.Entries))
	}
	for i := range f1.Entries {
		a, b := f1.Entries[i], f2.Entries[i]
		if a.MeasuredVolume != b.MeasuredVolume || a.PredictedVolume != b.PredictedVolume ||
			a.Grid != b.Grid || a.K != b.K || a.Chunks != b.Chunks {
			t.Errorf("entry %d (%s/%s) not deterministic: %+v vs %+v", i, a.Platform, a.Strategy, a, b)
		}
	}
}

func TestValidateRejectsBrokenFiles(t *testing.T) {
	kf := results.KernelBenchFile{Schema: "wrong"}
	if err := ValidateKernels(kf); !errors.Is(err, ErrInvalidBench) {
		t.Errorf("wrong schema accepted: %v", err)
	}
	kf.Schema = results.BenchKernelsSchema
	if err := ValidateKernels(kf); !errors.Is(err, ErrInvalidBench) {
		t.Errorf("empty entry list accepted: %v", err)
	}

	good := results.RuntimeBenchEntry{
		Platform: "p", Strategy: "hom", N: 8, Workers: 1, Chunks: 1,
		Speeds:         []float64{1},
		MeasuredVolume: 16, PredictedVolume: 16, RelError: 0,
		BytesMoved: 128, Makespan: 0.1, CellsPerSec: 640, Utilization: 0.5,
	}
	base := results.RuntimeBenchFile{
		Schema: results.BenchRuntimeSchema, WorkPerSecond: 1e6,
		Entries: []results.RuntimeBenchEntry{good},
	}
	if err := ValidateRuntime(base); err != nil {
		t.Fatalf("well-formed file rejected: %v", err)
	}
	for name, mutate := range map[string]func(*results.RuntimeBenchEntry){
		"zero-throughput":  func(e *results.RuntimeBenchEntry) { e.CellsPerSec = 0 },
		"nan-volume":       func(e *results.RuntimeBenchEntry) { e.MeasuredVolume = nan() },
		"1%-gate":          func(e *results.RuntimeBenchEntry) { e.RelError = 0.02 },
		"violations":       func(e *results.RuntimeBenchEntry) { e.Violations = 3 },
		"zero-volume":      func(e *results.RuntimeBenchEntry) { e.MeasuredVolume = 0 },
		"missing-identity": func(e *results.RuntimeBenchEntry) { e.Strategy = "" },
	} {
		f := base
		e := good
		mutate(&e)
		f.Entries = []results.RuntimeBenchEntry{e}
		if err := ValidateRuntime(f); !errors.Is(err, ErrInvalidBench) {
			t.Errorf("%s: broken entry accepted: %v", name, err)
		}
	}

	goodLink := func(strategy string, makespan float64) results.LinkBenchEntry {
		return results.LinkBenchEntry{
			Platform: "p", Speeds: []float64{1, 3}, Strategy: strategy, N: 8,
			Bandwidth: 1e4, MeasuredVolume: 32, PredictedVolume: 32,
			Makespan: makespan, CommTime: makespan / 2, OverlapFraction: 0.4,
			LinkUtilization: []float64{0.5, 0.5},
		}
	}
	linkBase := results.LinkBenchFile{
		Schema: results.BenchLinkSchema, WorkPerSecond: 1e6,
		Entries: []results.LinkBenchEntry{goodLink("hom", 0.2), goodLink("het", 0.1)},
	}
	if err := ValidateLink(linkBase); err != nil {
		t.Fatalf("well-formed link file rejected: %v", err)
	}
	for name, mutate := range map[string]func(*results.LinkBenchFile){
		"wrong-schema":    func(f *results.LinkBenchFile) { f.Schema = "wrong" },
		"no-entries":      func(f *results.LinkBenchFile) { f.Entries = nil },
		"zero-bandwidth":  func(f *results.LinkBenchFile) { f.Entries[0].Bandwidth = 0 },
		"overlap-above-1": func(f *results.LinkBenchFile) { f.Entries[0].OverlapFraction = 1.5 },
		"util-above-1":    func(f *results.LinkBenchFile) { f.Entries[0].LinkUtilization[0] = 2 },
		"violations":      func(f *results.LinkBenchFile) { f.Entries[0].Violations = 1 },
		"het-not-faster":  func(f *results.LinkBenchFile) { f.Entries[1].Makespan = 0.3 },
	} {
		f := linkBase
		f.Entries = []results.LinkBenchEntry{goodLink("hom", 0.2), goodLink("het", 0.1)}
		mutate(&f)
		if err := ValidateLink(f); !errors.Is(err, ErrInvalidBench) {
			t.Errorf("link %s: broken file accepted: %v", name, err)
		}
	}

	goodChaos := results.ChaosBenchEntry{
		Class: "crash", Platform: "p", Speeds: []float64{1, 3}, Strategy: "het",
		N: 8, Workers: 2, Chunks: 2,
		PlanVolume: 32, ReplannedVolume: 40, CommittedVolume: 40,
		MeasuredVolume: 48, WastedData: 8, Makespan: 0.1,
		DegradedWorkers: 1, ReclaimedCells: 16,
	}
	chaosBase := results.ChaosBenchFile{
		Schema: results.BenchChaosSchema, WorkPerSecond: 2e4,
		Entries: []results.ChaosBenchEntry{goodChaos},
	}
	if err := ValidateChaos(chaosBase); err != nil {
		t.Fatalf("well-formed chaos file rejected: %v", err)
	}
	for name, mutate := range map[string]func(*results.ChaosBenchEntry){
		"wrong-class":     func(e *results.ChaosBenchEntry) { e.Class = "gremlins" },
		"replan-shrank":   func(e *results.ChaosBenchEntry) { e.ReplannedVolume = 30 },
		"5%-volume-gate":  func(e *results.ChaosBenchEntry) { e.CommittedVolume = 36 },
		"leaky-ledger":    func(e *results.ChaosBenchEntry) { e.WastedData = 4 },
		"waste-thrash":    func(e *results.ChaosBenchEntry) { e.WastedData = 48; e.MeasuredVolume = 88 },
		"nan-makespan":    func(e *results.ChaosBenchEntry) { e.Makespan = nan() },
		"zero-makespan":   func(e *results.ChaosBenchEntry) { e.Makespan = 0 },
		"crash-no-trace":  func(e *results.ChaosBenchEntry) { e.DegradedWorkers = 0 },
		"no-spec-win":     func(e *results.ChaosBenchEntry) { e.Class = "straggler" },
		"no-retry":        func(e *results.ChaosBenchEntry) { e.Class = "flaky-link" },
		"violations":      func(e *results.ChaosBenchEntry) { e.Violations = 2 },
		"missing-class":   func(e *results.ChaosBenchEntry) { e.Class = "" },
		"speeds-mismatch": func(e *results.ChaosBenchEntry) { e.Speeds = []float64{1} },
	} {
		f := chaosBase
		e := goodChaos
		mutate(&e)
		f.Entries = []results.ChaosBenchEntry{e}
		if err := ValidateChaos(f); !errors.Is(err, ErrInvalidBench) {
			t.Errorf("chaos %s: broken entry accepted: %v", name, err)
		}
	}

	goodService := func(policy string, chaos bool, p99 float64) results.ServiceBenchEntry {
		e := results.ServiceBenchEntry{
			Policy: policy, LoadFactor: 0.9, LambdaJobsPerSec: 50, Chaos: chaos,
			Jobs: 10, Admitted: 10, Completed: 10,
			Makespan: 1, ThroughputJobsPerSec: 10,
			LatencyP50: p99 / 2, LatencyP99: p99, LatencyMean: p99 / 2, LatencyMax: p99,
			MaxSliceWorkers: 2, MeanSliceWorkers: 2, MeanShippedPerJob: 40,
			Tenants: []results.ServiceTenantStat{
				{Tenant: "tenant-a", Submitted: 10, Admitted: 10, Completed: 10, PlanVolume: 100, CommittedVolume: 100},
			},
		}
		if chaos {
			e.Tenants = append(e.Tenants, results.ServiceTenantStat{
				Tenant: serviceChaosTenant, Submitted: 5, Admitted: 5, Completed: 5,
				PlanVolume: 50, ReplannedVolume: 10, CommittedVolume: 60, WastedData: 4, ReclaimedCells: 16,
			})
		}
		return e
	}
	serviceEntries := func() []results.ServiceBenchEntry {
		auto := goodService("srpt", false, 0.1)
		auto.Autoscale = true
		auto.AutoscaleTheta = 0.05
		auto.Knees = map[string]int{"8": 1}
		auto.MaxSliceWorkers, auto.MeanSliceWorkers = 1, 1
		auto.MeanShippedPerJob = 30
		return []results.ServiceBenchEntry{
			goodService("fifo", false, 0.4),
			goodService("srpt", false, 0.1),
			goodService("ii", false, 0.2),
			goodService("srpt", true, 0.1),
			auto,
		}
	}
	serviceBase := results.ServiceBenchFile{
		Schema: results.BenchServiceSchema, WorkPerSecond: 3e4, Speeds: []float64{1, 2},
		Entries: serviceEntries(),
	}
	if err := ValidateService(serviceBase); err != nil {
		t.Fatalf("well-formed service file rejected: %v", err)
	}
	for name, mutate := range map[string]func(*results.ServiceBenchFile){
		"wrong-schema":   func(f *results.ServiceBenchFile) { f.Schema = "wrong" },
		"no-entries":     func(f *results.ServiceBenchFile) { f.Entries = nil },
		"nan-p99":        func(f *results.ServiceBenchFile) { f.Entries[0].LatencyP99 = nan() },
		"quantile-order": func(f *results.ServiceBenchFile) { f.Entries[0].LatencyP50 = 1 },
		"admission-math": func(f *results.ServiceBenchFile) { f.Entries[0].Rejected = 3 },
		"lost-jobs":      func(f *results.ServiceBenchFile) { f.Entries[0].Completed = 9 },
		"violations":     func(f *results.ServiceBenchFile) { f.Entries[0].Violations = 1 },
		"srpt-loses":     func(f *results.ServiceBenchFile) { f.Entries[1].LatencyP99 = 0.5 },
		"ii-loses":       func(f *results.ServiceBenchFile) { f.Entries[2].LatencyP99 = 0.5 },
		"no-chaos-entry": func(f *results.ServiceBenchFile) { f.Entries = f.Entries[:3] },
		"chaos-did-not-bite": func(f *results.ServiceBenchFile) {
			f.Entries[3].Tenants[1].ReclaimedCells = 0
		},
		"bystander-dirtied": func(f *results.ServiceBenchFile) {
			f.Entries[3].Tenants[0].WastedData = 8
		},
		"bystander-inexact": func(f *results.ServiceBenchFile) {
			f.Entries[3].Tenants[0].CommittedVolume = 90
		},
		"no-autoscale-entry": func(f *results.ServiceBenchFile) { f.Entries = f.Entries[:4] },
		"zero-slice-stats":   func(f *results.ServiceBenchFile) { f.Entries[0].MaxSliceWorkers = 0 },
		"slice-over-knee":    func(f *results.ServiceBenchFile) { f.Entries[4].SliceOverKnee = 2 },
		"knee-out-of-range": func(f *results.ServiceBenchFile) {
			f.Entries[4].Knees = map[string]int{"8": 3}
		},
		"slice-exceeds-knee": func(f *results.ServiceBenchFile) {
			f.Entries[4].MaxSliceWorkers = 2
		},
		"autoscaler-no-dividend": func(f *results.ServiceBenchFile) {
			f.Entries[4].MeanShippedPerJob = 40
		},
	} {
		f := serviceBase
		f.Entries = serviceEntries()
		mutate(&f)
		if err := ValidateService(f); !errors.Is(err, ErrInvalidBench) {
			t.Errorf("service %s: broken file accepted: %v", name, err)
		}
	}
}

// TestSweepsHonorCancelledContext pins satellite behavior for the CLI's
// SIGINT handling: every sweep returns promptly with the ctx error
// instead of grinding through its grid.
func TestSweepsHonorCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cfg := Config{Seed: 1, Quick: true}
	if _, err := RunKernels(ctx, cfg); !errors.Is(err, context.Canceled) {
		t.Errorf("RunKernels under cancelled ctx: %v", err)
	}
	if _, err := RunRuntime(ctx, cfg); !errors.Is(err, context.Canceled) {
		t.Errorf("RunRuntime under cancelled ctx: %v", err)
	}
	if _, err := RunLinkSweep(ctx, cfg); !errors.Is(err, context.Canceled) {
		t.Errorf("RunLinkSweep under cancelled ctx: %v", err)
	}
	if _, err := RunChaosSweep(ctx, cfg); !errors.Is(err, context.Canceled) {
		t.Errorf("RunChaosSweep under cancelled ctx: %v", err)
	}
	if _, err := RunServiceSweep(ctx, cfg); !errors.Is(err, context.Canceled) {
		t.Errorf("RunServiceSweep under cancelled ctx: %v", err)
	}
	if _, err := RunTopologySweep(ctx, cfg); !errors.Is(err, context.Canceled) {
		t.Errorf("RunTopologySweep under cancelled ctx: %v", err)
	}
	if _, err := RunCapacitySweep(ctx, cfg); !errors.Is(err, context.Canceled) {
		t.Errorf("RunCapacitySweep under cancelled ctx: %v", err)
	}
	if _, err := Run(ctx, cfg, t.TempDir()); !errors.Is(err, context.Canceled) {
		t.Errorf("Run under cancelled ctx: %v", err)
	}
}

// TestServiceChaosSmoke is the CI race-detector smoke: a short Poisson
// stream through the fleet where one tenant's jobs carry a crash
// scenario. It asserts the chaos bit, the isolation of the bystander
// tenants, and a clean trace audit — the service sweep's contract at a
// fraction of its runtime.
func TestServiceChaosSmoke(t *testing.T) {
	load := 0.6
	lambda := load * serviceFleetCapacity() / serviceMeanCells()
	entry, err := runServiceEntry(context.Background(), 42, service.PolicySRPT, load, lambda, 24, true, 0)
	if err != nil {
		t.Fatal(err)
	}
	if entry.Completed+entry.Failed != entry.Admitted {
		t.Fatalf("lost jobs: completed %d + failed %d ≠ admitted %d",
			entry.Completed, entry.Failed, entry.Admitted)
	}
	if entry.Violations != 0 {
		t.Fatalf("%d trace violations", entry.Violations)
	}
	var sawChaosTenant bool
	for _, ta := range entry.Tenants {
		if ta.Tenant == serviceChaosTenant {
			sawChaosTenant = true
			if ta.ReclaimedCells <= 0 || ta.ReplannedVolume <= 0 {
				t.Errorf("chaos left no trace on tenant %q (reclaimed %v, replanned %v)",
					ta.Tenant, ta.ReclaimedCells, ta.ReplannedVolume)
			}
			continue
		}
		if ta.WastedData != 0 || ta.ReclaimedCells != 0 || ta.Failed != 0 {
			t.Errorf("bystander %s dirtied: waste %v reclaimed %v failed %d",
				ta.Tenant, ta.WastedData, ta.ReclaimedCells, ta.Failed)
		}
		if ta.CommittedVolume != ta.PlanVolume {
			t.Errorf("bystander %s ledger inexact: committed %v ≠ planned %v",
				ta.Tenant, ta.CommittedVolume, ta.PlanVolume)
		}
	}
	if !sawChaosTenant {
		t.Fatal("no chaos tenant in the breakdown")
	}
}

func nan() float64 {
	zero := 0.0
	return zero / zero
}
