package capacity

import (
	"math"
	"testing"

	"nlfl/internal/stats"
)

// randomModel draws a plausible planning question: 2–12 workers with
// speeds in [1, 10), α in [1.2, 3), N in [32, 160), and a link that is
// sometimes unconstrained, sometimes the bottleneck.
func randomModel(r *stats.RNG) Model {
	p := 2 + int(r.Float64()*11)
	speeds := make([]float64, p)
	for i := range speeds {
		speeds[i] = 1 + r.Float64()*9
	}
	m := Model{
		Alpha:         1.2 + r.Float64()*1.8,
		N:             32 + int(r.Float64()*128),
		Speeds:        speeds,
		WorkPerSecond: 1e4 + r.Float64()*1e6,
	}
	if r.Float64() < 0.75 {
		m.Bandwidth = 1e3 + r.Float64()*1e6
	}
	return m
}

// TestSpeedupPropertySweep is the model's property gate over 200 random
// fleets: the achievable speedup S*(P) = max_{p≤P} S(p) is monotone
// non-decreasing in the worker budget, never exceeds the closed-form
// ceiling, and saturates — once the raw curve's argmax is inside the
// budget, a larger budget buys nothing more (the α>1 no-free-lunch
// plateau).
func TestSpeedupPropertySweep(t *testing.T) {
	r := stats.NewRNG(42)
	for trial := 0; trial < 200; trial++ {
		m := randomModel(r)
		curve, err := m.Curve()
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		bound, err := m.SpeedupBound()
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		best := 1
		for p := 2; p <= len(curve); p++ {
			if curve[p-1].Speedup > curve[best-1].Speedup {
				best = p
			}
		}
		prev := 0.0
		for budget := 1; budget <= len(curve); budget++ {
			s := AchievableSpeedup(curve, budget)
			if s < prev-1e-12 {
				t.Fatalf("trial %d (%+v): achievable speedup decreased at budget %d: %v < %v",
					trial, m, budget, s, prev)
			}
			if s > bound*(1+1e-9) {
				t.Fatalf("trial %d (%+v): speedup %v exceeds closed-form bound %v at budget %d",
					trial, m, s, bound, budget)
			}
			if budget >= best {
				sat := AchievableSpeedup(curve, len(curve))
				if math.Abs(s-sat) > 1e-12 {
					t.Fatalf("trial %d: budget %d past argmax %d not saturated: %v vs %v",
						trial, budget, best, s, sat)
				}
			}
			prev = s
		}
		// The per-worker unprocessed-if-chunked fraction is itself monotone
		// in p and approaches 1 for α>1 — the Section 2 law the model
		// exists to route around.
		for p := 2; p <= len(curve); p++ {
			if curve[p-1].UnprocessedIfChunked < curve[p-2].UnprocessedIfChunked {
				t.Fatalf("trial %d: unprocessed fraction not monotone at p=%d", trial, p)
			}
		}
	}
}

// TestKneeIsConsistentAcrossTheta checks a dominance property: a
// stricter threshold can only recommend fewer workers.
func TestKneeIsConsistentAcrossTheta(t *testing.T) {
	r := stats.NewRNG(7)
	for trial := 0; trial < 100; trial++ {
		m := randomModel(r)
		prevKnee := len(m.Speeds) + 1
		for _, theta := range []float64{0.01, 0.05, 0.1, 0.25} {
			rec, err := m.Recommend(theta)
			if err != nil {
				t.Fatalf("trial %d theta %v: %v", trial, theta, err)
			}
			if rec.Knee < 1 || rec.Knee > len(m.Speeds) {
				t.Fatalf("trial %d: knee %d outside [1, %d]", trial, rec.Knee, len(m.Speeds))
			}
			if rec.Knee > prevKnee {
				t.Fatalf("trial %d: knee grew from %d to %d as theta tightened to %v",
					trial, prevKnee, rec.Knee, theta)
			}
			prevKnee = rec.Knee
		}
	}
}
