package tree_test

import (
	"fmt"

	"nlfl/internal/tree"
)

// A two-level tree collapses into equivalent processors: the root's
// capacity fixes the optimal makespan.
func ExampleAllocate() {
	relay := &tree.Node{Speed: 1, Bandwidth: 1, Children: []*tree.Node{
		{Speed: 1, Bandwidth: 1},
		{Speed: 1, Bandwidth: 1},
	}}
	root := &tree.Node{Speed: 1, Children: []*tree.Node{relay}}
	alloc, _ := tree.Allocate(root, 100)
	fmt.Printf("makespan %.1f, total %.0f\n", alloc.Makespan, alloc.TotalLoad())
	// Output: makespan 60.0, total 100
}
