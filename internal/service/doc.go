// Package service is the multi-tenant fleet layer: a long-lived worker
// pool that admits a *stream* of outer-product jobs from many tenants
// and runs them concurrently over shared token buckets and one shared
// one-port master link — the production shape of the paper's platform,
// where `runtime.Run`'s one-job-at-a-time pool becomes a service.
//
// Robustness is the organizing principle:
//
//   - Admission control: the queue of unfinished jobs is bounded
//     fleet-wide and per tenant; overload sheds new work with a typed
//     rejection instead of queueing without bound. Every rejection is
//     an *AdmissionError carrying a machine-readable RejectReason
//     (quota pressure, fleet overload, drain, no healthy worker, or
//     the capacity model's amdahl-cap verdict) and unwrapping to
//     ErrAdmissionRejected, so errors.Is keeps working while errors.As
//     recovers the cause. Each job is admitted with only the fleet
//     slice it can actually use (an Amdahl-style cap — workers beyond
//     N²/MinCellsPerWorker would cost communication without buying
//     compute, the no-free-lunch knee).
//   - Capacity-model autoscaling: with Config.AutoscaleTheta > 0, the
//     fleet additionally caps each job's slice at the capacity
//     planner's speedup knee for its size over the healthy workers
//     (capacity.Model.Recommend), records the knee prediction on the
//     JobReport (Autoscaled, PredictedMakespan), and sheds jobs whose
//     deadline even the knee-sized slice cannot meet with
//     RejectAmdahlCap — if the knee can't make it, no admissible slice
//     can. See docs/CAPACITY.md for the operator guide.
//   - Isolation: faults are scoped to the job that carries them. A
//     chaos-crashed worker dies *for that job only* — its leases and
//     backlog are reclaimed and re-planned onto the job's surviving
//     workers (PERI-SUM, as in the single-run chaos queue) while the
//     same worker keeps serving every other job. Per-tenant fair-share
//     ordering keeps one tenant's flood from starving the rest, and the
//     bounded per-tenant quota keeps the flood from occupying the queue.
//   - Deadlines and cancellation: every job carries a context; deadline
//     expiry or cancellation reclaims its leases promptly and cleanly —
//     in-flight chunks of a dead job commit to nowhere (accounted as
//     waste) and never poison another job's ledger.
//   - Health: workers that keep dying inside jobs accumulate strikes and
//     are quarantined — excluded from new jobs' slices — then readmitted
//     after a probation of completed jobs.
//   - Graceful degradation: Drain stops admission and finishes (or
//     cleanly fails) the in-flight jobs; Close always leaves every
//     waiter answered.
//
// Scheduling policies (see Policy): naive FIFO (job-exclusive, the
// provably bad baseline of Gallet–Robert–Vivien's multi-load analysis),
// an SRPT-like shortest-remaining-first with anti-starvation aging, and
// interleaved installments (least-attained-service round-robin, the
// multi-installment fix from the same line of work). Both non-FIFO
// policies order tenants by attained service first — the fair-share
// guarantee — and jobs within the tenant by the policy key.
package service
