package service

import (
	"context"
	"errors"
	"fmt"
	"math"
	"time"

	"nlfl/internal/faults"
	"nlfl/internal/matmul"
	nrt "nlfl/internal/runtime"
	"nlfl/internal/trace"
)

// ChaosSpec scopes a fault scenario to one job. Worker indices in the
// scenario are *fleet* worker ids; event times are seconds relative to
// the job's start (its first chunk handout). The faults run only inside
// the job: a crashed worker is dead for this job — its leases and owned
// backlog are reclaimed and re-planned over the job's surviving slice —
// while the same worker keeps serving every other job untouched.
type ChaosSpec struct {
	// Scenario is the job-scoped fault timeline.
	Scenario faults.Scenario
	// MaxRetries is the per-chunk-lineage recovery budget (transfer
	// re-attempts after drops, lineage reclaims after crashes); a chunk
	// exceeding it fails this job with ErrJobFailed. 0 means no budget.
	MaxRetries int
	// BackoffBase and BackoffMax bound the capped exponential backoff
	// between transfer retries, in seconds; zeros select 1 ms and 50 ms.
	BackoffBase float64
	BackoffMax  float64
	// SpeculateAfter, when positive, lets a chunk one worker has held
	// longer than this many seconds be re-issued to a second worker of
	// the job's slice; first commit wins, the loser is Wasted.
	SpeculateAfter float64
}

func (c ChaosSpec) enabled() bool {
	return len(c.Scenario.Events) > 0 || c.SpeculateAfter > 0
}

// JobSpec describes one outer-product job submitted to the fleet.
type JobSpec struct {
	// Tenant is the accounting/fair-share identity; "" means "default".
	Tenant string
	// N is the problem size (output is N×N).
	N int
	// Strategy picks the partition: "hom" (default), "hom/k", "het" or
	// "wf" (caller-weighted PERI-SUM; requires Weights).
	Strategy string
	// Weights are the per-slice-worker load weights for the "wf"
	// strategy, in the order of the job's admitted slice (ascending
	// fleet ids) — typically a water-filling split from measured rates.
	// Required with "wf", forbidden otherwise; the length must match the
	// admitted slice (preview it with Fleet.SliceFor).
	Weights []float64
	// A and B are the input vectors (length N); nil inputs are generated
	// deterministically from Seed.
	A, B []float64
	// Seed drives input generation when A/B are nil.
	Seed int64
	// Deadline, when positive, bounds the job's life from submission;
	// expiry cancels it (handle.Wait returns context.DeadlineExceeded)
	// and its leases are reclaimed without touching other jobs.
	Deadline time.Duration
	// MaxWorkers, when positive, further caps the job's fleet slice.
	MaxWorkers int
	// Chaos optionally scopes a fault scenario to this job.
	Chaos ChaosSpec
}

func (s JobSpec) withDefaults() JobSpec {
	if s.Tenant == "" {
		s.Tenant = "default"
	}
	if s.Strategy == "" {
		s.Strategy = "hom"
	}
	if s.Chaos.enabled() {
		if s.Chaos.BackoffBase <= 0 {
			s.Chaos.BackoffBase = 1e-3
		}
		if s.Chaos.BackoffMax <= 0 {
			s.Chaos.BackoffMax = 50e-3
		}
	}
	return s
}

func (s JobSpec) validate(p int) error {
	if s.N <= 0 {
		return fmt.Errorf("service: job size n=%d", s.N)
	}
	if (s.A != nil) != (s.B != nil) {
		return fmt.Errorf("service: provide both A and B or neither")
	}
	if s.A != nil && (len(s.A) != s.N || len(s.B) != s.N) {
		return fmt.Errorf("service: inputs sized %d/%d for n=%d", len(s.A), len(s.B), s.N)
	}
	if s.MaxWorkers < 0 {
		return fmt.Errorf("service: negative MaxWorkers %d", s.MaxWorkers)
	}
	if s.Strategy == "wf" && len(s.Weights) == 0 {
		return fmt.Errorf("service: strategy wf requires Weights")
	}
	if s.Strategy != "wf" && s.Weights != nil {
		return fmt.Errorf("service: Weights are only meaningful with strategy wf (got %q)", s.Strategy)
	}
	if s.Chaos.enabled() {
		if err := s.Chaos.Scenario.Validate(p); err != nil {
			return fmt.Errorf("service: job chaos: %w", err)
		}
		if s.Chaos.MaxRetries < 0 {
			return fmt.Errorf("service: negative retry budget %d", s.Chaos.MaxRetries)
		}
		if s.Chaos.SpeculateAfter < 0 || math.IsNaN(s.Chaos.SpeculateAfter) {
			return fmt.Errorf("service: invalid SpeculateAfter %v", s.Chaos.SpeculateAfter)
		}
	}
	return nil
}

// jobState is a job's lifecycle stage (fleet.mu-guarded).
type jobState int

const (
	jsActive jobState = iota
	jsDone
	jsFailed
)

// lease tracks one chunk in flight, possibly on two workers at once
// (holder + speculative copy); first-writer-wins at commit.
type lease struct {
	c       nrt.Chunk
	holders []int
	first   int
	since   float64
}

// job is one admitted job's full state. Immutable after buildJobLocked:
// identity, slice, plan, inputs, chaos tables, ctx. Everything else is
// guarded by fleet.mu; the output matrix is written only by the worker
// holding the winning commit (disjoint rectangles).
type job struct {
	id       int64
	tenant   string
	n        int
	strategy string
	slice    []int  // fleet worker ids, ascending
	inSlice  []bool // fleet-indexed
	plan     *nrt.StrategyPlan
	a, b     []float64
	out      *matmul.Matrix
	tl       *trace.Timeline
	ctx      context.Context
	cancel   context.CancelFunc
	done     chan struct{}

	chaos      *jobChaos // nil without a ChaosSpec
	maxRetries int
	backoff    [2]float64 // base, max (seconds)
	specAfter  float64

	submitAt float64
	startAt  float64 // -1 until the first chunk handout
	doneAt   float64

	// lease-queue state (the per-job analogue of runtime.chaosQueue,
	// fleet-worker-indexed and guarded by fleet.mu).
	backlog   [][]nrt.Chunk
	bhead     []int
	shared    []nrt.Chunk
	shead     int
	leases    map[int]*lease
	committed map[int]bool
	recovered map[int]int
	nextTask  int
	cellsLeft int
	// serving counts chunks of this job currently in flight on workers.
	// A job completes only when cellsLeft hits 0 AND serving drains to 0,
	// so losing speculative copies settle their waste into the ledgers
	// before the report freezes (the fleet analogue of Run's wg.Wait).
	serving   int
	deadFor   []bool // fleet-indexed: worker dead *for this job*
	aliveLeft int    // live workers remaining in the slice

	// ledgers
	planVolume     float64
	predicted      float64
	replanExtra    float64
	dataShipped    float64
	committedCells float64
	committedVol   float64
	wastedData     float64
	wastedWork     float64
	lostWork       float64
	reclaimedCells int
	retried        int
	specWins       int
	degraded       int

	// autoscaled marks a slice sized by the capacity model (fleet
	// AutoscaleTheta > 0); predictedMakespan is the model's forecast for
	// the admitted slice, frozen at admission.
	autoscaled        bool
	predictedMakespan float64

	state  jobState
	err    error
	report *JobReport
}

// newJob allocates the state for an admitted job over its slice.
func newJob(id int64, spec JobSpec, slice []int, plan *nrt.StrategyPlan, a, b []float64, fleetP int, now float64) *job {
	j := &job{
		id:        id,
		tenant:    spec.Tenant,
		n:         spec.N,
		strategy:  spec.Strategy,
		slice:     slice,
		inSlice:   make([]bool, fleetP),
		plan:      plan,
		a:         a,
		b:         b,
		out:       matmul.New(spec.N, spec.N),
		tl:        trace.New(fleetP),
		done:      make(chan struct{}),
		submitAt:  now,
		startAt:   -1,
		backlog:   make([][]nrt.Chunk, fleetP),
		bhead:     make([]int, fleetP),
		leases:    map[int]*lease{},
		committed: map[int]bool{},
		recovered: map[int]int{},
		deadFor:   make([]bool, fleetP),
		aliveLeft: len(slice),
	}
	for _, w := range slice {
		j.inSlice[w] = true
	}
	// Plan chunks are owned in slice-local indices; map them to fleet ids.
	// PlanVolume is the executed plan's geometric volume Σ(wᵢ+hᵢ) — what
	// a clean run ships exactly and no faulty run can undercut; the
	// analytic closed form stays in predicted for reporting.
	for _, c := range plan.Chunks {
		j.cellsLeft += c.Cells()
		j.planVolume += float64(c.Data())
		if c.Task >= j.nextTask {
			j.nextTask = c.Task + 1
		}
		if c.Owner >= 0 && c.Owner < len(slice) {
			c.Owner = slice[c.Owner]
			j.backlog[c.Owner] = append(j.backlog[c.Owner], c)
		} else {
			c.Owner = -1
			j.shared = append(j.shared, c)
		}
	}
	j.predicted = plan.Predicted
	if spec.Chaos.enabled() {
		j.chaos = compileJobChaos(spec.Chaos, fleetP)
		j.maxRetries = spec.Chaos.MaxRetries
		j.backoff = [2]float64{spec.Chaos.BackoffBase, spec.Chaos.BackoffMax}
		j.specAfter = spec.Chaos.SpeculateAfter
	}
	return j
}

// terminal reports whether the job has been finalized (fleet.mu held).
func (j *job) terminal() bool { return j.state != jsActive }

// remainingCells is the SRPT key input (fleet.mu held).
func (j *job) remainingCells() float64 { return float64(j.cellsLeft) }

// JobHandle is the caller's view of an admitted job.
type JobHandle struct {
	f *Fleet
	j *job
}

// ID returns the fleet-assigned job id.
func (h *JobHandle) ID() int64 { return h.j.id }

// Done returns a channel closed when the job reaches a terminal state.
func (h *JobHandle) Done() <-chan struct{} { return h.j.done }

// Cancel cancels the job: its leases are reclaimed at the next
// scheduling step, in-flight chunks commit to nowhere (accounted as this
// job's waste), and Wait returns context.Canceled. Other jobs never
// notice. Idempotent; a no-op once the job is terminal.
func (h *JobHandle) Cancel() { h.j.cancel() }

// Wait blocks until the job is terminal (or ctx expires) and returns its
// report. The error is nil for success; ErrJobFailed, ErrFleetClosed,
// context.Canceled or context.DeadlineExceeded otherwise — the report is
// still returned alongside a job error, carrying the partial ledgers.
func (h *JobHandle) Wait(ctx context.Context) (*JobReport, error) {
	select {
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-h.j.done:
	}
	h.f.mu.Lock()
	defer h.f.mu.Unlock()
	return h.j.report, h.j.err
}

// Report returns the job's report if it is terminal, else nil.
func (h *JobHandle) Report() *JobReport {
	h.f.mu.Lock()
	defer h.f.mu.Unlock()
	return h.j.report
}

// JobReport is the per-job ledger, frozen at finalize. The chaos
// identities of the single-run Report hold here per job: DataShipped =
// CommittedVolume + WastedData, and CommittedVolume = PlanVolume +
// ReplannedVolume (every fault's cost is attributed to the job that
// carried the fault, never to its neighbors).
type JobReport struct {
	ID       int64
	Tenant   string
	N        int
	Strategy string
	// Workers lists the fleet slice the job was admitted with.
	Workers []int

	SubmitTime float64
	StartTime  float64 // -1 if never started
	DoneTime   float64
	// Latency is DoneTime − SubmitTime (queueing + service).
	Latency float64
	// Makespan is DoneTime − StartTime (service only); 0 if never started.
	Makespan float64

	// PlanVolume is the executed plan's geometric volume Σ(wᵢ+hᵢ);
	// Predicted is the strategy's analytic closed form (they coincide on
	// snapped platforms).
	PlanVolume      float64
	Predicted       float64
	ReplannedVolume float64
	DataShipped     float64
	CommittedVolume float64
	WastedData      float64
	WastedWorkCells float64
	LostWorkCells   float64
	ReclaimedCells  int
	RetriedChunks   int
	SpeculativeWins int
	DegradedWorkers int
	LinkCapacity    float64
	// Topology names the fleet's network family; Edges carries its
	// per-edge capacities and SpanRoutes the edges each worker's delivery
	// spans occupy. Expect arms the per-edge capacity sweep with them —
	// capacity only, no volume ledger, because the edges are shared by
	// every job while this report sees one job's traffic.
	Topology   string
	Edges      []nrt.EdgeReport
	SpanRoutes [][]int

	Failed bool
	Err    string

	// Autoscaled marks a slice sized by the fleet's capacity model;
	// PredictedMakespan is the model's service-time forecast for that
	// slice (0 when autoscaling was off).
	Autoscaled        bool
	PredictedMakespan float64

	// Out is the verified output matrix (nil when the job failed).
	Out *matmul.Matrix
	// Trace is the job's own timeline over the *fleet's* workers; rows
	// outside the slice stay empty unless chaos speculation pulled them in.
	Trace *trace.Timeline
	// Chaos records whether the job carried a fault scenario.
	Chaos bool
}

// Expect builds the trace oracle for this job's timeline, mirroring the
// single-run contract: exact plan-volume bound for clean jobs, plan
// floor + exactly-once + waste ledgers under chaos.
func (r *JobReport) Expect(relTol float64) *trace.Expect {
	nn := float64(r.N) * float64(r.N)
	e := &trace.Expect{
		HasWork:       true,
		TotalWork:     nn,
		ProcessedWork: nn,
		HasComm:       true,
		ShippedData:   r.DataShipped,
		Bound:         r.PlanVolume,
		BoundKind:     trace.BoundExact,
		BoundName:     "Comm_" + r.Strategy,
		LinkCapacity:  r.LinkCapacity,
		Tol:           relTol,
	}
	if r.Chaos {
		e.Bound = r.PlanVolume
		e.BoundKind = trace.BoundLower
		e.BoundName = "Comm_" + r.Strategy + " plan floor"
		e.ExactlyOnce = true
		e.WastedWork = r.WastedWorkCells
		e.LostWork = r.LostWorkCells
	}
	if len(r.Edges) > 0 {
		// Capacity sweep only: a single job's traffic is a subset of the
		// shared edges' load, so exceeding capacity is still a violation
		// but a per-edge volume ledger would be meaningless here.
		e.Edges = make([]trace.ExpectEdge, len(r.Edges))
		for i, ed := range r.Edges {
			e.Edges[i] = trace.ExpectEdge{Name: ed.Name, Capacity: ed.Capacity}
		}
		e.Routes = r.SpanRoutes
	}
	return e
}

// finalizeLocked moves a job to its terminal state exactly once: freezes
// the report, settles the tenant account, removes the job from the
// active set, answers every waiter and wakes the pool. err == nil means
// success (the output is spot-verified first when configured).
func (f *Fleet) finalizeLocked(j *job, err error) {
	if j.terminal() {
		return
	}
	if err == nil && f.cfg.VerifyEvery > 0 {
		err = j.verify(f.cfg.VerifyEvery)
	}
	now := f.now()
	j.doneAt = now
	j.err = err
	if err == nil {
		j.state = jsDone
	} else {
		j.state = jsFailed
	}
	rep := &JobReport{
		ID:       j.id,
		Tenant:   j.tenant,
		N:        j.n,
		Strategy: j.strategy,
		Workers:  append([]int(nil), j.slice...),

		SubmitTime: j.submitAt,
		StartTime:  j.startAt,
		DoneTime:   now,
		Latency:    now - j.submitAt,

		PlanVolume:      j.planVolume,
		Predicted:       j.predicted,
		ReplannedVolume: j.replanExtra,
		DataShipped:     j.dataShipped,
		CommittedVolume: j.committedVol,
		WastedData:      j.wastedData,
		WastedWorkCells: j.wastedWork,
		LostWorkCells:   j.lostWork,
		ReclaimedCells:  j.reclaimedCells,
		RetriedChunks:   j.retried,
		SpeculativeWins: j.specWins,
		DegradedWorkers: j.degraded,
		LinkCapacity:    f.net.Capacity(),
		Topology:        f.Topology(),
		Edges:           f.edgeRows(),
		SpanRoutes:      f.net.SpanRoutes(),

		Autoscaled:        j.autoscaled,
		PredictedMakespan: j.predictedMakespan,

		Failed: err != nil,
		Trace:  j.tl,
		Chaos:  j.chaos != nil,
	}
	if j.startAt >= 0 {
		rep.Makespan = now - j.startAt
	}
	if err == nil {
		rep.Out = j.out
	} else {
		rep.Err = err.Error()
	}
	j.report = rep

	led := f.ledgerLocked(j.tenant)
	led.settle(rep)
	switch {
	case err == nil:
		f.completed++
		led.Completed++
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		f.cancelledJobs++
		led.Cancelled++
	default:
		f.failed++
		led.Failed++
	}

	for i, k := range f.active {
		if k == j {
			f.active = append(f.active[:i], f.active[i+1:]...)
			break
		}
	}
	f.finishedJobs++
	f.probationTickLocked()
	close(j.done)
	j.cancel()
	f.wakeAll()
}

// verify spot-checks every stride-th output cell against a[i]*b[k].
func (j *job) verify(stride int) error {
	for idx := 0; idx < j.n*j.n; idx += stride {
		i, k := idx/j.n, idx%j.n
		want := j.a[i] * j.b[k]
		if got := j.out.At(i, k); got != want {
			return fmt.Errorf("%w: output mismatch at (%d,%d): got %v want %v", ErrJobFailed, i, k, got, want)
		}
	}
	return nil
}
