package faults

import (
	"fmt"
	"math"

	"nlfl/internal/dessim"
	"nlfl/internal/platform"
	"nlfl/internal/trace"
)

// ResilientOptions tunes the fault tolerance of the resilient
// demand-driven executor. The zero value selects sensible defaults.
type ResilientOptions struct {
	// HeartbeatTimeout is the delay between a worker's crash and the
	// master noticing it (re-queueing the lost task). 0 models an ideal
	// failure detector.
	HeartbeatTimeout float64
	// RetryBase is the first retry backoff after a dropped transfer;
	// successive retries double it up to RetryCap (capped exponential
	// backoff). Defaults: 0.25 and 4 time units.
	RetryBase float64
	RetryCap  float64
	// MaxAttempts bounds transfer attempts per assignment; when exhausted
	// the task returns to the pool for any worker to claim. Default 8.
	MaxAttempts int
	// Speculate enables straggler mitigation: once the pool is empty, an
	// idle worker may launch one backup copy of the running task with the
	// latest projected finish, if it can beat that finish.
	Speculate bool
	// Sink, when non-nil, observes the engine's event lifecycle
	// (schedule/fire/cancel) — attach a trace.Recorder to audit the run's
	// causal order alongside the structured Trace.
	Sink dessim.TraceSink
}

func (o ResilientOptions) withDefaults() (ResilientOptions, error) {
	if o.HeartbeatTimeout < 0 || math.IsNaN(o.HeartbeatTimeout) {
		return o, fmt.Errorf("faults: heartbeat timeout %v invalid", o.HeartbeatTimeout)
	}
	if o.RetryBase < 0 || o.RetryCap < 0 {
		return o, fmt.Errorf("faults: negative retry backoff")
	}
	if o.RetryBase == 0 {
		o.RetryBase = 0.25
	}
	if o.RetryCap == 0 {
		o.RetryCap = 4
	}
	if o.RetryCap < o.RetryBase {
		o.RetryCap = o.RetryBase
	}
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 8
	}
	return o, nil
}

// Report is the full fault accounting of one resilient run.
type Report struct {
	// Timeline records every interval, including transfers that were
	// dropped and partial computations cut short by crashes; its Makespan
	// can exceed the job's (a losing speculative copy may still be
	// computing after the last task completed).
	Timeline *dessim.Timeline `json:"-"`
	// Trace is the structured record of the same run: spans carry
	// outcomes (ok/dropped/killed/wasted) and the fault instants appear
	// as markers, so trace.Check can audit the executor's claims.
	Trace *trace.Timeline `json:"-"`
	// Makespan is the first-completion time of the last task.
	Makespan float64 `json:"makespan"`
	// TasksPerWorker counts winning executions per worker.
	TasksPerWorker []int `json:"tasksPerWorker"`
	// DataShipped is the total volume sent by the master, wasted copies
	// included.
	DataShipped float64 `json:"dataShipped"`
	// ExtraComm is the wasted part of DataShipped: dropped transfers,
	// shipments to workers that crashed, and losing speculative copies.
	ExtraComm float64 `json:"extraComm"`
	// Reexecutions counts task copies restarted because a crash destroyed
	// a running copy.
	Reexecutions int `json:"reexecutions"`
	// LostWork is the partially-completed work (in work units) destroyed
	// by crashes.
	LostWork float64 `json:"lostWork"`
	// WastedWork is the work burned by speculative copies that lost their
	// race.
	WastedWork float64 `json:"wastedWork"`
	// DroppedTransfers and Retries account for flaky links.
	DroppedTransfers int `json:"droppedTransfers"`
	Retries          int `json:"retries"`
	// Backups counts speculative copies launched.
	Backups int `json:"backups"`
	// Timeouts counts crash detections delivered through the heartbeat
	// timeout (one per lost in-flight task).
	Timeouts int `json:"timeouts"`
}

// phase of an in-flight assignment.
type phase int

const (
	phaseTransfer phase = iota
	phaseCompute
	phaseBackoff
)

// assignment is one (worker, task) execution attempt, spanning transfer
// retries and the computation.
type assignment struct {
	task     int
	worker   int
	backup   bool
	attempts int
	ph       phase
	start    float64 // current phase's start time
	finish   float64 // projected compute finish (valid in phaseCompute)
	handle   *dessim.Handle
}

// RunResilientDemandDriven executes the demand-driven Homogeneous Blocks
// distribution (parallel master→worker links, the paper's Section 1.2
// model) under the fault scenario, with the MapReduce-style resilience
// the paper's Section 1.1 invokes: crashed workers' in-flight chunks are
// re-queued after a heartbeat timeout, dropped transfers are retried with
// capped exponential backoff, and (optionally) stragglers are speculated
// against. It returns the fault accounting and an error if the fault
// pattern made completion impossible (e.g. every worker permanently
// dead).
func RunResilientDemandDriven(p *platform.Platform, tasks []dessim.Task, sc Scenario, opt ResilientOptions) (*Report, error) {
	opt, err := opt.withDefaults()
	if err != nil {
		return nil, err
	}
	for i, t := range tasks {
		if t.Data < 0 || t.Work < 0 {
			return nil, fmt.Errorf("faults: task %d has negative size", i)
		}
	}
	eng := dessim.NewEngine()
	if opt.Sink != nil {
		eng.SetSink(opt.Sink)
	}
	inj, err := NewInjector(eng, p.P(), sc)
	if err != nil {
		return nil, err
	}
	avail := inj.Availability()
	tr := trace.New(p.P())
	rep := &Report{
		Timeline:       dessim.NewTimeline(p.P()),
		Trace:          tr,
		TasksPerWorker: make([]int, p.P()),
	}

	pending := make([]int, len(tasks))
	for i := range pending {
		pending[i] = i
	}
	done := make([]bool, len(tasks))
	doneCount := 0
	copies := make([]int, len(tasks)) // running copies per task
	cur := make([]*assignment, p.P())
	// attemptBudget guards against pathological scenarios (e.g. a
	// drop-probability-1 link window extending forever) turning the
	// simulation into an infinite retry loop.
	attemptBudget := 1000*len(tasks) + 10000
	overBudget := false

	var dispatch func()
	var startTransfer func(a *assignment)

	startCompute := func(a *assignment) {
		w, now := a.worker, eng.Now()
		finish := avail.IntegrateWork(p, w, now, tasks[a.task].Work)
		if math.IsInf(finish, 1) {
			// Frozen for the rest of time: a crash event will reap this
			// assignment; park it with no completion scheduled.
			a.ph = phaseCompute
			a.start, a.finish, a.handle = now, finish, nil
			return
		}
		a.ph, a.start, a.finish = phaseCompute, now, finish
		a.handle = eng.Schedule(finish, func() {
			rep.Timeline.Add(w, dessim.Interval{Kind: dessim.Compute, Start: a.start, End: finish, Work: tasks[a.task].Work, Task: a.task})
			cur[w] = nil
			copies[a.task]--
			if done[a.task] {
				// Lost the race to a speculative twin.
				tr.Add(w, trace.Span{Kind: trace.Compute, Start: a.start, End: finish, Work: tasks[a.task].Work, Task: a.task, Outcome: trace.Wasted})
				rep.WastedWork += tasks[a.task].Work
				rep.ExtraComm += tasks[a.task].Data
			} else {
				tr.Add(w, trace.Span{Kind: trace.Compute, Start: a.start, End: finish, Work: tasks[a.task].Work, Task: a.task, Outcome: trace.OK})
				done[a.task] = true
				doneCount++
				rep.TasksPerWorker[w]++
				if now := eng.Now(); now > rep.Makespan {
					rep.Makespan = now
				}
			}
			dispatch()
		})
	}

	startTransfer = func(a *assignment) {
		w, now := a.worker, eng.Now()
		if attemptBudget--; attemptBudget < 0 {
			overBudget = true
			cur[w] = nil
			copies[a.task]--
			return
		}
		data := tasks[a.task].Data
		d := 0.0
		if data > 0 {
			d = p.Worker(w).CommTime(data) / avail.BandwidthFactor(w, now)
		}
		dropped := inj.DropTransfer(w, now)
		rep.DataShipped += data
		a.ph, a.start = phaseTransfer, now
		a.handle = eng.Schedule(now+d, func() {
			rep.Timeline.Add(w, dessim.Interval{Kind: dessim.Receive, Start: a.start, End: eng.Now(), Data: data, Task: a.task})
			if !dropped {
				tr.Add(w, trace.Span{Kind: trace.Comm, Start: a.start, End: eng.Now(), Data: data, Task: a.task, Outcome: trace.OK})
				startCompute(a)
				return
			}
			tr.Add(w, trace.Span{Kind: trace.Comm, Start: a.start, End: eng.Now(), Data: data, Task: a.task, Outcome: trace.Dropped})
			tr.Mark(trace.Marker{Kind: trace.MarkDrop, Worker: w, Time: eng.Now(), Note: fmt.Sprintf("task %d", a.task)})
			rep.DroppedTransfers++
			rep.ExtraComm += data
			a.attempts++
			if a.attempts >= opt.MaxAttempts {
				// Give up on this link: hand the task back to the pool and
				// put the worker in a cooldown, so it does not immediately
				// re-claim the same task over the same flaky link.
				copies[a.task]--
				pending = append(pending, a.task)
				cool := &assignment{task: -1, worker: w, ph: phaseBackoff}
				cur[w] = cool
				cool.handle = eng.ScheduleAfter(opt.RetryCap, func() {
					cur[w] = nil
					dispatch()
				})
				dispatch()
				return
			}
			rep.Retries++
			backoff := math.Min(opt.RetryBase*math.Pow(2, float64(a.attempts-1)), opt.RetryCap)
			a.ph = phaseBackoff
			a.handle = eng.ScheduleAfter(backoff, func() { startTransfer(a) })
		})
	}

	speculate := func(w int) bool {
		// Back up the running, copy-less task with the latest projected
		// finish — Hadoop's end-of-job straggler mitigation. Deterministic:
		// latest finish wins, ties to the lowest task id.
		now := eng.Now()
		var target *assignment
		for _, a := range cur {
			if a == nil || a.ph != phaseCompute || done[a.task] || copies[a.task] != 1 {
				continue
			}
			if a.finish <= now {
				continue
			}
			if target == nil || a.finish > target.finish || (a.finish == target.finish && a.task < target.task) {
				target = a
			}
		}
		if target == nil {
			return false
		}
		d := 0.0
		if data := tasks[target.task].Data; data > 0 {
			d = p.Worker(w).CommTime(data) / avail.BandwidthFactor(w, now)
		}
		eta := avail.IntegrateWork(p, w, now+d, tasks[target.task].Work)
		if eta >= target.finish {
			return false
		}
		rep.Backups++
		a := &assignment{task: target.task, worker: w, backup: true}
		cur[w] = a
		copies[a.task]++
		startTransfer(a)
		return true
	}

	dispatch = func() {
		for w := 0; w < p.P(); w++ {
			if !inj.Alive(w) || cur[w] != nil || overBudget {
				continue
			}
			claimed := false
			for len(pending) > 0 {
				task := pending[0]
				pending = pending[1:]
				if done[task] {
					continue
				}
				a := &assignment{task: task, worker: w}
				cur[w] = a
				copies[task]++
				startTransfer(a)
				claimed = true
				break
			}
			if !claimed && opt.Speculate && doneCount < len(tasks) {
				speculate(w)
			}
		}
	}

	inj.OnCrash(func(w int, permanent bool) {
		note := "transient"
		if permanent {
			note = "permanent"
		}
		tr.Mark(trace.Marker{Kind: trace.MarkCrash, Worker: w, Time: eng.Now(), Note: note})
		a := cur[w]
		if a == nil {
			return
		}
		cur[w] = nil
		a.handle.Cancel()
		if a.task < 0 {
			return // cooldown sentinel, no task attached
		}
		copies[a.task]--
		now := eng.Now()
		switch a.ph {
		case phaseTransfer:
			rep.Timeline.Add(w, dessim.Interval{Kind: dessim.Receive, Start: a.start, End: now, Data: tasks[a.task].Data, Task: a.task})
			tr.Add(w, trace.Span{Kind: trace.Comm, Start: a.start, End: now, Data: tasks[a.task].Data, Task: a.task, Outcome: trace.Killed})
			rep.ExtraComm += tasks[a.task].Data // shipment died with the worker
		case phaseCompute:
			rep.Timeline.Add(w, dessim.Interval{Kind: dessim.Compute, Start: a.start, End: now, Work: 0, Task: a.task})
			lost := avail.WorkBetween(p, w, a.start, now)
			tr.Add(w, trace.Span{Kind: trace.Compute, Start: a.start, End: now, Work: lost, Task: a.task, Outcome: trace.Killed})
			rep.LostWork += lost
			rep.ExtraComm += tasks[a.task].Data // its data is gone too
		}
		if done[a.task] {
			return // a twin already finished it; nothing to recover
		}
		if copies[a.task] > 0 {
			return // another copy is still running; let it race
		}
		rep.Reexecutions++
		rep.Timeouts++
		task := a.task
		eng.ScheduleAfter(opt.HeartbeatTimeout, func() {
			if !done[task] && copies[task] == 0 {
				pending = append(pending, task)
				dispatch()
			}
		})
	})
	inj.OnRecover(func(w int) {
		tr.Mark(trace.Marker{Kind: trace.MarkRecover, Worker: w, Time: eng.Now()})
		dispatch()
	})

	inj.Arm()
	eng.At(0, dispatch)
	eng.Run()

	if overBudget {
		return rep, fmt.Errorf("faults: retry budget exhausted after %d transfer attempts (scenario too hostile)", 1000*len(tasks)+10000)
	}
	if doneCount < len(tasks) {
		return rep, fmt.Errorf("faults: %d of %d tasks never completed (insufficient surviving capacity)", len(tasks)-doneCount, len(tasks))
	}
	return rep, nil
}
