package iterative

import (
	"context"
	"errors"
	"math"
	"testing"

	"nlfl/internal/faults"
	nrt "nlfl/internal/runtime"
)

// testOptions is a small, fast iterative job: N=32 over three workers at
// a throttle low enough that the token bucket (not the real CPU) paces
// the rounds, with a loose tie so convergence lands in a handful of
// rounds.
func testOptions(mode Mode) Options {
	return Options{
		N:             32,
		X0:            SeedVector(32, 0.6),
		MaxRounds:     16,
		Tol:           1e-9,
		Mode:          mode,
		Speeds:        []float64{1, 2, 3},
		WorkPerSecond: 2e5,
		Burst:         1,
		VerifyEvery:   7,
	}
}

func TestRunConvergesAllModes(t *testing.T) {
	var residuals [][]float64
	for _, mode := range []Mode{ModeStatic, ModeAdaptive, ModeOracle} {
		opts := testOptions(mode)
		if mode == ModeOracle {
			opts.OracleRates = func(int) []float64 { return []float64{2e5, 4e5, 6e5} }
		}
		res, err := Run(context.Background(), opts)
		if err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		if !res.Converged {
			t.Fatalf("%s: did not converge", mode)
		}
		if res.Violations != 0 {
			t.Fatalf("%s: %d trace violations", mode, res.Violations)
		}
		if want := 32 / 3; res.Dominant != want {
			t.Fatalf("%s: dominant index %d, want %d", mode, res.Dominant, want)
		}
		rs := make([]float64, len(res.Rounds))
		for i, r := range res.Rounds {
			rs[i] = r.Residual
		}
		residuals = append(residuals, rs)
	}
	// The iterate update is exact master-side float64 arithmetic: the
	// residual sequence must be bit-identical across planning modes.
	for m := 1; m < len(residuals); m++ {
		if len(residuals[m]) != len(residuals[0]) {
			t.Fatalf("mode %d ran %d rounds, mode 0 ran %d", m, len(residuals[m]), len(residuals[0]))
		}
		for i := range residuals[m] {
			if residuals[m][i] != residuals[0][i] {
				t.Fatalf("round %d residual differs across modes: %v vs %v", i, residuals[m][i], residuals[0][i])
			}
		}
	}
}

func TestRunKappaFollowsSpeeds(t *testing.T) {
	res, err := Run(context.Background(), testOptions(ModeStatic))
	if err != nil {
		t.Fatal(err)
	}
	k := res.Rounds[0].Kappa
	if !(k[2] > k[1] && k[1] > k[0]) {
		t.Fatalf("round-0 split %v does not follow speeds {1,2,3}", k)
	}
	total := k[0] + k[1] + k[2]
	if total != 1024 {
		t.Fatalf("split covers %v cells, want 1024", total)
	}
}

func TestRunAdaptiveTracksDrift(t *testing.T) {
	opts := testOptions(ModeAdaptive)
	opts.MaxRounds = 20
	// Worker 2 (the fastest) runs at a third of its speed from round 2 on.
	opts.Chaos = func(round int) nrt.Chaos {
		if round < 2 {
			return nrt.Chaos{}
		}
		return nrt.Chaos{Scenario: faults.Scenario{Events: []faults.Event{
			{Kind: faults.Straggler, Worker: 2, Time: 0, Until: 1e9, Factor: 1. / 3},
		}}}
	}
	res, err := Run(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reanchors == 0 {
		t.Fatal("persistent drift never re-anchored the estimator")
	}
	if res.Replans == 0 {
		t.Fatal("detected drift never adopted a re-plan")
	}
	if res.Violations != 0 {
		t.Fatalf("%d trace violations", res.Violations)
	}
	// After the re-plan the degraded worker's share must have shrunk.
	first, last := res.Rounds[0].Kappa, res.Rounds[len(res.Rounds)-1].Kappa
	if last[2] >= first[2] {
		t.Fatalf("degraded worker's share did not shrink: %v → %v", first[2], last[2])
	}
}

func TestRunSurvivesCrash(t *testing.T) {
	opts := testOptions(ModeAdaptive)
	opts.MaxRounds = 20
	crashed := false
	opts.Chaos = func(round int) nrt.Chaos {
		if round != 1 {
			return nrt.Chaos{}
		}
		crashed = true
		return nrt.Chaos{
			Scenario:   faults.Scenario{Events: []faults.Event{{Kind: faults.Crash, Worker: 1, Time: 0.0005}}},
			MaxRetries: 3,
		}
	}
	res, err := Run(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if !crashed {
		t.Fatal("scenario never fired")
	}
	if len(res.DeadWorkers) != 1 || res.DeadWorkers[0] != 1 {
		t.Fatalf("DeadWorkers = %v, want [1]", res.DeadWorkers)
	}
	if res.Violations != 0 {
		t.Fatalf("%d trace violations (exactly-once must hold through the crash)", res.Violations)
	}
	// Every round after the death must plan nothing onto the dead worker.
	sawDeath := false
	for _, r := range res.Rounds {
		if r.Degraded > 0 {
			sawDeath = true
			continue
		}
		if sawDeath && r.Kappa[1] != 0 {
			t.Fatalf("round %d planned %v cells onto the dead worker", r.Round, r.Kappa[1])
		}
	}
}

func TestRunStalls(t *testing.T) {
	opts := testOptions(ModeStatic)
	opts.X0 = SeedVector(32, 0.9999)
	opts.MaxRounds = 3
	res, err := Run(context.Background(), opts)
	if !errors.Is(err, ErrStalled) {
		t.Fatalf("err = %v, want ErrStalled", err)
	}
	if res == nil || len(res.Rounds) != 3 {
		t.Fatalf("stalled result should carry the 3 rounds run, got %+v", res)
	}
	if res.Converged {
		t.Fatal("stalled run marked converged")
	}
}

func TestRunFrozenEstimatorStaysStale(t *testing.T) {
	opts := testOptions(ModeAdaptive)
	opts.MaxRounds = 20
	opts.FreezeAfter = 1
	opts.Chaos = func(round int) nrt.Chaos {
		if round < 2 {
			return nrt.Chaos{}
		}
		return nrt.Chaos{Scenario: faults.Scenario{Events: []faults.Event{
			{Kind: faults.Straggler, Worker: 2, Time: 0, Until: 1e9, Factor: 1. / 3},
		}}}
	}
	res, err := Run(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reanchors != 0 {
		t.Fatalf("frozen estimator re-anchored %d times", res.Reanchors)
	}
	// The lying estimates leave the split stuck on the stale rates.
	first, last := res.Rounds[0].Kappa, res.Rounds[len(res.Rounds)-1].Kappa
	for w := range first {
		if first[w] != last[w] {
			t.Fatalf("frozen run still re-planned: worker %d %v → %v", w, first[w], last[w])
		}
	}
}

func TestRunValidation(t *testing.T) {
	base := testOptions(ModeAdaptive)
	bad := []func(*Options){
		func(o *Options) { o.N = 0 },
		func(o *Options) { o.Speeds = nil },
		func(o *Options) { o.Speeds = []float64{1, -1} },
		func(o *Options) { o.Mode = "greedy" },
		func(o *Options) { o.Mode = ModeOracle }, // no OracleRates
		func(o *Options) { o.X0 = []float64{1, 2} },
	}
	for i, mutate := range bad {
		opts := base
		mutate(&opts)
		if _, err := Run(context.Background(), opts); err == nil {
			t.Fatalf("case %d: bad options accepted", i)
		}
	}
}

func TestSeedVector(t *testing.T) {
	x := SeedVector(32, 0.9999)
	if x[32/3] != 1 || x[64/3] != 0.9999 {
		t.Fatalf("leaders misplaced: x[%d]=%v x[%d]=%v", 32/3, x[32/3], 64/3, x[64/3])
	}
	for i, v := range x {
		if v <= 0 || v > 1 {
			t.Fatalf("entry %d = %v out of (0,1]", i, v)
		}
	}
	for _, n := range []int{1, 2, 3} {
		x := SeedVector(n, 0.5)
		if len(x) != n {
			t.Fatalf("n=%d: got %d entries", n, len(x))
		}
		if math.Abs(x[n/3]-1) > 0 {
			t.Fatalf("n=%d: dominant entry %v", n, x[n/3])
		}
	}
}
