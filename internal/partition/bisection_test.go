package partition

import (
	"math"
	"testing"
	"testing/quick"

	"nlfl/internal/stats"
)

func TestRecursiveBisectionValid(t *testing.T) {
	r := stats.NewRNG(31)
	for _, p := range []int{1, 2, 3, 7, 16, 50} {
		areas := stats.SampleN(stats.LogNormal{Mu: 0, Sigma: 1}, r, p)
		part, err := RecursiveBisection(areas)
		if err != nil {
			t.Fatal(err)
		}
		if err := part.Validate(); err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		norm, _ := Normalize(areas)
		if part.SumHalfPerimeters() < LowerBound(norm)-1e-9 {
			t.Errorf("p=%d: cost below LB", p)
		}
	}
}

func TestRecursiveBisectionPerfectGrid(t *testing.T) {
	// Four equal areas: two cuts give the 2×2 grid, cost 4 = LB.
	part, err := RecursiveBisection([]float64{1, 1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(part.SumHalfPerimeters()-4) > 1e-9 {
		t.Errorf("cost = %v, want 4", part.SumHalfPerimeters())
	}
}

func TestRecursiveBisectionVsColumnDP(t *testing.T) {
	// Bisection is a sane baseline: on heterogeneous inputs it should be
	// within the 7/4 guarantee region most of the time, but the DP should
	// win on average. Measure both over many trials.
	r := stats.NewRNG(32)
	var dpBetter, bisBetter int
	var worstBis float64 = 1
	for trial := 0; trial < 60; trial++ {
		areas := stats.SampleN(stats.LogNormal{Mu: 0, Sigma: 1.2}, r, 20)
		norm, _ := Normalize(areas)
		lb := LowerBound(norm)
		dp, err := PeriSum(areas)
		if err != nil {
			t.Fatal(err)
		}
		bis, err := RecursiveBisection(areas)
		if err != nil {
			t.Fatal(err)
		}
		if dp.SumHalfPerimeters() < bis.SumHalfPerimeters()-1e-9 {
			dpBetter++
		} else if bis.SumHalfPerimeters() < dp.SumHalfPerimeters()-1e-9 {
			bisBetter++
		}
		if ratio := bis.SumHalfPerimeters() / lb; ratio > worstBis {
			worstBis = ratio
		}
	}
	if dpBetter <= bisBetter {
		t.Errorf("column DP should usually win: dp=%d bisection=%d", dpBetter, bisBetter)
	}
	if worstBis > 1.5 {
		t.Errorf("bisection worst ratio %v suspiciously bad", worstBis)
	}
}

func TestRecursiveBisectionRejectsBadInput(t *testing.T) {
	if _, err := RecursiveBisection(nil); err == nil {
		t.Error("empty input should fail")
	}
	if _, err := RecursiveBisection([]float64{1, 0}); err == nil {
		t.Error("zero area should fail")
	}
}

// Property: bisection always yields a valid tiling with prescribed areas.
func TestRecursiveBisectionProperty(t *testing.T) {
	f := func(seed int64, np uint8) bool {
		p := int(np%40) + 1
		r := stats.NewRNG(seed)
		areas := make([]float64, p)
		for i := range areas {
			areas[i] = 0.05 + 5*r.Float64()
		}
		part, err := RecursiveBisection(areas)
		if err != nil {
			return false
		}
		return part.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
