package trace

import "fmt"

// Recorder is a dessim.TraceSink that tallies the engine's event
// lifecycle and verifies the engine-level invariant the timeline cannot
// see: fired events must come off the queue in non-decreasing time order.
// Attach with eng.SetSink(rec) before the first event.
type Recorder struct {
	// Scheduled, Fired and Cancelled count lifecycle transitions.
	Scheduled, Fired, Cancelled int64
	lastFire                    float64
	seenFire                    bool
	violations                  []Violation
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// EventScheduled implements dessim.TraceSink.
func (r *Recorder) EventScheduled(seq int64, now, at float64) {
	r.Scheduled++
	if at < now {
		r.violations = append(r.violations, Violation{Kind: NonMonotone, Worker: -1, Task: -1,
			Detail: fmt.Sprintf("event %d scheduled at %v before now %v", seq, at, now)})
	}
}

// EventFired implements dessim.TraceSink.
func (r *Recorder) EventFired(seq int64, at float64) {
	r.Fired++
	if r.seenFire && at < r.lastFire {
		r.violations = append(r.violations, Violation{Kind: NonMonotone, Worker: -1, Task: -1,
			Detail: fmt.Sprintf("event %d fired at %v after clock reached %v", seq, at, r.lastFire)})
	}
	r.lastFire, r.seenFire = at, true
}

// EventCancelled implements dessim.TraceSink.
func (r *Recorder) EventCancelled(seq int64, now float64) { r.Cancelled++ }

// Violations returns the engine-level invariant violations observed (nil
// when the run was causally clean).
func (r *Recorder) Violations() []Violation {
	out := make([]Violation, len(r.violations))
	copy(out, r.violations)
	if len(out) == 0 {
		return nil
	}
	return out
}
