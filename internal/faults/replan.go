package faults

import (
	"fmt"
	"math"

	"nlfl/internal/outer"
	"nlfl/internal/platform"
)

// ReplanReport quantifies the data-replication price of re-planning the
// outer-product distribution after permanent crashes: the surviving
// workers must re-cover the whole N×N domain, so every strategy's volume
// is recomputed over the survivor platform and compared to what the
// fault-free platform would have paid.
type ReplanReport struct {
	// Time is the re-planning instant; Survivors the workers still up.
	Time      float64 `json:"time"`
	Survivors int     `json:"survivors"`
	// FaultFreeCommHom is the fault-free Homogeneous Blocks volume
	// 2N·√(Σ sᵢ/s₁) over the full platform — the reference the ISSUE's
	// robustness experiment reports against.
	FaultFreeCommHom float64 `json:"faultFreeCommHom"`
	// FaultFreeLB is LB_comm = 2N·Σ√xᵢ over the full platform.
	FaultFreeLB float64 `json:"faultFreeLB"`
	// SurvivorLB is LB_comm over the survivors only — no post-crash plan
	// can pay less than this.
	SurvivorLB float64 `json:"survivorLB"`
	// SurvivorCommHom is 2N·√(Σ sᵢ/s₁) over the survivors — the idealized
	// Homogeneous Blocks bound the re-planned Comm_hom/k volume is
	// reported against (HomKBoundRatio ≥ 1 always).
	SurvivorCommHom float64 `json:"survivorCommHom"`
	HomKBoundRatio  float64 `json:"homKBoundRatio"`
	// K, Blocks and HomKVolume describe the re-planned Comm_hom/k layout
	// over the survivors (block side divided by K to meet the 1%
	// imbalance target).
	K          int     `json:"k"`
	Blocks     int     `json:"blocks"`
	HomKVolume float64 `json:"homKVolume"`
	// HetVolume is the re-planned Heterogeneous Blocks (PERI-SUM) volume
	// over the survivors.
	HetVolume float64 `json:"hetVolume"`
	// ExtraVolume and ExtraRatio report the Comm_hom/k replication cost
	// added by the crash: HomKVolume − FaultFreeCommHom and
	// HomKVolume / FaultFreeCommHom.
	ExtraVolume float64 `json:"extraVolume"`
	ExtraRatio  float64 `json:"extraRatio"`
}

// Replan recomputes the outer-product data distribution over the workers
// that survive `avail` at time t, for an N×N computation domain: the
// Comm_hom/k block refinement (imbalance target eps, paper: 0.01) and the
// PERI-SUM heterogeneous partition, both on the survivor platform. It
// reports the volumes against the fault-free references; this is the
// failure-aware re-planning step a master runs when a permanent crash is
// detected.
func Replan(p *platform.Platform, n float64, avail *platform.Availability, t, eps float64) (*ReplanReport, error) {
	if n <= 0 {
		return nil, fmt.Errorf("faults: domain size %v must be positive", n)
	}
	sub, _, err := avail.SurvivorPlatform(p, t)
	if err != nil {
		return nil, err
	}
	rep := &ReplanReport{
		Time:             t,
		Survivors:        sub.P(),
		FaultFreeCommHom: outer.Commhom(p, n).Volume,
		FaultFreeLB:      outer.LowerBound(p, n),
		SurvivorLB:       outer.LowerBound(sub, n),
		SurvivorCommHom:  outer.Commhom(sub, n).Volume,
	}
	homk, err := outer.CommhomK(sub, n, eps, 0)
	if err != nil {
		return nil, fmt.Errorf("faults: post-crash Comm_hom/k: %w", err)
	}
	rep.K = homk.K
	rep.Blocks = homk.Blocks
	rep.HomKVolume = homk.Volume
	het, err := outer.Commhet(sub, n)
	if err != nil {
		return nil, fmt.Errorf("faults: post-crash Comm_het: %w", err)
	}
	rep.HetVolume = het.Volume
	rep.HomKBoundRatio = rep.HomKVolume / rep.SurvivorCommHom
	rep.ExtraVolume = rep.HomKVolume - rep.FaultFreeCommHom
	rep.ExtraRatio = rep.HomKVolume / rep.FaultFreeCommHom
	return rep, nil
}

// ReplanAfter is a convenience wrapper: re-plan immediately after the
// scenario's last permanent crash. It errors when the scenario contains
// no permanent crash.
func ReplanAfter(p *platform.Platform, n float64, sc Scenario, eps float64) (*ReplanReport, error) {
	last := math.Inf(-1)
	for _, e := range sc.Events {
		if e.Kind == Crash && e.Time > last {
			last = e.Time
		}
	}
	if math.IsInf(last, -1) {
		return nil, fmt.Errorf("faults: scenario has no permanent crash to re-plan around")
	}
	avail, err := sc.Availability(p.P())
	if err != nil {
		return nil, err
	}
	return Replan(p, n, avail, last, eps)
}
