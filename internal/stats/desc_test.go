package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func approxEq(a, b, tol float64) bool {
	if math.IsNaN(a) && math.IsNaN(b) {
		return true
	}
	return math.Abs(a-b) <= tol*(1+math.Abs(a)+math.Abs(b))
}

func TestMean(t *testing.T) {
	cases := []struct {
		name string
		in   []float64
		want float64
	}{
		{"empty", nil, math.NaN()},
		{"single", []float64{5}, 5},
		{"pair", []float64{1, 3}, 2},
		{"negatives", []float64{-2, -4, -6}, -4},
		{"mixed", []float64{1, 2, 3, 4, 5}, 3},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got := Mean(c.in)
			if !approxEq(got, c.want, 1e-12) {
				t.Errorf("Mean(%v) = %v, want %v", c.in, got, c.want)
			}
		})
	}
}

func TestVarianceAndStdDev(t *testing.T) {
	cases := []struct {
		name string
		in   []float64
		want float64
	}{
		{"empty", nil, 0},
		{"single", []float64{7}, 0},
		{"constant", []float64{4, 4, 4, 4}, 0},
		{"known", []float64{2, 4, 4, 4, 5, 5, 7, 9}, 32.0 / 7.0},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := Variance(c.in); !approxEq(got, c.want, 1e-12) {
				t.Errorf("Variance = %v, want %v", got, c.want)
			}
			if got := StdDev(c.in); !approxEq(got, math.Sqrt(c.want), 1e-12) {
				t.Errorf("StdDev = %v, want %v", got, math.Sqrt(c.want))
			}
		})
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 4, 1, 5, -9, 2, 6}
	if got := Min(xs); got != -9 {
		t.Errorf("Min = %v, want -9", got)
	}
	if got := Max(xs); got != 6 {
		t.Errorf("Max = %v, want 6", got)
	}
	if !math.IsInf(Min(nil), 1) {
		t.Error("Min(nil) should be +Inf")
	}
	if !math.IsInf(Max(nil), -1) {
		t.Error("Max(nil) should be -Inf")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct {
		q, want float64
	}{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5}, {-0.5, 1}, {1.5, 5},
		{0.125, 1.5},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); !approxEq(got, c.want, 1e-12) {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Error("Quantile(nil) should be NaN")
	}
	// Quantile must not reorder its input.
	unsorted := []float64{3, 1, 2}
	Quantile(unsorted, 0.5)
	if unsorted[0] != 3 || unsorted[1] != 1 || unsorted[2] != 2 {
		t.Errorf("Quantile mutated its input: %v", unsorted)
	}
}

func TestSummarize(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	s := Summarize(xs)
	if s.N != 10 || s.Mean != 5.5 || s.Min != 1 || s.Max != 10 || s.Median != 5.5 {
		t.Errorf("unexpected summary: %+v", s)
	}
	if s.String() == "" {
		t.Error("Summary.String should be non-empty")
	}
}

func TestWelfordMatchesBatch(t *testing.T) {
	r := NewRNG(42)
	xs := SampleN(Uniform{Lo: -5, Hi: 12}, r, 1000)
	var w Welford
	for _, x := range xs {
		w.Add(x)
	}
	if w.N() != len(xs) {
		t.Fatalf("N = %d, want %d", w.N(), len(xs))
	}
	if !approxEq(w.Mean(), Mean(xs), 1e-10) {
		t.Errorf("Welford mean %v != batch mean %v", w.Mean(), Mean(xs))
	}
	if !approxEq(w.Variance(), Variance(xs), 1e-10) {
		t.Errorf("Welford var %v != batch var %v", w.Variance(), Variance(xs))
	}
	if !approxEq(w.Min(), Min(xs), 0) || !approxEq(w.Max(), Max(xs), 0) {
		t.Errorf("Welford min/max mismatch")
	}
}

func TestWelfordEmpty(t *testing.T) {
	var w Welford
	if !math.IsNaN(w.Mean()) {
		t.Error("empty Welford mean should be NaN")
	}
	if w.Variance() != 0 || w.StdDev() != 0 {
		t.Error("empty Welford variance should be 0")
	}
	if !math.IsInf(w.Min(), 1) || !math.IsInf(w.Max(), -1) {
		t.Error("empty Welford min/max should be ±Inf")
	}
}

// Property: Welford equals batch statistics on arbitrary inputs.
func TestWelfordProperty(t *testing.T) {
	f := func(xs []float64) bool {
		// Filter non-finite values; statistics are only defined for them.
		clean := xs[:0]
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e8 {
				clean = append(clean, x)
			}
		}
		if len(clean) < 2 {
			return true
		}
		var w Welford
		for _, x := range clean {
			w.Add(x)
		}
		return approxEq(w.Mean(), Mean(clean), 1e-6) &&
			approxEq(w.Variance(), Variance(clean), 1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: quantile is monotone in q and bounded by min/max.
func TestQuantileMonotoneProperty(t *testing.T) {
	f := func(raw []float64, q1, q2 float64) bool {
		clean := raw[:0]
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				clean = append(clean, x)
			}
		}
		if len(clean) == 0 {
			return true
		}
		q1 = math.Abs(math.Mod(q1, 1))
		q2 = math.Abs(math.Mod(q2, 1))
		if q1 > q2 {
			q1, q2 = q2, q1
		}
		a, b := Quantile(clean, q1), Quantile(clean, q2)
		return a <= b && a >= Min(clean) && b <= Max(clean)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSum(t *testing.T) {
	if Sum(nil) != 0 {
		t.Error("empty sum should be 0")
	}
	if got := Sum([]float64{1.5, -0.5, 2}); got != 3 {
		t.Errorf("Sum = %v, want 3", got)
	}
}

func TestPermAndShuffle(t *testing.T) {
	r := NewRNG(77)
	perm := r.Perm(10)
	seen := make([]bool, 10)
	for _, v := range perm {
		if v < 0 || v >= 10 || seen[v] {
			t.Fatalf("not a permutation: %v", perm)
		}
		seen[v] = true
	}
	xs := []int{0, 1, 2, 3, 4, 5, 6, 7}
	orig := append([]int(nil), xs...)
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	// Same multiset.
	count := map[int]int{}
	for _, v := range xs {
		count[v]++
	}
	for _, v := range orig {
		count[v]--
	}
	for _, c := range count {
		if c != 0 {
			t.Fatalf("shuffle changed the multiset: %v", xs)
		}
	}
	// Deterministic for a fixed seed.
	ys := append([]int(nil), orig...)
	r2 := NewRNG(77)
	r2.Perm(10) // consume the same stream prefix
	r2.Shuffle(len(ys), func(i, j int) { ys[i], ys[j] = ys[j], ys[i] })
	for i := range xs {
		if xs[i] != ys[i] {
			t.Fatal("shuffle not deterministic under fixed seed")
		}
	}
}

func TestIntnAndInt63Ranges(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 1000; i++ {
		if v := r.Intn(7); v < 0 || v >= 7 {
			t.Fatalf("Intn out of range: %d", v)
		}
		if r.Int63() < 0 {
			t.Fatal("Int63 returned negative")
		}
	}
}
