package main

import (
	"fmt"
	"math"
	"os"
	"path/filepath"

	"nlfl/internal/affinity"
	"nlfl/internal/experiments"
	"nlfl/internal/mrdlt"
	"nlfl/internal/outer"
	"nlfl/internal/partition"
	"nlfl/internal/platform"
	"nlfl/internal/polymul"
	"nlfl/internal/results"
	"nlfl/internal/stats"
)

// runFig2 draws the Figure 2 footprints: the rectangle each worker gets
// under the Heterogeneous Blocks layout.
func runFig2(args []string) error {
	fs := newFlagSet("fig2")
	p := fs.Int("p", 8, "number of workers")
	dist := fs.String("dist", "uniform", "speed profile")
	seed := fs.Int64("seed", 9, "random seed")
	width := fs.Int("w", 60, "drawing width")
	height := fs.Int("h", 20, "drawing height")
	if err := fs.Parse(args); err != nil {
		return err
	}
	profile, err := platform.ParseProfile(*dist)
	if err != nil {
		return err
	}
	pl, err := platform.Generate(*p, profile.Distribution(16), stats.NewRNG(*seed))
	if err != nil {
		return err
	}
	part, err := partition.PeriSum(pl.Speeds())
	if err != nil {
		return err
	}
	fmt.Printf("Figure 2 — Heterogeneous Blocks footprints for %v:\n\n", pl)
	fmt.Print(part.ASCII(*width, *height))
	norm, err := partition.Normalize(pl.Speeds())
	if err != nil {
		return err
	}
	fmt.Printf("\nΣ half-perimeters Ĉ = %.4f, lower bound 2Σ√aᵢ = %.4f (ratio %.4f)\n",
		part.SumHalfPerimeters(), partition.LowerBound(norm),
		part.SumHalfPerimeters()/partition.LowerBound(norm))

	// The Figure 2(b) counterpart: the same workers under Homogeneous
	// Blocks, demand-driven — footprints scatter across the whole domain.
	g := *width / 2
	if g < 4 {
		g = 4
	}
	grid, err := outer.BlockAssignment(pl, g)
	if err != nil {
		return err
	}
	fmt.Printf("\nsame platform under Homogeneous Blocks (%d×%d demand-driven blocks):\n\n", g, g)
	fmt.Print(outer.RenderBlockAssignment(grid))
	fmt.Println("\nFast workers' data is scattered — every block re-ships its vector chunks,")
	fmt.Println("which is exactly the redundancy Comm_het eliminates.")
	return nil
}

// runAffinity reproduces the conclusion's proposed mechanism: demand-
// driven task assignment with data affinity.
func runAffinity(args []string) error {
	fs := newFlagSet("affinity")
	p := fs.Int("p", 10, "number of workers")
	n := fs.Float64("n", 1000, "vector length N")
	g := fs.Int("g", 30, "blocks per dimension")
	dist := fs.String("dist", "uniform", "speed profile")
	seed := fs.Int64("seed", 1, "random seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	profile, err := platform.ParseProfile(*dist)
	if err != nil {
		return err
	}
	pl, err := platform.Generate(*p, profile.Distribution(16), stats.NewRNG(*seed))
	if err != nil {
		return err
	}
	fmt.Println("Conclusion's proposal — demand-driven assignment with data affinity")
	fmt.Printf("(outer product, N=%g, %d×%d blocks, platform %v):\n\n", *n, *g, *g, pl)
	rs, err := affinity.Compare(pl, *n, *g)
	if err != nil {
		return err
	}
	for _, r := range rs {
		fmt.Printf("  %s\n", r.String())
	}
	// Granularity sweep: the affinity policy stays nearly flat while the
	// no-cache volume grows linearly with the grid.
	gs := []int{*g / 2, *g, *g * 2}
	if gs[0] < 1 {
		gs[0] = 1
	}
	sweep, err := experiments.AffinitySweep(pl, *n, gs)
	if err != nil {
		return err
	}
	fmt.Println("\nratio-to-LB across block granularities:")
	fmt.Println()
	fmt.Print(experiments.AffinityTable(sweep).String())

	// How much worker memory the proposal needs: LRU-bounded caches.
	mem, err := experiments.MemorySweep(pl, *n, *g, []int{0, *g / 4, *g / 2, *g, 2 * *g})
	if err != nil {
		return err
	}
	fmt.Println("\nvolume vs per-worker cache capacity (LRU, chunks):")
	fmt.Println()
	fmt.Print(experiments.MemoryTable(mem).String())
	return nil
}

// runBottleneck sweeps link bandwidth to show when communication volume
// becomes the makespan bottleneck (the paper's motivation for minimizing
// volume).
func runBottleneck(args []string) error {
	fs := newFlagSet("bottleneck")
	p := fs.Int("p", 20, "number of workers")
	n := fs.Float64("n", 1000, "vector length N")
	dist := fs.String("dist", "uniform", "speed profile")
	seed := fs.Int64("seed", 5, "random seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	profile, err := platform.ParseProfile(*dist)
	if err != nil {
		return err
	}
	pl, err := platform.Generate(*p, profile.Distribution(16), stats.NewRNG(*seed))
	if err != nil {
		return err
	}
	points, err := experiments.Bottleneck(pl, *n, 0.01, []float64{0.01, 0.03, 0.1, 0.3, 1, 10, 1000})
	if err != nil {
		return err
	}
	fmt.Println("Link-bottleneck sweep — single-round makespan over the pure-compute bound")
	fmt.Printf("(outer product, N=%g, platform %v):\n\n", *n, pl)
	fmt.Print(experiments.BottleneckTable(points).String())
	fmt.Println("\nAs links slow down, Comm_hom/k's inflated footprints dominate its makespan first.")
	return nil
}

// runMRDLT demonstrates the divisible MapReduce scheduling of [25]: the
// linear-complexity case where DLT-style optimization genuinely works.
func runMRDLT(args []string) error {
	fs := newFlagSet("mrdlt")
	p := fs.Int("p", 8, "number of mappers")
	v := fs.Float64("v", 1000, "input volume V")
	gamma := fs.Float64("gamma", 0.5, "map output ratio γ")
	r := fs.Int("r", 4, "number of reducers")
	seed := fs.Int64("seed", 6, "random seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	rng := stats.NewRNG(*seed)
	pl, err := platform.Generate(*p, stats.Uniform{Lo: 1, Hi: 10}, rng)
	if err != nil {
		return err
	}
	job := mrdlt.Job{V: *v, Gamma: *gamma, Reducers: *r, ReducerSpeed: 2}
	eq, err := mrdlt.EqualSplit(pl, job)
	if err != nil {
		return err
	}
	opt, err := mrdlt.Optimize(pl, job, 0)
	if err != nil {
		return err
	}
	fmt.Println("Divisible MapReduce scheduling (Berlińska–Drozdowski model, paper ref [25]):")
	fmt.Printf("  platform %v, V=%g, γ=%g, %d reducers\n\n", pl, *v, *gamma, *r)
	fmt.Printf("  equal split: makespan %.4g (map %.4g, shuffle %.4g)\n", eq.Makespan, eq.MapFinish, eq.ShuffleFinish)
	fmt.Printf("  optimized:   makespan %.4g (map %.4g, shuffle %.4g)\n", opt.Makespan, opt.MapFinish, opt.ShuffleFinish)
	fmt.Printf("  speedup %.3f× — DLT optimization pays off because every phase is LINEAR;\n", eq.Makespan/opt.Makespan)
	fmt.Println("  Section 2 proves no such chunk-vector optimization can help when cost is N^α, α>1.")
	return nil
}

// runCompare diffs two saved result records within a relative tolerance —
// the regression check for reproduced experiments.
func runCompare(args []string) error {
	fs := newFlagSet("compare")
	tol := fs.Float64("tol", 0.02, "relative tolerance for numeric values")
	if err := fs.Parse(args); err != nil {
		return err
	}
	rest := fs.Args()
	if len(rest) != 2 {
		return fmt.Errorf("usage: nlfl compare [-tol x] old.json new.json")
	}
	a, err := results.Load(rest[0])
	if err != nil {
		return err
	}
	b, err := results.Load(rest[1])
	if err != nil {
		return err
	}
	diffs := results.Compare(a, b, *tol)
	if len(diffs) == 0 {
		fmt.Printf("records agree within %.3g relative tolerance\n", *tol)
		return nil
	}
	for _, d := range diffs {
		fmt.Println(" ", d)
	}
	return fmt.Errorf("%d differences found", len(diffs))
}

// runPolymul demonstrates the polynomial-multiplication case study: the
// application from the refuted reference [20], whose divisibility verdict
// flips with the algorithm choice.
func runPolymul(args []string) error {
	fs := newFlagSet("polymul")
	n := fs.Int("n", 512, "polynomial size for the correctness demo")
	bigN := fs.Float64("N", 1<<20, "problem size for the verdicts")
	p := fs.Int("p", 64, "platform size for the verdicts")
	seed := fs.Int64("seed", 10, "random seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	r := stats.NewRNG(*seed)
	a := stats.SampleN(stats.Uniform{Lo: -1, Hi: 1}, r, *n)
	b := stats.SampleN(stats.Uniform{Lo: -1, Hi: 1}, r, *n)
	ref, err := polymul.Naive(a, b)
	if err != nil {
		return err
	}
	fmt.Printf("multiplying two degree-%d polynomials (paper ref [20]'s application):\n\n", *n-1)
	for _, algo := range []polymul.Algorithm{polymul.AlgoNaive, polymul.AlgoKaratsuba, polymul.AlgoFFT} {
		got, err := polymul.Multiply(a, b, algo)
		if err != nil {
			return err
		}
		maxErr := 0.0
		for i := range ref {
			if d := math.Abs(got[i] - ref[i]); d > maxErr {
				maxErr = d
			}
		}
		v, err := polymul.Verdict(algo, *bigN, *p)
		if err != nil {
			return err
		}
		fmt.Printf("  %-11s max|Δ|=%.2g   %s\n", algo, maxErr, v)
	}
	fmt.Println("\nSame application, three verdicts: the algorithm, not the problem,")
	fmt.Println("decides whether the workload is a divisible load.")
	return nil
}

// runAll reproduces every experiment with paper settings and saves each
// as a JSON record under -outdir — the one-command reproduction driver.
func runAll(args []string) error {
	fs := newFlagSet("all")
	outdir := fs.String("outdir", "results", "directory for the JSON records")
	trials := fs.Int("trials", 100, "Figure 4 trials per point")
	seed := fs.Int64("seed", 42, "random seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := os.MkdirAll(*outdir, 0o755); err != nil {
		return err
	}
	save := func(name string, params map[string]float64, data interface{}) error {
		path := filepath.Join(*outdir, name+".json")
		if err := results.Save(path, results.Record{Experiment: name, Params: params, Data: data}); err != nil {
			return err
		}
		fmt.Println("wrote", path)
		return nil
	}

	// E1: Section 2 fractions.
	_, rows, err := experiments.NonLinearTable([]int{2, 4, 10, 32, 100}, []float64{1.5, 2, 3}, 1000)
	if err != nil {
		return err
	}
	if err := save("e1-nonlinear", nil, rows); err != nil {
		return err
	}

	// E3: sort scaling.
	sortRows, err := experiments.SortScaling([]int{1 << 10, 1 << 14, 1 << 17, 1 << 20}, 8, *seed)
	if err != nil {
		return err
	}
	if err := save("e3-sort-scaling", map[string]float64{"p": 8, "seed": float64(*seed)}, sortRows); err != nil {
		return err
	}

	// E6: rho sweep.
	rho, err := experiments.RhoSweep([]float64{1, 4, 16, 64, 100}, 20, 1000)
	if err != nil {
		return err
	}
	if err := save("e6-rho", map[string]float64{"p": 20}, rho); err != nil {
		return err
	}

	// E8–E10: the three Figure 4 panels.
	for _, profile := range []platform.SpeedProfile{
		platform.ProfileHomogeneous, platform.ProfileUniform, platform.ProfileLogNormal,
	} {
		cfg := experiments.DefaultFig4Config(profile)
		cfg.Trials = *trials
		cfg.Seed = *seed
		points, err := experiments.Fig4(cfg)
		if err != nil {
			return err
		}
		name := "fig4-" + profile.String()
		if err := save(name, map[string]float64{"trials": float64(*trials), "seed": float64(*seed)}, points); err != nil {
			return err
		}
	}

	// E12: partitioner quality.
	quality, err := experiments.PartitionQuality([]int{10, 25, 50, 100}, 50, *seed)
	if err != nil {
		return err
	}
	if err := save("e12-partition-quality", map[string]float64{"trials": 50, "seed": float64(*seed)}, quality); err != nil {
		return err
	}

	// Extension: affinity sweep.
	pl, err := platform.Generate(10, stats.Uniform{Lo: 1, Hi: 100}, stats.NewRNG(*seed))
	if err != nil {
		return err
	}
	aff, err := experiments.AffinitySweep(pl, 1000, []int{10, 20, 40, 80})
	if err != nil {
		return err
	}
	if err := save("ext-affinity", map[string]float64{"p": 10, "seed": float64(*seed)}, aff); err != nil {
		return err
	}

	// Extension: link bottleneck.
	bott, err := experiments.Bottleneck(pl, 1000, 0.01, []float64{0.01, 0.1, 1, 10, 1000})
	if err != nil {
		return err
	}
	if err := save("ext-bottleneck", map[string]float64{"p": 10, "seed": float64(*seed)}, bott); err != nil {
		return err
	}

	// Ext: the robustness sweep (crashes vs demand-driven / single-round /
	// re-planning).
	fcfg := experiments.DefaultFaultSweepConfig()
	fcfg.Seed = *seed
	faultRows, err := experiments.FaultSweep(fcfg)
	if err != nil {
		return err
	}
	if err := save("ext-faults", map[string]float64{"p": float64(fcfg.P), "seed": float64(*seed)}, faultRows); err != nil {
		return err
	}

	// The whole evaluation as one structured record (for `nlfl compare`).
	suite, err := experiments.RunSuite(experiments.SuiteConfig{Trials: *trials, Seed: *seed})
	if err != nil {
		return err
	}
	return save("suite", map[string]float64{"trials": float64(*trials), "seed": float64(*seed)}, suite)
}
