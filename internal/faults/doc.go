// Package faults is the unified fault-injection subsystem of the
// reproduction: one seedable fault model that every distribution strategy
// — single-round DLT, demand-driven Homogeneous Blocks (Comm_hom and
// Comm_hom/k), Heterogeneous Blocks — can be exercised against on the
// shared internal/dessim event engine.
//
// The paper's Section 1.1 credits MapReduce's practical success to its
// "inherent capability of handling hardware failures": a demand-driven
// pool of small homogeneous chunks loses at most the chunks in flight
// when a machine dies, while a single-round DLT schedule loses the dead
// worker's entire allocation with no way to react. This package makes
// that argument executable:
//
//   - Scenario describes deterministic fault timelines: permanent worker
//     crashes, transient crash/recover cycles, straggler slowdowns (speed
//     multipliers over time windows), link degradation, and probabilistic
//     transfer drops.
//   - Injector arms a scenario on a dessim.Engine, compiling it into a
//     platform.Availability for time-varying capacity queries and firing
//     crash/recover callbacks into whatever executor is listening.
//   - RunResilientDemandDriven executes the Homogeneous Blocks
//     demand-driven distribution with the fault tolerance MapReduce
//     actually implements: heartbeat-timeout crash detection,
//     capped-exponential-backoff retry of dropped transfers, speculative
//     re-execution of stragglers, and full lost-work / re-execution /
//     extra-communication accounting.
//   - RunSingleRoundUnderFaults executes a static single-round schedule
//     under the same scenario; having no feedback channel, it simply
//     loses every chunk a fault touches.
//   - Replan is the failure-aware re-planner: after a permanent crash it
//     recomputes the Comm_hom/k block size and the Heterogeneous Blocks
//     partition over the survivors and reports the extra replicated
//     volume against the fault-free Comm_hom = 2N·√(Σ sᵢ/s₁).
//
// # Determinism
//
// Every run of this package is a pure function of (platform, workload,
// Scenario). Scenario carries an explicit Seed; all stochastic choices —
// crash times and victims in the generated scenarios, transfer-drop coin
// flips — flow through a stats.RNG derived from that seed and nothing
// else. Speculative-execution targets are chosen by a deterministic rule
// (latest projected finish, ties to the lowest worker index), so they
// need no randomness at all. The dessim engine executes equal-time events
// FIFO in scheduling order. Identical seeds therefore reproduce identical
// timelines, event for event, on every platform — the property the
// regression records and the `nlfl faults` golden tests rely on.
package faults
