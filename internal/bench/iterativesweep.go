package bench

import (
	"context"
	"fmt"
	"math"
	goruntime "runtime"

	"nlfl/internal/faults"
	"nlfl/internal/iterative"
	"nlfl/internal/results"
	nrt "nlfl/internal/runtime"
)

// The iterative sweep runs a fixed calibrated envelope, like the chaos
// sweep: the drifting-straggler scenario's factor, onset round and tie
// are tuned against this rate and size so the adaptive controller has
// both something real to detect (the static split loses ~40% makespan
// to the straggler) and enough rounds after detection to pay the
// adaptation back before convergence.
const (
	// iterN/iterRate: a 96×96 outer product over a {1,2,3,4} fleet at
	// 2e4 cells/s/speed ≈ 46 ms per round — long enough that the
	// straggler window lands mid-round, short enough for CI.
	iterN    = 96
	iterRate = 2e4
	// iterDriftWorker (the fastest worker, largest rectangle) drops to
	// iterDriftFactor of its speed from round iterDriftRound on.
	iterDriftWorker = 3
	iterDriftFactor = 0.5
	iterDriftRound  = 2
	// iterOracleTolerance is the headline gate: adaptive TotalMakespan
	// within 10% of the omniscient-oracle policy's.
	iterOracleTolerance = 0.10
	// iterChaosN matches the chaos × re-plan property sweep's envelope
	// (internal/iterative TestChaosIterativeProperty).
	iterChaosN    = 48
	iterChaosRate = 4e5
)

// iterSpeeds is the policy sweep's fleet speed profile.
func iterSpeeds() []float64 { return []float64{1, 2, 3, 4} }

// iterTie selects the runner-up tie (and with it the deterministic round
// count: entrywise squaring separates a ratio r as r^(2^t)).
func iterTie(quick bool) float64 {
	if quick {
		return 0.999 // ≈ 15 rounds
	}
	return 0.9999 // ≈ 18 rounds
}

// iterDriftChaos is the drifting-straggler scenario every policy runs
// under: worker iterDriftWorker computes at iterDriftFactor speed from
// round iterDriftRound on, forever.
func iterDriftChaos(seed int64) func(round int) nrt.Chaos {
	return func(round int) nrt.Chaos {
		if round < iterDriftRound {
			return nrt.Chaos{}
		}
		return nrt.Chaos{Scenario: faults.Scenario{
			Seed: seed,
			Events: []faults.Event{
				{Kind: faults.Straggler, Worker: iterDriftWorker, Time: 0, Until: 1e9, Factor: iterDriftFactor},
			},
		}}
	}
}

// iterOracleRates is the omniscient baseline's knowledge: the true
// drifted rates, handed over the moment the drift starts.
func iterOracleRates(round int) []float64 {
	rates := make([]float64, len(iterSpeeds()))
	for w, s := range iterSpeeds() {
		rates[w] = s * iterRate
	}
	if round >= iterDriftRound {
		rates[iterDriftWorker] *= iterDriftFactor
	}
	return rates
}

// RunIterativeSweep runs the closed-loop re-planning bench: the same
// deterministic power iteration under three planning policies on a
// drifting-straggler fleet, plus one adaptive run per chaos class, every
// round audited by the exactly-once trace oracle. The iterate itself is
// exact master arithmetic, so residuals and round counts must agree
// across policies — only the measured makespans differ, and those are
// what the policies are ranked on.
func RunIterativeSweep(ctx context.Context, cfg Config) (results.IterativeBenchFile, error) {
	return runIterativeSweep(ctx, cfg, 0)
}

// runIterativeSweep is RunIterativeSweep with a lying-estimates
// injection point: freezeAfter > 0 freezes the adaptive estimator after
// that many rounds, so the negative test can prove the gates actually
// detect a controller that stops listening.
func runIterativeSweep(ctx context.Context, cfg Config, freezeAfter int) (results.IterativeBenchFile, error) {
	file := results.IterativeBenchFile{
		Schema:        results.BenchIterativeSchema,
		Seed:          cfg.Seed,
		Quick:         cfg.Quick,
		WorkPerSecond: iterRate,
		GoVersion:     goruntime.Version(),
		GOMAXPROCS:    maxProcs(),
	}
	tie := iterTie(cfg.Quick)
	makespans := map[iterative.Mode]float64{}
	for _, mode := range []iterative.Mode{iterative.ModeStatic, iterative.ModeAdaptive, iterative.ModeOracle} {
		if err := ctx.Err(); err != nil {
			return file, err
		}
		opts := iterative.Options{
			N:             iterN,
			X0:            iterative.SeedVector(iterN, tie),
			MaxRounds:     30,
			Tol:           1e-9,
			Mode:          mode,
			Speeds:        iterSpeeds(),
			WorkPerSecond: iterRate,
			// Burst 1: no banked credit, so every span pays honest token
			// time and the rate samples measure the drifted reality.
			Burst:       1,
			VerifyEvery: 101,
			Estimator:   iterative.EstimatorConfig{DriftRounds: 2},
			Chaos:       iterDriftChaos(cfg.Seed),
		}
		if mode == iterative.ModeOracle {
			opts.OracleRates = iterOracleRates
		}
		if mode == iterative.ModeAdaptive {
			opts.FreezeAfter = freezeAfter
		}
		res, err := iterative.Run(ctx, opts)
		if err != nil {
			return file, fmt.Errorf("bench: iterative %s policy: %w", mode, err)
		}
		residuals := make([]float64, len(res.Rounds))
		rounds := make([]float64, len(res.Rounds))
		for i, r := range res.Rounds {
			residuals[i] = r.Residual
			rounds[i] = r.Makespan
		}
		makespans[mode] = res.TotalMakespan
		file.Policies = append(file.Policies, results.IterativePolicyEntry{
			Policy:         string(mode),
			N:              iterN,
			Speeds:         iterSpeeds(),
			Rounds:         len(res.Rounds),
			Converged:      res.Converged,
			Residuals:      residuals,
			Dominant:       res.Dominant,
			TotalMakespan:  res.TotalMakespan,
			RoundMakespans: rounds,
			Replans:        res.Replans,
			Fallbacks:      res.Fallbacks,
			Reanchors:      res.Reanchors,
			DriftWorker:    iterDriftWorker,
			DriftFactor:    iterDriftFactor,
			DriftRound:     iterDriftRound,
			Violations:     res.Violations,
		})
	}
	if oracle := makespans[iterative.ModeOracle]; oracle > 0 {
		file.AdaptiveOverOracle = makespans[iterative.ModeAdaptive] / oracle
	}
	if adaptive := makespans[iterative.ModeAdaptive]; adaptive > 0 {
		file.StaticOverAdaptive = makespans[iterative.ModeStatic] / adaptive
	}

	for _, class := range []string{"crash", "straggler", "link-slow"} {
		if err := ctx.Err(); err != nil {
			return file, err
		}
		opts := iterative.Options{
			N:             iterChaosN,
			X0:            iterative.SeedVector(iterChaosN, 0.6),
			MaxRounds:     12,
			Tol:           1e-9,
			Mode:          iterative.ModeAdaptive,
			Speeds:        []float64{1, 2, 3},
			WorkPerSecond: iterChaosRate,
			Burst:         1,
			VerifyEvery:   11,
			Estimator:     iterative.EstimatorConfig{DriftRounds: 2},
		}
		switch class {
		case "crash":
			opts.Chaos = func(round int) nrt.Chaos {
				if round != 1 {
					return nrt.Chaos{}
				}
				return nrt.Chaos{
					// Round 1 lasts ≈ 1 ms at this throttle; the crash
					// instant must land inside it to actually fire.
					Scenario:   faults.Scenario{Seed: cfg.Seed, Events: []faults.Event{{Kind: faults.Crash, Worker: 1, Time: 0.0003}}},
					MaxRetries: 3,
				}
			}
		case "straggler":
			opts.Chaos = func(round int) nrt.Chaos {
				if round < 1 {
					return nrt.Chaos{}
				}
				return nrt.Chaos{Scenario: faults.Scenario{Seed: cfg.Seed, Events: []faults.Event{
					{Kind: faults.Straggler, Worker: 2, Time: 0, Until: 1e9, Factor: 0.3},
				}}}
			}
		case "link-slow":
			opts.Link = nrt.Link{ElemsPerSecond: 4e6}
			opts.Chaos = func(round int) nrt.Chaos {
				if round < 1 {
					return nrt.Chaos{}
				}
				return nrt.Chaos{Scenario: faults.Scenario{Seed: cfg.Seed, Events: []faults.Event{
					{Kind: faults.LinkSlow, Worker: 2, Time: 0, Until: 1e9, Factor: 0.25},
				}}}
			}
		}
		res, err := iterative.Run(ctx, opts)
		if err != nil {
			return file, fmt.Errorf("bench: iterative chaos %s: controller did not survive: %w", class, err)
		}
		file.Chaos = append(file.Chaos, results.IterativeChaosEntry{
			Class:         class,
			N:             iterChaosN,
			Rounds:        len(res.Rounds),
			Converged:     res.Converged,
			Dominant:      res.Dominant,
			TotalMakespan: res.TotalMakespan,
			DeadWorkers:   append([]int(nil), res.DeadWorkers...),
			Replans:       res.Replans,
			Reanchors:     res.Reanchors,
			CommTime:      res.CommTime,
			Violations:    res.Violations,
		})
	}
	return file, nil
}

// ValidateIterative is the acceptance gate for a BENCH_iterative
// payload: right schema, all three policies present, every run converged
// with a clean trace ledger, the deterministic halves (round counts,
// residual sequences, dominant index) bit-identical across policies —
// and the headline ranking: adaptive strictly beats static under the
// drifting straggler, stays within 10% of the omniscient oracle, and
// actually adapted (re-plans after drift detection; a static run that
// happens to be fast would pass the timing gates without them).
func ValidateIterative(f results.IterativeBenchFile) error {
	const path = IterativeFileName
	if f.Schema != results.BenchIterativeSchema {
		return invalid(path, "schema %q, want %q", f.Schema, results.BenchIterativeSchema)
	}
	if !finite(f.WorkPerSecond) || f.WorkPerSecond <= 0 {
		return invalid(path, "non-positive work rate %v", f.WorkPerSecond)
	}
	byPolicy := map[string]results.IterativePolicyEntry{}
	for i, e := range f.Policies {
		id := fmt.Sprintf("policy entry %d (%s)", i, e.Policy)
		if e.Policy == "" || e.N <= 0 || len(e.Speeds) == 0 {
			return invalid(path, "%s: missing identity fields", id)
		}
		if !e.Converged {
			return invalid(path, "%s: did not converge", id)
		}
		if e.Rounds <= 0 || len(e.Residuals) != e.Rounds || len(e.RoundMakespans) != e.Rounds {
			return invalid(path, "%s: %d rounds with %d residuals and %d makespans",
				id, e.Rounds, len(e.Residuals), len(e.RoundMakespans))
		}
		if !finite(e.TotalMakespan) || e.TotalMakespan <= 0 {
			return invalid(path, "%s: bad total makespan %v", id, e.TotalMakespan)
		}
		for _, v := range e.Residuals {
			if !finite(v) || v < 0 {
				return invalid(path, "%s: bad residual %v", id, v)
			}
		}
		for _, v := range e.RoundMakespans {
			if !finite(v) || v <= 0 {
				return invalid(path, "%s: bad round makespan %v", id, v)
			}
		}
		if e.Violations != 0 {
			return invalid(path, "%s: %d trace violations", id, e.Violations)
		}
		byPolicy[e.Policy] = e
	}
	for _, want := range []string{"static", "adaptive", "oracle"} {
		if _, ok := byPolicy[want]; !ok {
			return invalid(path, "missing %q policy entry", want)
		}
	}
	static, adaptive, oracle := byPolicy["static"], byPolicy["adaptive"], byPolicy["oracle"]

	// Determinism cross-check: the iterate update is exact master-side
	// float64 arithmetic, so the numerical trajectory cannot depend on
	// how the rounds were split.
	for _, e := range []results.IterativePolicyEntry{adaptive, oracle} {
		if e.Rounds != static.Rounds {
			return invalid(path, "%s ran %d rounds, static ran %d — the iterate is not deterministic",
				e.Policy, e.Rounds, static.Rounds)
		}
		if e.Dominant != static.Dominant {
			return invalid(path, "%s converged to index %d, static to %d", e.Policy, e.Dominant, static.Dominant)
		}
		for r := range e.Residuals {
			if e.Residuals[r] != static.Residuals[r] {
				return invalid(path, "round %d residual differs: %s %v vs static %v",
					r, e.Policy, e.Residuals[r], static.Residuals[r])
			}
		}
	}

	// The headline ranking.
	if adaptive.TotalMakespan >= static.TotalMakespan {
		return invalid(path, "adaptive makespan %.4f not below static %.4f under drift",
			adaptive.TotalMakespan, static.TotalMakespan)
	}
	if adaptive.TotalMakespan > (1+iterOracleTolerance)*oracle.TotalMakespan {
		return invalid(path, "adaptive makespan %.4f above %.0f%% of oracle %.4f",
			adaptive.TotalMakespan, 100*(1+iterOracleTolerance), oracle.TotalMakespan)
	}
	if adaptive.Replans < 1 || adaptive.Reanchors < 1 {
		return invalid(path, "adaptive policy never adapted (replans %d, reanchors %d)",
			adaptive.Replans, adaptive.Reanchors)
	}
	if static.Replans != 0 {
		return invalid(path, "static policy re-planned %d times", static.Replans)
	}
	for _, r := range []struct {
		name   string
		stored float64
		numer  float64
		denom  float64
	}{
		{"adaptiveOverOracle", f.AdaptiveOverOracle, adaptive.TotalMakespan, oracle.TotalMakespan},
		{"staticOverAdaptive", f.StaticOverAdaptive, static.TotalMakespan, adaptive.TotalMakespan},
	} {
		if !finite(r.stored) || math.Abs(r.stored-r.numer/r.denom) > 1e-9 {
			return invalid(path, "%s %v inconsistent with makespans (%v/%v)", r.name, r.stored, r.numer, r.denom)
		}
	}

	// The chaos half: one adaptive run per fault class, each with the
	// evidence the fault actually bit.
	seen := map[string]bool{}
	for i, e := range f.Chaos {
		id := fmt.Sprintf("chaos entry %d (%s)", i, e.Class)
		if !e.Converged {
			return invalid(path, "%s: did not converge", id)
		}
		if e.Violations != 0 {
			return invalid(path, "%s: %d exactly-once violations", id, e.Violations)
		}
		if !finite(e.TotalMakespan) || e.TotalMakespan <= 0 {
			return invalid(path, "%s: bad total makespan %v", id, e.TotalMakespan)
		}
		switch e.Class {
		case "crash":
			if len(e.DeadWorkers) < 1 {
				return invalid(path, "%s: crash scenario killed nobody", id)
			}
		case "straggler":
			if e.Reanchors < 1 || e.Replans < 1 {
				return invalid(path, "%s: straggler never triggered adaptation (reanchors %d, replans %d)",
					id, e.Reanchors, e.Replans)
			}
		case "link-slow":
			if !finite(e.CommTime) || e.CommTime <= 0 {
				return invalid(path, "%s: throttled link left no measured comm time (%v)", id, e.CommTime)
			}
		default:
			return invalid(path, "%s: unknown fault class %q", id, e.Class)
		}
		seen[e.Class] = true
	}
	for _, want := range []string{"crash", "straggler", "link-slow"} {
		if !seen[want] {
			return invalid(path, "missing %q chaos entry", want)
		}
	}
	return nil
}
