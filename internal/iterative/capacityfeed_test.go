package iterative

import (
	"testing"

	"nlfl/internal/capacity"
)

// TestEstimatorFeedsCapacityModel closes the planning loop across
// layers: measured rates from the estimator flow into the capacity
// planner, and a drifted fleet produces a different recommendation than
// the prior-rate fleet would.
func TestEstimatorFeedsCapacityModel(t *testing.T) {
	prior := []float64{12e4, 12e4, 9e4, 9e4, 6e4, 6e4, 3e4, 3e4}
	e := newTestEstimator(t, EstimatorConfig{DriftRounds: 2}, prior...)
	// Every worker has quietly slowed to a quarter of its prior rate;
	// two consecutive departing rounds re-anchor the whole fleet.
	for round := 0; round < 2; round++ {
		rows := make(map[int][3]float64, len(prior))
		for w, r := range prior {
			rows[w] = [3]float64{r / 4, 1, 0}
		}
		e.ObserveRound(roundTimeline(len(prior), rows))
	}
	nominal, err := capacity.FromObserved(2, 96, prior, 2.5e4)
	if err != nil {
		t.Fatal(err)
	}
	measured, err := capacity.FromObserved(2, 96, e.Rates(), 2.5e4)
	if err != nil {
		t.Fatal(err)
	}
	n, err := nominal.Recommend(0.05)
	if err != nil {
		t.Fatal(err)
	}
	m, err := measured.Recommend(0.05)
	if err != nil {
		t.Fatal(err)
	}
	if n.Knee == m.Knee {
		t.Fatalf("drifted fleet left the knee at %d; measured rates never reached the planner", n.Knee)
	}
}
