//go:build !amd64 || purego

package matmul

// Non-amd64 builds (and -tags purego) run the portable register-blocked
// micro-kernel; microKernel keeps its microKernelGo default.
