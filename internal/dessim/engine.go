// Package dessim is a small discrete-event simulator for master–worker
// star platforms.
//
// The paper's model (Section 1.2) is analytically simple — parallel
// master→worker links, no return messages, single round — but several of
// the reproduced experiments need an executable model: the demand-driven
// chunk distribution behind the Homogeneous Blocks strategy (Section 4.1.1),
// the one-port sequential-distribution baseline of the non-linear DLT
// literature (Section 2's references [31–35]), and multi-round linear DLT.
// This package provides the event engine and the star-network executor
// they share.
package dessim

import (
	"container/heap"
	"fmt"
	"math"
)

// event is a scheduled callback.
type event struct {
	time      float64
	seq       int64 // FIFO tie-break for equal times
	action    func()
	cancelled bool
	fired     bool
}

// Handle names a scheduled event so it can be cancelled before it fires —
// the primitive behind fault handling: a worker crash must be able to
// retract the completion events of whatever that worker had in flight.
// The zero Handle and the nil Handle are both inert.
type Handle struct {
	ev  *event
	eng *Engine
}

// Cancel retracts the event if it has not fired yet. Cancelling an
// already-fired or already-cancelled event is a no-op, as is cancelling a
// nil or zero Handle — callers never need to track firing state to cancel
// safely.
func (h *Handle) Cancel() {
	if h == nil || h.ev == nil || h.ev.fired || h.ev.cancelled {
		return
	}
	h.ev.cancelled = true
	if h.eng != nil && h.eng.sink != nil {
		h.eng.sink.EventCancelled(h.ev.seq, h.eng.now)
	}
}

// Cancelled reports whether Cancel retracted the event before it fired.
func (h *Handle) Cancelled() bool {
	return h != nil && h.ev != nil && h.ev.cancelled
}

// Fired reports whether the event has already executed.
func (h *Handle) Fired() bool {
	return h != nil && h.ev != nil && h.ev.fired
}

// eventQueue is a min-heap on (time, seq).
type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].time != q[j].time {
		return q[i].time < q[j].time
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x interface{}) {
	*q = append(*q, x.(*event))
}
func (q *eventQueue) Pop() interface{} {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

// TraceSink observes the engine's event lifecycle. All callbacks run
// synchronously on the simulation's goroutine; implementations must not
// schedule or cancel events from inside a callback.
type TraceSink interface {
	// EventScheduled fires when an event is queued for time `at` while the
	// clock reads `now`.
	EventScheduled(seq int64, now, at float64)
	// EventFired fires just before a (non-cancelled) event's action runs.
	EventFired(seq int64, at float64)
	// EventCancelled fires when a pending event is retracted at time `now`.
	EventCancelled(seq int64, now float64)
}

// Engine is the discrete-event core: a virtual clock plus a time-ordered
// queue of callbacks. Events scheduled at equal times run in scheduling
// order (FIFO), making simulations fully deterministic.
type Engine struct {
	now   float64
	queue eventQueue
	seq   int64
	steps int64
	sink  TraceSink
}

// NewEngine returns an engine with the clock at 0.
func NewEngine() *Engine { return &Engine{} }

// SetSink attaches a trace sink (nil detaches). The sink observes every
// schedule/fire/cancel from then on; attach it before the first event for
// a complete record.
func (e *Engine) SetSink(s TraceSink) { e.sink = s }

// Now returns the current virtual time.
func (e *Engine) Now() float64 { return e.now }

// Steps returns the number of events executed so far.
func (e *Engine) Steps() int64 { return e.steps }

// At schedules action at absolute time t. Scheduling in the past (t < Now)
// panics: it would violate causality. Scheduling exactly at Now is legal
// and the event fires after the currently executing one (FIFO order).
func (e *Engine) At(t float64, action func()) {
	e.Schedule(t, action)
}

// After schedules action d time units from now (d must be >= 0).
func (e *Engine) After(d float64, action func()) {
	e.ScheduleAfter(d, action)
}

// Schedule is At returning a Handle that can cancel the event before it
// fires.
func (e *Engine) Schedule(t float64, action func()) *Handle {
	if t < e.now {
		panic(fmt.Sprintf("dessim: scheduling at %v before now=%v", t, e.now))
	}
	if math.IsNaN(t) {
		panic("dessim: scheduling at NaN time")
	}
	e.seq++
	ev := &event{time: t, seq: e.seq, action: action}
	heap.Push(&e.queue, ev)
	if e.sink != nil {
		e.sink.EventScheduled(ev.seq, e.now, t)
	}
	return &Handle{ev: ev, eng: e}
}

// ScheduleAfter is After returning a cancellation Handle.
func (e *Engine) ScheduleAfter(d float64, action func()) *Handle {
	if d < 0 {
		panic(fmt.Sprintf("dessim: negative delay %v", d))
	}
	return e.Schedule(e.now+d, action)
}

// Run executes events until the queue drains and returns the final clock
// value (the makespan of whatever was simulated).
func (e *Engine) Run() float64 {
	for e.queue.Len() > 0 {
		e.step()
	}
	return e.now
}

// RunUntil executes events with time ≤ t, then sets the clock to t (if it
// is not already past it) and returns the number of events executed
// (cancelled events are discarded without counting).
func (e *Engine) RunUntil(t float64) int64 {
	n := int64(0)
	for e.queue.Len() > 0 && e.queue[0].time <= t {
		if e.step() {
			n++
		}
	}
	if e.now < t {
		e.now = t
	}
	return n
}

// Pending returns the number of queued events, not counting events already
// cancelled (they still occupy the queue until their time comes, but will
// never execute).
func (e *Engine) Pending() int {
	n := 0
	for _, ev := range e.queue {
		if !ev.cancelled {
			n++
		}
	}
	return n
}

// step pops the next event. A cancelled event is dropped without running
// its action, advancing the clock, or counting a step; step reports
// whether an action actually executed.
func (e *Engine) step() bool {
	ev := heap.Pop(&e.queue).(*event)
	if ev.cancelled {
		return false
	}
	e.now = ev.time
	e.steps++
	ev.fired = true
	if e.sink != nil {
		e.sink.EventFired(ev.seq, ev.time)
	}
	ev.action()
	return true
}

// Booking is one reserved interval on a recording Resource.
type Booking struct {
	Start, End float64
}

// Resource models an exclusive serially-reusable resource (a CPU, or the
// master's outgoing port in the one-port model). Book reserves the
// earliest interval of the given duration starting no sooner than t and
// returns its bounds.
type Resource struct {
	freeAt   float64
	busy     float64
	record   bool
	bookings []Booking
}

// Record toggles booking capture: while on, every Book call appends its
// interval to the list returned by Bookings — the raw per-resource busy
// record the trace layer cross-checks executor timelines against.
func (r *Resource) Record(on bool) { r.record = on }

// Bookings returns a copy of the captured booking intervals, in booking
// order (empty unless Record(true) was set before the bookings).
func (r *Resource) Bookings() []Booking {
	out := make([]Booking, len(r.bookings))
	copy(out, r.bookings)
	return out
}

// Book reserves [start, start+dur) with start = max(t, next free time).
func (r *Resource) Book(t, dur float64) (start, end float64) {
	if dur < 0 {
		panic(fmt.Sprintf("dessim: negative booking duration %v", dur))
	}
	start = t
	if r.freeAt > start {
		start = r.freeAt
	}
	end = start + dur
	r.freeAt = end
	r.busy += dur
	if r.record {
		r.bookings = append(r.bookings, Booking{Start: start, End: end})
	}
	return start, end
}

// FreeAt returns the time the resource next becomes available.
func (r *Resource) FreeAt() float64 { return r.freeAt }

// BusyTime returns the cumulative booked duration.
func (r *Resource) BusyTime() float64 { return r.busy }
