package plot

import (
	"fmt"
	"strings"
)

// Table renders aligned text tables for the experiment reports that the
// paper presents as inline numbers (e.g. the Section 2 unprocessed-work
// fractions).
type Table struct {
	Headers []string
	Rows    [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(headers ...string) *Table {
	return &Table{Headers: headers}
}

// AddRow appends a row; cells beyond the header count are dropped, short
// rows are padded with empty cells.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Headers))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.Rows = append(t.Rows, row)
}

// AddRowf appends a row formatting each value with %v (floats with %.4g).
func (t *Table) AddRowf(values ...interface{}) {
	cells := make([]string, len(values))
	for i, v := range values {
		switch x := v.(type) {
		case float64:
			cells[i] = fmt.Sprintf("%.4g", x)
		case float32:
			cells[i] = fmt.Sprintf("%.4g", x)
		default:
			cells[i] = fmt.Sprintf("%v", v)
		}
	}
	t.AddRow(cells...)
}

// String renders the table with a header separator.
func (t *Table) String() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// CSV renders the table as comma-separated values.
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(csvEscape(c))
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// Markdown renders the table as a GitHub-flavored Markdown table — the
// format EXPERIMENTS.md uses, so reports can be pasted verbatim.
func (t *Table) Markdown() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		b.WriteString("|")
		for _, c := range cells {
			b.WriteString(" " + strings.ReplaceAll(c, "|", "\\|") + " |")
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	b.WriteString("|")
	for range t.Headers {
		b.WriteString("---|")
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}
