package matmul

import (
	"errors"
	"fmt"
	"math"

	"nlfl/internal/partition"
)

// Layout assigns every cell of an n×n matrix (and, by the paper's
// "all three matrices share the same layout" convention, of A, B and C
// alike) to one of P processors.
type Layout interface {
	// P returns the number of processors.
	P() int
	// N returns the matrix dimension.
	N() int
	// OwnerOf returns the processor owning cell (i, j).
	OwnerOf(i, j int) int
	// Name identifies the layout in reports.
	Name() string
}

// BlockCyclic is the ScaLAPACK layout: the matrix is tiled with bs×bs
// blocks dealt cyclically onto an r×c processor grid — the homogeneous
// layout MapReduce-style implementations inherit (refs [36, 27, 45]).
type BlockCyclic struct {
	Dim   int // matrix dimension n
	GridR int
	GridC int
	Block int
}

// NewBlockCyclic validates and builds a block-cyclic layout.
func NewBlockCyclic(n, gridR, gridC, block int) (*BlockCyclic, error) {
	if n <= 0 || gridR <= 0 || gridC <= 0 || block <= 0 {
		return nil, errors.New("matmul: invalid block-cyclic parameters")
	}
	return &BlockCyclic{Dim: n, GridR: gridR, GridC: gridC, Block: block}, nil
}

// P implements Layout.
func (l *BlockCyclic) P() int { return l.GridR * l.GridC }

// N implements Layout.
func (l *BlockCyclic) N() int { return l.Dim }

// OwnerOf implements Layout.
func (l *BlockCyclic) OwnerOf(i, j int) int {
	br := (i / l.Block) % l.GridR
	bc := (j / l.Block) % l.GridC
	return br*l.GridC + bc
}

// Name implements Layout.
func (l *BlockCyclic) Name() string {
	return fmt.Sprintf("block-cyclic(%dx%d,b=%d)", l.GridR, l.GridC, l.Block)
}

// RectLayout realizes a unit-square rectangle partition on an n×n matrix:
// cell (i, j) belongs to the rectangle containing the point
// ((j+0.5)/n, (i+0.5)/n) — the Heterogeneous Blocks layout of
// Section 4.2.
type RectLayout struct {
	Dim  int
	Part *partition.Partition
}

// NewRectLayout builds the layout after validating the partition.
func NewRectLayout(n int, part *partition.Partition) (*RectLayout, error) {
	if n <= 0 {
		return nil, errors.New("matmul: invalid dimension")
	}
	if err := part.Validate(); err != nil {
		return nil, err
	}
	return &RectLayout{Dim: n, Part: part}, nil
}

// P implements Layout.
func (l *RectLayout) P() int { return len(l.Part.Rects) }

// N implements Layout.
func (l *RectLayout) N() int { return l.Dim }

// OwnerOf implements Layout. The returned id is the processor index the
// rectangle serves (Rect.Index), so per-processor reports align with the
// platform's worker order.
func (l *RectLayout) OwnerOf(i, j int) int {
	x := (float64(j) + 0.5) / float64(l.Dim)
	y := (float64(i) + 0.5) / float64(l.Dim)
	for _, r := range l.Part.Rects {
		if x >= r.X && x < r.X+r.W && y >= r.Y && y < r.Y+r.H {
			return r.Index
		}
	}
	// Boundary slack: fall back to the nearest rectangle by center
	// distance (only reachable through floating-point edge effects).
	best, bestD := 0, math.Inf(1)
	for _, r := range l.Part.Rects {
		cx, cy := r.X+r.W/2, r.Y+r.H/2
		d := (x-cx)*(x-cx) + (y-cy)*(y-cy)
		if d < bestD {
			best, bestD = r.Index, d
		}
	}
	return best
}

// Name implements Layout.
func (l *RectLayout) Name() string { return fmt.Sprintf("rect(p=%d)", l.P()) }

// CommReport is the communication accounting of one full outer-product
// matrix multiplication under a layout.
type CommReport struct {
	Layout string
	N      int
	// Total is the number of matrix elements transferred.
	Total float64
	// PerProc[q] counts the elements processor q receives.
	PerProc []float64
	// CellsPerProc[q] counts the C cells (≅ work) processor q owns.
	CellsPerProc []int
}

// Imbalance returns the work imbalance (t_max - t_min)/t_min over owned
// cells, optionally weighted by speeds (nil for unit speeds).
func (r CommReport) Imbalance(speeds []float64) float64 {
	tmin, tmax := math.Inf(1), 0.0
	for q, c := range r.CellsPerProc {
		t := float64(c)
		if speeds != nil {
			t /= speeds[q]
		}
		if t < tmin {
			tmin = t
		}
		if t > tmax {
			tmax = t
		}
	}
	if tmax == 0 {
		return 0
	}
	if tmin == 0 {
		return math.Inf(1)
	}
	return (tmax - tmin) / tmin
}

// CommVolume simulates the Figure 3 outer-product algorithm step by step
// and counts every element received: at step k, processor q needs A[i,k]
// for every row i in which it owns C cells (receiving it unless q itself
// owns A[i,k]), and symmetrically B[k,j] for every owned column j. The
// result is exact for any layout and cross-checks the closed forms below.
func CommVolume(l Layout) CommReport {
	n, p := l.N(), l.P()
	rep := CommReport{Layout: l.Name(), N: n, PerProc: make([]float64, p), CellsPerProc: make([]int, p)}

	// needsRow[i] / needsCol[j]: bitmask-ish sets of processors owning C
	// cells in row i / column j.
	needsRow := make([][]bool, n)
	needsCol := make([][]bool, n)
	for i := 0; i < n; i++ {
		needsRow[i] = make([]bool, p)
		needsCol[i] = make([]bool, p)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			q := l.OwnerOf(i, j)
			rep.CellsPerProc[q]++
			needsRow[i][q] = true
			needsCol[j][q] = true
		}
	}
	// A[i,k] broadcasts: owner l.OwnerOf(i,k); receivers: needsRow[i]\{owner}.
	// B[k,j] broadcasts: owner l.OwnerOf(k,j); receivers: needsCol[j]\{owner}.
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			owner := l.OwnerOf(i, k)
			for q, need := range needsRow[i] {
				if need && q != owner {
					rep.PerProc[q]++
					rep.Total++
				}
			}
		}
		for j := 0; j < n; j++ {
			owner := l.OwnerOf(k, j)
			for q, need := range needsCol[j] {
				if need && q != owner {
					rep.PerProc[q]++
					rep.Total++
				}
			}
		}
	}
	return rep
}

// GridCommClosedForm returns the outer-product algorithm's total volume on
// an r×c grid: every step broadcasts a column of A to the c-1 other
// processor columns and a row of B to the r-1 other processor rows, giving
// n²·(r-1+c-1) elements overall.
func GridCommClosedForm(gridR, gridC, n int) float64 {
	return float64(n) * float64(n) * float64(gridR-1+gridC-1)
}

// RectCommClosedForm returns the volume for a rectangle layout: processor
// i needs hᵢ·n full rows of A and wᵢ·n full columns of B (n elements
// each), minus the 2·aᵢ·n² elements it already owns — in total
// n²·(Ĉ - 2) where Ĉ is the partition's sum of half-perimeters. This is
// the Section 4.2 statement that matmul communication "is exactly
// proportional to the sum of the (half-)perimeters".
func RectCommClosedForm(part *partition.Partition, n int) float64 {
	return float64(n) * float64(n) * (part.SumHalfPerimeters() - 2)
}
