// Package samplesort implements the parallel sample sort of the paper's
// Section 3 — the workload that, unlike truly non-linear loads, *is*
// amenable to Divisible Load Theory after a cheap pre-processing step.
//
// Sorting N keys costs N·log N: splitting the input into p lists of N/p
// keys and sorting them in parallel performs N·log N - N·log p of that
// work, so the non-divisible fraction log p / log N vanishes for large N.
// The pre-processing that makes the p partial sorts compose into a fully
// sorted output is randomized splitter selection (Frazer & McKellar's
// sample sort, refs [38,39]), in three steps mirroring the paper's
// Figure 1:
//
//	Step 1: draw s·p random sample keys (oversampling ratio s), sort the
//	        sample, keep the keys of rank s, 2s, …, (p-1)s as splitters;
//	Step 2: route every key to its bucket by binary search (N·log p);
//	Step 3: sort the p buckets independently, one worker per bucket.
//
// With s = log²N, the largest bucket is (N/p)(1 + (1/log N)^(1/3)) with
// probability at least 1 - N^(-1/3) (Theorem B.4 of Blelloch et al.,
// ref [40]), so Step 3 dominates and the parallel time is optimal with
// high probability.
//
// # API
//
// [Sort] is the real three-step implementation on one machine, with
// [SortParallelRouting] sharding Step 2 across goroutines;
// [SortHeterogeneous] and [SortHeterogeneousBalanced] size buckets to
// worker speeds. [SimulateDistributed] replays the same pipeline on a
// simulated star platform, and theory.go ([Cost], [TheoremB4Threshold],
// [NonDivisibleFraction], [CheckConcentration]) holds the closed forms the
// measurements are compared against.
package samplesort
