package trace

import "testing"

// TestLiveReserveMakesRecordingAllocationFree pins the zero-alloc
// contract the measured runtime's hot path depends on: after Reserve, Add
// and AddRelay must record without touching the heap — every span append
// inside a worker's chunk loop would otherwise allocate under the
// recording mutex, serializing the pool on the allocator.
func TestLiveReserveMakesRecordingAllocationFree(t *testing.T) {
	l := NewLive(2)
	l.Reserve(256, 256)
	if allocs := testing.AllocsPerRun(100, func() {
		l.Add(0, Span{Kind: Compute, Start: 0, End: 1, Work: 1})
	}); allocs != 0 {
		t.Errorf("Add allocates %.1f objects per span after Reserve, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(100, func() {
		l.AddRelay(Relay{Edge: 0, Dest: 1, Start: 0, End: 1, Data: 1})
	}); allocs != 0 {
		t.Errorf("AddRelay allocates %.1f objects per relay after Reserve, want 0", allocs)
	}
}

// TestLiveReservePreservesRecordedSpans guards Reserve's copy semantics:
// reserving after recording must keep what was recorded, and shrinking is
// a no-op.
func TestLiveReservePreservesRecordedSpans(t *testing.T) {
	l := NewLive(1)
	l.Add(0, Span{Kind: Comm, Start: 0, End: 2, Data: 5})
	l.Reserve(64, 8)
	l.Reserve(1, 0) // smaller than current capacity: must not shrink or drop
	l.Add(0, Span{Kind: Compute, Start: 2, End: 3, Work: 7})
	tl := l.Timeline()
	if len(tl.Spans[0]) != 2 || tl.Spans[0][0].Data != 5 || tl.Spans[0][1].Work != 7 {
		t.Errorf("spans corrupted across Reserve: %+v", tl.Spans[0])
	}
}
