// Sorting demonstrates Section 3: sorting is "almost divisible" — the
// sample-sort pre-processing (splitter selection + bucketing) makes the
// expensive N·log N phase perfectly parallel, on homogeneous and
// heterogeneous platforms alike. This example runs the real parallel
// sample sort, prints the three-phase trace of Figure 1, and shows the
// speed-proportional bucket sizing of Section 3.2.
package main

import (
	"fmt"
	"log"
	"slices"

	"nlfl/internal/platform"
	"nlfl/internal/samplesort"
	"nlfl/internal/stats"
)

func main() {
	const n = 1 << 18
	r := stats.NewRNG(2024)
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = r.Float64()
	}

	// Homogeneous: 8 equal workers, oversampling s = log²N.
	out, tr, err := samplesort.Sort(xs, samplesort.Config{Workers: 8, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sorted %d keys on %d workers (sorted: %v)\n", n, tr.Workers, slices.IsSorted(out))
	fmt.Printf("  step 1: sample %d keys, sort them        (%.3g comparisons)\n", tr.SampleSize, tr.ComparisonsSample)
	fmt.Printf("  step 2: route every key to its bucket    (%.3g comparisons)\n", tr.ComparisonsRouting)
	fmt.Printf("  step 3: sort %d buckets in parallel       (%.3g comparisons)\n", tr.Workers, tr.ComparisonsBuckets)
	fmt.Printf("  bucket sizes: %v\n", tr.BucketSizes)
	fmt.Printf("  max bucket / (N/p) = %.4f  (Theorem B.4 threshold %.4f)\n",
		tr.MaxBucketRatio(),
		samplesort.TheoremB4Threshold(n, tr.Workers)/(float64(n)/float64(tr.Workers)))
	fmt.Printf("  non-divisible fraction log p/log N = %.4f\n\n",
		samplesort.NonDivisibleFraction(n, tr.Workers))

	// Heterogeneous: speeds 1..5 — buckets sized ∝ speed (Section 3.2).
	pl, err := platform.FromSpeeds([]float64{1, 2, 3, 4, 5})
	if err != nil {
		log.Fatal(err)
	}
	out2, ht, err := samplesort.SortHeterogeneous(xs, pl, samplesort.Config{Seed: 2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("heterogeneous platform speeds %v (sorted: %v)\n", pl.Speeds(), slices.IsSorted(out2))
	for i, sz := range ht.BucketSizes {
		fmt.Printf("  P%d speed=%g  bucket=%6d keys  modelled sort time=%.4g\n",
			i+1, pl.Worker(i).Speed, sz, ht.SortTimes[i])
	}
	fmt.Printf("  load imbalance e = %.4f (vanishes as N grows)\n", ht.Imbalance())
}
