package iterative

import (
	"errors"
	"math"
	"testing"
)

func sum(v []float64) float64 {
	s := 0.0
	for _, x := range v {
		s += x
	}
	return s
}

func TestWaterFillLinearEqualWorkers(t *testing.T) {
	s, err := WaterFill(Params{Unit: []float64{1e-5, 1e-5, 1e-5, 1e-5}, Load: 4096})
	if err != nil {
		t.Fatal(err)
	}
	if got := sum(s.Kappa); math.Abs(got-4096) > 1e-9 {
		t.Fatalf("Σκ = %v, want 4096 exactly", got)
	}
	for i, k := range s.Kappa {
		if math.Abs(k-1024) > 1e-6 {
			t.Fatalf("worker %d got %v, want 1024 (equal workers, equal shares)", i, k)
		}
	}
	if want := 1024 * 1e-5; math.Abs(s.Theta-want) > 1e-3*want {
		t.Fatalf("θ = %v, want ≈ %v", s.Theta, want)
	}
}

func TestWaterFillLinearProportionalToRates(t *testing.T) {
	// κᵢ/κⱼ must equal rateᵢ/rateⱼ when overheads are zero.
	unit := []float64{1. / 4e4, 1. / 8e4, 1. / 2e4}
	s, err := WaterFill(Params{Unit: unit, Load: 9216})
	if err != nil {
		t.Fatal(err)
	}
	if r := s.Kappa[1] / s.Kappa[0]; math.Abs(r-2) > 1e-6 {
		t.Fatalf("κ₁/κ₀ = %v, want 2", r)
	}
	if r := s.Kappa[0] / s.Kappa[2]; math.Abs(r-2) > 1e-6 {
		t.Fatalf("κ₀/κ₂ = %v, want 2", r)
	}
}

func TestWaterFillCommOverheadExcludesSlowStarter(t *testing.T) {
	// Worker 1's fixed overhead exceeds the water level: it must get 0,
	// and the others absorb the whole load.
	s, err := WaterFill(Params{
		Unit: []float64{1e-5, 1e-5},
		Comm: []float64{0, 1e3},
		Load: 1000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.Kappa[1] != 0 {
		t.Fatalf("over-water worker got κ=%v, want 0", s.Kappa[1])
	}
	if math.Abs(s.Kappa[0]-1000) > 1e-9 {
		t.Fatalf("surviving worker got %v, want the full 1000", s.Kappa[0])
	}
}

func TestWaterFillEqualizesFinishTimes(t *testing.T) {
	// The solved split's defining property: every loaded worker finishes
	// at θ under the (possibly nonlinear) time model.
	for _, gamma := range []float64{0, 0.3, 2.5} {
		p := Params{
			Gamma: gamma,
			Unit:  []float64{2e-5, 1e-5, 5e-5},
			Comm:  []float64{1e-3, 2e-3, 0},
			Sigma: []float64{1e-4, 3e-4, 0},
			Load:  5000,
		}
		s, err := WaterFill(p)
		if err != nil {
			t.Fatalf("γ=%v: %v", gamma, err)
		}
		for i, k := range s.Kappa {
			if k <= 0 {
				continue
			}
			c, m, sg := p.Comm[i], p.Unit[i], p.Sigma[i]
			var ti float64
			if gamma == 0 {
				ti = c + m*k
			} else {
				a := c + gamma*c*c
				b := 2*gamma*c*m + m + gamma*sg*sg
				ti = a + b*k + gamma*m*m*k*k
			}
			if math.Abs(ti-s.Theta) > 1e-6*s.Theta {
				t.Fatalf("γ=%v worker %d finishes at %v, want θ=%v", gamma, i, ti, s.Theta)
			}
		}
	}
}

func TestWaterFillVarianceTax(t *testing.T) {
	// Two otherwise identical workers: the noisy one must get strictly
	// less load once γ > 0 — the no-free-lunch term at work.
	s, err := WaterFill(Params{
		Gamma: 1,
		Unit:  []float64{1e-4, 1e-4},
		Sigma: []float64{0, 5e-2},
		Load:  2000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.Kappa[1] >= s.Kappa[0] {
		t.Fatalf("noisy worker got κ=%v ≥ quiet worker's %v", s.Kappa[1], s.Kappa[0])
	}
}

func TestWaterFillGammaContinuity(t *testing.T) {
	// γ→0 must approach the linear branch, not jump (the closed form
	// divides by γ; the limit is implemented separately).
	lin, err := WaterFill(Params{Unit: []float64{1e-5, 3e-5}, Comm: []float64{1e-4, 0}, Load: 3000})
	if err != nil {
		t.Fatal(err)
	}
	tiny, err := WaterFill(Params{Gamma: 1e-12, Unit: []float64{1e-5, 3e-5}, Comm: []float64{1e-4, 0}, Load: 3000})
	if err != nil {
		t.Fatal(err)
	}
	for i := range lin.Kappa {
		if math.Abs(lin.Kappa[i]-tiny.Kappa[i]) > 1e-3*lin.Kappa[i] {
			t.Fatalf("worker %d: linear κ=%v vs γ=1e-12 κ=%v", i, lin.Kappa[i], tiny.Kappa[i])
		}
	}
}

func TestWaterFillExactLoad(t *testing.T) {
	s, err := WaterFill(Params{Gamma: 0.7, Unit: []float64{1e-5, 2e-5, 7e-5}, Sigma: []float64{1e-3, 0, 2e-3}, Load: 9216})
	if err != nil {
		t.Fatal(err)
	}
	if got := sum(s.Kappa); got != 9216 {
		// The final rescale pins Σκ to the load bit-exactly so the plan
		// snapping sees the true total.
		if math.Abs(got-9216) > 1e-9 {
			t.Fatalf("Σκ = %v, want 9216", got)
		}
	}
}

func TestWaterFillBadParams(t *testing.T) {
	cases := []Params{
		{Load: 100},                                                           // no workers
		{Unit: []float64{1e-5}, Load: 0},                                      // zero load
		{Unit: []float64{0}, Load: 100},                                       // zero unit time
		{Unit: []float64{-1e-5}, Load: 100},                                   // negative unit time
		{Unit: []float64{1e-5}, Load: math.NaN()},                             // NaN load
		{Unit: []float64{1e-5}, Gamma: -1, Load: 100},                         // negative gamma
		{Unit: []float64{1e-5}, Comm: nil, Sigma: []float64{1, 2}, Load: 100}, // sigma length
		{Unit: []float64{1e-5}, Comm: []float64{-1}, Load: 100},               // negative overhead
	}
	for i, p := range cases {
		if _, err := WaterFill(p); !errors.Is(err, ErrBadParams) {
			t.Fatalf("case %d: err = %v, want ErrBadParams", i, err)
		}
	}
}

func TestWaterFillSingleWorker(t *testing.T) {
	s, err := WaterFill(Params{Unit: []float64{1e-5}, Load: 1024})
	if err != nil {
		t.Fatal(err)
	}
	if s.Kappa[0] != 1024 {
		t.Fatalf("single worker got %v, want the whole load", s.Kappa[0])
	}
}
